package repose

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"

	"repose/internal/dataset"
	"repose/internal/dist"
)

func testData(t *testing.T, n int) []*Trajectory {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "t", Cardinality: n, AvgLen: 20, SpanX: 4, SpanY: 4, Hotspots: 5, Seed: 4,
	})
}

func TestBuildAndSearchDefaults(t *testing.T) {
	ds := testData(t, 200)
	idx, err := Build(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Engine().String() != "local" {
		t.Errorf("engine = %v", idx.Engine())
	}
	q := ds[17]
	res, err := idx.Search(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	// Searching for an indexed trajectory finds it at distance 0.
	if res[0].ID != q.ID || res[0].Dist != 0 {
		t.Errorf("self search top hit = %+v", res[0])
	}
	// Ascending distances.
	if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i].Dist < res[j].Dist }) {
		// Equal distances permitted; verify non-decreasing.
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				t.Errorf("results not sorted: %v", res)
			}
		}
	}
	st := idx.Stats()
	if st.Trajectories != 200 || st.Partitions <= 0 || st.IndexBytes <= 0 || st.BuildTime <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAllMeasuresEndToEnd(t *testing.T) {
	ds := testData(t, 150)
	q := ds[3]
	for _, m := range dist.Measures() {
		idx, err := Build(ds, Options{Measure: m, Partitions: 4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		res, err := idx.Search(context.Background(), q, 3)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(res) != 3 {
			t.Fatalf("%v: %d results", m, len(res))
		}
		// Verify reported distances are the true distances.
		byID := map[int]*Trajectory{}
		for _, tr := range ds {
			byID[tr.ID] = tr
		}
		for _, r := range res {
			want := DistanceWith(m, q, byID[r.ID], idx.opts.Epsilon, Point{X: idx.region.Min.X, Y: idx.region.Min.Y})
			if math.Abs(r.Dist-want) > 1e-9 {
				t.Errorf("%v: id %d dist %v want %v", m, r.ID, r.Dist, want)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestSentinelErrors(t *testing.T) {
	ds := testData(t, 50)
	idx, err := Build(ds, Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := idx.Search(ctx, nil, 3); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("nil query: %v", err)
	}
	if _, err := idx.Search(ctx, &Trajectory{}, 3); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("empty query: %v", err)
	}
	if _, err := idx.Search(ctx, ds[0], 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := idx.SearchRadius(ctx, ds[0], -1); !errors.Is(err, ErrBadRadius) {
		t.Errorf("negative radius: %v", err)
	}
	if _, err := idx.SearchBatch(ctx, []*Trajectory{ds[0], nil}, 3); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("nil batch query: %v", err)
	}
	if _, err := idx.SearchBatch(ctx, []*Trajectory{ds[0]}, -2); !errors.Is(err, ErrBadK) {
		t.Errorf("batch k<0: %v", err)
	}

	// Succinct indexes decline range search with a typed error.
	suc, err := Build(ds, Options{Partitions: 2, Succinct: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := suc.SearchRadius(ctx, ds[0], 1); !errors.Is(err, ErrSuccinctUnsupported) {
		t.Errorf("succinct radius: %v", err)
	}

	// Every query path reports ErrClosed after Close, idempotently.
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := idx.Search(ctx, ds[0], 3); !errors.Is(err, ErrClosed) {
		t.Errorf("search after close: %v", err)
	}
	if _, err := idx.SearchRadius(ctx, ds[0], 1); !errors.Is(err, ErrClosed) {
		t.Errorf("radius after close: %v", err)
	}
	if _, err := idx.SearchBatch(ctx, []*Trajectory{ds[0]}, 3); !errors.Is(err, ErrClosed) {
		t.Errorf("batch after close: %v", err)
	}
}

func TestOptionVariants(t *testing.T) {
	ds := testData(t, 120)
	q := ds[9]
	ctx := context.Background()
	base, err := Build(ds, Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Search(ctx, q, 7)
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{Partitions: 3, Strategy: Homogeneous},
		{Partitions: 3, Strategy: Random},
		{Partitions: 3, NoRearrange: true},
		{Partitions: 3, Succinct: true},
		{Partitions: 3, Layout: LayoutCompressed},
		{Partitions: 3, Pivots: -1},
		{Partitions: 3, Pivots: 2},
		{Partitions: 5, Delta: 0.03},
	}
	for i, o := range variants {
		idx, err := Build(ds, o)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		got, err := idx.Search(ctx, q, 7)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("variant %d: len %d want %d", i, len(got), len(want))
		}
		for j := range got {
			if math.Abs(got[j].Dist-want[j].Dist) > 1e-9 {
				t.Fatalf("variant %d rank %d: dist %v want %v", i, j, got[j].Dist, want[j].Dist)
			}
		}
	}
}

func TestQueryOptions(t *testing.T) {
	ds := testData(t, 150)
	idx, err := Build(ds, Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := ds[25]
	want, err := idx.Search(ctx, q, 6)
	if err != nil {
		t.Fatal(err)
	}

	// WithReport captures per-partition execution, including each
	// partition's index footprint.
	var rep QueryReport
	got, err := idx.Search(ctx, q, 6, WithReport(&rep))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PartitionTimes) != 4 || rep.Wall <= 0 || rep.Imbalance() < 1 {
		t.Errorf("report = %+v (imbalance %v)", rep, rep.Imbalance())
	}
	if len(rep.IndexBytes) != 4 {
		t.Errorf("report.IndexBytes has %d entries, want 4", len(rep.IndexBytes))
	}
	for pid, b := range rep.IndexBytes {
		if b <= 0 {
			t.Errorf("report.IndexBytes[%d] = %d", pid, b)
		}
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v want %+v", i, got[i], want[i])
		}
	}

	// WithoutPivots changes pruning, never results.
	got, err = idx.Search(ctx, q, 6, WithoutPivots())
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("no-pivots rank %d: %+v want %+v", i, got[i], want[i])
		}
	}

	// WithPartitions restricts the query; the subset report shows it.
	var subRep QueryReport
	if _, err := idx.Search(ctx, q, 6, WithPartitions(0, 2), WithReport(&subRep)); err != nil {
		t.Fatal(err)
	}
	if len(subRep.PartitionTimes) != 2 {
		t.Errorf("subset report %d partitions", len(subRep.PartitionTimes))
	}
	if _, err := idx.Search(ctx, q, 6, WithPartitions(99)); err == nil {
		t.Error("out-of-range partition should fail")
	}

	// WithBatchReport captures the batch makespan.
	var brep BatchReport
	batch, err := idx.SearchBatch(ctx, ds[:5], 3, WithBatchReport(&brep))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 5 || brep.Makespan <= 0 || len(brep.PerQuery) != 5 {
		t.Errorf("batch report = %+v", brep)
	}
	for i, q := range ds[:5] {
		single, err := idx.Search(ctx, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("batch query %d rank %d: %+v want %+v", i, j, batch[i][j], single[j])
			}
		}
	}
}

// TestStatsMemoryAccounting: Stats reports the layout, a footprint
// per partition, and their sum as IndexBytes — and the compressed
// layout's total is materially below the pointer trie's on the same
// dataset (the headline bench ratio lives in BENCH_memory.json; this
// guards the accounting plumbing).
func TestStatsMemoryAccounting(t *testing.T) {
	ds := testData(t, 200)
	totals := map[Layout]int{}
	for _, layout := range []Layout{LayoutPointer, LayoutSuccinct, LayoutCompressed} {
		idx, err := Build(ds, Options{Partitions: 3}, WithLayout(layout))
		if err != nil {
			t.Fatal(err)
		}
		st := idx.Stats()
		if st.Layout != layout {
			t.Errorf("Stats.Layout = %v, want %v", st.Layout, layout)
		}
		if len(st.PartitionIndexBytes) != st.Partitions {
			t.Fatalf("%v: %d per-partition sizes for %d partitions", layout, len(st.PartitionIndexBytes), st.Partitions)
		}
		sum := 0
		for pid, b := range st.PartitionIndexBytes {
			if b <= 0 {
				t.Errorf("%v: PartitionIndexBytes[%d] = %d", layout, pid, b)
			}
			sum += b
		}
		if sum != st.IndexBytes {
			t.Errorf("%v: per-partition sum %d != IndexBytes %d", layout, sum, st.IndexBytes)
		}
		totals[layout] = st.IndexBytes
	}
	if totals[LayoutCompressed] >= totals[LayoutSuccinct] || totals[LayoutSuccinct] >= totals[LayoutPointer] {
		t.Errorf("footprints not ordered: pointer=%d succinct=%d compressed=%d",
			totals[LayoutPointer], totals[LayoutSuccinct], totals[LayoutCompressed])
	}
}

func TestDistanceHelpers(t *testing.T) {
	a := &Trajectory{ID: 1, Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 0}}}
	b := &Trajectory{ID: 2, Points: []Point{{X: 0, Y: 3}, {X: 1, Y: 3}}}
	if got := Distance(Hausdorff, a, b); math.Abs(got-3) > 1e-9 {
		t.Errorf("Hausdorff = %v", got)
	}
	if got := DistanceWith(LCSS, a, b, 5, Point{}); got != 0 {
		t.Errorf("LCSS with huge eps = %v", got)
	}
}

// TestDeprecatedShims keeps the pre-context API compiling and
// correct for one release.
func TestDeprecatedShims(t *testing.T) {
	ds := testData(t, 150)
	idx, err := Build(ds, Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := ds[33]
	want, err := idx.Search(context.Background(), q, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := idx.SearchPoints(q.Points, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SearchPoints rank %d: %+v want %+v", i, got[i], want[i])
		}
	}

	ready := make(chan string, 2)
	for i := 0; i < 2; i++ {
		go ServeWorker("127.0.0.1:0", func(addr string) { ready <- addr })
	}
	addrs := []string{<-ready, <-ready}
	ci, err := BuildCluster(ds, Options{Partitions: 4}, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ci.Close()
	cres, err := ci.Search(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cres {
		if cres[i] != want[i] {
			t.Fatalf("ClusterIndex rank %d: %+v want %+v", i, cres[i], want[i])
		}
	}
	st := ci.Stats()
	if st.Trajectories != 150 || st.Partitions != 4 {
		t.Errorf("stats = %+v", st)
	}
	if _, err := ci.Search(nil, 3); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("nil query: %v", err)
	}
	if _, err := ci.Search(q, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := BuildCluster(nil, Options{}, addrs); err == nil {
		t.Error("empty dataset should fail")
	}
}
