package repose

import (
	"math"
	"sort"
	"testing"

	"repose/internal/dataset"
	"repose/internal/dist"
)

func testData(t *testing.T, n int) []*Trajectory {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "t", Cardinality: n, AvgLen: 20, SpanX: 4, SpanY: 4, Hotspots: 5, Seed: 4,
	})
}

func TestBuildAndSearchDefaults(t *testing.T) {
	ds := testData(t, 200)
	idx, err := Build(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := ds[17]
	res, err := idx.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	// Searching for an indexed trajectory finds it at distance 0.
	if res[0].ID != q.ID || res[0].Dist != 0 {
		t.Errorf("self search top hit = %+v", res[0])
	}
	// Ascending distances.
	if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i].Dist < res[j].Dist }) {
		// Equal distances permitted; verify non-decreasing.
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				t.Errorf("results not sorted: %v", res)
			}
		}
	}
	st := idx.Stats()
	if st.Trajectories != 200 || st.Partitions <= 0 || st.IndexBytes <= 0 || st.BuildTime <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAllMeasuresEndToEnd(t *testing.T) {
	ds := testData(t, 150)
	q := ds[3]
	for _, m := range dist.Measures() {
		idx, err := Build(ds, Options{Measure: m, Partitions: 4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		res, err := idx.Search(q, 3)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(res) != 3 {
			t.Fatalf("%v: %d results", m, len(res))
		}
		// Verify reported distances are the true distances.
		byID := map[int]*Trajectory{}
		for _, tr := range ds {
			byID[tr.ID] = tr
		}
		for _, r := range res {
			want := DistanceWith(m, q, byID[r.ID], idx.opts.Epsilon, Point{X: idx.region.Min.X, Y: idx.region.Min.Y})
			if math.Abs(r.Dist-want) > 1e-9 {
				t.Errorf("%v: id %d dist %v want %v", m, r.ID, r.Dist, want)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestSearchErrors(t *testing.T) {
	ds := testData(t, 50)
	idx, err := Build(ds, Options{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Search(nil, 3); err == nil {
		t.Error("nil query should fail")
	}
	if _, err := idx.SearchPoints(nil, 3); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := idx.SearchPoints([]Point{{X: 1, Y: 1}}, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestOptionVariants(t *testing.T) {
	ds := testData(t, 120)
	q := ds[9]
	base, err := Build(ds, Options{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Search(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{Partitions: 3, Strategy: Homogeneous},
		{Partitions: 3, Strategy: Random},
		{Partitions: 3, NoRearrange: true},
		{Partitions: 3, Succinct: true},
		{Partitions: 3, Pivots: -1},
		{Partitions: 3, Pivots: 2},
		{Partitions: 5, Delta: 0.03},
	}
	for i, o := range variants {
		idx, err := Build(ds, o)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		got, err := idx.Search(q, 7)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("variant %d: len %d want %d", i, len(got), len(want))
		}
		for j := range got {
			if math.Abs(got[j].Dist-want[j].Dist) > 1e-9 {
				t.Fatalf("variant %d rank %d: dist %v want %v", i, j, got[j].Dist, want[j].Dist)
			}
		}
	}
}

func TestDistanceHelpers(t *testing.T) {
	a := &Trajectory{ID: 1, Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 0}}}
	b := &Trajectory{ID: 2, Points: []Point{{X: 0, Y: 3}, {X: 1, Y: 3}}}
	if got := Distance(Hausdorff, a, b); math.Abs(got-3) > 1e-9 {
		t.Errorf("Hausdorff = %v", got)
	}
	if got := DistanceWith(LCSS, a, b, 5, Point{}); got != 0 {
		t.Errorf("LCSS with huge eps = %v", got)
	}
}

func TestClusterIndexOverTCP(t *testing.T) {
	ds := testData(t, 150)
	// Start two workers on ephemeral ports.
	ready := make(chan string, 2)
	for i := 0; i < 2; i++ {
		go ServeWorker("127.0.0.1:0", func(addr string) { ready <- addr })
	}
	addrs := []string{<-ready, <-ready}
	ci, err := BuildCluster(ds, Options{Partitions: 4}, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ci.Close()
	idx, err := Build(ds, Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := ds[33]
	got, err := ci.Search(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := idx.Search(q, 6)
	if len(got) != len(want) {
		t.Fatalf("len %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v want %+v", i, got[i], want[i])
		}
	}
	st := ci.Stats()
	if st.Trajectories != 150 || st.Partitions != 4 {
		t.Errorf("stats = %+v", st)
	}
	if _, err := ci.Search(nil, 3); err == nil {
		t.Error("nil query should fail")
	}
	if _, err := ci.Search(q, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := BuildCluster(nil, Options{}, addrs); err == nil {
		t.Error("empty dataset should fail")
	}
}
