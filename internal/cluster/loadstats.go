package cluster

import (
	"math"
	"sort"
	"sync"
	"time"

	"repose/internal/topk"
)

// Per-partition load accounting. Both engines feed every query's
// per-partition outcome — scan time, exact-distance refinements, and
// reward (results that survived the global merge) — into one tracker.
// Two consumers read it: the rebalancer picks hot partitions by
// cumulative scan time, and the probe budget orders the scatter by a
// learned reward-per-cost score so the partitions most likely to
// contribute are probed first.

// loadAlpha is the EWMA smoothing factor for the reward/cost score.
const loadAlpha = 0.2

// loadRingSize is the per-partition latency sample ring used for the
// p99 estimate.
const loadRingSize = 128

// PartitionLoad is one partition's accumulated load profile.
type PartitionLoad struct {
	Partition int           // global partition id
	Queries   uint64        // scans since start (or last reset)
	RefineOps uint64        // exact-distance refinements across scans
	TotalTime time.Duration // cumulative scan time — the rebalancer's hotness
	P99       time.Duration // 99th-percentile scan latency (recent window)
	Score     float64       // EWMA reward-per-cost; +Inf = never probed
}

// partLoad is the mutable accumulator behind one PartitionLoad.
type partLoad struct {
	queries    uint64
	refineOps  uint64
	sumNanos   int64
	ring       []int64 // latency samples, lazily allocated
	ringNext   int
	rewardEWMA float64
	costEWMA   float64
	scored     bool
}

// loadTracker aggregates partLoads under one mutex; recording is a
// few arithmetic ops, so a single lock does not serialize scans
// meaningfully (scans are microseconds to milliseconds).
type loadTracker struct {
	mu    sync.Mutex
	parts []partLoad
}

func newLoadTracker(n int) *loadTracker {
	return &loadTracker{parts: make([]partLoad, n)}
}

// grow extends the tracker after a split published new partitions.
func (t *loadTracker) grow(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.parts) < n {
		t.parts = append(t.parts, partLoad{})
	}
}

// record folds one scan's outcome into partition pi's accumulator.
func (t *loadTracker) record(pi int, dur time.Duration, refined int64, reward int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pi < 0 || pi >= len(t.parts) {
		return
	}
	p := &t.parts[pi]
	p.queries++
	p.refineOps += uint64(refined)
	p.sumNanos += int64(dur)
	if p.ring == nil {
		p.ring = make([]int64, 0, loadRingSize)
	}
	if len(p.ring) < loadRingSize {
		p.ring = append(p.ring, int64(dur))
	} else {
		p.ring[p.ringNext] = int64(dur)
	}
	p.ringNext = (p.ringNext + 1) % loadRingSize
	// Cost is the scan time in microseconds (floored at 1 so the
	// ratio stays finite); reward is how many of the partition's
	// results made the merged top-k.
	cost := float64(dur) / float64(time.Microsecond)
	if cost < 1 {
		cost = 1
	}
	if !p.scored {
		p.rewardEWMA, p.costEWMA, p.scored = float64(reward), cost, true
	} else {
		p.rewardEWMA += loadAlpha * (float64(reward) - p.rewardEWMA)
		p.costEWMA += loadAlpha * (cost - p.costEWMA)
	}
}

// recordWave feeds one search wave's per-partition outcomes into the
// tracker: scan time, refine count, and reward — how many of the
// partition's local results survived into the merged answer.
func (t *loadTracker) recordWave(pids []int, lists [][]topk.Item, refined []int64, times []time.Duration, merged []topk.Item) {
	if t == nil {
		return
	}
	final := make(map[int]struct{}, len(merged))
	for _, it := range merged {
		final[it.ID] = struct{}{}
	}
	for i, pid := range pids {
		reward := 0
		for _, it := range lists[i] {
			if _, ok := final[it.ID]; ok {
				reward++
			}
		}
		t.record(pid, times[i], refined[i], reward)
	}
}

// score returns partition pi's reward-per-cost estimate; an unprobed
// partition scores +Inf so exploration happens before exploitation.
// Caller holds t.mu.
func (t *loadTracker) scoreLocked(pi int) float64 {
	p := &t.parts[pi]
	if !p.scored || p.costEWMA <= 0 {
		return math.Inf(1)
	}
	return p.rewardEWMA / p.costEWMA
}

// order returns sel reordered by score, best first, without mutating
// sel. Ties (including the +Inf of never-probed partitions) keep
// selection order, so the ordering is deterministic.
func (t *loadTracker) order(sel []int) []int {
	out := make([]int, len(sel))
	copy(out, sel)
	t.mu.Lock()
	defer t.mu.Unlock()
	scores := make(map[int]float64, len(sel))
	for _, pi := range out {
		if pi >= 0 && pi < len(t.parts) {
			scores[pi] = t.scoreLocked(pi)
		} else {
			scores[pi] = math.Inf(1)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return scores[out[i]] > scores[out[j]]
	})
	return out
}

// snapshot materializes every partition's PartitionLoad.
func (t *loadTracker) snapshot() []PartitionLoad {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PartitionLoad, len(t.parts))
	for i := range t.parts {
		p := &t.parts[i]
		out[i] = PartitionLoad{
			Partition: i,
			Queries:   p.queries,
			RefineOps: p.refineOps,
			TotalTime: time.Duration(p.sumNanos),
			P99:       ringP99(p.ring),
			Score:     t.scoreLocked(i),
		}
	}
	return out
}

// hotness returns each partition's cumulative scan time — what the
// rebalancer ranks by.
func (t *loadTracker) hotness() []time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]time.Duration, len(t.parts))
	for i := range t.parts {
		out[i] = time.Duration(t.parts[i].sumNanos)
	}
	return out
}

// reset clears partition pi's cumulative counters after a migration
// so the next rebalance decision reflects the new placement, not the
// history that motivated the move. The learned score survives — the
// partition's content did not change.
func (t *loadTracker) reset(pi int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pi < 0 || pi >= len(t.parts) {
		return
	}
	p := &t.parts[pi]
	p.queries, p.refineOps, p.sumNanos = 0, 0, 0
	p.ring, p.ringNext = nil, 0
}

// ringP99 estimates the 99th percentile of the sample ring.
func ringP99(ring []int64) time.Duration {
	if len(ring) == 0 {
		return 0
	}
	sorted := make([]int64, len(ring))
	copy(sorted, ring)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*99 + 99) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return time.Duration(sorted[idx])
}
