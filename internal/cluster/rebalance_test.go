package cluster

import (
	"context"
	"fmt"
	"net/rpc"
	"sync"
	"testing"
	"time"

	"repose/internal/dataset"
	"repose/internal/geo"
	"repose/internal/oracle"
	"repose/internal/rptrie"
)

// TestProbeBudgetBitIdenticalAllLayouts: a probe-budgeted Search must
// return exactly what a full scatter returns — for every budget, on
// every layout, whether or not the score tracker has learned anything
// yet. The probed and pruned sets must also cover the selection.
func TestProbeBudgetBitIdenticalAllLayouts(t *testing.T) {
	ds, parts, spec := testWorld(t, 300, 8)
	queries := dataset.Queries(ds, 5, 13)
	layouts := []struct {
		name string
		mod  func(*IndexSpec)
	}{
		{"pointer", func(s *IndexSpec) {}},
		{"succinct", func(s *IndexSpec) { s.Layout = rptrie.LayoutSuccinct }},
		{"compressed", func(s *IndexSpec) { s.Layout = rptrie.LayoutCompressed }},
	}
	ctx := context.Background()
	for _, lo := range layouts {
		sp := spec
		lo.mod(&sp)
		c, err := BuildLocal(sp, parts, 4)
		if err != nil {
			t.Fatalf("%s: %v", lo.name, err)
		}
		// A few full queries teach the tracker its reward/cost scores;
		// budgets are exercised both cold (first loop pass) and warm.
		for pass := 0; pass < 2; pass++ {
			for _, q := range queries {
				want := oracle.TopK(sp.Measure, sp.Params, ds, q.Points, 10)
				for budget := 0; budget <= 8; budget++ {
					got, rep, err := c.Search(ctx, q.Points, 10, QueryOptions{ProbeBudget: budget})
					if err != nil {
						t.Fatalf("%s budget %d: %v", lo.name, budget, err)
					}
					assertBitIdentical(t, fmt.Sprintf("%s budget=%d pass=%d", lo.name, budget, pass), 13, got, want)
					if !rep.CacheEligible {
						t.Fatalf("%s budget %d: exact-mode answer must stay cache-eligible", lo.name, budget)
					}
					if budget >= 1 && budget < 8 {
						covered := len(rep.ProbedPartitions) + len(rep.PrunedPartitions)
						if covered != 8 {
							t.Fatalf("%s budget %d: probed %v + pruned %v does not cover 8 partitions",
								lo.name, budget, rep.ProbedPartitions, rep.PrunedPartitions)
						}
						if len(rep.SkippedPartitions) != 0 {
							t.Fatalf("%s budget %d: exact mode skipped %v", lo.name, budget, rep.SkippedPartitions)
						}
					}
				}
			}
		}
	}
}

// TestProbeBudgetBestEffort: best-effort mode scans exactly the
// budget, reports what it skipped, refuses cache eligibility, and its
// answer equals an explicit query over the probed partitions.
func TestProbeBudgetBestEffort(t *testing.T) {
	ds, parts, spec := testWorld(t, 300, 8)
	c, err := BuildLocal(spec, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	queries := dataset.Queries(ds, 4, 17)
	for _, q := range queries { // warm the tracker
		if _, _, err := c.Search(ctx, q.Points, 10, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries {
		got, rep, err := c.Search(ctx, q.Points, 10, QueryOptions{ProbeBudget: 3, BestEffort: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.CacheEligible {
			t.Fatal("best-effort answer must not be cache-eligible")
		}
		if len(rep.ProbedPartitions) != 3 || len(rep.SkippedPartitions) != 5 {
			t.Fatalf("probed %v skipped %v, want 3 probed 5 skipped", rep.ProbedPartitions, rep.SkippedPartitions)
		}
		want, _, err := c.Search(ctx, q.Points, 10, QueryOptions{Partitions: rep.ProbedPartitions})
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "best-effort equals probed subset", 17, got, want)
	}
}

// TestRemoteProbeBudgetMatchesLocal: the remote engine's two-phase
// budgeted search (Worker.Search + Worker.Bound waves) answers
// bit-identically to the oracle for every budget.
func TestRemoteProbeBudgetMatchesLocal(t *testing.T) {
	ds, parts, spec := testWorld(t, 300, 6)
	addrs := startWorkers(t, 3)
	remote, err := BuildRemote(spec, parts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	ctx := context.Background()
	for pass := 0; pass < 2; pass++ {
		for qi, q := range dataset.Queries(ds, 4, 19) {
			want := oracle.TopK(spec.Measure, spec.Params, ds, q.Points, 9)
			for budget := 0; budget <= 6; budget++ {
				got, rep, err := remote.Search(ctx, q.Points, 9, QueryOptions{ProbeBudget: budget})
				if err != nil {
					t.Fatalf("budget %d: %v", budget, err)
				}
				assertBitIdentical(t, fmt.Sprintf("remote budget=%d q%d pass=%d", budget, qi, pass), 19, got, want)
				if !rep.CacheEligible {
					t.Fatalf("budget %d: exact-mode remote answer must stay cache-eligible", budget)
				}
			}
		}
	}
	if loads := remote.LoadStats(); len(loads) != 6 {
		t.Fatalf("LoadStats reported %d partitions, want 6", len(loads))
	} else {
		for _, pl := range loads {
			if pl.Queries == 0 {
				t.Fatalf("partition %d recorded no queries: %+v", pl.Partition, pl)
			}
		}
	}
}

// TestLocalSplitPartition: an online split conserves the trajectory
// set, keeps answers bit-identical to the oracle, and routes
// subsequent mutations to the new partition.
func TestLocalSplitPartition(t *testing.T) {
	ds, parts, spec := testWorld(t, 300, 4)
	c, err := BuildLocal(spec, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	lenBefore := c.Len()

	newPid, err := c.SplitPartition(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if newPid != 4 || c.NumPartitions() != 5 {
		t.Fatalf("split produced pid %d, %d partitions; want 4, 5", newPid, c.NumPartitions())
	}
	if c.Len() != lenBefore {
		t.Fatalf("split changed Len: %d -> %d", lenBefore, c.Len())
	}
	for qi, q := range dataset.Queries(ds, 5, 23) {
		want := oracle.TopK(spec.Measure, spec.Params, ds, q.Points, 10)
		got, _, err := c.Search(ctx, q.Points, 10, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, fmt.Sprintf("post-split q%d", qi), 23, got, want)
	}

	// A moved id must now be deletable through the directory (owning
	// partition = newPid), and inserts must still route.
	c.dir.mu.Lock()
	var movedID int
	for id, pid := range c.dir.loc {
		if pid == newPid {
			movedID = int(id)
			break
		}
	}
	c.dir.mu.Unlock()
	removed, _, err := c.Delete(ctx, []int{movedID}, MutateOptions{})
	if err != nil || removed != 1 {
		t.Fatalf("delete of moved id %d: removed=%d err=%v", movedID, removed, err)
	}
	tr := &geo.Trajectory{ID: 900001, Points: ds[0].Points}
	if _, err := c.Insert(ctx, []*geo.Trajectory{tr}, MutateOptions{}); err != nil {
		t.Fatalf("insert after split: %v", err)
	}
	if c.Len() != lenBefore {
		t.Fatalf("post-mutation Len %d, want %d", c.Len(), lenBefore)
	}
}

// TestRemoteSplitPartition: the three-phase remote split (install on
// every replica, register, prune) conserves the set, keeps every
// replica in sync, and stays bit-identical to the oracle.
func TestRemoteSplitPartition(t *testing.T) {
	ds, parts, spec := testWorld(t, 300, 4)
	spec.Replicas = 2
	addrs := startWorkers(t, 3)
	remote, err := BuildRemote(spec, parts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	ctx := context.Background()
	lenBefore := remote.Len()

	newPid, err := remote.SplitPartition(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if newPid != 4 || remote.NumPartitions() != 5 {
		t.Fatalf("split produced pid %d, %d partitions; want 4, 5", newPid, remote.NumPartitions())
	}
	if remote.Len() != lenBefore {
		t.Fatalf("split changed Len: %d -> %d", lenBefore, remote.Len())
	}
	remote.genMu.Lock()
	if len(remote.owners[newPid]) != 2 || remote.curGen[newPid] == 0 {
		t.Fatalf("new partition registration: owners=%v curGen=%d", remote.owners[newPid], remote.curGen[newPid])
	}
	for j, g := range remote.repGen[newPid] {
		if g == genAbsent || g < remote.curGen[newPid] {
			t.Fatalf("replica %d of new partition not in sync: gen %d cur %d", j, g, remote.curGen[newPid])
		}
	}
	remote.genMu.Unlock()

	for qi, q := range dataset.Queries(ds, 5, 29) {
		want := oracle.TopK(spec.Measure, spec.Params, ds, q.Points, 10)
		got, _, err := remote.Search(ctx, q.Points, 10, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, fmt.Sprintf("remote post-split q%d", qi), 29, got, want)
	}

	// Mutations still work and route to the new partition.
	remote.dir.mu.Lock()
	var movedID int
	for id, pid := range remote.dir.loc {
		if pid == newPid {
			movedID = int(id)
			break
		}
	}
	remote.dir.mu.Unlock()
	removed, _, err := remote.Delete(ctx, []int{movedID}, MutateOptions{})
	if err != nil || removed != 1 {
		t.Fatalf("delete of moved id %d: removed=%d err=%v", movedID, removed, err)
	}
	if remote.Len() != lenBefore-1 {
		t.Fatalf("post-delete Len %d, want %d", remote.Len(), lenBefore-1)
	}
}

// TestRemoteRebalanceMigratesHotPartition is the tentpole scenario: a
// skewed workload makes one worker hot, Rebalance migrates its hottest
// partition to the least-loaded worker with queries in flight the
// whole time, and every answer — before, during, after — stays
// bit-identical to the oracle.
func TestRemoteRebalanceMigratesHotPartition(t *testing.T) {
	ds, parts, spec := testWorld(t, 300, 4)
	addrs := startWorkers(t, 3)
	remote, err := BuildRemote(spec, parts, addrs) // p0,p3 → w0; p1 → w1; p2 → w2
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	ctx := context.Background()
	queries := dataset.Queries(ds, 6, 31)

	// Balanced cluster: Rebalance must decline.
	rep, err := remote.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved {
		t.Fatalf("rebalance moved %+v on a cold cluster", rep)
	}

	// Skew: hammer the two partitions living on worker 0.
	for i := 0; i < 20; i++ {
		for _, q := range queries {
			if _, _, err := remote.Search(ctx, q.Points, 5, QueryOptions{Partitions: []int{0, 3}}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Queries keep flowing while the migration runs.
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := queries[i%len(queries)]
			got, _, err := remote.Search(ctx, q.Points, 10, QueryOptions{})
			if err != nil {
				select {
				case errCh <- fmt.Errorf("query during migration: %w", err):
				default:
				}
				return
			}
			want := oracle.TopK(spec.Measure, spec.Params, ds, q.Points, 10)
			for r := range got {
				if got[r] != want[r] {
					select {
					case errCh <- fmt.Errorf("mid-migration divergence rank %d: %+v vs %+v", r, got[r], want[r]):
					default:
					}
					return
				}
			}
		}
	}()

	rep, err = remote.Rebalance(ctx)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case qerr := <-errCh:
		t.Fatal(qerr)
	default:
	}
	if !rep.Moved {
		t.Fatalf("rebalance declined on a skewed cluster: %+v, health %+v", rep, remote.Health())
	}
	if rep.From != addrs[0] {
		t.Fatalf("migrated from %s, want hot worker %s", rep.From, addrs[0])
	}
	if rep.Partition != 0 && rep.Partition != 3 {
		t.Fatalf("migrated partition %d, want one of the hot pair {0, 3}", rep.Partition)
	}

	// The flip is visible in the owner table and the donor dropped its
	// copy.
	remote.genMu.Lock()
	newSlot := remote.owners[rep.Partition][0]
	remote.genMu.Unlock()
	if addrs[newSlot] != rep.To || rep.To == addrs[0] {
		t.Fatalf("owner now %s, report says %s", addrs[newSlot], rep.To)
	}
	cl, err := rpc.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var st StatusReply
	if err := cl.Call("Worker.Status", &StatusArgs{Version: ProtocolVersion}, &st); err != nil {
		t.Fatal(err)
	}
	if _, held := st.Gens[rep.Partition]; held {
		t.Fatalf("donor still holds partition %d after migration", rep.Partition)
	}

	// Post-migration answers stay exact, and per-worker load is now
	// attributed to the new owner.
	for qi, q := range queries {
		want := oracle.TopK(spec.Measure, spec.Params, ds, q.Points, 10)
		got, _, err := remote.Search(ctx, q.Points, 10, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, fmt.Sprintf("post-migration q%d", qi), 31, got, want)
	}
	health := remote.Health()
	for si, h := range health {
		if h.Down || h.StaleParts > 0 {
			t.Fatalf("worker %d unhealthy after migration: %+v", si, h)
		}
	}
}

// TestReviveSlotAdoptsNewerGeneration covers ack-lost divergence: a
// worker applied a mutation whose acknowledgement the driver never
// recorded, then its circuit trips. On revival the driver must adopt
// the higher generation as authoritative (generations only move
// forward) and re-sync the now-stale peer from the revived replica —
// not regress the revived replica to the stale majority.
func TestReviveSlotAdoptsNewerGeneration(t *testing.T) {
	ds, parts, spec := testWorld(t, 120, 2)
	spec.Replicas = 2
	addrs := startWorkers(t, 2)
	remote, err := BuildRemote(spec, parts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	remote.SetFailover(fastFailover)

	// Apply a mutation to worker 0's replica of partition 0 behind the
	// driver's back — the wire-level equivalent of an ack lost in
	// flight.
	tr := &geo.Trajectory{ID: 900002, Points: ds[0].Points}
	cl, err := rpc.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var ir InsertReply
	args := &InsertArgs{Version: ProtocolVersion, PartitionID: 0, Trajectories: []*geo.Trajectory{tr}}
	if err := cl.Call("Worker.Insert", args, &ir); err != nil {
		t.Fatal(err)
	}
	remote.genMu.Lock()
	cur := remote.curGen[0]
	remote.genMu.Unlock()
	if ir.Gen <= cur {
		t.Fatalf("direct insert did not advance the worker generation: %d <= %d", ir.Gen, cur)
	}

	// Trip worker 0 and let the prober revive it.
	remote.slots[0].noteFailure(1, true)
	waitHealed(t, remote, 0)

	remote.genMu.Lock()
	adopted := remote.curGen[0]
	gens := append([]uint64(nil), remote.repGen[0]...)
	remote.genMu.Unlock()
	if adopted != ir.Gen {
		t.Fatalf("curGen[0] = %d after revival, want the revived replica's %d", adopted, ir.Gen)
	}
	for j, g := range gens {
		if g < adopted {
			t.Fatalf("replica %d still stale after heal: gen %d < %d", j, g, adopted)
		}
	}

	// The divergent trajectory is now on every replica: a query must
	// find it regardless of which replica answers.
	got, _, err := remote.Search(context.Background(), ds[0].Points, 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range got {
		if it.ID == 900002 {
			found = true
		}
	}
	if !found {
		t.Fatalf("divergent trajectory missing after heal: %+v", got)
	}
}

// TestRecoveredDirectoryErrorPropagates is the satellite-1 regression:
// a recovery whose grid or router cannot be rebuilt must surface the
// error instead of silently producing an immutable directory.
func TestRecoveredDirectoryErrorPropagates(t *testing.T) {
	_, parts, spec := testWorld(t, 50, 2)
	c, err := BuildLocal(spec, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	indexes := c.parts()

	bad := spec
	bad.Delta = -1
	if _, err := recoveredDirectory(bad, indexes); err == nil {
		t.Fatal("invalid grid must fail directory recovery")
	}

	if _, err := recoveredDirectory(spec, nil); err == nil {
		t.Fatal("zero recovered partitions must fail router rebuild")
	}

	if d, err := recoveredDirectory(spec, indexes); err != nil || d.router == nil {
		t.Fatalf("valid spec must recover a routing directory: %v", err)
	}
}

// TestNotOwnedPartitionParse pins the wire-format contract between the
// worker's rejection message and the driver's retry parser.
func TestNotOwnedPartitionParse(t *testing.T) {
	err := fmt.Errorf("cluster: worker "+notOwnerMsg+" %d", 42)
	if pid := notOwnedPartition(err); pid != 42 {
		t.Fatalf("parsed pid %d, want 42", pid)
	}
	wrapped := fmt.Errorf("cluster: Worker.Search on 127.0.0.1:1: %w", err)
	if pid := notOwnedPartition(wrapped); pid != 42 {
		t.Fatalf("parsed wrapped pid %d, want 42", pid)
	}
	if pid := notOwnedPartition(fmt.Errorf("some other error")); pid != -1 {
		t.Fatalf("unrelated error parsed as %d, want -1", pid)
	}
	if pid := notOwnedPartition(nil); pid != -1 {
		t.Fatalf("nil error parsed as %d, want -1", pid)
	}
}

// TestLoadTrackerOrdering: partitions that contribute results at low
// cost must outrank expensive no-shows once the EWMA has samples, and
// unprobed partitions explore first.
func TestLoadTrackerOrdering(t *testing.T) {
	lt := newLoadTracker(3)
	// p0: cheap and rewarding. p1: expensive and useless. p2: never
	// probed.
	for i := 0; i < 10; i++ {
		lt.record(0, 100*time.Microsecond, 5, 8)
		lt.record(1, 10*time.Millisecond, 500, 0)
	}
	order := lt.order([]int{0, 1, 2})
	if order[0] != 2 {
		t.Fatalf("unprobed partition must explore first: %v", order)
	}
	if order[1] != 0 || order[2] != 1 {
		t.Fatalf("reward-per-cost must rank p0 over p1: %v", order)
	}
	snap := lt.snapshot()
	if snap[0].Queries != 10 || snap[0].P99 == 0 || snap[2].Queries != 0 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	lt.reset(0)
	snap = lt.snapshot()
	if snap[0].Queries != 0 || snap[0].TotalTime != 0 {
		t.Fatalf("reset kept counters: %+v", snap[0])
	}
	if order2 := lt.order([]int{0, 1}); order2[0] != 0 {
		t.Fatalf("reset must keep the learned score: %v", order2)
	}
}
