package cluster

import (
	"context"
	"fmt"
	"net/rpc"
	"sort"
	"sync"

	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/partition"
)

// Online mutations route through a driver-side directory: the driver
// knows every live trajectory's owning partition (seeded from the
// batch partitioning, maintained across mutations), so Inserts are
// validated for duplicate ids globally, Deletes go only to the owning
// partition instead of a broadcast, and both engines behave
// identically. The directory assumes this driver is the only writer —
// the deployment model of both engines (workers are driven, they do
// not accept out-of-band mutations).

// directory tracks id → owning partition plus the online router that
// assigns partitions to new arrivals. One mutex serializes engine-
// level mutations end to end; queries never touch it.
type directory struct {
	mu     sync.Mutex
	loc    map[int32]int
	router *partition.OnlineRouter
}

// newDirectory seeds the directory from the batch partitioning. When
// the spec cannot support online routing (no valid grid — e.g. a
// baseline algorithm without a Delta), it returns a directory whose
// mutations fail cleanly with ErrImmutable.
func newDirectory(spec IndexSpec, parts [][]*geo.Trajectory) *directory {
	d := &directory{loc: make(map[int32]int)}
	for pid, part := range parts {
		for _, tr := range part {
			d.loc[int32(tr.ID)] = pid
		}
	}
	if g, err := grid.New(spec.Region, spec.Delta); err == nil {
		if r, err := partition.NewOnlineRouter(spec.Strategy, g, len(parts), spec.Seed); err == nil {
			d.router = r
		}
	}
	return d
}

// insert validates trs, routes each to a partition, applies the
// per-partition groups through apply (in ascending partition order),
// and records the new owners. Validation is all-or-nothing; the
// per-partition applies are not transactional across partitions — an
// apply error leaves earlier partitions mutated and reported in the
// returned Gens.
func (d *directory) insert(trs []*geo.Trajectory, apply func(pid int, trs []*geo.Trajectory) (uint64, error)) (Gens, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.router == nil {
		return nil, ErrImmutable
	}
	seen := make(map[int32]struct{}, len(trs))
	for _, tr := range trs {
		if tr == nil || len(tr.Points) == 0 {
			return nil, fmt.Errorf("cluster: cannot insert an empty trajectory")
		}
		tid := int32(tr.ID)
		if _, dup := seen[tid]; dup {
			return nil, fmt.Errorf("%w: id %d duplicated in batch", ErrDuplicateID, tr.ID)
		}
		if _, live := d.loc[tid]; live {
			return nil, fmt.Errorf("%w: id %d", ErrDuplicateID, tr.ID)
		}
		seen[tid] = struct{}{}
	}
	groups := make(map[int][]*geo.Trajectory)
	for _, tr := range trs {
		pid := d.router.Assign(tr)
		groups[pid] = append(groups[pid], tr)
	}
	gens := make(Gens, len(groups))
	for _, pid := range sortedKeys(groups) {
		gen, err := apply(pid, groups[pid])
		if err != nil {
			return gens, err
		}
		gens[pid] = gen
		for _, tr := range groups[pid] {
			d.loc[int32(tr.ID)] = pid
		}
	}
	return gens, nil
}

// delete groups the live ids by owning partition, applies the groups,
// and unregisters them. Ids the directory does not know are broadcast
// to every partition rather than skipped: normally they are simply
// not indexed (a partition-local Delete of an unknown id is a no-op),
// but after a mutation RPC whose outcome was unknown (deadline fired
// mid-flight) a worker may hold a trajectory the directory never
// recorded — broadcasting makes Delete the repair tool for that
// desync instead of leaving an undeletable ghost.
func (d *directory) delete(ids []int, numPartitions int, apply func(pid int, ids []int) (int, uint64, error)) (int, Gens, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	groups := make(map[int][]int)
	var unknown []int
	for _, id := range ids {
		if pid, ok := d.loc[int32(id)]; ok {
			groups[pid] = append(groups[pid], id)
		} else {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		for pid := 0; pid < numPartitions; pid++ {
			groups[pid] = append(groups[pid], unknown...)
		}
	}
	removed := 0
	gens := make(Gens, len(groups))
	for _, pid := range sortedKeys(groups) {
		n, gen, err := apply(pid, groups[pid])
		if err != nil {
			return removed, gens, err
		}
		removed += n
		gens[pid] = gen
		for _, id := range groups[pid] {
			delete(d.loc, int32(id))
		}
	}
	return removed, gens, nil
}

// upsert routes each trajectory to its owning partition (live ids) or
// a router-assigned one (new ids) and applies the groups with replace
// semantics; fresh counts how many of a group's ids were new. The
// per-partition apply is one snapshot-atomic swap, so no query ever
// observes a replaced id as absent.
func (d *directory) upsert(trs []*geo.Trajectory, apply func(pid int, trs []*geo.Trajectory, fresh int) (uint64, error)) (Gens, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.router == nil {
		return nil, ErrImmutable
	}
	for i, tr := range trs {
		if tr == nil || len(tr.Points) == 0 {
			return nil, fmt.Errorf("cluster: cannot insert an empty trajectory")
		}
		for _, prev := range trs[:i] {
			if prev.ID == tr.ID {
				return nil, fmt.Errorf("%w: id %d duplicated in batch", ErrDuplicateID, tr.ID)
			}
		}
	}
	groups := make(map[int][]*geo.Trajectory)
	freshIn := make(map[int]int)
	for _, tr := range trs {
		pid, live := d.loc[int32(tr.ID)]
		if !live {
			pid = d.router.Assign(tr)
			freshIn[pid]++
		}
		groups[pid] = append(groups[pid], tr)
	}
	gens := make(Gens, len(groups))
	for _, pid := range sortedKeys(groups) {
		gen, err := apply(pid, groups[pid], freshIn[pid])
		if err != nil {
			return gens, err
		}
		gens[pid] = gen
		for _, tr := range groups[pid] {
			d.loc[int32(tr.ID)] = pid
		}
	}
	return gens, nil
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// mutable resolves partition pi's index as a MutableIndex.
func (c *Local) mutable(pi int) (MutableIndex, LocalIndex, error) {
	idx := c.indexes[pi]
	m, ok := idx.(MutableIndex)
	if !ok {
		return nil, nil, fmt.Errorf("%w (partition %d, %T)", ErrImmutable, pi, idx)
	}
	return m, idx, nil
}

// Insert implements Engine.
func (c *Local) Insert(ctx context.Context, trs []*geo.Trajectory, opt MutateOptions) (Gens, error) {
	if len(trs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: insert: %w", err)
	}
	if c.dir == nil {
		return nil, ErrImmutable
	}
	return c.dir.insert(trs, func(pid int, trs []*geo.Trajectory) (uint64, error) {
		m, li, err := c.mutable(pid)
		if err != nil {
			return 0, err
		}
		if err := m.Insert(trs...); err != nil {
			return 0, err
		}
		if err := maybeCompact(m, li, opt.AutoCompact); err != nil {
			return 0, err
		}
		return m.Generation(), nil
	})
}

// Delete implements Engine.
func (c *Local) Delete(ctx context.Context, ids []int, opt MutateOptions) (int, Gens, error) {
	if len(ids) == 0 {
		return 0, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, fmt.Errorf("cluster: delete: %w", err)
	}
	if c.dir == nil {
		return 0, nil, ErrImmutable
	}
	return c.dir.delete(ids, len(c.indexes), func(pid int, ids []int) (int, uint64, error) {
		m, li, err := c.mutable(pid)
		if err != nil {
			return 0, 0, err
		}
		n := m.Delete(ids...)
		if err := maybeCompact(m, li, opt.AutoCompact); err != nil {
			return 0, 0, err
		}
		return n, m.Generation(), nil
	})
}

// Upsert implements Engine.
func (c *Local) Upsert(ctx context.Context, trs []*geo.Trajectory, opt MutateOptions) (Gens, error) {
	if len(trs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: upsert: %w", err)
	}
	if c.dir == nil {
		return nil, ErrImmutable
	}
	return c.dir.upsert(trs, func(pid int, trs []*geo.Trajectory, _ int) (uint64, error) {
		m, li, err := c.mutable(pid)
		if err != nil {
			return 0, err
		}
		if err := m.Upsert(trs...); err != nil {
			return 0, err
		}
		if err := maybeCompact(m, li, opt.AutoCompact); err != nil {
			return 0, err
		}
		return m.Generation(), nil
	})
}

// Compact implements Engine.
func (c *Local) Compact(ctx context.Context, partitions []int) (Gens, error) {
	sel, err := selectPartitions(partitions, len(c.indexes))
	if err != nil {
		return nil, err
	}
	gens := make(Gens, len(sel))
	for _, pid := range sel {
		if err := ctx.Err(); err != nil {
			return gens, fmt.Errorf("cluster: compact: %w", err)
		}
		m, _, err := c.mutable(pid)
		if err != nil {
			return gens, err
		}
		if err := m.Compact(); err != nil {
			return gens, err
		}
		gens[pid] = m.Generation()
	}
	return gens, nil
}

// callOwner invokes a v3 mutation RPC on the worker owning pid,
// honoring ctx: a cancelled context abandons the wait (the worker
// still applies the mutation it already received — callers must treat
// a ctx error as "outcome unknown", like any RPC timeout).
func (r *Remote) callOwner(ctx context.Context, pid int, method string, args, reply any) error {
	clients := r.conns()
	if len(clients) == 0 {
		return ErrClosed
	}
	ci, ok := r.owner[pid]
	if !ok || ci >= len(clients) {
		return fmt.Errorf("cluster: no worker owns partition %d", pid)
	}
	call := clients[ci].Go(method, args, reply, make(chan *rpc.Call, 1))
	select {
	case <-call.Done:
		return call.Error
	case <-ctx.Done():
		return fmt.Errorf("cluster: %s on %s: %w", method, r.addrs[ci], ctx.Err())
	}
}

// Insert implements Engine for the remote deployment: the driver
// validates and routes exactly as the local engine does, then ships
// each partition's group to its owning worker.
func (r *Remote) Insert(ctx context.Context, trs []*geo.Trajectory, opt MutateOptions) (Gens, error) {
	if len(trs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: insert: %w", err)
	}
	if r.dir == nil {
		return nil, ErrImmutable
	}
	return r.dir.insert(trs, func(pid int, trs []*geo.Trajectory) (uint64, error) {
		args := &InsertArgs{Version: ProtocolVersion, PartitionID: pid, Trajectories: trs, AutoCompact: opt.AutoCompact}
		var reply InsertReply
		if err := r.callOwner(ctx, pid, "Worker.Insert", args, &reply); err != nil {
			return 0, err
		}
		r.partLen[pid].Store(int64(reply.Len))
		return reply.Gen, nil
	})
}

// Delete implements Engine for the remote deployment.
func (r *Remote) Delete(ctx context.Context, ids []int, opt MutateOptions) (int, Gens, error) {
	if len(ids) == 0 {
		return 0, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, fmt.Errorf("cluster: delete: %w", err)
	}
	if r.dir == nil {
		return 0, nil, ErrImmutable
	}
	return r.dir.delete(ids, r.NumPartitions(), func(pid int, ids []int) (int, uint64, error) {
		args := &DeleteArgs{Version: ProtocolVersion, PartitionID: pid, IDs: ids, AutoCompact: opt.AutoCompact}
		var reply DeleteReply
		if err := r.callOwner(ctx, pid, "Worker.Delete", args, &reply); err != nil {
			return 0, 0, err
		}
		r.partLen[pid].Store(int64(reply.Len))
		return reply.Removed, reply.Gen, nil
	})
}

// Upsert implements Engine for the remote deployment: replace groups
// ride the Insert RPC with the Replace flag set.
func (r *Remote) Upsert(ctx context.Context, trs []*geo.Trajectory, opt MutateOptions) (Gens, error) {
	if len(trs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: upsert: %w", err)
	}
	if r.dir == nil {
		return nil, ErrImmutable
	}
	return r.dir.upsert(trs, func(pid int, trs []*geo.Trajectory, _ int) (uint64, error) {
		args := &InsertArgs{Version: ProtocolVersion, PartitionID: pid, Trajectories: trs, Replace: true, AutoCompact: opt.AutoCompact}
		var reply InsertReply
		if err := r.callOwner(ctx, pid, "Worker.Insert", args, &reply); err != nil {
			return 0, err
		}
		r.partLen[pid].Store(int64(reply.Len))
		return reply.Gen, nil
	})
}

// Compact implements Engine for the remote deployment: each worker
// compacts the selected partitions it owns.
func (r *Remote) Compact(ctx context.Context, partitions []int) (Gens, error) {
	sub, err := r.subset(partitions)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: compact: %w", err)
	}
	clients := r.conns()
	if len(clients) == 0 {
		return nil, ErrClosed
	}
	gens := make(Gens)
	var mu sync.Mutex
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for _, ci := range r.targets(sub) {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			args := &CompactArgs{Version: ProtocolVersion, Partitions: sub}
			var reply CompactReply
			call := clients[ci].Go("Worker.Compact", args, &reply, make(chan *rpc.Call, 1))
			select {
			case <-call.Done:
				errs[ci] = call.Error
			case <-ctx.Done():
				errs[ci] = fmt.Errorf("cluster: Worker.Compact on %s: %w", r.addrs[ci], ctx.Err())
				return
			}
			mu.Lock()
			for pid, gen := range reply.Gens {
				gens[pid] = gen
			}
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return gens, fmt.Errorf("cluster: compact on %s: %w", r.addrs[i], err)
		}
	}
	return gens, nil
}
