package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/partition"
)

// Online mutations route through a driver-side directory: the driver
// knows every live trajectory's owning partition (seeded from the
// batch partitioning, maintained across mutations), so Inserts are
// validated for duplicate ids globally, Deletes go only to the owning
// partition instead of a broadcast, and both engines behave
// identically. The directory assumes this driver is the only writer —
// the deployment model of both engines (workers are driven, they do
// not accept out-of-band mutations).

// directory tracks id → owning partition plus the online router that
// assigns partitions to new arrivals. One mutex serializes engine-
// level mutations end to end; queries never touch it.
type directory struct {
	mu     sync.Mutex
	loc    map[int32]int
	router *partition.OnlineRouter
	spec   IndexSpec  // retained for router rebuilds after a split
	grid   *grid.Grid // shared by router rebuilds; nil without routing
}

// newDirectory seeds the directory from the batch partitioning. When
// the spec cannot support online routing (no valid grid — e.g. a
// baseline algorithm without a Delta), it returns a directory whose
// mutations fail cleanly with ErrImmutable.
func newDirectory(spec IndexSpec, parts [][]*geo.Trajectory) *directory {
	d := &directory{loc: make(map[int32]int), spec: spec}
	for pid, part := range parts {
		for _, tr := range part {
			d.loc[int32(tr.ID)] = pid
		}
	}
	if g, err := grid.New(spec.Region, spec.Delta); err == nil {
		if r, err := partition.NewOnlineRouter(spec.Strategy, g, len(parts), spec.Seed); err == nil {
			d.grid = g
			d.router = r
		}
	}
	return d
}

// rebuildRouterLocked re-derives the online router for n partitions
// after a split grew the partition count. The rebuilt router restarts
// its placement counters — the same heuristic drift recovery accepts
// (see recoveredDirectory); the loc map stays the routing truth.
// Caller holds d.mu.
func (d *directory) rebuildRouterLocked(n int) error {
	if d.grid == nil {
		return ErrImmutable
	}
	r, err := partition.NewOnlineRouter(d.spec.Strategy, d.grid, n, d.spec.Seed)
	if err != nil {
		return fmt.Errorf("cluster: split router rebuild: %w", err)
	}
	d.router = r
	return nil
}

// insert validates trs, routes each to a partition, applies the
// per-partition groups through apply (in ascending partition order),
// and records the new owners. Validation is all-or-nothing; the
// per-partition applies are not transactional across partitions — an
// apply error leaves earlier partitions mutated and reported in the
// returned Gens.
func (d *directory) insert(trs []*geo.Trajectory, apply func(pid int, trs []*geo.Trajectory) (uint64, error)) (Gens, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.router == nil {
		return nil, ErrImmutable
	}
	seen := make(map[int32]struct{}, len(trs))
	for _, tr := range trs {
		if tr == nil || len(tr.Points) == 0 {
			return nil, fmt.Errorf("cluster: cannot insert an empty trajectory")
		}
		tid := int32(tr.ID)
		if _, dup := seen[tid]; dup {
			return nil, fmt.Errorf("%w: id %d duplicated in batch", ErrDuplicateID, tr.ID)
		}
		if _, live := d.loc[tid]; live {
			return nil, fmt.Errorf("%w: id %d", ErrDuplicateID, tr.ID)
		}
		seen[tid] = struct{}{}
	}
	groups := make(map[int][]*geo.Trajectory)
	for _, tr := range trs {
		pid := d.router.Assign(tr)
		groups[pid] = append(groups[pid], tr)
	}
	gens := make(Gens, len(groups))
	for _, pid := range sortedKeys(groups) {
		gen, err := apply(pid, groups[pid])
		if err != nil {
			return gens, err
		}
		gens[pid] = gen
		for _, tr := range groups[pid] {
			d.loc[int32(tr.ID)] = pid
		}
	}
	return gens, nil
}

// delete groups the live ids by owning partition, applies the groups,
// and unregisters them. Ids the directory does not know are broadcast
// to every partition rather than skipped: normally they are simply
// not indexed (a partition-local Delete of an unknown id is a no-op),
// but after a mutation RPC whose outcome was unknown (deadline fired
// mid-flight) a worker may hold a trajectory the directory never
// recorded — broadcasting makes Delete the repair tool for that
// desync instead of leaving an undeletable ghost.
func (d *directory) delete(ids []int, numPartitions int, apply func(pid int, ids []int) (int, uint64, error)) (int, Gens, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	groups := make(map[int][]int)
	var unknown []int
	for _, id := range ids {
		if pid, ok := d.loc[int32(id)]; ok {
			groups[pid] = append(groups[pid], id)
		} else {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		for pid := 0; pid < numPartitions; pid++ {
			groups[pid] = append(groups[pid], unknown...)
		}
	}
	removed := 0
	gens := make(Gens, len(groups))
	for _, pid := range sortedKeys(groups) {
		n, gen, err := apply(pid, groups[pid])
		if err != nil {
			return removed, gens, err
		}
		removed += n
		gens[pid] = gen
		for _, id := range groups[pid] {
			delete(d.loc, int32(id))
		}
	}
	return removed, gens, nil
}

// upsert routes each trajectory to its owning partition (live ids) or
// a router-assigned one (new ids) and applies the groups with replace
// semantics; fresh counts how many of a group's ids were new. The
// per-partition apply is one snapshot-atomic swap, so no query ever
// observes a replaced id as absent.
func (d *directory) upsert(trs []*geo.Trajectory, apply func(pid int, trs []*geo.Trajectory, fresh int) (uint64, error)) (Gens, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.router == nil {
		return nil, ErrImmutable
	}
	for i, tr := range trs {
		if tr == nil || len(tr.Points) == 0 {
			return nil, fmt.Errorf("cluster: cannot insert an empty trajectory")
		}
		for _, prev := range trs[:i] {
			if prev.ID == tr.ID {
				return nil, fmt.Errorf("%w: id %d duplicated in batch", ErrDuplicateID, tr.ID)
			}
		}
	}
	groups := make(map[int][]*geo.Trajectory)
	freshIn := make(map[int]int)
	for _, tr := range trs {
		pid, live := d.loc[int32(tr.ID)]
		if !live {
			pid = d.router.Assign(tr)
			freshIn[pid]++
		}
		groups[pid] = append(groups[pid], tr)
	}
	gens := make(Gens, len(groups))
	for _, pid := range sortedKeys(groups) {
		gen, err := apply(pid, groups[pid], freshIn[pid])
		if err != nil {
			return gens, err
		}
		gens[pid] = gen
		for _, tr := range groups[pid] {
			d.loc[int32(tr.ID)] = pid
		}
	}
	return gens, nil
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// mutable resolves partition pi's index as a MutableIndex.
func (c *Local) mutable(pi int) (MutableIndex, LocalIndex, error) {
	idx := c.parts()[pi]
	m, ok := idx.(MutableIndex)
	if !ok {
		return nil, nil, fmt.Errorf("%w (partition %d, %T)", ErrImmutable, pi, idx)
	}
	return m, idx, nil
}

// Insert implements Engine.
func (c *Local) Insert(ctx context.Context, trs []*geo.Trajectory, opt MutateOptions) (Gens, error) {
	if len(trs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: insert: %w", err)
	}
	if c.dir == nil {
		return nil, ErrImmutable
	}
	return c.dir.insert(trs, func(pid int, trs []*geo.Trajectory) (uint64, error) {
		m, li, err := c.mutable(pid)
		if err != nil {
			return 0, err
		}
		if err := m.Insert(trs...); err != nil {
			return 0, err
		}
		if err := maybeCompact(m, li, opt.AutoCompact); err != nil {
			return 0, err
		}
		return m.Generation(), nil
	})
}

// Delete implements Engine.
func (c *Local) Delete(ctx context.Context, ids []int, opt MutateOptions) (int, Gens, error) {
	if len(ids) == 0 {
		return 0, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, fmt.Errorf("cluster: delete: %w", err)
	}
	if c.dir == nil {
		return 0, nil, ErrImmutable
	}
	return c.dir.delete(ids, c.NumPartitions(), func(pid int, ids []int) (int, uint64, error) {
		m, li, err := c.mutable(pid)
		if err != nil {
			return 0, 0, err
		}
		n := m.Delete(ids...)
		if err := maybeCompact(m, li, opt.AutoCompact); err != nil {
			return 0, 0, err
		}
		return n, m.Generation(), nil
	})
}

// Upsert implements Engine.
func (c *Local) Upsert(ctx context.Context, trs []*geo.Trajectory, opt MutateOptions) (Gens, error) {
	if len(trs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: upsert: %w", err)
	}
	if c.dir == nil {
		return nil, ErrImmutable
	}
	return c.dir.upsert(trs, func(pid int, trs []*geo.Trajectory, _ int) (uint64, error) {
		m, li, err := c.mutable(pid)
		if err != nil {
			return 0, err
		}
		if err := m.Upsert(trs...); err != nil {
			return 0, err
		}
		if err := maybeCompact(m, li, opt.AutoCompact); err != nil {
			return 0, err
		}
		return m.Generation(), nil
	})
}

// Compact implements Engine.
func (c *Local) Compact(ctx context.Context, partitions []int) (Gens, error) {
	sel, err := selectPartitions(partitions, c.NumPartitions())
	if err != nil {
		return nil, err
	}
	gens := make(Gens, len(sel))
	for _, pid := range sel {
		if err := ctx.Err(); err != nil {
			return gens, fmt.Errorf("cluster: compact: %w", err)
		}
		m, _, err := c.mutable(pid)
		if err != nil {
			return gens, err
		}
		if err := m.Compact(); err != nil {
			return gens, err
		}
		gens[pid] = m.Generation()
	}
	return gens, nil
}

// Remote mutations fan out to every in-sync replica of the touched
// partition (mutateReplicas, failover.go): the mutation succeeds as
// long as one replica acknowledges; a replica that fails its call
// stops serving reads until the background prober restores it from an
// acknowledged peer, so readers never observe the missed write's
// absence. A ctx error still means "outcome unknown" — the workers
// may have applied a mutation whose reply the driver stopped waiting
// for — with the same retry/repair contract as before (deterministic
// routing, Delete broadcast for unknown ids).

// Insert implements Engine for the remote deployment: the driver
// validates and routes exactly as the local engine does, then ships
// each partition's group to all of its in-sync replicas.
func (r *Remote) Insert(ctx context.Context, trs []*geo.Trajectory, opt MutateOptions) (Gens, error) {
	if len(trs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: insert: %w", err)
	}
	if r.dir == nil {
		return nil, ErrImmutable
	}
	return r.dir.insert(trs, func(pid int, trs []*geo.Trajectory) (uint64, error) {
		return r.mutateReplicas(ctx, pid, "Worker.Insert",
			func() any {
				return &InsertArgs{Version: ProtocolVersion, PartitionID: pid, Trajectories: trs, AutoCompact: opt.AutoCompact}
			},
			func() any { return new(InsertReply) },
			func(reply any) (uint64, int) { ir := reply.(*InsertReply); return ir.Gen, ir.Len })
	})
}

// Delete implements Engine for the remote deployment.
func (r *Remote) Delete(ctx context.Context, ids []int, opt MutateOptions) (int, Gens, error) {
	if len(ids) == 0 {
		return 0, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, fmt.Errorf("cluster: delete: %w", err)
	}
	if r.dir == nil {
		return 0, nil, ErrImmutable
	}
	return r.dir.delete(ids, r.NumPartitions(), func(pid int, ids []int) (int, uint64, error) {
		removed := 0
		gen, err := r.mutateReplicas(ctx, pid, "Worker.Delete",
			func() any {
				return &DeleteArgs{Version: ProtocolVersion, PartitionID: pid, IDs: ids, AutoCompact: opt.AutoCompact}
			},
			func() any { return new(DeleteReply) },
			func(reply any) (uint64, int) {
				dr := reply.(*DeleteReply)
				removed = dr.Removed // identical on every in-sync replica
				return dr.Gen, dr.Len
			})
		return removed, gen, err
	})
}

// Upsert implements Engine for the remote deployment: replace groups
// ride the Insert RPC with the Replace flag set.
func (r *Remote) Upsert(ctx context.Context, trs []*geo.Trajectory, opt MutateOptions) (Gens, error) {
	if len(trs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: upsert: %w", err)
	}
	if r.dir == nil {
		return nil, ErrImmutable
	}
	return r.dir.upsert(trs, func(pid int, trs []*geo.Trajectory, _ int) (uint64, error) {
		return r.mutateReplicas(ctx, pid, "Worker.Insert",
			func() any {
				return &InsertArgs{Version: ProtocolVersion, PartitionID: pid, Trajectories: trs, Replace: true, AutoCompact: opt.AutoCompact}
			},
			func() any { return new(InsertReply) },
			func(reply any) (uint64, int) { ir := reply.(*InsertReply); return ir.Gen, ir.Len })
	})
}

// Compact implements Engine for the remote deployment: every in-sync
// replica of each selected partition folds its delta, keeping the
// replica generations aligned. Partitions compact concurrently —
// compaction is a rebuild, and serializing P×R round trips would make
// CompactNow latency linear in the partition count.
func (r *Remote) Compact(ctx context.Context, partitions []int) (Gens, error) {
	sub, err := selectPartitions(partitions, r.NumPartitions())
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: compact: %w", err)
	}
	gens := make(Gens, len(sub))
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for _, pid := range sub {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			gen, err := r.mutateReplicas(ctx, pid, "Worker.Compact",
				func() any { return &CompactArgs{Version: ProtocolVersion, Partitions: []int{pid}} },
				func() any { return new(CompactReply) },
				func(reply any) (uint64, int) {
					return reply.(*CompactReply).Gens[pid], int(r.partLen[pid].Load())
				})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			gens[pid] = gen
		}(pid)
	}
	wg.Wait()
	return gens, firstErr
}
