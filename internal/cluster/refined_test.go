package cluster

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/rpc"
	"testing"

	"repose/internal/cluster/chaos"
	"repose/internal/dataset"
	"repose/internal/geo"
	"repose/internal/oracle"
	"repose/internal/rptrie"
	"repose/internal/topk"
)

// attachClusterTimes timestamps roughly three quarters of ds in place
// (ascending starts with occasional repeats), leaving the rest
// untimestamped so windowed queries exercise the never-matches rule.
// Partitions share the trajectory pointers, so the build sees the
// timestamps on both engines.
func attachClusterTimes(seed int64, ds []*geo.Trajectory) {
	rng := rand.New(rand.NewSource(seed))
	for _, tr := range ds {
		if rng.Intn(4) == 0 {
			tr.Times = nil
			continue
		}
		ts := make([]int64, len(tr.Points))
		cur := rng.Int63n(500)
		for i := range ts {
			ts[i] = cur
			cur += rng.Int63n(40)
		}
		tr.Times = ts
	}
}

func oracleSpecOf(rs rptrie.RefineSpec) oracle.Spec {
	return oracle.Spec{Sub: rs.Sub, MinSeg: rs.MinSeg, MaxSeg: rs.MaxSeg, Window: rs.Window, From: rs.From, To: rs.To}
}

// assertRefinedProfile pins a refined top-k answer to the oracle:
// bit-identical distance profile, no duplicate ids, and every reported
// item's (Dist, Start, End) equal to the oracle's tie-broken
// refinement of that exact trajectory. Result sets may differ from the
// oracle only inside tied-distance groups (subtree pruning at lb ≥ dk
// may drop a tied candidate the oracle keeps).
func assertRefinedProfile(t *testing.T, ctx string, refine func(*geo.Trajectory) (float64, int, int), byID map[int]*geo.Trajectory, got, want []topk.Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\ngot  %v\nwant %v", ctx, len(got), len(want), got, want)
	}
	seen := make(map[int]bool, len(got))
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("%s: rank %d distance %v, oracle %v\ngot  %v\nwant %v", ctx, i, got[i].Dist, want[i].Dist, got, want)
		}
		if seen[got[i].ID] {
			t.Fatalf("%s: duplicate id %d in %v", ctx, got[i].ID, got)
		}
		seen[got[i].ID] = true
		tr := byID[got[i].ID]
		if tr == nil {
			t.Fatalf("%s: result id %d is not in the dataset", ctx, got[i].ID)
		}
		d, s, e := refine(tr)
		if d != got[i].Dist || s != got[i].Start || e != got[i].End {
			t.Fatalf("%s: id %d reported (%v, [%d, %d)), oracle refinement (%v, [%d, %d))",
				ctx, got[i].ID, got[i].Dist, got[i].Start, got[i].End, d, s, e)
		}
	}
}

// TestRefinedQueriesMatchOracleAcrossEngines pins the refined query
// modes — subtrajectory, time-windowed, and their composition — to the
// brute-force oracle on all three layouts, through BOTH engines (the
// remote one exercises protocol v7's RefineSpec plumbing and the
// worker-side refiner dispatch), top-k and radius.
func TestRefinedQueriesMatchOracleAcrossEngines(t *testing.T) {
	ds, parts, spec := testWorld(t, 200, 4)
	attachClusterTimes(11, ds)
	byID := make(map[int]*geo.Trajectory, len(ds))
	for _, tr := range ds {
		byID[tr.ID] = tr
	}
	layouts := []struct {
		name string
		mod  func(*IndexSpec)
	}{
		{"pointer", func(s *IndexSpec) {}},
		{"succinct", func(s *IndexSpec) { s.Succinct = true }},
		{"compressed", func(s *IndexSpec) { s.Layout = rptrie.LayoutCompressed }},
	}
	modes := []rptrie.RefineSpec{
		{Sub: true},
		{Sub: true, MinSeg: 3, MaxSeg: 8},
		{Window: true, From: 100, To: 450},
		{Sub: true, MinSeg: 2, Window: true, From: 50, To: 600},
	}
	queries := dataset.Queries(ds, 4, 13)
	ctx := context.Background()
	for _, lay := range layouts {
		sp := spec
		lay.mod(&sp)
		local, err := BuildLocal(sp, parts, 4)
		if err != nil {
			t.Fatalf("%s: BuildLocal: %v", lay.name, err)
		}
		remote, err := BuildRemote(sp, parts, startWorkers(t, 3))
		if err != nil {
			t.Fatalf("%s: BuildRemote: %v", lay.name, err)
		}
		engines := []struct {
			name string
			e    Engine
		}{{"local", local}, {"remote", remote}}
		for qi, q := range queries {
			for _, rs := range modes {
				osp := oracleSpecOf(rs)
				refine := func(tr *geo.Trajectory) (float64, int, int) {
					return osp.Refine(sp.Measure, sp.Params, q.Points, tr)
				}
				want := oracle.TopKRefined(sp.Measure, sp.Params, ds, q.Points, 6, osp)
				for _, eng := range engines {
					label := lay.name + "/" + eng.name
					got, rep, err := eng.e.Search(ctx, q.Points, 6, QueryOptions{Refine: rs})
					if err != nil {
						t.Fatalf("%s q%d spec=%+v: Search: %v", label, qi, rs, err)
					}
					assertRefinedProfile(t, label, refine, byID, got, want)
					if !rep.CacheEligible {
						t.Fatalf("%s q%d: full-scatter refined search must stay cache-eligible", label, qi)
					}
					if sp.Succinct {
						continue // no radius walk on the succinct layout
					}
					radius := 0.8
					wantR := oracle.RadiusRefined(sp.Measure, sp.Params, ds, q.Points, radius, osp)
					gotR, _, err := eng.e.SearchRadius(ctx, q.Points, radius, QueryOptions{Refine: rs})
					if err != nil {
						t.Fatalf("%s q%d spec=%+v: SearchRadius: %v", label, qi, rs, err)
					}
					assertBitIdentical(t, label+" radius", 13, gotR, wantR)
				}
			}
		}
		remote.Close()
	}
}

// TestRefinedRejectsBaselineIndexes: a refined query routed to a
// partition whose index cannot report a configuration (the baselines)
// must fail with a diagnosable error, not silently answer
// whole-trajectory.
func TestRefinedRejectsBaselineIndexes(t *testing.T) {
	_, parts, spec := testWorld(t, 60, 2)
	spec.Algorithm = LS
	local, err := BuildLocal(spec, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := parts[0][0].Points
	if _, _, err := local.Search(context.Background(), q, 3, QueryOptions{Refine: rptrie.RefineSpec{Sub: true}}); err == nil {
		t.Fatal("refined search on a baseline index should fail")
	}
}

// brokenBoundWorker serves the full worker surface but fails every
// Worker.Bound call — the shape of a worker whose bound service is
// down while its scan path still works. The error arrives at the
// driver as an rpc.ServerError, which the failover layer surfaces
// directly (application errors are not failed over).
type brokenBoundWorker struct {
	*Worker
}

func (w *brokenBoundWorker) Bound(args *BoundArgs, reply *BoundReply) error {
	return errors.New("bound service unavailable")
}

// startWorkerService serves svc under the "Worker" RPC name on
// loopback and returns its address.
func startWorkerService(t *testing.T, svc any) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", svc); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln.Addr().String()
}

// TestBudgetedSearchSurvivesBoundFailure: the exact-mode bound wave is
// an optimization, not a correctness step. When a worker's Bound
// endpoint errors (here: always, with its replica set exhausted at one
// replica), the driver must conservatively scan the unproven tail
// instead of failing the whole query — the scan subsumes the bound
// check, so the answer stays exact and cache-eligible. Before the fix,
// Remote.searchBudgeted returned the bound wave's error and the query
// died.
func TestBudgetedSearchSurvivesBoundFailure(t *testing.T) {
	ds, parts, spec := testWorld(t, 120, 2)
	// Partition placement is round-robin, so with two workers
	// partition 0 lands on worker 0 (healthy) and partition 1 on
	// worker 1 (broken Bound). Both sit behind chaos proxies.
	addrs := []string{
		startWorkerService(t, NewWorker()),
		startWorkerService(t, &brokenBoundWorker{Worker: NewWorker()}),
	}
	fleet, err := chaos.NewFleet(addrs, chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })
	remote, err := BuildRemote(spec, parts, fleet.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	remote.SetFailover(fastFailover)

	ctx := context.Background()
	q := dataset.Queries(ds, 1, 5)[0]
	// A fresh load tracker orders unprobed partitions by selection
	// order, so budget 1 probes partition 0 and bound-checks partition
	// 1 — straight into the broken Bound endpoint.
	got, rep, err := remote.Search(ctx, q.Points, 9, QueryOptions{ProbeBudget: 1})
	if err != nil {
		t.Fatalf("budgeted search failed on a bound error instead of scanning the partition: %v", err)
	}
	want := oracle.TopK(spec.Measure, spec.Params, ds, q.Points, 9)
	assertSameDistances(t, "budgeted-with-broken-bound", got, want)
	full, _, err := remote.Search(ctx, q.Points, 9, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "budgeted vs full scatter", 5, got, full)
	if len(rep.PrunedPartitions) != 0 {
		t.Fatalf("a failed bound proves nothing, yet partitions %v were pruned", rep.PrunedPartitions)
	}
	if len(rep.ProbedPartitions) != 2 {
		t.Fatalf("both partitions must be scanned, probed %v", rep.ProbedPartitions)
	}
	if !rep.CacheEligible || len(rep.SkippedPartitions) != 0 {
		t.Fatalf("the conservative scan keeps the answer exact: eligible=%v skipped=%v",
			rep.CacheEligible, rep.SkippedPartitions)
	}
}

// TestBudgetedLocalSearchSurvivesBoundFailure is the Local engine's
// counterpart: a partition whose bound check errors while its scan
// path still answers is scanned, not failed.
func TestBudgetedLocalSearchSurvivesBoundFailure(t *testing.T) {
	ds, parts, spec := testWorld(t, 120, 3)
	local, err := BuildLocal(spec, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Swap partition 2's index for one whose BoundContext always
	// errors while its search path still answers.
	swapped := append([]LocalIndex(nil), *local.partsPtr.Load()...)
	swapped[2] = &boundErrIndex{LocalIndex: swapped[2]}
	local.partsPtr.Store(&swapped)

	ctx := context.Background()
	q := dataset.Queries(ds, 1, 5)[0]
	got, rep, err := local.Search(ctx, q.Points, 9, QueryOptions{ProbeBudget: 2})
	if err != nil {
		t.Fatalf("budgeted local search failed on a bound error: %v", err)
	}
	want := oracle.TopK(spec.Measure, spec.Params, ds, q.Points, 9)
	assertSameDistances(t, "local-budgeted-with-broken-bound", got, want)
	if containsInt(rep.PrunedPartitions, 2) {
		t.Fatalf("the unboundable partition was pruned: %v", rep.PrunedPartitions)
	}
	if !rep.CacheEligible {
		t.Fatal("the conservative scan keeps the answer exact and cache-eligible")
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// boundErrIndex delegates everything to the wrapped index but fails
// every bound check.
type boundErrIndex struct {
	LocalIndex
}

func (b *boundErrIndex) BoundContext(ctx context.Context, q []geo.Point, opt rptrie.SearchOptions) (float64, error) {
	return 0, errors.New("bound unavailable")
}

// TestRadiusIgnoresProbeBudgetAndStaysCacheEligible: radius queries
// have no probe-budget phase, so WithProbeBudget/WithBestEffortProbes
// must neither change the answer nor cost the report its cache
// eligibility — on both engines. Guards the serve cache against a
// future best-effort radius silently poisoning it.
func TestRadiusIgnoresProbeBudgetAndStaysCacheEligible(t *testing.T) {
	ds, parts, spec := testWorld(t, 150, 4)
	local, err := BuildLocal(spec, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := BuildRemote(spec, parts, startWorkers(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })

	ctx := context.Background()
	q := dataset.Queries(ds, 1, 9)[0]
	engines := []struct {
		name string
		e    Engine
	}{{"local", local}, {"remote", remote}}
	for _, eng := range engines {
		plain, plainRep, err := eng.e.SearchRadius(ctx, q.Points, 0.6, QueryOptions{})
		if err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if len(plain) == 0 {
			t.Fatalf("%s: degenerate case, no in-range trajectories", eng.name)
		}
		if !plainRep.CacheEligible {
			t.Fatalf("%s: plain full-scatter radius must be cache-eligible", eng.name)
		}
		budgeted, rep, err := eng.e.SearchRadius(ctx, q.Points, 0.6, QueryOptions{ProbeBudget: 1, BestEffort: true})
		if err != nil {
			t.Fatalf("%s with budget: %v", eng.name, err)
		}
		assertBitIdentical(t, eng.name+" radius under probe-budget options", 9, budgeted, plain)
		if !rep.CacheEligible {
			t.Fatalf("%s: radius ignores probe budgets, so the answer is exact and must stay cache-eligible", eng.name)
		}
		if len(rep.SkippedPartitions) != 0 || len(rep.PrunedPartitions) != 0 {
			t.Fatalf("%s: radius must not skip or prune: %+v", eng.name, rep)
		}
	}
	// Partition-restricted radius answers remain ineligible.
	_, rep, err := local.SearchRadius(ctx, q.Points, 0.6, QueryOptions{Partitions: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheEligible {
		t.Fatal("partition-restricted radius must not be cache-eligible")
	}
}
