package cluster

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repose/internal/geo"
)

// fuzzSeedMessages produces one valid gob encoding per RPC message
// type, seeding the corpus with well-formed frames the fuzzer can
// mutate into near-valid adversarial ones.
func fuzzSeedMessages(f *testing.F) {
	f.Helper()
	hdr := QueryHeader{Version: ProtocolVersion, ID: 7, BudgetNanos: 1e9, Partitions: []int{0, 2}, MinGens: []uint64{1, 0, 3}}
	q := []geo.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	for _, msg := range []any{
		&HandshakeArgs{Version: ProtocolVersion},
		&BuildArgs{Version: ProtocolVersion, PartitionID: 1, Trajectories: []*geo.Trajectory{{ID: 5, Points: q}}},
		&SearchArgs{QueryHeader: hdr, Query: q, K: 10},
		&RadiusArgs{QueryHeader: hdr, Query: q, Radius: 0.5},
		&SearchBatchArgs{QueryHeader: hdr, Queries: [][]geo.Point{q, q}, K: 3},
		&InsertArgs{Version: ProtocolVersion, PartitionID: 0, Trajectories: []*geo.Trajectory{{ID: 9, Points: q}}, AutoCompact: 0.25},
		&DeleteArgs{Version: ProtocolVersion, PartitionID: 0, IDs: []int{1, 2, 3}},
		&CompactArgs{Version: ProtocolVersion, Partitions: []int{0}},
		&CancelArgs{ID: 42},
	} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
}

// FuzzRPCDecode feeds arbitrary bytes through gob decoding into every
// wire message type the worker accepts. Decoding must fail cleanly —
// never panic, never run away — no matter the input; this is the
// worker's exposure to a malicious or corrupted driver connection.
func FuzzRPCDecode(f *testing.F) {
	fuzzSeedMessages(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound allocation, not coverage
		}
		targets := []func() any{
			func() any { return new(HandshakeArgs) },
			func() any { return new(BuildArgs) },
			func() any { return new(SearchArgs) },
			func() any { return new(RadiusArgs) },
			func() any { return new(SearchBatchArgs) },
			func() any { return new(InsertArgs) },
			func() any { return new(DeleteArgs) },
			func() any { return new(CompactArgs) },
			func() any { return new(CancelArgs) },
			func() any { return new(QueryHeader) },
		}
		for _, mk := range targets {
			// A fresh decoder per message: gob streams are stateful
			// (type definitions precede values), exactly as net/rpc
			// decodes each request.
			_ = gob.NewDecoder(bytes.NewReader(data)).Decode(mk())
		}
	})
}
