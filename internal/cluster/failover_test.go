package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repose/internal/cluster/chaos"
	"repose/internal/dataset"
	"repose/internal/geo"
	"repose/internal/leakcheck"
	"repose/internal/oracle"
	"repose/internal/rptrie"
	"repose/internal/topk"
)

// fastFailover is the test tuning: trip circuits on the first
// failure, probe aggressively, and fail attempts over quickly so
// black-holed workers cannot stall a test.
var fastFailover = FailoverConfig{
	FailThreshold: 1,
	ProbeInterval: 25 * time.Millisecond,
	CallTimeout:   400 * time.Millisecond,
}

// chaosWorld starts n workers each behind a chaos proxy, builds a
// replicated remote through the proxies, and returns everything a
// failover test needs. The schedule stays disarmed during build.
func chaosWorld(t *testing.T, nTraj, nParts, nWorkers, replicas int, sched chaos.Schedule) ([]*geo.Trajectory, IndexSpec, *chaos.Fleet, *Remote) {
	t.Helper()
	ds, parts, spec := testWorld(t, nTraj, nParts)
	spec.Replicas = replicas
	addrs := startWorkers(t, nWorkers)
	fleet, err := chaos.NewFleet(addrs, sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })
	remote, err := BuildRemote(spec, parts, fleet.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	remote.SetFailover(fastFailover)
	return ds, spec, fleet, remote
}

// waitHealed blocks until every worker's circuit is closed and no
// replica is stale, or the deadline passes.
func waitHealed(t *testing.T, r *Remote, seed int64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		healthy := true
		for _, h := range r.Health() {
			if h.Down || h.StaleParts > 0 {
				healthy = false
			}
		}
		if healthy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not heal: %+v (seed=%d)", r.Health(), seed)
		}
		<-tick.C
	}
}

// assertBitIdentical fails unless got and want are exactly equal,
// printing the reproducing seed.
func assertBitIdentical(t *testing.T, ctx string, seed int64, got, want []topk.Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, oracle has %d (seed=%d)", ctx, len(got), len(want), seed)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s rank %d: %+v, oracle %+v (seed=%d)", ctx, i, got[i], want[i], seed)
		}
	}
}

// TestReplicatedPlacement: replicas land on distinct workers,
// round-robin, and an impossible factor is rejected.
func TestReplicatedPlacement(t *testing.T) {
	ds, parts, spec := testWorld(t, 80, 4)
	spec.Replicas = 5
	if _, err := BuildRemote(spec, parts, startWorkers(t, 3)); err == nil {
		t.Fatal("replication factor above worker count should fail the build")
	}

	spec.Replicas = 2
	addrs := startWorkers(t, 3)
	remote, err := BuildRemote(spec, parts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if remote.Replicas() != 2 {
		t.Fatalf("Replicas() = %d", remote.Replicas())
	}
	for pid, owners := range remote.owners {
		if len(owners) != 2 {
			t.Fatalf("partition %d has %d replicas", pid, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("partition %d replicas share worker %d", pid, owners[0])
		}
		if owners[0] != pid%3 || owners[1] != (pid+1)%3 {
			t.Fatalf("partition %d placed at %v, want round-robin", pid, owners)
		}
	}
	// Replication must not change answers or bookkeeping.
	local, err := BuildLocal(spec, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Len() != local.Len() || remote.IndexSizeBytes() != local.IndexSizeBytes() {
		t.Fatalf("replicated bookkeeping diverged: len %d/%d size %d/%d",
			remote.Len(), local.Len(), remote.IndexSizeBytes(), local.IndexSizeBytes())
	}
	for _, q := range dataset.Queries(ds, 3, 5) {
		got, _, err := remote.Search(context.Background(), q.Points, 7, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := local.Search(context.Background(), q.Points, 7, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "replicated fault-free", 0, got, want)
	}
}

// TestWorkerKilledMidQueryFailsOver is the acceptance scenario: with
// replication factor 2, a worker killed by the chaos proxy mid-query
// (the request reaches it; the response connection is cut) must not
// fail the query — Search, SearchRadius, and SearchBatch all return
// results bit-identical to the fault-free oracle answer.
func TestWorkerKilledMidQueryFailsOver(t *testing.T) {
	seed := chaosSeed()
	ds, spec, fleet, remote := chaosWorld(t, 300, 6, 3, 2, chaos.Schedule{})
	ctx := context.Background()
	queries := dataset.Queries(ds, 4, seed)

	for kill := 0; kill < 3; kill++ {
		p, err := fleet.At(kill)
		if err != nil {
			t.Fatal(err)
		}
		// Kill the worker as a crash would: every live connection is
		// severed and reconnects are refused. The in-flight call dies
		// with the connection and the scatter retries its partitions
		// on the surviving replicas.
		p.Down()

		for qi, q := range queries {
			want := oracle.TopK(spec.Measure, spec.Params, ds, q.Points, 10)
			got, _, err := remote.Search(ctx, q.Points, 10, QueryOptions{})
			if err != nil {
				t.Fatalf("search with worker %d dead: %v (seed=%d)", kill, err, seed)
			}
			assertBitIdentical(t, fmt.Sprintf("kill=%d search q%d", kill, qi), seed, got, want)

			wantR := oracle.Radius(spec.Measure, spec.Params, ds, q.Points, 0.6)
			gotR, _, err := remote.SearchRadius(ctx, q.Points, 0.6, QueryOptions{})
			if err != nil {
				t.Fatalf("radius with worker %d dead: %v (seed=%d)", kill, err, seed)
			}
			assertBitIdentical(t, fmt.Sprintf("kill=%d radius q%d", kill, qi), seed, gotR, wantR)
		}
		qpts := make([][]geo.Point, len(queries))
		for i, q := range queries {
			qpts[i] = q.Points
		}
		batch, _, err := remote.SearchBatch(ctx, qpts, 8, QueryOptions{})
		if err != nil {
			t.Fatalf("batch with worker %d dead: %v (seed=%d)", kill, err, seed)
		}
		for qi := range qpts {
			want := oracle.TopK(spec.Measure, spec.Params, ds, qpts[qi], 8)
			assertBitIdentical(t, fmt.Sprintf("kill=%d batch q%d", kill, qi), seed, batch[qi], want)
		}

		// Revive the worker and wait for the prober to heal it before
		// killing the next one — at most one worker is ever down.
		p.Up()
		waitHealed(t, remote, seed)
	}
}

// chaosSeed resolves the differential harness's seed: CHAOS_SEED from
// the environment (the CI matrix pins it) or a fixed default.
func chaosSeed() int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

// TestChaosFailoverDifferential is the seeded differential harness:
// a replicated cluster runs a query-and-mutation workload while the
// chaos schedule randomly faults one worker at a time (drop, delay,
// black-hole, mid-stream cut). Every query's results must stay
// bit-identical to the fault-free oracle over the live set; every
// failure report prints the reproducing seed.
func TestChaosFailoverDifferential(t *testing.T) {
	seed := chaosSeed()
	sched := chaos.Schedule{
		Seed:       seed,
		PDrop:      0.15,
		PCut:       0.15,
		CutAfter:   32,
		PBlackhole: 0.10,
		PDelay:     0.20,
		Delay:      time.Millisecond,
	}
	ds, spec, fleet, remote := chaosWorld(t, 250, 5, 3, 2, sched)
	ctx := context.Background()
	mirror := oracle.NewSet(ds)
	rng := rand.New(rand.NewSource(seed))

	queries := dataset.Queries(ds, 6, seed+3)
	nextID := 500_000
	for round := 0; round < 6; round++ {
		// Fault exactly one worker per round: every partition keeps a
		// clean replica, so results must stay exact.
		victim, err := fleet.At(round % 3)
		if err != nil {
			t.Fatal(err)
		}
		victim.Arm(true)

		// A mutation batch, mirrored into the oracle. Mutations ride
		// the same faulted transport.
		adds := freshTrajs(rng, nextID, 8)
		nextID += 8
		if _, err := remote.Insert(ctx, adds, MutateOptions{}); err != nil {
			t.Fatalf("round %d insert: %v (seed=%d)", round, err, seed)
		}
		mirror.Insert(adds...)
		victimID := adds[0].ID
		if n, _, err := remote.Delete(ctx, []int{victimID}, MutateOptions{}); err != nil {
			t.Fatalf("round %d delete: %v (seed=%d)", round, err, seed)
		} else if n != 1 {
			t.Fatalf("round %d delete removed %d, want 1 (seed=%d)", round, n, seed)
		}
		mirror.Delete(victimID)

		for qi, q := range queries {
			got, _, err := remote.Search(ctx, q.Points, 10, QueryOptions{})
			if err != nil {
				t.Fatalf("round %d search q%d: %v (seed=%d)", round, qi, err, seed)
			}
			assertBitIdentical(t, fmt.Sprintf("round %d search q%d", round, qi),
				seed, got, mirror.TopK(spec.Measure, spec.Params, q.Points, 10))

			gotR, _, err := remote.SearchRadius(ctx, q.Points, 0.5, QueryOptions{})
			if err != nil {
				t.Fatalf("round %d radius q%d: %v (seed=%d)", round, qi, err, seed)
			}
			assertBitIdentical(t, fmt.Sprintf("round %d radius q%d", round, qi),
				seed, gotR, mirror.Radius(spec.Measure, spec.Params, q.Points, 0.5))
		}
		qpts := [][]geo.Point{queries[0].Points, queries[1].Points, queries[2].Points}
		batch, _, err := remote.SearchBatch(ctx, qpts, 6, QueryOptions{})
		if err != nil {
			t.Fatalf("round %d batch: %v (seed=%d)", round, err, seed)
		}
		for qi := range qpts {
			assertBitIdentical(t, fmt.Sprintf("round %d batch q%d", round, qi),
				seed, batch[qi], mirror.TopK(spec.Measure, spec.Params, qpts[qi], 6))
		}

		victim.Arm(false)
		victim.Up()
		waitHealed(t, remote, seed)
	}
}

// TestWorkerRestartRejoinsViaRestore: a worker replaced by a fresh,
// empty process at the same address (proxy re-target) is healed by
// the driver — Worker.Restore streams partition state from the
// surviving replicas, including mutations applied while it was dead —
// and afterwards serves its partitions alone, bit-identical to a
// fault-free engine that applied the same mutations.
func TestWorkerRestartRejoinsViaRestore(t *testing.T) {
	// The compressed layout ships a different snapshot image over the
	// heal path, so the rejoin flow runs for both it and the pointer
	// trie.
	for _, layout := range []rptrie.Layout{rptrie.LayoutPointer, rptrie.LayoutCompressed} {
		t.Run("layout="+layout.String(), func(t *testing.T) {
			testWorkerRestartRejoinsViaRestore(t, layout)
		})
	}
}

func testWorkerRestartRejoinsViaRestore(t *testing.T, layout rptrie.Layout) {
	seed := chaosSeed()
	// 4 partitions on 3 workers at factor 2: worker 0 hosts partition
	// 0 and 3 as primary and partition 2 as backup.
	ds, parts, spec := testWorld(t, 220, 4)
	spec.Replicas = 2
	spec.Layout = layout
	addrs := startWorkers(t, 3)
	fleet, err := chaos.NewFleet(addrs, chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })
	remote, err := BuildRemote(spec, parts, fleet.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	remote.SetFailover(fastFailover)
	// The fault-free twin: a local engine fed the same mutations is
	// the oracle for partition-restricted queries (routing is
	// deterministic, so partition contents match exactly).
	twin, err := BuildLocal(spec, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed + 7))

	// Kill worker 0 outright.
	p0, err := fleet.At(0)
	if err != nil {
		t.Fatal(err)
	}
	p0.Down()

	// Mutate while it is dead: the survivors absorb the writes.
	adds := freshTrajs(rng, 700_000, 12)
	if _, err := remote.Insert(ctx, adds, MutateOptions{}); err != nil {
		t.Fatalf("insert with worker dead: %v (seed=%d)", err, seed)
	}
	if _, err := twin.Insert(ctx, adds, MutateOptions{}); err != nil {
		t.Fatal(err)
	}
	if n, _, err := remote.Delete(ctx, []int{ds[2].ID}, MutateOptions{}); err != nil || n != 1 {
		t.Fatalf("delete with worker dead: n=%d err=%v (seed=%d)", n, err, seed)
	}
	if n, _, err := twin.Delete(ctx, []int{ds[2].ID}, MutateOptions{}); err != nil || n != 1 {
		t.Fatal(err)
	}

	// "Restart" the process: a brand-new empty rejoin worker appears
	// at the same proxied address and the prober streams state back
	// into it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, NewRejoinWorker())
	p0.SetTarget(ln.Addr().String())
	p0.Up()
	waitHealed(t, remote, seed)

	// Kill worker 1. Partitions 0 and 3 are now answerable only by
	// the restored worker 0 — including the mutations it never saw
	// applied, which must have arrived via Worker.Restore.
	p1, err := fleet.At(1)
	if err != nil {
		t.Fatal(err)
	}
	p1.Down()
	q := dataset.Queries(ds, 2, seed+9)[0]
	sub := QueryOptions{Partitions: []int{0, 3}}
	got, _, err := remote.Search(ctx, q.Points, 12, sub)
	if err != nil {
		t.Fatalf("search served by restored worker: %v (seed=%d)", err, seed)
	}
	want, _, err := twin.Search(ctx, q.Points, 12, sub)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "restored-worker search", seed, got, want)

	// Kill worker 2 as well: partition 1 (replicas on workers 1 and
	// 2) has nobody left. Unrestricted queries must fail with the
	// typed unavailability error, never a silent partial answer.
	p2, err := fleet.At(2)
	if err != nil {
		t.Fatal(err)
	}
	p2.Down()
	remote.Search(ctx, q.Points, 3, QueryOptions{}) // trip the breakers
	_, _, err = remote.Search(ctx, q.Points, 3, QueryOptions{})
	if err == nil || !errors.Is(err, ErrUnavailable) {
		t.Fatalf("all-replicas-dead error = %v, want ErrUnavailable (seed=%d)", err, seed)
	}
	// Partitions the restored worker holds keep answering.
	got, _, err = remote.Search(ctx, q.Points, 12, sub)
	if err != nil {
		t.Fatalf("restricted search after double kill: %v (seed=%d)", err, seed)
	}
	assertBitIdentical(t, "restored-worker search after double kill", seed, got, want)
}

// TestHedgedQueryWinsAgainstSlowWorker: with hedging enabled, a
// worker whose link slows to a crawl stops gating the query — the
// hedged attempt on the replica answers, bit-identical to the oracle.
func TestHedgedQueryWinsAgainstSlowWorker(t *testing.T) {
	seed := chaosSeed()
	ds, spec, fleet, remote := chaosWorld(t, 200, 4, 2, 2, chaos.Schedule{})
	remote.SetFailover(FailoverConfig{
		FailThreshold: 100, // hedging only: the slow worker must not be struck
		ProbeInterval: 25 * time.Millisecond,
		CallTimeout:   20 * time.Second,
		HedgeAfter:    30 * time.Millisecond,
	})
	p, err := fleet.At(0)
	if err != nil {
		t.Fatal(err)
	}
	// ~every response chunk crawls: the primary will not answer within
	// the hedge threshold.
	p.Blackhole(true)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	q := dataset.Queries(ds, 1, seed+4)[0]
	start := time.Now()
	got, _, err := remote.Search(ctx, q.Points, 9, QueryOptions{})
	if err != nil {
		t.Fatalf("hedged search: %v (seed=%d)", err, seed)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged search took %v; the hedge did not fire (seed=%d)", elapsed, seed)
	}
	assertBitIdentical(t, "hedged search", seed,
		got, oracle.TopK(spec.Measure, spec.Params, ds, q.Points, 9))
	// The slow worker was never tripped — hedging is not failure.
	for _, h := range remote.Health() {
		if h.Down {
			t.Fatalf("hedge tripped a circuit: %+v (seed=%d)", h, seed)
		}
	}
}

// TestChaosStressRace races chaos faults against concurrent queries
// and mutations on a replicated cluster (run under -race in CI):
// every successful answer must be internally consistent, the cluster
// must heal afterwards into a state bit-identical to the mutation
// mirror, and no goroutine may outlive the run.
func TestChaosStressRace(t *testing.T) {
	seed := chaosSeed()
	ds, parts, spec := testWorld(t, 150, 4)
	spec.Replicas = 2
	addrs := startWorkers(t, 3)
	base := leakcheck.Base() // everything below must be torn down again

	fleet, err := chaos.NewFleet(addrs, chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := BuildRemote(spec, parts, fleet.Addrs())
	if err != nil {
		fleet.Close()
		t.Fatal(err)
	}
	remote.SetFailover(FailoverConfig{
		FailThreshold: 1,
		ProbeInterval: 10 * time.Millisecond,
		CallTimeout:   2 * time.Second, // generous: -race is slow
	})
	ctx := context.Background()

	known := make(map[int]bool, len(ds))
	for _, tr := range ds {
		known[tr.ID] = true
	}
	var mirrorMu sync.Mutex
	mirror := oracle.NewSet(ds)
	var uncertain []int // mutation outcomes lost to injected faults

	stop := make(chan struct{})
	var wg, injectorWg sync.WaitGroup

	// Fault injector: one worker at a time, alternating kill shapes.
	// It runs until the workload goroutines (tracked by wg) finish.
	injectorWg.Add(1)
	go func() {
		defer injectorWg.Done()
		rng := rand.New(rand.NewSource(seed + 100))
		tick := time.NewTicker(15 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			p, err := fleet.At(rng.Intn(3))
			if err != nil {
				return
			}
			if i%2 == 0 {
				p.Down()
			} else {
				p.Blackhole(true)
			}
			select {
			case <-stop:
				p.Up()
				return
			case <-tick.C:
			}
			p.Up()
		}
	}()

	// Mutator: small insert/delete batches, mirrored on success. A
	// failed call's outcome is unknown — those ids are repaired by a
	// broadcast delete after the storm.
	wg.Add(1)
	errCh := make(chan error, 2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed + 200))
		next := 900_000
		for i := 0; i < 40; i++ {
			adds := freshTrajs(rng, next, 3)
			next += 3
			mirrorMu.Lock()
			if _, err := remote.Insert(ctx, adds, MutateOptions{}); err == nil {
				mirror.Insert(adds...)
			} else {
				for _, tr := range adds {
					uncertain = append(uncertain, tr.ID)
				}
			}
			mirrorMu.Unlock()
			if i%4 == 3 {
				victim := adds[0].ID
				mirrorMu.Lock()
				if _, _, err := remote.Delete(ctx, []int{victim}, MutateOptions{}); err == nil {
					mirror.Delete(victim)
				} else {
					uncertain = append(uncertain, victim)
				}
				mirrorMu.Unlock()
			}
		}
	}()

	// Querier: consistency of every successful answer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := ds[3].Points
		for i := 0; i < 120; i++ {
			got, _, err := remote.Search(ctx, q, 15, QueryOptions{})
			if err != nil {
				// Both replicas of a partition can be mid-fault; the
				// typed error is the accepted outcome, silence is not.
				continue
			}
			seen := map[int]bool{}
			for j, r := range got {
				mirrorMu.Lock()
				ok := known[r.ID] || mirror.Has(r.ID)
				mirrorMu.Unlock()
				if !ok || seen[r.ID] || (j > 0 && got[j-1].Dist > r.Dist) {
					errCh <- fmt.Errorf("inconsistent racing result at rank %d (seed=%d)", j, seed)
					return
				}
				seen[r.ID] = true
			}
		}
	}()

	wg.Wait()
	close(stop)
	injectorWg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Storm over: heal, repair the unknown-outcome ids (Delete
	// broadcasts ids the directory does not know, so worker-side
	// ghosts cannot survive), and converge on the mirror exactly.
	for _, p := range fleet.Proxies {
		p.Up()
	}
	waitHealed(t, remote, seed)
	if len(uncertain) > 0 {
		if _, _, err := remote.Delete(ctx, uncertain, MutateOptions{}); err != nil {
			t.Fatalf("repair delete: %v (seed=%d)", err, seed)
		}
		mirror.Delete(uncertain...)
	}
	if _, err := remote.Compact(ctx, nil); err != nil {
		t.Fatalf("post-storm compact: %v (seed=%d)", err, seed)
	}
	waitHealed(t, remote, seed)
	if remote.Len() != mirror.Len() {
		t.Fatalf("post-storm Len %d, mirror %d (seed=%d)", remote.Len(), mirror.Len(), seed)
	}
	for _, q := range dataset.Queries(ds, 3, seed+5) {
		got, _, err := remote.Search(ctx, q.Points, 12, QueryOptions{})
		if err != nil {
			t.Fatalf("post-storm search: %v (seed=%d)", err, seed)
		}
		assertBitIdentical(t, "post-storm search", seed, got,
			mirror.TopK(spec.Measure, spec.Params, q.Points, 12))
	}

	// Everything the storm spawned must drain.
	if err := remote.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	fleet.Close()
	leakcheck.Settle(t, base)
}

// TestMutationUnknownOutcomeReconciles: a mutation whose outcome is
// unknown on *every* replica (all calls time out, nothing acks) must
// leave the touched partitions unavailable — never divergent — until
// the prober's reconcile pass asks the workers what they actually
// hold. Here the cluster is fully black-holed so the mutation reaches
// nobody: after healing, the authoritative state must be exactly the
// pre-mutation oracle.
func TestMutationUnknownOutcomeReconciles(t *testing.T) {
	seed := chaosSeed()
	ds, spec, fleet, remote := chaosWorld(t, 150, 3, 3, 2, chaos.Schedule{})
	ctx := context.Background()

	for _, p := range fleet.Proxies {
		p.Blackhole(true)
	}
	adds := freshTrajs(rand.New(rand.NewSource(seed)), 800_000, 3)
	if _, err := remote.Insert(ctx, adds, MutateOptions{}); err == nil {
		t.Fatalf("insert through a fully black-holed cluster should fail (seed=%d)", seed)
	}
	// No silent answers while the state is unresolved.
	if _, _, err := remote.Search(ctx, ds[1].Points, 5, QueryOptions{}); err == nil {
		t.Fatalf("search through a fully black-holed cluster should fail (seed=%d)", seed)
	}

	for _, p := range fleet.Proxies {
		p.Up()
	}
	waitHealed(t, remote, seed)

	// The workers never received the insert; reconciliation must
	// re-anchor on the original state, bit-identical to the oracle.
	for _, q := range dataset.Queries(ds, 3, seed+11) {
		got, _, err := remote.Search(ctx, q.Points, 10, QueryOptions{})
		if err != nil {
			t.Fatalf("post-reconcile search: %v (seed=%d)", err, seed)
		}
		assertBitIdentical(t, "post-reconcile search", seed, got,
			oracle.TopK(spec.Measure, spec.Params, ds, q.Points, 10))
	}
	if remote.Len() != len(ds) {
		t.Fatalf("Len %d after failed insert, want %d (seed=%d)", remote.Len(), len(ds), seed)
	}
	// The failed batch's ids never went live, so retrying it now must
	// succeed cleanly — the documented recovery for lost outcomes.
	if _, err := remote.Insert(ctx, adds, MutateOptions{}); err != nil {
		t.Fatalf("retried insert after reconcile: %v (seed=%d)", err, seed)
	}
}

// TestWorkerStatusSnapshotRestoreRPCs exercises the v4 endpoints
// directly against Worker values, including the unsupported and
// version-mismatch paths.
func TestWorkerStatusSnapshotRestoreRPCs(t *testing.T) {
	_, parts, spec := testWorld(t, 80, 2)
	w := NewWorker()
	var br BuildReply
	if err := w.Build(&BuildArgs{Version: ProtocolVersion, PartitionID: 0, Spec: spec, Trajectories: parts[0]}, &br); err != nil {
		t.Fatal(err)
	}

	var st StatusReply
	if err := w.Status(&StatusArgs{Version: ProtocolVersion}, &st); err != nil {
		t.Fatal(err)
	}
	if st.Gens[0] != 0 || st.Lens[0] != len(parts[0]) {
		t.Fatalf("status %+v", st)
	}
	if err := w.Status(&StatusArgs{}, &st); err == nil {
		t.Error("unversioned status should fail")
	}

	var snap SnapshotReply
	if err := w.Snapshot(&SnapshotArgs{Version: ProtocolVersion, PartitionID: 0}, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Data) == 0 || snap.Len != len(parts[0]) || snap.Layout != rptrie.LayoutPointer {
		t.Fatalf("snapshot reply: %d bytes, len %d, layout %v", len(snap.Data), snap.Len, snap.Layout)
	}
	if err := w.Snapshot(&SnapshotArgs{Version: ProtocolVersion, PartitionID: 9}, &snap); err == nil {
		t.Error("snapshot of unowned partition should fail")
	}

	// Restore into a fresh rejoin worker; it must serve identically.
	w2 := NewRejoinWorker()
	var sr SearchReply
	q := searchArgsV2(parts[0][0].Points, 3)
	if err := w2.Search(q, &sr); err == nil {
		t.Error("rejoin worker should reject queries before restore")
	} else if want := "awaiting state restore"; !strings.Contains(err.Error(), want) {
		t.Errorf("rejoin worker error %q, want it to mention %q", err, want)
	}
	var rr RestoreReply
	if err := w2.Restore(&RestoreArgs{Version: ProtocolVersion, PartitionID: 0, Data: snap.Data}, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Len != len(parts[0]) {
		t.Fatalf("restore reply %+v", rr)
	}
	var sr1, sr2 SearchReply
	if err := w.Search(searchArgsV2(parts[0][0].Points, 5), &sr1); err != nil {
		t.Fatal(err)
	}
	if err := w2.Search(searchArgsV2(parts[0][0].Points, 5), &sr2); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "restored worker parity", 0, sr2.Items, sr1.Items)

	// Corrupt restore data fails cleanly; so does a wrong version.
	if err := w2.Restore(&RestoreArgs{Version: ProtocolVersion, PartitionID: 0, Data: []byte("junk")}, &rr); err == nil {
		t.Error("corrupt restore should fail")
	}
	if err := w2.Restore(&RestoreArgs{PartitionID: 0, Data: snap.Data}, &rr); err == nil {
		t.Error("unversioned restore should fail")
	}

	// The succinct and compressed layouts round-trip through
	// Snapshot/Restore too, each flagged with its layout.
	for _, layout := range []rptrie.Layout{rptrie.LayoutSuccinct, rptrie.LayoutCompressed} {
		sspec := spec
		sspec.Layout = layout
		ws := NewWorker()
		if err := ws.Build(&BuildArgs{Version: ProtocolVersion, PartitionID: 1, Spec: sspec, Trajectories: parts[1]}, &br); err != nil {
			t.Fatal(err)
		}
		if err := ws.Snapshot(&SnapshotArgs{Version: ProtocolVersion, PartitionID: 1}, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Layout != layout {
			t.Fatalf("%v snapshot flagged %v", layout, snap.Layout)
		}
		ws2 := NewWorker()
		if err := ws2.Restore(&RestoreArgs{Version: ProtocolVersion, PartitionID: 1, Layout: layout, Data: snap.Data}, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Len != len(parts[1]) {
			t.Fatalf("%v restore reply %+v", layout, rr)
		}
		var srA, srB SearchReply
		if err := ws.Search(searchArgsV2(parts[1][0].Points, 5), &srA); err != nil {
			t.Fatal(err)
		}
		if err := ws2.Search(searchArgsV2(parts[1][0].Points, 5), &srB); err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, layout.String()+" restored worker parity", 1, srB.Items, srA.Items)
	}
}

// TestWorkerForceLayout: a worker with a forced layout builds its
// partitions in that layout whatever the driver's spec says, answers
// bit-identically to an unforced worker, and flags its snapshots with
// the layout it actually holds.
func TestWorkerForceLayout(t *testing.T) {
	_, parts, spec := testWorld(t, 80, 2)
	plain, forced := NewWorker(), NewWorker()
	forced.ForceLayout(rptrie.LayoutCompressed)
	var br BuildReply
	for _, w := range []*Worker{plain, forced} {
		if err := w.Build(&BuildArgs{Version: ProtocolVersion, PartitionID: 0, Spec: spec, Trajectories: parts[0]}, &br); err != nil {
			t.Fatal(err)
		}
	}
	var snap SnapshotReply
	if err := forced.Snapshot(&SnapshotArgs{Version: ProtocolVersion, PartitionID: 0}, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Layout != rptrie.LayoutCompressed {
		t.Fatalf("forced worker snapshot layout %v, want compressed", snap.Layout)
	}
	var want, got SearchReply
	if err := plain.Search(searchArgsV2(parts[0][0].Points, 6), &want); err != nil {
		t.Fatal(err)
	}
	if err := forced.Search(searchArgsV2(parts[0][0].Points, 6), &got); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "forced-layout parity", 0, got.Items, want.Items)
}
