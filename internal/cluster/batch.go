package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repose/internal/geo"
	"repose/internal/topk"
)

// BatchReport describes a batch execution (Section V-A discusses
// batch search as the workload homogeneous partitioning targets; this
// engine serves batches by scheduling (query, partition) tasks over
// one shared worker pool, so partition-level load imbalance shows up
// directly in the makespan).
type BatchReport struct {
	Makespan  time.Duration   // wall time for the whole batch
	PerQuery  []time.Duration // per-query completion time (from batch start)
	TotalWork time.Duration   // summed partition compute
}

// SearchBatch answers all queries, each over all partitions, using
// the engine's worker budget. Results are indexed like queries.
func (c *Local) SearchBatch(queries [][]geo.Point, k int) ([][]topk.Item, BatchReport, error) {
	report := BatchReport{PerQuery: make([]time.Duration, len(queries))}
	if len(queries) == 0 {
		return nil, report, nil
	}
	nq, np := len(queries), len(c.indexes)
	locals := make([][][]topk.Item, nq)
	for qi := range locals {
		locals[qi] = make([][]topk.Item, np)
	}
	workDur := make([][]time.Duration, nq)
	for qi := range workDur {
		workDur[qi] = make([]time.Duration, np)
	}
	done := make([][]time.Time, nq)
	for qi := range done {
		done[qi] = make([]time.Time, np)
	}

	type task struct{ qi, pi int }
	tasks := make(chan task)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				t0 := time.Now()
				locals[tk.qi][tk.pi] = c.indexes[tk.pi].Search(queries[tk.qi], k)
				now := time.Now()
				workDur[tk.qi][tk.pi] = now.Sub(t0)
				done[tk.qi][tk.pi] = now
			}
		}()
	}
	for qi := 0; qi < nq; qi++ {
		for pi := 0; pi < np; pi++ {
			tasks <- task{qi, pi}
		}
	}
	close(tasks)
	wg.Wait()
	report.Makespan = time.Since(start)

	out := make([][]topk.Item, nq)
	for qi := range out {
		out[qi] = topk.Merge(k, locals[qi]...)
		var last time.Time
		for pi := 0; pi < np; pi++ {
			report.TotalWork += workDur[qi][pi]
			if done[qi][pi].After(last) {
				last = done[qi][pi]
			}
		}
		report.PerQuery[qi] = last.Sub(start)
	}
	return out, report, nil
}

// Indexes exposes the partition indexes (read-only use).
func (c *Local) Indexes() []LocalIndex { return c.indexes }

// RadiusSearcher is the optional range-query capability of a local
// index. rptrie.Trie implements it; the baselines and the succinct
// layout do not.
type RadiusSearcher interface {
	SearchRadius(q []geo.Point, radius float64) []topk.Item
}

// SearchRadius returns every trajectory within radius of q, merged
// across partitions and sorted ascending by (distance, id). It fails
// if any partition's index lacks range support.
func (c *Local) SearchRadius(q []geo.Point, radius float64) ([]topk.Item, error) {
	locals := make([][]topk.Item, len(c.indexes))
	sem := make(chan struct{}, c.workers)
	var wg sync.WaitGroup
	for i, idx := range c.indexes {
		rs, ok := idx.(RadiusSearcher)
		if !ok {
			return nil, fmt.Errorf("cluster: partition %d index (%T) does not support radius search", i, idx)
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, rs RadiusSearcher) {
			defer wg.Done()
			defer func() { <-sem }()
			locals[i] = rs.SearchRadius(q, radius)
		}(i, rs)
	}
	wg.Wait()
	var out []topk.Item
	for _, l := range locals {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}
