package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repose/internal/geo"
	"repose/internal/topk"
)

// BatchReport describes a batch execution (Section V-A discusses
// batch search as the workload homogeneous partitioning targets; this
// engine serves batches by scheduling (query, partition) tasks over
// one shared worker pool, so partition-level load imbalance shows up
// directly in the makespan).
type BatchReport struct {
	Makespan  time.Duration   // wall time for the whole batch
	PerQuery  []time.Duration // per-query completion time (from batch start)
	TotalWork time.Duration   // summed partition compute
}

// SearchBatch answers all queries, each over all selected partitions,
// using the engine's worker budget. Results are indexed like queries.
// Cancelling ctx stops in-flight partition scans and skips unstarted
// tasks.
func (c *Local) SearchBatch(ctx context.Context, queries [][]geo.Point, k int, opt QueryOptions) ([][]topk.Item, BatchReport, error) {
	report := BatchReport{PerQuery: make([]time.Duration, len(queries))}
	if len(queries) == 0 {
		return nil, report, nil
	}
	parts := c.parts()
	sel, err := selectPartitions(opt.Partitions, len(parts))
	if err != nil {
		return nil, report, err
	}
	nq, np := len(queries), len(sel)
	locals := make([][][]topk.Item, nq)
	for qi := range locals {
		locals[qi] = make([][]topk.Item, np)
	}
	taskErrs := make([][]error, nq)
	for qi := range taskErrs {
		taskErrs[qi] = make([]error, np)
	}
	workDur := make([][]time.Duration, nq)
	for qi := range workDur {
		workDur[qi] = make([]time.Duration, np)
	}
	done := make([][]time.Time, nq)
	for qi := range done {
		done[qi] = make([]time.Time, np)
	}

	type task struct{ qi, si int }
	tasks := make(chan task)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				if err := ctx.Err(); err != nil {
					taskErrs[tk.qi][tk.si] = err
					continue
				}
				t0 := time.Now()
				locals[tk.qi][tk.si], taskErrs[tk.qi][tk.si] =
					searchOne(ctx, c.gpid(sel[tk.si]), parts[sel[tk.si]], queries[tk.qi], k, opt, nil)
				now := time.Now()
				workDur[tk.qi][tk.si] = now.Sub(t0)
				done[tk.qi][tk.si] = now
			}
		}()
	}
	for qi := 0; qi < nq; qi++ {
		for si := 0; si < np; si++ {
			tasks <- task{qi, si}
		}
	}
	close(tasks)
	wg.Wait()
	report.Makespan = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, report, fmt.Errorf("cluster: batch search: %w", err)
	}
	for qi := range taskErrs {
		for _, err := range taskErrs[qi] {
			if err != nil {
				return nil, report, err
			}
		}
	}

	out := make([][]topk.Item, nq)
	for qi := range out {
		out[qi] = mergeDedup(k, locals[qi])
		var last time.Time
		for si := 0; si < np; si++ {
			report.TotalWork += workDur[qi][si]
			if done[qi][si].After(last) {
				last = done[qi][si]
			}
		}
		if !last.IsZero() {
			// An empty partition selection ran no tasks; leave the
			// completion time zero instead of a negative duration.
			report.PerQuery[qi] = last.Sub(start)
		}
	}
	return out, report, nil
}

// Indexes exposes the partition indexes (read-only use).
func (c *Local) Indexes() []LocalIndex { return c.parts() }

// RadiusSearcher is the optional range-query capability of a local
// index. rptrie.Trie implements it; the baselines and the succinct
// layout do not.
type RadiusSearcher interface {
	SearchRadius(q []geo.Point, radius float64) []topk.Item
}
