package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/partition"
	"repose/internal/rptrie"
	"repose/internal/storage"
)

// Disk-backed partitions: when an engine or worker is given a data
// directory, every REPOSE partition index lives in its own
// subdirectory ("p<pid>") as an rptrie.Durable — checkpoint image +
// WAL on the page store. A restarted process recovers each partition
// from its own log (OpenDurable) instead of rebuilding from the
// dataset or streaming an image from a peer; the driver's failure
// detector only falls back to Worker.Restore when the recovered
// generation is behind the authoritative one. Baseline indexes have
// no persistence and pass through unchanged.

// partDirName returns the subdirectory holding one partition's store.
func partDirName(pid int) string { return "p" + strconv.Itoa(pid) }

// parsePartDir inverts partDirName; ok is false for foreign entries.
func parsePartDir(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'p' {
		return 0, false
	}
	pid, err := strconv.Atoi(name[1:])
	if err != nil || pid < 0 {
		return 0, false
	}
	return pid, true
}

// wrapDurablePartition installs idx durably under dataDir, wiping
// whatever the partition's subdirectory held. Non-REPOSE indexes
// (baselines) pass through unchanged — they have no persistence.
func wrapDurablePartition(dataDir string, pid int, idx LocalIndex) (LocalIndex, error) {
	switch idx.(type) {
	case *rptrie.Trie, *rptrie.Succinct, *rptrie.Compressed:
	default:
		return idx, nil
	}
	d, err := rptrie.WrapDurable(filepath.Join(dataDir, partDirName(pid)), idx, rptrie.DurableOptions{})
	if err != nil {
		return nil, fmt.Errorf("cluster: partition %d durable install: %w", pid, err)
	}
	return d, nil
}

// closeDurable closes idx's disk store when it has one.
func closeDurable(idx LocalIndex) {
	if d, ok := idx.(*rptrie.Durable); ok {
		d.Close()
	}
}

// destroyDurable closes idx and wipes its on-disk store so a future
// recovery scan does not resurrect a partition the driver dropped.
func destroyDurable(idx LocalIndex) {
	if d, ok := idx.(*rptrie.Durable); ok {
		d.Close()
		storage.Destroy(d.Dir(), nil)
	}
}

// recoverDurablePartitions opens every recoverable partition store
// under dataDir. Subdirectories that never reached a first checkpoint
// recover nothing (the driver rebuilds or restores them); anything
// else failing to open is a real error.
func recoverDurablePartitions(dataDir string) (map[int]*rptrie.Durable, error) {
	fs := storage.OSFS{}
	names, err := fs.ReadDir(dataDir)
	if err != nil {
		return nil, fmt.Errorf("cluster: data dir scan: %w", err)
	}
	out := make(map[int]*rptrie.Durable)
	for _, name := range names {
		pid, ok := parsePartDir(name)
		if !ok {
			continue
		}
		d, err := rptrie.OpenDurable(filepath.Join(dataDir, name), rptrie.DurableOptions{})
		if err != nil {
			if errors.Is(err, rptrie.ErrNoDurable) {
				continue
			}
			for _, open := range out {
				open.Close()
			}
			return nil, fmt.Errorf("cluster: partition %d recovery: %w", pid, err)
		}
		out[pid] = d
	}
	return out, nil
}

// BuildLocalDurable is BuildLocal with every REPOSE partition index
// installed disk-backed under dataDir ("p<pid>" per partition). The
// build returns only after every partition's initial checkpoint is on
// disk.
func BuildLocalDurable(spec IndexSpec, parts [][]*geo.Trajectory, workers int, dataDir string) (*Local, error) {
	fs := storage.OSFS{}
	if err := fs.MkdirAll(dataDir); err != nil {
		return nil, err
	}
	c, err := BuildLocal(spec, parts, workers)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	indexes := c.parts()
	for pid, idx := range indexes {
		d, err := wrapDurablePartition(dataDir, pid, idx)
		if err != nil {
			c.Close()
			return nil, err
		}
		indexes[pid] = d
	}
	c.setParts(indexes)
	c.dataDir = dataDir
	c.buildTime += time.Since(start)
	return c, nil
}

// OpenLocalDurable recovers a BuildLocalDurable engine from its data
// directory: every one of the numPartitions stores must open, each
// replaying its own WAL to its exact pre-crash generation, and the
// mutation-routing directory is rebuilt from the recovered live ids.
func OpenLocalDurable(spec IndexSpec, numPartitions, workers int, dataDir string) (*Local, error) {
	if numPartitions <= 0 {
		return nil, errors.New("cluster: durable open needs a positive partition count")
	}
	start := time.Now()
	recovered, err := recoverDurablePartitions(dataDir)
	if err != nil {
		return nil, err
	}
	closeAll := func() {
		for _, d := range recovered {
			d.Close()
		}
	}
	indexes := make([]LocalIndex, numPartitions)
	for pid := 0; pid < numPartitions; pid++ {
		d, ok := recovered[pid]
		if !ok {
			closeAll()
			return nil, fmt.Errorf("cluster: partition %d has no recoverable store under %s", pid, dataDir)
		}
		indexes[pid] = d
	}
	for pid := range recovered {
		if pid >= numPartitions {
			closeAll()
			return nil, fmt.Errorf("cluster: recovered partition %d exceeds the engine's %d partitions", pid, numPartitions)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dir, err := recoveredDirectory(spec, indexes)
	if err != nil {
		closeAll()
		return nil, err
	}
	c := &Local{
		workers:   workers,
		sem:       make(chan struct{}, workers),
		buildTime: time.Since(start),
		dir:       dir,
		dataDir:   dataDir,
	}
	c.setParts(indexes)
	return c, nil
}

// recoveredDirectory rebuilds the driver-side routing directory from
// the recovered partitions' live ids. The online router restarts with
// fresh placement counters — a heuristic drift, not a correctness
// one: the id → partition map below is the routing truth. A recovered
// durable engine is always REPOSE-backed, so failing to rebuild the
// grid or the online router is a recovery error, not a baseline
// without routing: swallowing it would half-open an engine whose
// post-recovery inserts have no router to assign them.
func recoveredDirectory(spec IndexSpec, indexes []LocalIndex) (*directory, error) {
	d := &directory{loc: make(map[int32]int), spec: spec}
	for pid, idx := range indexes {
		if dur, ok := idx.(*rptrie.Durable); ok {
			ids := dur.LiveIDs()
			sort.Ints(ids)
			for _, id := range ids {
				d.loc[int32(id)] = pid
			}
		}
	}
	g, err := grid.New(spec.Region, spec.Delta)
	if err != nil {
		return nil, fmt.Errorf("cluster: recovered directory grid: %w", err)
	}
	r, err := partition.NewOnlineRouter(spec.Strategy, g, len(indexes), spec.Seed)
	if err != nil {
		return nil, fmt.Errorf("cluster: recovered directory router: %w", err)
	}
	d.grid = g
	d.router = r
	return d, nil
}
