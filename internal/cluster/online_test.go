package cluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repose/internal/geo"
	"repose/internal/oracle"
	"repose/internal/rptrie"
)

// freshTrajs makes n random trajectories with ids starting at base,
// inside the testWorld region.
func freshTrajs(rng *rand.Rand, base, n int) []*geo.Trajectory {
	out := make([]*geo.Trajectory, n)
	for i := range out {
		pts := make([]geo.Point, 3+rng.Intn(10))
		for j := range pts {
			pts[j] = geo.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
		}
		out[i] = &geo.Trajectory{ID: base + i, Points: pts}
	}
	return out
}

// TestOnlineMutationsLocalRemoteParity drives the same mutation
// script against a local and a remote engine and pins both to the
// oracle after every phase: an inserted trajectory is returned by the
// next query, a deleted one never is, on both engines.
func TestOnlineMutationsLocalRemoteParity(t *testing.T) {
	ds, local, remote := remotePair(t, 200, 5, 2)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	mirror := oracle.NewSet(ds)
	spec := testSpecOf(t)

	engines := []struct {
		name string
		eng  Engine
	}{{"local", local}, {"remote", remote}}

	check := func(phase string) {
		t.Helper()
		q := freshTrajs(rng, -1, 1)[0]
		want := mirror.TopK(spec.Measure, spec.Params, q.Points, 10)
		for _, e := range engines {
			got, _, err := e.eng.Search(ctx, q.Points, 10, QueryOptions{})
			if err != nil {
				t.Fatalf("%s %s: %v", phase, e.name, err)
			}
			assertSameDistances(t, phase+" "+e.name, got, want)
		}
	}

	apply := func(phase string, adds []*geo.Trajectory, dels []int) {
		t.Helper()
		for _, e := range engines {
			if len(adds) > 0 {
				gens, err := e.eng.Insert(ctx, adds, MutateOptions{})
				if err != nil {
					t.Fatalf("%s %s insert: %v", phase, e.name, err)
				}
				if len(gens) == 0 {
					t.Fatalf("%s %s insert reported no generations", phase, e.name)
				}
			}
			if len(dels) > 0 {
				n, _, err := e.eng.Delete(ctx, dels, MutateOptions{})
				if err != nil {
					t.Fatalf("%s %s delete: %v", phase, e.name, err)
				}
				if wantN := countLive(mirror, dels); n != wantN {
					t.Fatalf("%s %s delete removed %d, want %d", phase, e.name, n, wantN)
				}
			}
		}
		mirror.Insert(adds...)
		mirror.Delete(dels...)
		check(phase)
	}

	check("initial")
	apply("insert", freshTrajs(rng, 10_000, 25), nil)
	apply("delete", nil, []int{ds[0].ID, ds[1].ID, 10_003, 424242})
	apply("mixed", freshTrajs(rng, 20_000, 10), []int{10_001, ds[5].ID})

	// Upsert a mixed batch — replacements of live ids plus one new id
	// — through both engines, then re-check against the oracle.
	ups := freshTrajs(rng, 0, 1)
	ups[0].ID = ds[10].ID
	ups = append(ups, freshTrajs(rng, 30_000, 1)...)
	for _, e := range engines {
		gens, err := e.eng.Upsert(ctx, ups, MutateOptions{})
		if err != nil {
			t.Fatalf("%s upsert: %v", e.name, err)
		}
		if len(gens) == 0 {
			t.Fatalf("%s upsert reported no generations", e.name)
		}
	}
	mirror.Insert(ups...)
	check("upsert")

	// Compact everywhere; answers must not change.
	for _, e := range engines {
		gens, err := e.eng.Compact(ctx, nil)
		if err != nil {
			t.Fatalf("%s compact: %v", e.name, err)
		}
		if len(gens) != 5 {
			t.Fatalf("%s compact touched %d partitions, want 5", e.name, len(gens))
		}
	}
	check("compacted")

	// Engine bookkeeping agrees across backends and with the oracle.
	for _, e := range engines {
		if e.eng.Len() != mirror.Len() {
			t.Fatalf("%s Len %d, oracle %d", e.name, e.eng.Len(), mirror.Len())
		}
	}

	// Duplicate inserts fail identically on both engines.
	for _, e := range engines {
		err := func() error {
			_, err := e.eng.Insert(ctx, []*geo.Trajectory{ds[10]}, MutateOptions{})
			return err
		}()
		if !errors.Is(err, ErrDuplicateID) {
			t.Fatalf("%s duplicate insert: %v", e.name, err)
		}
		if _, err := e.eng.Insert(ctx, []*geo.Trajectory{{ID: 1}}, MutateOptions{}); err == nil {
			t.Fatalf("%s empty insert should fail", e.name)
		}
	}
}

// countLive counts how many of ids are currently live in the mirror.
func countLive(mirror *oracle.Set, ids []int) int {
	n := 0
	for _, id := range ids {
		if mirror.Has(id) {
			n++
		}
	}
	return n
}

// testSpecOf rebuilds the testWorld spec (measure/params only).
func testSpecOf(t *testing.T) IndexSpec {
	t.Helper()
	_, _, spec := testWorld(t, 1, 1)
	return spec
}

// TestGenerationPin: a pin above the current generation fails with
// rptrie.ErrStale locally; a satisfied pin (taken from a mutation's
// Gens) succeeds on both engines.
func TestGenerationPin(t *testing.T) {
	ds, local, remote := remotePair(t, 120, 3, 2)
	ctx := context.Background()

	// Future pin on an untouched partition fails.
	_, _, err := local.Search(ctx, ds[0].Points, 3, QueryOptions{MinGens: []uint64{9}})
	if !errors.Is(err, rptrie.ErrStale) {
		t.Fatalf("future pin: err = %v", err)
	}

	// A pin derived from a real mutation succeeds on both engines.
	adds := freshTrajs(rand.New(rand.NewSource(7)), 50_000, 9)
	for _, eng := range []Engine{local, remote} {
		gens, err := eng.Insert(ctx, adds, MutateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pins := make([]uint64, eng.NumPartitions())
		for pid, gen := range gens {
			pins[pid] = gen
		}
		if _, _, err := eng.Search(ctx, ds[0].Points, 3, QueryOptions{MinGens: pins}); err != nil {
			t.Fatalf("satisfied pin: %v", err)
		}
		adds = cloneWithIDs(adds, 60_000) // fresh ids for the second engine
	}
}

func cloneWithIDs(trs []*geo.Trajectory, base int) []*geo.Trajectory {
	out := make([]*geo.Trajectory, len(trs))
	for i, tr := range trs {
		out[i] = &geo.Trajectory{ID: base + i, Points: tr.Points}
	}
	return out
}

// TestImmutableBaseline: mutations on a baseline-algorithm engine
// fail with ErrImmutable and leave nothing applied.
func TestImmutableBaseline(t *testing.T) {
	_, parts, spec := testWorld(t, 80, 2)
	spec.Algorithm = LS
	c, err := BuildLocal(spec, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tr := &geo.Trajectory{ID: 7777, Points: []geo.Point{{X: 1, Y: 1}}}
	if _, err := c.Insert(ctx, []*geo.Trajectory{tr}, MutateOptions{}); !errors.Is(err, ErrImmutable) {
		t.Fatalf("baseline insert: %v", err)
	}
	if _, err := c.Compact(ctx, nil); !errors.Is(err, ErrImmutable) {
		t.Fatalf("baseline compact: %v", err)
	}
}

// TestAutoCompactThreshold: with AutoCompact set, a partition whose
// delta crosses the threshold compacts during the mutation call.
func TestAutoCompactThreshold(t *testing.T) {
	ds, parts, spec := testWorld(t, 60, 1) // one partition: deterministic routing
	local, err := BuildLocal(spec, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))

	// Below the absolute floor nothing compacts even at fraction 0.01.
	if _, err := local.Insert(ctx, freshTrajs(rng, 90_000, 8), MutateOptions{AutoCompact: 0.01}); err != nil {
		t.Fatal(err)
	}
	m := local.Indexes()[0].(MutableIndex)
	if m.DeltaLen() == 0 {
		t.Fatal("tiny delta should not have compacted")
	}

	// Crossing floor and fraction triggers compaction.
	if _, err := local.Insert(ctx, freshTrajs(rng, 91_000, 40), MutateOptions{AutoCompact: 0.01}); err != nil {
		t.Fatal(err)
	}
	if dl := m.DeltaLen(); dl != 0 {
		t.Fatalf("delta %d after threshold crossing, want 0", dl)
	}
	if local.Len() != len(ds)+48 {
		t.Fatalf("Len %d, want %d", local.Len(), len(ds)+48)
	}
}

// TestDeleteRepairsDirectoryDesync: an id the driver's directory does
// not know (e.g. from a mutation RPC whose outcome was lost) is still
// deletable — Delete broadcasts unknown ids to every partition, so a
// worker-side ghost cannot become permanent.
func TestDeleteRepairsDirectoryDesync(t *testing.T) {
	_, parts, spec := testWorld(t, 80, 3)
	local, err := BuildLocal(spec, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Simulate the desync: a trajectory lands in a partition index
	// without going through the engine (as if the driver lost the
	// RPC's reply after the worker applied it).
	ghost := &geo.Trajectory{ID: 555_555, Points: []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}}
	if err := local.Indexes()[1].(MutableIndex).Insert(ghost); err != nil {
		t.Fatal(err)
	}
	got, _, err := local.Search(ctx, ghost.Points, 1, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != ghost.ID {
		t.Fatalf("ghost not visible before repair: %v", got)
	}

	n, _, err := local.Delete(ctx, []int{ghost.ID}, MutateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("repair delete removed %d, want 1", n)
	}
	got, _, err = local.Search(ctx, ghost.Points, 5, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID == ghost.ID {
			t.Fatal("ghost survived the repair delete")
		}
	}
}

// TestRetryAfterLostInsertOutcome pins the failure contract: when an
// applied Insert's reply is lost (the directory never records the
// id), a retried Insert routes to the same partition — deterministic
// routing — and fails with a duplicate-id error instead of going live
// in a second partition, and a retried Upsert is idempotent.
func TestRetryAfterLostInsertOutcome(t *testing.T) {
	_, parts, spec := testWorld(t, 90, 4)
	local, err := BuildLocal(spec, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tr := &geo.Trajectory{ID: 777_000, Points: []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}}
	if _, err := local.Insert(ctx, []*geo.Trajectory{tr}, MutateOptions{}); err != nil {
		t.Fatal(err)
	}
	// Simulate the lost reply: the partition holds tr, the directory
	// forgets it.
	local.dir.mu.Lock()
	delete(local.dir.loc, int32(tr.ID))
	local.dir.mu.Unlock()

	if _, err := local.Insert(ctx, []*geo.Trajectory{tr}, MutateOptions{}); err == nil {
		t.Fatal("retried insert of an applied id should fail, not duplicate it")
	}
	if _, err := local.Upsert(ctx, []*geo.Trajectory{tr}, MutateOptions{}); err != nil {
		t.Fatalf("retried upsert should be idempotent: %v", err)
	}
	// Exactly one live copy.
	got, _, err := local.Search(ctx, tr.Points, 5, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range got {
		if r.ID == tr.ID {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("id appears %d times after retry, want 1", n)
	}
}

// TestWorkerMutationRPCs exercises the v3 endpoints directly against
// a Worker, including the not-owned and version-mismatch paths.
func TestWorkerMutationRPCs(t *testing.T) {
	w := NewWorker()
	_, parts, spec := testWorld(t, 60, 2)
	var br BuildReply
	if err := w.Build(&BuildArgs{Version: ProtocolVersion, PartitionID: 0, Spec: spec, Trajectories: parts[0]}, &br); err != nil {
		t.Fatal(err)
	}

	var ir InsertReply
	args := &InsertArgs{Version: ProtocolVersion, PartitionID: 0, Trajectories: []*geo.Trajectory{{ID: 9999, Points: []geo.Point{{X: 1, Y: 1}}}}}
	if err := w.Insert(args, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Gen != 1 || ir.Len != len(parts[0])+1 {
		t.Fatalf("insert reply %+v", ir)
	}
	// Unversioned and unowned requests fail.
	if err := w.Insert(&InsertArgs{PartitionID: 0}, &ir); err == nil {
		t.Error("unversioned insert should fail")
	}
	args.PartitionID = 1
	if err := w.Insert(args, &ir); err == nil {
		t.Error("insert to unowned partition should fail")
	}

	var dr DeleteReply
	if err := w.Delete(&DeleteArgs{Version: ProtocolVersion, PartitionID: 0, IDs: []int{9999, 123456}}, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Removed != 1 || dr.Len != len(parts[0]) {
		t.Fatalf("delete reply %+v", dr)
	}

	var cr CompactReply
	if err := w.Compact(&CompactArgs{Version: ProtocolVersion}, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Gens) != 1 {
		t.Fatalf("compact reply %+v", cr)
	}
}

// TestQueriesDuringMutations races engine-level queries against
// mutations on the local engine and checks every answer is internally
// consistent (sorted, deduplicated, only ever-known ids). Run under
// -race in CI.
func TestQueriesDuringMutations(t *testing.T) {
	ds, parts, spec := testWorld(t, 150, 4)
	local, err := BuildLocal(spec, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	known := make(map[int]bool, len(ds))
	for _, tr := range ds {
		known[tr.ID] = true
	}
	adds := freshTrajs(rand.New(rand.NewSource(1)), 70_000, 120)
	for _, tr := range adds {
		known[tr.ID] = true
	}

	done := make(chan error, 3)
	go func() {
		for i := 0; i < len(adds); i += 4 {
			if _, err := local.Insert(ctx, adds[i:i+4], MutateOptions{}); err != nil {
				done <- err
				return
			}
			if _, _, err := local.Delete(ctx, []int{adds[i].ID}, MutateOptions{}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 10; i++ {
			if _, err := local.Compact(ctx, nil); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		q := ds[3].Points
		for i := 0; i < 200; i++ {
			got, _, err := local.Search(ctx, q, 15, QueryOptions{})
			if err != nil {
				done <- err
				return
			}
			seen := map[int]bool{}
			for j, r := range got {
				if !known[r.ID] || seen[r.ID] || (j > 0 && got[j-1].Dist > r.Dist) {
					done <- errors.New("inconsistent racing result")
					return
				}
				seen[r.ID] = true
			}
		}
		done <- nil
	}()
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
