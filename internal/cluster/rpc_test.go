package cluster

import (
	"context"
	"errors"
	"net/rpc"
	"strings"
	"testing"
	"time"

	"repose/internal/dataset"
	"repose/internal/geo"
)

func TestHandshake(t *testing.T) {
	w := NewWorker()
	var reply HandshakeReply
	if err := w.Handshake(&HandshakeArgs{Version: ProtocolVersion}, &reply); err != nil {
		t.Fatalf("matching handshake failed: %v", err)
	}
	if reply.Version != ProtocolVersion {
		t.Errorf("reply version %d", reply.Version)
	}
	err := w.Handshake(&HandshakeArgs{Version: ProtocolVersion + 1}, &reply)
	if err == nil || !strings.Contains(err.Error(), "protocol version mismatch") {
		t.Errorf("mismatched handshake: %v", err)
	}
}

// TestProtocolVersionMismatchOverWire verifies a wrong-version driver
// is rejected by a live worker on every endpoint, not just handshake.
func TestProtocolVersionMismatchOverWire(t *testing.T) {
	_, parts, spec := testWorld(t, 40, 2)
	addrs := startWorkers(t, 1)
	client, err := rpc.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var hr HandshakeReply
	err = client.Call("Worker.Handshake", &HandshakeArgs{Version: 99}, &hr)
	if err == nil || !strings.Contains(err.Error(), "protocol version mismatch") {
		t.Errorf("handshake v99: %v", err)
	}
	var br BuildReply
	err = client.Call("Worker.Build", &BuildArgs{PartitionID: 0, Spec: spec, Trajectories: parts[0]}, &br)
	if err == nil || !strings.Contains(err.Error(), "protocol version mismatch") {
		t.Errorf("unversioned build: %v", err)
	}
	var sr SearchReply
	err = client.Call("Worker.Search", &SearchArgs{Query: []geo.Point{{X: 1, Y: 1}}, K: 2}, &sr)
	if err == nil || !strings.Contains(err.Error(), "protocol version mismatch") {
		t.Errorf("unversioned search: %v", err)
	}
}

// remotePair builds the same spec locally and on TCP workers.
func remotePair(t *testing.T, n, nparts, nworkers int) ([]*geo.Trajectory, *Local, *Remote) {
	t.Helper()
	ds, parts, spec := testWorld(t, n, nparts)
	local, err := BuildLocal(spec, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startWorkers(t, nworkers)
	remote, err := BuildRemote(spec, parts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	return ds, local, remote
}

func TestRemoteRadiusMatchesLocal(t *testing.T) {
	ds, local, remote := remotePair(t, 250, 6, 3)
	ctx := context.Background()
	for _, q := range dataset.Queries(ds, 3, 21) {
		for _, radius := range []float64{0.2, 0.6} {
			want, _, err := local.SearchRadius(ctx, q.Points, radius, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, rep, err := remote.SearchRadius(ctx, q.Points, radius, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("radius %g: len %d want %d", radius, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("radius %g rank %d: %+v want %+v", radius, i, got[i], want[i])
				}
			}
			if len(rep.PartitionTimes) != 6 {
				t.Errorf("report partitions = %d", len(rep.PartitionTimes))
			}
		}
	}
}

func TestRemoteBatchMatchesLocal(t *testing.T) {
	ds, local, remote := remotePair(t, 250, 6, 3)
	ctx := context.Background()
	queries := dataset.Queries(ds, 7, 5)
	qpts := make([][]geo.Point, len(queries))
	for i, q := range queries {
		qpts[i] = q.Points
	}
	want, _, err := local.SearchBatch(ctx, qpts, 8, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := remote.SearchBatch(ctx, qpts, 8, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch len %d want %d", len(got), len(want))
	}
	for qi := range want {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("query %d: len %d want %d", qi, len(got[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			if got[qi][i] != want[qi][i] {
				t.Fatalf("query %d rank %d: %+v want %+v", qi, i, got[qi][i], want[qi][i])
			}
		}
	}
	if rep.Makespan <= 0 || rep.TotalWork <= 0 || len(rep.PerQuery) != len(queries) {
		t.Errorf("batch report %+v", rep)
	}
}

func TestPartitionSubset(t *testing.T) {
	ds, local, remote := remotePair(t, 250, 6, 3)
	ctx := context.Background()
	q := ds[11].Points
	subset := []int{0, 3, 5}
	want, wrep, err := local.Search(ctx, q, 9, QueryOptions{Partitions: subset})
	if err != nil {
		t.Fatal(err)
	}
	if len(wrep.PartitionTimes) != len(subset) {
		t.Errorf("local subset report %d partitions", len(wrep.PartitionTimes))
	}
	got, rrep, err := remote.Search(ctx, q, 9, QueryOptions{Partitions: subset})
	if err != nil {
		t.Fatal(err)
	}
	if len(rrep.PartitionTimes) != len(subset) {
		t.Errorf("remote subset report %d partitions", len(rrep.PartitionTimes))
	}
	if len(got) != len(want) {
		t.Fatalf("len %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v want %+v", i, got[i], want[i])
		}
	}
	// Duplicated ids must not double-count a partition on either
	// backend (the wire path dedups before broadcasting).
	dupWant, _, err := local.Search(ctx, q, 9, QueryOptions{Partitions: []int{3, 3, 0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	dedup, _, err := local.Search(ctx, q, 9, QueryOptions{Partitions: []int{0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	dupGot, _, err := remote.Search(ctx, q, 9, QueryOptions{Partitions: []int{3, 3, 0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	rdup, _, err := remote.SearchRadius(ctx, q, 0.6, QueryOptions{Partitions: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rone, _, err := remote.SearchRadius(ctx, q, 0.6, QueryOptions{Partitions: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rdup) != len(rone) {
		t.Fatalf("duplicated radius subset returned %d items, want %d", len(rdup), len(rone))
	}
	if len(dupWant) != len(dedup) || len(dupGot) != len(dedup) {
		t.Fatalf("dup subset lens: local %d remote %d want %d", len(dupWant), len(dupGot), len(dedup))
	}
	for i := range dedup {
		if dupWant[i] != dedup[i] || dupGot[i] != dedup[i] {
			t.Fatalf("dup subset rank %d: local %+v remote %+v want %+v", i, dupWant[i], dupGot[i], dedup[i])
		}
	}

	// Out-of-range ids fail on both backends.
	if _, _, err := local.Search(ctx, q, 3, QueryOptions{Partitions: []int{6}}); err == nil {
		t.Error("local out-of-range partition should fail")
	}
	if _, _, err := remote.Search(ctx, q, 3, QueryOptions{Partitions: []int{-1}}); err == nil {
		t.Error("remote out-of-range partition should fail")
	}
}

func TestNoPivotsMatchesDefault(t *testing.T) {
	ds, local, remote := remotePair(t, 200, 4, 2)
	ctx := context.Background()
	for _, q := range dataset.Queries(ds, 3, 33) {
		want, _, err := local.Search(ctx, q.Points, 6, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wantR, _, err := local.SearchRadius(ctx, q.Points, 0.5, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range []Engine{local, remote} {
			got, _, err := eng.Search(ctx, q.Points, 6, QueryOptions{NoPivots: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("len %d want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("rank %d: %+v want %+v", i, got[i], want[i])
				}
			}
			gotR, _, err := eng.SearchRadius(ctx, q.Points, 0.5, QueryOptions{NoPivots: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(gotR) != len(wantR) {
				t.Fatalf("radius len %d want %d", len(gotR), len(wantR))
			}
			for i := range gotR {
				if gotR[i] != wantR[i] {
					t.Fatalf("radius rank %d: %+v want %+v", i, gotR[i], wantR[i])
				}
			}
		}
	}
}

// TestMoreWorkersThanPartitions: a worker left without partitions by
// the round-robin deal must simply not be queried, not fail every
// query.
func TestMoreWorkersThanPartitions(t *testing.T) {
	ds, parts, spec := testWorld(t, 120, 2)
	addrs := startWorkers(t, 3) // worker 2 gets no partitions
	remote, err := BuildRemote(spec, parts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	local, err := BuildLocal(spec, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := ds[5].Points
	got, rep, err := remote.Search(ctx, q, 7, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := local.Search(ctx, q, 7, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v want %+v", i, got[i], want[i])
		}
	}
	if len(rep.PartitionTimes) != 2 {
		t.Errorf("report partitions = %d", len(rep.PartitionTimes))
	}
	if _, _, err := remote.SearchRadius(ctx, q, 0.5, QueryOptions{}); err != nil {
		t.Errorf("radius with idle worker: %v", err)
	}
	if _, _, err := remote.SearchBatch(ctx, [][]geo.Point{q}, 4, QueryOptions{}); err != nil {
		t.Errorf("batch with idle worker: %v", err)
	}
}

// TestRemoteCancellation: a deadline that has already passed must
// surface context.DeadlineExceeded from the remote engine, and a
// cancel mid-flight must stop the query.
func TestRemoteCancellation(t *testing.T) {
	ds, _, remote := remotePair(t, 300, 8, 2)

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := remote.Search(expired, ds[0].Points, 5, QueryOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v", err)
	}

	ctx, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_, _, err = remote.SearchRadius(ctx, ds[0].Points, 0.5, QueryOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled radius: err = %v", err)
	}
	_, _, err = remote.SearchBatch(ctx, [][]geo.Point{ds[0].Points}, 5, QueryOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: err = %v", err)
	}

	// A healthy query still works afterwards on the same clients.
	if _, _, err := remote.Search(context.Background(), ds[0].Points, 5, QueryOptions{}); err != nil {
		t.Fatalf("post-cancel search: %v", err)
	}
}

// TestWorkerCancelRPC: Worker.Cancel aborts a registered in-flight
// query and tolerates unknown ids.
func TestWorkerCancelRPC(t *testing.T) {
	w := NewWorker()
	if err := w.Cancel(&CancelArgs{ID: 12345}, &struct{}{}); err != nil {
		t.Fatalf("unknown id: %v", err)
	}
	ctx, stop := w.queryContext(QueryHeader{ID: 7})
	defer stop()
	if ctx.Err() != nil {
		t.Fatal("fresh query context should be live")
	}
	if err := w.Cancel(&CancelArgs{ID: 7}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Errorf("query context not cancelled: %v", ctx.Err())
	}
	stop()
	w.mu.Lock()
	n := len(w.inflight)
	w.mu.Unlock()
	if n != 0 {
		t.Errorf("inflight registry leaked %d entries", n)
	}

	// A cancel that races ahead of the query leaves a tombstone, so
	// the query starts already aborted when it registers.
	if err := w.Cancel(&CancelArgs{ID: 9}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	early, stopEarly := w.queryContext(QueryHeader{ID: 9})
	defer stopEarly()
	if !errors.Is(early.Err(), context.Canceled) {
		t.Errorf("early-cancelled query context: %v", early.Err())
	}
	w.mu.Lock()
	_, left := w.cancelled[9]
	w.mu.Unlock()
	if left {
		t.Error("tombstone for id 9 not consumed")
	}
}
