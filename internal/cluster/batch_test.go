package cluster

import (
	"context"
	"testing"

	"repose/internal/dataset"
	"repose/internal/geo"
)

func TestSearchBatchMatchesSequential(t *testing.T) {
	ds, parts, spec := testWorld(t, 250, 6)
	eng, err := BuildLocal(spec, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(ds, 8, 5)
	qpts := make([][]geo.Point, len(queries))
	for i, q := range queries {
		qpts[i] = q.Points
	}
	batch, report, err := eng.SearchBatch(context.Background(), qpts, 7, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, q := range queries {
		want, _, err := eng.Search(context.Background(), q.Points, 7, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(want) {
			t.Fatalf("query %d: len %d want %d", i, len(batch[i]), len(want))
		}
		for j := range want {
			if batch[i][j] != want[j] {
				t.Fatalf("query %d rank %d: %+v vs %+v", i, j, batch[i][j], want[j])
			}
		}
	}
	if report.Makespan <= 0 || report.TotalWork <= 0 {
		t.Errorf("report = %+v", report)
	}
	if len(report.PerQuery) != len(queries) {
		t.Errorf("per-query times = %d", len(report.PerQuery))
	}
	for _, d := range report.PerQuery {
		if d <= 0 || d > report.Makespan {
			t.Errorf("per-query completion %v outside (0, %v]", d, report.Makespan)
		}
	}
}

func TestSearchBatchEmpty(t *testing.T) {
	_, parts, spec := testWorld(t, 50, 2)
	eng, err := BuildLocal(spec, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, report, err := eng.SearchBatch(context.Background(), nil, 5, QueryOptions{})
	if err != nil || out != nil {
		t.Errorf("empty batch: %v, %v", out, err)
	}
	if report.Makespan != 0 {
		t.Errorf("empty makespan = %v", report.Makespan)
	}
}

// TestSearchBatchConcurrentSafety runs a batch with the race detector
// in mind: many queries over shared read-only indexes.
func TestSearchBatchConcurrentSafety(t *testing.T) {
	ds, parts, spec := testWorld(t, 150, 8)
	eng, err := BuildLocal(spec, parts, 8)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries(ds, 30, 7)
	qpts := make([][]geo.Point, len(queries))
	for i, q := range queries {
		qpts[i] = q.Points
	}
	if _, _, err := eng.SearchBatch(context.Background(), qpts, 5, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Indexes()); got != 8 {
		t.Errorf("Indexes len = %d", got)
	}
}
