package cluster

import (
	"fmt"

	"repose/internal/baseline/dft"
	"repose/internal/baseline/dita"
	"repose/internal/baseline/ls"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/partition"
	"repose/internal/rptrie"
	"repose/internal/topk"
)

// LocalIndex is a per-partition index. The three rptrie layouts and
// the three baselines all satisfy it.
type LocalIndex interface {
	// Search answers a partition-local top-k query.
	Search(q []geo.Point, k int) []topk.Item
	// Len returns the number of indexed trajectories.
	Len() int
	// SizeBytes estimates the index footprint, excluding raw data.
	SizeBytes() int
}

var (
	_ LocalIndex = (*rptrie.Trie)(nil)
	_ LocalIndex = (*rptrie.Succinct)(nil)
	_ LocalIndex = (*rptrie.Compressed)(nil)
	_ LocalIndex = (*rptrie.Durable)(nil)
	_ LocalIndex = (*ls.Index)(nil)
	_ LocalIndex = (*dft.Index)(nil)
	_ LocalIndex = (*dita.Index)(nil)
)

// Algorithm selects which local index an IndexSpec builds.
type Algorithm int

// The competing algorithms of Section VII.
const (
	REPOSE Algorithm = iota
	LS
	DFT
	DITA
)

var algorithmNames = [...]string{"REPOSE", "LS", "DFT", "DITA"}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	if a < 0 || int(a) >= len(algorithmNames) {
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
	return algorithmNames[a]
}

// ParseAlgorithm converts a name produced by String back to an
// Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for i, n := range algorithmNames {
		if n == s {
			return Algorithm(i), nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown algorithm %q", s)
}

// IndexSpec is a self-contained, gob-encodable description of a local
// index; workers rebuild identical indexes from it without sharing
// memory with the driver.
type IndexSpec struct {
	Algorithm Algorithm
	Measure   dist.Measure
	Params    dist.Params

	// REPOSE knobs.
	Region   geo.Rect // enclosing region for the grid
	Delta    float64  // requested grid cell side δ
	Pivots   []*geo.Trajectory
	Optimize bool // z-value re-arrangement (order-independent measures)
	// Layout selects the per-partition layout the worker installs:
	// pointer, succinct (two-tier), or compressed (trit-array).
	Layout rptrie.Layout
	// Succinct is the pre-Layout form of requesting the succinct
	// layout; honored when Layout is left at its zero value.
	//
	// Deprecated: set Layout instead.
	Succinct   bool
	DisableLBt bool
	DisableLBp bool

	// Strategy is the global partitioning strategy of the batch
	// build; the online router mirrors it when assigning trajectories
	// inserted after the build (see partition.OnlineRouter).
	Strategy partition.Strategy

	// Replicas is the replication factor of the remote deployment:
	// each partition is built on this many distinct workers, and the
	// driver fails queries over between them (failover.go). 0 or 1
	// means no replication; BuildRemote rejects a factor exceeding
	// the worker count. The in-process engine ignores it — there is
	// no worker to lose.
	Replicas int

	// DFT knobs.
	DFTC int // threshold sampling factor C

	// DITA knobs.
	DITANL    int
	DITAPivot int
	DITAC     int

	Seed int64
}

// layout resolves the requested rptrie layout, honoring the deprecated
// Succinct flag.
func (s IndexSpec) layout() rptrie.Layout {
	if s.Layout == rptrie.LayoutPointer && s.Succinct {
		return rptrie.LayoutSuccinct
	}
	return s.Layout
}

// BuildLocal constructs the partition-local index the spec describes.
func (s IndexSpec) BuildLocal(part []*geo.Trajectory) (LocalIndex, error) {
	switch s.Algorithm {
	case REPOSE:
		g, err := grid.New(s.Region, s.Delta)
		if err != nil {
			return nil, fmt.Errorf("cluster: repose grid: %w", err)
		}
		cfg := rptrie.Config{
			Measure:    s.Measure,
			Params:     s.Params,
			Grid:       g,
			Pivots:     s.Pivots,
			Optimize:   s.Optimize && s.Measure.OrderIndependent(),
			DisableLBt: s.DisableLBt,
			DisableLBp: s.DisableLBp,
		}
		trie, err := rptrie.Build(cfg, part)
		if err != nil {
			return nil, err
		}
		switch s.layout() {
		case rptrie.LayoutSuccinct:
			return rptrie.Compress(trie)
		case rptrie.LayoutCompressed:
			return rptrie.CompressTST(trie)
		}
		return trie, nil
	case LS:
		return ls.Build(s.Measure, s.Params, part), nil
	case DFT:
		return dft.Build(dft.Config{
			Measure: s.Measure,
			Params:  s.Params,
			C:       s.DFTC,
			Seed:    s.Seed,
		}, part)
	case DITA:
		return dita.Build(dita.Config{
			Measure:   s.Measure,
			Params:    s.Params,
			NL:        s.DITANL,
			PivotSize: s.DITAPivot,
			C:         s.DITAC,
		}, part)
	default:
		return nil, fmt.Errorf("cluster: unknown algorithm %d", int(s.Algorithm))
	}
}
