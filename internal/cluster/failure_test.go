package cluster

import (
	"context"
	"net"
	"strings"
	"testing"

	"repose/internal/cluster/chaos"
	"repose/internal/dataset"
	"repose/internal/geo"
	"repose/internal/oracle"
)

// TestWorkerDiesMidSession: without replication, killing a worker
// after build must surface an error on the next query rather than
// silently returning a partial (wrong) top-k. (With replication the
// same kill is absorbed — see TestWorkerDiesMidSessionWithReplication
// and the chaos suite in failover_test.go.)
func TestWorkerDiesMidSession(t *testing.T) {
	_, parts, spec := testWorld(t, 200, 6)

	var listeners []net.Listener
	var addrs []string
	for i := 0; i < 3; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		addrs = append(addrs, ln.Addr().String())
		go Serve(ln, NewWorker())
	}
	remote, err := BuildRemote(spec, parts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	q := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	if _, _, err := remote.Search(context.Background(), q, 5, QueryOptions{}); err != nil {
		t.Fatalf("healthy search failed: %v", err)
	}

	// Kill one worker: close its listener and sever existing
	// connections by closing the client from our side is not enough —
	// the listener close prevents reconnects, and in-flight calls on
	// the dead connection must error.
	listeners[1].Close()
	// The persistent connection may still be alive; force-close the
	// server side by dialling a no-op? net/rpc keeps the established
	// conn usable, so instead verify behaviour under a *fresh* driver
	// that cannot reach the dead worker.
	if _, err := BuildRemote(spec, parts, addrs); err == nil {
		t.Error("build against a dead worker should fail")
	} else if !strings.Contains(err.Error(), "dial") {
		t.Logf("dial error (ok): %v", err)
	}
}

// TestWorkerDiesMidSessionWithReplication: the scenario documented
// above, fixed by replication — the same mid-session worker death now
// *succeeds* on the next query, with the k results identical to the
// brute-force oracle, because every partition has a second replica.
func TestWorkerDiesMidSessionWithReplication(t *testing.T) {
	ds, parts, spec := testWorld(t, 200, 6)
	spec.Replicas = 2
	addrs := startWorkers(t, 3)
	fleet, err := chaos.NewFleet(addrs, chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })
	remote, err := BuildRemote(spec, parts, fleet.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	remote.SetFailover(fastFailover)

	q := ds[7].Points
	if _, _, err := remote.Search(context.Background(), q, 5, QueryOptions{}); err != nil {
		t.Fatalf("healthy search failed: %v", err)
	}

	// Kill one worker mid-session: connections severed, reconnects
	// refused — exactly the failure the unreplicated test documents
	// as fatal.
	p, err := fleet.At(1)
	if err != nil {
		t.Fatal(err)
	}
	p.Down()

	got, _, err := remote.Search(context.Background(), q, 5, QueryOptions{})
	if err != nil {
		t.Fatalf("replicated search with a dead worker failed: %v", err)
	}
	want := oracle.TopK(spec.Measure, spec.Params, ds, q, 5)
	assertSameDistances(t, "failover", got, want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v, oracle %+v", i, got[i], want[i])
		}
	}
}

// TestSearchErrorPropagatesFromWorker: a worker that was cleared
// between build and search returns an RPC error, which the driver
// must propagate.
func TestSearchErrorPropagatesFromWorker(t *testing.T) {
	_, parts, spec := testWorld(t, 100, 4)
	w := NewWorker()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, w)

	remote, err := BuildRemote(spec, parts, []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Sabotage: clear the worker's partitions out-of-band.
	if err := w.Clear(&ClearArgs{Version: ProtocolVersion}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := remote.Search(context.Background(), []geo.Point{{X: 1, Y: 1}}, 3, QueryOptions{}); err == nil {
		t.Error("search against cleared worker should fail")
	}
}

// TestEmptyPartitionsTolerated: heterogeneous partitioning of a tiny
// dataset can leave partitions empty; build and search must cope.
func TestEmptyPartitionsTolerated(t *testing.T) {
	ds := dataset.Generate(dataset.Spec{
		Name: "tiny", Cardinality: 3, AvgLen: 12, SpanX: 2, SpanY: 2, Hotspots: 2, Seed: 8,
	})
	parts := make([][]*geo.Trajectory, 6) // more partitions than data
	for i, tr := range ds {
		parts[i] = append(parts[i], tr)
	}
	spec := IndexSpec{
		Algorithm: REPOSE,
		Region:    geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 2, Y: 2}},
		Delta:     0.1,
	}
	c, err := BuildLocal(spec, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Search(context.Background(), ds[0].Points, 5, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results, want all 3", len(got))
	}
	if got[0].ID != ds[0].ID || got[0].Dist != 0 {
		t.Errorf("self match missing: %+v", got[0])
	}
}
