package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repose/internal/geo"
	"repose/internal/topk"
)

// Local runs all partitions in one process, one goroutine per
// partition up to a worker cap — the single-machine stand-in for the
// paper's 16-node Spark cluster (each of the 64 cores processes one
// of the 64 default partitions).
type Local struct {
	indexes   []LocalIndex
	gpids     []int // local slot → global partition id; nil = identity
	workers   int
	sem       chan struct{} // shared worker-cap semaphore, sized workers
	buildTime time.Duration
	dir       *directory // online-mutation routing; nil on worker views

	// sizeMu guards sizes, the per-partition SizeBytes cache keyed by
	// the generation it was computed at. The pointer trie's SizeBytes
	// is a full structural walk, so memory accounting on the query
	// path must not recompute it until a mutation actually changes the
	// structure (every structural change bumps the generation;
	// immutable baselines stay at generation 0 forever).
	sizeMu sync.Mutex
	sizes  []sizeCacheEntry
}

// sizeCacheEntry is one partition's cached footprint.
type sizeCacheEntry struct {
	gen   uint64
	size  int
	valid bool
}

// gpid maps a local index slot to its global partition id.
func (c *Local) gpid(pi int) int {
	if c.gpids == nil {
		return pi
	}
	return c.gpids[pi]
}

// QueryReport describes one distributed query's execution.
type QueryReport struct {
	Wall           time.Duration   // end-to-end wall time
	PartitionTimes []time.Duration // per-partition local search time
	MaxPartition   time.Duration   // slowest partition (the straggler)
	SumPartition   time.Duration   // total compute across partitions

	// Generations is the per-partition generation floor of the
	// answer: the engine's authoritative generation vector snapshotted
	// at dispatch, before any partition was scanned. Every partition's
	// snapshot-isolated scan observed at least this generation (on the
	// local engine the scan reads the then-current state; on the
	// remote engine only replicas at or above the authoritative
	// generation serve reads), so an answer cache keyed by this vector
	// can never serve a result missing a mutation that was
	// acknowledged before the cached query began.
	Generations []uint64
	// CacheEligible reports that the answer is canonical for
	// (query, k) — it covered every partition. A query restricted
	// with QueryOptions.Partitions answers a sub-question that must
	// not be cached as the full answer.
	CacheEligible bool
	// IndexBytes is the per-partition index footprint at dispatch,
	// indexed by global partition id (like Generations). The local
	// engine reports live sizes cached per generation; the remote
	// engine reports the sizes workers declared at build time.
	IndexBytes []int
}

// Imbalance returns the straggler ratio MaxPartition/mean; 1.0 is a
// perfectly balanced query.
func (r QueryReport) Imbalance() float64 {
	if len(r.PartitionTimes) == 0 || r.SumPartition == 0 {
		return 1
	}
	mean := float64(r.SumPartition) / float64(len(r.PartitionTimes))
	return float64(r.MaxPartition) / mean
}

// finish folds the per-partition timings into the aggregates.
func (r *QueryReport) finish(start time.Time) {
	r.Wall = time.Since(start)
	for _, d := range r.PartitionTimes {
		r.SumPartition += d
		if d > r.MaxPartition {
			r.MaxPartition = d
		}
	}
}

// BuildLocal builds one index per partition in parallel. workers ≤ 0
// uses GOMAXPROCS.
func BuildLocal(spec IndexSpec, parts [][]*geo.Trajectory, workers int) (*Local, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &Local{
		indexes: make([]LocalIndex, len(parts)),
		workers: workers,
		sem:     make(chan struct{}, workers),
	}
	start := time.Now()
	sem := c.sem
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, part []*geo.Trajectory) {
			defer wg.Done()
			defer func() { <-sem }()
			idx, err := spec.BuildLocal(part)
			if err != nil {
				errs[i] = fmt.Errorf("partition %d: %w", i, err)
				return
			}
			c.indexes[i] = idx
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	c.buildTime = time.Since(start)
	c.dir = newDirectory(spec, parts)
	return c, nil
}

// localView wraps a subset of partition indexes as a Local sharing
// the same query machinery; the RPC worker serves its owned
// partitions through one. pids names each index's global partition id
// so per-partition generation pins resolve correctly.
func localView(indexes []LocalIndex, pids []int, workers int) *Local {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Local{indexes: indexes, gpids: pids, workers: workers, sem: make(chan struct{}, workers)}
}

// scatter fans one partition-local operation out over the selected
// partitions under the worker cap, timing each partition. It returns
// the per-partition result lists (indexed like the selection) and the
// timing report; a cancelled ctx wins over per-partition errors.
func (c *Local) scatter(ctx context.Context, opt QueryOptions, what string, fn func(pi int, idx LocalIndex) ([]topk.Item, error)) ([][]topk.Item, QueryReport, error) {
	sel, err := selectPartitions(opt.Partitions, len(c.indexes))
	if err != nil {
		return nil, QueryReport{}, err
	}
	report := QueryReport{PartitionTimes: make([]time.Duration, len(sel))}
	locals := make([][]topk.Item, len(sel))
	errs := make([]error, len(sel))
	start := time.Now()
	// The semaphore is shared across concurrent queries: the cap
	// bounds the engine's total partition-scan parallelism rather
	// than each query's, and the per-query channel allocation goes
	// away.
	sem := c.sem
	var wg sync.WaitGroup
	for si, pi := range sel {
		// Don't queue behind other queries' scans once cancelled: a
		// shared semaphore must not turn a deadline-bounded query
		// into an unbounded wait.
		select {
		case <-ctx.Done():
			errs[si] = ctx.Err()
			continue
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(si, pi int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			locals[si], errs[si] = fn(pi, c.indexes[pi])
			report.PartitionTimes[si] = time.Since(t0)
		}(si, pi)
	}
	wg.Wait()
	report.finish(start)
	if err := ctx.Err(); err != nil {
		return nil, report, fmt.Errorf("cluster: %s: %w", what, err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, report, err
		}
	}
	return locals, report, nil
}

// Search broadcasts the query to every selected partition and merges
// the local top-k results (the collect step of Section V-C). When ctx
// is cancelled mid-query the partition scans stop early and ctx's
// error is returned.
func (c *Local) Search(ctx context.Context, q []geo.Point, k int, opt QueryOptions) ([]topk.Item, QueryReport, error) {
	gens := c.Generations()
	locals, report, err := c.scatter(ctx, opt, "search", func(pi int, idx LocalIndex) ([]topk.Item, error) {
		return searchOne(ctx, c.gpid(pi), idx, q, k, opt)
	})
	report.Generations, report.CacheEligible = gens, len(opt.Partitions) == 0
	report.IndexBytes = c.PartitionIndexBytes()
	if err != nil {
		return nil, report, err
	}
	return topk.Merge(k, locals...), report, nil
}

// Generations implements Engine: each partition index's current
// generation, 0 for immutable (baseline) indexes. The snapshot is
// taken partition by partition, but each coordinate is a valid floor:
// generations only advance.
func (c *Local) Generations() []uint64 {
	gens := make([]uint64, len(c.indexes))
	for i, idx := range c.indexes {
		if m, ok := idx.(MutableIndex); ok {
			gens[i] = m.Generation()
		}
	}
	return gens
}

// SearchRadius returns every trajectory within radius of q, merged
// across the selected partitions and sorted ascending by
// (distance, id). It fails if any selected partition's index lacks
// range support.
func (c *Local) SearchRadius(ctx context.Context, q []geo.Point, radius float64, opt QueryOptions) ([]topk.Item, QueryReport, error) {
	gens := c.Generations()
	locals, report, err := c.scatter(ctx, opt, "radius search", func(pi int, idx LocalIndex) ([]topk.Item, error) {
		return radiusOne(ctx, pi, c.gpid(pi), idx, q, radius, opt)
	})
	report.Generations, report.CacheEligible = gens, len(opt.Partitions) == 0
	report.IndexBytes = c.PartitionIndexBytes()
	if err != nil {
		return nil, report, err
	}
	var out []topk.Item
	for _, l := range locals {
		out = append(out, l...)
	}
	topk.SortItems(out)
	return out, report, nil
}

// BuildTime returns the wall time of index construction.
func (c *Local) BuildTime() time.Duration { return c.buildTime }

// NumPartitions returns the partition count.
func (c *Local) NumPartitions() int { return len(c.indexes) }

// Len returns the total number of indexed trajectories.
func (c *Local) Len() int {
	n := 0
	for _, idx := range c.indexes {
		n += idx.Len()
	}
	return n
}

// IndexSizeBytes sums the index footprints across partitions.
func (c *Local) IndexSizeBytes() int {
	sz := 0
	for _, b := range c.PartitionIndexBytes() {
		sz += b
	}
	return sz
}

// PartitionIndexBytes reports each partition's live index footprint,
// indexed like c.indexes (global partition ids on a full engine).
// Results are cached per generation so repeated calls — every query
// report carries the vector — do not re-walk unchanged structures.
func (c *Local) PartitionIndexBytes() []int {
	c.sizeMu.Lock()
	defer c.sizeMu.Unlock()
	if c.sizes == nil {
		c.sizes = make([]sizeCacheEntry, len(c.indexes))
	}
	out := make([]int, len(c.indexes))
	for i, idx := range c.indexes {
		gen := uint64(0)
		if m, ok := idx.(MutableIndex); ok {
			gen = m.Generation()
		}
		if e := c.sizes[i]; e.valid && e.gen == gen {
			out[i] = e.size
			continue
		}
		sz := idx.SizeBytes()
		c.sizes[i] = sizeCacheEntry{gen: gen, size: sz, valid: true}
		out[i] = sz
	}
	return out
}

// Close implements Engine: disk-backed partitions (BuildLocalDurable
// or OpenLocalDurable) flush and close their stores; a purely
// in-memory engine holds no external resources.
func (c *Local) Close() error {
	for _, idx := range c.indexes {
		closeDurable(idx)
	}
	return nil
}
