package cluster

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repose/internal/geo"
	"repose/internal/rptrie"
	"repose/internal/topk"
)

// Local runs all partitions in one process, one goroutine per
// partition up to a worker cap — the single-machine stand-in for the
// paper's 16-node Spark cluster (each of the 64 cores processes one
// of the 64 default partitions).
type Local struct {
	// partsPtr holds the partition index slice behind an atomic
	// pointer: queries snapshot it once and never observe a split
	// mid-flight, while SplitPartition publishes the grown slice with
	// one store. Mutations are serialized by dir.mu as before.
	partsPtr  atomic.Pointer[[]LocalIndex]
	gpids     []int // local slot → global partition id; nil = identity
	workers   int
	sem       chan struct{} // shared worker-cap semaphore, sized workers
	buildTime time.Duration
	dir       *directory // online-mutation routing; nil on worker views
	dataDir   string     // durable root; split clones install under it
	loads     *loadTracker

	// sizeMu guards sizes, the per-partition SizeBytes cache keyed by
	// the generation it was computed at. The pointer trie's SizeBytes
	// is a full structural walk, so memory accounting on the query
	// path must not recompute it until a mutation actually changes the
	// structure (every structural change bumps the generation;
	// immutable baselines stay at generation 0 forever).
	sizeMu sync.Mutex
	sizes  []sizeCacheEntry
}

// sizeCacheEntry is one partition's cached footprint.
type sizeCacheEntry struct {
	gen   uint64
	size  int
	valid bool
}

// parts snapshots the partition index slice; callers must use one
// snapshot for a whole operation so a concurrent split cannot shift
// slots under them.
func (c *Local) parts() []LocalIndex {
	if p := c.partsPtr.Load(); p != nil {
		return *p
	}
	return nil
}

// setParts publishes a new partition slice and sizes the load tracker
// to match.
func (c *Local) setParts(parts []LocalIndex) {
	c.partsPtr.Store(&parts)
	if c.loads == nil {
		c.loads = newLoadTracker(len(parts))
	} else {
		c.loads.grow(len(parts))
	}
}

// gpid maps a local index slot to its global partition id.
func (c *Local) gpid(pi int) int {
	if c.gpids == nil {
		return pi
	}
	return c.gpids[pi]
}

// gpidsOf maps a slice of local slots to global partition ids.
func (c *Local) gpidsOf(sel []int) []int {
	out := make([]int, len(sel))
	for i, pi := range sel {
		out[i] = c.gpid(pi)
	}
	return out
}

// QueryReport describes one distributed query's execution.
type QueryReport struct {
	Wall           time.Duration   // end-to-end wall time
	PartitionTimes []time.Duration // per-partition local search time
	MaxPartition   time.Duration   // slowest partition (the straggler)
	SumPartition   time.Duration   // total compute across partitions

	// Generations is the per-partition generation floor of the
	// answer: the engine's authoritative generation vector snapshotted
	// at dispatch, before any partition was scanned. Every partition's
	// snapshot-isolated scan observed at least this generation (on the
	// local engine the scan reads the then-current state; on the
	// remote engine only replicas at or above the authoritative
	// generation serve reads), so an answer cache keyed by this vector
	// can never serve a result missing a mutation that was
	// acknowledged before the cached query began.
	Generations []uint64
	// CacheEligible reports that the answer is canonical for
	// (query, k) — it covered every partition, either by scanning it
	// or by proving it cannot contribute (exact-mode probe pruning).
	// A query restricted with QueryOptions.Partitions, or one that
	// skipped partitions in best-effort mode, answers a sub-question
	// that must not be cached as the full answer.
	CacheEligible bool
	// IndexBytes is the per-partition index footprint at dispatch,
	// indexed by global partition id (like Generations). The local
	// engine reports live sizes cached per generation; the remote
	// engine reports the sizes workers declared at build time.
	IndexBytes []int

	// ProbedPartitions lists the global partition ids actually
	// scanned when a probe budget shaped the query (nil on a plain
	// full scatter). PrunedPartitions lists those proven unable to
	// contribute by an admissible bound check (exact mode);
	// SkippedPartitions lists those dropped unchecked (best-effort
	// mode).
	ProbedPartitions  []int
	PrunedPartitions  []int
	SkippedPartitions []int
}

// Imbalance returns the straggler ratio MaxPartition/mean; 1.0 is a
// perfectly balanced query.
func (r QueryReport) Imbalance() float64 {
	if len(r.PartitionTimes) == 0 || r.SumPartition == 0 {
		return 1
	}
	mean := float64(r.SumPartition) / float64(len(r.PartitionTimes))
	return float64(r.MaxPartition) / mean
}

// finish folds the per-partition timings into the aggregates.
func (r *QueryReport) finish(start time.Time) {
	r.Wall = time.Since(start)
	for _, d := range r.PartitionTimes {
		r.SumPartition += d
		if d > r.MaxPartition {
			r.MaxPartition = d
		}
	}
}

// absorb folds a follow-up phase's timings into this report; the
// phases ran sequentially, so walls add.
func (r *QueryReport) absorb(o QueryReport) {
	r.Wall += o.Wall
	r.PartitionTimes = append(r.PartitionTimes, o.PartitionTimes...)
	r.SumPartition += o.SumPartition
	if o.MaxPartition > r.MaxPartition {
		r.MaxPartition = o.MaxPartition
	}
}

// BuildLocal builds one index per partition in parallel. workers ≤ 0
// uses GOMAXPROCS.
func BuildLocal(spec IndexSpec, parts [][]*geo.Trajectory, workers int) (*Local, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &Local{
		workers: workers,
		sem:     make(chan struct{}, workers),
	}
	indexes := make([]LocalIndex, len(parts))
	start := time.Now()
	sem := c.sem
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, part []*geo.Trajectory) {
			defer wg.Done()
			defer func() { <-sem }()
			idx, err := spec.BuildLocal(part)
			if err != nil {
				errs[i] = fmt.Errorf("partition %d: %w", i, err)
				return
			}
			indexes[i] = idx
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	c.setParts(indexes)
	c.buildTime = time.Since(start)
	c.dir = newDirectory(spec, parts)
	return c, nil
}

// localView wraps a subset of partition indexes as a Local sharing
// the same query machinery; the RPC worker serves its owned
// partitions through one. pids names each index's global partition id
// so per-partition generation pins resolve correctly.
func localView(indexes []LocalIndex, pids []int, workers int) *Local {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &Local{gpids: pids, workers: workers, sem: make(chan struct{}, workers)}
	c.setParts(indexes)
	return c
}

// scatter fans one partition-local operation out over the sel slots
// of parts under the worker cap, timing each slot. It returns the
// per-slot result lists (indexed like sel) and the timing report; a
// cancelled ctx wins over per-partition errors.
func (c *Local) scatter(ctx context.Context, parts []LocalIndex, sel []int, what string, fn func(si, pi int, idx LocalIndex) ([]topk.Item, error)) ([][]topk.Item, QueryReport, error) {
	report := QueryReport{PartitionTimes: make([]time.Duration, len(sel))}
	locals := make([][]topk.Item, len(sel))
	errs := make([]error, len(sel))
	start := time.Now()
	// The semaphore is shared across concurrent queries: the cap
	// bounds the engine's total partition-scan parallelism rather
	// than each query's, and the per-query channel allocation goes
	// away.
	sem := c.sem
	var wg sync.WaitGroup
	for si, pi := range sel {
		// Don't queue behind other queries' scans once cancelled: a
		// shared semaphore must not turn a deadline-bounded query
		// into an unbounded wait.
		select {
		case <-ctx.Done():
			errs[si] = ctx.Err()
			continue
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(si, pi int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			locals[si], errs[si] = fn(si, pi, parts[pi])
			report.PartitionTimes[si] = time.Since(t0)
		}(si, pi)
	}
	wg.Wait()
	report.finish(start)
	if err := ctx.Err(); err != nil {
		return nil, report, fmt.Errorf("cluster: %s: %w", what, err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, report, err
		}
	}
	return locals, report, nil
}

// searchLists runs one partition-local top-k scan per sel slot and
// returns the unmerged result lists plus each slot's exact-distance
// refinement count — the per-partition cost counter the load tracker
// learns from and the v6 protocol ships back to the driver.
func (c *Local) searchLists(ctx context.Context, parts []LocalIndex, sel []int, q []geo.Point, k int, opt QueryOptions) ([][]topk.Item, []int64, QueryReport, error) {
	refined := make([]int64, len(sel))
	locals, report, err := c.scatter(ctx, parts, sel, "search", func(si, pi int, idx LocalIndex) ([]topk.Item, error) {
		var stats rptrie.SearchStats
		items, err := searchOne(ctx, c.gpid(pi), idx, q, k, opt, &stats)
		refined[si] = int64(stats.ExactComputations)
		return items, err
	})
	return locals, refined, report, err
}

// Search broadcasts the query to every selected partition and merges
// the local top-k results (the collect step of Section V-C); with a
// probe budget it scans score-ordered partitions first and prunes the
// tail it can prove irrelevant. When ctx is cancelled mid-query the
// partition scans stop early and ctx's error is returned.
func (c *Local) Search(ctx context.Context, q []geo.Point, k int, opt QueryOptions) ([]topk.Item, QueryReport, error) {
	gens := c.Generations()
	parts := c.parts()
	sel, err := selectPartitions(opt.Partitions, len(parts))
	if err != nil {
		return nil, QueryReport{}, err
	}
	items, report, err := c.searchBudgeted(ctx, parts, sel, q, k, opt)
	report.Generations = gens
	report.CacheEligible = len(opt.Partitions) == 0 && len(report.SkippedPartitions) == 0
	report.IndexBytes = c.PartitionIndexBytes()
	if err != nil {
		return nil, report, err
	}
	return items, report, nil
}

// searchBudgeted answers one top-k query over the sel slots. Without
// a usable probe budget every slot is scanned. With one, the budget-
// many highest-scoring slots are probed first; each remaining slot is
// then either pruned — its admissible best-possible lower bound
// strictly exceeds the current k-th distance, so by admissibility no
// trajectory it holds can displace the merged top-k even on
// (distance, id) ties — or probed in a second wave. Exact mode is
// therefore bit-identical to a full scatter; best-effort mode skips
// the unproven tail outright.
func (c *Local) searchBudgeted(ctx context.Context, parts []LocalIndex, sel []int, q []geo.Point, k int, opt QueryOptions) ([]topk.Item, QueryReport, error) {
	budget := opt.ProbeBudget
	if budget <= 0 || budget >= len(sel) {
		locals, refined, report, err := c.searchLists(ctx, parts, sel, q, k, opt)
		if err != nil {
			return nil, report, err
		}
		items := mergeDedup(k, locals)
		c.recordLoads(sel, locals, refined, report.PartitionTimes, items)
		return items, report, nil
	}
	order := c.loads.order(sel)
	head, tail := order[:budget], order[budget:]
	locals, refined, report, err := c.searchLists(ctx, parts, head, q, k, opt)
	report.ProbedPartitions = c.gpidsOf(head)
	if err != nil {
		return nil, report, err
	}
	items := mergeDedup(k, locals)
	c.recordLoads(head, locals, refined, report.PartitionTimes, items)
	if opt.BestEffort {
		report.SkippedPartitions = c.gpidsOf(tail)
		return items, report, nil
	}
	dk := math.Inf(1)
	if len(items) >= k {
		dk = items[k-1].Dist
	}
	var survivors []int
	for _, pi := range tail {
		b, err := boundOne(ctx, c.gpid(pi), parts[pi], q, opt)
		if err != nil {
			if ctx.Err() != nil {
				return nil, report, err
			}
			// A failed bound proves nothing about the partition:
			// conservatively treat it as a survivor and scan it. The
			// answer stays exact, and a genuine partition failure
			// still surfaces through the scan itself.
			survivors = append(survivors, pi)
			continue
		}
		if b > dk {
			report.PrunedPartitions = append(report.PrunedPartitions, c.gpid(pi))
			continue
		}
		survivors = append(survivors, pi)
	}
	if len(survivors) == 0 {
		return items, report, nil
	}
	locals2, refined2, rep2, err := c.searchLists(ctx, parts, survivors, q, k, opt)
	report.ProbedPartitions = append(report.ProbedPartitions, c.gpidsOf(survivors)...)
	report.absorb(rep2)
	if err != nil {
		return nil, report, err
	}
	items = mergeDedup(k, append(locals, locals2...))
	c.recordLoads(survivors, locals2, refined2, rep2.PartitionTimes, items)
	return items, report, nil
}

// recordLoads feeds one wave's per-slot outcomes to the load tracker
// (see loadTracker.recordWave).
func (c *Local) recordLoads(sel []int, locals [][]topk.Item, refined []int64, times []time.Duration, merged []topk.Item) {
	c.loads.recordWave(sel, locals, refined, times, merged)
}

// mergeDedup merges per-partition result lists into one global top-k,
// dropping duplicate ids. Duplicates arise only inside a split's
// install→prune window, when a moved trajectory momentarily lives in
// both the old and the new partition; the copies are identical, so
// keeping the first occurrence in (Dist, ID) order preserves the
// canonical answer.
func mergeDedup(k int, lists [][]topk.Item) []topk.Item {
	var all []topk.Item
	for _, l := range lists {
		all = append(all, l...)
	}
	topk.SortItems(all)
	seen := make(map[int]struct{}, len(all))
	out := all[:0]
	for _, it := range all {
		if _, dup := seen[it.ID]; dup {
			continue
		}
		seen[it.ID] = struct{}{}
		out = append(out, it)
		if len(out) == k {
			break
		}
	}
	return out
}

// dedupItems removes duplicate ids from a (Dist, ID)-sorted list in
// place, keeping each id's first occurrence (see mergeDedup for when
// duplicates can exist at all).
func dedupItems(items []topk.Item) []topk.Item {
	seen := make(map[int]struct{}, len(items))
	out := items[:0]
	for _, it := range items {
		if _, dup := seen[it.ID]; dup {
			continue
		}
		seen[it.ID] = struct{}{}
		out = append(out, it)
	}
	return out
}

// Generations implements Engine: each partition index's current
// generation, 0 for immutable (baseline) indexes. The snapshot is
// taken partition by partition, but each coordinate is a valid floor:
// generations only advance.
func (c *Local) Generations() []uint64 {
	parts := c.parts()
	gens := make([]uint64, len(parts))
	for i, idx := range parts {
		if m, ok := idx.(MutableIndex); ok {
			gens[i] = m.Generation()
		}
	}
	return gens
}

// SearchRadius returns every trajectory within radius of q, merged
// across the selected partitions and sorted ascending by
// (distance, id). It fails if any selected partition's index lacks
// range support.
func (c *Local) SearchRadius(ctx context.Context, q []geo.Point, radius float64, opt QueryOptions) ([]topk.Item, QueryReport, error) {
	// Radius queries have no probe-budget phase: neutralize the
	// top-k-only fields so they can neither alter execution nor leak
	// into the eligibility accounting below.
	opt.ProbeBudget, opt.BestEffort = 0, false
	gens := c.Generations()
	parts := c.parts()
	sel, err := selectPartitions(opt.Partitions, len(parts))
	if err != nil {
		return nil, QueryReport{}, err
	}
	locals, report, err := c.scatter(ctx, parts, sel, "radius search", func(si, pi int, idx LocalIndex) ([]topk.Item, error) {
		return radiusOne(ctx, pi, c.gpid(pi), idx, q, radius, opt)
	})
	report.Generations = gens
	report.CacheEligible = len(opt.Partitions) == 0 && len(report.SkippedPartitions) == 0
	report.IndexBytes = c.PartitionIndexBytes()
	if err != nil {
		return nil, report, err
	}
	var out []topk.Item
	for _, l := range locals {
		out = append(out, l...)
	}
	topk.SortItems(out)
	return dedupItems(out), report, nil
}

// BuildTime returns the wall time of index construction.
func (c *Local) BuildTime() time.Duration { return c.buildTime }

// NumPartitions returns the partition count.
func (c *Local) NumPartitions() int { return len(c.parts()) }

// Len returns the total number of indexed trajectories.
func (c *Local) Len() int {
	n := 0
	for _, idx := range c.parts() {
		n += idx.Len()
	}
	return n
}

// LoadStats reports the per-partition load profile the engine has
// accumulated — query counts, refine ops, p99 scan latency, and the
// learned reward-per-probe score the probe budget orders by.
func (c *Local) LoadStats() []PartitionLoad {
	if c.loads == nil {
		return nil
	}
	return c.loads.snapshot()
}

// IndexSizeBytes sums the index footprints across partitions.
func (c *Local) IndexSizeBytes() int {
	sz := 0
	for _, b := range c.PartitionIndexBytes() {
		sz += b
	}
	return sz
}

// PartitionIndexBytes reports each partition's live index footprint,
// indexed like the partition slice (global partition ids on a full
// engine). Results are cached per generation so repeated calls —
// every query report carries the vector — do not re-walk unchanged
// structures.
func (c *Local) PartitionIndexBytes() []int {
	parts := c.parts()
	c.sizeMu.Lock()
	defer c.sizeMu.Unlock()
	if len(c.sizes) < len(parts) {
		grown := make([]sizeCacheEntry, len(parts))
		copy(grown, c.sizes)
		c.sizes = grown
	}
	out := make([]int, len(parts))
	for i, idx := range parts {
		gen := uint64(0)
		if m, ok := idx.(MutableIndex); ok {
			gen = m.Generation()
		}
		if e := c.sizes[i]; e.valid && e.gen == gen {
			out[i] = e.size
			continue
		}
		sz := idx.SizeBytes()
		c.sizes[i] = sizeCacheEntry{gen: gen, size: sz, valid: true}
		out[i] = sz
	}
	return out
}

// Close implements Engine: disk-backed partitions (BuildLocalDurable
// or OpenLocalDurable) flush and close their stores; a purely
// in-memory engine holds no external resources.
func (c *Local) Close() error {
	for _, idx := range c.parts() {
		closeDurable(idx)
	}
	return nil
}
