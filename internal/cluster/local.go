package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repose/internal/geo"
	"repose/internal/topk"
)

// Local runs all partitions in one process, one goroutine per
// partition up to a worker cap — the single-machine stand-in for the
// paper's 16-node Spark cluster (each of the 64 cores processes one
// of the 64 default partitions).
type Local struct {
	indexes   []LocalIndex
	workers   int
	buildTime time.Duration
}

// QueryReport describes one distributed query's execution.
type QueryReport struct {
	Wall           time.Duration   // end-to-end wall time
	PartitionTimes []time.Duration // per-partition local search time
	MaxPartition   time.Duration   // slowest partition (the straggler)
	SumPartition   time.Duration   // total compute across partitions
}

// imbalance returns the straggler ratio MaxPartition/mean; 1.0 is a
// perfectly balanced query.
func (r QueryReport) Imbalance() float64 {
	if len(r.PartitionTimes) == 0 || r.SumPartition == 0 {
		return 1
	}
	mean := float64(r.SumPartition) / float64(len(r.PartitionTimes))
	return float64(r.MaxPartition) / mean
}

// BuildLocal builds one index per partition in parallel. workers ≤ 0
// uses GOMAXPROCS.
func BuildLocal(spec IndexSpec, parts [][]*geo.Trajectory, workers int) (*Local, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &Local{indexes: make([]LocalIndex, len(parts)), workers: workers}
	start := time.Now()
	sem := make(chan struct{}, workers)
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, part []*geo.Trajectory) {
			defer wg.Done()
			defer func() { <-sem }()
			idx, err := spec.BuildLocal(part)
			if err != nil {
				errs[i] = fmt.Errorf("partition %d: %w", i, err)
				return
			}
			c.indexes[i] = idx
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	c.buildTime = time.Since(start)
	return c, nil
}

// Search broadcasts the query to every partition and merges the local
// top-k results (the collect step of Section V-C).
func (c *Local) Search(q []geo.Point, k int) ([]topk.Item, error) {
	items, _, err := c.SearchDetailed(q, k)
	return items, err
}

// SearchDetailed is Search plus a per-partition timing report.
func (c *Local) SearchDetailed(q []geo.Point, k int) ([]topk.Item, QueryReport, error) {
	report := QueryReport{PartitionTimes: make([]time.Duration, len(c.indexes))}
	locals := make([][]topk.Item, len(c.indexes))
	start := time.Now()
	sem := make(chan struct{}, c.workers)
	var wg sync.WaitGroup
	for i, idx := range c.indexes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, idx LocalIndex) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			locals[i] = idx.Search(q, k)
			report.PartitionTimes[i] = time.Since(t0)
		}(i, idx)
	}
	wg.Wait()
	merged := topk.Merge(k, locals...)
	report.Wall = time.Since(start)
	for _, d := range report.PartitionTimes {
		report.SumPartition += d
		if d > report.MaxPartition {
			report.MaxPartition = d
		}
	}
	return merged, report, nil
}

// BuildTime returns the wall time of index construction.
func (c *Local) BuildTime() time.Duration { return c.buildTime }

// NumPartitions returns the partition count.
func (c *Local) NumPartitions() int { return len(c.indexes) }

// Len returns the total number of indexed trajectories.
func (c *Local) Len() int {
	n := 0
	for _, idx := range c.indexes {
		n += idx.Len()
	}
	return n
}

// IndexSizeBytes sums the index footprints across partitions.
func (c *Local) IndexSizeBytes() int {
	sz := 0
	for _, idx := range c.indexes {
		sz += idx.SizeBytes()
	}
	return sz
}
