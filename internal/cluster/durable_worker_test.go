package cluster

import (
	"context"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repose/internal/cluster/chaos"
	"repose/internal/dataset"
	"repose/internal/leakcheck"
	"repose/internal/rptrie"
)

// TestDurableWorkerRecoversLocally drives a data-dir worker through
// build + mutations, shuts it down, and starts a fresh worker on the
// same directory: every partition must come back from its own store
// at the exact acknowledged generation, without any Restore, and
// answer queries identically.
func TestDurableWorkerRecoversLocally(t *testing.T) {
	base := leakcheck.Base()
	defer leakcheck.Settle(t, base)
	dir := t.TempDir()
	ds, parts, spec := testWorld(t, 120, 2)

	w, err := NewDurableWorker(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	for pid, part := range parts {
		var br BuildReply
		if err := w.Build(&BuildArgs{Version: ProtocolVersion, PartitionID: pid, Spec: spec, Trajectories: part}, &br); err != nil {
			t.Fatalf("build partition %d: %v", pid, err)
		}
	}
	rng := rand.New(rand.NewSource(21))
	adds := freshTrajs(rng, 400_000, 6)
	var ir InsertReply
	if err := w.Insert(&InsertArgs{Version: ProtocolVersion, PartitionID: 1, Trajectories: adds}, &ir); err != nil {
		t.Fatal(err)
	}
	var dr DeleteReply
	if err := w.Delete(&DeleteArgs{Version: ProtocolVersion, PartitionID: 0, IDs: []int{parts[0][0].ID}}, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Removed != 1 {
		t.Fatalf("delete removed %d, want 1", dr.Removed)
	}
	var before StatusReply
	if err := w.Status(&StatusArgs{Version: ProtocolVersion}, &before); err != nil {
		t.Fatal(err)
	}
	q := dataset.Queries(ds, 1, 31)[0]
	var sr SearchReply
	if err := w.Search(&SearchArgs{QueryHeader: QueryHeader{Version: ProtocolVersion}, Query: q.Points, K: 9}, &sr); err != nil {
		t.Fatal(err)
	}
	w.CloseData() // process shutdown

	// Foreign entries in the data dir — an operator's stray file, a
	// non-partition directory, and an empty p-dir with no store — must
	// be skipped by recovery, not break it.
	if err := os.WriteFile(filepath.Join(dir, "NOTES.txt"), []byte("ops"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{"tmp", "p7x", partDirName(9)} {
		if err := os.Mkdir(filepath.Join(dir, junk), 0o755); err != nil {
			t.Fatal(err)
		}
	}

	w2, err := NewDurableWorker(dir, false)
	if err != nil {
		t.Fatalf("restart on same data dir: %v", err)
	}
	defer w2.CloseData()
	if got := w2.RecoveredPartitions(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("recovered partitions %v, want [0 1]", got)
	}
	if w2.RestoreCount() != 0 {
		t.Fatalf("recovery used %d Restores, want 0", w2.RestoreCount())
	}
	var after StatusReply
	if err := w2.Status(&StatusArgs{Version: ProtocolVersion}, &after); err != nil {
		t.Fatal(err)
	}
	for pid, gen := range before.Gens {
		if after.Gens[pid] != gen || after.Lens[pid] != before.Lens[pid] {
			t.Fatalf("partition %d recovered gen=%d len=%d, want gen=%d len=%d",
				pid, after.Gens[pid], after.Lens[pid], gen, before.Lens[pid])
		}
	}
	var sr2 SearchReply
	if err := w2.Search(&SearchArgs{QueryHeader: QueryHeader{Version: ProtocolVersion}, Query: q.Points, K: 9}, &sr2); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "recovered-worker search", 21, sr2.Items, sr.Items)

	// The recovered partition can still donate state to a peer.
	var snap SnapshotReply
	if err := w2.Snapshot(&SnapshotArgs{Version: ProtocolVersion, PartitionID: 0}, &snap); err != nil {
		t.Fatalf("snapshot of durable partition: %v", err)
	}
	if snap.Gen != before.Gens[0] || len(snap.Data) == 0 {
		t.Fatalf("durable snapshot gen=%d bytes=%d, want gen=%d and a non-empty image",
			snap.Gen, len(snap.Data), before.Gens[0])
	}

	// The recovered partitions accept further durable mutations.
	more := freshTrajs(rng, 500_000, 2)
	if err := w2.Insert(&InsertArgs{Version: ProtocolVersion, PartitionID: 0, Trajectories: more}, &ir); err != nil {
		t.Fatalf("insert on recovered partition: %v", err)
	}
	if ir.Gen != before.Gens[0]+1 {
		t.Fatalf("post-recovery insert produced gen %d, want %d", ir.Gen, before.Gens[0]+1)
	}
}

// TestDurableWorkerClearWipesDisk: Clear must destroy the on-disk
// stores too, or a restarted worker would resurrect partitions the
// driver dropped.
func TestDurableWorkerClearWipesDisk(t *testing.T) {
	dir := t.TempDir()
	_, parts, spec := testWorld(t, 60, 1)
	w, err := NewDurableWorker(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	var br BuildReply
	if err := w.Build(&BuildArgs{Version: ProtocolVersion, PartitionID: 0, Spec: spec, Trajectories: parts[0]}, &br); err != nil {
		t.Fatal(err)
	}
	if err := w.Clear(&ClearArgs{Version: ProtocolVersion}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	if _, err := rptrie.OpenDurable(filepath.Join(dir, partDirName(0)), rptrie.DurableOptions{}); err == nil {
		t.Fatal("cleared partition still recoverable from disk")
	}
	w2, err := NewDurableWorker(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.CloseData()
	if got := w2.RecoveredPartitions(); len(got) != 0 {
		t.Fatalf("restart after Clear resurrected partitions %v", got)
	}
}

// TestDurableWorkerFailedInstallUninstallsPartition regresses the
// Build/Restore replacement path: installing a rebuilt partition
// closes the old index's store and wipes its directory before the new
// durable wrap, so when the wrap fails the old index must come OUT of
// the worker — a closed index with destroyed on-disk state must not
// keep answering for the partition. The partition reads as absent
// (the driver rebuilds or restores it) and a retried build succeeds.
func TestDurableWorkerFailedInstallUninstallsPartition(t *testing.T) {
	base := leakcheck.Base()
	defer leakcheck.Settle(t, base)
	dir := t.TempDir()
	_, parts, spec := testWorld(t, 60, 1)
	w, err := NewDurableWorker(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	var br BuildReply
	build := func() error {
		return w.Build(&BuildArgs{Version: ProtocolVersion, PartitionID: 0, Spec: spec, Trajectories: parts[0]}, &br)
	}
	if err := build(); err != nil {
		t.Fatal(err)
	}
	// Sabotage: replace the partition's directory with a regular file,
	// so the rebuild's wipe-and-reopen of the store fails.
	pdir := filepath.Join(dir, partDirName(0))
	if err := os.RemoveAll(pdir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pdir, []byte("roadblock"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := build(); err == nil {
		t.Fatal("rebuild over a blocked partition directory succeeded")
	}
	// The failed install leaves the partition absent, not closed.
	var st StatusReply
	if err := w.Status(&StatusArgs{Version: ProtocolVersion}, &st); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Gens[0]; ok {
		t.Fatal("partition 0 still installed after its durable install failed")
	}
	var ir InsertReply
	add := freshTrajs(rand.New(rand.NewSource(5)), 900_000, 1)
	if err := w.Insert(&InsertArgs{Version: ProtocolVersion, PartitionID: 0, Trajectories: add}, &ir); err == nil {
		t.Fatal("insert into the uninstalled partition succeeded")
	}
	// With the roadblock cleared, a retried build installs durably.
	if err := os.Remove(pdir); err != nil {
		t.Fatal(err)
	}
	if err := build(); err != nil {
		t.Fatalf("retry build: %v", err)
	}
	w.CloseData()
	w2, err := NewDurableWorker(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.CloseData()
	if got := w2.RecoveredPartitions(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("recovered partitions %v, want [0]", got)
	}
}

// TestWorkerRestartRejoinsViaLocalWAL is the acceptance regression
// for the data-dir rejoin path: with replication factor 1 there is no
// peer to restore from, so when the lone worker owning a partition
// dies and restarts on its data directory, the driver must re-admit
// it purely from its local WAL replay — zero Worker.Restore calls —
// and its partition must answer bit-identical to a fault-free twin.
func TestWorkerRestartRejoinsViaLocalWAL(t *testing.T) {
	base := leakcheck.Base()
	// Registered before any resource cleanup, so it runs after all of
	// them (cleanups are LIFO): the listeners, fleet, and driver are
	// down by the time the goroutine count is checked.
	t.Cleanup(func() { leakcheck.Settle(t, base) })
	seed := chaosSeed()
	ds, parts, spec := testWorld(t, 160, 2)
	dir := t.TempDir()

	// Worker 0 is durable (owns partition 0 at factor 1); worker 1 is
	// a plain in-memory worker owning partition 1.
	w0, err := NewDurableWorker(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(ln0, w0)
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln1.Close() })
	go Serve(ln1, NewWorker())

	fleet, err := chaos.NewFleet([]string{ln0.Addr().String(), ln1.Addr().String()}, chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })
	remote, err := BuildRemote(spec, parts, fleet.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	remote.SetFailover(fastFailover)
	twin, err := BuildLocal(spec, parts, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate while everything is healthy; worker 0 journals these.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed + 3))
	adds := freshTrajs(rng, 800_000, 10)
	if _, err := remote.Insert(ctx, adds, MutateOptions{}); err != nil {
		t.Fatalf("insert: %v (seed=%d)", err, seed)
	}
	if _, err := twin.Insert(ctx, adds, MutateOptions{}); err != nil {
		t.Fatal(err)
	}
	if n, _, err := remote.Delete(ctx, []int{ds[1].ID, ds[5].ID}, MutateOptions{}); err != nil || n != 2 {
		t.Fatalf("delete: n=%d err=%v (seed=%d)", n, err, seed)
	}
	if n, _, err := twin.Delete(ctx, []int{ds[1].ID, ds[5].ID}, MutateOptions{}); err != nil || n != 2 {
		t.Fatal(err)
	}

	// Kill worker 0: sever its proxy, stop its listener, close its
	// stores (the durable state survives on disk).
	p0, err := fleet.At(0)
	if err != nil {
		t.Fatal(err)
	}
	p0.Down()
	ln0.Close()
	w0.CloseData()

	// The driver only notices a death on use: burn one query against
	// the dead worker so its breaker trips and the prober starts
	// watching the slot. With factor 1 there is no replica to fail
	// over to, so this query must error.
	q := dataset.Queries(ds, 2, seed+11)[0]
	sub := QueryOptions{Partitions: []int{0}}
	ctxT, cancel := context.WithTimeout(ctx, 2*time.Second)
	if _, _, err := remote.Search(ctxT, q.Points, 10, sub); err == nil {
		cancel()
		t.Fatalf("search succeeded against a killed factor-1 worker (seed=%d)", seed)
	}
	cancel()

	// Restart it on the same directory at a fresh address.
	w0b, err := NewDurableWorker(dir, false)
	if err != nil {
		t.Fatalf("restart on data dir: %v (seed=%d)", err, seed)
	}
	if got := w0b.RecoveredPartitions(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("restarted worker recovered %v, want [0] (seed=%d)", got, seed)
	}
	ln0b, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln0b.Close() })
	go Serve(ln0b, w0b)
	p0.SetTarget(ln0b.Addr().String())
	p0.Up()
	waitHealed(t, remote, seed)

	// The heal must have come from the local WAL replay alone.
	if n := w0b.RestoreCount(); n != 0 {
		t.Fatalf("rejoin used %d Worker.Restore calls, want 0: local WAL replay not trusted (seed=%d)", n, seed)
	}

	// Partition 0 is served only by the rejoined worker; its answers
	// must match the fault-free twin exactly, mutations included.
	got, _, err := remote.Search(ctx, q.Points, 10, sub)
	if err != nil {
		t.Fatalf("search on rejoined worker: %v (seed=%d)", err, seed)
	}
	want, _, err := twin.Search(ctx, q.Points, 10, sub)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "rejoined-worker search", seed, got, want)
	w0b.CloseData()
}
