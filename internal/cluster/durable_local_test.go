package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repose/internal/dataset"
	"repose/internal/geo"
	"repose/internal/leakcheck"
	"repose/internal/rptrie"
	"repose/internal/storage"
	"repose/internal/topk"
)

// TestLocalDurableBuildOpen: the local engine's disk-backed mode, all
// three layouts. Build installs every partition under the data
// directory, mutations journal, Close flushes, and OpenLocalDurable
// recovers the engine — routing directory included — to bit-identical
// answers, with mutation routing still working after recovery.
func TestLocalDurableBuildOpen(t *testing.T) {
	for _, layout := range []rptrie.Layout{rptrie.LayoutPointer, rptrie.LayoutSuccinct, rptrie.LayoutCompressed} {
		t.Run(fmt.Sprintf("layout=%v", layout), func(t *testing.T) {
			base := leakcheck.Base()
			defer leakcheck.Settle(t, base)
			dir := t.TempDir()
			ds, parts, spec := testWorld(t, 150, 3)
			spec.Layout = layout
			hasRadius := layout != rptrie.LayoutSuccinct
			ctx := context.Background()

			eng, err := BuildLocalDurable(spec, parts, 4, dir)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			adds := freshTrajs(rng, 600_000, 8)
			if _, err := eng.Insert(ctx, adds, MutateOptions{}); err != nil {
				t.Fatal(err)
			}
			if n, _, err := eng.Delete(ctx, []int{ds[2].ID, ds[9].ID}, MutateOptions{}); err != nil || n != 2 {
				t.Fatalf("delete: n=%d err=%v", n, err)
			}
			if _, err := eng.Compact(ctx, nil); err != nil {
				t.Fatalf("compact: %v", err)
			}
			q := dataset.Queries(ds, 2, 77)[0]
			want, _, err := eng.Search(ctx, q.Points, 7, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var wantRad []topk.Item
			if hasRadius {
				wantRad, _, err = eng.SearchRadius(ctx, q.Points, 0.8, QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
			}
			wantLen := eng.Len()
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenLocalDurable(spec, len(parts), 0, dir)
			if err != nil {
				t.Fatalf("OpenLocalDurable: %v", err)
			}
			defer re.Close()
			if re.NumPartitions() != len(parts) || re.Len() != wantLen {
				t.Fatalf("recovered %d partitions / %d trajectories, want %d / %d",
					re.NumPartitions(), re.Len(), len(parts), wantLen)
			}
			if re.BuildTime() <= 0 {
				t.Fatal("recovery reported a zero build time")
			}
			got, _, err := re.Search(ctx, q.Points, 7, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "recovered local search", 9, got, want)
			if !hasRadius {
				// The succinct layout has no range search; the durable
				// wrapper must surface that, naming the partition.
				if _, _, err := re.SearchRadius(ctx, q.Points, 0.8, QueryOptions{}); err == nil ||
					!strings.Contains(err.Error(), "radius") {
					t.Fatalf("succinct durable radius search: %v, want an unsupported diagnostic", err)
				}
			} else {
				gotRad, _, err := re.SearchRadius(ctx, q.Points, 0.8, QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, "recovered local radius", 9, gotRad, wantRad)
			}

			// The rebuilt routing directory still targets existing ids:
			// an upsert of a build-time trajectory must not duplicate
			// it, and a delete of an inserted one must land on its
			// partition.
			if _, err := re.Upsert(ctx, []*geo.Trajectory{ds[4]}, MutateOptions{}); err != nil {
				t.Fatal(err)
			}
			if re.Len() != wantLen {
				t.Fatalf("upsert of an existing id changed Len to %d, want %d", re.Len(), wantLen)
			}
			if n, _, err := re.Delete(ctx, []int{adds[0].ID}, MutateOptions{}); err != nil || n != 1 {
				t.Fatalf("delete of recovered insert: n=%d err=%v", n, err)
			}
		})
	}
}

// TestLocalDurableBaselineAndErrors: baseline algorithms have no
// persistence, so BuildLocalDurable passes them through without
// creating stores; and the build/open paths surface real failures —
// an unusable data-dir path, a corrupted page store, and a directory
// holding more partitions than the engine expects.
func TestLocalDurableBaselineAndErrors(t *testing.T) {
	_, parts, spec := testWorld(t, 60, 2)

	dir := t.TempDir()
	bspec := spec
	bspec.Algorithm = LS
	eng, err := BuildLocalDurable(bspec, parts, 2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLocalDurable(bspec, len(parts), 2, dir); err == nil {
		t.Fatal("baseline engine left recoverable stores behind")
	}

	blocked := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildLocalDurable(spec, parts, 2, blocked); err == nil {
		t.Fatal("build into a regular-file data dir succeeded")
	}

	dir2 := t.TempDir()
	eng2, err := BuildLocalDurable(spec, parts, 2, dir2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 4096)
	for i := range junk {
		junk[i] = 0x5a
	}
	if err := os.WriteFile(filepath.Join(dir2, partDirName(0), storage.PagesFileName), junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLocalDurable(spec, len(parts), 2, dir2); err == nil {
		t.Fatal("open over a corrupted page store succeeded")
	}

	dir3 := t.TempDir()
	eng3, err := BuildLocalDurable(spec, parts, 2, dir3)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng3.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLocalDurable(spec, 1, 2, dir3); err == nil {
		t.Fatal("open with fewer partitions than the directory holds succeeded")
	}
}

// TestOpenLocalDurableMissingPartition: recovery is all-or-nothing —
// a data directory missing one partition's store must fail the open
// rather than serve partial answers.
func TestOpenLocalDurableMissingPartition(t *testing.T) {
	dir := t.TempDir()
	_, parts, spec := testWorld(t, 80, 2)
	eng, err := BuildLocalDurable(spec, parts, 2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLocalDurable(spec, len(parts)+1, 2, dir); err == nil {
		t.Fatal("open with a missing partition store succeeded")
	}
	if _, err := OpenLocalDurable(spec, 0, 2, dir); err == nil {
		t.Fatal("open with zero partitions succeeded")
	}
}
