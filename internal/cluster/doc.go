// Package cluster implements REPOSE's distributed in-memory engine
// (Section V-C). The paper runs on Spark: a custom Partitioner
// spreads trajectories, mapPartitions builds one local index per
// partition (the RpTraj pairing of data and index), queries broadcast
// to all partitions, and the master merges local top-k results.
//
// This package reproduces that dataflow with two interchangeable
// transports behind one Engine interface: an in-process engine that
// runs partitions on goroutines (Local), and a multi-process engine
// that ships partitions to worker processes over net/rpc + gob
// (Remote) for multi-node simulation on one machine. Every query
// method takes a context — deadlines and cancellations stop partition
// scans mid-flight on either transport; the wire protocol carries
// per-query ids and deadlines so the driver can abort straggler
// workers remotely.
//
// The paper inherits fault tolerance from Spark's RDD lineage; this
// engine replicates instead (IndexSpec.Replicas): each partition is
// built on several distinct workers, queries are routed to one
// in-sync replica per partition and retried on the next replica when
// a worker fails, and a background prober heals recovering workers by
// streaming partition snapshots from their peers (protocol v4's
// Status/Snapshot/Restore; see failover.go).
//
// Why per-replica generation pins preserve snapshot isolation across
// failover: a partition's generation counter (PR 4's epoch scheme)
// advances identically on every replica because a single driver
// serializes mutations and fans each one out to all in-sync replicas
// in the same order — state is a pure function of the mutation prefix
// applied, and the generation number identifies that prefix. The
// driver records, per replica, the last generation it acknowledged
// (repGen) alongside the partition's authoritative generation
// (curGen); a replica serves reads only while repGen ≥ curGen. A
// query pinned to MinGens[pid] = g therefore cannot observe a
// pre-mutation snapshot on *any* replica the scatter may choose: g
// was acknowledged, so g ≤ curGen ≤ repGen of every eligible replica,
// and within one replica the rptrie layer already guarantees a query
// sees a single atomic snapshot at or above its pin. Failing over a
// partition call to another replica switches between states that are
// bit-identical at the pinned generation, so read-your-writes and
// snapshot isolation survive worker death. A replica that missed a
// mutation (down, timed out, outcome unknown) has repGen < curGen and
// is silently excluded until Worker.Restore installs a peer's image —
// which carries the donor's generation, re-aligning the counters
// exactly. The one case where no acknowledgement exists to anchor
// curGen — a mutation whose outcome was unknown on every replica —
// marks all of them unknown, making the partition unavailable rather
// than divergent, until the prober's reconcile pass asks the workers
// what they actually hold and re-anchors the authoritative generation
// on the highest surviving state.
//
// Why rebalancing preserves those pins: Rebalance and SplitPartition
// hold rebalMu exclusively while mutations hold it shared, so no
// mutation is in flight while ownership moves — the snapshot streamed
// to the new owner carries a generation ≥ curGen, and the eligibility
// rule above (repGen ≥ curGen) admits the new replica for reads only
// because it is at least as new as anything a query could have
// pinned. Queries never take rebalMu at all: a scatter that races the
// flip either reaches the donor before the drop (fine — its state is
// identical at the pinned generation) or gets the worker's typed
// not-owner rejection and retries on the current owner without a
// failover strike. A split installs the new partition on every
// eligible replica and registers it in the directory before pruning
// the moved ids from the donor, so during the overlap window a
// trajectory may be reported by both partitions but can never be
// missed; the driver's merge dedups by id, keeping answers exact.
//
// Why probe budgets stay exact: QueryOptions.ProbeBudget scans the n
// best-scoring partitions first (per-partition EWMA reward-per-cost,
// loadstats.go), then asks each remaining partition for its
// admissible lower bound — the same LBo/LBt bound the trie's
// best-first search orders by, which never exceeds the true distance
// of any trajectory in the partition. A partition whose bound is ≥
// the current k-th result distance therefore cannot contribute to the
// top-k and is pruned; every other partition is scanned in a second
// wave. The answer is bit-identical to the full scatter because only
// provably non-contributing work is skipped. BestEffort drops the
// second wave instead, trading exactness for latency — the report
// lists SkippedPartitions and the answer is marked cache-ineligible.
package cluster
