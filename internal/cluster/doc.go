// Package cluster implements REPOSE's distributed in-memory engine
// (Section V-C). The paper runs on Spark: a custom Partitioner
// spreads trajectories, mapPartitions builds one local index per
// partition (the RpTraj pairing of data and index), queries broadcast
// to all partitions, and the master merges local top-k results.
//
// This package reproduces that dataflow with two interchangeable
// transports behind one Engine interface: an in-process engine that
// runs partitions on goroutines (Local), and a multi-process engine
// that ships partitions to worker processes over net/rpc + gob
// (Remote) for multi-node simulation on one machine. Every query
// method takes a context — deadlines and cancellations stop partition
// scans mid-flight on either transport; the wire protocol (v2)
// carries per-query ids and deadlines so the driver can abort
// straggler workers remotely.
package cluster
