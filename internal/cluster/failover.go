package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/rpc"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Replication and failover, driver side.
//
// Placement puts each partition's Replicas copies on distinct workers
// (round-robin: replica j of partition p lives on worker (p+j) mod W),
// so losing one worker leaves every partition with a live copy. The
// scatter path assigns each queried partition to one in-sync replica,
// retries a partition on its next replica when a worker fails a call
// at the transport level, and can hedge a slow call with a second
// attempt on another replica. Per-worker health is a consecutive-
// failure circuit breaker: a tripped worker stops receiving traffic
// and a background prober pings it until it answers again, then
// re-syncs any partition state it missed (Worker.Restore streaming an
// rptrie snapshot from an in-sync peer) before closing the circuit.
//
// Consistency across replicas is generation-based: the driver is the
// only writer, fans every mutation out to all in-sync replicas of the
// touched partition, and records each replica's acknowledged
// generation (repGen) next to the partition's authoritative one
// (curGen, the newest acknowledged by anyone). A replica serves reads
// only while repGen >= curGen, so a replica that missed a mutation —
// worker down, call timed out, outcome unknown — is silently excluded
// from reads until the prober restores it from a peer. Because the
// restored image carries the donor's generation, replicas re-align
// exactly, and the facade's read-your-writes pins (QueryOptions.
// MinGens) hold across failover: any replica eligible for reads has
// acknowledged at least every generation this driver ever pinned.

// ErrUnavailable reports a partition none of whose replicas can
// currently serve: every replica's worker is down, circuit-broken, or
// holds stale state awaiting restore. Match with errors.Is.
var ErrUnavailable = errors.New("cluster: no live in-sync replica for partition")

// genAbsent marks a replica whose partition state the driver cannot
// vouch for: a worker that restarted empty, or one whose mutation
// call failed with the outcome unknown while no peer acknowledged.
// Such replicas never serve reads; the prober's Status reconcile
// and restore passes resolve what they actually hold.
const genAbsent = ^uint64(0)

// FailoverConfig tunes the Remote's failure handling. The zero value
// of any field selects its default.
type FailoverConfig struct {
	// FailThreshold is the number of consecutive transport-level
	// failures that trips a worker's circuit breaker (default 2).
	FailThreshold int
	// ProbeInterval is the background health-probe cadence: how often
	// tripped workers are pinged and stale replicas re-synced
	// (default 500ms).
	ProbeInterval time.Duration
	// CallTimeout bounds one query attempt against one worker; past
	// it the attempt fails over to the next replica even though the
	// connection is still open (a black-holed worker produces no
	// transport error). Size it for the slowest legitimate call (a
	// whole SearchBatch rides one attempt). 0 selects the default —
	// 10s with replication, unbounded without (there is nowhere to
	// fail over to); any negative value disables the bound
	// explicitly, leaving only the query context.
	CallTimeout time.Duration
	// HedgeAfter, when positive, launches a hedged second attempt on
	// another replica once a worker's answer is this late; whichever
	// attempt answers first wins and the other is discarded. Only
	// meaningful with replication. Default off.
	HedgeAfter time.Duration
}

// withDefaults resolves zero fields against the deployment shape.
func (fc FailoverConfig) withDefaults(replicas int) FailoverConfig {
	if fc.FailThreshold <= 0 {
		fc.FailThreshold = 2
	}
	if fc.ProbeInterval <= 0 {
		fc.ProbeInterval = 500 * time.Millisecond
	}
	if fc.CallTimeout < 0 {
		fc.CallTimeout = 0 // explicit opt-out
	} else if fc.CallTimeout == 0 && replicas > 1 {
		fc.CallTimeout = 10 * time.Second
	}
	return fc
}

// SetFailover replaces the failover configuration (zero fields take
// their defaults). Safe to call while queries are in flight; the
// prober picks the new cadence up on its next cycle.
func (r *Remote) SetFailover(fc FailoverConfig) {
	fc = fc.withDefaults(r.replicas)
	r.foMu.Lock()
	r.fo = fc
	r.foMu.Unlock()
}

func (r *Remote) failover() FailoverConfig {
	r.foMu.Lock()
	defer r.foMu.Unlock()
	return r.fo
}

// workerSlot is the driver's view of one worker process: its address,
// the current connection (replaced by the prober after a reconnect),
// and the circuit-breaker state.
type workerSlot struct {
	addr   string
	mu     sync.Mutex
	client *rpc.Client // nil while disconnected
	fails  int         // consecutive transport failures
	down   atomic.Bool
}

// get returns the current connection, nil while disconnected.
func (s *workerSlot) get() *rpc.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.client
}

// setClient installs a fresh connection, closing any previous one.
func (s *workerSlot) setClient(c *rpc.Client) {
	s.mu.Lock()
	old := s.client
	s.client = c
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// drop closes and clears the connection if c is still the current one
// (a concurrent reconnect must not be clobbered).
func (s *workerSlot) drop(c *rpc.Client) {
	s.mu.Lock()
	if s.client == c {
		s.client = nil
	}
	s.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// noteSuccess closes the failure streak.
func (s *workerSlot) noteSuccess() {
	s.mu.Lock()
	s.fails = 0
	s.mu.Unlock()
}

// noteFailure records one transport failure; at threshold (or on a
// connection-fatal error) the circuit opens and the connection is
// dropped so the prober redials.
func (s *workerSlot) noteFailure(threshold int, fatal bool) {
	s.mu.Lock()
	s.fails++
	tripped := fatal || s.fails >= threshold
	var old *rpc.Client
	if tripped {
		s.down.Store(true)
		old = s.client
		s.client = nil
	}
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// markUp closes the circuit after a successful probe + state re-sync.
func (s *workerSlot) markUp() {
	s.mu.Lock()
	s.fails = 0
	s.mu.Unlock()
	s.down.Store(false)
}

// WorkerHealth is one worker's externally visible health snapshot.
type WorkerHealth struct {
	Addr string
	// Down reports an open circuit: the worker receives no traffic
	// until a background probe succeeds.
	Down bool
	// StaleParts counts partition replicas on this worker that missed
	// mutations and await restore; they are excluded from reads.
	StaleParts int
	// Load is the cumulative scan time attributed to this worker: the
	// summed hotness of every partition whose first eligible replica
	// (the one the scatter planner picks) lives here. The rebalancer
	// compares these to find donor and receiver.
	Load time.Duration
}

// Health snapshots every worker's availability, for operators and
// tests that must wait for the cluster to heal.
func (r *Remote) Health() []WorkerHealth {
	out := make([]WorkerHealth, len(r.slots))
	for i, s := range r.slots {
		out[i] = WorkerHealth{Addr: s.addr, Down: s.down.Load()}
	}
	r.genMu.Lock()
	for pid, owners := range r.owners {
		for j, si := range owners {
			if r.repGen[pid][j] == genAbsent || r.repGen[pid][j] < r.curGen[pid] {
				out[si].StaleParts++
			}
		}
	}
	r.genMu.Unlock()
	for si, load := range r.slotLoads() {
		out[si].Load = load
	}
	return out
}

// slotLoads attributes each partition's cumulative scan time to the
// slot the scatter planner would currently pick for it (the first
// eligible replica), yielding per-worker load totals. Partitions with
// no eligible replica are attributed to nobody.
func (r *Remote) slotLoads() []time.Duration {
	hot := r.loads.hotness()
	out := make([]time.Duration, len(r.slots))
	r.genMu.Lock()
	defer r.genMu.Unlock()
	for pid := range r.owners {
		if pid >= len(hot) {
			break
		}
		for j, si := range r.owners[pid] {
			if r.eligibleLocked(pid, j) {
				out[si] += hot[pid]
				break
			}
		}
	}
	return out
}

// eligibleLocked reports whether replica j of pid can serve reads:
// circuit closed, connected, and in sync with the authoritative
// generation. Callers hold genMu.
func (r *Remote) eligibleLocked(pid, j int) bool {
	s := r.slots[r.owners[pid][j]]
	if s.down.Load() {
		return false
	}
	g := r.repGen[pid][j]
	return g != genAbsent && g >= r.curGen[pid]
}

// plan assigns every partition in pids to the first eligible replica
// not yet excluded for it, grouped per worker slot (ascending pids per
// group). A partition with no assignable replica fails the plan with
// ErrUnavailable.
func (r *Remote) plan(pids []int, excluded map[int]map[int]bool) (map[int][]int, error) {
	r.genMu.Lock()
	defer r.genMu.Unlock()
	groups := make(map[int][]int)
	for _, pid := range pids {
		assigned := -1
		for j, si := range r.owners[pid] {
			if excluded[pid][si] || !r.eligibleLocked(pid, j) {
				continue
			}
			assigned = si
			break
		}
		if assigned < 0 {
			return nil, fmt.Errorf("%w %d", ErrUnavailable, pid)
		}
		groups[assigned] = append(groups[assigned], pid)
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups, nil
}

// exclude records that slot si must not be retried for pid.
func exclude(excluded map[int]map[int]bool, pid, si int) {
	m := excluded[pid]
	if m == nil {
		m = make(map[int]bool, 2)
		excluded[pid] = m
	}
	m[si] = true
}

// isServerError reports an application-level error returned by a live
// worker (net/rpc wraps those as rpc.ServerError). Such errors are
// surfaced, not failed over: every replica would answer the same.
func isServerError(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se)
}

// notOwnerMsg is the worker-side diagnostic for a request naming a
// partition the worker does not hold. It crosses the wire as an
// opaque rpc.ServerError string, so the driver matches the message.
const notOwnerMsg = "does not own partition"

// notOwnedPartition extracts the partition id from a worker's
// not-owner rejection, -1 when the error is anything else.
func notOwnedPartition(err error) int {
	if err == nil {
		return -1
	}
	msg := err.Error()
	i := strings.Index(msg, notOwnerMsg)
	if i < 0 {
		return -1
	}
	pid := -1
	if _, serr := fmt.Sscanf(msg[i+len(notOwnerMsg):], " %d", &pid); serr != nil {
		return -1
	}
	return pid
}

// connFatal reports an error that proves the connection itself is
// dead, warranting an immediate circuit trip rather than a counted
// strike.
func connFatal(err error) bool {
	return errors.Is(err, rpc.ErrShutdown)
}

// probeCall performs one synchronous prober RPC bounded by timeout and
// the prober's stop channel, so a black-holed worker can never wedge
// the probe loop or Close.
func (r *Remote) probeCall(c *rpc.Client, method string, args, reply any, timeout time.Duration) error {
	call := c.Go(method, args, reply, make(chan *rpc.Call, 1))
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-call.Done:
		return call.Error
	case <-t.C:
		return fmt.Errorf("cluster: probe %s on timed-out connection", method)
	case <-r.probeStop:
		return errors.New("cluster: prober stopping")
	}
}

// probeTimeout bounds cheap prober RPCs (ping, status).
const probeTimeout = 2 * time.Second

// restoreTimeout bounds one snapshot+restore stream; partition images
// are shipped whole, so give them more room than a ping — but still a
// bound: the prober is single-threaded, and one silently black-holed
// connection must not stall every other slot's recovery for long.
const restoreTimeout = 10 * time.Second

// probeLoop runs in the background for the Remote's lifetime, redialing
// and re-syncing tripped workers and restoring stale replicas.
func (r *Remote) probeLoop() {
	defer r.probeWG.Done()
	for {
		interval := r.failover().ProbeInterval
		select {
		case <-r.probeStop:
			return
		case <-time.After(interval):
		}
		for si := range r.slots {
			if r.slots[si].down.Load() {
				r.reviveSlot(si)
			}
		}
		r.reconcileOrphans()
		r.syncStale()
	}
}

// reconcileOrphans re-establishes an authoritative generation for
// partitions left with no eligible replica — the aftermath of a
// mutation whose outcome was unknown on *every* replica (all calls
// timed out or were cancelled, none acknowledged): the workers may
// have applied it or not, so mutateReplicas marks every targeted
// replica unknown and this pass asks the live workers what they
// actually hold. The highest generation at or above the authoritative
// one becomes authoritative (generations only move forward — a pinned
// read must never be silently satisfiable by older state), replicas
// behind it turn stale, and syncStale re-aligns them from the winner.
func (r *Remote) reconcileOrphans() {
	r.genMu.Lock()
	askSlots := make(map[int]bool)
	var orphans []int
	for pid := range r.owners {
		eligible := false
		for j := range r.owners[pid] {
			if r.eligibleLocked(pid, j) {
				eligible = true
				break
			}
		}
		if !eligible {
			orphans = append(orphans, pid)
			for _, si := range r.owners[pid] {
				if !r.slots[si].down.Load() {
					askSlots[si] = true
				}
			}
		}
	}
	r.genMu.Unlock()
	if len(orphans) == 0 {
		return
	}
	statuses := make(map[int]*StatusReply, len(askSlots))
	for si := range askSlots {
		c := r.slots[si].get()
		if c == nil {
			r.slots[si].noteFailure(1, true) // zombie: force a revive
			continue
		}
		var st StatusReply
		if err := r.probeCall(c, "Worker.Status", &StatusArgs{Version: ProtocolVersion}, &st, probeTimeout); err != nil {
			r.slots[si].noteFailure(1, true)
			continue
		}
		statuses[si] = &st
	}
	r.genMu.Lock()
	for _, pid := range orphans {
		maxGen, found := uint64(0), false
		for _, si := range r.owners[pid] {
			if st, ok := statuses[si]; ok {
				if g, held := st.Gens[pid]; held && (!found || g > maxGen) {
					maxGen, found = g, true
				}
			}
		}
		if !found || maxGen < r.curGen[pid] {
			// No live replica holds state at the authoritative
			// generation; stay unavailable rather than regress.
			continue
		}
		r.curGen[pid] = maxGen
		for j, si := range r.owners[pid] {
			st, ok := statuses[si]
			if !ok {
				continue
			}
			if g, held := st.Gens[pid]; held {
				r.repGen[pid][j] = g
				if g == maxGen {
					if n, ok := st.Lens[pid]; ok {
						r.partLen[pid].Store(int64(n))
					}
				}
			} else {
				r.repGen[pid][j] = genAbsent
			}
		}
	}
	r.genMu.Unlock()
}

// reviveSlot tries to bring one tripped worker back: reconnect, verify
// the protocol, reconcile which partitions it still holds at the
// authoritative generation, and close the circuit. Partitions it lost
// or holds stale stay excluded from reads until syncStale restores
// them.
func (r *Remote) reviveSlot(si int) {
	s := r.slots[si]
	c := s.get()
	if c == nil {
		nc, err := rpc.Dial("tcp", s.addr)
		if err != nil {
			return
		}
		var hr HandshakeReply
		if err := r.probeCall(nc, "Worker.Handshake", &HandshakeArgs{Version: ProtocolVersion}, &hr, probeTimeout); err != nil {
			nc.Close()
			return
		}
		s.setClient(nc)
		c = nc
	} else {
		var ok bool
		if err := r.probeCall(c, "Worker.Ping", &struct{}{}, &ok, probeTimeout); err != nil {
			s.drop(c) // redial on the next cycle
			return
		}
	}
	var st StatusReply
	if err := r.probeCall(c, "Worker.Status", &StatusArgs{Version: ProtocolVersion}, &st, probeTimeout); err != nil {
		s.drop(c)
		return
	}
	r.genMu.Lock()
	for pid, owners := range r.owners {
		for j, owner := range owners {
			if owner != si {
				continue
			}
			if gen, ok := st.Gens[pid]; ok && gen >= r.curGen[pid] {
				if gen > r.curGen[pid] {
					// The revived replica is *ahead* of the authoritative
					// generation: it applied a mutation whose ack was
					// lost while reconcile re-anchored the partition at
					// an older generation from its peers. Its state is
					// the only copy reflecting that acknowledged-nowhere
					// write, so adopt its generation as authoritative —
					// generations only move forward — which turns the
					// peers stale and makes syncStale re-align them from
					// this replica. Keeping curGen put instead would let
					// diverged replicas serve reads side by side.
					r.curGen[pid] = gen
				}
				r.repGen[pid][j] = gen
				if n, ok := st.Lens[pid]; ok {
					r.partLen[pid].Store(int64(n))
				}
			} else if !ok {
				r.repGen[pid][j] = genAbsent
			} else {
				r.repGen[pid][j] = gen // stale: syncStale restores it
			}
		}
	}
	r.genMu.Unlock()
	s.markUp()
}

// syncStale restores every out-of-sync replica on a live worker from
// an in-sync peer: snapshot the donor's partition (delta folded, at
// the donor's generation) and stream it into the recovering worker.
// One pass is best-effort; anything that fails stays stale and is
// retried next cycle.
func (r *Remote) syncStale() {
	type job struct{ pid, j, donorSlot, targetSlot int }
	var jobs []job
	r.genMu.Lock()
	for pid, owners := range r.owners {
		for j, si := range owners {
			if r.slots[si].down.Load() {
				continue
			}
			if g := r.repGen[pid][j]; g != genAbsent && g >= r.curGen[pid] {
				continue
			}
			donor := -1
			for dj := range owners {
				if dj != j && r.eligibleLocked(pid, dj) {
					donor = owners[dj]
					break
				}
			}
			if donor >= 0 {
				jobs = append(jobs, job{pid: pid, j: j, donorSlot: donor, targetSlot: si})
			}
		}
	}
	r.genMu.Unlock()
	for _, jb := range jobs {
		r.restoreReplica(jb.pid, jb.j, jb.donorSlot, jb.targetSlot)
	}
}

// restoreReplica streams one partition from donor to target. A failed
// or timed-out transfer drops the offending connection — the worker
// may be silently black-holed, and a fresh dial on the next probe
// cycle is the only way to make progress — and leaves the replica
// stale for the next cycle to retry.
func (r *Remote) restoreReplica(pid, j, donorSlot, targetSlot int) {
	donor := r.slots[donorSlot].get()
	target := r.slots[targetSlot].get()
	if donor == nil || target == nil {
		return
	}
	var snap SnapshotReply
	if err := r.probeCall(donor, "Worker.Snapshot", &SnapshotArgs{Version: ProtocolVersion, PartitionID: pid}, &snap, restoreTimeout); err != nil {
		if !isServerError(err) {
			// The connection is suspect (possibly black-holed): trip
			// the circuit, not just the connection — a cleared client
			// on a closed circuit would never be redialed, leaving the
			// replica stale forever.
			r.slots[donorSlot].noteFailure(1, true)
		}
		return
	}
	var rr RestoreReply
	args := &RestoreArgs{Version: ProtocolVersion, PartitionID: pid, Layout: snap.Layout, Data: snap.Data}
	if err := r.probeCall(target, "Worker.Restore", args, &rr, restoreTimeout); err != nil {
		if !isServerError(err) {
			r.slots[targetSlot].noteFailure(1, true)
		}
		return
	}
	r.genMu.Lock()
	// Re-verify the slot assignment: a concurrent migration may have
	// flipped owners[pid][j] to another worker while this transfer was
	// in flight, and the streamed generation describes targetSlot, not
	// whoever owns the replica now.
	if r.owners[pid][j] == targetSlot {
		r.repGen[pid][j] = rr.Gen
	}
	r.genMu.Unlock()
}

// callSpec describes one query RPC kind for the replicated scatter.
type callSpec struct {
	method   string
	makeArgs func(h QueryHeader, pids []int) any
	newReply func() any
}

// partReply is one worker's successful answer covering pids.
type partReply struct {
	pids  []int
	reply any
}

// fireResult is one group call's outcome.
type fireResult struct {
	slot    int
	pids    []int
	err     error
	replies []partReply
	// hedged reports that the replies came from a hedge on other
	// replicas, not from this slot — health accounting must not credit
	// the slow worker with the backup's answer.
	hedged bool
}

// scatter answers one query over the selected partitions with replica
// failover: plan an assignment, fire the per-worker calls in parallel,
// and re-plan any partitions whose worker failed at the transport
// level onto their next replicas, until every partition answered or a
// partition runs out of replicas. Replies cover disjoint partition
// sets, so no result is ever double-counted.
func (r *Remote) scatter(ctx context.Context, sel []int, minGens []uint64, cs callSpec) ([]partReply, error) {
	if r.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		// Already cancelled: skip serializing and shipping payloads.
		return nil, fmt.Errorf("cluster: %s: %w", cs.method, err)
	}
	excluded := make(map[int]map[int]bool)
	remaining := sel
	var out []partReply
	var lastErr error
	for len(remaining) > 0 {
		groups, err := r.plan(remaining, excluded)
		if err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last replica failure: %v)", err, lastErr)
			}
			return nil, err
		}
		results := r.fire(ctx, groups, excluded, minGens, cs, true)
		remaining = remaining[:0:0]
		for _, res := range results {
			switch {
			case res.err == nil:
				if res.hedged {
					// The backup answered, not this worker: count a
					// strike instead of resetting its streak, so a
					// permanently silent worker eventually trips its
					// breaker, gets probed, and is healed or
					// quarantined rather than slowing every query by
					// HedgeAfter forever.
					r.slots[res.slot].noteFailure(r.failover().FailThreshold, false)
				} else {
					r.slots[res.slot].noteSuccess()
				}
				out = append(out, res.replies...)
			case ctx.Err() != nil:
				// The query's own context ended; surface that (the
				// abandoned-call diagnostic already wraps it, other
				// failures get it attached so errors.Is always works).
				if errors.Is(res.err, ctx.Err()) {
					return nil, res.err
				}
				return nil, fmt.Errorf("cluster: %s on %s: %v (%w)", cs.method, r.slots[res.slot].addr, res.err, ctx.Err())
			case isServerError(res.err):
				if pid := notOwnedPartition(res.err); pid >= 0 {
					// The worker is healthy but no longer holds pid: the
					// plan raced an ownership change (a migration's Drop
					// or a split's prune landed between planning and the
					// call). Not a strike — retry every partition of the
					// group on the current owners, excluding only the
					// rejected partition on this worker; the re-plan
					// reads the post-flip owner table, so the query
					// completes with zero failed partitions.
					lastErr = fmt.Errorf("cluster: %s on %s: %w", cs.method, r.slots[res.slot].addr, res.err)
					exclude(excluded, pid, res.slot)
					remaining = append(remaining, res.pids...)
					continue
				}
				// The worker answered: an application-level error every
				// replica would repeat. Surface it.
				return nil, fmt.Errorf("cluster: %s on %s: %w", cs.method, r.slots[res.slot].addr, res.err)
			default:
				if r.closed.Load() {
					// Close raced the query: its severed connections
					// are not worker failures. Fail fast as
					// documented, without tripping live workers'
					// breakers.
					return nil, ErrClosed
				}
				lastErr = fmt.Errorf("cluster: %s on %s: %w", cs.method, r.slots[res.slot].addr, res.err)
				r.slots[res.slot].noteFailure(r.failover().FailThreshold, connFatal(res.err))
				for _, pid := range res.pids {
					exclude(excluded, pid, res.slot)
				}
				remaining = append(remaining, res.pids...)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", cs.method, err)
	}
	return out, nil
}

// fire runs one round of group calls concurrently. A hedge goroutine
// can outlive its round (the original call may win while the hedge is
// still in flight), so hedges never touch the caller's live excluded
// map: when hedging is possible, the round snapshots it once, up
// front, synchronously — strictly before scatter's between-round
// mutations can happen.
func (r *Remote) fire(ctx context.Context, groups map[int][]int, excluded map[int]map[int]bool, minGens []uint64, cs callSpec, allowHedge bool) []fireResult {
	var snapshot map[int]map[int]bool
	if allowHedge && r.failover().HedgeAfter > 0 {
		snapshot = make(map[int]map[int]bool, len(excluded))
		for pid, m := range excluded {
			c := make(map[int]bool, len(m))
			for k, v := range m {
				c[k] = v
			}
			snapshot[pid] = c
		}
	}
	results := make([]fireResult, 0, len(groups))
	resCh := make(chan fireResult, len(groups))
	for si, pids := range groups {
		go func(si int, pids []int) {
			var hedge func() ([]partReply, error)
			if snapshot != nil {
				hedge = func() ([]partReply, error) {
					return r.hedgeAttempt(ctx, si, pids, snapshot, minGens, cs)
				}
			}
			replies, hedged, err := r.callGroup(ctx, si, pids, minGens, cs, hedge)
			resCh <- fireResult{slot: si, pids: pids, err: err, replies: replies, hedged: hedged}
		}(si, pids)
	}
	for range groups {
		results = append(results, <-resCh)
	}
	return results
}

// hedgeAttempt answers pids on replicas other than the slow slot si,
// without further hedging or retries: one alternative plan, one
// round. snapshot is this round's private copy of the exclusion
// state; it is never shared with scatter's live map.
func (r *Remote) hedgeAttempt(ctx context.Context, si int, pids []int, snapshot map[int]map[int]bool, minGens []uint64, cs callSpec) ([]partReply, error) {
	hx := make(map[int]map[int]bool, len(snapshot)+len(pids))
	for pid, m := range snapshot {
		hx[pid] = m
	}
	for _, pid := range pids {
		m := make(map[int]bool, len(hx[pid])+1)
		for k, v := range hx[pid] {
			m[k] = v
		}
		m[si] = true
		hx[pid] = m
	}
	groups, err := r.plan(pids, hx)
	if err != nil {
		return nil, err
	}
	var out []partReply
	for _, res := range r.fire(ctx, groups, hx, minGens, cs, false) {
		if res.err != nil {
			return nil, res.err
		}
		out = append(out, res.replies...)
	}
	return out, nil
}

// callGroup performs one query RPC against one worker for its assigned
// partitions, honoring the per-attempt timeout, the query context
// (with the cancel-grace protocol), and an optional hedge.
func (r *Remote) callGroup(ctx context.Context, si int, pids []int, minGens []uint64, cs callSpec, hedge func() ([]partReply, error)) (replies []partReply, hedged bool, err error) {
	s := r.slots[si]
	c := s.get()
	if c == nil {
		return nil, false, fmt.Errorf("cluster: %w", rpc.ErrShutdown)
	}
	fo := r.failover()
	h := r.header(ctx, pids, minGens)
	reply := cs.newReply()
	call := c.Go(cs.method, cs.makeArgs(h, pids), reply, make(chan *rpc.Call, 1))

	var timeoutC <-chan time.Time
	if fo.CallTimeout > 0 {
		t := time.NewTimer(fo.CallTimeout)
		defer t.Stop()
		timeoutC = t.C
	}
	var hedgeC <-chan time.Time
	if hedge != nil && fo.HedgeAfter > 0 {
		t := time.NewTimer(fo.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	type hedgeResult struct {
		replies []partReply
		err     error
	}
	var hedgeDone chan hedgeResult
	for {
		select {
		case <-call.Done:
			if call.Error != nil {
				return nil, false, call.Error
			}
			return []partReply{{pids: pids, reply: reply}}, false, nil
		case <-hedgeC:
			hedgeC = nil
			ch := make(chan hedgeResult, 1)
			hedgeDone = ch
			go func() {
				replies, err := hedge()
				ch <- hedgeResult{replies: replies, err: err}
			}()
		case hr := <-hedgeDone:
			hedgeDone = nil
			if hr.err == nil {
				// The backup replica answered first; abandon the slow
				// original (net/rpc delivers its eventual reply into
				// the call's buffered channel — nothing leaks).
				return hr.replies, true, nil
			}
			// Hedge failed; keep waiting for the original.
		case <-timeoutC:
			c.Go("Worker.Cancel", &CancelArgs{ID: h.ID}, &struct{}{}, make(chan *rpc.Call, 1))
			return nil, false, fmt.Errorf("cluster: attempt timed out after %v", fo.CallTimeout)
		case <-ctx.Done():
			// Fire a best-effort cancel and await the reply briefly — a
			// live worker aborts promptly through its own context —
			// then abandon, so a hung worker cannot block the driver
			// past its deadline.
			c.Go("Worker.Cancel", &CancelArgs{ID: h.ID}, &struct{}{}, make(chan *rpc.Call, 1))
			select {
			case <-call.Done:
				if call.Error != nil {
					return nil, false, call.Error
				}
				return []partReply{{pids: pids, reply: reply}}, false, nil
			case <-time.After(cancelGrace):
				return nil, false, fmt.Errorf("cluster: %s on %s abandoned after cancel: %w", cs.method, s.addr, ctx.Err())
			}
		}
	}
}

// mutateReplicas applies one mutation RPC to every in-sync replica of
// pid, advancing the authoritative generation on the first
// acknowledgement. A replica that fails at the transport level is
// struck and left behind (its repGen no longer matches curGen, so it
// stops serving reads until the prober restores it); the mutation
// itself succeeds as long as one replica acknowledges. newArgs must
// return a fresh args value per replica (net/rpc encodes concurrently)
// and ack extracts (generation, live length) from a reply.
//
// The shared rebalMu hold excludes rebalancing for the duration: a
// migration must not flip a partition's owners while a mutation is
// mid-flight to the old owner set, or the donor's generation could
// advance past the snapshot the receiver restored. Mutations on
// different partitions still run concurrently (RLock is shared).
func (r *Remote) mutateReplicas(ctx context.Context, pid int, method string, newArgs func() any, newReply func() any, ack func(reply any) (uint64, int)) (uint64, error) {
	r.rebalMu.RLock()
	defer r.rebalMu.RUnlock()
	return r.mutateReplicasLocked(ctx, pid, method, newArgs, newReply, ack)
}

// mutateReplicasLocked is mutateReplicas for callers that already hold
// rebalMu (shared or exclusive) — the split path prunes moved ids
// while holding it exclusively.
func (r *Remote) mutateReplicasLocked(ctx context.Context, pid int, method string, newArgs func() any, newReply func() any, ack func(reply any) (uint64, int)) (uint64, error) {
	if r.closed.Load() {
		return 0, ErrClosed
	}
	r.genMu.Lock()
	var targets []int // replica indices within owners[pid]
	for j := range r.owners[pid] {
		if r.eligibleLocked(pid, j) {
			targets = append(targets, j)
		}
	}
	r.genMu.Unlock()
	if len(targets) == 0 {
		return 0, fmt.Errorf("%w %d", ErrUnavailable, pid)
	}
	fo := r.failover()
	type res struct {
		j     int
		reply any
		err   error
	}
	resCh := make(chan res, len(targets))
	for _, j := range targets {
		go func(j int) {
			si := r.owners[pid][j]
			c := r.slots[si].get()
			if c == nil {
				resCh <- res{j: j, err: fmt.Errorf("cluster: %w", rpc.ErrShutdown)}
				return
			}
			reply := newReply()
			call := c.Go(method, newArgs(), reply, make(chan *rpc.Call, 1))
			var timeoutC <-chan time.Time
			if fo.CallTimeout > 0 {
				t := time.NewTimer(fo.CallTimeout)
				defer t.Stop()
				timeoutC = t.C
			}
			select {
			case <-call.Done:
				resCh <- res{j: j, reply: reply, err: call.Error}
			case <-timeoutC:
				resCh <- res{j: j, err: fmt.Errorf("cluster: %s timed out after %v", method, fo.CallTimeout)}
			case <-ctx.Done():
				resCh <- res{j: j, err: fmt.Errorf("cluster: %s on %s: %w", method, r.slots[si].addr, ctx.Err())}
			}
		}(j)
	}
	acked := uint64(0)
	ackedAny := false
	var appErr, transErr error
	var unknown []int // replica indices whose outcome is unknown
	for range targets {
		re := <-resCh
		si := r.owners[pid][re.j]
		switch {
		case re.err == nil:
			r.slots[si].noteSuccess()
			gen, n := ack(re.reply)
			r.genMu.Lock()
			r.repGen[pid][re.j] = gen
			if gen > r.curGen[pid] {
				r.curGen[pid] = gen
			}
			r.genMu.Unlock()
			r.partLen[pid].Store(int64(n))
			if !ackedAny || gen > acked {
				acked = gen
			}
			ackedAny = true
		case isServerError(re.err):
			// A live worker rejected the mutation (duplicate id,
			// immutable index, …): an application error, identical on
			// every replica. Remember it; do not strike the worker.
			if appErr == nil {
				appErr = fmt.Errorf("cluster: %s on %s: %w", method, r.slots[si].addr, re.err)
			}
		default:
			// Transport failure or timeout: outcome unknown on that
			// replica. Strike it (unless the caller's own context was
			// cancelled or the engine was closed — neither says
			// anything about the worker); it stops serving reads once
			// curGen advances and the prober restores it later.
			if !r.closed.Load() && (ctx.Err() == nil || !errors.Is(re.err, ctx.Err())) {
				r.slots[si].noteFailure(fo.FailThreshold, connFatal(re.err))
			}
			unknown = append(unknown, re.j)
			if transErr == nil {
				transErr = fmt.Errorf("cluster: %s on %s: %w", method, r.slots[si].addr, re.err)
			}
		}
	}
	if !ackedAny {
		if r.closed.Load() {
			return 0, ErrClosed
		}
		if len(unknown) > 0 {
			// Nothing acknowledged, yet a transport-failed replica may
			// still have applied the mutation: with curGen unmoved it
			// would keep serving reads, silently diverged from its
			// peers. Mark every unknown-outcome replica as holding
			// unknown state; the prober's reconcile pass asks the live
			// workers what they actually hold and re-establishes the
			// authoritative generation.
			r.genMu.Lock()
			for _, j := range unknown {
				r.repGen[pid][j] = genAbsent
			}
			r.genMu.Unlock()
		}
		if appErr != nil {
			return 0, appErr
		}
		return 0, transErr
	}
	if appErr != nil {
		// An application-level rejection with another replica
		// acknowledging would mean diverged replicas — possible only
		// if the caller raced mutations, which the directory forbids.
		// Surface it loudly rather than hide a split brain.
		return acked, appErr
	}
	return acked, nil
}
