package chaos

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back until the
// listener closes.
func echoServer(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestProxyForwards(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	defer c.Close()
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	if p.Conns() != 1 {
		t.Errorf("Conns() = %d, want 1", p.Conns())
	}
}

func TestProxyRefuseAndRecover(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.Refuse(true)
	c := dialProxy(t, p) // accept+close: the read must fail fast
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on refused connection succeeded")
	}
	c.Close()

	p.Up()
	c2 := dialProxy(t, p)
	defer c2.Close()
	if _, err := c2.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c2, make([]byte, 1)); err != nil {
		t.Fatalf("recovered proxy did not forward: %v", err)
	}
}

func TestProxyCutAllSeversMidStream(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	p.CutAll()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read after CutAll succeeded")
	}
}

func TestProxyBlackholeSwallows(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(addr, Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.Blackhole(true)
	c := dialProxy(t, p)
	defer c.Close()
	// Writes succeed (the hole reads them) but nothing ever comes back.
	if _, err := c.Write([]byte("anybody home?")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if n, err := c.Read(make([]byte, 8)); err == nil {
		t.Fatalf("blackholed read returned %d bytes", n)
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		// A timeout proves silence; an EOF would mean the hole closed.
		t.Fatalf("blackholed read failed with %v, want timeout", err)
	}
}

func TestProxyScheduledCut(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	// PCut=1: every armed connection is severed after CutAfter
	// response bytes.
	p, err := New(addr, Schedule{Seed: 11, PCut: 1, CutAfter: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Arm(true)

	c := dialProxy(t, p)
	defer c.Close()
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, err := io.ReadAll(c)
	if err != nil && len(got) == 0 {
		t.Fatalf("read: %v", err)
	}
	if len(got) >= len(payload) {
		t.Fatalf("cut connection delivered all %d bytes", len(got))
	}
	if len(got) > 10 {
		t.Fatalf("cut after %d bytes, want ≤ 10", len(got))
	}
}

// TestScheduleDeterministic: the same seed produces the same fault
// decisions for the same connection indices — the reproducibility the
// differential harness prints seeds for.
func TestScheduleDeterministic(t *testing.T) {
	s := Schedule{Seed: 42, PDrop: 0.2, PCut: 0.2, PBlackhole: 0.2, PDelay: 0.2}
	for ci := 0; ci < 200; ci++ {
		a, b := s.decide(ci), s.decide(ci)
		if a != b {
			t.Fatalf("conn %d: decisions differ: %+v vs %+v", ci, a, b)
		}
	}
	// And a different seed must not produce an identical plan.
	s2 := s
	s2.Seed = 43
	same := true
	for ci := 0; ci < 200; ci++ {
		if s.decide(ci) != s2.decide(ci) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-connection plans")
	}
	// Disarmed/zero schedules inject nothing.
	var zero Schedule
	for ci := 0; ci < 50; ci++ {
		if f := zero.decide(ci); f.drop || f.blackhole || f.cutAfter >= 0 || f.delay != 0 {
			t.Fatalf("zero schedule injected %+v", f)
		}
	}
}

func TestFleet(t *testing.T) {
	addr1, stop1 := echoServer(t)
	defer stop1()
	addr2, stop2 := echoServer(t)
	defer stop2()
	f, err := NewFleet([]string{addr1, addr2}, Schedule{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if len(f.Addrs()) != 2 {
		t.Fatalf("fleet addrs: %v", f.Addrs())
	}
	if _, err := f.At(5); err == nil {
		t.Error("out-of-range At should fail")
	}
	p, err := f.At(0)
	if err != nil {
		t.Fatal(err)
	}
	c := dialProxy(t, p)
	defer c.Close()
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, make([]byte, 2)); err != nil {
		t.Fatal(err)
	}
}
