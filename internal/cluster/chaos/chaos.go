// Package chaos is a deterministic in-process TCP fault injector for
// the cluster's failover tests. A Proxy listens on loopback and
// forwards byte streams to a target worker; tests dial the proxy
// instead of the worker, so every failure mode the scatter layer must
// survive — a refused dial, a connection cut mid-stream, a black-holed
// worker that reads but never answers, a slow link — can be triggered
// on demand or replayed from a seeded schedule.
//
// Determinism: all scheduled fault decisions for a connection derive
// from rng(seed XOR connection-index), where the connection index is
// the proxy's accept order. A failing test that prints its seed
// replays the exact fault pattern; nothing in the proxy consults
// global randomness or wall-clock identity.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Schedule is a seeded per-connection fault plan. Probabilities are
// evaluated once per accepted connection, in the order listed; at most
// one scheduled fault applies per connection. A zero Schedule injects
// nothing.
type Schedule struct {
	// Seed drives every random choice. Two proxies with the same seed
	// and connection order inject identical faults.
	Seed int64
	// PDrop is the probability a new connection is accepted and
	// immediately closed (the "worker refuses" fault).
	PDrop float64
	// PCut is the probability a connection is severed mid-stream:
	// after CutAfter (default 64) response bytes have been forwarded,
	// both sides are torn down.
	PCut     float64
	CutAfter int
	// PBlackhole is the probability a connection swallows all traffic:
	// requests are read and discarded, no response bytes ever flow.
	PBlackhole float64
	// PDelay is the probability each forwarded chunk of a connection
	// is delayed by Delay (default 2ms).
	PDelay float64
	Delay  time.Duration
}

// connFault is a schedule's decision for one connection.
type connFault struct {
	drop      bool
	cutAfter  int // <0: never
	blackhole bool
	delay     time.Duration
}

// decide rolls the schedule for connection index ci.
func (s Schedule) decide(ci int) connFault {
	f := connFault{cutAfter: -1}
	if s.Seed == 0 && s.PDrop == 0 && s.PCut == 0 && s.PBlackhole == 0 && s.PDelay == 0 {
		return f
	}
	rng := rand.New(rand.NewSource(s.Seed ^ int64(uint64(ci)*0x9E3779B97F4A7C15)))
	switch roll := rng.Float64(); {
	case roll < s.PDrop:
		f.drop = true
	case roll < s.PDrop+s.PCut:
		f.cutAfter = s.CutAfter
		if f.cutAfter <= 0 {
			f.cutAfter = 64
		}
	case roll < s.PDrop+s.PCut+s.PBlackhole:
		f.blackhole = true
	case roll < s.PDrop+s.PCut+s.PBlackhole+s.PDelay:
		f.delay = s.Delay
		if f.delay <= 0 {
			f.delay = 2 * time.Millisecond
		}
	}
	return f
}

// Proxy forwards TCP streams from a loopback listener to a target
// address, injecting faults. All controls are safe for concurrent use
// and apply to new connections; CutAll and Down also sever live ones.
type Proxy struct {
	ln net.Listener

	mu       sync.Mutex
	target   string
	sched    Schedule
	armed    bool
	refuse   bool
	blackhol bool
	delay    time.Duration
	connSeq  int
	conns    map[*proxyConn]struct{}
	closed   bool

	wg sync.WaitGroup
}

// proxyConn is one live proxied connection pair. hole marks a
// connection accepted in blackhole mode: it has no server side and
// never will, so ending the blackhole severs it (a real worker would
// see such a connection as dead the moment it resumed).
type proxyConn struct {
	client, server net.Conn
	hole           bool
	once           sync.Once
}

func (pc *proxyConn) sever() {
	pc.once.Do(func() {
		pc.client.Close()
		if pc.server != nil {
			pc.server.Close()
		}
	})
}

// New starts a proxy for target on an ephemeral loopback port. The
// seeded schedule (if any) stays disarmed until Arm is called, so
// connection setup traffic (build, handshake) is never faulted unless
// the test wants it to be.
func New(target string, sched Schedule) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, sched: sched, conns: make(map[*proxyConn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address tests hand to the driver in place of the
// worker's.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget repoints the proxy at a new backend — how a test models a
// worker process replaced by a fresh one at the same (proxy) address.
// Live connections to the old target are severed.
func (p *Proxy) SetTarget(addr string) {
	p.mu.Lock()
	p.target = addr
	p.mu.Unlock()
	p.CutAll()
}

// Arm enables (or disables) the seeded schedule for subsequently
// accepted connections.
func (p *Proxy) Arm(on bool) {
	p.mu.Lock()
	p.armed = on
	p.mu.Unlock()
}

// Refuse makes the proxy close new connections immediately (the
// "worker dropped off the network" fault).
func (p *Proxy) Refuse(on bool) {
	p.mu.Lock()
	p.refuse = on
	p.mu.Unlock()
}

// Blackhole makes every connection (new and existing) swallow traffic:
// bytes are read and discarded, nothing is forwarded either way.
// Turning it off severs connections that were *accepted* as holes —
// they never had a backend side to resume.
func (p *Proxy) Blackhole(on bool) {
	p.mu.Lock()
	p.blackhol = on
	var holes []*proxyConn
	if !on {
		for pc := range p.conns {
			if pc.hole {
				holes = append(holes, pc)
			}
		}
	}
	p.mu.Unlock()
	for _, pc := range holes {
		pc.sever()
	}
}

// SetDelay delays every forwarded chunk on new connections by d.
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// CutAll severs every live proxied connection mid-stream.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.conns))
	for pc := range p.conns {
		conns = append(conns, pc)
	}
	p.mu.Unlock()
	for _, pc := range conns {
		pc.sever()
	}
}

// Down kills the worker from the driver's point of view: every live
// connection is severed and new ones are refused, exactly like a
// crashed process.
func (p *Proxy) Down() {
	p.Refuse(true)
	p.CutAll()
}

// Up undoes Down and Blackhole, restoring normal forwarding for new
// connections and severing leftover hole connections.
func (p *Proxy) Up() {
	p.Refuse(false)
	p.Blackhole(false)
}

// Close shuts the proxy down: stops accepting, severs everything, and
// waits for the forwarding goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.CutAll()
	p.wg.Wait()
	return err
}

// Conns returns how many proxied connections were ever accepted — the
// connection index space a seeded schedule draws from.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.connSeq
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		ci := p.connSeq
		p.connSeq++
		refuse, armed, closed := p.refuse, p.armed, p.closed
		target, delay, blackhole := p.target, p.delay, p.blackhol
		var fault connFault
		fault.cutAfter = -1
		if armed {
			fault = p.sched.decide(ci)
		}
		p.mu.Unlock()
		if closed || refuse || fault.drop {
			c.Close()
			continue
		}
		if fault.delay > delay {
			delay = fault.delay
		}
		blackhole = blackhole || fault.blackhole
		p.wg.Add(1)
		go p.serve(c, target, fault, delay, blackhole)
	}
}

// serve forwards one connection, applying its faults.
func (p *Proxy) serve(client net.Conn, target string, fault connFault, delay time.Duration, blackhole bool) {
	defer p.wg.Done()
	pc := &proxyConn{client: client}
	if blackhole {
		// Swallow the client's bytes so its writes keep succeeding —
		// from the driver's side the worker looks alive but silent.
		pc.hole = true
		p.track(pc)
		defer p.untrack(pc)
		io.Copy(io.Discard, client)
		pc.sever()
		return
	}
	server, err := net.DialTimeout("tcp", target, 2*time.Second)
	if err != nil {
		client.Close()
		return
	}
	pc.server = server
	p.track(pc)
	defer p.untrack(pc)
	defer pc.sever()

	done := make(chan struct{}, 2)
	// Request path: client → server, unfaulted (a cut triggers on the
	// response path so the worker demonstrably *received* the query
	// before dying — the "killed mid-query" shape).
	go func() {
		p.copyStream(server, client, delay, -1, pc)
		done <- struct{}{}
	}()
	// Response path: server → client, where cut budgets are enforced.
	go func() {
		p.copyStream(client, server, delay, fault.cutAfter, pc)
		done <- struct{}{}
	}()
	<-done
}

// copyStream forwards src→dst chunk by chunk, delaying each chunk and
// severing the pair once budget bytes (if non-negative) have flowed.
func (p *Proxy) copyStream(dst io.Writer, src io.Reader, delay time.Duration, budget int, pc *proxyConn) {
	buf := make([]byte, 16*1024)
	forwarded := 0
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if delay > 0 {
				time.Sleep(delay)
			}
			if p.swallowed() {
				// Blackhole flipped on mid-connection: stop forwarding
				// but keep draining so the sender does not error.
				continue
			}
			chunk := buf[:n]
			if budget >= 0 && forwarded+n >= budget {
				dst.Write(chunk[:budget-forwarded])
				pc.sever()
				return
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			forwarded += n
		}
		if err != nil {
			return
		}
	}
}

func (p *Proxy) swallowed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blackhol
}

func (p *Proxy) track(pc *proxyConn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pc.sever()
		return
	}
	p.conns[pc] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(pc *proxyConn) {
	p.mu.Lock()
	delete(p.conns, pc)
	p.mu.Unlock()
}

// Fleet wraps one proxy per worker address, for tests that place a
// whole cluster behind chaos.
type Fleet struct {
	Proxies []*Proxy
}

// NewFleet starts one proxy per target, all sharing the schedule
// (each proxy still draws independent per-connection decisions from
// its own accept order).
func NewFleet(targets []string, sched Schedule) (*Fleet, error) {
	f := &Fleet{}
	for i, t := range targets {
		s := sched
		if s.Seed != 0 {
			// Decorrelate the proxies: same workload, different draws.
			s.Seed = sched.Seed + int64(i)*1_000_003
		}
		p, err := New(t, s)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Proxies = append(f.Proxies, p)
	}
	return f, nil
}

// Addrs lists the proxy addresses in target order.
func (f *Fleet) Addrs() []string {
	out := make([]string, len(f.Proxies))
	for i, p := range f.Proxies {
		out[i] = p.Addr()
	}
	return out
}

// Arm arms or disarms every proxy's schedule.
func (f *Fleet) Arm(on bool) {
	for _, p := range f.Proxies {
		p.Arm(on)
	}
}

// Close shuts every proxy down.
func (f *Fleet) Close() error {
	var first error
	for _, p := range f.Proxies {
		if p == nil {
			continue
		}
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ErrNoProxy reports an out-of-range fleet index.
var ErrNoProxy = errors.New("chaos: no such proxy")

// At returns proxy i with a range check, so table-driven tests fail
// with a diagnostic instead of a panic.
func (f *Fleet) At(i int) (*Proxy, error) {
	if i < 0 || i >= len(f.Proxies) {
		return nil, fmt.Errorf("%w: %d of %d", ErrNoProxy, i, len(f.Proxies))
	}
	return f.Proxies[i], nil
}
