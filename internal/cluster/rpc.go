package cluster

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repose/internal/geo"
	"repose/internal/topk"
)

// The RPC transport simulates the paper's multi-node deployment on
// one machine: worker processes own partitions, the driver ships
// trajectories + an IndexSpec at build time and broadcasts queries,
// and each worker returns its merged local top-k. Everything is
// stdlib net/rpc with gob encoding.

// BuildArgs ships one partition to a worker.
type BuildArgs struct {
	PartitionID  int
	Spec         IndexSpec
	Trajectories []*geo.Trajectory
}

// BuildReply reports the built partition index.
type BuildReply struct {
	SizeBytes  int
	Len        int
	BuildNanos int64
}

// SearchArgs broadcasts a query; each worker searches every partition
// it owns.
type SearchArgs struct {
	Query []geo.Point
	K     int
}

// SearchReply carries a worker's merged local top-k and per-partition
// timings.
type SearchReply struct {
	Items      []topk.Item
	PartNanos  map[int]int64
	Partitions []int
}

// ClearArgs empties a worker between experiments.
type ClearArgs struct{}

// Worker is the RPC service hosted by a worker process.
type Worker struct {
	mu      sync.Mutex
	indexes map[int]LocalIndex
}

// NewWorker returns an empty worker service.
func NewWorker() *Worker {
	return &Worker{indexes: make(map[int]LocalIndex)}
}

// Build constructs the index for one partition.
func (w *Worker) Build(args *BuildArgs, reply *BuildReply) error {
	start := time.Now()
	idx, err := args.Spec.BuildLocal(args.Trajectories)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.indexes[args.PartitionID] = idx
	w.mu.Unlock()
	reply.SizeBytes = idx.SizeBytes()
	reply.Len = idx.Len()
	reply.BuildNanos = time.Since(start).Nanoseconds()
	return nil
}

// Search answers the query over all partitions this worker owns and
// merges them into one local top-k.
func (w *Worker) Search(args *SearchArgs, reply *SearchReply) error {
	w.mu.Lock()
	indexes := make(map[int]LocalIndex, len(w.indexes))
	for id, idx := range w.indexes {
		indexes[id] = idx
	}
	w.mu.Unlock()
	if len(indexes) == 0 {
		return errors.New("cluster: worker has no partitions")
	}
	reply.PartNanos = make(map[int]int64, len(indexes))
	var lists [][]topk.Item
	for id, idx := range indexes {
		t0 := time.Now()
		lists = append(lists, idx.Search(args.Query, args.K))
		reply.PartNanos[id] = time.Since(t0).Nanoseconds()
		reply.Partitions = append(reply.Partitions, id)
	}
	reply.Items = topk.Merge(args.K, lists...)
	return nil
}

// Clear drops all partitions.
func (w *Worker) Clear(_ *ClearArgs, _ *struct{}) error {
	w.mu.Lock()
	w.indexes = make(map[int]LocalIndex)
	w.mu.Unlock()
	return nil
}

// Ping checks liveness.
func (w *Worker) Ping(_ *struct{}, ok *bool) error {
	*ok = true
	return nil
}

// Serve accepts RPC connections on ln until the listener closes.
// It always returns a non-nil error (from Accept).
func Serve(ln net.Listener, w *Worker) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", w); err != nil {
		return err
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// Remote is the driver side of the multi-process engine.
type Remote struct {
	clients   []*rpc.Client
	addrs     []string
	owner     map[int]int // partition → client index
	buildTime time.Duration
	sizeBytes int
	count     int
}

// BuildRemote dials the worker addresses, deals partitions round-
// robin across them, and builds all partition indexes in parallel.
func BuildRemote(spec IndexSpec, parts [][]*geo.Trajectory, addrs []string) (*Remote, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no worker addresses")
	}
	r := &Remote{owner: make(map[int]int), addrs: addrs}
	for _, addr := range addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		r.clients = append(r.clients, c)
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(parts))
	replies := make([]BuildReply, len(parts))
	for pid, part := range parts {
		ci := pid % len(r.clients)
		r.owner[pid] = ci
		wg.Add(1)
		go func(pid, ci int, part []*geo.Trajectory) {
			defer wg.Done()
			args := &BuildArgs{PartitionID: pid, Spec: spec, Trajectories: part}
			errs[pid] = r.clients[ci].Call("Worker.Build", args, &replies[pid])
		}(pid, ci, part)
	}
	wg.Wait()
	for pid, err := range errs {
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: build partition %d: %w", pid, err)
		}
	}
	for _, rep := range replies {
		r.sizeBytes += rep.SizeBytes
		r.count += rep.Len
	}
	r.buildTime = time.Since(start)
	return r, nil
}

// Search broadcasts the query to all workers and merges their local
// top-k results.
func (r *Remote) Search(q []geo.Point, k int) ([]topk.Item, error) {
	items, _, err := r.SearchDetailed(q, k)
	return items, err
}

// SearchDetailed is Search plus a per-partition timing report.
func (r *Remote) SearchDetailed(q []geo.Point, k int) ([]topk.Item, QueryReport, error) {
	start := time.Now()
	args := &SearchArgs{Query: q, K: k}
	replies := make([]SearchReply, len(r.clients))
	errs := make([]error, len(r.clients))
	var wg sync.WaitGroup
	for i, c := range r.clients {
		wg.Add(1)
		go func(i int, c *rpc.Client) {
			defer wg.Done()
			errs[i] = c.Call("Worker.Search", args, &replies[i])
		}(i, c)
	}
	wg.Wait()
	var report QueryReport
	var lists [][]topk.Item
	for i, err := range errs {
		if err != nil {
			return nil, report, fmt.Errorf("cluster: search on %s: %w", r.addrs[i], err)
		}
		lists = append(lists, replies[i].Items)
		for _, nanos := range replies[i].PartNanos {
			d := time.Duration(nanos)
			report.PartitionTimes = append(report.PartitionTimes, d)
			report.SumPartition += d
			if d > report.MaxPartition {
				report.MaxPartition = d
			}
		}
	}
	report.Wall = time.Since(start)
	return topk.Merge(k, lists...), report, nil
}

// BuildTime returns the wall time of the distributed build.
func (r *Remote) BuildTime() time.Duration { return r.buildTime }

// Len returns the total number of indexed trajectories.
func (r *Remote) Len() int { return r.count }

// IndexSizeBytes sums the reported index footprints.
func (r *Remote) IndexSizeBytes() int { return r.sizeBytes }

// NumPartitions returns the partition count.
func (r *Remote) NumPartitions() int { return len(r.owner) }

// Close releases all client connections.
func (r *Remote) Close() {
	for _, c := range r.clients {
		if c != nil {
			c.Close()
		}
	}
	r.clients = nil
}
