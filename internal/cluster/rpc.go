package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repose/internal/geo"
	"repose/internal/rptrie"
	"repose/internal/storage"
	"repose/internal/topk"
)

// The RPC transport simulates the paper's multi-node deployment on
// one machine: worker processes own partitions, the driver ships
// trajectories + an IndexSpec at build time and broadcasts queries,
// and each worker returns its merged local top-k. Everything is
// stdlib net/rpc with gob encoding.
//
// Protocol v2 adds a version handshake, radius and batch search
// endpoints, and per-query cancellation: every query carries a
// salted unique ID plus an optional time budget, and the driver
// fires Worker.Cancel for in-flight IDs when its context is
// cancelled, so a straggler worker stops computing instead of
// burning cores on an answer nobody is waiting for.
//
// Protocol v3 adds online index maintenance: Insert/Delete/Compact
// endpoints targeting one partition (the driver routes; workers
// apply), and per-partition generation pins in the query header so a
// driver can demand read-your-writes snapshots.
//
// Protocol v4 adds replication and recovery: Worker.Status reports
// which partitions a worker holds at which generations (the driver's
// failure detector reconciles a rejoining worker against it),
// Worker.Snapshot streams one partition's serialized index out of a
// healthy replica, and Worker.Restore installs such a stream into a
// recovering worker — the state transfer that lets a restarted worker
// rejoin without replaying the build. Query headers are otherwise
// unchanged; replication is entirely driver-side policy (placement,
// per-replica generation tracking, failover routing — see
// failover.go).
//
// Protocol v6 adds live rebalancing and score-guided probing:
// SearchReply carries each partition's unmerged result list and cost
// counters (the driver's load tracker and split-window dedup need
// per-partition attribution, not a per-worker merge), Worker.Bound
// answers the probe budget's admissible lower-bound check without a
// full scan, Worker.Split clones the moved half of a partition into a
// new partition id on the same worker, and Worker.Drop discards a
// partition after its replica migrated away. A worker now also errors
// on a query naming a partition it does not hold (it used to answer
// silently from the intersection): the driver always asks exactly
// what it believes the worker owns, so a miss means the plan raced an
// ownership change and the driver must retry elsewhere rather than
// accept a silently incomplete answer.
//
// Protocol v7 adds refined query modes: the four query arg shapes
// (Search/Bound/SearchRadius/SearchBatch) gain a rptrie.RefineSpec
// selecting subtrajectory and/or time-windowed scoring. The worker
// builds the refiner per partition from the partition's own index
// configuration, so the spec travels as plain data — no measure or
// parameters on the wire. A zero spec encodes the pre-v7 behaviour,
// and reply shapes are unchanged (topk.Item already carries the
// matched [Start, End) segment).

// ProtocolVersion is the driver↔worker wire protocol version. The
// worker rejects requests from a driver speaking a different version
// rather than mis-decoding them.
const ProtocolVersion = 7

// checkVersion rejects a peer speaking a different protocol version.
func checkVersion(v int) error {
	if v != ProtocolVersion {
		return fmt.Errorf("cluster: protocol version mismatch: peer speaks v%d, this build speaks v%d", v, ProtocolVersion)
	}
	return nil
}

// HandshakeArgs announces the driver's protocol version.
type HandshakeArgs struct {
	Version int
}

// HandshakeReply reports the worker's protocol version.
type HandshakeReply struct {
	Version int
}

// BuildArgs ships one partition to a worker.
type BuildArgs struct {
	Version      int
	PartitionID  int
	Spec         IndexSpec
	Trajectories []*geo.Trajectory
}

// BuildReply reports the built partition index.
type BuildReply struct {
	SizeBytes  int
	Len        int
	BuildNanos int64
}

// QueryHeader is the common preamble of every v2 query RPC.
type QueryHeader struct {
	Version int
	// ID identifies the query; Worker.Cancel aborts the in-flight
	// query carrying it. Drivers salt their ids with random high
	// bits so concurrent drivers sharing a worker do not collide.
	// 0 means not cancellable.
	ID uint64
	// BudgetNanos is the time remaining until the driver context's
	// deadline when the query was sent (0 = none, negative =
	// already expired). A relative budget rather than an absolute
	// timestamp: worker clocks may be skewed from the driver's. The
	// worker aborts on its own once the budget is spent, even if
	// the cancel RPC never arrives.
	BudgetNanos int64
	// Partitions restricts the query to these partition ids
	// (deduplicated by the driver); the worker intersects it with
	// the partitions it owns. nil = all.
	Partitions []int
	// MinGens pins the query per global partition id; see
	// QueryOptions.MinGens.
	MinGens []uint64
}

// SearchArgs broadcasts a top-k query.
type SearchArgs struct {
	QueryHeader
	Query         []geo.Point
	K             int
	NoPivots      bool
	RefineWorkers int
	Refine        rptrie.RefineSpec
}

// SearchReply carries a worker's merged local top-k plus, since v6,
// each partition's unmerged result list and cost counters keyed by
// partition id — the attribution the driver's load tracker scores
// partitions by, and what lets the driver dedup a split's
// install→prune window where a trajectory briefly lives in two
// partitions.
type SearchReply struct {
	Items       []topk.Item
	PartNanos   map[int]int64
	PartItems   map[int][]topk.Item
	PartRefined map[int]int64 // exact-distance refinements per partition
	Partitions  []int
}

// BoundArgs asks for each selected partition's admissible lower bound
// on the best distance any of its trajectories could achieve for the
// query — the probe budget's pruning test, answered by a bounded
// best-first walk instead of a full scan.
type BoundArgs struct {
	QueryHeader
	Query    []geo.Point
	NoPivots bool
	Refine   rptrie.RefineSpec
}

// BoundReply carries the per-partition bounds. A partition whose
// index cannot bound (a baseline) reports 0, which never prunes.
type BoundReply struct {
	Bounds map[int]float64
}

// RadiusArgs broadcasts a range query.
type RadiusArgs struct {
	QueryHeader
	Query         []geo.Point
	Radius        float64
	NoPivots      bool
	RefineWorkers int
	Refine        rptrie.RefineSpec
}

// RadiusReply carries every in-range trajectory of the worker's
// partitions (each worker's list arrives sorted; the driver re-sorts
// the concatenated global merge).
type RadiusReply struct {
	Items      []topk.Item
	PartNanos  map[int]int64
	Partitions []int
}

// SearchBatchArgs broadcasts a whole query batch.
type SearchBatchArgs struct {
	QueryHeader
	Queries       [][]geo.Point
	K             int
	NoPivots      bool
	RefineWorkers int
	Refine        rptrie.RefineSpec
}

// SearchBatchReply carries the worker's per-query merged local top-k
// lists, indexed like the queries. PerQueryNanos is each query's
// completion offset from the worker's batch start (including
// intra-worker queuing); the driver reports the max across workers,
// so cross-worker RPC arrival skew is the only slack versus the
// local engine's from-batch-start semantics.
type SearchBatchReply struct {
	Items          [][]topk.Item
	PerQueryNanos  []int64
	TotalWorkNanos int64
}

// CancelArgs aborts the in-flight query with the given id.
type CancelArgs struct {
	ID uint64
}

// InsertArgs applies pending inserts to one partition the worker
// owns. The driver routes and validates; the worker only applies.
// With Replace set the trajectories upsert (live ids are replaced in
// one snapshot-atomic swap) instead of strictly inserting.
type InsertArgs struct {
	Version      int
	PartitionID  int
	Trajectories []*geo.Trajectory
	Replace      bool
	AutoCompact  float64
}

// InsertReply reports the partition's post-insert state.
type InsertReply struct {
	Gen uint64
	Len int
}

// DeleteArgs removes ids from one partition the worker owns.
type DeleteArgs struct {
	Version     int
	PartitionID int
	IDs         []int
	AutoCompact float64
}

// DeleteReply reports how many ids were live and the partition's
// post-delete state.
type DeleteReply struct {
	Removed int
	Gen     uint64
	Len     int
}

// CompactArgs folds the pending deltas of the selected partitions the
// worker owns (nil = all owned).
type CompactArgs struct {
	Version    int
	Partitions []int
}

// CompactReply carries the compacted partitions' new generations.
type CompactReply struct {
	Gens map[int]uint64
}

// ClearArgs empties a worker between experiments.
type ClearArgs struct {
	Version int
}

// StatusArgs asks a worker which partitions it holds.
type StatusArgs struct {
	Version int
}

// StatusReply reports the worker's partitions: each one's index
// generation and live trajectory count. The driver's failure detector
// compares these against the authoritative generations to decide what
// a rejoining worker must be restored.
type StatusReply struct {
	Gens map[int]uint64
	Lens map[int]int
}

// SnapshotArgs asks a worker to serialize one partition it owns.
type SnapshotArgs struct {
	Version     int
	PartitionID int
}

// SnapshotReply carries the partition's serialized index image (the
// rptrie wire format, pending delta folded in, at the source's
// generation). Layout distinguishes the three layouts' formats — the
// compressed layout's images are several times smaller, which is what
// makes failover transfers of compressed partitions cheap.
type SnapshotReply struct {
	Data   []byte
	Layout rptrie.Layout
	Gen    uint64
	Len    int
}

// RestoreArgs installs a partition image produced by Worker.Snapshot
// into a recovering worker, replacing whatever it held for that
// partition.
type RestoreArgs struct {
	Version     int
	PartitionID int
	Layout      rptrie.Layout
	Data        []byte
}

// RestoreReply reports the restored partition's state.
type RestoreReply struct {
	Gen uint64
	Len int
}

// SplitArgs carves the MoveIDs half of an owned partition into a new
// partition installed on the same worker; the source partition is
// left intact (the driver prunes it afterwards, and its merge dedups
// the overlap window). The driver computes MoveIDs so every replica
// of the partition splits identically.
type SplitArgs struct {
	Version        int
	PartitionID    int
	NewPartitionID int
	MoveIDs        []int
}

// SplitReply reports the newly installed partition's state.
type SplitReply struct {
	Gen       uint64
	Len       int
	SizeBytes int
}

// DropArgs discards an owned partition (after its replica migrated to
// another worker), wiping any durable store so a restart does not
// resurrect it.
type DropArgs struct {
	Version     int
	PartitionID int
}

// Worker is the RPC service hosted by a worker process.
type Worker struct {
	mu       sync.Mutex
	indexes  map[int]LocalIndex
	inflight map[uint64]context.CancelFunc
	// cancelled holds ids whose Worker.Cancel arrived before the
	// query registered (net/rpc runs handlers concurrently, so the
	// race is inherent); queryContext consumes the tombstone and
	// starts the query already cancelled. cancelledQ bounds the set:
	// a tombstone for a query that already finished is never
	// consumed and must not accumulate.
	cancelled  map[uint64]struct{}
	cancelledQ []uint64
	// awaitRestore marks a worker started with the -rejoin flag: it
	// replaces a dead peer and expects the driver's failure detector
	// to stream it partition state. Until the first Build or Restore
	// lands, its queries fail with a distinctive diagnostic instead of
	// the generic "no partitions".
	awaitRestore bool
	// dataDir, when set, backs every REPOSE partition with a durable
	// store under dataDir/p<pid>; NewDurableWorker recovers them at
	// startup so a restarted worker rejoins from its own WAL.
	dataDir string
	// restores counts Worker.Restore calls that installed state — the
	// observable distinguishing a local-replay rejoin from a peer
	// state transfer.
	restores int
	// forceLayout, when non-nil, overrides the layout of every REPOSE
	// partition this worker builds, whatever the driver's spec says —
	// the knob for memory-constrained workers in a heterogeneous
	// fleet. Safe because every layout answers queries bit-identically.
	forceLayout *rptrie.Layout
	// queryWorkers/qsem, when set, cap the worker's total
	// partition-scan concurrency across all in-flight queries (the
	// default is GOMAXPROCS per query view, which hides per-worker
	// saturation when many workers share one test machine).
	queryWorkers int
	qsem         chan struct{}
}

// SetQueryWorkers caps this worker's total partition-scan concurrency
// across all in-flight queries. Call before serving; n <= 0 restores
// the default (GOMAXPROCS per query view). The cap is what makes one
// worker's overload observable — and a migration's relief measurable
// — when several workers share a machine.
func (w *Worker) SetQueryWorkers(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n <= 0 {
		w.queryWorkers, w.qsem = 0, nil
		return
	}
	w.queryWorkers = n
	w.qsem = make(chan struct{}, n)
}

// maxPendingCancels bounds the early-cancel tombstone set.
const maxPendingCancels = 1024

// ForceLayout makes every REPOSE partition this worker builds use the
// given layout regardless of the driver's build spec. Call it before
// serving; it does not rebuild already-installed partitions. Restored
// partitions (Worker.Restore) keep the image's layout — a state
// transfer must land at the source's exact generation, not re-encode.
func (w *Worker) ForceLayout(l rptrie.Layout) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.forceLayout = &l
}

// NewWorker returns an empty worker service.
func NewWorker() *Worker {
	return &Worker{
		indexes:   make(map[int]LocalIndex),
		inflight:  make(map[uint64]context.CancelFunc),
		cancelled: make(map[uint64]struct{}),
	}
}

// NewRejoinWorker returns an empty worker that announces itself as a
// replacement for a dead peer: it starts with no partitions and
// expects the driver to restore state into it (see RestoreArgs).
func NewRejoinWorker() *Worker {
	w := NewWorker()
	w.awaitRestore = true
	return w
}

// NewDurableWorker returns a worker whose REPOSE partitions are
// disk-backed under dataDir. Partitions already recoverable there
// (from a previous run of the same worker) are opened immediately,
// each replaying its own WAL to its exact pre-crash generation — the
// driver's failure detector then re-admits them without a peer state
// transfer as long as they are current.
// With rejoin set and nothing recoverable on disk, the worker starts
// in the awaiting-restore state like NewRejoinWorker.
func NewDurableWorker(dataDir string, rejoin bool) (*Worker, error) {
	fs := storage.OSFS{}
	if err := fs.MkdirAll(dataDir); err != nil {
		return nil, err
	}
	recovered, err := recoverDurablePartitions(dataDir)
	if err != nil {
		return nil, err
	}
	w := NewWorker()
	w.dataDir = dataDir
	w.awaitRestore = rejoin && len(recovered) == 0
	for pid, d := range recovered {
		w.indexes[pid] = d
	}
	return w, nil
}

// RecoveredPartitions lists the partitions a NewDurableWorker opened
// from disk at startup, ascending.
func (w *Worker) RecoveredPartitions() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	var pids []int
	for pid, idx := range w.indexes {
		if _, ok := idx.(*rptrie.Durable); ok {
			pids = append(pids, pid)
		}
	}
	sort.Ints(pids)
	return pids
}

// RestoreCount reports how many Worker.Restore calls installed state.
func (w *Worker) RestoreCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.restores
}

// CloseData flushes and closes every disk-backed partition store.
// The worker keeps answering queries from memory; call it on process
// shutdown so a restart recovers from a cleanly closed log.
func (w *Worker) CloseData() {
	w.mu.Lock()
	indexes := make([]LocalIndex, 0, len(w.indexes))
	for _, idx := range w.indexes {
		indexes = append(indexes, idx)
	}
	w.mu.Unlock()
	for _, idx := range indexes {
		closeDurable(idx)
	}
}

// Handshake verifies the driver and worker speak the same protocol.
func (w *Worker) Handshake(args *HandshakeArgs, reply *HandshakeReply) error {
	reply.Version = ProtocolVersion
	return checkVersion(args.Version)
}

// Build constructs the index for one partition.
func (w *Worker) Build(args *BuildArgs, reply *BuildReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	start := time.Now()
	spec := args.Spec
	w.mu.Lock()
	if w.forceLayout != nil && spec.Algorithm == REPOSE {
		spec.Layout, spec.Succinct = *w.forceLayout, false
	}
	w.mu.Unlock()
	idx, err := spec.BuildLocal(args.Trajectories)
	if err != nil {
		return err
	}
	// Uninstall the old index before closing its store and wiping its
	// directory: if the durable install below fails, the partition
	// must read as absent (the driver rebuilds or restores it), not be
	// served by a closed index whose on-disk state is gone.
	w.mu.Lock()
	old := w.indexes[args.PartitionID]
	delete(w.indexes, args.PartitionID)
	w.mu.Unlock()
	closeDurable(old) // release the store before WrapDurable wipes its directory
	if w.dataDir != "" {
		if idx, err = wrapDurablePartition(w.dataDir, args.PartitionID, idx); err != nil {
			return err
		}
	}
	w.mu.Lock()
	w.indexes[args.PartitionID] = idx
	w.awaitRestore = false
	w.mu.Unlock()
	reply.SizeBytes = idx.SizeBytes()
	reply.Len = idx.Len()
	reply.BuildNanos = time.Since(start).Nanoseconds()
	return nil
}

// view snapshots the worker's indexes for the selected partitions (in
// ascending partition-id order) as a query-ready Local.
func (w *Worker) view(subset []int) (*Local, []int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.indexes) == 0 {
		if w.awaitRestore {
			return nil, nil, errors.New("cluster: worker awaiting state restore (started with -rejoin)")
		}
		return nil, nil, errors.New("cluster: worker has no partitions")
	}
	var pids []int
	if len(subset) == 0 {
		for id := range w.indexes {
			pids = append(pids, id)
		}
	} else {
		// Defensive dedup: a duplicated id must not double-count a
		// partition's results. A requested partition this worker does
		// not hold is an error, not a silent intersection: the driver
		// asks exactly what it believes the worker owns, so a miss
		// means the plan raced a migration or split and the driver
		// must retry the partition elsewhere — answering without it
		// would return a silently incomplete result.
		seen := make(map[int]bool, len(subset))
		for _, id := range subset {
			if seen[id] {
				continue
			}
			seen[id] = true
			if _, ok := w.indexes[id]; !ok {
				return nil, nil, fmt.Errorf("cluster: worker "+notOwnerMsg+" %d", id)
			}
			pids = append(pids, id)
		}
	}
	sort.Ints(pids)
	indexes := make([]LocalIndex, len(pids))
	for i, id := range pids {
		indexes[i] = w.indexes[id]
	}
	v := localView(indexes, pids, w.queryWorkers)
	if w.qsem != nil {
		// Share one semaphore across every in-flight query's view so
		// the cap bounds the worker, not each query.
		v.sem = w.qsem
	}
	return v, pids, nil
}

// queryContext derives the query's context from the wire header and
// registers it for Worker.Cancel. The returned stop func must be
// called when the query finishes.
func (w *Worker) queryContext(h QueryHeader) (context.Context, func()) {
	var ctx context.Context
	var cancel context.CancelFunc
	if h.BudgetNanos != 0 {
		// A non-positive budget yields an already-expired context.
		ctx, cancel = context.WithTimeout(context.Background(), time.Duration(h.BudgetNanos))
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	if h.ID != 0 {
		w.mu.Lock()
		if _, early := w.cancelled[h.ID]; early {
			// The cancel won the race with registration: start the
			// query already aborted.
			delete(w.cancelled, h.ID)
			cancel()
		} else {
			w.inflight[h.ID] = cancel
		}
		w.mu.Unlock()
	}
	return ctx, func() {
		if h.ID != 0 {
			w.mu.Lock()
			delete(w.inflight, h.ID)
			w.mu.Unlock()
		}
		cancel()
	}
}

// Cancel aborts the in-flight query with args.ID. An id not yet
// registered is remembered as a tombstone so a query racing its own
// cancel still aborts; the query may also simply have finished first.
func (w *Worker) Cancel(args *CancelArgs, _ *struct{}) error {
	if args.ID == 0 {
		return nil
	}
	w.mu.Lock()
	cancel := w.inflight[args.ID]
	if cancel == nil {
		if _, ok := w.cancelled[args.ID]; !ok {
			w.cancelled[args.ID] = struct{}{}
			w.cancelledQ = append(w.cancelledQ, args.ID)
			if len(w.cancelledQ) > maxPendingCancels {
				delete(w.cancelled, w.cancelledQ[0])
				w.cancelledQ = w.cancelledQ[1:]
			}
		}
	}
	w.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// partNanos re-keys a view's positional partition timings by
// partition id.
func partNanos(pids []int, rep QueryReport) map[int]int64 {
	out := make(map[int]int64, len(pids))
	for i, d := range rep.PartitionTimes {
		out[pids[i]] = d.Nanoseconds()
	}
	return out
}

// Search answers the query over the selected partitions this worker
// owns and merges them into one local top-k.
func (w *Worker) Search(args *SearchArgs, reply *SearchReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	ctx, stop := w.queryContext(args.QueryHeader)
	defer stop()
	view, pids, err := w.view(args.Partitions)
	if err != nil {
		return err
	}
	opt := QueryOptions{NoPivots: args.NoPivots, RefineWorkers: args.RefineWorkers, MinGens: args.MinGens, Refine: args.Refine}
	parts := view.parts()
	sel := make([]int, len(parts))
	for i := range sel {
		sel[i] = i
	}
	locals, refined, rep, err := view.searchLists(ctx, parts, sel, args.Query, args.K, opt)
	if err != nil {
		return err
	}
	reply.Items = mergeDedup(args.K, locals)
	reply.PartNanos = partNanos(pids, rep)
	reply.Partitions = pids
	reply.PartItems = make(map[int][]topk.Item, len(pids))
	reply.PartRefined = make(map[int]int64, len(pids))
	for si, pid := range pids {
		reply.PartItems[pid] = locals[si]
		reply.PartRefined[pid] = refined[si]
	}
	return nil
}

// Bound answers the probe budget's pruning test for the selected
// partitions: each partition's admissible lower bound on the best
// distance it could contribute, from a bounded best-first walk.
func (w *Worker) Bound(args *BoundArgs, reply *BoundReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	ctx, stop := w.queryContext(args.QueryHeader)
	defer stop()
	view, pids, err := w.view(args.Partitions)
	if err != nil {
		return err
	}
	opt := QueryOptions{NoPivots: args.NoPivots, MinGens: args.MinGens, Refine: args.Refine}
	parts := view.parts()
	reply.Bounds = make(map[int]float64, len(pids))
	for si, pid := range pids {
		b, err := boundOne(ctx, pid, parts[si], args.Query, opt)
		if err != nil {
			return err
		}
		reply.Bounds[pid] = b
	}
	return nil
}

// SearchRadius answers the range query over the selected partitions
// this worker owns.
func (w *Worker) SearchRadius(args *RadiusArgs, reply *RadiusReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	ctx, stop := w.queryContext(args.QueryHeader)
	defer stop()
	view, pids, err := w.view(args.Partitions)
	if err != nil {
		return err
	}
	items, rep, err := view.SearchRadius(ctx, args.Query, args.Radius, QueryOptions{NoPivots: args.NoPivots, RefineWorkers: args.RefineWorkers, MinGens: args.MinGens, Refine: args.Refine})
	if err != nil {
		return err
	}
	reply.Items = items
	reply.PartNanos = partNanos(pids, rep)
	reply.Partitions = pids
	return nil
}

// SearchBatch answers the whole batch over the selected partitions
// this worker owns, one merged local top-k per query.
func (w *Worker) SearchBatch(args *SearchBatchArgs, reply *SearchBatchReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	ctx, stop := w.queryContext(args.QueryHeader)
	defer stop()
	view, _, err := w.view(args.Partitions)
	if err != nil {
		return err
	}
	items, rep, err := view.SearchBatch(ctx, args.Queries, args.K, QueryOptions{NoPivots: args.NoPivots, RefineWorkers: args.RefineWorkers, MinGens: args.MinGens, Refine: args.Refine})
	if err != nil {
		return err
	}
	reply.Items = items
	reply.PerQueryNanos = make([]int64, len(rep.PerQuery))
	for i, d := range rep.PerQuery {
		reply.PerQueryNanos[i] = d.Nanoseconds()
	}
	reply.TotalWorkNanos = rep.TotalWork.Nanoseconds()
	return nil
}

// ownedMutable resolves one owned partition's index as mutable.
func (w *Worker) ownedMutable(pid int) (MutableIndex, LocalIndex, error) {
	w.mu.Lock()
	idx := w.indexes[pid]
	w.mu.Unlock()
	if idx == nil {
		return nil, nil, fmt.Errorf("cluster: worker "+notOwnerMsg+" %d", pid)
	}
	m, ok := idx.(MutableIndex)
	if !ok {
		return nil, nil, fmt.Errorf("%w (partition %d, %T)", ErrImmutable, pid, idx)
	}
	return m, idx, nil
}

// Insert applies pending inserts (or, with Replace, upserts) to one
// owned partition.
func (w *Worker) Insert(args *InsertArgs, reply *InsertReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	m, li, err := w.ownedMutable(args.PartitionID)
	if err != nil {
		return err
	}
	if args.Replace {
		err = m.Upsert(args.Trajectories...)
	} else {
		err = m.Insert(args.Trajectories...)
	}
	if err != nil {
		return err
	}
	if err := maybeCompact(m, li, args.AutoCompact); err != nil {
		return err
	}
	reply.Gen = m.Generation()
	reply.Len = li.Len()
	return nil
}

// Delete removes ids from one owned partition.
func (w *Worker) Delete(args *DeleteArgs, reply *DeleteReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	m, li, err := w.ownedMutable(args.PartitionID)
	if err != nil {
		return err
	}
	reply.Removed = m.Delete(args.IDs...)
	if err := maybeCompact(m, li, args.AutoCompact); err != nil {
		return err
	}
	reply.Gen = m.Generation()
	reply.Len = li.Len()
	return nil
}

// Compact folds the pending deltas of the selected owned partitions.
func (w *Worker) Compact(args *CompactArgs, reply *CompactReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	w.mu.Lock()
	var pids []int
	if len(args.Partitions) == 0 {
		for pid := range w.indexes {
			pids = append(pids, pid)
		}
	} else {
		for _, pid := range args.Partitions {
			if _, ok := w.indexes[pid]; ok {
				pids = append(pids, pid)
			}
		}
	}
	w.mu.Unlock()
	sort.Ints(pids)
	reply.Gens = make(map[int]uint64, len(pids))
	for _, pid := range pids {
		m, _, err := w.ownedMutable(pid)
		if err != nil {
			return err
		}
		if err := m.Compact(); err != nil {
			return err
		}
		reply.Gens[pid] = m.Generation()
	}
	return nil
}

// Clear drops all partitions.
func (w *Worker) Clear(args *ClearArgs, _ *struct{}) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	w.mu.Lock()
	dropped := w.indexes
	w.indexes = make(map[int]LocalIndex)
	w.mu.Unlock()
	// Wipe dropped stores so a restart does not resurrect them.
	for _, idx := range dropped {
		destroyDurable(idx)
	}
	return nil
}

// Ping checks liveness.
func (w *Worker) Ping(_ *struct{}, ok *bool) error {
	*ok = true
	return nil
}

// Status reports the partitions this worker holds, with each one's
// generation and live length — the reconciliation input for a driver
// deciding whether a rejoining worker needs a state restore.
func (w *Worker) Status(args *StatusArgs, reply *StatusReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	reply.Gens = make(map[int]uint64, len(w.indexes))
	reply.Lens = make(map[int]int, len(w.indexes))
	for pid, idx := range w.indexes {
		gen := uint64(0)
		if m, ok := idx.(MutableIndex); ok {
			gen = m.Generation()
		}
		reply.Gens[pid] = gen
		reply.Lens[pid] = idx.Len()
	}
	return nil
}

// Snapshot serializes one owned partition's index (rptrie layouts
// only; the baselines have no persistence) for replication to a
// recovering peer. The image folds any pending delta and carries this
// replica's generation, so the restored copy re-aligns exactly.
func (w *Worker) Snapshot(args *SnapshotArgs, reply *SnapshotReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	w.mu.Lock()
	idx := w.indexes[args.PartitionID]
	w.mu.Unlock()
	if idx == nil {
		return fmt.Errorf("cluster: worker "+notOwnerMsg+" %d", args.PartitionID)
	}
	data, layout, gen, err := encodeIndex(idx)
	if err != nil {
		if errors.Is(err, errNoSnapshot) {
			return fmt.Errorf("cluster: partition %d index (%T) does not support snapshots", args.PartitionID, idx)
		}
		return err
	}
	reply.Data, reply.Layout, reply.Gen = data, layout, gen
	reply.Len = idx.Len()
	return nil
}

// errNoSnapshot reports an index type without a serialized form.
var errNoSnapshot = errors.New("cluster: index does not support snapshots")

// encodeIndex serializes an rptrie-layout index (pending delta folded
// in) with its layout and generation — the payload of Snapshot and
// the first half of a clone.
func encodeIndex(idx LocalIndex) ([]byte, rptrie.Layout, uint64, error) {
	var buf bytes.Buffer
	switch t := idx.(type) {
	case *rptrie.Trie:
		if err := t.Save(&buf); err != nil {
			return nil, 0, 0, err
		}
		return buf.Bytes(), rptrie.LayoutPointer, t.Generation(), nil
	case *rptrie.Succinct:
		if err := t.Save(&buf); err != nil {
			return nil, 0, 0, err
		}
		return buf.Bytes(), rptrie.LayoutSuccinct, t.Generation(), nil
	case *rptrie.Compressed:
		if err := t.Save(&buf); err != nil {
			return nil, 0, 0, err
		}
		return buf.Bytes(), rptrie.LayoutCompressed, t.Generation(), nil
	case *rptrie.Durable:
		if err := t.Save(&buf); err != nil {
			return nil, 0, 0, err
		}
		return buf.Bytes(), t.Layout(), t.Generation(), nil
	default:
		return nil, 0, 0, fmt.Errorf("%w (%T)", errNoSnapshot, idx)
	}
}

// decodeIndex materializes an encodeIndex/Snapshot image.
func decodeIndex(layout rptrie.Layout, data []byte) (LocalIndex, uint64, error) {
	switch layout {
	case rptrie.LayoutSuccinct:
		s, err := rptrie.ReadSuccinct(bytes.NewReader(data))
		if err != nil {
			return nil, 0, err
		}
		return s, s.Generation(), nil
	case rptrie.LayoutCompressed:
		c, err := rptrie.ReadCompressed(bytes.NewReader(data))
		if err != nil {
			return nil, 0, err
		}
		return c, c.Generation(), nil
	case rptrie.LayoutPointer:
		t, err := rptrie.ReadTrie(bytes.NewReader(data))
		if err != nil {
			return nil, 0, err
		}
		return t, t.Generation(), nil
	default:
		return nil, 0, fmt.Errorf("cluster: restore of unknown layout %v", layout)
	}
}

// cloneLocalIndex deep-copies an index through a Save/Read round trip,
// preserving layout and generation. A Durable source clones to its
// in-memory layout; the caller decides whether the clone gets its own
// store.
func cloneLocalIndex(idx LocalIndex) (LocalIndex, error) {
	data, layout, _, err := encodeIndex(idx)
	if err != nil {
		return nil, err
	}
	clone, _, err := decodeIndex(layout, data)
	return clone, err
}

// Restore installs a partition image produced by Snapshot, replacing
// whatever this worker held for that partition — the rejoin path for
// a restarted or lagging worker.
func (w *Worker) Restore(args *RestoreArgs, reply *RestoreReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	idx, gen, err := decodeIndex(args.Layout, args.Data)
	if err != nil {
		return err
	}
	// As in Build: uninstall before wiping, so a failed durable
	// install leaves the partition absent rather than installed with a
	// closed store and a destroyed directory.
	w.mu.Lock()
	old := w.indexes[args.PartitionID]
	delete(w.indexes, args.PartitionID)
	w.mu.Unlock()
	closeDurable(old) // release the store before WrapDurable wipes its directory
	if w.dataDir != "" {
		var err error
		if idx, err = wrapDurablePartition(w.dataDir, args.PartitionID, idx); err != nil {
			return err
		}
	}
	w.mu.Lock()
	w.indexes[args.PartitionID] = idx
	w.awaitRestore = false
	w.restores++
	w.mu.Unlock()
	reply.Gen = gen
	reply.Len = idx.Len()
	return nil
}

// liveIDs lists an index's live trajectory ids, nil when the index
// cannot enumerate them (baselines).
func liveIDs(idx LocalIndex) []int {
	if l, ok := idx.(interface{ LiveIDs() []int }); ok {
		return l.LiveIDs()
	}
	return nil
}

// Split installs the MoveIDs half of an owned partition as a new
// partition on this worker: clone the source, delete everything but
// the moved ids from the clone, compact, and install it under the new
// id. The source partition is untouched — the driver prunes it once
// every replica has split, and its merges dedup the overlap window.
// Identical inputs on in-sync replicas produce identical clones at
// identical generations, so the driver can register the new partition
// with every replica immediately eligible.
func (w *Worker) Split(args *SplitArgs, reply *SplitReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	w.mu.Lock()
	idx := w.indexes[args.PartitionID]
	_, taken := w.indexes[args.NewPartitionID]
	w.mu.Unlock()
	if idx == nil {
		return fmt.Errorf("cluster: worker "+notOwnerMsg+" %d", args.PartitionID)
	}
	if taken {
		return fmt.Errorf("cluster: split target partition %d already exists", args.NewPartitionID)
	}
	clone, err := cloneLocalIndex(idx)
	if err != nil {
		return err
	}
	m, ok := clone.(MutableIndex)
	if !ok {
		return fmt.Errorf("%w (partition %d, %T)", ErrImmutable, args.PartitionID, clone)
	}
	keep := make(map[int]bool, len(args.MoveIDs))
	for _, id := range args.MoveIDs {
		keep[id] = true
	}
	var drop []int
	for _, id := range liveIDs(clone) {
		if !keep[id] {
			drop = append(drop, id)
		}
	}
	sort.Ints(drop) // deterministic across replicas
	if len(drop) > 0 {
		m.Delete(drop...)
	}
	if err := m.Compact(); err != nil {
		return err
	}
	if w.dataDir != "" {
		if clone, err = wrapDurablePartition(w.dataDir, args.NewPartitionID, clone); err != nil {
			return err
		}
	}
	w.mu.Lock()
	if _, raced := w.indexes[args.NewPartitionID]; raced {
		w.mu.Unlock()
		destroyDurable(clone)
		return fmt.Errorf("cluster: split target partition %d already exists", args.NewPartitionID)
	}
	w.indexes[args.NewPartitionID] = clone
	w.mu.Unlock()
	if mm, ok := clone.(MutableIndex); ok {
		reply.Gen = mm.Generation()
	}
	reply.Len = clone.Len()
	reply.SizeBytes = clone.SizeBytes()
	return nil
}

// Drop discards an owned partition after its replica migrated away,
// wiping any durable store so a restart does not resurrect it.
// Dropping a partition the worker does not hold is a no-op: the call
// is the best-effort tail of a migration, and repeating it must not
// fail.
func (w *Worker) Drop(args *DropArgs, _ *struct{}) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	w.mu.Lock()
	idx := w.indexes[args.PartitionID]
	delete(w.indexes, args.PartitionID)
	w.mu.Unlock()
	if idx != nil {
		destroyDurable(idx)
	}
	return nil
}

// Serve accepts RPC connections on ln until the listener closes.
// It always returns a non-nil error (from Accept).
func Serve(ln net.Listener, w *Worker) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", w); err != nil {
		return err
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// Remote is the driver side of the multi-process engine. With
// IndexSpec.Replicas > 1 it places each partition on several workers,
// routes every query to one in-sync replica per partition, fails a
// partition over to its next replica when a worker dies mid-call, and
// heals recovering workers in the background (see failover.go).
type Remote struct {
	slots    []*workerSlot
	owners   [][]int // partition → worker slots, primary first
	replicas int

	buildTime time.Duration
	partSizes []int // per-partition index bytes, as reported at build
	// partLen holds each partition's live trajectory count as last
	// reported by a worker (build reply, then every mutation
	// reply). Worker-authoritative numbers rather than driver-side
	// arithmetic: a mutation whose outcome was unknown leaves the
	// count stale only until the next successful mutation on that
	// partition refreshes it.
	partLen []atomic.Int64
	qidSalt uint64 // random high bits distinguishing this driver
	qid     atomic.Uint64
	dir     *directory // online-mutation routing, driver side

	// genMu guards the replica generation table: repGen[pid][j] is the
	// last generation replica j of pid acknowledged (genAbsent when it
	// holds nothing), curGen[pid] the newest acknowledged by anyone.
	// Since partitions can split at runtime it also guards the
	// lengths of owners, repGen, curGen, partLen, and partSizes.
	genMu  sync.Mutex
	repGen [][]uint64
	curGen []uint64

	// rebalMu serializes partition-set changes against mutations:
	// mutateReplicas and Compact hold it shared, Rebalance and
	// SplitPartition hold it exclusively (see rebalance.go). Queries
	// never touch it — reads stay available throughout a migration.
	// Lock order: dir.mu → rebalMu → genMu.
	rebalMu sync.RWMutex
	// loads accumulates per-partition query cost and reward — the
	// rebalancer's hotness signal and the probe budget's score input.
	loads *loadTracker

	foMu sync.Mutex
	fo   FailoverConfig

	closed    atomic.Bool
	probeStop chan struct{}
	probeWG   sync.WaitGroup
}

// BuildRemote dials the worker addresses, verifies the protocol
// handshake, places each partition's spec.Replicas copies on distinct
// workers round-robin (replica j of partition p on worker (p+j) mod
// W), and builds all partition indexes in parallel.
func BuildRemote(spec IndexSpec, parts [][]*geo.Trajectory, addrs []string) (*Remote, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no worker addresses")
	}
	replicas := spec.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(addrs) {
		return nil, fmt.Errorf("cluster: replication factor %d needs at least %d workers, have %d", replicas, replicas, len(addrs))
	}
	r := &Remote{
		replicas:  replicas,
		qidSalt:   uint64(rand.Uint32()) << 32,
		probeStop: make(chan struct{}),
	}
	r.fo = FailoverConfig{}.withDefaults(replicas)
	for _, addr := range addrs {
		r.slots = append(r.slots, &workerSlot{addr: addr})
	}
	for _, s := range r.slots {
		c, err := rpc.Dial("tcp", s.addr)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", s.addr, err)
		}
		s.setClient(c)
		var hr HandshakeReply
		if err := c.Call("Worker.Handshake", &HandshakeArgs{Version: ProtocolVersion}, &hr); err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: handshake with %s: %w", s.addr, err)
		}
	}
	r.owners = make([][]int, len(parts))
	for pid := range parts {
		for j := 0; j < replicas; j++ {
			r.owners[pid] = append(r.owners[pid], (pid+j)%len(addrs))
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([][]error, len(parts))
	replies := make([][]BuildReply, len(parts))
	for pid, part := range parts {
		errs[pid] = make([]error, replicas)
		replies[pid] = make([]BuildReply, replicas)
		for j, si := range r.owners[pid] {
			wg.Add(1)
			go func(pid, j, si int, part []*geo.Trajectory) {
				defer wg.Done()
				args := &BuildArgs{Version: ProtocolVersion, PartitionID: pid, Spec: spec, Trajectories: part}
				errs[pid][j] = r.slots[si].get().Call("Worker.Build", args, &replies[pid][j])
			}(pid, j, si, part)
		}
	}
	wg.Wait()
	for pid := range errs {
		for j, err := range errs[pid] {
			if err != nil {
				r.Close()
				return nil, fmt.Errorf("cluster: build partition %d replica %d on %s: %w", pid, j, r.slots[r.owners[pid][j]].addr, err)
			}
		}
	}
	r.partLen = make([]atomic.Int64, len(parts))
	r.partSizes = make([]int, len(parts))
	r.repGen = make([][]uint64, len(parts))
	r.curGen = make([]uint64, len(parts))
	for pid := range replies {
		r.partSizes[pid] = replies[pid][0].SizeBytes
		r.partLen[pid].Store(int64(replies[pid][0].Len))
		r.repGen[pid] = make([]uint64, replicas)
	}
	r.buildTime = time.Since(start)
	r.dir = newDirectory(spec, parts)
	r.loads = newLoadTracker(len(parts))
	r.probeWG.Add(1)
	go r.probeLoop()
	return r, nil
}

// header prepares the common query preamble for one broadcast.
func (r *Remote) header(ctx context.Context, partitions []int, minGens []uint64) QueryHeader {
	h := QueryHeader{
		Version:    ProtocolVersion,
		ID:         r.qidSalt | r.qid.Add(1),
		Partitions: partitions,
		MinGens:    minGens,
	}
	if deadline, ok := ctx.Deadline(); ok {
		h.BudgetNanos = int64(time.Until(deadline))
		if h.BudgetNanos == 0 {
			h.BudgetNanos = -1
		}
	}
	return h
}

// ErrClosed reports a query issued after the engine released its
// worker connections.
var ErrClosed = errors.New("cluster: engine closed")

// cancelGrace bounds how long a cancelled query waits for a worker's
// reply after firing Worker.Cancel before abandoning the in-flight
// call. A responsive worker aborts within milliseconds; a hung or
// partitioned one must not block the driver past its deadline.
const cancelGrace = 500 * time.Millisecond

// Search routes the query to one in-sync replica per selected
// partition (failing over as needed) and merges the local top-k
// results; with a probe budget it scans score-ordered partitions
// first and prunes the tail it can prove irrelevant (see
// QueryOptions.ProbeBudget).
func (r *Remote) Search(ctx context.Context, q []geo.Point, k int, opt QueryOptions) ([]topk.Item, QueryReport, error) {
	sel, err := selectPartitions(opt.Partitions, r.NumPartitions())
	if err != nil {
		return nil, QueryReport{}, err
	}
	gens := r.Generations()
	start := time.Now()
	var report QueryReport
	items, err := r.searchBudgeted(ctx, q, k, opt, sel, &report)
	report.finish(start)
	report.Generations = gens
	report.CacheEligible = len(opt.Partitions) == 0 && len(report.SkippedPartitions) == 0
	report.IndexBytes = r.PartitionIndexBytes()
	if err != nil {
		return nil, report, err
	}
	return items, report, nil
}

// searchBudgeted is the Remote half of the probe-budget search; the
// admissibility argument is the same as Local.searchBudgeted's.
func (r *Remote) searchBudgeted(ctx context.Context, q []geo.Point, k int, opt QueryOptions, sel []int, report *QueryReport) ([]topk.Item, error) {
	budget := opt.ProbeBudget
	if budget <= 0 || budget >= len(sel) {
		lists, times, refined, err := r.searchWave(ctx, q, k, opt, sel)
		if err != nil {
			return nil, err
		}
		report.PartitionTimes = times
		items := mergeDedup(k, lists)
		r.loads.recordWave(sel, lists, refined, times, items)
		return items, nil
	}
	order := r.loads.order(sel)
	head, tail := order[:budget], order[budget:]
	lists, times, refined, err := r.searchWave(ctx, q, k, opt, head)
	report.ProbedPartitions = append([]int(nil), head...)
	report.PartitionTimes = times
	if err != nil {
		return nil, err
	}
	items := mergeDedup(k, lists)
	r.loads.recordWave(head, lists, refined, times, items)
	if opt.BestEffort {
		report.SkippedPartitions = append([]int(nil), tail...)
		return items, nil
	}
	dk := math.Inf(1)
	if len(items) >= k {
		dk = items[k-1].Dist
	}
	bounds, err := r.boundWave(ctx, q, opt, tail)
	if err != nil {
		if ctx.Err() != nil || r.closed.Load() {
			return nil, err
		}
		// The bound wave is an optimization, not a correctness step: a
		// partition we could not bound proves nothing either way.
		// Conservatively treat the whole tail as survivors and scan it
		// — zero bounds never prune, the answer stays exact, and a
		// genuinely unreachable partition still fails the query
		// through the search wave itself.
		bounds = make([]float64, len(tail))
	}
	var survivors []int
	for i, pid := range tail {
		if bounds[i] > dk {
			report.PrunedPartitions = append(report.PrunedPartitions, pid)
			continue
		}
		survivors = append(survivors, pid)
	}
	if len(survivors) == 0 {
		return items, nil
	}
	lists2, times2, refined2, err := r.searchWave(ctx, q, k, opt, survivors)
	report.ProbedPartitions = append(report.ProbedPartitions, survivors...)
	report.PartitionTimes = append(report.PartitionTimes, times2...)
	if err != nil {
		return nil, err
	}
	items = mergeDedup(k, append(lists, lists2...))
	r.loads.recordWave(survivors, lists2, refined2, times2, items)
	return items, nil
}

// searchWave scatters one Worker.Search round over pids and returns
// each partition's result list, scan time, and refine count, indexed
// like pids.
func (r *Remote) searchWave(ctx context.Context, q []geo.Point, k int, opt QueryOptions, pids []int) ([][]topk.Item, []time.Duration, []int64, error) {
	replies, err := r.scatter(ctx, pids, opt.MinGens, callSpec{
		method: "Worker.Search",
		makeArgs: func(h QueryHeader, pids []int) any {
			return &SearchArgs{QueryHeader: h, Query: q, K: k, NoPivots: opt.NoPivots, RefineWorkers: opt.RefineWorkers, Refine: opt.Refine}
		},
		newReply: func() any { return new(SearchReply) },
	})
	if err != nil {
		return nil, nil, nil, err
	}
	lists := make([][]topk.Item, len(pids))
	times := make([]time.Duration, len(pids))
	refined := make([]int64, len(pids))
	pos := make(map[int]int, len(pids))
	for i, pid := range pids {
		pos[pid] = i
	}
	for _, pr := range replies {
		rep := pr.reply.(*SearchReply)
		for pid, its := range rep.PartItems {
			if i, ok := pos[pid]; ok {
				lists[i] = its
			}
		}
		for pid, nanos := range rep.PartNanos {
			if i, ok := pos[pid]; ok {
				times[i] = time.Duration(nanos)
			}
		}
		for pid, n := range rep.PartRefined {
			if i, ok := pos[pid]; ok {
				refined[i] = n
			}
		}
	}
	return lists, times, refined, nil
}

// boundWave collects the admissible lower bounds for pids, one
// Worker.Bound round over the same failover scatter as a search. A
// partition the replies do not cover reports 0 (never pruned).
func (r *Remote) boundWave(ctx context.Context, q []geo.Point, opt QueryOptions, pids []int) ([]float64, error) {
	if len(pids) == 0 {
		return nil, nil
	}
	replies, err := r.scatter(ctx, pids, opt.MinGens, callSpec{
		method: "Worker.Bound",
		makeArgs: func(h QueryHeader, _ []int) any {
			return &BoundArgs{QueryHeader: h, Query: q, NoPivots: opt.NoPivots, Refine: opt.Refine}
		},
		newReply: func() any { return new(BoundReply) },
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(pids))
	pos := make(map[int]int, len(pids))
	for i, pid := range pids {
		pos[pid] = i
	}
	for _, pr := range replies {
		for pid, b := range pr.reply.(*BoundReply).Bounds {
			if i, ok := pos[pid]; ok {
				out[i] = b
			}
		}
	}
	return out, nil
}

// Generations implements Engine: a copy of the authoritative
// generation vector (curGen — the newest generation any replica
// acknowledged per partition). Replicas behind it never serve reads,
// so it is a valid answer floor for queries dispatched afterwards.
func (r *Remote) Generations() []uint64 {
	r.genMu.Lock()
	defer r.genMu.Unlock()
	return append([]uint64(nil), r.curGen...)
}

// SearchRadius routes the range query to one in-sync replica per
// selected partition and merges the in-range trajectories, ascending
// by (distance, id).
func (r *Remote) SearchRadius(ctx context.Context, q []geo.Point, radius float64, opt QueryOptions) ([]topk.Item, QueryReport, error) {
	// Radius queries have no probe-budget phase: neutralize the
	// top-k-only fields so they can neither alter execution nor leak
	// into the eligibility accounting below.
	opt.ProbeBudget, opt.BestEffort = 0, false
	sel, err := selectPartitions(opt.Partitions, r.NumPartitions())
	if err != nil {
		return nil, QueryReport{}, err
	}
	gens := r.Generations()
	start := time.Now()
	replies, err := r.scatter(ctx, sel, opt.MinGens, callSpec{
		method: "Worker.SearchRadius",
		makeArgs: func(h QueryHeader, pids []int) any {
			return &RadiusArgs{QueryHeader: h, Query: q, Radius: radius, NoPivots: opt.NoPivots, RefineWorkers: opt.RefineWorkers, Refine: opt.Refine}
		},
		newReply: func() any { return new(RadiusReply) },
	})
	if err != nil {
		return nil, QueryReport{}, err
	}
	var report QueryReport
	var out []topk.Item
	for _, pr := range replies {
		rep := pr.reply.(*RadiusReply)
		out = append(out, rep.Items...)
		for _, nanos := range rep.PartNanos {
			report.PartitionTimes = append(report.PartitionTimes, time.Duration(nanos))
		}
	}
	report.finish(start)
	report.Generations = gens
	report.CacheEligible = len(opt.Partitions) == 0 && len(report.SkippedPartitions) == 0
	report.IndexBytes = r.PartitionIndexBytes()
	topk.SortItems(out)
	return dedupItems(out), report, nil
}

// SearchBatch routes the whole batch to one in-sync replica per
// selected partition and merges the per-query local top-k lists.
func (r *Remote) SearchBatch(ctx context.Context, qs [][]geo.Point, k int, opt QueryOptions) ([][]topk.Item, BatchReport, error) {
	report := BatchReport{PerQuery: make([]time.Duration, len(qs))}
	if len(qs) == 0 {
		return nil, report, nil
	}
	sel, err := selectPartitions(opt.Partitions, r.NumPartitions())
	if err != nil {
		return nil, report, err
	}
	start := time.Now()
	replies, err := r.scatter(ctx, sel, opt.MinGens, callSpec{
		method: "Worker.SearchBatch",
		makeArgs: func(h QueryHeader, pids []int) any {
			return &SearchBatchArgs{QueryHeader: h, Queries: qs, K: k, NoPivots: opt.NoPivots, RefineWorkers: opt.RefineWorkers, Refine: opt.Refine}
		},
		newReply: func() any { return new(SearchBatchReply) },
	})
	if err != nil {
		return nil, report, err
	}
	out := make([][]topk.Item, len(qs))
	for qi := range qs {
		var lists [][]topk.Item
		for _, pr := range replies {
			rep := pr.reply.(*SearchBatchReply)
			if qi < len(rep.Items) {
				lists = append(lists, rep.Items[qi])
			}
			if qi < len(rep.PerQueryNanos) {
				if d := time.Duration(rep.PerQueryNanos[qi]); d > report.PerQuery[qi] {
					report.PerQuery[qi] = d
				}
			}
		}
		out[qi] = mergeDedup(k, lists)
	}
	for _, pr := range replies {
		report.TotalWork += time.Duration(pr.reply.(*SearchBatchReply).TotalWorkNanos)
	}
	report.Makespan = time.Since(start)
	return out, report, nil
}

// BuildTime returns the wall time of the distributed build.
func (r *Remote) BuildTime() time.Duration { return r.buildTime }

// Len returns the total number of indexed trajectories.
func (r *Remote) Len() int {
	r.genMu.Lock()
	defer r.genMu.Unlock()
	n := int64(0)
	for i := range r.partLen {
		n += r.partLen[i].Load()
	}
	return int(n)
}

// IndexSizeBytes sums the reported index footprints, one replica per
// partition — the logical index size. Physical cluster memory is
// replicas times this.
func (r *Remote) IndexSizeBytes() int {
	sz := 0
	for _, b := range r.PartitionIndexBytes() {
		sz += b
	}
	return sz
}

// PartitionIndexBytes reports each partition's index footprint as
// declared by its primary replica at build (or split) time, indexed
// by partition id. Online mutations are not reflected until a
// rebuild.
func (r *Remote) PartitionIndexBytes() []int {
	r.genMu.Lock()
	defer r.genMu.Unlock()
	return append([]int(nil), r.partSizes...)
}

// NumPartitions returns the partition count (splits grow it).
func (r *Remote) NumPartitions() int {
	r.genMu.Lock()
	defer r.genMu.Unlock()
	return len(r.owners)
}

// LoadStats reports the per-partition load profile the driver has
// accumulated — query counts, refine ops, p99 scan latency, and the
// learned reward-per-probe score the probe budget orders by.
func (r *Remote) LoadStats() []PartitionLoad {
	if r.loads == nil {
		return nil
	}
	return r.loads.snapshot()
}

// Replicas returns the replication factor partitions were placed with.
func (r *Remote) Replicas() int { return r.replicas }

// Close stops the background prober and releases all worker
// connections (the workers keep running). Safe to call concurrently
// with in-flight queries, which fail fast once the clients are gone.
func (r *Remote) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	close(r.probeStop)
	r.probeWG.Wait()
	var first error
	for _, s := range r.slots {
		s.mu.Lock()
		c := s.client
		s.client = nil
		s.mu.Unlock()
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
