package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repose/internal/geo"
	"repose/internal/topk"
)

// The RPC transport simulates the paper's multi-node deployment on
// one machine: worker processes own partitions, the driver ships
// trajectories + an IndexSpec at build time and broadcasts queries,
// and each worker returns its merged local top-k. Everything is
// stdlib net/rpc with gob encoding.
//
// Protocol v2 adds a version handshake, radius and batch search
// endpoints, and per-query cancellation: every query carries a
// salted unique ID plus an optional time budget, and the driver
// fires Worker.Cancel for in-flight IDs when its context is
// cancelled, so a straggler worker stops computing instead of
// burning cores on an answer nobody is waiting for.
//
// Protocol v3 adds online index maintenance: Insert/Delete/Compact
// endpoints targeting one partition (the driver routes; workers
// apply), and per-partition generation pins in the query header so a
// driver can demand read-your-writes snapshots.

// ProtocolVersion is the driver↔worker wire protocol version. The
// worker rejects requests from a driver speaking a different version
// rather than mis-decoding them.
const ProtocolVersion = 3

// checkVersion rejects a peer speaking a different protocol version.
func checkVersion(v int) error {
	if v != ProtocolVersion {
		return fmt.Errorf("cluster: protocol version mismatch: peer speaks v%d, this build speaks v%d", v, ProtocolVersion)
	}
	return nil
}

// HandshakeArgs announces the driver's protocol version.
type HandshakeArgs struct {
	Version int
}

// HandshakeReply reports the worker's protocol version.
type HandshakeReply struct {
	Version int
}

// BuildArgs ships one partition to a worker.
type BuildArgs struct {
	Version      int
	PartitionID  int
	Spec         IndexSpec
	Trajectories []*geo.Trajectory
}

// BuildReply reports the built partition index.
type BuildReply struct {
	SizeBytes  int
	Len        int
	BuildNanos int64
}

// QueryHeader is the common preamble of every v2 query RPC.
type QueryHeader struct {
	Version int
	// ID identifies the query; Worker.Cancel aborts the in-flight
	// query carrying it. Drivers salt their ids with random high
	// bits so concurrent drivers sharing a worker do not collide.
	// 0 means not cancellable.
	ID uint64
	// BudgetNanos is the time remaining until the driver context's
	// deadline when the query was sent (0 = none, negative =
	// already expired). A relative budget rather than an absolute
	// timestamp: worker clocks may be skewed from the driver's. The
	// worker aborts on its own once the budget is spent, even if
	// the cancel RPC never arrives.
	BudgetNanos int64
	// Partitions restricts the query to these partition ids
	// (deduplicated by the driver); the worker intersects it with
	// the partitions it owns. nil = all.
	Partitions []int
	// MinGens pins the query per global partition id; see
	// QueryOptions.MinGens.
	MinGens []uint64
}

// SearchArgs broadcasts a top-k query.
type SearchArgs struct {
	QueryHeader
	Query         []geo.Point
	K             int
	NoPivots      bool
	RefineWorkers int
}

// SearchReply carries a worker's merged local top-k and per-partition
// timings keyed by partition id.
type SearchReply struct {
	Items      []topk.Item
	PartNanos  map[int]int64
	Partitions []int
}

// RadiusArgs broadcasts a range query.
type RadiusArgs struct {
	QueryHeader
	Query         []geo.Point
	Radius        float64
	NoPivots      bool
	RefineWorkers int
}

// RadiusReply carries every in-range trajectory of the worker's
// partitions (each worker's list arrives sorted; the driver re-sorts
// the concatenated global merge).
type RadiusReply struct {
	Items      []topk.Item
	PartNanos  map[int]int64
	Partitions []int
}

// SearchBatchArgs broadcasts a whole query batch.
type SearchBatchArgs struct {
	QueryHeader
	Queries       [][]geo.Point
	K             int
	NoPivots      bool
	RefineWorkers int
}

// SearchBatchReply carries the worker's per-query merged local top-k
// lists, indexed like the queries. PerQueryNanos is each query's
// completion offset from the worker's batch start (including
// intra-worker queuing); the driver reports the max across workers,
// so cross-worker RPC arrival skew is the only slack versus the
// local engine's from-batch-start semantics.
type SearchBatchReply struct {
	Items          [][]topk.Item
	PerQueryNanos  []int64
	TotalWorkNanos int64
}

// CancelArgs aborts the in-flight query with the given id.
type CancelArgs struct {
	ID uint64
}

// InsertArgs applies pending inserts to one partition the worker
// owns. The driver routes and validates; the worker only applies.
// With Replace set the trajectories upsert (live ids are replaced in
// one snapshot-atomic swap) instead of strictly inserting.
type InsertArgs struct {
	Version      int
	PartitionID  int
	Trajectories []*geo.Trajectory
	Replace      bool
	AutoCompact  float64
}

// InsertReply reports the partition's post-insert state.
type InsertReply struct {
	Gen uint64
	Len int
}

// DeleteArgs removes ids from one partition the worker owns.
type DeleteArgs struct {
	Version     int
	PartitionID int
	IDs         []int
	AutoCompact float64
}

// DeleteReply reports how many ids were live and the partition's
// post-delete state.
type DeleteReply struct {
	Removed int
	Gen     uint64
	Len     int
}

// CompactArgs folds the pending deltas of the selected partitions the
// worker owns (nil = all owned).
type CompactArgs struct {
	Version    int
	Partitions []int
}

// CompactReply carries the compacted partitions' new generations.
type CompactReply struct {
	Gens map[int]uint64
}

// ClearArgs empties a worker between experiments.
type ClearArgs struct {
	Version int
}

// Worker is the RPC service hosted by a worker process.
type Worker struct {
	mu       sync.Mutex
	indexes  map[int]LocalIndex
	inflight map[uint64]context.CancelFunc
	// cancelled holds ids whose Worker.Cancel arrived before the
	// query registered (net/rpc runs handlers concurrently, so the
	// race is inherent); queryContext consumes the tombstone and
	// starts the query already cancelled. cancelledQ bounds the set:
	// a tombstone for a query that already finished is never
	// consumed and must not accumulate.
	cancelled  map[uint64]struct{}
	cancelledQ []uint64
}

// maxPendingCancels bounds the early-cancel tombstone set.
const maxPendingCancels = 1024

// NewWorker returns an empty worker service.
func NewWorker() *Worker {
	return &Worker{
		indexes:   make(map[int]LocalIndex),
		inflight:  make(map[uint64]context.CancelFunc),
		cancelled: make(map[uint64]struct{}),
	}
}

// Handshake verifies the driver and worker speak the same protocol.
func (w *Worker) Handshake(args *HandshakeArgs, reply *HandshakeReply) error {
	reply.Version = ProtocolVersion
	return checkVersion(args.Version)
}

// Build constructs the index for one partition.
func (w *Worker) Build(args *BuildArgs, reply *BuildReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	start := time.Now()
	idx, err := args.Spec.BuildLocal(args.Trajectories)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.indexes[args.PartitionID] = idx
	w.mu.Unlock()
	reply.SizeBytes = idx.SizeBytes()
	reply.Len = idx.Len()
	reply.BuildNanos = time.Since(start).Nanoseconds()
	return nil
}

// view snapshots the worker's indexes for the selected partitions (in
// ascending partition-id order) as a query-ready Local.
func (w *Worker) view(subset []int) (*Local, []int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.indexes) == 0 {
		return nil, nil, errors.New("cluster: worker has no partitions")
	}
	var pids []int
	if len(subset) == 0 {
		for id := range w.indexes {
			pids = append(pids, id)
		}
	} else {
		// Defensive dedup: a duplicated id must not double-count a
		// partition's results.
		seen := make(map[int]bool, len(subset))
		for _, id := range subset {
			if _, ok := w.indexes[id]; ok && !seen[id] {
				seen[id] = true
				pids = append(pids, id)
			}
		}
	}
	sort.Ints(pids)
	indexes := make([]LocalIndex, len(pids))
	for i, id := range pids {
		indexes[i] = w.indexes[id]
	}
	return localView(indexes, pids, 0), pids, nil
}

// queryContext derives the query's context from the wire header and
// registers it for Worker.Cancel. The returned stop func must be
// called when the query finishes.
func (w *Worker) queryContext(h QueryHeader) (context.Context, func()) {
	var ctx context.Context
	var cancel context.CancelFunc
	if h.BudgetNanos != 0 {
		// A non-positive budget yields an already-expired context.
		ctx, cancel = context.WithTimeout(context.Background(), time.Duration(h.BudgetNanos))
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	if h.ID != 0 {
		w.mu.Lock()
		if _, early := w.cancelled[h.ID]; early {
			// The cancel won the race with registration: start the
			// query already aborted.
			delete(w.cancelled, h.ID)
			cancel()
		} else {
			w.inflight[h.ID] = cancel
		}
		w.mu.Unlock()
	}
	return ctx, func() {
		if h.ID != 0 {
			w.mu.Lock()
			delete(w.inflight, h.ID)
			w.mu.Unlock()
		}
		cancel()
	}
}

// Cancel aborts the in-flight query with args.ID. An id not yet
// registered is remembered as a tombstone so a query racing its own
// cancel still aborts; the query may also simply have finished first.
func (w *Worker) Cancel(args *CancelArgs, _ *struct{}) error {
	if args.ID == 0 {
		return nil
	}
	w.mu.Lock()
	cancel := w.inflight[args.ID]
	if cancel == nil {
		if _, ok := w.cancelled[args.ID]; !ok {
			w.cancelled[args.ID] = struct{}{}
			w.cancelledQ = append(w.cancelledQ, args.ID)
			if len(w.cancelledQ) > maxPendingCancels {
				delete(w.cancelled, w.cancelledQ[0])
				w.cancelledQ = w.cancelledQ[1:]
			}
		}
	}
	w.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// partNanos re-keys a view's positional partition timings by
// partition id.
func partNanos(pids []int, rep QueryReport) map[int]int64 {
	out := make(map[int]int64, len(pids))
	for i, d := range rep.PartitionTimes {
		out[pids[i]] = d.Nanoseconds()
	}
	return out
}

// Search answers the query over the selected partitions this worker
// owns and merges them into one local top-k.
func (w *Worker) Search(args *SearchArgs, reply *SearchReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	ctx, stop := w.queryContext(args.QueryHeader)
	defer stop()
	view, pids, err := w.view(args.Partitions)
	if err != nil {
		return err
	}
	items, rep, err := view.Search(ctx, args.Query, args.K, QueryOptions{NoPivots: args.NoPivots, RefineWorkers: args.RefineWorkers, MinGens: args.MinGens})
	if err != nil {
		return err
	}
	reply.Items = items
	reply.PartNanos = partNanos(pids, rep)
	reply.Partitions = pids
	return nil
}

// SearchRadius answers the range query over the selected partitions
// this worker owns.
func (w *Worker) SearchRadius(args *RadiusArgs, reply *RadiusReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	ctx, stop := w.queryContext(args.QueryHeader)
	defer stop()
	view, pids, err := w.view(args.Partitions)
	if err != nil {
		return err
	}
	items, rep, err := view.SearchRadius(ctx, args.Query, args.Radius, QueryOptions{NoPivots: args.NoPivots, RefineWorkers: args.RefineWorkers, MinGens: args.MinGens})
	if err != nil {
		return err
	}
	reply.Items = items
	reply.PartNanos = partNanos(pids, rep)
	reply.Partitions = pids
	return nil
}

// SearchBatch answers the whole batch over the selected partitions
// this worker owns, one merged local top-k per query.
func (w *Worker) SearchBatch(args *SearchBatchArgs, reply *SearchBatchReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	ctx, stop := w.queryContext(args.QueryHeader)
	defer stop()
	view, _, err := w.view(args.Partitions)
	if err != nil {
		return err
	}
	items, rep, err := view.SearchBatch(ctx, args.Queries, args.K, QueryOptions{NoPivots: args.NoPivots, RefineWorkers: args.RefineWorkers, MinGens: args.MinGens})
	if err != nil {
		return err
	}
	reply.Items = items
	reply.PerQueryNanos = make([]int64, len(rep.PerQuery))
	for i, d := range rep.PerQuery {
		reply.PerQueryNanos[i] = d.Nanoseconds()
	}
	reply.TotalWorkNanos = rep.TotalWork.Nanoseconds()
	return nil
}

// ownedMutable resolves one owned partition's index as mutable.
func (w *Worker) ownedMutable(pid int) (MutableIndex, LocalIndex, error) {
	w.mu.Lock()
	idx := w.indexes[pid]
	w.mu.Unlock()
	if idx == nil {
		return nil, nil, fmt.Errorf("cluster: worker does not own partition %d", pid)
	}
	m, ok := idx.(MutableIndex)
	if !ok {
		return nil, nil, fmt.Errorf("%w (partition %d, %T)", ErrImmutable, pid, idx)
	}
	return m, idx, nil
}

// Insert applies pending inserts (or, with Replace, upserts) to one
// owned partition.
func (w *Worker) Insert(args *InsertArgs, reply *InsertReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	m, li, err := w.ownedMutable(args.PartitionID)
	if err != nil {
		return err
	}
	if args.Replace {
		err = m.Upsert(args.Trajectories...)
	} else {
		err = m.Insert(args.Trajectories...)
	}
	if err != nil {
		return err
	}
	if err := maybeCompact(m, li, args.AutoCompact); err != nil {
		return err
	}
	reply.Gen = m.Generation()
	reply.Len = li.Len()
	return nil
}

// Delete removes ids from one owned partition.
func (w *Worker) Delete(args *DeleteArgs, reply *DeleteReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	m, li, err := w.ownedMutable(args.PartitionID)
	if err != nil {
		return err
	}
	reply.Removed = m.Delete(args.IDs...)
	if err := maybeCompact(m, li, args.AutoCompact); err != nil {
		return err
	}
	reply.Gen = m.Generation()
	reply.Len = li.Len()
	return nil
}

// Compact folds the pending deltas of the selected owned partitions.
func (w *Worker) Compact(args *CompactArgs, reply *CompactReply) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	w.mu.Lock()
	var pids []int
	if len(args.Partitions) == 0 {
		for pid := range w.indexes {
			pids = append(pids, pid)
		}
	} else {
		for _, pid := range args.Partitions {
			if _, ok := w.indexes[pid]; ok {
				pids = append(pids, pid)
			}
		}
	}
	w.mu.Unlock()
	sort.Ints(pids)
	reply.Gens = make(map[int]uint64, len(pids))
	for _, pid := range pids {
		m, _, err := w.ownedMutable(pid)
		if err != nil {
			return err
		}
		if err := m.Compact(); err != nil {
			return err
		}
		reply.Gens[pid] = m.Generation()
	}
	return nil
}

// Clear drops all partitions.
func (w *Worker) Clear(args *ClearArgs, _ *struct{}) error {
	if err := checkVersion(args.Version); err != nil {
		return err
	}
	w.mu.Lock()
	w.indexes = make(map[int]LocalIndex)
	w.mu.Unlock()
	return nil
}

// Ping checks liveness.
func (w *Worker) Ping(_ *struct{}, ok *bool) error {
	*ok = true
	return nil
}

// Serve accepts RPC connections on ln until the listener closes.
// It always returns a non-nil error (from Accept).
func Serve(ln net.Listener, w *Worker) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", w); err != nil {
		return err
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// Remote is the driver side of the multi-process engine.
type Remote struct {
	connMu    sync.RWMutex
	clients   []*rpc.Client // nil after Close
	addrs     []string
	owner     map[int]int // partition → client index
	buildTime time.Duration
	sizeBytes int
	// partLen holds each partition's live trajectory count as last
	// reported by its worker (build reply, then every mutation
	// reply). Worker-authoritative numbers rather than driver-side
	// arithmetic: a mutation whose outcome was unknown leaves the
	// count stale only until the next successful mutation on that
	// partition refreshes it.
	partLen []atomic.Int64
	qidSalt uint64 // random high bits distinguishing this driver
	qid     atomic.Uint64
	dir     *directory // online-mutation routing, driver side
}

// BuildRemote dials the worker addresses, verifies the protocol
// handshake, deals partitions round-robin across the workers, and
// builds all partition indexes in parallel.
func BuildRemote(spec IndexSpec, parts [][]*geo.Trajectory, addrs []string) (*Remote, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no worker addresses")
	}
	r := &Remote{owner: make(map[int]int), addrs: addrs, qidSalt: uint64(rand.Uint32()) << 32}
	for _, addr := range addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		r.clients = append(r.clients, c)
	}
	for i, c := range r.clients {
		var hr HandshakeReply
		if err := c.Call("Worker.Handshake", &HandshakeArgs{Version: ProtocolVersion}, &hr); err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: handshake with %s: %w", r.addrs[i], err)
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(parts))
	replies := make([]BuildReply, len(parts))
	for pid, part := range parts {
		ci := pid % len(r.clients)
		r.owner[pid] = ci
		wg.Add(1)
		go func(pid, ci int, part []*geo.Trajectory) {
			defer wg.Done()
			args := &BuildArgs{Version: ProtocolVersion, PartitionID: pid, Spec: spec, Trajectories: part}
			errs[pid] = r.clients[ci].Call("Worker.Build", args, &replies[pid])
		}(pid, ci, part)
	}
	wg.Wait()
	for pid, err := range errs {
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: build partition %d: %w", pid, err)
		}
	}
	r.partLen = make([]atomic.Int64, len(parts))
	for pid, rep := range replies {
		r.sizeBytes += rep.SizeBytes
		r.partLen[pid].Store(int64(rep.Len))
	}
	r.buildTime = time.Since(start)
	r.dir = newDirectory(spec, parts)
	return r, nil
}

// subset validates and dedups a partition restriction for the wire;
// nil keeps the broadcast meaning "all partitions".
func (r *Remote) subset(partitions []int) ([]int, error) {
	if len(partitions) == 0 {
		return nil, nil
	}
	return selectPartitions(partitions, r.NumPartitions())
}

// header prepares the common query preamble for one broadcast.
func (r *Remote) header(ctx context.Context, partitions []int, minGens []uint64) QueryHeader {
	h := QueryHeader{
		Version:    ProtocolVersion,
		ID:         r.qidSalt | r.qid.Add(1),
		Partitions: partitions,
		MinGens:    minGens,
	}
	if deadline, ok := ctx.Deadline(); ok {
		h.BudgetNanos = int64(time.Until(deadline))
		if h.BudgetNanos == 0 {
			h.BudgetNanos = -1
		}
	}
	return h
}

// ErrClosed reports a query issued after the engine released its
// worker connections.
var ErrClosed = errors.New("cluster: engine closed")

// conns snapshots the client list; it is empty once Close ran.
func (r *Remote) conns() []*rpc.Client {
	r.connMu.RLock()
	defer r.connMu.RUnlock()
	return r.clients
}

// targets resolves which client indices own at least one selected
// partition; a nil/empty subset selects every partition. Clients
// holding no partition at all (more workers than partitions) are
// never queried — a worker rejects a query when it owns nothing. The
// owner map is immutable after build, so no locking is needed.
func (r *Remote) targets(sub []int) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(ci int) {
		if !seen[ci] {
			seen[ci] = true
			out = append(out, ci)
		}
	}
	if len(sub) == 0 {
		for _, ci := range r.owner {
			add(ci)
		}
	} else {
		for _, pid := range sub {
			add(r.owner[pid])
		}
	}
	sort.Ints(out)
	return out
}

// cancelGrace bounds how long a cancelled query waits for a worker's
// reply after firing Worker.Cancel before abandoning the in-flight
// call. A responsive worker aborts within milliseconds; a hung or
// partitioned one must not block the driver past its deadline.
const cancelGrace = 500 * time.Millisecond

// callAll invokes method on the targeted workers concurrently (a
// partition-restricted query is routed only to the clients owning the
// selection). When ctx is cancelled before a worker replies, a
// best-effort Worker.Cancel for the query id is fired and the
// in-flight call is awaited briefly — a live worker aborts promptly
// through its own context — then abandoned, so a hung worker cannot
// block the driver past its deadline (net/rpc delivers the eventual
// reply into the call's buffered channel; nothing leaks).
func (r *Remote) callAll(ctx context.Context, method string, id uint64, sub []int, args any, reply func(i int) any) error {
	if err := ctx.Err(); err != nil {
		// Already cancelled: skip serializing and shipping payloads.
		return fmt.Errorf("cluster: %s: %w", method, err)
	}
	clients := r.conns()
	if len(clients) == 0 {
		return ErrClosed
	}
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for _, i := range r.targets(sub) {
		c := clients[i]
		wg.Add(1)
		go func(i int, c *rpc.Client) {
			defer wg.Done()
			call := c.Go(method, args, reply(i), make(chan *rpc.Call, 1))
			select {
			case <-call.Done:
			case <-ctx.Done():
				c.Go("Worker.Cancel", &CancelArgs{ID: id}, &struct{}{}, make(chan *rpc.Call, 1))
				select {
				case <-call.Done:
				case <-time.After(cancelGrace):
					errs[i] = fmt.Errorf("cluster: %s on %s abandoned after cancel: %w", method, r.addrs[i], ctx.Err())
					return
				}
			}
			errs[i] = call.Error
		}(i, c)
	}
	wg.Wait()
	if ctxErr := ctx.Err(); ctxErr != nil {
		// Prefer the abandoned-call diagnostic (it names the hung
		// worker and wraps ctxErr, so errors.Is still matches).
		for _, err := range errs {
			if err != nil && errors.Is(err, ctxErr) {
				return err
			}
		}
		return fmt.Errorf("cluster: %s: %w", method, ctxErr)
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: %s on %s: %w", method, r.addrs[i], err)
		}
	}
	return nil
}

// Search broadcasts the query to all workers and merges their local
// top-k results.
func (r *Remote) Search(ctx context.Context, q []geo.Point, k int, opt QueryOptions) ([]topk.Item, QueryReport, error) {
	sub, err := r.subset(opt.Partitions)
	if err != nil {
		return nil, QueryReport{}, err
	}
	start := time.Now()
	h := r.header(ctx, sub, opt.MinGens)
	args := &SearchArgs{QueryHeader: h, Query: q, K: k, NoPivots: opt.NoPivots, RefineWorkers: opt.RefineWorkers}
	replies := make([]SearchReply, len(r.conns()))
	if err := r.callAll(ctx, "Worker.Search", h.ID, sub, args, func(i int) any { return &replies[i] }); err != nil {
		return nil, QueryReport{}, err
	}
	var report QueryReport
	var lists [][]topk.Item
	for i := range replies {
		lists = append(lists, replies[i].Items)
		for _, nanos := range replies[i].PartNanos {
			report.PartitionTimes = append(report.PartitionTimes, time.Duration(nanos))
		}
	}
	report.finish(start)
	return topk.Merge(k, lists...), report, nil
}

// SearchRadius broadcasts the range query to all workers and merges
// their in-range trajectories, ascending by (distance, id).
func (r *Remote) SearchRadius(ctx context.Context, q []geo.Point, radius float64, opt QueryOptions) ([]topk.Item, QueryReport, error) {
	sub, err := r.subset(opt.Partitions)
	if err != nil {
		return nil, QueryReport{}, err
	}
	start := time.Now()
	h := r.header(ctx, sub, opt.MinGens)
	args := &RadiusArgs{QueryHeader: h, Query: q, Radius: radius, NoPivots: opt.NoPivots, RefineWorkers: opt.RefineWorkers}
	replies := make([]RadiusReply, len(r.conns()))
	if err := r.callAll(ctx, "Worker.SearchRadius", h.ID, sub, args, func(i int) any { return &replies[i] }); err != nil {
		return nil, QueryReport{}, err
	}
	var report QueryReport
	var out []topk.Item
	for i := range replies {
		out = append(out, replies[i].Items...)
		for _, nanos := range replies[i].PartNanos {
			report.PartitionTimes = append(report.PartitionTimes, time.Duration(nanos))
		}
	}
	report.finish(start)
	topk.SortItems(out)
	return out, report, nil
}

// SearchBatch broadcasts the whole batch to all workers and merges
// their per-query local top-k lists.
func (r *Remote) SearchBatch(ctx context.Context, qs [][]geo.Point, k int, opt QueryOptions) ([][]topk.Item, BatchReport, error) {
	report := BatchReport{PerQuery: make([]time.Duration, len(qs))}
	if len(qs) == 0 {
		return nil, report, nil
	}
	sub, err := r.subset(opt.Partitions)
	if err != nil {
		return nil, report, err
	}
	start := time.Now()
	h := r.header(ctx, sub, opt.MinGens)
	args := &SearchBatchArgs{QueryHeader: h, Queries: qs, K: k, NoPivots: opt.NoPivots, RefineWorkers: opt.RefineWorkers}
	replies := make([]SearchBatchReply, len(r.conns()))
	if err := r.callAll(ctx, "Worker.SearchBatch", h.ID, sub, args, func(i int) any { return &replies[i] }); err != nil {
		return nil, report, err
	}
	out := make([][]topk.Item, len(qs))
	for qi := range qs {
		var lists [][]topk.Item
		for i := range replies {
			if qi < len(replies[i].Items) {
				lists = append(lists, replies[i].Items[qi])
			}
			if qi < len(replies[i].PerQueryNanos) {
				if d := time.Duration(replies[i].PerQueryNanos[qi]); d > report.PerQuery[qi] {
					report.PerQuery[qi] = d
				}
			}
		}
		out[qi] = topk.Merge(k, lists...)
	}
	for i := range replies {
		report.TotalWork += time.Duration(replies[i].TotalWorkNanos)
	}
	report.Makespan = time.Since(start)
	return out, report, nil
}

// BuildTime returns the wall time of the distributed build.
func (r *Remote) BuildTime() time.Duration { return r.buildTime }

// Len returns the total number of indexed trajectories.
func (r *Remote) Len() int {
	n := int64(0)
	for i := range r.partLen {
		n += r.partLen[i].Load()
	}
	return int(n)
}

// IndexSizeBytes sums the reported index footprints.
func (r *Remote) IndexSizeBytes() int { return r.sizeBytes }

// NumPartitions returns the partition count.
func (r *Remote) NumPartitions() int { return len(r.owner) }

// Close releases all client connections (the workers keep running).
// Safe to call concurrently with in-flight queries, which fail fast
// once the clients are gone.
func (r *Remote) Close() error {
	r.connMu.Lock()
	clients := r.clients
	r.clients = nil
	r.connMu.Unlock()
	var first error
	for _, c := range clients {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
