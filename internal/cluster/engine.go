package cluster

import (
	"context"
	"fmt"
	"time"

	"repose/internal/geo"
	"repose/internal/rptrie"
	"repose/internal/topk"
)

// Engine is the uniform driver-side query surface over the two
// deployments: in-process partitions on goroutines (Local) and
// partitions owned by worker processes over TCP (Remote). Every query
// method takes a context — cancelling it or letting its deadline pass
// stops partition scans mid-flight on both backends — and a
// QueryOptions modulating the single query.
type Engine interface {
	// Search answers a distributed top-k query, merging per-partition
	// local results (Section V-C), and reports its execution.
	Search(ctx context.Context, q []geo.Point, k int, opt QueryOptions) ([]topk.Item, QueryReport, error)
	// SearchRadius returns every trajectory within radius of q,
	// ascending by (distance, id).
	SearchRadius(ctx context.Context, q []geo.Point, radius float64, opt QueryOptions) ([]topk.Item, QueryReport, error)
	// SearchBatch answers all queries, each over all selected
	// partitions; results are indexed like queries.
	SearchBatch(ctx context.Context, qs [][]geo.Point, k int, opt QueryOptions) ([][]topk.Item, BatchReport, error)
	// Len returns the total number of indexed trajectories.
	Len() int
	// NumPartitions returns the global partition count.
	NumPartitions() int
	// IndexSizeBytes sums the index footprints across partitions.
	IndexSizeBytes() int
	// BuildTime returns the wall time of index construction.
	BuildTime() time.Duration
	// Close releases the engine's resources (for Remote, the worker
	// connections; the workers themselves keep running).
	Close() error
}

var (
	_ Engine = (*Local)(nil)
	_ Engine = (*Remote)(nil)
)

// QueryOptions modulates one query on either engine. The zero value
// queries all partitions with every lower bound enabled.
type QueryOptions struct {
	// Partitions restricts the query to the given partition ids;
	// nil or empty selects all of them.
	Partitions []int
	// NoPivots disables the pivot lower bound (LBp) for this query.
	NoPivots bool
	// RefineWorkers parallelizes exact-distance refinement of fat
	// leaves inside each partition across this many goroutines
	// (values < 2 refine sequentially). Results are identical either
	// way; useful when the query targets few partitions and cores
	// would otherwise idle.
	RefineWorkers int
}

// selectPartitions resolves a partition subset against the engine's
// partition count, deduplicating and rejecting out-of-range ids;
// nil/empty selects every partition.
func selectPartitions(subset []int, n int) ([]int, error) {
	if len(subset) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	seen := make(map[int]bool, len(subset))
	out := make([]int, 0, len(subset))
	for _, p := range subset {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("cluster: partition %d out of range [0, %d)", p, n)
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out, nil
}

// searchOne answers one partition-local top-k query honoring ctx and
// opt. The rptrie layouts cancel mid-scan; the baseline indexes only
// observe the context between partitions.
func searchOne(ctx context.Context, idx LocalIndex, q []geo.Point, k int, opt QueryOptions) ([]topk.Item, error) {
	sopt := rptrie.SearchOptions{NoPivots: opt.NoPivots, RefineWorkers: opt.RefineWorkers}
	switch t := idx.(type) {
	case *rptrie.Trie:
		return t.SearchContext(ctx, q, k, sopt)
	case *rptrie.Succinct:
		return t.SearchContext(ctx, q, k, sopt)
	default:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return idx.Search(q, k), nil
	}
}

// radiusOne answers one partition-local range query. Indexes without
// range support (the baselines and the succinct layout) are rejected,
// naming the partition so mixed-index failures are diagnosable.
func radiusOne(ctx context.Context, pi int, idx LocalIndex, q []geo.Point, radius float64, opt QueryOptions) ([]topk.Item, error) {
	if t, ok := idx.(*rptrie.Trie); ok {
		return t.SearchRadiusContext(ctx, q, radius, rptrie.SearchOptions{NoPivots: opt.NoPivots, RefineWorkers: opt.RefineWorkers})
	}
	if rs, ok := idx.(RadiusSearcher); ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return rs.SearchRadius(q, radius), nil
	}
	return nil, fmt.Errorf("cluster: partition %d index (%T) does not support radius search", pi, idx)
}
