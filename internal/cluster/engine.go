package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repose/internal/geo"
	"repose/internal/rptrie"
	"repose/internal/topk"
)

// Engine is the uniform driver-side query surface over the two
// deployments: in-process partitions on goroutines (Local) and
// partitions owned by worker processes over TCP (Remote). Every query
// method takes a context — cancelling it or letting its deadline pass
// stops partition scans mid-flight on both backends — and a
// QueryOptions modulating the single query.
type Engine interface {
	// Search answers a distributed top-k query, merging per-partition
	// local results (Section V-C), and reports its execution.
	Search(ctx context.Context, q []geo.Point, k int, opt QueryOptions) ([]topk.Item, QueryReport, error)
	// SearchRadius returns every trajectory within radius of q,
	// ascending by (distance, id).
	SearchRadius(ctx context.Context, q []geo.Point, radius float64, opt QueryOptions) ([]topk.Item, QueryReport, error)
	// SearchBatch answers all queries, each over all selected
	// partitions; results are indexed like queries.
	SearchBatch(ctx context.Context, qs [][]geo.Point, k int, opt QueryOptions) ([][]topk.Item, BatchReport, error)
	// Insert routes each trajectory to a partition (see
	// partition.OnlineRouter) and applies it; queries issued after it
	// returns see every inserted trajectory. It returns the new
	// generations of the touched partitions.
	Insert(ctx context.Context, trs []*geo.Trajectory, opt MutateOptions) (Gens, error)
	// Delete removes ids from their owning partitions; queries issued
	// after it returns never see them. It returns how many ids were
	// live and the new generations of the touched partitions.
	Delete(ctx context.Context, ids []int, opt MutateOptions) (int, Gens, error)
	// Upsert inserts trajectories with replace semantics: a live id's
	// replacement goes to its owning partition as one snapshot-atomic
	// swap (no window where the id is absent), a new id routes like
	// an Insert.
	Upsert(ctx context.Context, trs []*geo.Trajectory, opt MutateOptions) (Gens, error)
	// Compact folds every selected partition's pending delta back
	// into its index (nil/empty partitions selects all), returning
	// the new generations of the compacted partitions.
	Compact(ctx context.Context, partitions []int) (Gens, error)
	// Generations snapshots the authoritative per-partition
	// generation vector (indexed by global partition id; immutable
	// partition indexes report 0). Generations only advance, and a
	// mutation's generations are visible here no later than the
	// mutation call returns — the property an answer cache keys on
	// (see QueryReport.Generations).
	Generations() []uint64
	// Len returns the total number of live indexed trajectories.
	Len() int
	// NumPartitions returns the global partition count.
	NumPartitions() int
	// IndexSizeBytes sums the index footprints across partitions.
	IndexSizeBytes() int
	// PartitionIndexBytes reports each partition's index footprint,
	// indexed by global partition id. The local engine reads live
	// values (cached per generation); the remote engine reports the
	// sizes workers declared at build time.
	PartitionIndexBytes() []int
	// BuildTime returns the wall time of index construction.
	BuildTime() time.Duration
	// Close releases the engine's resources (for Remote, the worker
	// connections; the workers themselves keep running).
	Close() error
}

var (
	_ Engine = (*Local)(nil)
	_ Engine = (*Remote)(nil)
)

// QueryOptions modulates one query on either engine. The zero value
// queries all partitions with every lower bound enabled.
type QueryOptions struct {
	// Partitions restricts the query to the given partition ids;
	// nil or empty selects all of them.
	Partitions []int
	// NoPivots disables the pivot lower bound (LBp) for this query.
	NoPivots bool
	// RefineWorkers parallelizes exact-distance refinement of fat
	// leaves inside each partition across this many goroutines
	// (values < 2 refine sequentially). Results are identical either
	// way; useful when the query targets few partitions and cores
	// would otherwise idle.
	RefineWorkers int
	// MinGens pins the query per partition: MinGens[pid], when
	// nonzero, requires partition pid to answer from a snapshot of
	// that generation or newer (rptrie.ErrStale otherwise). A short
	// or nil slice leaves the remaining partitions unpinned. The
	// facade uses this for read-your-writes after mutations.
	MinGens []uint64
	// ProbeBudget, when positive and smaller than the selection,
	// splits a Search into two phases guided by the engine's learned
	// reward-per-probe scores (see loadstats.go): the ProbeBudget
	// highest-scoring partitions are probed first, then every
	// remaining partition is either pruned — its admissible
	// best-possible lower bound already exceeds the k-th distance, so
	// it cannot contribute — or probed as well. Results stay
	// bit-identical to a full scatter. Only Search honors it;
	// SearchRadius and SearchBatch ignore the field.
	ProbeBudget int
	// BestEffort relaxes ProbeBudget's admissibility check: the tail
	// beyond the budget is skipped outright instead of bound-checked,
	// trading exactness for a hard probe cap. Skipped partitions are
	// reported in QueryReport.SkippedPartitions and the answer is not
	// cache-eligible. Ignored without a ProbeBudget.
	BestEffort bool
	// Refine selects a refined query mode — subtrajectory scoring,
	// time-windowed scoring, or both (see rptrie.RefineSpec). The zero
	// value is plain whole-trajectory scoring. Each partition builds
	// its refiner from its own index configuration, so the option only
	// works on rptrie-backed partitions; baselines reject it.
	Refine rptrie.RefineSpec
}

// minGen returns the pin for a global partition id, 0 when unpinned.
func (o QueryOptions) minGen(pid int) uint64 {
	if pid >= 0 && pid < len(o.MinGens) {
		return o.MinGens[pid]
	}
	return 0
}

// MutateOptions modulates one mutation batch on either engine.
type MutateOptions struct {
	// AutoCompact, when positive, compacts any touched partition
	// whose pending delta grew past this fraction of its live
	// trajectory count (and past a small absolute floor) once the
	// mutation is applied — the threshold-triggered form of
	// compaction. Non-positive leaves compaction to Compact calls.
	AutoCompact float64
}

// Gens maps partition id → that partition's index generation after a
// mutation or compaction. Passing a Gens-derived pin back through
// QueryOptions.MinGens guarantees the query observes those mutations.
type Gens map[int]uint64

// MutableIndex is the optional online-maintenance capability of a
// partition index. All rptrie layouts implement it; the baselines do
// not — mutating them fails with ErrImmutable.
type MutableIndex interface {
	Insert(trs ...*geo.Trajectory) error
	Delete(ids ...int) int
	Upsert(trs ...*geo.Trajectory) error
	Compact() error
	Generation() uint64
	DeltaLen() int
}

var (
	_ MutableIndex = (*rptrie.Trie)(nil)
	_ MutableIndex = (*rptrie.Succinct)(nil)
	_ MutableIndex = (*rptrie.Compressed)(nil)
	_ MutableIndex = (*rptrie.Durable)(nil)
)

// ErrImmutable reports a mutation routed to a partition whose index
// type has no online-update support.
var ErrImmutable = errors.New("cluster: partition index does not support online updates")

// ErrDuplicateID reports an Insert of an id that is already live.
var ErrDuplicateID = errors.New("cluster: trajectory id already indexed")

// autoCompactFloor is the smallest pending-delta size worth a
// threshold-triggered compaction; below it the linear delta scan is
// cheaper than any rebuild.
const autoCompactFloor = 32

// maybeCompact applies the MutateOptions.AutoCompact policy to one
// partition index after a mutation.
func maybeCompact(m MutableIndex, li LocalIndex, frac float64) error {
	if frac <= 0 {
		return nil
	}
	dl := m.DeltaLen()
	if dl < autoCompactFloor || float64(dl) <= frac*float64(li.Len()) {
		return nil
	}
	return m.Compact()
}

// selectPartitions resolves a partition subset against the engine's
// partition count, deduplicating and rejecting out-of-range ids;
// nil/empty selects every partition.
func selectPartitions(subset []int, n int) ([]int, error) {
	if len(subset) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	seen := make(map[int]bool, len(subset))
	out := make([]int, 0, len(subset))
	for _, p := range subset {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("cluster: partition %d out of range [0, %d)", p, n)
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out, nil
}

// refinerFor builds opt's refiner for one partition from that
// partition's own index configuration (measure and parameters), or nil
// for the zero spec. Indexes that cannot report a configuration — the
// baselines — cannot host refined queries.
func refinerFor(pi int, idx LocalIndex, spec rptrie.RefineSpec) (rptrie.Refiner, error) {
	if spec.IsZero() {
		return nil, nil
	}
	c, ok := idx.(interface{ Config() rptrie.Config })
	if !ok {
		return nil, fmt.Errorf("cluster: partition %d index (%T) does not support refined queries", pi, idx)
	}
	cfg := c.Config()
	return rptrie.NewRefiner(cfg.Measure, cfg.Params, spec), nil
}

// searchOne answers one partition-local top-k query honoring ctx and
// opt; gpid is the partition's global id (for the generation pin).
// The rptrie layouts cancel mid-scan and fill stats (may be nil); the
// baseline indexes only observe the context between partitions and
// report no stats.
func searchOne(ctx context.Context, gpid int, idx LocalIndex, q []geo.Point, k int, opt QueryOptions, stats *rptrie.SearchStats) ([]topk.Item, error) {
	ref, err := refinerFor(gpid, idx, opt.Refine)
	if err != nil {
		return nil, err
	}
	sopt := rptrie.SearchOptions{NoPivots: opt.NoPivots, RefineWorkers: opt.RefineWorkers, MinGen: opt.minGen(gpid), Stats: stats, Refiner: ref}
	switch t := idx.(type) {
	case *rptrie.Trie:
		return t.SearchContext(ctx, q, k, sopt)
	case *rptrie.Succinct:
		return t.SearchContext(ctx, q, k, sopt)
	case *rptrie.Compressed:
		return t.SearchContext(ctx, q, k, sopt)
	case *rptrie.Durable:
		return t.SearchContext(ctx, q, k, sopt)
	default:
		// Baselines are immutable: generation pins are vacuous.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return idx.Search(q, k), nil
	}
}

// boundOne returns an admissible lower bound on the best distance any
// trajectory in the partition could achieve for q — the probe
// budget's pruning test. The rptrie layouts run a bounded best-first
// walk (BoundContext); indexes without one (the baselines) return 0,
// which never prunes.
func boundOne(ctx context.Context, gpid int, idx LocalIndex, q []geo.Point, opt QueryOptions) (float64, error) {
	b, ok := idx.(interface {
		BoundContext(ctx context.Context, q []geo.Point, opt rptrie.SearchOptions) (float64, error)
	})
	if !ok {
		return 0, nil
	}
	ref, err := refinerFor(gpid, idx, opt.Refine)
	if err != nil {
		return 0, err
	}
	return b.BoundContext(ctx, q, rptrie.SearchOptions{NoPivots: opt.NoPivots, MinGen: opt.minGen(gpid), Refiner: ref})
}

// radiusOne answers one partition-local range query. Indexes without
// range support (the baselines and the succinct layout) are rejected,
// naming the partition so mixed-index failures are diagnosable.
func radiusOne(ctx context.Context, pi, gpid int, idx LocalIndex, q []geo.Point, radius float64, opt QueryOptions) ([]topk.Item, error) {
	ref, err := refinerFor(gpid, idx, opt.Refine)
	if err != nil {
		return nil, err
	}
	sopt := rptrie.SearchOptions{NoPivots: opt.NoPivots, RefineWorkers: opt.RefineWorkers, MinGen: opt.minGen(gpid), Refiner: ref}
	if t, ok := idx.(*rptrie.Trie); ok {
		return t.SearchRadiusContext(ctx, q, radius, sopt)
	}
	if c, ok := idx.(*rptrie.Compressed); ok {
		return c.SearchRadiusContext(ctx, q, radius, sopt)
	}
	if d, ok := idx.(*rptrie.Durable); ok && d.Layout() != rptrie.LayoutSuccinct {
		return d.SearchRadiusContext(ctx, q, radius, sopt)
	}
	if rs, ok := idx.(RadiusSearcher); ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return rs.SearchRadius(q, radius), nil
	}
	return nil, fmt.Errorf("cluster: partition %d index (%T) does not support radius search", pi, idx)
}
