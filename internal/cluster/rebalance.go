package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
)

// Online rebalancing: migrating a hot partition's replica to an
// underloaded worker, and splitting an oversized partition in two —
// both without read downtime.
//
// Why reads stay correct throughout a migration: queries never take
// rebalMu, so they keep scattering while the snapshot streams. Until
// the owner flip, the donor replica serves reads as before; the flip
// replaces (slot, gen) for one replica atomically under genMu, and the
// new replica's generation equals the donor's at snapshot time. Since
// Rebalance holds rebalMu exclusively, no mutation can advance the
// authoritative generation past that snapshot mid-transfer, so the
// receiver installs at gen >= curGen and is immediately eligible —
// read-your-writes pins (MinGen per partition) hold across the flip
// because the restored generation dominates every pin issued before
// the migration began.
//
// Why a split never loses or duplicates an answer: the new partition
// is installed and registered before the source is pruned, so a moved
// trajectory is momentarily indexed in both partitions and never in
// neither; the query merge dedups by id (see mergeDedup), keeping the
// answer canonical through the overlap window.

// rebalanceRatio is the hot/cold load ratio below which Rebalance
// declines to move anything — migrations are not free, and chasing
// small imbalances would thrash.
const rebalanceRatio = 1.5

// RebalanceReport describes one rebalancing decision.
type RebalanceReport struct {
	// Moved reports whether a migration happened; false means the
	// cluster was already balanced (or no movable partition existed).
	Moved     bool
	Partition int    // migrated partition id
	From, To  string // donor and receiver worker addresses
	Gen       uint64 // generation the receiver installed at
}

// Rebalance inspects per-worker load (cumulative scan time of the
// partitions each worker currently serves), and when the hottest
// worker carries at least rebalanceRatio times the coolest one's load,
// migrates the hottest movable partition from the former to the
// latter: snapshot from the donor, restore into the receiver, flip the
// replica's owner slot, then drop the donor's copy. Queries continue
// uninterrupted; mutations are paused for the duration of the
// transfer.
func (r *Remote) Rebalance(ctx context.Context) (RebalanceReport, error) {
	if r.closed.Load() {
		return RebalanceReport{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return RebalanceReport{}, fmt.Errorf("cluster: rebalance: %w", err)
	}
	r.rebalMu.Lock()
	defer r.rebalMu.Unlock()

	loads := r.slotLoads()
	hot, cold := -1, -1
	for si := range r.slots {
		if r.slots[si].down.Load() {
			continue
		}
		if hot < 0 || loads[si] > loads[hot] {
			hot = si
		}
		if cold < 0 || loads[si] < loads[cold] {
			cold = si
		}
	}
	if hot < 0 || cold < 0 || hot == cold {
		return RebalanceReport{}, nil
	}
	if float64(loads[hot]) < rebalanceRatio*float64(loads[cold]) {
		return RebalanceReport{}, nil
	}

	// Pick the hottest partition currently served from the hot slot
	// whose replica can move: the receiver must not already hold a
	// copy (replicas live on distinct workers).
	hotness := r.loads.hotness()
	pid, j := -1, -1
	r.genMu.Lock()
	for p := range r.owners {
		if p >= len(hotness) {
			break
		}
		onCold := false
		for _, si := range r.owners[p] {
			if si == cold {
				onCold = true
				break
			}
		}
		if onCold {
			continue
		}
		srv := -1
		for jj := range r.owners[p] {
			if r.eligibleLocked(p, jj) {
				srv = jj
				break
			}
		}
		if srv < 0 || r.owners[p][srv] != hot {
			continue
		}
		if pid < 0 || hotness[p] > hotness[pid] {
			pid, j = p, srv
		}
	}
	r.genMu.Unlock()
	if pid < 0 {
		return RebalanceReport{}, nil
	}

	donor, target := r.slots[hot].get(), r.slots[cold].get()
	if donor == nil || target == nil {
		return RebalanceReport{}, fmt.Errorf("%w %d", ErrUnavailable, pid)
	}
	var snap SnapshotReply
	if err := r.probeCall(donor, "Worker.Snapshot", &SnapshotArgs{Version: ProtocolVersion, PartitionID: pid}, &snap, restoreTimeout); err != nil {
		return RebalanceReport{}, fmt.Errorf("cluster: rebalance snapshot of partition %d from %s: %w", pid, r.slots[hot].addr, err)
	}
	var rr RestoreReply
	rargs := &RestoreArgs{Version: ProtocolVersion, PartitionID: pid, Layout: snap.Layout, Data: snap.Data}
	if err := r.probeCall(target, "Worker.Restore", rargs, &rr, restoreTimeout); err != nil {
		// The receiver may hold a partial install it does not own;
		// best-effort wipe so a later migration starts clean.
		if c := r.slots[cold].get(); c != nil {
			_ = r.probeCall(c, "Worker.Drop", &DropArgs{Version: ProtocolVersion, PartitionID: pid}, &struct{}{}, restoreTimeout)
		}
		return RebalanceReport{}, fmt.Errorf("cluster: rebalance restore of partition %d into %s: %w", pid, r.slots[cold].addr, err)
	}

	// Flip the replica to its new home. Only Rebalance writes owner
	// slots and it holds rebalMu exclusively, so the slot read above is
	// still current; mutations are paused, so rr.Gen >= curGen[pid] and
	// the receiver is immediately eligible.
	r.genMu.Lock()
	r.owners[pid][j] = cold
	r.repGen[pid][j] = rr.Gen
	if rr.Gen > r.curGen[pid] {
		r.curGen[pid] = rr.Gen
	}
	r.genMu.Unlock()

	// The donor's copy is now unowned; dropping it is best-effort (a
	// failure leaves an orphan the reconcile pass ignores — it is not
	// in owners — and a worker restart clears).
	if c := r.slots[hot].get(); c != nil {
		_ = r.probeCall(c, "Worker.Drop", &DropArgs{Version: ProtocolVersion, PartitionID: pid}, &struct{}{}, restoreTimeout)
	}
	// Reset the migrated partition's cumulative counters: the next
	// rebalance decision should reflect the new placement, not the
	// history that motivated this move.
	r.loads.reset(pid)
	return RebalanceReport{Moved: true, Partition: pid, From: r.slots[hot].addr, To: r.slots[cold].addr, Gen: rr.Gen}, nil
}

// splitMoveIDs returns the ids to carve out of pid — the upper half of
// its live ids in ascending order, per the directory. Deterministic,
// so every replica splits identically. Caller holds dir.mu.
func splitMoveIDs(d *directory, pid int) ([]int, error) {
	var ids []int
	for id, p := range d.loc {
		if p == pid {
			ids = append(ids, int(id))
		}
	}
	if len(ids) < 2 {
		return nil, fmt.Errorf("cluster: split: partition %d holds %d trajectories, need at least 2", pid, len(ids))
	}
	sort.Ints(ids)
	return ids[len(ids)/2:], nil
}

// SplitPartition carves the upper half (by id) of partition pid into a
// new partition and returns the new partition's id. The split is
// online: the new partition is installed on every in-sync replica and
// registered for reads before the source is pruned, and the query
// merge dedups the overlap window, so no answer is ever missing or
// double-counted. Mutations are paused for the duration.
func (r *Remote) SplitPartition(ctx context.Context, pid int) (int, error) {
	if r.closed.Load() {
		return 0, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("cluster: split: %w", err)
	}
	if r.dir == nil {
		return 0, ErrImmutable
	}
	r.dir.mu.Lock()
	defer r.dir.mu.Unlock()
	r.rebalMu.Lock()
	defer r.rebalMu.Unlock()

	n := r.NumPartitions()
	if pid < 0 || pid >= n {
		return 0, fmt.Errorf("cluster: split: partition %d out of range [0,%d)", pid, n)
	}
	moveIDs, err := splitMoveIDs(r.dir, pid)
	if err != nil {
		return 0, err
	}
	newPid := n
	// Rebuild the router for n+1 partitions up front: it is the only
	// step that can fail for structural reasons (no grid), and failing
	// before any worker state changed keeps the abort trivial.
	if err := r.dir.rebuildRouterLocked(n + 1); err != nil {
		return 0, err
	}

	// Install the new partition on every in-sync replica of pid. The
	// split is deterministic (same MoveIDs, same source generation —
	// in-sync replicas are identical), so the replies agree.
	r.genMu.Lock()
	var targets []int // replica indices within owners[pid]
	for jj := range r.owners[pid] {
		if r.eligibleLocked(pid, jj) {
			targets = append(targets, jj)
		}
	}
	slots := append([]int(nil), r.owners[pid]...)
	r.genMu.Unlock()
	if len(targets) == 0 {
		_ = r.dir.rebuildRouterLocked(n)
		return 0, fmt.Errorf("%w %d", ErrUnavailable, pid)
	}
	gens := make(map[int]uint64, len(targets)) // replica index → installed gen
	var newLen, newSize int
	for _, jj := range targets {
		c := r.slots[slots[jj]].get()
		if c == nil {
			err = fmt.Errorf("cluster: split: %s not connected", r.slots[slots[jj]].addr)
			break
		}
		var sr SplitReply
		sargs := &SplitArgs{Version: ProtocolVersion, PartitionID: pid, NewPartitionID: newPid, MoveIDs: moveIDs}
		if err = r.probeCall(c, "Worker.Split", sargs, &sr, restoreTimeout); err != nil {
			err = fmt.Errorf("cluster: split partition %d on %s: %w", pid, r.slots[slots[jj]].addr, err)
			break
		}
		gens[jj] = sr.Gen
		newLen, newSize = sr.Len, sr.SizeBytes
	}
	if err != nil {
		// Abort: wipe the clones already installed and restore the
		// router. The source partitions are untouched.
		for jj := range gens {
			if c := r.slots[slots[jj]].get(); c != nil {
				_ = r.probeCall(c, "Worker.Drop", &DropArgs{Version: ProtocolVersion, PartitionID: newPid}, &struct{}{}, restoreTimeout)
			}
		}
		_ = r.dir.rebuildRouterLocked(n)
		return 0, err
	}

	// Register the new partition for reads. Replicas that were stale or
	// down did not split; they start at genAbsent and the background
	// prober restores the new partition onto them from an in-sync peer,
	// exactly like any other missed mutation.
	r.genMu.Lock()
	r.owners = append(r.owners, append([]int(nil), slots...))
	rg := make([]uint64, len(slots))
	var maxGen uint64
	for jj := range rg {
		if g, ok := gens[jj]; ok {
			rg[jj] = g
			if g > maxGen {
				maxGen = g
			}
		} else {
			rg[jj] = genAbsent
		}
	}
	r.repGen = append(r.repGen, rg)
	r.curGen = append(r.curGen, maxGen)
	// atomic.Int64 must not be copied by append; rebuild the slice and
	// carry the values over explicitly.
	grownLen := make([]atomic.Int64, n+1)
	for i := range r.partLen {
		grownLen[i].Store(r.partLen[i].Load())
	}
	grownLen[n].Store(int64(newLen))
	r.partLen = grownLen
	r.partSizes = append(r.partSizes, newSize)
	r.genMu.Unlock()
	r.loads.grow(n + 1)

	// Re-route the moved ids, then prune them from the source. Queries
	// between registration and prune may see a moved trajectory in both
	// partitions; mergeDedup collapses it. A prune failure marks the
	// affected replicas stale (mutateReplicasLocked), and the prober
	// re-aligns them from an acknowledged peer — the split itself has
	// already committed.
	for _, id := range moveIDs {
		r.dir.loc[int32(id)] = newPid
	}
	_, err = r.mutateReplicasLocked(ctx, pid, "Worker.Delete",
		func() any {
			return &DeleteArgs{Version: ProtocolVersion, PartitionID: pid, IDs: moveIDs}
		},
		func() any { return new(DeleteReply) },
		func(reply any) (uint64, int) { dr := reply.(*DeleteReply); return dr.Gen, dr.Len })
	if err != nil {
		return newPid, fmt.Errorf("cluster: split: pruning partition %d: %w", pid, err)
	}
	return newPid, nil
}

// SplitPartition carves the upper half (by id) of partition pid into a
// new partition and returns the new partition's id. The grown
// partition slice is published before the source is pruned, so a
// concurrent query sees a moved trajectory in one or both partitions —
// never in neither — and the merge dedups the overlap.
func (c *Local) SplitPartition(ctx context.Context, pid int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("cluster: split: %w", err)
	}
	if c.dir == nil {
		return 0, ErrImmutable
	}
	c.dir.mu.Lock()
	defer c.dir.mu.Unlock()

	parts := c.parts()
	n := len(parts)
	if pid < 0 || pid >= n {
		return 0, fmt.Errorf("cluster: split: partition %d out of range [0,%d)", pid, n)
	}
	moveIDs, err := splitMoveIDs(c.dir, pid)
	if err != nil {
		return 0, err
	}
	newPid := n
	if err := c.dir.rebuildRouterLocked(n + 1); err != nil {
		return 0, err
	}

	clone, err := cloneLocalIndex(parts[pid])
	if err != nil {
		_ = c.dir.rebuildRouterLocked(n)
		return 0, fmt.Errorf("cluster: split partition %d: %w", pid, err)
	}
	mm, ok := clone.(MutableIndex)
	if !ok {
		_ = c.dir.rebuildRouterLocked(n)
		return 0, fmt.Errorf("%w (partition %d, %T)", ErrImmutable, pid, clone)
	}
	keep := make(map[int]struct{}, len(moveIDs))
	for _, id := range moveIDs {
		keep[id] = struct{}{}
	}
	var drop []int
	for _, id := range liveIDs(clone) {
		if _, kept := keep[id]; !kept {
			drop = append(drop, id)
		}
	}
	sort.Ints(drop)
	if len(drop) > 0 {
		mm.Delete(drop...)
	}
	if err := mm.Compact(); err != nil {
		_ = c.dir.rebuildRouterLocked(n)
		return 0, fmt.Errorf("cluster: split partition %d: compact clone: %w", pid, err)
	}
	idx := clone
	if c.dataDir != "" {
		idx, err = wrapDurablePartition(c.dataDir, newPid, clone)
		if err != nil {
			_ = c.dir.rebuildRouterLocked(n)
			return 0, fmt.Errorf("cluster: split partition %d: %w", pid, err)
		}
	}

	// Publish the grown slice (a fresh backing array — in-flight
	// queries hold the old snapshot) before pruning the source, so the
	// moved ids are never unreachable.
	grown := make([]LocalIndex, n+1)
	copy(grown, parts)
	grown[newPid] = idx
	c.setParts(grown)

	m, _, err := c.mutable(pid)
	if err != nil {
		return newPid, err
	}
	m.Delete(moveIDs...)
	if err := m.Compact(); err != nil {
		return newPid, fmt.Errorf("cluster: split partition %d: compact source: %w", pid, err)
	}
	for _, id := range moveIDs {
		c.dir.loc[int32(id)] = newPid
	}
	return newPid, nil
}
