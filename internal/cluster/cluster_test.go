package cluster

import (
	"context"
	"math"
	"net"
	"testing"

	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/oracle"
	"repose/internal/partition"
	"repose/internal/pivot"
	"repose/internal/rptrie"
	"repose/internal/topk"
)

// testWorld builds a small dataset, partitions, and a REPOSE spec.
func testWorld(t *testing.T, n, nparts int) ([]*geo.Trajectory, [][]*geo.Trajectory, IndexSpec) {
	t.Helper()
	spec := dataset.Spec{Name: "t", Cardinality: n, AvgLen: 20, SpanX: 4, SpanY: 4, Hotspots: 6, Seed: 3}
	ds := dataset.Generate(spec)
	region := spec.Region()
	g, err := grid.New(region, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := partition.Assign(partition.Heterogeneous, ds, g, nparts, 1)
	if err != nil {
		t.Fatal(err)
	}
	parts := partition.Split(ds, assign, nparts)
	p := dist.DefaultParams(region)
	pivots := pivot.Select(ds, 3, 5, dist.Hausdorff, p, 7)
	idxSpec := IndexSpec{
		Algorithm: REPOSE,
		Measure:   dist.Hausdorff,
		Params:    p,
		Region:    region,
		Delta:     0.1,
		Pivots:    pivots,
	}
	return ds, parts, idxSpec
}

// searchArgsV2 builds a current-protocol SearchArgs for direct worker
// calls in tests.
func searchArgsV2(q []geo.Point, k int) *SearchArgs {
	return &SearchArgs{QueryHeader: QueryHeader{Version: ProtocolVersion}, Query: q, K: k}
}

func assertSameDistances(t *testing.T, ctx string, got, want []topk.Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("%s: rank %d dist %v want %v", ctx, i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestLocalClusterAllAlgorithms(t *testing.T) {
	ds, parts, spec := testWorld(t, 300, 8)
	q := dataset.Queries(ds, 3, 9)
	algos := []struct {
		name string
		mod  func(*IndexSpec)
	}{
		{"REPOSE", func(s *IndexSpec) {}},
		{"REPOSE-opt", func(s *IndexSpec) { s.Optimize = true }},
		{"REPOSE-succinct", func(s *IndexSpec) { s.Succinct = true }},
		{"REPOSE-compressed", func(s *IndexSpec) { s.Layout = rptrie.LayoutCompressed }},
		{"LS", func(s *IndexSpec) { s.Algorithm = LS }},
		{"DFT", func(s *IndexSpec) { s.Algorithm = DFT }},
		{"DITA", func(s *IndexSpec) { s.Algorithm = DITA; s.Measure = dist.Frechet }},
	}
	for _, a := range algos {
		sp := spec
		a.mod(&sp)
		c, err := BuildLocal(sp, parts, 4)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if c.Len() != len(ds) {
			t.Fatalf("%s: Len %d want %d", a.name, c.Len(), len(ds))
		}
		if c.NumPartitions() != 8 {
			t.Fatalf("%s: partitions %d", a.name, c.NumPartitions())
		}
		for _, query := range q {
			got, rep, err := c.Search(context.Background(), query.Points, 10, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.TopK(sp.Measure, sp.Params, ds, query.Points, 10)
			assertSameDistances(t, a.name, got, want)
			if len(rep.PartitionTimes) != 8 || rep.MaxPartition <= 0 {
				t.Fatalf("%s: report %+v", a.name, rep)
			}
			if rep.Imbalance() < 1 {
				t.Fatalf("%s: imbalance %v < 1", a.name, rep.Imbalance())
			}
		}
	}
}

func TestBuildLocalErrorPropagates(t *testing.T) {
	_, parts, spec := testWorld(t, 50, 4)
	spec.Algorithm = DITA
	spec.Measure = dist.Hausdorff // unsupported by DITA
	if _, err := BuildLocal(spec, parts, 2); err == nil {
		t.Error("expected unsupported-measure error")
	}
	spec = IndexSpec{Algorithm: Algorithm(99)}
	if _, err := BuildLocal(spec, parts, 2); err == nil {
		t.Error("expected unknown-algorithm error")
	}
}

func TestBuildLocalBadGrid(t *testing.T) {
	_, parts, spec := testWorld(t, 50, 4)
	spec.Delta = -1
	if _, err := BuildLocal(spec, parts, 2); err == nil {
		t.Error("expected grid error")
	}
}

// startWorkers spins up n in-process RPC workers on loopback and
// returns their addresses.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go Serve(ln, NewWorker())
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

func TestRemoteClusterMatchesLocal(t *testing.T) {
	ds, parts, spec := testWorld(t, 300, 8)
	addrs := startWorkers(t, 3)
	remote, err := BuildRemote(spec, parts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	local, err := BuildLocal(spec, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Len() != local.Len() {
		t.Fatalf("Len: remote %d local %d", remote.Len(), local.Len())
	}
	if remote.NumPartitions() != 8 {
		t.Fatalf("partitions %d", remote.NumPartitions())
	}
	if remote.IndexSizeBytes() != local.IndexSizeBytes() {
		t.Fatalf("sizes differ: remote %d local %d", remote.IndexSizeBytes(), local.IndexSizeBytes())
	}
	for _, q := range dataset.Queries(ds, 4, 11) {
		got, rep, err := remote.Search(context.Background(), q.Points, 10, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, _, _ := local.Search(context.Background(), q.Points, 10, QueryOptions{})
		if len(got) != len(want) {
			t.Fatalf("len %d want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rank %d: %+v vs %+v", i, got[i], want[i])
			}
		}
		if len(rep.PartitionTimes) != 8 {
			t.Fatalf("report partitions = %d", len(rep.PartitionTimes))
		}
	}
	if remote.BuildTime() <= 0 {
		t.Error("BuildTime should be positive")
	}
}

func TestRemoteErrors(t *testing.T) {
	_, parts, spec := testWorld(t, 50, 4)
	if _, err := BuildRemote(spec, parts, nil); err == nil {
		t.Error("no addresses should fail")
	}
	if _, err := BuildRemote(spec, parts, []string{"127.0.0.1:1"}); err == nil {
		t.Error("dead address should fail")
	}
	// Build error on the worker side propagates.
	addrs := startWorkers(t, 1)
	bad := spec
	bad.Algorithm = DITA
	bad.Measure = dist.ERP
	if _, err := BuildRemote(bad, parts, addrs); err == nil {
		t.Error("worker-side build error should propagate")
	}
}

func TestWorkerClearAndPing(t *testing.T) {
	w := NewWorker()
	var ok bool
	if err := w.Ping(&struct{}{}, &ok); err != nil || !ok {
		t.Fatal("ping failed")
	}
	// Empty worker search fails.
	var rep SearchReply
	if err := w.Search(searchArgsV2([]geo.Point{{X: 1, Y: 1}}, 2), &rep); err == nil {
		t.Error("empty worker search should fail")
	}
	_, parts, spec := testWorld(t, 40, 2)
	var brep BuildReply
	if err := w.Build(&BuildArgs{Version: ProtocolVersion, PartitionID: 0, Spec: spec, Trajectories: parts[0]}, &brep); err != nil {
		t.Fatal(err)
	}
	if brep.Len != len(parts[0]) || brep.BuildNanos <= 0 {
		t.Errorf("build reply %+v", brep)
	}
	if err := w.Search(searchArgsV2([]geo.Point{{X: 1, Y: 1}}, 2), &rep); err != nil {
		t.Fatal(err)
	}
	if err := w.Clear(&ClearArgs{Version: ProtocolVersion}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Search(searchArgsV2([]geo.Point{{X: 1, Y: 1}}, 2), &rep); err == nil {
		t.Error("search after clear should fail")
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, a := range []Algorithm{REPOSE, LS, DFT, DITA} {
		parsed, err := ParseAlgorithm(a.String())
		if err != nil || parsed != a {
			t.Errorf("round trip %v failed", a)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if Algorithm(42).String() != "Algorithm(42)" {
		t.Error("out-of-range String")
	}
}
