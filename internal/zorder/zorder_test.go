package zorder

import (
	"testing"
	"testing/quick"
)

// TestPaperExample2 pins the paper's convention: horizontal 010 and
// vertical 101 interleave to 011001.
func TestPaperExample2(t *testing.T) {
	got := Encode(0b010, 0b101, 3)
	if got != 0b011001 {
		t.Errorf("Encode(010, 101, 3) = %06b, want 011001", got)
	}
}

func TestEncodeDecodeSmall(t *testing.T) {
	cases := []struct {
		x, y uint32
		bits int
		z    uint64
	}{
		{0, 0, 1, 0b00},
		{1, 0, 1, 0b10},
		{0, 1, 1, 0b01},
		{1, 1, 1, 0b11},
		{0b11, 0b00, 2, 0b1010},
		{0b00, 0b11, 2, 0b0101},
	}
	for _, c := range cases {
		if got := Encode(c.x, c.y, c.bits); got != c.z {
			t.Errorf("Encode(%b, %b, %d) = %b, want %b", c.x, c.y, c.bits, got, c.z)
		}
		x, y := Decode(c.z, c.bits)
		if x != c.x || y != c.y {
			t.Errorf("Decode(%b, %d) = (%b, %b), want (%b, %b)", c.z, c.bits, x, y, c.x, c.y)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(x, y uint32) bool {
		const bits = 16
		x &= 1<<bits - 1
		y &= 1<<bits - 1
		gx, gy := Decode(Encode(x, y, bits), bits)
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripMaxBits(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= 1<<MaxBits - 1
		y &= 1<<MaxBits - 1
		gx, gy := Decode(Encode(x, y, MaxBits), MaxBits)
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMonotoneWithinRow verifies a basic locality fact: along a single
// row (fixed y), increasing x never decreases the z-value restricted
// to the x bits; and the full curve visits each cell exactly once.
func TestUniquenessExhaustive(t *testing.T) {
	const bits = 4
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 1<<bits; x++ {
		for y := uint32(0); y < 1<<bits; y++ {
			z := Encode(x, y, bits)
			if z >= 1<<(2*bits) {
				t.Fatalf("z-value %d out of range for %d bits", z, bits)
			}
			if seen[z] {
				t.Fatalf("duplicate z-value %d", z)
			}
			seen[z] = true
		}
	}
	if len(seen) != 1<<(2*bits) {
		t.Fatalf("got %d distinct z-values", len(seen))
	}
}

func TestParent(t *testing.T) {
	// Cell (x=5, y=3) at 3 bits has parent (x=2, y=1) at 2 bits.
	z := Encode(5, 3, 3)
	p := Parent(z)
	want := Encode(2, 1, 2)
	if p != want {
		t.Errorf("Parent = %b, want %b", p, want)
	}
}

func TestAtResolution(t *testing.T) {
	z := Encode(0b1011, 0b0110, 4)
	got := AtResolution(z, 4, 2)
	want := Encode(0b10, 0b01, 2)
	if got != want {
		t.Errorf("AtResolution = %b, want %b", got, want)
	}
	if AtResolution(z, 4, 4) != z {
		t.Error("AtResolution at same res should be identity")
	}
}

func TestAtResolutionConsistentWithParent(t *testing.T) {
	f := func(x, y uint32) bool {
		const bits = 10
		x &= 1<<bits - 1
		y &= 1<<bits - 1
		z := Encode(x, y, bits)
		p := z
		for i := 0; i < 3; i++ {
			p = Parent(p)
		}
		return p == AtResolution(z, bits, bits-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodePanics(t *testing.T) {
	assertPanics(t, "bits=0", func() { Encode(0, 0, 0) })
	assertPanics(t, "bits too big", func() { Encode(0, 0, MaxBits+1) })
	assertPanics(t, "x out of range", func() { Encode(4, 0, 2) })
	assertPanics(t, "decode bits", func() { Decode(0, 0) })
	assertPanics(t, "res > bits", func() { AtResolution(0, 2, 3) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestZOrderAdjacency pins the familiar N-shaped traversal of a 2x2
// block: (0,0) (0,1) (1,0) (1,1) in z-value order 0,1,2,3 means
// y varies fastest in the low bit.
func TestZOrderAdjacency(t *testing.T) {
	order := []struct{ x, y uint32 }{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i, c := range order {
		if got := Encode(c.x, c.y, 1); got != uint64(i) {
			t.Errorf("Encode(%d,%d) = %d, want %d", c.x, c.y, got, i)
		}
	}
}
