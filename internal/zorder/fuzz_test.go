package zorder

import "testing"

// FuzzZOrderRoundTrip checks, for every coordinate pair and bit width
// the fuzzer can reach, that Encode/Decode round-trip exactly, the
// z-value stays inside its 2·bits budget, and the coarsening helpers
// agree with re-encoding the shifted coordinates.
func FuzzZOrderRoundTrip(f *testing.F) {
	f.Add(uint32(0b010), uint32(0b101), uint8(3)) // the paper's Example 2
	f.Add(uint32(0), uint32(0), uint8(1))
	f.Add(uint32(1)<<30, uint32(1)<<30, uint8(31))
	f.Add(uint32(12345), uint32(54321), uint8(17))
	f.Fuzz(func(t *testing.T, x, y uint32, bitsRaw uint8) {
		bits := int(bitsRaw)%MaxBits + 1
		mask := uint32(1)<<uint(bits) - 1
		x &= mask
		y &= mask

		z := Encode(x, y, bits)
		if max := uint64(1) << uint(2*bits); z >= max {
			t.Fatalf("Encode(%d, %d, %d) = %#x exceeds %d bits", x, y, bits, z, 2*bits)
		}
		dx, dy := Decode(z, bits)
		if dx != x || dy != y {
			t.Fatalf("Decode(Encode(%d, %d, %d)) = (%d, %d)", x, y, bits, dx, dy)
		}

		// Decode→Encode also round-trips for arbitrary in-range z.
		if z2 := Encode(dx, dy, bits); z2 != z {
			t.Fatalf("Encode(Decode(%#x)) = %#x", z, z2)
		}

		// Parent and AtResolution are coordinate shifts.
		if bits > 1 {
			px, py := Decode(Parent(z), bits-1)
			if px != x>>1 || py != y>>1 {
				t.Fatalf("Parent(%#x): (%d, %d), want (%d, %d)", z, px, py, x>>1, y>>1)
			}
			res := bits - 1
			cx, cy := Decode(AtResolution(z, bits, res), res)
			shift := uint(bits - res)
			if cx != x>>shift || cy != y>>shift {
				t.Fatalf("AtResolution(%#x, %d, %d): (%d, %d), want (%d, %d)",
					z, bits, res, cx, cy, x>>shift, y>>shift)
			}
		}
	})
}
