// Package zorder implements the Z-order (Morton) space-filling curve
// used to discretize trajectories (Section III-A of the REPOSE paper).
//
// A cell of an l×l grid with (binary) horizontal coordinate x and
// vertical coordinate y has the z-value obtained by interleaving the
// bits of x and y most-significant first, with the horizontal bit
// leading. This matches the paper's Example 2: x=010, y=101 yields
// z = 011001.
package zorder

// MaxBits is the maximum number of bits per coordinate. Two
// interleaved 31-bit coordinates fit in a uint64 with room to spare.
const MaxBits = 31

// Encode interleaves x and y into a z-value using bits bits per
// coordinate. Bits of x occupy the even positions counted from the
// most significant end (positions 2i+1 from the LSB side for bit i of
// x), so that the leading bit of the z-value is the leading bit of x.
//
// Encode panics if bits is out of range or a coordinate does not fit.
func Encode(x, y uint32, bits int) uint64 {
	if bits < 1 || bits > MaxBits {
		panic("zorder: bits out of range")
	}
	if bits < 32 && (x >= 1<<uint(bits) || y >= 1<<uint(bits)) {
		panic("zorder: coordinate out of range")
	}
	return interleave(uint64(x))<<1 | interleave(uint64(y))
}

// Decode splits a z-value produced with the given bit width back into
// its x and y coordinates.
func Decode(z uint64, bits int) (x, y uint32) {
	if bits < 1 || bits > MaxBits {
		panic("zorder: bits out of range")
	}
	x = uint32(deinterleave(z >> 1))
	y = uint32(deinterleave(z))
	mask := uint32(1<<uint(bits) - 1)
	return x & mask, y & mask
}

// interleave spreads the low 32 bits of v so that bit i moves to bit
// 2i (even positions), using the standard mask-and-shift network.
func interleave(v uint64) uint64 {
	v &= 0xFFFFFFFF
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// deinterleave collects the even bits of v back into a compact value,
// inverting interleave.
func deinterleave(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return v
}

// Parent returns the z-value of the cell one resolution level coarser
// that contains the cell z (each level drops the trailing bit pair).
func Parent(z uint64) uint64 { return z >> 2 }

// AtResolution coarsens z from bits bits per coordinate down to res
// bits per coordinate. It panics if res > bits.
func AtResolution(z uint64, bits, res int) uint64 {
	if res > bits {
		panic("zorder: res exceeds bits")
	}
	return z >> uint(2*(bits-res))
}
