// Package pivot implements pivot-trajectory selection and the
// pivot-based pruning bound of Section IV-D.
//
// Pivots apply only to metric measures (Hausdorff, Frechet, ERP). The
// paper's Eq. 5 mixes the triangle-inequality interval with an
// absolute value that is not a valid lower bound when dqp < HR.max;
// we use the classical interval form instead (see DESIGN.md):
//
//	LBp = max_i max(0, dqp[i] − HR[i].Max, HR[i].Min − dqp[i]),
//
// where HR[i] is the (min,max) range of distances from the i-th pivot
// to the actual trajectories in a subtree. Storing distances to the
// actual trajectories (rather than to their reference trajectories
// plus a √2δ/2 slack) keeps the bound valid for ERP, whose distance
// to a reference trajectory is not bounded by the cell half-diagonal.
package pivot
