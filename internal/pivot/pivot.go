package pivot

import (
	"math"
	"math/rand"

	"repose/internal/dist"
	"repose/internal/geo"
)

// Range is a closed distance interval [Min, Max].
type Range struct {
	Min, Max float64
}

// EmptyRange returns the identity element for Extend/Union.
func EmptyRange() Range {
	return Range{Min: math.Inf(1), Max: math.Inf(-1)}
}

// IsEmpty reports whether no distance has been recorded.
func (r Range) IsEmpty() bool { return r.Min > r.Max }

// Extend widens r to include d.
func (r Range) Extend(d float64) Range {
	return Range{Min: math.Min(r.Min, d), Max: math.Max(r.Max, d)}
}

// Union widens r to cover s.
func (r Range) Union(s Range) Range {
	if s.IsEmpty() {
		return r
	}
	if r.IsEmpty() {
		return s
	}
	return Range{Min: math.Min(r.Min, s.Min), Max: math.Max(r.Max, s.Max)}
}

// DefaultGroups is the number m of random candidate groups sampled by
// Select, following the practical method of Skopal et al. adopted by
// the paper.
const DefaultGroups = 10

// Select chooses np pivot trajectories from ds: it samples `groups`
// random groups of np trajectories, scores each group by the sum of
// pairwise distances, and returns the group with the largest score
// (Section III-B). Selection is deterministic for a given seed.
func Select(ds []*geo.Trajectory, np, groups int, m dist.Measure, p dist.Params, seed int64) []*geo.Trajectory {
	if np <= 0 || len(ds) == 0 {
		return nil
	}
	if np >= len(ds) {
		np = len(ds)
	}
	if groups < 1 {
		groups = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var best []*geo.Trajectory
	bestScore := math.Inf(-1)
	for g := 0; g < groups; g++ {
		cand := sampleWithoutReplacement(rng, ds, np)
		score := 0.0
		for i := 0; i < len(cand); i++ {
			for j := i + 1; j < len(cand); j++ {
				score += dist.Distance(m, cand[i].Points, cand[j].Points, p)
			}
		}
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best
}

func sampleWithoutReplacement(rng *rand.Rand, ds []*geo.Trajectory, n int) []*geo.Trajectory {
	idx := rng.Perm(len(ds))[:n]
	out := make([]*geo.Trajectory, n)
	for i, j := range idx {
		out[i] = ds[j]
	}
	return out
}

// Distances computes the exact distances from query q to each pivot.
// It is the O(Np·m·n) preprocessing step of Section IV-D, performed
// once per query.
func Distances(q []geo.Point, pivots []*geo.Trajectory, m dist.Measure, p dist.Params) []float64 {
	return AppendDistances(make([]float64, 0, len(pivots)), q, pivots, m, p, nil)
}

// AppendDistances is Distances appending to dst and computing in the
// given scratch buffers; with sufficient dst capacity and a non-nil
// scratch it does not allocate. The search hot path calls it with the
// pooled per-query scratch.
func AppendDistances(dst []float64, q []geo.Point, pivots []*geo.Trajectory, m dist.Measure, p dist.Params, s *dist.Scratch) []float64 {
	for _, pv := range pivots {
		dst = append(dst, dist.DistanceBoundedScratch(m, q, pv.Points, p, math.Inf(1), s))
	}
	return dst
}

// LowerBound evaluates LBp for a node with pivot ranges hr given the
// query-to-pivot distances dqp. Empty ranges contribute nothing.
func LowerBound(dqp []float64, hr []Range) float64 {
	lb := 0.0
	for i := range hr {
		if i >= len(dqp) {
			continue
		}
		if v := RangeBound(dqp[i], hr[i].Min, hr[i].Max); v > lb {
			lb = v
		}
	}
	return lb
}

// RangeBound is one pivot's LBp contribution: how far the
// query-to-pivot distance dq lies outside the closed interval
// [lo, hi] of member-to-pivot distances (0 inside, or when the
// interval is empty, i.e. lo > hi). The succinct layout evaluates it
// directly over its packed float32 ranges so all LBp call sites share
// one formula.
func RangeBound(dq, lo, hi float64) float64 {
	if lo > hi {
		return 0
	}
	if v := dq - hi; v > 0 {
		return v
	}
	if v := lo - dq; v > 0 {
		return v
	}
	return 0
}
