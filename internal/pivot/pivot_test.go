package pivot

import (
	"math"
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
)

func randomDataset(rng *rand.Rand, n int) []*geo.Trajectory {
	ds := make([]*geo.Trajectory, n)
	for i := range ds {
		pts := make([]geo.Point, 2+rng.Intn(8))
		for j := range pts {
			pts[j] = geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		ds[i] = &geo.Trajectory{ID: i, Points: pts}
	}
	return ds
}

func TestRange(t *testing.T) {
	r := EmptyRange()
	if !r.IsEmpty() {
		t.Error("EmptyRange should be empty")
	}
	r = r.Extend(3)
	r = r.Extend(1)
	r = r.Extend(5)
	if r.Min != 1 || r.Max != 5 {
		t.Errorf("range = %+v", r)
	}
	u := r.Union(Range{Min: 0.5, Max: 2})
	if u.Min != 0.5 || u.Max != 5 {
		t.Errorf("union = %+v", u)
	}
	if got := r.Union(EmptyRange()); got != r {
		t.Errorf("union with empty = %+v", got)
	}
	if got := EmptyRange().Union(r); got != r {
		t.Errorf("empty union = %+v", got)
	}
}

func TestSelectBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randomDataset(rng, 50)
	p := dist.Params{}
	pivots := Select(ds, 5, DefaultGroups, dist.Hausdorff, p, 42)
	if len(pivots) != 5 {
		t.Fatalf("len = %d", len(pivots))
	}
	// Distinct trajectories.
	seen := map[int]bool{}
	for _, pv := range pivots {
		if seen[pv.ID] {
			t.Errorf("duplicate pivot %d", pv.ID)
		}
		seen[pv.ID] = true
	}
	// Deterministic for same seed.
	again := Select(ds, 5, DefaultGroups, dist.Hausdorff, p, 42)
	for i := range pivots {
		if pivots[i].ID != again[i].ID {
			t.Error("selection not deterministic")
		}
	}
}

func TestSelectEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randomDataset(rng, 3)
	p := dist.Params{}
	if got := Select(ds, 0, 5, dist.Hausdorff, p, 1); got != nil {
		t.Errorf("np=0 should give nil, got %v", got)
	}
	if got := Select(nil, 3, 5, dist.Hausdorff, p, 1); got != nil {
		t.Errorf("empty ds should give nil, got %v", got)
	}
	// np larger than dataset clamps.
	if got := Select(ds, 10, 5, dist.Hausdorff, p, 1); len(got) != 3 {
		t.Errorf("clamped selection len = %d", len(got))
	}
	// groups < 1 clamps to 1.
	if got := Select(ds, 2, 0, dist.Hausdorff, p, 1); len(got) != 2 {
		t.Errorf("groups=0 selection len = %d", len(got))
	}
}

// TestSelectPrefersSpread: with one tight cluster and a few far
// outliers, the max-pairwise-distance-sum group must include at
// least one outlier — an all-cluster group scores near zero. (The
// sum criterion does not guarantee *all* pivots are outliers: a
// group of two cluster members plus the farthest outlier can
// outscore the all-outlier group.)
func TestSelectPrefersSpread(t *testing.T) {
	var ds []*geo.Trajectory
	// 20 nearly identical trajectories at the origin.
	for i := 0; i < 20; i++ {
		ds = append(ds, &geo.Trajectory{ID: i, Points: []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}})
	}
	// 3 far-apart outliers.
	for i := 0; i < 3; i++ {
		x := float64(1000 * (i + 1))
		ds = append(ds, &geo.Trajectory{ID: 20 + i, Points: []geo.Point{{X: x, Y: x}, {X: x + 1, Y: x}}})
	}
	pivots := Select(ds, 3, 400, dist.Hausdorff, dist.Params{}, 7)
	outliers := 0
	for _, pv := range pivots {
		if pv.ID >= 20 {
			outliers++
		}
	}
	if outliers < 1 {
		t.Errorf("expected at least one outlier pivot, got %d of 3", outliers)
	}
}

func TestDistances(t *testing.T) {
	q := []geo.Point{{X: 0, Y: 0}}
	pivots := []*geo.Trajectory{
		{Points: []geo.Point{{X: 3, Y: 4}}},
		{Points: []geo.Point{{X: 0, Y: 1}}},
	}
	d := Distances(q, pivots, dist.Hausdorff, dist.Params{})
	if len(d) != 2 || math.Abs(d[0]-5) > 1e-9 || math.Abs(d[1]-1) > 1e-9 {
		t.Errorf("distances = %v", d)
	}
}

func TestLowerBound(t *testing.T) {
	hr := []Range{{Min: 2, Max: 4}}
	cases := []struct {
		dqp  float64
		want float64
	}{
		{7, 3},     // query far beyond max: dqp − max
		{0.5, 1.5}, // query inside min: min − dqp
		{3, 0},     // query within range: no bound
	}
	for _, c := range cases {
		if got := LowerBound([]float64{c.dqp}, hr); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LowerBound(%v) = %v, want %v", c.dqp, got, c.want)
		}
	}
	// Multiple pivots: max over pivots.
	hr2 := []Range{{Min: 2, Max: 4}, {Min: 10, Max: 12}}
	if got := LowerBound([]float64{7, 20}, hr2); math.Abs(got-8) > 1e-9 {
		t.Errorf("multi-pivot = %v, want 8", got)
	}
	// Empty ranges and missing dqp entries are ignored.
	if got := LowerBound([]float64{7}, []Range{EmptyRange()}); got != 0 {
		t.Errorf("empty range = %v", got)
	}
	if got := LowerBound(nil, hr); got != 0 {
		t.Errorf("missing dqp = %v", got)
	}
}

// TestLowerBoundSound verifies the triangle-inequality soundness of
// LBp directly: for random metric datasets, LBp never exceeds the
// true distance between the query and any subtree trajectory.
func TestLowerBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := dist.Params{Gap: geo.Point{}}
	for trial := 0; trial < 60; trial++ {
		ds := randomDataset(rng, 12)
		q := randomDataset(rng, 1)[0]
		for _, m := range []dist.Measure{dist.Hausdorff, dist.Frechet, dist.ERP} {
			pivots := Select(ds, 3, 5, m, p, int64(trial))
			dqp := Distances(q.Points, pivots, m, p)
			// Build HR over a random subset (a "subtree").
			sub := ds[:4+rng.Intn(8)]
			hr := make([]Range, len(pivots))
			for i := range hr {
				hr[i] = EmptyRange()
				for _, tr := range sub {
					hr[i] = hr[i].Extend(dist.Distance(m, pivots[i].Points, tr.Points, p))
				}
			}
			lbp := LowerBound(dqp, hr)
			for _, tr := range sub {
				exact := dist.Distance(m, q.Points, tr.Points, p)
				if lbp > exact+1e-9 {
					t.Fatalf("%v: LBp %v > exact %v", m, lbp, exact)
				}
			}
		}
	}
}
