package partition

import (
	"math/rand"
	"testing"

	"repose/internal/geo"
	"repose/internal/grid"
)

func onlineTestGrid(t *testing.T) *grid.Grid {
	t.Helper()
	g, err := grid.NewWithBits(geo.Rect{Min: geo.Point{}, Max: geo.Point{X: 8, Y: 8}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomTraj(rng *rand.Rand, id int) *geo.Trajectory {
	pts := make([]geo.Point, 2+rng.Intn(8))
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 8, Y: rng.Float64() * 8}
	}
	return &geo.Trajectory{ID: id, Points: pts}
}

func TestOnlineRouterContract(t *testing.T) {
	g := onlineTestGrid(t)
	if _, err := NewOnlineRouter(Heterogeneous, g, 0, 1); err == nil {
		t.Error("zero partitions should fail")
	}
	if _, err := NewOnlineRouter(Heterogeneous, nil, 4, 1); err == nil {
		t.Error("nil grid should fail")
	}
	rng := rand.New(rand.NewSource(2))
	for _, s := range []Strategy{Heterogeneous, Homogeneous, Random} {
		r, err := NewOnlineRouter(s, g, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.NumPartitions() != 5 {
			t.Fatalf("%v: NumPartitions = %d", s, r.NumPartitions())
		}
		counts := make([]int, 5)
		for i := 0; i < 500; i++ {
			pid := r.Assign(randomTraj(rng, i))
			if pid < 0 || pid >= 5 {
				t.Fatalf("%v: pid %d out of range", s, pid)
			}
			counts[pid]++
		}
		for pid, n := range counts {
			if n == 0 && s != Homogeneous {
				// Homogeneous may legitimately leave a partition cold
				// when few distinct signatures occur.
				t.Errorf("%v: partition %d never assigned", s, pid)
			}
		}
	}
}

// TestOnlineRouterDeterministic: assignment is a pure function of the
// trajectory — a retried mutation routes identically — and a burst of
// similar trajectories (distinct ids) still spreads across partitions
// under Heterogeneous, the online analog of the batch strategy.
func TestOnlineRouterDeterministic(t *testing.T) {
	g := onlineTestGrid(t)
	for _, s := range []Strategy{Heterogeneous, Homogeneous, Random} {
		r, err := NewOnlineRouter(s, g, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		r2, _ := NewOnlineRouter(s, g, 3, 1)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 50; i++ {
			tr := randomTraj(rng, i)
			pid := r.Assign(tr)
			if r.Assign(tr) != pid || r2.Assign(tr) != pid {
				t.Fatalf("%v: assignment of id %d not deterministic", s, i)
			}
		}
	}
	// Similar trajectories with distinct ids spread under Heterogeneous.
	r, _ := NewOnlineRouter(Heterogeneous, g, 3, 1)
	base := randomTraj(rand.New(rand.NewSource(2)), 0)
	seen := map[int]bool{}
	for id := 0; id < 30; id++ {
		seen[r.Assign(&geo.Trajectory{ID: id, Points: base.Points})] = true
	}
	if len(seen) != 3 {
		t.Fatalf("similar burst hit only %d of 3 partitions", len(seen))
	}
}

// TestOnlineRouterHomogeneousSticky: identical coarse signatures land
// in the same partition, independent of arrival order.
func TestOnlineRouterHomogeneousSticky(t *testing.T) {
	g := onlineTestGrid(t)
	r, err := NewOnlineRouter(Homogeneous, g, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := &geo.Trajectory{ID: 1, Points: []geo.Point{{X: 1.1, Y: 1.1}, {X: 6.9, Y: 6.9}}}
	b := &geo.Trajectory{ID: 2, Points: []geo.Point{{X: 1.3, Y: 1.2}, {X: 6.8, Y: 6.7}}} // same coarse cells
	first := r.Assign(a)
	for i := 0; i < 5; i++ {
		if pid := r.Assign(b); pid != first {
			t.Fatalf("similar trajectory routed to %d, want %d", pid, first)
		}
	}
	// A second router with the same seed agrees (routing is stable
	// across driver restarts).
	r2, _ := NewOnlineRouter(Homogeneous, g, 4, 7)
	if r2.Assign(a) != first {
		t.Error("routing not stable across router instances")
	}
}
