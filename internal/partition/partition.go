package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"repose/internal/geo"
	"repose/internal/grid"
)

// Strategy selects a global partitioning method.
type Strategy int

// The partitioning strategies of Table VII.
const (
	Heterogeneous Strategy = iota // similar trajectories spread across partitions
	Homogeneous                   // similar trajectories grouped in one partition
	Random                        // uniform random assignment
)

var strategyNames = [...]string{"Heterogeneous", "Homogeneous", "Random"}

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s < 0 || int(s) >= len(strategyNames) {
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
	return strategyNames[s]
}

// Assign maps each trajectory of ds to a partition in
// [0, numPartitions). The slice is parallel to ds.
func Assign(s Strategy, ds []*geo.Trajectory, g *grid.Grid, numPartitions int, seed int64) ([]int, error) {
	if numPartitions <= 0 {
		return nil, fmt.Errorf("partition: numPartitions %d must be positive", numPartitions)
	}
	if len(ds) == 0 {
		return nil, nil
	}
	switch s {
	case Heterogeneous:
		return assignHeterogeneous(ds, g, numPartitions), nil
	case Homogeneous:
		return assignHomogeneous(ds, g, numPartitions), nil
	case Random:
		return assignRandom(ds, numPartitions, seed), nil
	default:
		return nil, fmt.Errorf("partition: unknown strategy %d", int(s))
	}
}

// cluster groups trajectories by their coarse geohash signature
// (Section V-B, after SOM-TC): starting at the grid's full
// resolution, the granularity is coarsened until roughly N/NG
// clusters remain, so that an average cluster has about one member
// per partition.
func clusterTrajectories(ds []*geo.Trajectory, g *grid.Grid, numPartitions int) [][]int {
	target := len(ds) / numPartitions
	if target < 1 {
		target = 1
	}
	var best map[string][]int
	for res := g.Bits; res >= 1; res-- {
		m := make(map[string][]int)
		for i, tr := range ds {
			key := g.CoarseKey(tr, res)
			m[key] = append(m[key], i)
		}
		best = m
		if len(m) <= target {
			break
		}
	}
	// Deterministic cluster order: by key.
	keys := make([]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(best))
	for _, k := range keys {
		members := best[k]
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}

// assignHeterogeneous sorts trajectories by (cluster, id) and deals
// them round-robin, so each cluster's members land in different
// partitions and every partition receives a similar mix.
func assignHeterogeneous(ds []*geo.Trajectory, g *grid.Grid, numPartitions int) []int {
	clusters := clusterTrajectories(ds, g, numPartitions)
	assign := make([]int, len(ds))
	i := 0
	for _, members := range clusters {
		for _, idx := range members {
			assign[idx] = i % numPartitions
			i++
		}
	}
	return assign
}

// assignHomogeneous keeps each cluster within a single partition,
// assigning whole clusters (largest first) to the least-loaded
// partition so partition cardinalities stay balanced even though
// their contents are homogeneous.
func assignHomogeneous(ds []*geo.Trajectory, g *grid.Grid, numPartitions int) []int {
	clusters := clusterTrajectories(ds, g, numPartitions)
	order := make([]int, len(clusters))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := clusters[order[a]], clusters[order[b]]
		if len(ca) != len(cb) {
			return len(ca) > len(cb)
		}
		return order[a] < order[b]
	})
	assign := make([]int, len(ds))
	load := make([]int, numPartitions)
	for _, ci := range order {
		p := 0
		for j := 1; j < numPartitions; j++ {
			if load[j] < load[p] {
				p = j
			}
		}
		for _, idx := range clusters[ci] {
			assign[idx] = p
		}
		load[p] += len(clusters[ci])
	}
	return assign
}

// assignRandom shuffles and deals, giving equal partition sizes with
// random composition.
func assignRandom(ds []*geo.Trajectory, numPartitions int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(ds))
	assign := make([]int, len(ds))
	for i, idx := range perm {
		assign[idx] = i % numPartitions
	}
	return assign
}

// Split materializes the partitions from an assignment.
func Split(ds []*geo.Trajectory, assign []int, numPartitions int) [][]*geo.Trajectory {
	parts := make([][]*geo.Trajectory, numPartitions)
	for i, tr := range ds {
		p := assign[i]
		parts[p] = append(parts[p], tr)
	}
	return parts
}

// STRAssign partitions by Sort-Tile-Recursive on representative
// points: items are sorted into vertical slices by x, then each slice
// is cut by y. DFT applies it to segment centroids and DITA to
// trajectory first points, which is how both group spatially close
// items into the same partition.
func STRAssign(centers []geo.Point, numPartitions int) []int {
	n := len(centers)
	assign := make([]int, n)
	if n == 0 || numPartitions <= 1 {
		return assign
	}
	slices := intSqrtCeil(numPartitions)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := centers[idx[a]], centers[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	perSlice := (n + slices - 1) / slices
	p := 0
	for s := 0; s < slices; s++ {
		lo := s * perSlice
		if lo >= n {
			break
		}
		hi := lo + perSlice
		if hi > n {
			hi = n
		}
		sl := idx[lo:hi]
		sort.Slice(sl, func(a, b int) bool {
			pa, pb := centers[sl[a]], centers[sl[b]]
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return pa.X < pb.X
		})
		// Cut the slice into runs, cycling through partitions.
		tilesInSlice := (numPartitions + slices - 1) / slices
		perTile := (len(sl) + tilesInSlice - 1) / tilesInSlice
		if perTile < 1 {
			perTile = 1
		}
		for j, id := range sl {
			tile := j / perTile
			assign[id] = (p + tile) % numPartitions
		}
		p += tilesInSlice
	}
	return assign
}

func intSqrtCeil(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}
