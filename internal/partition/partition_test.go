package partition

import (
	"math"
	"math/rand"
	"testing"

	"repose/internal/geo"
	"repose/internal/grid"
)

func testGrid(t *testing.T) *grid.Grid {
	t.Helper()
	g, err := grid.NewWithBits(geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// clusteredDataset: groups of near-identical trajectories, so the
// geohash clustering has clear structure.
func clusteredDataset(rng *rand.Rand, groups, perGroup int) []*geo.Trajectory {
	var ds []*geo.Trajectory
	id := 0
	for c := 0; c < groups; c++ {
		x0 := rng.Float64() * 7
		y0 := rng.Float64() * 7
		for m := 0; m < perGroup; m++ {
			tr := &geo.Trajectory{ID: id}
			id++
			for s := 0; s < 5; s++ {
				tr.Points = append(tr.Points, geo.Point{
					X: x0 + float64(s)*0.15 + rng.Float64()*0.01,
					Y: y0 + rng.Float64()*0.01,
				})
			}
			ds = append(ds, tr)
		}
	}
	return ds
}

func partitionSizes(assign []int, np int) []int {
	sizes := make([]int, np)
	for _, p := range assign {
		sizes[p]++
	}
	return sizes
}

func TestAssignErrors(t *testing.T) {
	g := testGrid(t)
	ds := clusteredDataset(rand.New(rand.NewSource(1)), 2, 2)
	if _, err := Assign(Heterogeneous, ds, g, 0, 1); err == nil {
		t.Error("numPartitions=0 should fail")
	}
	if _, err := Assign(Strategy(99), ds, g, 4, 1); err == nil {
		t.Error("unknown strategy should fail")
	}
	if got, err := Assign(Heterogeneous, nil, g, 4, 1); err != nil || got != nil {
		t.Errorf("empty ds: %v, %v", got, err)
	}
}

func TestAllStrategiesBalanceSizes(t *testing.T) {
	g := testGrid(t)
	rng := rand.New(rand.NewSource(5))
	ds := clusteredDataset(rng, 16, 25) // 400 trajectories
	const np = 8
	for _, s := range []Strategy{Heterogeneous, Homogeneous, Random} {
		assign, err := Assign(s, ds, g, np, 7)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(assign) != len(ds) {
			t.Fatalf("%v: assign len %d", s, len(assign))
		}
		sizes := partitionSizes(assign, np)
		min, max := sizes[0], sizes[0]
		for _, sz := range sizes {
			if sz < min {
				min = sz
			}
			if sz > max {
				max = sz
			}
		}
		// Homogeneous keeps clusters whole, so imbalance up to a
		// cluster size (25) is inherent; the others must be tight.
		limit := 2
		if s == Homogeneous {
			limit = 26
		}
		if max-min > limit {
			t.Errorf("%v: sizes %v (spread %d > %d)", s, sizes, max-min, limit)
		}
	}
}

// TestHeterogeneousSpreadsClusters: members of one cluster of
// near-identical trajectories should land in distinct partitions.
func TestHeterogeneousSpreadsClusters(t *testing.T) {
	g := testGrid(t)
	rng := rand.New(rand.NewSource(6))
	const np = 8
	ds := clusteredDataset(rng, 10, np) // cluster size == partitions
	assign, err := Assign(Heterogeneous, ds, g, np, 1)
	if err != nil {
		t.Fatal(err)
	}
	// For each group of 8 consecutive ids (one spatial cluster),
	// count distinct partitions. Round-robin should give nearly all
	// distinct (clusters may merge under coarse geohash, still fine).
	distinctTotal := 0
	for c := 0; c < 10; c++ {
		seen := map[int]bool{}
		for m := 0; m < np; m++ {
			seen[assign[c*np+m]] = true
		}
		distinctTotal += len(seen)
	}
	// Perfect spreading gives 80; random assignment averages ~52.
	if distinctTotal < 70 {
		t.Errorf("heterogeneous spread too low: %d/80 distinct", distinctTotal)
	}
}

// TestHomogeneousKeepsClustersTogether: members of one cluster should
// (mostly) share a partition.
func TestHomogeneousKeepsClustersTogether(t *testing.T) {
	g := testGrid(t)
	rng := rand.New(rand.NewSource(7))
	const np = 8
	ds := clusteredDataset(rng, 10, np)
	assign, err := Assign(Homogeneous, ds, g, np, 1)
	if err != nil {
		t.Fatal(err)
	}
	together := 0
	for c := 0; c < 10; c++ {
		seen := map[int]bool{}
		for m := 0; m < np; m++ {
			seen[assign[c*np+m]] = true
		}
		if len(seen) == 1 {
			together++
		}
	}
	if together < 8 {
		t.Errorf("only %d/10 clusters kept together", together)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	g := testGrid(t)
	ds := clusteredDataset(rand.New(rand.NewSource(8)), 5, 10)
	a1, _ := Assign(Random, ds, g, 4, 42)
	a2, _ := Assign(Random, ds, g, 4, 42)
	a3, _ := Assign(Random, ds, g, 4, 43)
	same, diff := true, false
	for i := range a1 {
		if a1[i] != a2[i] {
			same = false
		}
		if a1[i] != a3[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed should reproduce")
	}
	if !diff {
		t.Error("different seed should differ")
	}
}

func TestSplit(t *testing.T) {
	g := testGrid(t)
	ds := clusteredDataset(rand.New(rand.NewSource(9)), 4, 5)
	assign, _ := Assign(Random, ds, g, 3, 1)
	parts := Split(ds, assign, 3)
	total := 0
	for p, part := range parts {
		for _, tr := range part {
			if assign[tr.ID] != p {
				t.Errorf("trajectory %d in wrong partition", tr.ID)
			}
		}
		total += len(part)
	}
	if total != len(ds) {
		t.Errorf("split lost trajectories: %d of %d", total, len(ds))
	}
}

func TestStrategyString(t *testing.T) {
	if Heterogeneous.String() != "Heterogeneous" || Strategy(9).String() != "Strategy(9)" {
		t.Error("String misbehaves")
	}
}

func TestSTRAssignBalancedAndLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 1000
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	const np = 9
	assign := STRAssign(pts, np)
	sizes := partitionSizes(assign, np)
	for p, sz := range sizes {
		if sz == 0 {
			t.Errorf("partition %d empty: %v", p, sizes)
		}
	}
	// Locality: average intra-partition pairwise distance should be
	// clearly below the global average.
	avgAll, nAll := 0.0, 0
	avgIn, nIn := 0.0, 0
	for i := 0; i < 400; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		d := pts[a].Dist(pts[b])
		avgAll += d
		nAll++
		if assign[a] == assign[b] {
			avgIn += d
			nIn++
		}
	}
	if nIn == 0 {
		t.Skip("no intra-partition samples")
	}
	if avgIn/float64(nIn) > 0.8*(avgAll/float64(nAll)) {
		t.Errorf("STR not local: intra %v vs overall %v", avgIn/float64(nIn), avgAll/float64(nAll))
	}
}

func TestSTRAssignEdgeCases(t *testing.T) {
	if got := STRAssign(nil, 4); len(got) != 0 {
		t.Errorf("empty = %v", got)
	}
	one := STRAssign([]geo.Point{{X: 1, Y: 1}}, 1)
	if len(one) != 1 || one[0] != 0 {
		t.Errorf("single = %v", one)
	}
	// More partitions than points: all assignments valid.
	few := STRAssign([]geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}, 10)
	for _, p := range few {
		if p < 0 || p >= 10 {
			t.Errorf("out of range partition %d", p)
		}
	}
}

// TestHeterogeneousBetterQueryBalance is the load-balancing claim of
// Section V-B in miniature: with a skewed query, the spread of
// relevant trajectories across partitions should be far more even
// under heterogeneous partitioning than homogeneous.
func TestHeterogeneousBetterQueryBalance(t *testing.T) {
	g := testGrid(t)
	rng := rand.New(rand.NewSource(11))
	const np = 8
	ds := clusteredDataset(rng, 16, 32)
	het, _ := Assign(Heterogeneous, ds, g, np, 1)
	hom, _ := Assign(Homogeneous, ds, g, np, 1)
	// "Relevant" = the first cluster (trajectories 0..31): how evenly
	// are they spread?
	spread := func(assign []int) float64 {
		counts := make([]float64, np)
		for i := 0; i < 32; i++ {
			counts[assign[i]]++
		}
		mean := 32.0 / np
		varsum := 0.0
		for _, c := range counts {
			varsum += (c - mean) * (c - mean)
		}
		return math.Sqrt(varsum / np)
	}
	if spread(het) >= spread(hom) {
		t.Errorf("heterogeneous stddev %v >= homogeneous %v", spread(het), spread(hom))
	}
}
