package partition

import (
	"fmt"

	"repose/internal/geo"
	"repose/internal/grid"
)

// OnlineRouter assigns trajectories that arrive after the batch build
// to partitions, approximating each strategy's batch behavior without
// re-clustering the whole dataset:
//
//   - Heterogeneous hashes the trajectory id. The batch form spreads
//     each similarity cluster across partitions; a uniform id hash
//     spreads everything — including any run of similar trajectories
//     — the same way.
//   - Homogeneous hashes the trajectory's coarse geohash signature, so
//     trajectories sharing a coarse cell sequence keep landing in the
//     same partition, as the batch clustering would group them.
//   - Random hashes the id under a different key.
//
// Assign is stateless and a pure function of (strategy, seed,
// trajectory): the same trajectory always routes to the same
// partition. That determinism is load-bearing for failure recovery —
// if a mutation RPC's outcome is unknown, a retried Insert reaches
// the same partition and surfaces a clean duplicate-id error (and a
// retried Upsert is simply idempotent) instead of silently going live
// in a second partition.
type OnlineRouter struct {
	strategy Strategy
	g        *grid.Grid
	n        int
	res      int // coarse resolution for the homogeneous signature
	seed     uint64
}

// NewOnlineRouter builds a router over numPartitions partitions using
// the same grid and seed as the batch build.
func NewOnlineRouter(s Strategy, g *grid.Grid, numPartitions int, seed int64) (*OnlineRouter, error) {
	if numPartitions <= 0 {
		return nil, fmt.Errorf("partition: numPartitions %d must be positive", numPartitions)
	}
	if g == nil {
		return nil, fmt.Errorf("partition: nil grid")
	}
	// Half the grid resolution mirrors the batch clustering's coarse
	// end state on the experimental datasets: fine enough to separate
	// routes, coarse enough that noisy variants of one route share a
	// signature.
	res := (g.Bits + 1) / 2
	if res < 1 {
		res = 1
	}
	return &OnlineRouter{strategy: s, g: g, n: numPartitions, res: res, seed: uint64(seed)}, nil
}

// randomKey decorrelates the Random strategy's id hash from the
// Heterogeneous one under the same seed.
const randomKey = 0x9E3779B97F4A7C15

// Assign returns the partition in [0, NumPartitions) for one arriving
// trajectory.
func (r *OnlineRouter) Assign(tr *geo.Trajectory) int {
	switch r.strategy {
	case Homogeneous:
		return int(mix64(r.seed, hashString(r.g.CoarseKey(tr, r.res))) % uint64(r.n))
	case Random:
		return int(mix64(r.seed^randomKey, uint64(int64(tr.ID))) % uint64(r.n))
	default: // Heterogeneous
		return int(mix64(r.seed, uint64(int64(tr.ID))) % uint64(r.n))
	}
}

// NumPartitions returns the router's partition count.
func (r *OnlineRouter) NumPartitions() int { return r.n }

// hashString is FNV-1a over s — a fixed, process-independent hash:
// routing must be stable across driver restarts (the driver decides,
// workers obey), which rules out the seeded stdlib hashes.
func hashString(s string) uint64 {
	// FNV-1a, inlined to avoid the hash.Hash64 allocation per call.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is a splitmix64 finalizer over seed ⊕ v — cheap, stateless,
// and well-distributed for sequence counters.
func mix64(seed, v uint64) uint64 {
	x := seed ^ v
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
