// Package partition implements REPOSE's global partitioning
// (Section V): the heterogeneous strategy that spreads similar
// trajectories across partitions, plus the homogeneous and random
// strategies used as comparison points (Table VII), and an STR
// partitioner used by the DFT and DITA baselines.
package partition
