// Package oracle provides brute-force reference answers for top-k and
// radius trajectory similarity queries under all six measures. It is
// the single source of ground truth for the test suite: every test
// that needs an exact answer compares the trie-based engines against
// this package instead of rolling its own linear scan.
//
// The oracle is deliberately free of pruning, bounds, grids, and
// scratch reuse — each query is a full scan with the exact distance
// kernel — so a disagreement with an index always indicts the index.
package oracle

import (
	"math"
	"sort"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/topk"
)

// TopK returns the exact top-k items for q over ds, ascending by
// (distance, id), mirroring the index contract: nil for a non-positive
// k or empty query, fewer than k items only when ds holds fewer.
func TopK(m dist.Measure, p dist.Params, ds []*geo.Trajectory, q []geo.Point, k int) []topk.Item {
	if k <= 0 || len(q) == 0 || len(ds) == 0 {
		return nil
	}
	h := topk.New(k)
	for _, tr := range ds {
		h.Push(tr.ID, dist.Distance(m, q, tr.Points, p))
	}
	return h.Results()
}

// Radius returns every trajectory of ds within radius of q, ascending
// by (distance, id); nil for an empty query or negative radius.
func Radius(m dist.Measure, p dist.Params, ds []*geo.Trajectory, q []geo.Point, radius float64) []topk.Item {
	if len(q) == 0 || radius < 0 {
		return nil
	}
	var out []topk.Item
	for _, tr := range ds {
		d := dist.Distance(m, q, tr.Points, p)
		if d <= radius && !math.IsInf(d, 1) {
			out = append(out, topk.Item{ID: tr.ID, Dist: d})
		}
	}
	topk.SortItems(out)
	return out
}

// Spec selects a refined query mode, mirroring rptrie's RefineSpec
// without importing it (the index packages' tests import the oracle,
// so the dependency must point this way). The zero Spec is the
// whole-trajectory mode.
type Spec struct {
	// Sub scores the best-matching contiguous segment of each
	// candidate instead of the whole trajectory. MinSeg/MaxSeg bound
	// the segment length in sample points (MinSeg < 1 means 1,
	// MaxSeg ≤ 0 means unbounded).
	Sub            bool
	MinSeg, MaxSeg int
	// Window restricts candidates to trajectories with at least one
	// sample timestamped inside the closed window [From, To] and
	// scores only the in-window run. Untimestamped trajectories never
	// match.
	Window   bool
	From, To int64
}

// Refine returns the reference (distance, start, end) of one
// candidate under the spec: the matched half-open sample range and
// its exact distance, or +Inf when the candidate is ineligible (no
// window overlap, or no segment satisfying the length bounds). The
// segment scan is a plain per-segment kernel call — deliberately not
// dist.SubDistance — with ties resolved toward the lexicographically
// smallest (start, end), the order the index promises.
func (sp Spec) Refine(m dist.Measure, p dist.Params, q []geo.Point, tr *geo.Trajectory) (float64, int, int) {
	pts := tr.Points
	off := 0
	if sp.Window {
		lo, hi := tr.TimeWindow(sp.From, sp.To)
		if lo == hi {
			return math.Inf(1), 0, 0
		}
		pts = pts[lo:hi]
		off = lo
	}
	if !sp.Sub {
		return dist.Distance(m, q, pts, p), off, off + len(pts)
	}
	n := len(pts)
	minSeg, maxSeg := sp.MinSeg, sp.MaxSeg
	if maxSeg <= 0 || maxSeg > n {
		maxSeg = n
	}
	if minSeg < 1 {
		minSeg = 1
	}
	best, bs, be := math.Inf(1), 0, 0
	for st := 0; st+minSeg <= n; st++ {
		for e := minSeg; st+e <= n && e <= maxSeg; e++ {
			if d := dist.Distance(m, q, pts[st:st+e], p); d < best {
				best, bs, be = d, off+st, off+st+e
			}
		}
	}
	return best, bs, be
}

// TopKRefined returns the exact top-k items under the spec, ascending
// by (distance, id), each carrying its matched [Start, End) range.
// Ineligible candidates are excluded, so fewer than k items may
// return even over a large set.
func TopKRefined(m dist.Measure, p dist.Params, ds []*geo.Trajectory, q []geo.Point, k int, sp Spec) []topk.Item {
	if k <= 0 || len(q) == 0 || len(ds) == 0 {
		return nil
	}
	h := topk.New(k)
	for _, tr := range ds {
		d, s, e := sp.Refine(m, p, q, tr)
		h.PushItem(topk.Item{ID: tr.ID, Dist: d, Start: s, End: e})
	}
	return h.Results()
}

// RadiusRefined returns every eligible trajectory whose refined
// distance is within radius, ascending by (distance, id).
func RadiusRefined(m dist.Measure, p dist.Params, ds []*geo.Trajectory, q []geo.Point, radius float64, sp Spec) []topk.Item {
	if len(q) == 0 || radius < 0 {
		return nil
	}
	var out []topk.Item
	for _, tr := range ds {
		d, s, e := sp.Refine(m, p, q, tr)
		if d <= radius && !math.IsInf(d, 1) {
			out = append(out, topk.Item{ID: tr.ID, Dist: d, Start: s, End: e})
		}
	}
	topk.SortItems(out)
	return out
}

// Set is a mutable mirror of a live index's trajectory set. The
// differential tests apply every Insert/Delete/Upsert to both the
// index under test and a Set, then compare query answers.
type Set struct {
	trajs map[int]*geo.Trajectory
}

// NewSet returns a Set holding ds.
func NewSet(ds []*geo.Trajectory) *Set {
	s := &Set{trajs: make(map[int]*geo.Trajectory, len(ds))}
	for _, tr := range ds {
		s.trajs[tr.ID] = tr
	}
	return s
}

// Insert adds or replaces trajectories by id (upsert semantics — the
// mirror does not police duplicate ids; the index under test does).
func (s *Set) Insert(trs ...*geo.Trajectory) {
	for _, tr := range trs {
		s.trajs[tr.ID] = tr
	}
}

// Delete removes ids, returning how many were present.
func (s *Set) Delete(ids ...int) int {
	n := 0
	for _, id := range ids {
		if _, ok := s.trajs[id]; ok {
			delete(s.trajs, id)
			n++
		}
	}
	return n
}

// Has reports whether id is live.
func (s *Set) Has(id int) bool {
	_, ok := s.trajs[id]
	return ok
}

// Get returns the live trajectory with the given id, or nil.
func (s *Set) Get(id int) *geo.Trajectory { return s.trajs[id] }

// Len returns the number of live trajectories.
func (s *Set) Len() int { return len(s.trajs) }

// Slice returns the live trajectories sorted by id.
func (s *Set) Slice() []*geo.Trajectory {
	out := make([]*geo.Trajectory, 0, len(s.trajs))
	for _, tr := range s.trajs {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns the live ids sorted ascending.
func (s *Set) IDs() []int {
	out := make([]int, 0, len(s.trajs))
	for id := range s.trajs {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// TopK answers the top-k query over the current live set.
func (s *Set) TopK(m dist.Measure, p dist.Params, q []geo.Point, k int) []topk.Item {
	return TopK(m, p, s.Slice(), q, k)
}

// Radius answers the range query over the current live set.
func (s *Set) Radius(m dist.Measure, p dist.Params, q []geo.Point, radius float64) []topk.Item {
	return Radius(m, p, s.Slice(), q, radius)
}

// TopKRefined answers the refined top-k query over the live set.
func (s *Set) TopKRefined(m dist.Measure, p dist.Params, q []geo.Point, k int, sp Spec) []topk.Item {
	return TopKRefined(m, p, s.Slice(), q, k, sp)
}

// RadiusRefined answers the refined range query over the live set.
func (s *Set) RadiusRefined(m dist.Measure, p dist.Params, q []geo.Point, radius float64, sp Spec) []topk.Item {
	return RadiusRefined(m, p, s.Slice(), q, radius, sp)
}
