package oracle

import (
	"math"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
)

func tr(id int, xy ...float64) *geo.Trajectory {
	t := &geo.Trajectory{ID: id}
	for i := 0; i < len(xy); i += 2 {
		t.Points = append(t.Points, geo.Point{X: xy[i], Y: xy[i+1]})
	}
	return t
}

func TestTopKContract(t *testing.T) {
	ds := []*geo.Trajectory{tr(1, 0, 0), tr(2, 1, 0), tr(3, 5, 0)}
	q := []geo.Point{{X: 0, Y: 0}}
	got := TopK(dist.Hausdorff, dist.Params{}, ds, q, 2)
	if len(got) != 2 || got[0].ID != 1 || got[0].Dist != 0 || got[1].ID != 2 {
		t.Fatalf("top-2 = %v", got)
	}
	if TopK(dist.Hausdorff, dist.Params{}, ds, q, 0) != nil {
		t.Error("k=0 must be nil")
	}
	if TopK(dist.Hausdorff, dist.Params{}, ds, nil, 2) != nil {
		t.Error("empty query must be nil")
	}
	if n := len(TopK(dist.Hausdorff, dist.Params{}, ds, q, 10)); n != 3 {
		t.Errorf("k>N returned %d", n)
	}
}

func TestRadiusContract(t *testing.T) {
	ds := []*geo.Trajectory{tr(1, 0, 0), tr(2, 1, 0), tr(3, 5, 0)}
	q := []geo.Point{{X: 0, Y: 0}}
	got := Radius(dist.Hausdorff, dist.Params{}, ds, q, 1.5)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("radius hits = %v", got)
	}
	if Radius(dist.Hausdorff, dist.Params{}, ds, q, -1) != nil {
		t.Error("negative radius must be nil")
	}
	// Ties sort by id; exact boundary is inclusive.
	exact := Radius(dist.Hausdorff, dist.Params{}, ds, q, 1.0)
	if len(exact) != 2 || math.Abs(exact[1].Dist-1) > 1e-12 {
		t.Fatalf("inclusive boundary: %v", exact)
	}
}

func TestSetMirror(t *testing.T) {
	s := NewSet([]*geo.Trajectory{tr(1, 0, 0), tr(2, 1, 1)})
	if s.Len() != 2 || !s.Has(1) || s.Has(3) {
		t.Fatalf("fresh set: %v", s.IDs())
	}
	s.Insert(tr(3, 2, 2), tr(1, 9, 9)) // upsert id 1
	if s.Len() != 3 || s.Get(1).Points[0].X != 9 {
		t.Fatal("insert/upsert failed")
	}
	if n := s.Delete(1, 1, 99); n != 1 {
		t.Fatalf("delete removed %d", n)
	}
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("ids = %v", ids)
	}
	if got := s.TopK(dist.Hausdorff, dist.Params{}, []geo.Point{{X: 1, Y: 1}}, 1); got[0].ID != 2 {
		t.Fatalf("set topk = %v", got)
	}
}
