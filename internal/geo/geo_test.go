package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{0, 0}, Point{0, 2.5}, 2.5},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEq(got, c.want) {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.Dist2(c.q); !almostEq(got, c.want*c.want) {
			t.Errorf("Dist2(%v, %v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestPointDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Point{math.Mod(ax, 1e6), math.Mod(ay, 1e6)}
		b := Point{math.Mod(bx, 1e6), math.Mod(by, 1e6)}
		return almostEq(a.Dist(b), b.Dist(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{math.Mod(ax, 1e3), math.Mod(ay, 1e3)}
		b := Point{math.Mod(bx, 1e3), math.Mod(by, 1e3)}
		c := Point{math.Mod(cx, 1e3), math.Mod(cy, 1e3)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestTrajectoryBounds(t *testing.T) {
	tr := &Trajectory{ID: 1, Points: []Point{{0, 5}, {2, 1}, {-1, 3}}}
	b := tr.Bounds()
	want := Rect{Min: Point{-1, 1}, Max: Point{2, 5}}
	if b != want {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
	empty := &Trajectory{}
	if !empty.Bounds().IsEmpty() {
		t.Error("empty trajectory should have empty bounds")
	}
}

func TestTrajectoryCentroid(t *testing.T) {
	tr := &Trajectory{Points: []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}}
	if got := tr.Centroid(); got != (Point{1, 1}) {
		t.Errorf("Centroid = %v", got)
	}
	if got := (&Trajectory{}).Centroid(); got != (Point{}) {
		t.Errorf("empty Centroid = %v", got)
	}
}

func TestTrajectoryLength(t *testing.T) {
	tr := &Trajectory{Points: []Point{{0, 0}, {3, 4}, {3, 5}}}
	if got := tr.Length(); !almostEq(got, 6) {
		t.Errorf("Length = %v, want 6", got)
	}
	if got := (&Trajectory{Points: []Point{{1, 1}}}).Length(); got != 0 {
		t.Errorf("single-point Length = %v", got)
	}
}

func TestTrajectoryClone(t *testing.T) {
	tr := &Trajectory{ID: 7, Points: []Point{{1, 2}, {3, 4}}}
	cp := tr.Clone()
	cp.Points[0].X = 99
	if tr.Points[0].X == 99 {
		t.Error("Clone should deep-copy points")
	}
	if cp.ID != 7 {
		t.Errorf("Clone ID = %d", cp.ID)
	}
}

func TestRectEmpty(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Error("EmptyRect should be empty")
	}
	if e.Area() != 0 || e.Margin() != 0 {
		t.Error("empty rect area/margin should be 0")
	}
	r := e.ExtendPoint(Point{1, 1})
	if r.IsEmpty() || r.Min != (Point{1, 1}) || r.Max != (Point{1, 1}) {
		t.Errorf("extend of empty = %v", r)
	}
}

func TestRectUnionContains(t *testing.T) {
	a := Rect{Min: Point{0, 0}, Max: Point{1, 1}}
	b := Rect{Min: Point{2, 2}, Max: Point{3, 3}}
	u := a.Union(b)
	want := Rect{Min: Point{0, 0}, Max: Point{3, 3}}
	if u != want {
		t.Errorf("Union = %v, want %v", u, want)
	}
	if got := a.Union(EmptyRect()); got != a {
		t.Errorf("Union with empty = %v", got)
	}
	if got := EmptyRect().Union(b); got != b {
		t.Errorf("empty Union = %v", got)
	}
	if !u.Contains(Point{1.5, 1.5}) || u.Contains(Point{4, 0}) {
		t.Error("Contains misbehaves")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Min: Point{0, 0}, Max: Point{2, 2}}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{Min: Point{1, 1}, Max: Point{3, 3}}, true},
		{Rect{Min: Point{2, 2}, Max: Point{3, 3}}, true}, // touching corner
		{Rect{Min: Point{3, 3}, Max: Point{4, 4}}, false},
		{Rect{Min: Point{0, 3}, Max: Point{2, 4}}, false},
		{EmptyRect(), false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestRectDistPoint(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{2, 2}}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{1, 1}, 0},          // inside
		{Point{2, 2}, 0},          // corner
		{Point{5, 2}, 3},          // right of
		{Point{-3, -4}, 5},        // diagonal
		{Point{1, 4}, 2},          // above
		{Point{3, 3}, math.Sqrt2}, // corner diagonal
	}
	for _, c := range cases {
		if got := r.DistPoint(c.p); !almostEq(got, c.want) {
			t.Errorf("DistPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectMaxDistPoint(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{2, 2}}
	if got := r.MaxDistPoint(Point{0, 0}); !almostEq(got, 2*math.Sqrt2) {
		t.Errorf("MaxDistPoint corner = %v", got)
	}
	if got := r.MaxDistPoint(Point{1, 1}); !almostEq(got, math.Sqrt2) {
		t.Errorf("MaxDistPoint center = %v", got)
	}
	// MaxDist >= MinDist always.
	f := func(px, py float64) bool {
		p := Point{math.Mod(px, 100), math.Mod(py, 100)}
		return r.MaxDistPoint(p) >= r.DistPoint(p)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectDistRect(t *testing.T) {
	a := Rect{Min: Point{0, 0}, Max: Point{1, 1}}
	b := Rect{Min: Point{4, 5}, Max: Point{6, 7}}
	if got := a.DistRect(b); !almostEq(got, 5) {
		t.Errorf("DistRect = %v, want 5", got)
	}
	c := Rect{Min: Point{0.5, 0.5}, Max: Point{2, 2}}
	if got := a.DistRect(c); got != 0 {
		t.Errorf("overlapping DistRect = %v, want 0", got)
	}
}

func TestRectAreaMarginCenter(t *testing.T) {
	r := Rect{Min: Point{1, 1}, Max: Point{4, 3}}
	if got := r.Area(); !almostEq(got, 6) {
		t.Errorf("Area = %v", got)
	}
	if got := r.Margin(); !almostEq(got, 5) {
		t.Errorf("Margin = %v", got)
	}
	if got := r.Center(); got != (Point{2.5, 2}) {
		t.Errorf("Center = %v", got)
	}
}

func TestSegmentDistPoint(t *testing.T) {
	s := Segment{A: Point{0, 0}, B: Point{4, 0}}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{2, 3}, 3},  // perpendicular onto interior
		{Point{-3, 4}, 5}, // beyond A
		{Point{7, 4}, 5},  // beyond B
		{Point{4, 0}, 0},  // endpoint
	}
	for _, c := range cases {
		if got := s.DistPoint(c.p); !almostEq(got, c.want) {
			t.Errorf("DistPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment behaves like a point.
	d := Segment{A: Point{1, 1}, B: Point{1, 1}}
	if got := d.DistPoint(Point{4, 5}); !almostEq(got, 5) {
		t.Errorf("degenerate DistPoint = %v", got)
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Segment{A: Point{0, 0}, B: Point{3, 4}}
	if got := s.Length(); !almostEq(got, 5) {
		t.Errorf("Length = %v", got)
	}
	if got := s.Centroid(); got != (Point{1.5, 2}) {
		t.Errorf("Centroid = %v", got)
	}
	b := s.Bounds()
	if b.Min != (Point{0, 0}) || b.Max != (Point{3, 4}) {
		t.Errorf("Bounds = %v", b)
	}
}

func TestTrajectorySegments(t *testing.T) {
	tr := &Trajectory{Points: []Point{{0, 0}, {1, 0}, {1, 1}}}
	segs := tr.Segments()
	if len(segs) != 2 {
		t.Fatalf("Segments len = %d", len(segs))
	}
	if segs[0] != (Segment{A: Point{0, 0}, B: Point{1, 0}}) {
		t.Errorf("segs[0] = %v", segs[0])
	}
	if got := (&Trajectory{Points: []Point{{0, 0}}}).Segments(); got != nil {
		t.Errorf("single-point Segments = %v", got)
	}
}

func TestEnclosingSquare(t *testing.T) {
	ds := []*Trajectory{
		{Points: []Point{{0, 0}, {10, 2}}},
		{Points: []Point{{3, 8}}},
	}
	sq := EnclosingSquare(ds, 0)
	if sq.Max.X-sq.Min.X != sq.Max.Y-sq.Min.Y {
		t.Errorf("not square: %v", sq)
	}
	for _, tr := range ds {
		for _, p := range tr.Points {
			if !sq.Contains(p) {
				t.Errorf("square %v does not contain %v", sq, p)
			}
		}
	}
	// Pad grows the square.
	padded := EnclosingSquare(ds, 1)
	if padded.Max.X-padded.Min.X <= sq.Max.X-sq.Min.X {
		t.Error("pad did not grow square")
	}
	// Empty dataset yields the unit square.
	e := EnclosingSquare(nil, 0)
	if e.IsEmpty() {
		t.Error("empty dataset square should not be empty")
	}
	// All points identical: still a positive-side square.
	same := []*Trajectory{{Points: []Point{{5, 5}, {5, 5}}}}
	s2 := EnclosingSquare(same, 0)
	if s2.Max.X-s2.Min.X <= 0 {
		t.Errorf("degenerate square has non-positive side: %v", s2)
	}
}

func TestEnclosingSquareProperty(t *testing.T) {
	f := func(xs [8]float64, ys [8]float64) bool {
		tr := &Trajectory{}
		for i := range xs {
			tr.Points = append(tr.Points, Point{math.Mod(xs[i], 1e4), math.Mod(ys[i], 1e4)})
		}
		sq := EnclosingSquare([]*Trajectory{tr}, 0)
		for _, p := range tr.Points {
			if !sq.Contains(p) {
				return false
			}
		}
		return almostEq(sq.Max.X-sq.Min.X, sq.Max.Y-sq.Min.Y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
