// Package geo provides the geometric primitives underlying REPOSE:
// points, trajectories, axis-aligned rectangles, and the Euclidean
// distance helpers used by the similarity measures and index bounds.
//
// Coordinates are plain float64 pairs. The paper treats longitude and
// latitude as Euclidean coordinates (Definition 2 uses the Euclidean
// distance d), and so do we.
package geo

import (
	"fmt"
	"math"
	"sort"
)

// Point is a single trajectory sample: an (X, Y) position.
// X is the longitude-like axis and Y the latitude-like axis.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q.
// It avoids the square root for comparisons.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the component-wise sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the component-wise difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Trajectory is a finite time-ordered sequence of sample points
// (Definition 1). The ID identifies the trajectory within a dataset.
//
// Times optionally timestamps each sample: when non-nil it must have
// exactly one entry per point, non-decreasing (Unix seconds or any
// other monotone integer clock — the library only compares values).
// A nil Times leaves the trajectory purely spatial; time-windowed
// queries then never match it.
type Trajectory struct {
	ID     int
	Points []Point
	Times  []int64
}

// Len returns the number of sample points.
func (t *Trajectory) Len() int { return len(t.Points) }

// Clone returns a deep copy of t.
func (t *Trajectory) Clone() *Trajectory {
	pts := make([]Point, len(t.Points))
	copy(pts, t.Points)
	var ts []int64
	if t.Times != nil {
		ts = make([]int64, len(t.Times))
		copy(ts, t.Times)
	}
	return &Trajectory{ID: t.ID, Points: pts, Times: ts}
}

// ValidTimes reports whether the trajectory's timestamps are
// well-formed: absent, or one per point and non-decreasing.
func (t *Trajectory) ValidTimes() bool {
	if t.Times == nil {
		return true
	}
	if len(t.Times) != len(t.Points) {
		return false
	}
	for i := 1; i < len(t.Times); i++ {
		if t.Times[i] < t.Times[i-1] {
			return false
		}
	}
	return true
}

// TimeSpan returns the closed timestamp range [first, last] and
// whether the trajectory is timestamped at all.
func (t *Trajectory) TimeSpan() (from, to int64, ok bool) {
	if len(t.Times) == 0 {
		return 0, 0, false
	}
	return t.Times[0], t.Times[len(t.Times)-1], true
}

// TimeWindow returns the index range [lo, hi) of samples whose
// timestamp lies in the closed window [from, to]. Times are
// non-decreasing, so the in-window samples form one contiguous run;
// lo == hi means no sample falls inside the window (including the
// untimestamped case).
func (t *Trajectory) TimeWindow(from, to int64) (lo, hi int) {
	n := len(t.Times)
	if n == 0 || n != len(t.Points) || from > to {
		return 0, 0
	}
	lo = sort.Search(n, func(i int) bool { return t.Times[i] >= from })
	hi = sort.Search(n, func(i int) bool { return t.Times[i] > to })
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Bounds returns the minimum bounding rectangle of the trajectory.
// It returns the empty rectangle for an empty trajectory.
func (t *Trajectory) Bounds() Rect {
	if len(t.Points) == 0 {
		return EmptyRect()
	}
	r := Rect{Min: t.Points[0], Max: t.Points[0]}
	for _, p := range t.Points[1:] {
		r = r.ExtendPoint(p)
	}
	return r
}

// Centroid returns the mean of the trajectory's sample points.
// It returns the zero point for an empty trajectory.
func (t *Trajectory) Centroid() Point {
	if len(t.Points) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range t.Points {
		c.X += p.X
		c.Y += p.Y
	}
	n := float64(len(t.Points))
	return Point{c.X / n, c.Y / n}
}

// Length returns the travelled path length (sum of segment lengths).
func (t *Trajectory) Length() float64 {
	var sum float64
	for i := 1; i < len(t.Points); i++ {
		sum += t.Points[i-1].Dist(t.Points[i])
	}
	return sum
}

// Rect is an axis-aligned rectangle, closed on all sides.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns the canonical empty rectangle, for which IsEmpty
// reports true. Extending an empty rectangle by a point yields the
// degenerate rectangle covering exactly that point.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// IsEmpty reports whether r covers no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// ExtendPoint returns the smallest rectangle covering both r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Contains reports whether p lies inside r (boundaries included).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Area returns the area of r (0 for empty rectangles).
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Margin returns half the perimeter of r (0 for empty rectangles).
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) + (r.Max.Y - r.Min.Y)
}

// DistPoint returns the minimum Euclidean distance from p to r
// (0 when p is inside r).
func (r Rect) DistPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

// DistRect returns the minimum Euclidean distance between r and s
// (0 when they intersect).
func (r Rect) DistRect(s Rect) float64 {
	dx := math.Max(0, math.Max(r.Min.X-s.Max.X, s.Min.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-s.Max.Y, s.Min.Y-r.Max.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDistPoint returns the maximum Euclidean distance from p to any
// point of r. It is used for pessimistic bounds.
func (r Rect) MaxDistPoint(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

// Segment is a directed line segment between two points. DFT indexes
// trajectories at segment granularity.
type Segment struct {
	A, B Point
}

// Bounds returns the minimum bounding rectangle of s.
func (s Segment) Bounds() Rect {
	return Rect{
		Min: Point{math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y)},
		Max: Point{math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y)},
	}
}

// Centroid returns the midpoint of s.
func (s Segment) Centroid() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// DistPoint returns the minimum distance from p to the segment.
func (s Segment) DistPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	ap := p.Sub(s.A)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(s.A)
	}
	t := (ap.X*ab.X + ap.Y*ab.Y) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := s.A.Add(ab.Scale(t))
	return p.Dist(proj)
}

// Segments decomposes the trajectory into its consecutive segments.
// A trajectory with fewer than two points yields no segments.
func (t *Trajectory) Segments() []Segment {
	if len(t.Points) < 2 {
		return nil
	}
	segs := make([]Segment, 0, len(t.Points)-1)
	for i := 1; i < len(t.Points); i++ {
		segs = append(segs, Segment{A: t.Points[i-1], B: t.Points[i]})
	}
	return segs
}

// EnclosingSquare returns the smallest axis-aligned square that
// contains every trajectory in ds, expanded by pad on each side.
// It is the region A of the paper (Section III-A): a square with side
// length U enclosing all trajectories. The square is anchored at the
// rectangle's min corner.
func EnclosingSquare(ds []*Trajectory, pad float64) Rect {
	r := EmptyRect()
	for _, t := range ds {
		for _, p := range t.Points {
			r = r.ExtendPoint(p)
		}
	}
	if r.IsEmpty() {
		return Rect{Min: Point{0, 0}, Max: Point{1, 1}}
	}
	r.Min.X -= pad
	r.Min.Y -= pad
	r.Max.X += pad
	r.Max.Y += pad
	side := math.Max(r.Max.X-r.Min.X, r.Max.Y-r.Min.Y)
	if side == 0 {
		side = 1
	}
	return Rect{Min: r.Min, Max: Point{r.Min.X + side, r.Min.Y + side}}
}
