package bits

import (
	"math/rand"
	"testing"
)

func buildRandom(t *testing.T, rng *rand.Rand, n int, p float64) (*Set, []bool) {
	t.Helper()
	s := NewSet(n)
	ref := make([]bool, n)
	for i := 0; i < n; i++ {
		b := rng.Float64() < p
		ref[i] = b
		s.PushBit(b)
	}
	s.Seal()
	return s, ref
}

func TestGetMatchesPushed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, ref := buildRandom(t, rng, 1000, 0.3)
	for i, want := range ref {
		if got := s.Get(i); got != want {
			t.Fatalf("Get(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestRankAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 63, 64, 65, 512, 513, 5000} {
		s, ref := buildRandom(t, rng, n, 0.4)
		naive := 0
		for i := 0; i <= n; i++ {
			if got := s.Rank1(i); got != naive {
				t.Fatalf("n=%d: Rank1(%d) = %d, want %d", n, i, got, naive)
			}
			if got := s.Rank0(i); got != i-naive {
				t.Fatalf("n=%d: Rank0(%d) = %d, want %d", n, i, got, i-naive)
			}
			if i < n && ref[i] {
				naive++
			}
		}
		if s.Ones() != naive {
			t.Fatalf("Ones = %d, want %d", s.Ones(), naive)
		}
	}
}

func TestSelectInvertsRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 64, 100, 512, 5000} {
		s, ref := buildRandom(t, rng, n, 0.2)
		j := 0
		for i := 0; i < n; i++ {
			if ref[i] {
				if got := s.Select1(j); got != i {
					t.Fatalf("n=%d: Select1(%d) = %d, want %d", n, j, got, i)
				}
				j++
			}
		}
		if got := s.Select1(j); got != -1 {
			t.Fatalf("Select1 past end = %d, want -1", got)
		}
		if got := s.Select1(-1); got != -1 {
			t.Fatalf("Select1(-1) = %d", got)
		}
	}
}

func TestSelectRankRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, _ := buildRandom(t, rng, 4096, 0.5)
	for j := 0; j < s.Ones(); j++ {
		pos := s.Select1(j)
		if !s.Get(pos) {
			t.Fatalf("Select1(%d) = %d points at a 0-bit", j, pos)
		}
		if r := s.Rank1(pos); r != j {
			t.Fatalf("Rank1(Select1(%d)) = %d", j, r)
		}
	}
}

func TestPushN(t *testing.T) {
	s := NewSet(0)
	s.PushN(true, 3)
	s.PushN(false, 2)
	s.PushBit(true)
	s.Seal()
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Ones() != 4 {
		t.Fatalf("Ones = %d", s.Ones())
	}
	if !s.Get(0) || s.Get(3) || !s.Get(5) {
		t.Error("PushN bit pattern wrong")
	}
}

func TestSetBit(t *testing.T) {
	s := NewSet(0)
	s.PushN(false, 10)
	s.SetBit(7)
	s.Seal()
	if !s.Get(7) || s.Get(6) {
		t.Error("SetBit pattern wrong")
	}
	if s.Rank1(10) != 1 {
		t.Error("rank after SetBit wrong")
	}
}

func TestAllOnesAllZeros(t *testing.T) {
	ones := NewSet(0)
	ones.PushN(true, 200)
	ones.Seal()
	for i := 0; i <= 200; i++ {
		if ones.Rank1(i) != i {
			t.Fatalf("all-ones Rank1(%d) = %d", i, ones.Rank1(i))
		}
	}
	for j := 0; j < 200; j++ {
		if ones.Select1(j) != j {
			t.Fatalf("all-ones Select1(%d) = %d", j, ones.Select1(j))
		}
	}
	zeros := NewSet(0)
	zeros.PushN(false, 200)
	zeros.Seal()
	if zeros.Ones() != 0 || zeros.Select1(0) != -1 {
		t.Error("all-zeros misbehaves")
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"push after seal", func() { s := NewSet(0); s.Seal(); s.PushBit(true) }},
		{"get out of range", func() { s := NewSet(0); s.PushBit(true); s.Get(1) }},
		{"rank before seal", func() { s := NewSet(0); s.PushBit(true); s.Rank1(0) }},
		{"rank out of range", func() { s := NewSet(0); s.PushBit(true); s.Seal(); s.Rank1(2) }},
		{"setbit after seal", func() { s := NewSet(0); s.PushBit(false); s.Seal(); s.SetBit(0) }},
		{"select before seal", func() { s := NewSet(0); s.PushBit(true); s.Select1(0) }},
		{"ones before seal", func() { s := NewSet(0); s.Ones() }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

func TestSealIdempotent(t *testing.T) {
	s := NewSet(0)
	s.PushBit(true)
	s.Seal()
	s.Seal() // second seal is a no-op
	if s.Rank1(1) != 1 {
		t.Error("rank broken after double seal")
	}
}

func TestSizeBytesPositive(t *testing.T) {
	s := NewSet(0)
	s.PushN(true, 1000)
	s.Seal()
	if s.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 513, 4096} {
		orig := NewSet(n)
		for i := 0; i < n; i++ {
			orig.PushBit(i%3 == 0 || i%7 == 2)
		}
		orig.Seal()
		data, err := orig.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Set
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if back.Len() != orig.Len() || back.Ones() != orig.Ones() {
			t.Fatalf("n=%d: len/ones differ after round trip", n)
		}
		for i := 0; i < n; i++ {
			if back.Get(i) != orig.Get(i) {
				t.Fatalf("n=%d: bit %d differs", n, i)
			}
			if back.Rank1(i) != orig.Rank1(i) {
				t.Fatalf("n=%d: rank %d differs", n, i)
			}
		}
		for j := 0; j < orig.Ones(); j++ {
			if back.Select1(j) != orig.Select1(j) {
				t.Fatalf("n=%d: select %d differs", n, j)
			}
		}
	}
}

func TestUnmarshalBinaryErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":             nil,
		"truncated header":  {1, 2, 3},
		"ragged words":      append(make([]byte, 8), 1, 2, 3),
		"count over words":  {200, 0, 0, 0, 0, 0, 0, 0},
		"count under words": append(make([]byte, 8), make([]byte, 16)...),
	}
	// Bits set beyond the declared count must be rejected, not
	// silently kept where Rank1 would miscount.
	tail := make([]byte, 16)
	tail[0] = 3 // n = 3
	tail[8] = 0xFF
	cases["bits beyond count"] = tail
	for name, data := range cases {
		var s Set
		if err := s.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}
