// Package bits provides a bitset with constant-time rank and
// logarithmic select, the substrate for the succinct RP-Trie layout
// (Section III-B, "Succinct trie structure", after SuRF).
package bits

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

const (
	wordBits = 64
	// rankBlockWords is the number of 64-bit words per rank
	// directory entry. 8 words = 512 bits per block.
	rankBlockWords = 8
)

// Set is an append-only bitset with a rank directory. Bits are
// appended with PushBit/PushWord; Rank and Select become available
// after Seal (or are computed on demand if the set was sealed).
type Set struct {
	words  []uint64
	n      int      // number of valid bits
	ranks  []uint32 // ones before each block, built by Seal
	sealed bool
}

// NewSet returns an empty bitset with capacity hint nbits.
func NewSet(nbits int) *Set {
	return &Set{words: make([]uint64, 0, (nbits+wordBits-1)/wordBits)}
}

// Len returns the number of bits in the set.
func (s *Set) Len() int { return s.n }

// PushBit appends one bit.
func (s *Set) PushBit(b bool) {
	if s.sealed {
		panic("bits: push after Seal")
	}
	w := s.n / wordBits
	if w == len(s.words) {
		s.words = append(s.words, 0)
	}
	if b {
		s.words[w] |= 1 << uint(s.n%wordBits)
	}
	s.n++
}

// PushN appends n copies of bit b.
func (s *Set) PushN(b bool, n int) {
	for i := 0; i < n; i++ {
		s.PushBit(b)
	}
}

// Get returns bit i.
func (s *Set) Get(i int) bool {
	if i < 0 || i >= s.n {
		panic("bits: index out of range")
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// SetBit sets bit i to 1. Valid only before Seal.
func (s *Set) SetBit(i int) {
	if s.sealed {
		panic("bits: SetBit after Seal")
	}
	if i < 0 || i >= s.n {
		panic("bits: index out of range")
	}
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Seal builds the rank directory. After Seal the set is immutable.
func (s *Set) Seal() {
	if s.sealed {
		return
	}
	nblocks := (len(s.words) + rankBlockWords - 1) / rankBlockWords
	s.ranks = make([]uint32, nblocks+1)
	var total uint32
	for b := 0; b < nblocks; b++ {
		s.ranks[b] = total
		end := (b + 1) * rankBlockWords
		if end > len(s.words) {
			end = len(s.words)
		}
		for _, w := range s.words[b*rankBlockWords : end] {
			total += uint32(bits.OnesCount64(w))
		}
	}
	s.ranks[nblocks] = total
	s.sealed = true
}

// Rank1 returns the number of 1-bits in positions [0, i); i may equal
// Len. The set must be sealed.
func (s *Set) Rank1(i int) int {
	if !s.sealed {
		panic("bits: Rank1 before Seal")
	}
	if i < 0 || i > s.n {
		panic("bits: rank index out of range")
	}
	w := i / wordBits
	block := w / rankBlockWords
	r := int(s.ranks[block])
	for j := block * rankBlockWords; j < w; j++ {
		r += bits.OnesCount64(s.words[j])
	}
	if rem := uint(i % wordBits); rem != 0 {
		r += bits.OnesCount64(s.words[w] & (1<<rem - 1))
	}
	return r
}

// Rank0 returns the number of 0-bits in positions [0, i).
func (s *Set) Rank0(i int) int { return i - s.Rank1(i) }

// Ones returns the total number of 1-bits.
func (s *Set) Ones() int {
	if !s.sealed {
		panic("bits: Ones before Seal")
	}
	return int(s.ranks[len(s.ranks)-1])
}

// Select1 returns the position of the (j+1)-th 1-bit (0-based j), or
// -1 if there are not that many. The set must be sealed.
func (s *Set) Select1(j int) int {
	if !s.sealed {
		panic("bits: Select1 before Seal")
	}
	if j < 0 || j >= s.Ones() {
		return -1
	}
	// Binary search the rank directory for the block.
	lo, hi := 0, len(s.ranks)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int(s.ranks[mid]) <= j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	block := lo - 1
	r := int(s.ranks[block])
	for w := block * rankBlockWords; w < len(s.words); w++ {
		c := bits.OnesCount64(s.words[w])
		if r+c > j {
			// The target bit is inside word w.
			return w*wordBits + selectInWord(s.words[w], j-r)
		}
		r += c
	}
	return -1
}

// selectInWord returns the position of the (j+1)-th set bit in w.
func selectInWord(w uint64, j int) int {
	for i := 0; i < j; i++ {
		w &= w - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(w)
}

// SizeBytes returns the approximate in-memory footprint.
func (s *Set) SizeBytes() int {
	return len(s.words)*8 + len(s.ranks)*4 + 24
}

// MarshalBinary implements encoding.BinaryMarshaler (used by gob for
// index persistence): a little-endian uint64 bit count followed by the
// packed words. The rank directory is derivable and not serialized.
func (s *Set) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+len(s.words)*8)
	binary.LittleEndian.PutUint64(out, uint64(s.n))
	for i, w := range s.words {
		binary.LittleEndian.PutUint64(out[8+i*8:], w)
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The restored
// set is sealed: rank/select are immediately available.
func (s *Set) UnmarshalBinary(data []byte) error {
	if len(data) < 8 || (len(data)-8)%8 != 0 {
		return errors.New("bits: truncated bitset encoding")
	}
	n := binary.LittleEndian.Uint64(data)
	words := (len(data) - 8) / 8
	if n > uint64(words)*wordBits || (words > 0 && n <= uint64(words-1)*wordBits) {
		return errors.New("bits: bit count inconsistent with word count")
	}
	*s = Set{words: make([]uint64, words), n: int(n)}
	for i := range s.words {
		s.words[i] = binary.LittleEndian.Uint64(data[8+i*8:])
	}
	if tail := s.n % wordBits; tail != 0 {
		if s.words[words-1]&^(1<<uint(tail)-1) != 0 {
			return errors.New("bits: set bits beyond the bit count")
		}
	}
	s.Seal()
	return nil
}
