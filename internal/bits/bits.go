// Package bits provides a bitset with constant-time rank and
// sample-accelerated select, the substrate for the succinct RP-Trie
// layouts (Section III-B, "Succinct trie structure", after SuRF, and
// the tSTAT trit-array layout after Kanda & Fujii).
package bits

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

const (
	wordBits = 64
	// rankBlockWords is the number of 64-bit words per rank
	// directory block. 8 words = 512 bits per block.
	rankBlockWords = 8
	// superBlocks is the number of rank blocks per superblock.
	// 8 blocks = 4096 bits, so a block's offset from its superblock
	// rank always fits a uint16.
	superBlocks = 8
	superWords  = rankBlockWords * superBlocks
	// selectSampleRate is the 1-bit sampling stride for Select1: one
	// sample per selectSampleRate ones, recording the rank block that
	// holds the sampled bit. Select binary-searches only the blocks
	// between two adjacent samples, so its worst case is
	// O(log(blocks spanned by selectSampleRate ones)) instead of
	// O(log(all blocks)).
	selectSampleRate = 512
)

// Set is an append-only bitset with a two-level rank directory and
// sampled select. Bits are appended with PushBit/PushWord; Rank and
// Select become available after Seal. The directories are derived
// (never serialized): MarshalBinary emits only the bit count and the
// packed words, and UnmarshalBinary re-seals, so the wire format is
// stable across directory layout changes.
type Set struct {
	words []uint64
	n     int // number of valid bits

	// Rank directory, built by Seal. super[s] is the number of ones
	// before superblock s (64 words); blockOff[b] is the number of
	// ones between block b's superblock start and block b (8 words).
	super    []uint64
	blockOff []uint16
	ones     int

	// selectSamples[k] is the rank-block index containing the
	// (k*selectSampleRate+1)-th 1-bit.
	selectSamples []uint32

	sealed bool
}

// NewSet returns an empty bitset with capacity hint nbits.
func NewSet(nbits int) *Set {
	return &Set{words: make([]uint64, 0, (nbits+wordBits-1)/wordBits)}
}

// Len returns the number of bits in the set.
func (s *Set) Len() int { return s.n }

// PushBit appends one bit.
func (s *Set) PushBit(b bool) {
	if s.sealed {
		panic("bits: push after Seal")
	}
	w := s.n / wordBits
	if w == len(s.words) {
		s.words = append(s.words, 0)
	}
	if b {
		s.words[w] |= 1 << uint(s.n%wordBits)
	}
	s.n++
}

// PushN appends n copies of bit b.
func (s *Set) PushN(b bool, n int) {
	for i := 0; i < n; i++ {
		s.PushBit(b)
	}
}

// Get returns bit i.
func (s *Set) Get(i int) bool {
	if i < 0 || i >= s.n {
		panic("bits: index out of range")
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// SetBit sets bit i to 1. Valid only before Seal.
func (s *Set) SetBit(i int) {
	if s.sealed {
		panic("bits: SetBit after Seal")
	}
	if i < 0 || i >= s.n {
		panic("bits: index out of range")
	}
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Seal builds the rank directory and select samples. After Seal the
// set is immutable.
func (s *Set) Seal() {
	if s.sealed {
		return
	}
	nblocks := (len(s.words) + rankBlockWords - 1) / rankBlockWords
	nsupers := (nblocks + superBlocks - 1) / superBlocks
	s.super = make([]uint64, nsupers+1)
	s.blockOff = make([]uint16, nblocks)
	var total uint64
	var superBase uint64
	for b := 0; b < nblocks; b++ {
		if b%superBlocks == 0 {
			s.super[b/superBlocks] = total
			superBase = total
		}
		s.blockOff[b] = uint16(total - superBase)
		end := (b + 1) * rankBlockWords
		if end > len(s.words) {
			end = len(s.words)
		}
		for _, w := range s.words[b*rankBlockWords : end] {
			c := uint64(bits.OnesCount64(w))
			// Record the block of every selectSampleRate-th one.
			// Invariant: every sample with 1-bit index < total is
			// already recorded, so pending samples land in this word.
			for uint64(len(s.selectSamples))*selectSampleRate < total+c {
				s.selectSamples = append(s.selectSamples, uint32(b))
			}
			total += c
		}
	}
	s.super[nsupers] = total
	s.ones = int(total)
	s.sealed = true
}

// rankOfBlock returns the number of ones before rank block b; b may
// equal the block count (yielding Ones).
func (s *Set) rankOfBlock(b int) int {
	if b >= len(s.blockOff) {
		return s.ones
	}
	return int(s.super[b/superBlocks]) + int(s.blockOff[b])
}

// Rank1 returns the number of 1-bits in positions [0, i); i may equal
// Len. The set must be sealed. Constant time: one superblock load,
// one block offset load, and at most eight popcounts.
func (s *Set) Rank1(i int) int {
	if !s.sealed {
		panic("bits: Rank1 before Seal")
	}
	if i < 0 || i > s.n {
		panic("bits: rank index out of range")
	}
	w := i / wordBits
	block := w / rankBlockWords
	r := s.rankOfBlock(block)
	for j := block * rankBlockWords; j < w; j++ {
		r += bits.OnesCount64(s.words[j])
	}
	if rem := uint(i % wordBits); rem != 0 {
		r += bits.OnesCount64(s.words[w] & (1<<rem - 1))
	}
	return r
}

// Rank0 returns the number of 0-bits in positions [0, i).
func (s *Set) Rank0(i int) int { return i - s.Rank1(i) }

// Ones returns the total number of 1-bits.
func (s *Set) Ones() int {
	if !s.sealed {
		panic("bits: Ones before Seal")
	}
	return s.ones
}

// Select1 returns the position of the (j+1)-th 1-bit (0-based j), or
// -1 if there are not that many. The set must be sealed. The select
// samples bound the search to the blocks between two adjacent sampled
// ones, then one block (at most eight words) is scanned.
func (s *Set) Select1(j int) int {
	if !s.sealed {
		panic("bits: Select1 before Seal")
	}
	if j < 0 || j >= s.ones {
		return -1
	}
	// Narrow to the inter-sample block range containing the bit.
	k := j / selectSampleRate
	lo := int(s.selectSamples[k])
	hi := len(s.blockOff)
	if k+1 < len(s.selectSamples) {
		hi = int(s.selectSamples[k+1]) + 1
	}
	// Binary search for the last block whose rank is <= j.
	for lo < hi {
		mid := (lo + hi) / 2
		if s.rankOfBlock(mid) <= j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	block := lo - 1
	r := s.rankOfBlock(block)
	end := (block + 1) * rankBlockWords
	if end > len(s.words) {
		end = len(s.words)
	}
	for w := block * rankBlockWords; w < end; w++ {
		c := bits.OnesCount64(s.words[w])
		if r+c > j {
			// The target bit is inside word w.
			return w*wordBits + selectInWord(s.words[w], j-r)
		}
		r += c
	}
	return -1
}

// selectInWord returns the position of the (j+1)-th set bit in w.
func selectInWord(w uint64, j int) int {
	for i := 0; i < j; i++ {
		w &= w - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(w)
}

// SizeBytes returns the approximate in-memory footprint, directories
// included.
func (s *Set) SizeBytes() int {
	return len(s.words)*8 + len(s.super)*8 + len(s.blockOff)*2 +
		len(s.selectSamples)*4 + 96
}

// MarshalBinary implements encoding.BinaryMarshaler (used by gob for
// index persistence): a little-endian uint64 bit count followed by the
// packed words. The rank directory and select samples are derivable
// and not serialized, so the encoding is identical across directory
// layout revisions.
func (s *Set) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+len(s.words)*8)
	binary.LittleEndian.PutUint64(out, uint64(s.n))
	for i, w := range s.words {
		binary.LittleEndian.PutUint64(out[8+i*8:], w)
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The restored
// set is sealed: rank/select are immediately available.
func (s *Set) UnmarshalBinary(data []byte) error {
	if len(data) < 8 || (len(data)-8)%8 != 0 {
		return errors.New("bits: truncated bitset encoding")
	}
	n := binary.LittleEndian.Uint64(data)
	words := (len(data) - 8) / 8
	if n > uint64(words)*wordBits || (words > 0 && n <= uint64(words-1)*wordBits) {
		return errors.New("bits: bit count inconsistent with word count")
	}
	*s = Set{words: make([]uint64, words), n: int(n)}
	for i := range s.words {
		s.words[i] = binary.LittleEndian.Uint64(data[8+i*8:])
	}
	if tail := s.n % wordBits; tail != 0 {
		if s.words[words-1]&^(1<<uint(tail)-1) != 0 {
			return errors.New("bits: set bits beyond the bit count")
		}
	}
	s.Seal()
	return nil
}
