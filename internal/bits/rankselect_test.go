package bits

import (
	"bytes"
	"math/rand"
	"testing"
)

// naiveRank is the bit-loop reference implementation.
func naiveRank(ref []bool, i int) int {
	r := 0
	for _, b := range ref[:i] {
		if b {
			r++
		}
	}
	return r
}

// naiveSelect returns the position of the (j+1)-th true in ref, -1 if
// absent.
func naiveSelect(ref []bool, j int) int {
	for i, b := range ref {
		if b {
			if j == 0 {
				return i
			}
			j--
		}
	}
	return -1
}

// checkAgainstNaive verifies every rank and every select against the
// reference. For large sets ranks are probed at a stride plus all
// word/block/superblock boundaries.
func checkAgainstNaive(t *testing.T, name string, s *Set, ref []bool) {
	t.Helper()
	n := len(ref)
	stride := 1
	if n > 1<<14 {
		stride = 61 // prime: hits every residue mod 64 over time
	}
	naive := 0
	next := 0
	for i := 0; i <= n; i++ {
		if i == next || i%512 == 0 || i == n {
			if got := s.Rank1(i); got != naive {
				t.Fatalf("%s: Rank1(%d) = %d, want %d", name, i, got, naive)
			}
			if i == next {
				next += stride
			}
		}
		if i < n && ref[i] {
			naive++
		}
	}
	if s.Ones() != naive {
		t.Fatalf("%s: Ones = %d, want %d", name, s.Ones(), naive)
	}
	j := 0
	for i, b := range ref {
		if b {
			if got := s.Select1(j); got != i {
				t.Fatalf("%s: Select1(%d) = %d, want %d", name, j, got, i)
			}
			j++
		}
	}
	if got := s.Select1(naive); got != -1 {
		t.Fatalf("%s: Select1(Ones) = %d, want -1", name, got)
	}
}

func fromRef(ref []bool) *Set {
	s := NewSet(len(ref))
	for _, b := range ref {
		s.PushBit(b)
	}
	s.Seal()
	return s
}

// TestRankSelectPropertyRandom cross-checks rank/select against the
// naive reference over seeded random bitvectors at several densities
// and sizes spanning word, block, and superblock boundaries.
func TestRankSelectPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 63, 64, 65, 511, 512, 513, 4095, 4096, 4097, 40000}
	for _, p := range []float64{0.01, 0.35, 0.5, 0.99} {
		for _, n := range sizes {
			ref := make([]bool, n)
			for i := range ref {
				ref[i] = rng.Float64() < p
			}
			checkAgainstNaive(t, "random", fromRef(ref), ref)
		}
	}
}

// TestRankSelectPropertyAdversarial stresses the directory and select
// samples with the structured worst cases: all-zeros, all-ones, and
// long homogeneous runs (sparse ones separated by many empty blocks —
// the pattern that made the unsampled select scan unbounded).
func TestRankSelectPropertyAdversarial(t *testing.T) {
	const n = 100_000
	patterns := map[string]func(i int) bool{
		"all-zeros":     func(i int) bool { return false },
		"all-ones":      func(i int) bool { return true },
		"long-run":      func(i int) bool { return (i/9973)%2 == 1 },
		"sparse":        func(i int) bool { return i%8191 == 0 },
		"dense-gap":     func(i int) bool { return i < 2000 || i >= n-2000 },
		"block-aligned": func(i int) bool { return i%512 == 0 || i%512 == 511 },
	}
	for name, f := range patterns {
		ref := make([]bool, n)
		for i := range ref {
			ref[i] = f(i)
		}
		checkAgainstNaive(t, name, fromRef(ref), ref)
	}
}

// TestSelectSampleBoundaries pins select exactly at and around the
// sampling stride so an off-by-one in the sample table cannot hide.
func TestSelectSampleBoundaries(t *testing.T) {
	// One bit per 700 positions: samples land mid-block-range.
	const gap, count = 700, 3 * selectSampleRate
	ref := make([]bool, gap*count)
	for k := 0; k < count; k++ {
		ref[k*gap] = true
	}
	s := fromRef(ref)
	for _, j := range []int{
		0, 1,
		selectSampleRate - 1, selectSampleRate, selectSampleRate + 1,
		2*selectSampleRate - 1, 2 * selectSampleRate, 2*selectSampleRate + 1,
		count - 1,
	} {
		if got := s.Select1(j); got != j*gap {
			t.Fatalf("Select1(%d) = %d, want %d", j, got, j*gap)
		}
	}
}

// FuzzRankSelectMarshal builds a set from fuzzed bytes, round-trips it
// through MarshalBinary/UnmarshalBinary, and checks rank/select of the
// restored set against the naive reference (wired into CI fuzz-smoke).
func FuzzRankSelectMarshal(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xFF, 0x00, 0xFF}, uint8(3))
	f.Add(bytes.Repeat([]byte{0xAA}, 200), uint8(7))
	f.Add(bytes.Repeat([]byte{0x00}, 129), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, tail uint8) {
		// tail trims 0-7 bits off the end so lengths are not always
		// byte-aligned.
		n := len(data)*8 - int(tail%8)
		if n < 0 {
			n = 0
		}
		ref := make([]bool, n)
		for i := range ref {
			ref[i] = data[i/8]&(1<<uint(i%8)) != 0
		}
		s := fromRef(ref)
		enc, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Set
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		enc2, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("re-encoding not byte-identical")
		}
		if back.Len() != n {
			t.Fatalf("Len = %d, want %d", back.Len(), n)
		}
		// Spot-check rank at every boundary-ish index and full select.
		for i := 0; i <= n; i += 1 + i/17 {
			if got, want := back.Rank1(i), naiveRank(ref, i); got != want {
				t.Fatalf("Rank1(%d) = %d, want %d", i, got, want)
			}
		}
		for j := 0; j < back.Ones(); j++ {
			if got, want := back.Select1(j), naiveSelect(ref, j); got != want {
				t.Fatalf("Select1(%d) = %d, want %d", j, got, want)
			}
		}
	})
}

// bench10M builds the 10M-bit benchmark set once per density.
var bench10M = map[string]*Set{}

func getBench10M(b *testing.B, name string, p float64) *Set {
	if s, ok := bench10M[name]; ok {
		return s
	}
	rng := rand.New(rand.NewSource(99))
	const n = 10_000_000
	s := NewSet(n)
	for i := 0; i < n; i++ {
		s.PushBit(rng.Float64() < p)
	}
	s.Seal()
	bench10M[name] = s
	return s
}

func BenchmarkRank1(b *testing.B) {
	for _, c := range []struct {
		name string
		p    float64
	}{{"dense", 0.5}, {"sparse", 0.01}} {
		b.Run(c.name, func(b *testing.B) {
			s := getBench10M(b, c.name, c.p)
			n := s.Len()
			b.ReportAllocs()
			b.ResetTimer()
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += s.Rank1((i * 1_000_003) % (n + 1))
			}
			sinkInt = acc
		})
	}
}

func BenchmarkSelect1(b *testing.B) {
	for _, c := range []struct {
		name string
		p    float64
	}{{"dense", 0.5}, {"sparse", 0.01}} {
		b.Run(c.name, func(b *testing.B) {
			s := getBench10M(b, c.name, c.p)
			ones := s.Ones()
			b.ReportAllocs()
			b.ResetTimer()
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += s.Select1((i * 1_000_003) % ones)
			}
			sinkInt = acc
		})
	}
}

var sinkInt int
