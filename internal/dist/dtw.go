package dist

import (
	"math"

	"repose/internal/geo"
)

// dtwBounded computes sum-cost dynamic time warping:
//
//	c[i][j] = d(a_i, b_j) + min(c[i-1][j], c[i][j-1], c[i-1][j-1])
//
// Costs are non-negative, so c never decreases along a warping path
// and the row-minimum is an admissible cutoff, as in frechetBounded.
func dtwBounded(a, b []geo.Point, threshold float64, s *Scratch) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == len(b) {
			return 0
		}
		return math.Inf(1)
	}
	n := len(b)
	prev, cur := s.floatRows(n)

	acc := 0.0
	for j, q := range b {
		acc += a[0].Dist(q)
		prev[j] = acc
	}
	if prev[0] > threshold { // every warping path contains (a[0], b[0])
		return math.Inf(1)
	}

	for i := 1; i < len(a); i++ {
		rowMin := math.Inf(1)
		for j := 0; j < n; j++ {
			reach := prev[j]
			if j > 0 {
				reach = min(reach, prev[j-1], cur[j-1])
			}
			v := a[i].Dist(b[j]) + reach
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin > threshold {
			return math.Inf(1)
		}
		prev, cur = cur, prev
	}
	return prev[n-1]
}
