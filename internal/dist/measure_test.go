package dist

import (
	"math"
	"testing"

	"repose/internal/geo"
)

func TestMeasureEnum(t *testing.T) {
	ms := Measures()
	if len(ms) != 6 {
		t.Fatalf("Measures() has %d entries", len(ms))
	}
	wantOrder := []Measure{Hausdorff, Frechet, DTW, LCSS, EDR, ERP}
	for i, m := range ms {
		if m != wantOrder[i] {
			t.Errorf("Measures()[%d] = %v, want %v", i, m, wantOrder[i])
		}
	}
	if Hausdorff != 0 {
		t.Error("Hausdorff must be the zero value (the paper's default)")
	}
}

func TestMeasureStringParseRoundTrip(t *testing.T) {
	for _, m := range Measures() {
		got, err := ParseMeasure(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMeasure(%q) = %v, %v", m.String(), got, err)
		}
	}
	// Case-insensitive: the CLI flag help advertises mixed-case names.
	if m, err := ParseMeasure("hausdorff"); err != nil || m != Hausdorff {
		t.Errorf("ParseMeasure lowercase: %v, %v", m, err)
	}
	if m, err := ParseMeasure("dtw"); err != nil || m != DTW {
		t.Errorf("ParseMeasure lowercase: %v, %v", m, err)
	}
	if _, err := ParseMeasure("cosine"); err == nil {
		t.Error("unknown measure should fail to parse")
	}
	if s := Measure(99).String(); s != "Measure(99)" {
		t.Errorf("out-of-range String = %q", s)
	}
}

func TestMeasureClassification(t *testing.T) {
	metric := map[Measure]bool{Hausdorff: true, Frechet: true, ERP: true}
	orderFree := map[Measure]bool{Hausdorff: true}
	for _, m := range Measures() {
		if m.IsMetric() != metric[m] {
			t.Errorf("%v.IsMetric() = %v", m, m.IsMetric())
		}
		if m.OrderIndependent() != orderFree[m] {
			t.Errorf("%v.OrderIndependent() = %v", m, m.OrderIndependent())
		}
	}
}

func TestDefaultParams(t *testing.T) {
	region := geo.Rect{Min: geo.Point{X: 1, Y: 2}, Max: geo.Point{X: 4, Y: 6}}
	p := DefaultParams(region)
	if want := 0.05; math.Abs(p.Epsilon-want) > 1e-12 { // diameter 5, 1%
		t.Errorf("Epsilon = %v, want %v", p.Epsilon, want)
	}
	if p.Gap != region.Min {
		t.Errorf("Gap = %v, want %v", p.Gap, region.Min)
	}
}
