package dist

import (
	"math"

	"repose/internal/geo"
	"repose/internal/grid"
)

// NodeMeta summarizes a trie subtree for the one-side bound LBo:
// the range of member trajectory lengths (in sample points) and the
// number of trie levels below the node. MaxDepthBelow == 0 means the
// node's path is the complete reference trajectory of every member —
// the "complete" case in which the query-side bounds apply.
type NodeMeta struct {
	MinLen, MaxLen int
	MaxDepthBelow  int
}

// LeafMeta summarizes a terminal node for the two-side bound LBt.
// Dmax is the maximum distance from the leaf's reference trajectory
// to its member trajectories; it is meaningful (non-zero) only for
// metric measures.
type LeafMeta struct {
	NodeMeta
	Dmax float64
}

// Bounder computes admissible lower bounds on the distance between a
// fixed query and every trajectory stored beneath a trie node. It
// accumulates the node's root path one cell at a time via Extend;
// Clone forks the state at a branch so siblings extend independently
// (the last sibling may take ownership of the parent's state instead).
//
// Admissibility contract: for every trajectory t in the subtree
// (respectively leaf) described by meta, LBo(meta) ≤ Distance(m, q,
// t, p) and LBt(meta) ≤ Distance(m, q, t, p). The per-measure
// reasoning lives on (*bounder).LBo; the property tests in
// bound_test.go enforce the contract on random inputs.
//
// Precondition: indexed trajectories lie inside the grid region, so
// every sample point really is inside the cell its z-value names.
// repose.Build guarantees this by deriving the region from
// geo.EnclosingSquare over the dataset. (The grid clamps out-of-region
// points into boundary cells, which would break the contract; queries
// are never discretized, so they may stray freely.)
type Bounder interface {
	// Extend appends one grid cell to the accumulated path. O(|q|).
	Extend(c grid.Cell)
	// Clone returns an independent copy of the bound state.
	Clone() Bounder
	// LBo returns the one-side lower bound for a subtree.
	LBo(meta NodeMeta) float64
	// LBt returns the two-side lower bound for a terminal node.
	LBt(meta LeafMeta) float64
}

// NewBounder returns a Bounder for queries q under measure m.
// halfDiagonal is the grid's √2·δ/2 (Section IV); the implementation
// uses exact point-to-cell-rectangle distances, which are never
// looser than center-distance-minus-half-diagonal, so the parameter
// only documents the grid geometry the bounds are relative to.
func NewBounder(m Measure, q []geo.Point, halfDiagonal float64, p Params) Bounder {
	_ = halfDiagonal // see doc comment: the rectangle distances subsume it
	b := &bounder{m: m, q: q, p: p}
	b.minD = make([]float64, len(q))
	for i := range b.minD {
		b.minD[i] = math.Inf(1)
	}
	if m == ERP {
		b.gapD = make([]float64, len(q))
		for i, pt := range q {
			b.gapD[i] = pt.Dist(p.Gap)
		}
	}
	return b
}

// bounder is the incremental bound state shared by all six measures.
// Each Extend maintains every aggregate in O(|q|), so a root-to-node
// descent costs O(depth·|q|) total instead of O(depth²·|q|) for
// recomputation (see BenchmarkBounderIncremental).
type bounder struct {
	m Measure
	q []geo.Point
	p Params

	// refPts is the path's reference trajectory prefix (cell
	// centers), consumed by the metric two-side bound at leaves.
	// Only maintained for metric measures; nil otherwise.
	refPts []geo.Point

	// minD[i] is the minimum distance from q[i] to any path cell;
	// gapD[i] is d(q[i], Gap), precomputed for ERP.
	minD []float64
	gapD []float64

	maxCellMin float64  // max over path cells of min_i d(q[i], cell)
	sumCellMin float64  // Σ over path cells of min_i d(q[i], cell)
	sumCellGap float64  // ERP: Σ of min(min_i d(q[i], cell), d(Gap, cell))
	farCells   int      // LCSS/EDR: # path cells with min_i d(q[i], cell) > ε
	firstCell  float64  // d(q[0], first path cell); order-dependent measures
	lastCell   geo.Rect // most recent path cell
	depth      int
}

func (b *bounder) Extend(c grid.Cell) {
	cellMin := math.Inf(1)
	for i, pt := range b.q {
		d := c.Rect.DistPoint(pt)
		if d < b.minD[i] {
			b.minD[i] = d
		}
		if d < cellMin {
			cellMin = d
		}
	}
	if cellMin > b.maxCellMin {
		b.maxCellMin = cellMin
	}
	b.sumCellMin += cellMin
	switch b.m {
	case ERP:
		b.sumCellGap += math.Min(cellMin, c.Rect.DistPoint(b.p.Gap))
	case LCSS, EDR:
		if cellMin > b.p.Epsilon {
			b.farCells++
		}
	}
	if b.depth == 0 && len(b.q) > 0 {
		b.firstCell = c.Rect.DistPoint(b.q[0])
	}
	b.lastCell = c.Rect
	b.depth++
	if b.m.IsMetric() {
		b.refPts = append(b.refPts, c.Center)
	}
}

func (b *bounder) Clone() Bounder {
	nb := *b
	nb.minD = append([]float64(nil), b.minD...)
	nb.refPts = append([]geo.Point(nil), b.refPts...)
	// gapD is immutable after construction and safely shared.
	return &nb
}

// LBo computes the one-side bound. Why each case never exceeds the
// exact distance to a member trajectory t of the subtree:
//
// Facts used throughout — (F1) t has a sample point inside every path
// cell, and distinct path elements (runs) contain distinct sample
// points; (F2) when meta.MaxDepthBelow == 0 the path is t's complete
// reference trajectory, so every sample point of t lies in some path
// cell; (F3) d(p, cell) ≤ d(p, x) for any point x inside the cell;
// (F4) order-dependent measures are never built with z-value
// re-arrangement, so the first (and, complete, the last) path cell
// holds t's first (last) sample point.
//
//   - Hausdorff: by F1+F3, max over path cells of min_i d(q[i], cell)
//     lower-bounds the directed distance t→q; complete, by F2+F3,
//     max_i minD[i] lower-bounds the directed distance q→t. Both
//     directions lower-bound the symmetric maximum.
//   - Frechet: a coupling matches every point of both sequences, so
//     the Hausdorff bound applies; it also always contains the pair
//     (q[0], t[0]), adding firstCell by F4, and (q[m−1], t[n−1]),
//     adding the last-cell distance when complete.
//   - DTW: every point of t is matched at cost ≥ its min distance to
//     q, and distinct path cells contribute distinct points (F1), so
//     the cell-min sum is admissible; complete, each q[i] is matched
//     at cost ≥ minD[i], giving the query-side sum. Each sum bounds
//     the total independently, so their max is admissible.
//   - LCSS: q[i] can ε-match a point of t only if minD[i] ≤ ε
//     (complete, F2+F3). With R such query points, LCSS ≤ min(R, m,
//     n), and distance = 1 − LCSS/min(m, n) ≥ 1 − R/min(m, MinLen)
//     for every member length n ≥ MinLen. Incomplete: 0.
//   - EDR: EDR ≥ |m − n| ≥ the length-gap bound; every far path cell
//     (min_i d > ε) holds a point of t that costs ≥ 1 in any edit
//     script (F1); complete, every far query point costs ≥ 1. A
//     substitution can cover one far point from each side, so the
//     counts are not summed — the max of the three terms is taken.
//   - ERP: every point of t is either aligned (cost ≥ its min
//     distance to q) or gapped (cost ≥ its distance to Gap), giving
//     the per-cell min(cellMin, d(Gap, cell)) sum via F1+F3;
//     complete, the symmetric query-side sum applies. Max of the two.
func (b *bounder) LBo(meta NodeMeta) float64 {
	if b.depth == 0 {
		return 0
	}
	complete := meta.MaxDepthBelow == 0
	switch b.m {
	case Hausdorff:
		lb := b.maxCellMin
		if complete {
			for _, d := range b.minD {
				if d > lb {
					lb = d
				}
			}
		}
		return lb
	case Frechet:
		lb := math.Max(b.maxCellMin, b.firstCell)
		if complete {
			for _, d := range b.minD {
				if d > lb {
					lb = d
				}
			}
			if d := b.lastCell.DistPoint(b.q[len(b.q)-1]); d > lb {
				lb = d
			}
		}
		return lb
	case DTW:
		lb := math.Max(b.sumCellMin, b.firstCell)
		if complete {
			s := 0.0
			for _, d := range b.minD {
				s += d
			}
			if s > lb {
				lb = s
			}
		}
		return lb
	case LCSS:
		if !complete {
			return 0
		}
		matchable := 0
		for _, d := range b.minD {
			if d <= b.p.Epsilon {
				matchable++
			}
		}
		denom := float64(min(len(b.q), meta.MinLen))
		if denom <= 0 || float64(matchable) >= denom {
			return 0
		}
		return 1 - float64(matchable)/denom
	case EDR:
		m := len(b.q)
		lb := 0
		if meta.MinLen > m {
			lb = meta.MinLen - m
		} else if meta.MaxLen < m {
			lb = m - meta.MaxLen
		}
		if b.farCells > lb {
			lb = b.farCells
		}
		if complete {
			far := 0
			for _, d := range b.minD {
				if d > b.p.Epsilon {
					far++
				}
			}
			if far > lb {
				lb = far
			}
		}
		return float64(lb)
	case ERP:
		lb := b.sumCellGap
		if complete {
			s := 0.0
			for i, d := range b.minD {
				s += math.Min(d, b.gapD[i])
			}
			if s > lb {
				lb = s
			}
		}
		return lb
	}
	return 0
}

// LBt computes the two-side bound for a terminal node. A leaf's path
// is always complete, so LBo with MaxDepthBelow forced to 0 applies;
// metric measures additionally get the triangle-inequality bound
// through the leaf's reference trajectory r: for every member t,
// Distance(q, t) ≥ Distance(q, r) − Distance(r, t) ≥ Distance(q, r) −
// Dmax (Section IV-C). The trie stores Dmax only for metric measures,
// which is exactly when the triangle inequality holds.
func (b *bounder) LBt(meta LeafMeta) float64 {
	nm := meta.NodeMeta
	nm.MaxDepthBelow = 0
	lb := b.LBo(nm)
	if b.m.IsMetric() && len(b.refPts) > 0 && len(b.q) > 0 {
		if d := Distance(b.m, b.q, b.refPts, b.p) - meta.Dmax; d > lb {
			lb = d
		}
	}
	return lb
}
