package dist

import (
	"math"
	"slices"

	"repose/internal/geo"
	"repose/internal/grid"
)

// NodeMeta summarizes a trie subtree for the one-side bound LBo:
// the range of member trajectory lengths (in sample points) and the
// number of trie levels below the node. MaxDepthBelow == 0 means the
// node's path is the complete reference trajectory of every member —
// the "complete" case in which the query-side bounds apply.
type NodeMeta struct {
	MinLen, MaxLen int
	MaxDepthBelow  int
}

// LeafMeta summarizes a terminal node for the two-side bound LBt.
// Dmax is the maximum distance from the leaf's reference trajectory
// to its member trajectories; it is meaningful (non-zero) only for
// metric measures.
type LeafMeta struct {
	NodeMeta
	Dmax float64
}

// Bounder computes admissible lower bounds on the distance between a
// fixed query and every trajectory stored beneath a trie node. It
// accumulates the node's root path one cell at a time via Extend;
// Clone forks the state at a branch so siblings extend independently
// (the last sibling may take ownership of the parent's state instead).
//
// Admissibility contract: for every trajectory t in the subtree
// (respectively leaf) described by meta, LBo(meta) ≤ Distance(m, q,
// t, p) and LBt(meta) ≤ Distance(m, q, t, p). The per-measure
// reasoning lives on (*PathBounder).LBo; the property tests in
// bound_test.go enforce the contract on random inputs.
//
// Precondition: indexed trajectories lie inside the grid region, so
// every sample point really is inside the cell its z-value names.
// repose.Build guarantees this by deriving the region from
// geo.EnclosingSquare over the dataset. (The grid clamps out-of-region
// points into boundary cells, which would break the contract; queries
// are never discretized, so they may stray freely.)
//
// The interface is retained for the property tests and external
// callers; the search hot path holds the concrete *PathBounder, whose
// Fork/Release/ExtendZ variants recycle state through the owning
// QueryBounds instead of allocating.
type Bounder interface {
	// Extend appends one grid cell to the accumulated path. Cells
	// must come from one grid (CellByZ/CellOf), so that Z uniquely
	// identifies the cell's rectangle: the implementation memoizes
	// per-cell distances by z-value, and two distinct rectangles
	// sharing a Z would alias in the cache.
	Extend(c grid.Cell)
	// Clone returns an independent copy of the bound state.
	Clone() Bounder
	// LBo returns the one-side lower bound for a subtree.
	LBo(meta NodeMeta) float64
	// LBt returns the two-side lower bound for a terminal node.
	LBt(meta LeafMeta) float64
}

// NewBounder returns a Bounder for queries q under measure m, backed
// by a private QueryBounds. halfDiagonal is the grid's √2·δ/2
// (Section IV); the implementation uses exact point-to-cell-rectangle
// distances, which are never looser than center-distance-minus-half-
// diagonal, so the parameter only documents the grid geometry the
// bounds are relative to.
func NewBounder(m Measure, q []geo.Point, halfDiagonal float64, p Params) Bounder {
	_ = halfDiagonal // see doc comment: the rectangle distances subsume it
	return NewQueryBounds(m, q, nil, p).Root()
}

// cellEntry is the memoized query→cell distance record of one
// distinct grid cell: the per-query-point rectangle distances and the
// scalar aggregates every bound update needs. Entries are immutable
// once computed; they are shared by every PathBounder of the query.
type cellEntry struct {
	dists  []float64 // d(q[i], cell rectangle), one per query point
	min    float64   // min_i dists[i]
	gapMin float64   // ERP: min(min, d(Gap, cell))
	center geo.Point // cell reference point, for the metric leaf bound
	far    bool      // LCSS/EDR: min > ε
}

// QueryBounds is the shared per-query bound state: the query→cell
// distance table memoized by z-value and the arena of PathBounder
// objects the traversal forks and releases. Cells repeat heavily
// across sibling subtrees and across Extend/Clone chains, so each
// distinct cell pays its O(|q|) rectangle-distance scan exactly once
// per query; every revisit is a table hit. Reset recycles all backing
// storage for the next query, which is what makes a pooled searcher
// allocation-free in steady state.
//
// A QueryBounds and every PathBounder it owns are confined to one
// goroutine.
type QueryBounds struct {
	m Measure
	q []geo.Point
	p Params
	g *grid.Grid // nil: cells must be supplied via Extend

	byZ   map[uint64]int32
	cells []cellEntry
	dists []float64 // arena backing cellEntry.dists

	gapD []float64 // ERP: d(q[i], Gap), fixed per query

	all  []*PathBounder // every bounder ever created, for recycling
	free []*PathBounder // currently unused bounders
}

// NewQueryBounds returns query bound state for q under m on grid g.
// g may be nil when cells are always supplied via Extend.
func NewQueryBounds(m Measure, q []geo.Point, g *grid.Grid, p Params) *QueryBounds {
	qb := &QueryBounds{}
	qb.Reset(m, q, g, p)
	return qb
}

// Reset re-targets the state at a new query, retaining all backing
// storage. Every PathBounder previously obtained from this
// QueryBounds is invalidated and recycled.
func (qb *QueryBounds) Reset(m Measure, q []geo.Point, g *grid.Grid, p Params) {
	qb.m, qb.q, qb.g, qb.p = m, q, g, p
	if qb.byZ == nil {
		qb.byZ = make(map[uint64]int32)
	} else {
		clear(qb.byZ)
	}
	qb.cells = qb.cells[:0]
	qb.dists = qb.dists[:0]
	if m == ERP {
		qb.gapD = growFloats(qb.gapD, len(q))
		for i, pt := range q {
			qb.gapD[i] = pt.Dist(p.Gap)
		}
	} else {
		qb.gapD = qb.gapD[:0]
	}
	qb.free = append(qb.free[:0], qb.all...)
}

// Root returns a fresh zero-depth PathBounder for the query.
func (qb *QueryBounds) Root() *PathBounder {
	return qb.get(true)
}

// get returns a recycled (or new) PathBounder. fill initializes minD
// to +Inf; Fork skips it because it copies the source over anyway.
func (qb *QueryBounds) get(fill bool) *PathBounder {
	var b *PathBounder
	if n := len(qb.free); n > 0 {
		b = qb.free[n-1]
		qb.free = qb.free[:n-1]
	} else {
		b = &PathBounder{}
		qb.all = append(qb.all, b)
	}
	b.qb = qb
	b.minD = growFloats(b.minD, len(qb.q))
	if fill {
		for i := range b.minD {
			b.minD[i] = math.Inf(1)
		}
	}
	b.refPts = b.refPts[:0]
	b.maxCellMin, b.sumCellMin, b.sumCellGap = 0, 0, 0
	b.firstD, b.lastD = 0, 0
	b.farCells, b.depth = 0, 0
	return b
}

// cell returns the memoized entry for z, computing it on first sight.
// When the caller already materialized the cell it passes it with
// have=true; otherwise the grid reconstructs it by z.
func (qb *QueryBounds) cell(z uint64, have bool, c grid.Cell) *cellEntry {
	if i, ok := qb.byZ[z]; ok {
		return &qb.cells[i]
	}
	if !have {
		c = qb.g.CellByZ(z)
	}
	m := len(qb.q)
	base := len(qb.dists)
	qb.dists = slices.Grow(qb.dists, m)[:base+m]
	// Growth may relocate the arena; entries handed out earlier keep
	// slice headers into the previous (copied, immutable) backing.
	d := qb.dists[base : base+m : base+m]
	cmin := math.Inf(1)
	for i, pt := range qb.q {
		v := c.Rect.DistPoint(pt)
		d[i] = v
		if v < cmin {
			cmin = v
		}
	}
	e := cellEntry{dists: d, min: cmin, center: c.Center}
	switch qb.m {
	case ERP:
		e.gapMin = math.Min(cmin, c.Rect.DistPoint(qb.p.Gap))
	case LCSS, EDR:
		e.far = cmin > qb.p.Epsilon
	}
	qb.byZ[z] = int32(len(qb.cells))
	qb.cells = append(qb.cells, e)
	return &qb.cells[len(qb.cells)-1]
}

// PathBounder is the incremental bound state of one root-to-node
// path, shared by all six measures. Each Extend maintains every
// aggregate in O(|q|) min-merges over the memoized cell entry (the
// rectangle distances themselves are computed once per distinct cell,
// see QueryBounds), so a root-to-node descent costs O(depth·|q|)
// total instead of O(depth²·|q|) for recomputation
// (see BenchmarkBounderIncremental).
type PathBounder struct {
	qb *QueryBounds

	// minD[i] is the minimum distance from q[i] to any path cell.
	minD []float64

	// refPts is the path's reference trajectory prefix (cell
	// centers), consumed by the metric two-side bound at leaves.
	// Only maintained for metric measures; empty otherwise.
	refPts []geo.Point

	maxCellMin float64 // max over path cells of min_i d(q[i], cell)
	sumCellMin float64 // Σ over path cells of min_i d(q[i], cell)
	sumCellGap float64 // ERP: Σ of min(min_i d(q[i], cell), d(Gap, cell))
	firstD     float64 // d(q[0], first path cell); order-dependent measures
	lastD      float64 // d(q[m−1], most recent path cell)
	farCells   int     // LCSS/EDR: # path cells with min_i d(q[i], cell) > ε
	depth      int
}

// ExtendZ appends the grid cell with z-value z to the path. The
// owning QueryBounds must have been built with a grid.
func (b *PathBounder) ExtendZ(z uint64) {
	b.extend(b.qb.cell(z, false, grid.Cell{}))
}

// Extend implements Bounder.
func (b *PathBounder) Extend(c grid.Cell) {
	b.extend(b.qb.cell(c.Z, true, c))
}

func (b *PathBounder) extend(e *cellEntry) {
	for i, d := range e.dists {
		if d < b.minD[i] {
			b.minD[i] = d
		}
	}
	if e.min > b.maxCellMin {
		b.maxCellMin = e.min
	}
	b.sumCellMin += e.min
	switch b.qb.m {
	case ERP:
		b.sumCellGap += e.gapMin
	case LCSS, EDR:
		if e.far {
			b.farCells++
		}
	}
	if n := len(e.dists); n > 0 {
		if b.depth == 0 {
			b.firstD = e.dists[0]
		}
		b.lastD = e.dists[n-1]
	}
	b.depth++
	if b.qb.m.IsMetric() {
		b.refPts = append(b.refPts, e.center)
	}
}

// Fork returns an independent copy of the bound state drawn from the
// owning QueryBounds' recycle arena.
func (b *PathBounder) Fork() *PathBounder {
	nb := b.qb.get(false)
	copy(nb.minD, b.minD)
	nb.refPts = append(nb.refPts, b.refPts...)
	nb.maxCellMin, nb.sumCellMin, nb.sumCellGap = b.maxCellMin, b.sumCellMin, b.sumCellGap
	nb.firstD, nb.lastD = b.firstD, b.lastD
	nb.farCells, nb.depth = b.farCells, b.depth
	return nb
}

// Clone implements Bounder.
func (b *PathBounder) Clone() Bounder { return b.Fork() }

// Release returns the bounder to the owning QueryBounds for reuse.
// The caller must not touch it afterwards. Releasing is optional —
// Reset reclaims everything — but keeps the live arena at O(depth)
// instead of O(visited nodes).
func (b *PathBounder) Release() {
	b.qb.free = append(b.qb.free, b)
}

// LBo computes the one-side bound. Why each case never exceeds the
// exact distance to a member trajectory t of the subtree:
//
// Facts used throughout — (F1) t has a sample point inside every path
// cell, and distinct path elements (runs) contain distinct sample
// points; (F2) when meta.MaxDepthBelow == 0 the path is t's complete
// reference trajectory, so every sample point of t lies in some path
// cell; (F3) d(p, cell) ≤ d(p, x) for any point x inside the cell;
// (F4) order-dependent measures are never built with z-value
// re-arrangement, so the first (and, complete, the last) path cell
// holds t's first (last) sample point.
//
//   - Hausdorff: by F1+F3, max over path cells of min_i d(q[i], cell)
//     lower-bounds the directed distance t→q; complete, by F2+F3,
//     max_i minD[i] lower-bounds the directed distance q→t. Both
//     directions lower-bound the symmetric maximum.
//   - Frechet: a coupling matches every point of both sequences, so
//     the Hausdorff bound applies; it also always contains the pair
//     (q[0], t[0]), adding firstD by F4, and (q[m−1], t[n−1]),
//     adding the last-cell distance when complete.
//   - DTW: every point of t is matched at cost ≥ its min distance to
//     q, and distinct path cells contribute distinct points (F1), so
//     the cell-min sum is admissible; complete, each q[i] is matched
//     at cost ≥ minD[i], giving the query-side sum. Each sum bounds
//     the total independently, so their max is admissible.
//   - LCSS: q[i] can ε-match a point of t only if minD[i] ≤ ε
//     (complete, F2+F3). With R such query points, LCSS ≤ min(R, m,
//     n), and distance = 1 − LCSS/min(m, n) ≥ 1 − R/min(m, MinLen)
//     for every member length n ≥ MinLen. Incomplete: 0.
//   - EDR: EDR ≥ |m − n| ≥ the length-gap bound; every far path cell
//     (min_i d > ε) holds a point of t that costs ≥ 1 in any edit
//     script (F1); complete, every far query point costs ≥ 1. A
//     substitution can cover one far point from each side, so the
//     counts are not summed — the max of the three terms is taken.
//   - ERP: every point of t is either aligned (cost ≥ its min
//     distance to q) or gapped (cost ≥ its distance to Gap), giving
//     the per-cell min(cellMin, d(Gap, cell)) sum via F1+F3;
//     complete, the symmetric query-side sum applies. Max of the two.
func (b *PathBounder) LBo(meta NodeMeta) float64 {
	if b.depth == 0 {
		return 0
	}
	qb := b.qb
	complete := meta.MaxDepthBelow == 0
	switch qb.m {
	case Hausdorff:
		lb := b.maxCellMin
		if complete {
			for _, d := range b.minD {
				if d > lb {
					lb = d
				}
			}
		}
		return lb
	case Frechet:
		lb := math.Max(b.maxCellMin, b.firstD)
		if complete {
			for _, d := range b.minD {
				if d > lb {
					lb = d
				}
			}
			if b.lastD > lb {
				lb = b.lastD
			}
		}
		return lb
	case DTW:
		lb := math.Max(b.sumCellMin, b.firstD)
		if complete {
			s := 0.0
			for _, d := range b.minD {
				s += d
			}
			if s > lb {
				lb = s
			}
		}
		return lb
	case LCSS:
		if !complete {
			return 0
		}
		matchable := 0
		for _, d := range b.minD {
			if d <= qb.p.Epsilon {
				matchable++
			}
		}
		denom := float64(min(len(qb.q), meta.MinLen))
		if denom <= 0 || float64(matchable) >= denom {
			return 0
		}
		return 1 - float64(matchable)/denom
	case EDR:
		m := len(qb.q)
		lb := 0
		if meta.MinLen > m {
			lb = meta.MinLen - m
		} else if meta.MaxLen < m {
			lb = m - meta.MaxLen
		}
		if b.farCells > lb {
			lb = b.farCells
		}
		if complete {
			far := 0
			for _, d := range b.minD {
				if d > qb.p.Epsilon {
					far++
				}
			}
			if far > lb {
				lb = far
			}
		}
		return float64(lb)
	case ERP:
		lb := b.sumCellGap
		if complete {
			s := 0.0
			for i, d := range b.minD {
				s += math.Min(d, qb.gapD[i])
			}
			if s > lb {
				lb = s
			}
		}
		return lb
	}
	return 0
}

// LBoSub computes the one-side bound for segment (subtrajectory)
// queries: for every member trajectory t of the subtree described by
// meta and every nonempty contiguous segment seg of t,
// LBoSub(meta) ≤ Distance(m, q, seg, p).
//
// Only the query-side terms of LBo survive the restriction to a
// segment. Complete (F2 in LBo's comment), every sample point of t —
// hence of seg ⊆ t — lies in some path cell, so d(q[i], x) ≥ minD[i]
// for every x ∈ seg; the query-side aggregates over minD therefore
// still apply. Every candidate-side term (maxCellMin, sumCellMin,
// sumCellGap, farCells, firstD, lastD) asserts that seg covers
// specific path cells, which a segment need not, so they are all
// dropped:
//
//   - Hausdorff / Frechet: the directed distance q→seg (respectively
//     any coupling) matches every q[i] at cost ≥ minD[i], so
//     max_i minD[i] is admissible. Incomplete: 0.
//   - DTW: each q[i] is matched at cost ≥ minD[i]; Σ minD[i].
//     Incomplete: 0.
//   - LCSS: a one-point segment makes the denominator min(m, |seg|)
//     as small as 1, so any single ε-matchable query point collapses
//     the bound to 0. Only the all-far case survives: if no q[i] can
//     ε-match any point of t, LCSS = 0 against every segment and the
//     distance is exactly 1. Incomplete: 0.
//   - EDR: |seg| ≤ MaxLen gives EDR ≥ m − MaxLen when positive
//     (length-only, valid even incomplete); complete, every far query
//     point (minD[i] > ε) costs ≥ 1 in any edit script against seg.
//     The MinLen side of LBo's length gap is dropped — a segment may
//     be arbitrarily short.
//   - ERP: each q[i] is either aligned (cost ≥ minD[i]) or gapped
//     (cost ≥ gapD[i]); Σ min(minD[i], gapD[i]). Incomplete: 0.
//
// Neither the metric leaf bound LBt (Dmax bounds d(reference, t), not
// d(reference, seg)) nor the pivot bound LBp (pivot distances are
// whole-trajectory) transfers to segments; segment searches use
// LBoSub alone. Windowed scoring only ever shrinks the candidate to a
// contiguous segment, so the same bound covers time-windowed queries.
func (b *PathBounder) LBoSub(meta NodeMeta) float64 {
	if b.depth == 0 {
		return 0
	}
	qb := b.qb
	complete := meta.MaxDepthBelow == 0
	switch qb.m {
	case Hausdorff, Frechet:
		if !complete {
			return 0
		}
		lb := 0.0
		for _, d := range b.minD {
			if d > lb {
				lb = d
			}
		}
		return lb
	case DTW:
		if !complete {
			return 0
		}
		s := 0.0
		for _, d := range b.minD {
			s += d
		}
		return s
	case LCSS:
		if !complete {
			return 0
		}
		for _, d := range b.minD {
			if d <= qb.p.Epsilon {
				return 0
			}
		}
		return 1
	case EDR:
		m := len(qb.q)
		lb := 0
		if meta.MaxLen < m {
			lb = m - meta.MaxLen
		}
		if complete {
			far := 0
			for _, d := range b.minD {
				if d > qb.p.Epsilon {
					far++
				}
			}
			if far > lb {
				lb = far
			}
		}
		return float64(lb)
	case ERP:
		if !complete {
			return 0
		}
		s := 0.0
		for i, d := range b.minD {
			s += math.Min(d, qb.gapD[i])
		}
		return s
	}
	return 0
}

// LBt implements Bounder; see LBtBounded.
func (b *PathBounder) LBt(meta LeafMeta) float64 {
	return b.LBtBounded(meta, math.Inf(1), nil)
}

// LBtBounded computes the two-side bound for a terminal node. A
// leaf's path is always complete, so LBo with MaxDepthBelow forced to
// 0 applies; metric measures additionally get the triangle-inequality
// bound through the leaf's reference trajectory r: for every member
// t, Distance(q, t) ≥ Distance(q, r) − Distance(r, t) ≥ Distance(q,
// r) − Dmax (Section IV-C). The trie stores Dmax only for metric
// measures, which is exactly when the triangle inequality holds.
//
// threshold is the caller's current pruning threshold (dk, or the
// query radius): the reference-trajectory distance may early-abandon
// once it proves Distance(q, r) − Dmax > threshold, in which case the
// returned bound is +Inf. Since the caller discards any node whose
// bound exceeds threshold, the abandoned value forces exactly the
// decision the exact bound would — results are unchanged. s provides
// the DP scratch for the reference-trajectory distance.
func (b *PathBounder) LBtBounded(meta LeafMeta, threshold float64, s *Scratch) float64 {
	nm := meta.NodeMeta
	nm.MaxDepthBelow = 0
	lb := b.LBo(nm)
	qb := b.qb
	if qb.m.IsMetric() && len(b.refPts) > 0 && len(qb.q) > 0 {
		cut := threshold + meta.Dmax // Distance > cut ⇒ bound > threshold
		if d := DistanceBoundedScratch(qb.m, qb.q, b.refPts, qb.p, cut, s) - meta.Dmax; d > lb {
			lb = d
		}
	}
	return lb
}
