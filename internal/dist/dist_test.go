package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repose/internal/geo"
)

func pts(xy ...float64) []geo.Point {
	out := make([]geo.Point, 0, len(xy)/2)
	for i := 0; i < len(xy); i += 2 {
		out = append(out, geo.Point{X: xy[i], Y: xy[i+1]})
	}
	return out
}

// randomSeq draws a short random walk, the same shape of data the
// rptrie tests use.
func randomSeq(rng *rand.Rand, maxLen int) []geo.Point {
	n := 1 + rng.Intn(maxLen)
	out := make([]geo.Point, n)
	x, y := rng.Float64()*8, rng.Float64()*8
	for i := range out {
		out[i] = geo.Point{X: x, Y: y}
		x += rng.NormFloat64() * 0.5
		y += rng.NormFloat64() * 0.5
	}
	return out
}

var testParams = Params{Epsilon: 0.5, Gap: geo.Point{}}

func TestKnownValues(t *testing.T) {
	sqrt2 := math.Sqrt2
	cases := []struct {
		name string
		m    Measure
		a, b []geo.Point
		want float64
	}{
		{"hausdorff", Hausdorff, pts(0, 0, 1, 0), pts(0, 1), sqrt2},
		{"frechet", Frechet, pts(0, 0, 1, 0), pts(0, 1, 1, 1), 1},
		{"frechet backtrack", Frechet, pts(0, 0, 2, 0, 0, 0), pts(0, 0), 2},
		{"dtw", DTW, pts(0, 0, 1, 0), pts(0, 1, 1, 1), 2},
		{"lcss", LCSS, pts(0, 0, 1, 0, 2, 0), pts(0, 0.1, 5, 5, 2, 0.1), 1.0 / 3},
		{"edr", EDR, pts(0, 0, 1, 0, 2, 0), pts(0, 0.1, 5, 5, 2, 0.1), 1},
		{"edr length gap", EDR, pts(0, 0), pts(0, 0, 0, 0, 0, 0), 2},
		{"erp aligned", ERP, pts(1, 0), pts(1, 0), 0},
		{"erp gap", ERP, pts(1, 0, 2, 0), pts(1, 0), 2},
	}
	for _, c := range cases {
		p := Params{Epsilon: 0.2, Gap: geo.Point{}}
		if got := Distance(c.m, c.a, c.b, p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Distance = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestIdentityAndSymmetryQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSeq(rng, 12)
		b := randomSeq(rng, 12)
		for _, m := range Measures() {
			if d := Distance(m, a, a, testParams); d != 0 {
				t.Fatalf("%v: d(a,a) = %v", m, d)
			}
			ab := Distance(m, a, b, testParams)
			ba := Distance(m, b, a, testParams)
			if math.Abs(ab-ba) > 1e-9 {
				t.Fatalf("%v: asymmetric %v vs %v", m, ab, ba)
			}
			if ab < 0 {
				t.Fatalf("%v: negative distance %v", m, ab)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestTriangleInequalityQuick spot-checks the property IsMetric
// advertises, which both LBt and pivot pruning rely on.
func TestTriangleInequalityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomSeq(rng, 10), randomSeq(rng, 10), randomSeq(rng, 10)
		for _, m := range Measures() {
			if !m.IsMetric() {
				continue
			}
			ac := Distance(m, a, c, testParams)
			ab := Distance(m, a, b, testParams)
			bc := Distance(m, b, c, testParams)
			if ac > ab+bc+1e-9 {
				t.Fatalf("%v: d(a,c)=%v > d(a,b)+d(b,c)=%v", m, ac, ab+bc)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDistanceBoundedContractQuick enforces the early-abandon
// contract: the result equals the exact distance whenever the exact
// distance is ≤ threshold, and any abandonment (+Inf) implies the
// exact distance strictly exceeds the threshold. In particular
// DistanceBounded ≥ threshold ⇒ Distance ≥ threshold.
func TestDistanceBoundedContractQuick(t *testing.T) {
	f := func(seed int64, frac float64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSeq(rng, 12)
		b := randomSeq(rng, 12)
		for _, m := range Measures() {
			exact := Distance(m, a, b, testParams)
			// Thresholds below, around, and above the exact value.
			scale := math.Abs(frac)
			if scale > 4 {
				scale = math.Mod(scale, 4)
			}
			for _, thr := range []float64{0, exact * scale, exact, exact + 0.1, math.Inf(1)} {
				got := DistanceBounded(m, a, b, testParams, thr)
				if exact <= thr && got != exact {
					t.Fatalf("%v thr=%v: got %v, want exact %v", m, thr, got, exact)
				}
				if math.IsInf(got, 1) {
					if exact <= thr {
						t.Fatalf("%v thr=%v: abandoned but exact %v ≤ thr", m, thr, exact)
					}
				} else if got != exact {
					t.Fatalf("%v thr=%v: finite non-exact %v (exact %v)", m, thr, got, exact)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEmptySequences(t *testing.T) {
	a := pts(1, 1, 2, 2)
	for _, m := range Measures() {
		if d := Distance(m, nil, nil, testParams); d != 0 {
			t.Errorf("%v: d(∅,∅) = %v", m, d)
		}
		d := Distance(m, a, nil, testParams)
		switch m {
		case LCSS:
			if d != 1 {
				t.Errorf("LCSS: d(a,∅) = %v, want 1", d)
			}
		case EDR:
			if d != 2 {
				t.Errorf("EDR: d(a,∅) = %v, want 2", d)
			}
		case ERP:
			want := a[0].Dist(testParams.Gap) + a[1].Dist(testParams.Gap)
			if math.Abs(d-want) > 1e-12 {
				t.Errorf("ERP: d(a,∅) = %v, want %v", d, want)
			}
		default:
			if !math.IsInf(d, 1) {
				t.Errorf("%v: d(a,∅) = %v, want +Inf", m, d)
			}
		}
	}
}

func TestEarlyAbandonAbandons(t *testing.T) {
	far := pts(100, 100, 101, 100, 102, 100)
	near := pts(0, 0, 1, 0, 2, 0)
	for _, m := range Measures() {
		thr := 0.25 // below every measure's distance for these inputs
		if got := DistanceBounded(m, near, far, testParams, thr); !math.IsInf(got, 1) {
			exact := Distance(m, near, far, testParams)
			if got != exact {
				t.Errorf("%v: got %v, want exact %v or +Inf", m, got, exact)
			}
			if exact <= thr {
				t.Errorf("%v: distance %v unexpectedly ≤ %v", m, exact, thr)
			}
		}
	}
}
