package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repose/internal/geo"
	"repose/internal/grid"
)

var boundRegion = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}

// refPath returns the reference cell sequence of tr on g.
func refPath(g *grid.Grid, points []geo.Point) []uint64 {
	return g.Reference(&geo.Trajectory{Points: points})
}

// memberSeq draws a random member trajectory, clamped into the grid
// region: the bounds' precondition is that indexed trajectories lie
// inside the region (repose.Build guarantees it via EnclosingSquare),
// since the grid clamps out-of-region points into boundary cells they
// are not actually inside. Queries carry no such precondition and the
// tests leave them unclamped.
func memberSeq(rng *rand.Rand, maxLen int) []geo.Point {
	out := randomSeq(rng, maxLen)
	for i, p := range out {
		out[i] = geo.Point{
			X: math.Min(math.Max(p.X, boundRegion.Min.X), boundRegion.Max.X),
			Y: math.Min(math.Max(p.Y, boundRegion.Min.Y), boundRegion.Max.Y),
		}
	}
	return out
}

// TestBounderAdmissibleQuick walks a bounder down the reference path
// of a random trajectory and checks, at every prefix, that LBo never
// exceeds the exact distance — the node-bound half of the
// admissibility contract documented in doc.go. The trajectory stands
// for a subtree member whose path passes through every prefix node.
func TestBounderAdmissibleQuick(t *testing.T) {
	f := func(seed int64, bitsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := grid.NewWithBits(boundRegion, int(bitsRaw)%4+2)
		if err != nil {
			t.Fatal(err)
		}
		tr := memberSeq(rng, 10)
		q := randomSeq(rng, 8)
		zs := refPath(g, tr)
		for _, m := range Measures() {
			exact := Distance(m, q, tr, testParams)
			b := NewBounder(m, q, g.HalfDiagonal(), testParams)
			meta := NodeMeta{MinLen: len(tr), MaxLen: len(tr)}
			for i, z := range zs {
				b.Extend(g.CellByZ(z))
				meta.MaxDepthBelow = len(zs) - 1 - i
				if lb := b.LBo(meta); lb > exact+1e-9 {
					t.Fatalf("%v: depth %d/%d LBo %v > exact %v", m, i+1, len(zs), lb, exact)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestBounderAdmissibleRearrangedQuick repeats the walk with the path
// cells deduplicated and shuffled, the shape the z-value
// re-arrangement optimization produces. Only Hausdorff — the one
// order-independent measure — is ever built that way.
func TestBounderAdmissibleRearrangedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := grid.NewWithBits(boundRegion, 3)
		if err != nil {
			t.Fatal(err)
		}
		tr := memberSeq(rng, 10)
		q := randomSeq(rng, 8)
		seen := map[uint64]bool{}
		var zs []uint64
		for _, z := range refPath(g, tr) {
			if !seen[z] {
				seen[z] = true
				zs = append(zs, z)
			}
		}
		rng.Shuffle(len(zs), func(i, j int) { zs[i], zs[j] = zs[j], zs[i] })
		exact := Distance(Hausdorff, q, tr, testParams)
		b := NewBounder(Hausdorff, q, g.HalfDiagonal(), testParams)
		meta := NodeMeta{MinLen: len(tr), MaxLen: len(tr)}
		for i, z := range zs {
			b.Extend(g.CellByZ(z))
			meta.MaxDepthBelow = len(zs) - 1 - i
			if lb := b.LBo(meta); lb > exact+1e-9 {
				t.Fatalf("depth %d: LBo %v > exact %v", i+1, lb, exact)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// leafMembers samples trajectories whose reference trajectory is
// exactly zs: one or more points inside each successive cell.
func leafMembers(rng *rand.Rand, g *grid.Grid, zs []uint64, count int) [][]geo.Point {
	members := make([][]geo.Point, count)
	for i := range members {
		var pts []geo.Point
		for _, z := range zs {
			r := g.CellByZ(z).Rect
			for n := 1 + rng.Intn(2); n > 0; n-- {
				pts = append(pts, geo.Point{
					X: r.Min.X + rng.Float64()*(r.Max.X-r.Min.X),
					Y: r.Min.Y + rng.Float64()*(r.Max.Y-r.Min.Y),
				})
			}
		}
		members[i] = pts
	}
	return members
}

// TestLeafBoundAdmissibleQuick builds synthetic leaves — several
// trajectories sharing one reference trajectory — and checks that LBt
// (including the metric Dmax term) never exceeds the exact distance
// to any member: the leaf-bound half of the admissibility contract.
func TestLeafBoundAdmissibleQuick(t *testing.T) {
	f := func(seed int64, bitsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := grid.NewWithBits(boundRegion, int(bitsRaw)%4+2)
		if err != nil {
			t.Fatal(err)
		}
		zs := refPath(g, memberSeq(rng, 8))
		members := leafMembers(rng, g, zs, 1+rng.Intn(4))
		refPts := g.ReferencePoints(zs)
		q := randomSeq(rng, 8)
		for _, m := range Measures() {
			meta := LeafMeta{NodeMeta: NodeMeta{MinLen: math.MaxInt32, MaxLen: 0}}
			for _, mem := range members {
				meta.MinLen = min(meta.MinLen, len(mem))
				meta.MaxLen = max(meta.MaxLen, len(mem))
				if m.IsMetric() { // as rptrie's finalize does
					meta.Dmax = math.Max(meta.Dmax, Distance(m, mem, refPts, testParams))
				}
			}
			b := NewBounder(m, q, g.HalfDiagonal(), testParams)
			for _, z := range zs {
				b.Extend(g.CellByZ(z))
			}
			lb := b.LBt(meta)
			for _, mem := range members {
				if exact := Distance(m, q, mem, testParams); lb > exact+1e-9 {
					t.Fatalf("%v: LBt %v > exact %v (|ref|=%d, Dmax=%v)",
						m, lb, exact, len(zs), meta.Dmax)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestBounderCloneIndependence: extending the original after a Clone
// must not disturb the clone, and a cloned descent must produce
// exactly the bounds a fresh descent does — the property the search
// relies on when siblings share a parent's bound state.
func TestBounderCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := grid.NewWithBits(boundRegion, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := memberSeq(rng, 10)
	q := randomSeq(rng, 6)
	zs := refPath(g, tr)
	if len(zs) < 2 {
		zs = append(zs, zs[0]^1)
	}
	for _, m := range Measures() {
		meta := NodeMeta{MinLen: len(tr), MaxLen: len(tr)}
		fresh := NewBounder(m, q, g.HalfDiagonal(), testParams)
		half := len(zs) / 2
		for _, z := range zs[:half] {
			fresh.Extend(g.CellByZ(z))
		}
		clone := fresh.Clone()
		before := clone.LBo(meta)
		// Diverge the original; the clone must not move.
		fresh.Extend(g.CellByZ(zs[len(zs)-1]))
		if after := clone.LBo(meta); after != before {
			t.Fatalf("%v: clone LBo changed %v → %v after original extended", m, before, after)
		}
		// The clone finishes the descent identically to a fresh walk.
		for _, z := range zs[half:] {
			clone.Extend(g.CellByZ(z))
		}
		direct := NewBounder(m, q, g.HalfDiagonal(), testParams)
		for _, z := range zs {
			direct.Extend(g.CellByZ(z))
		}
		if a, b := clone.LBo(meta), direct.LBo(meta); a != b {
			t.Fatalf("%v: cloned descent LBo %v != fresh descent %v", m, a, b)
		}
	}
}

// TestBounderZeroDepth: before any Extend the bounder knows nothing
// and must return the trivial bound.
func TestBounderZeroDepth(t *testing.T) {
	q := pts(1, 1, 2, 2)
	for _, m := range Measures() {
		b := NewBounder(m, q, 0.1, testParams)
		if lb := b.LBo(NodeMeta{MinLen: 1, MaxLen: 5}); lb != 0 {
			t.Errorf("%v: zero-depth LBo = %v", m, lb)
		}
	}
}
