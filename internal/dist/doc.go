// Package dist implements the six trajectory similarity measures of
// REPOSE (Section II-B) — Hausdorff, discrete Frechet, DTW, LCSS,
// EDR, and ERP — together with the lower-bound machinery that drives
// the best-first RP-Trie search of Section IV.
//
// # Measures
//
// All measures operate on point sequences under the Euclidean ground
// distance (Definition 2). [Distance] computes the exact value;
// [DistanceBounded] is the early-abandoning variant used during query
// refinement: it returns the exact distance whenever that distance is
// ≤ threshold, and is allowed to abandon the computation and return
// +Inf as soon as the partial dynamic-programming state proves the
// exact distance strictly exceeds the threshold. The distance-valued
// forms are
//
//   - Hausdorff: symmetric point-set Hausdorff distance (a metric),
//   - Frechet:   discrete Frechet distance (a metric),
//   - DTW:       sum-cost dynamic time warping,
//   - LCSS:      1 − LCSS_ε/min(m,n) ∈ [0,1],
//   - EDR:       edit count with ε-tolerant zero-cost matches,
//   - ERP:       edit distance with real penalty against a gap point
//     (a metric for a fixed gap).
//
// LCSS and EDR take the matching tolerance from [Params].Epsilon; ERP
// takes its gap point from [Params].Gap. [DefaultParams] derives the
// paper's defaults from a dataset region.
//
// # Lower bounds and the admissibility contract
//
// The trie search descends paths of grid cells (the reference
// trajectory of Definition 4). A [Bounder] accumulates one such path
// cell-by-cell via Extend and produces two lower bounds:
//
//   - LBo, the one-side bound (Section IV-B), valid for any internal
//     node, computed from the distances between the query points and
//     the path cells plus the subtree metadata in [NodeMeta];
//   - LBt, the two-side bound (Section IV-C), valid at terminal
//     (leaf) nodes, which for metric measures sharpens LBo with the
//     triangle inequality through the leaf's reference trajectory and
//     its stored Dmax ([LeafMeta]).
//
// Every bound is admissible: it never exceeds the exact distance from
// the query to any trajectory stored in the subtree (respectively
// leaf) it was computed for. The per-measure arguments are spelled
// out on the bounder implementation in bound.go; the load-bearing
// facts are
//
//   - a trajectory in a node's subtree has at least one sample point
//     inside every cell on the node's path, and distinct path cells
//     (runs) contain distinct sample points;
//   - when NodeMeta.MaxDepthBelow == 0 the path is the complete
//     reference trajectory, so every sample point of every member
//     lies in some path cell;
//   - d(q, cell) — the point-to-rectangle distance — never exceeds
//     d(q, t) for any sample point t inside the cell. (This is the
//     rectangle form of the paper's "distance to the reference point
//     minus the cell half-diagonal √2·δ/2", and is never looser.)
//
// The contract is enforced by tests: bound_test.go checks bounder
// bounds against exact distances along randomly generated trie paths
// (TestBounderAdmissibleQuick, TestLeafBoundAdmissibleQuick), and
// dist_test.go checks the DistanceBounded early-abandon contract
// (TestDistanceBoundedContractQuick). The end-to-end guarantee — no
// admissible bound ever evicts a true top-k result — is exercised by
// internal/rptrie's TestSearchMatchesBruteForce and the package's
// invariant tests.
//
// # Allocation discipline
//
// The query hot path never allocates in steady state. The DP kernels
// compute in caller-provided row buffers ([Scratch], via
// [DistanceBoundedScratch]); the bound machinery shares one
// [QueryBounds] per query, which memoizes point-to-cell distances by
// z-value (each distinct cell pays its O(|q|) rectangle-distance scan
// once per query) and recycles [PathBounder] states through an
// internal arena (Fork/Release) instead of allocating clones. Both
// are recycled across queries by internal/rptrie's per-index scratch
// pool.
package dist
