package dist

import (
	"math"

	"repose/internal/geo"
)

// This file implements the subtrajectory (best-segment) variants of
// the six measures: the minimum over nonempty contiguous segments
// t[s:e] of Distance(m, q, t[s:e], p), with the segment length e−s
// restricted to [minSeg, maxSeg].
//
// Bit-identicality contract: the returned distance is bit-identical
// to the minimum over all eligible segments of
// DistanceBoundedScratch(m, q, t[s:e], p, +Inf, s). The five dynamic
// programs achieve this because every kernel's cell (i, j) depends
// only on cells with column index ≤ j, so one DP over the suffix
// t[s:] computes, in its final row, exactly the values a separate
// whole-kernel call would produce for every prefix t[s:s+e] — same
// operations in the same order. Hausdorff is assembled from the same
// memoized squared distances both directed passes consume; since IEEE
// square root is correctly rounded (hence monotone, with
// Sqrt(x·x) == x), taking one Sqrt of the maximum squared term yields
// the same bits as the kernel's incremental sqrt-of-running-max.
//
// Early abandoning never changes the result: a per-start DP abandons
// only when a row minimum proves every harvested segment of that
// start strictly exceeds cut = min(threshold, best-so-far), and such
// segments can neither improve the minimum nor tie it (ties are
// resolved toward the lexicographically smallest (start, end), and an
// abandoned value is strictly greater than the running best).

// SubDistance returns the exact best-segment distance together with
// the matched segment [start, end) of t. minSeg/maxSeg bound the
// segment length in sample points; maxSeg ≤ 0 means unbounded. When
// no eligible segment exists (empty q or t, or minSeg > len(t)) it
// returns (+Inf, 0, 0). Among equal-distance segments the
// lexicographically smallest (start, end) wins.
func SubDistance(m Measure, q, t []geo.Point, p Params, minSeg, maxSeg int) (float64, int, int) {
	return SubDistanceBoundedScratch(m, q, t, p, minSeg, maxSeg, math.Inf(1), nil)
}

// SubDistanceBoundedScratch is SubDistance with early abandoning and
// caller-provided scratch (nil allocates fresh buffers). Like
// DistanceBounded, it returns the exact minimum whenever that minimum
// is ≤ threshold; otherwise it may return (+Inf, 0, 0). The matched
// segment indices are meaningful only when the distance is finite.
func SubDistanceBoundedScratch(m Measure, q, t []geo.Point, p Params, minSeg, maxSeg int, threshold float64, s *Scratch) (float64, int, int) {
	n := len(t)
	if maxSeg <= 0 || maxSeg > n {
		maxSeg = n
	}
	if minSeg < 1 {
		minSeg = 1
	}
	if len(q) == 0 || n == 0 || minSeg > maxSeg {
		return math.Inf(1), 0, 0
	}
	switch m {
	case Hausdorff:
		return subHausdorff(q, t, minSeg, maxSeg, threshold, s)
	case Frechet:
		return subFrechet(q, t, minSeg, maxSeg, threshold, s)
	case DTW:
		return subDTW(q, t, minSeg, maxSeg, threshold, s)
	case LCSS:
		return subLCSS(q, t, p.Epsilon, minSeg, maxSeg, threshold, s)
	case EDR:
		return subEDR(q, t, p.Epsilon, minSeg, maxSeg, threshold, s)
	case ERP:
		return subERP(q, t, p.Gap, minSeg, maxSeg, threshold, s)
	}
	panic("dist: unknown measure " + m.String())
}

// subHausdorff sweeps starts left to right, growing the segment one
// point at a time while maintaining qmin2[i] = min over the segment
// of d²(q[i], ·) and the running maximum of the per-segment-point
// minima ptq2 (precomputed once — it does not depend on the segment).
// The symmetric Hausdorff distance of (q, seg) is the square root of
// the larger of the two directed maxima. The candidate-side maximum
// only grows with the segment, so once its root exceeds cut every
// longer segment at this start is hopeless.
func subHausdorff(q, t []geo.Point, minSeg, maxSeg int, threshold float64, s *Scratch) (float64, int, int) {
	m, n := len(q), len(t)
	best, bs, be := math.Inf(1), 0, 0
	qmin2, ptq2 := s.hRows(m, n)
	for j, pt := range t {
		pm := math.Inf(1)
		for i := range q {
			if d := q[i].Dist2(pt); d < pm {
				pm = d
			}
		}
		ptq2[j] = pm
	}
	for st := 0; st+minSeg <= n; st++ {
		L := n - st
		if maxSeg < L {
			L = maxSeg
		}
		for i := range qmin2 {
			qmin2[i] = math.Inf(1)
		}
		candmax2 := 0.0
		cut := math.Min(threshold, best)
		for e := 1; e <= L; e++ {
			j := st + e - 1
			pt := t[j]
			for i := range q {
				if d := q[i].Dist2(pt); d < qmin2[i] {
					qmin2[i] = d
				}
			}
			if ptq2[j] > candmax2 {
				candmax2 = ptq2[j]
			}
			if math.Sqrt(candmax2) > cut {
				break
			}
			if e < minSeg {
				continue
			}
			qmax2 := 0.0
			for _, v := range qmin2 {
				if v > qmax2 {
					qmax2 = v
				}
			}
			d := math.Sqrt(math.Max(qmax2, candmax2))
			if d <= threshold && d < best {
				best, bs, be = d, st, st+e
				cut = math.Min(threshold, best)
			}
		}
	}
	return best, bs, be
}

// subDTW runs dtwBounded's recurrence once per start over the suffix
// t[st:st+L] and harvests the final row: cell j holds the exact DTW
// distance of (q, t[st:st+j+1]). Every warping path to column j stays
// within the first j+1 columns and costs never decrease along it, so
// the full-row minimum lower-bounds every harvestable value and the
// kernel's abandon test carries over per start.
func subDTW(q, t []geo.Point, minSeg, maxSeg int, threshold float64, s *Scratch) (float64, int, int) {
	m, n := len(q), len(t)
	best, bs, be := math.Inf(1), 0, 0
	for st := 0; st+minSeg <= n; st++ {
		L := n - st
		if maxSeg < L {
			L = maxSeg
		}
		b := t[st : st+L]
		cut := math.Min(threshold, best)
		prev, cur := s.floatRows(L)
		acc := 0.0
		for j, pt := range b {
			acc += q[0].Dist(pt)
			prev[j] = acc
		}
		if prev[0] > cut { // every warping path contains (q[0], b[0])
			continue
		}
		abandoned := false
		for i := 1; i < m; i++ {
			rowMin := math.Inf(1)
			for j := 0; j < L; j++ {
				reach := prev[j]
				if j > 0 {
					reach = min(reach, prev[j-1], cur[j-1])
				}
				v := q[i].Dist(b[j]) + reach
				cur[j] = v
				if v < rowMin {
					rowMin = v
				}
			}
			if rowMin > cut {
				abandoned = true
				break
			}
			prev, cur = cur, prev
		}
		if abandoned {
			continue
		}
		for e := minSeg; e <= L; e++ {
			if d := prev[e-1]; d <= threshold && d < best {
				best, bs, be = d, st, st+e
			}
		}
	}
	return best, bs, be
}

// subFrechet is subDTW with frechetBounded's max-recurrence.
func subFrechet(q, t []geo.Point, minSeg, maxSeg int, threshold float64, s *Scratch) (float64, int, int) {
	m, n := len(q), len(t)
	best, bs, be := math.Inf(1), 0, 0
	for st := 0; st+minSeg <= n; st++ {
		L := n - st
		if maxSeg < L {
			L = maxSeg
		}
		b := t[st : st+L]
		cut := math.Min(threshold, best)
		prev, cur := s.floatRows(L)
		acc := 0.0
		for j, pt := range b {
			d := q[0].Dist(pt)
			if j == 0 || d > acc {
				acc = d
			}
			prev[j] = acc
		}
		if prev[0] > cut { // every coupling contains (q[0], b[0])
			continue
		}
		abandoned := false
		for i := 1; i < m; i++ {
			rowMin := math.Inf(1)
			for j := 0; j < L; j++ {
				reach := prev[j]
				if j > 0 {
					reach = min(reach, prev[j-1], cur[j-1])
				}
				v := max(q[i].Dist(b[j]), reach)
				cur[j] = v
				if v < rowMin {
					rowMin = v
				}
			}
			if rowMin > cut {
				abandoned = true
				break
			}
			prev, cur = cur, prev
		}
		if abandoned {
			continue
		}
		for e := minSeg; e <= L; e++ {
			if d := prev[e-1]; d <= threshold && d < best {
				best, bs, be = d, st, st+e
			}
		}
	}
	return best, bs, be
}

// subLCSS computes lcssBounded's integer table once per start; the
// final row's cell e holds LCSS(q, t[st:st+e]), turned into a
// distance with the per-segment denominator min(m, e). The kernel's
// abandon test does not transfer (shorter segments have smaller
// denominators, which weakens the bound), so the int DP runs to
// completion — it is branch-cheap and allocation-free.
func subLCSS(q, t []geo.Point, epsilon float64, minSeg, maxSeg int, threshold float64, s *Scratch) (float64, int, int) {
	m, n := len(q), len(t)
	eps2 := epsilon * epsilon
	best, bs, be := math.Inf(1), 0, 0
	for st := 0; st+minSeg <= n; st++ {
		L := n - st
		if maxSeg < L {
			L = maxSeg
		}
		b := t[st : st+L]
		prev, cur := s.intRows(L + 1)
		for j := range prev[:L+1] {
			prev[j] = 0
		}
		cur[0] = 0
		for i := 0; i < m; i++ {
			for j := 0; j < L; j++ {
				if q[i].Dist2(b[j]) <= eps2 {
					cur[j+1] = prev[j] + 1
				} else {
					cur[j+1] = max(prev[j+1], cur[j])
				}
			}
			prev, cur = cur, prev
		}
		for e := minSeg; e <= L; e++ {
			d := 1 - float64(prev[e])/float64(min(m, e))
			if d <= threshold && d < best {
				best, bs, be = d, st, st+e
			}
		}
	}
	return best, bs, be
}

// subEDR harvests edrBounded's final row: cell e holds the exact edit
// distance of (q, t[st:st+e]). Edit costs are non-negative along any
// script path, so the full-row minimum abandon carries over.
func subEDR(q, t []geo.Point, epsilon float64, minSeg, maxSeg int, threshold float64, s *Scratch) (float64, int, int) {
	m, n := len(q), len(t)
	eps2 := epsilon * epsilon
	best, bs, be := math.Inf(1), 0, 0
	for st := 0; st+minSeg <= n; st++ {
		L := n - st
		if maxSeg < L {
			L = maxSeg
		}
		b := t[st : st+L]
		cut := math.Min(threshold, best)
		prev, cur := s.intRows(L + 1)
		for j := 0; j <= L; j++ {
			prev[j] = j
		}
		abandoned := false
		for i := 1; i <= m; i++ {
			cur[0] = i
			rowMin := cur[0]
			for j := 1; j <= L; j++ {
				sub := prev[j-1]
				if q[i-1].Dist2(b[j-1]) > eps2 {
					sub++
				}
				cur[j] = min(sub, prev[j]+1, cur[j-1]+1)
				if cur[j] < rowMin {
					rowMin = cur[j]
				}
			}
			if float64(rowMin) > cut {
				abandoned = true
				break
			}
			prev, cur = cur, prev
		}
		if abandoned {
			continue
		}
		for e := minSeg; e <= L; e++ {
			if d := float64(prev[e]); d <= threshold && d < best {
				best, bs, be = d, st, st+e
			}
		}
	}
	return best, bs, be
}

// subERP harvests erpBounded's final row: cell e holds the exact edit
// distance with real penalty of (q, t[st:st+e]). The per-point gap
// distances of t are computed once and shared by every start.
func subERP(q, t []geo.Point, gap geo.Point, minSeg, maxSeg int, threshold float64, s *Scratch) (float64, int, int) {
	m, n := len(q), len(t)
	best, bs, be := math.Inf(1), 0, 0
	gb := s.gapRow(n) // d(t_j, gap)
	for j, pt := range t {
		gb[j] = pt.Dist(gap)
	}
	for st := 0; st+minSeg <= n; st++ {
		L := n - st
		if maxSeg < L {
			L = maxSeg
		}
		b := t[st : st+L]
		gbs := gb[st : st+L]
		cut := math.Min(threshold, best)
		prev, cur := s.floatRows(L + 1)
		prev[0] = 0
		for j := 1; j <= L; j++ {
			prev[j] = prev[j-1] + gbs[j-1]
		}
		abandoned := false
		for i := 1; i <= m; i++ {
			ga := q[i-1].Dist(gap)
			cur[0] = prev[0] + ga
			rowMin := cur[0]
			for j := 1; j <= L; j++ {
				v := min(
					prev[j-1]+q[i-1].Dist(b[j-1]), // align
					prev[j]+ga,                    // gap q_i
					cur[j-1]+gbs[j-1],             // gap b_j
				)
				cur[j] = v
				if v < rowMin {
					rowMin = v
				}
			}
			if rowMin > cut {
				abandoned = true
				break
			}
			prev, cur = cur, prev
		}
		if abandoned {
			continue
		}
		for e := minSeg; e <= L; e++ {
			if d := prev[e]; d <= threshold && d < best {
				best, bs, be = d, st, st+e
			}
		}
	}
	return best, bs, be
}
