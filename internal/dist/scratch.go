package dist

// Scratch holds the dynamic-programming row buffers the bounded
// distance kernels work in. Passing the same Scratch to successive
// DistanceBoundedScratch calls makes the kernels allocation-free in
// steady state: buffers grow to the high-water mark of the sequence
// lengths seen and are reused afterwards.
//
// A Scratch is not safe for concurrent use and must not be shared
// between goroutines; give each refinement worker its own. A nil
// *Scratch is valid everywhere one is accepted and falls back to
// fresh allocations, so cold paths need no setup.
type Scratch struct {
	fa, fb []float64 // rolling float64 DP rows (Frechet, DTW, ERP)
	ia, ib []int     // rolling int DP rows (LCSS, EDR)
	gb     []float64 // ERP: per-point gap distances of the second sequence
	ha, hb []float64 // Hausdorff segment sweep: query minima, per-point minima
}

// growFloats returns a length-n slice, reusing buf's backing array
// when it is large enough. Contents are unspecified.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growInts is growFloats for int rows.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// floatRows returns two length-n float64 rows with unspecified
// contents; the kernels fully initialize every cell they read.
func (s *Scratch) floatRows(n int) (prev, cur []float64) {
	if s == nil {
		return make([]float64, n), make([]float64, n)
	}
	s.fa = growFloats(s.fa, n)
	s.fb = growFloats(s.fb, n)
	return s.fa, s.fb
}

// intRows returns two length-n int rows with unspecified contents.
func (s *Scratch) intRows(n int) (prev, cur []int) {
	if s == nil {
		return make([]int, n), make([]int, n)
	}
	s.ia = growInts(s.ia, n)
	s.ib = growInts(s.ib, n)
	return s.ia, s.ib
}

// gapRow returns a length-n float64 row with unspecified contents.
func (s *Scratch) gapRow(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	s.gb = growFloats(s.gb, n)
	return s.gb
}

// hRows returns a length-m and a length-n float64 row for the
// Hausdorff segment sweep, with unspecified contents.
func (s *Scratch) hRows(m, n int) (qmin2, ptq2 []float64) {
	if s == nil {
		return make([]float64, m), make([]float64, n)
	}
	s.ha = growFloats(s.ha, m)
	s.hb = growFloats(s.hb, n)
	return s.ha, s.hb
}
