package dist

import (
	"math"

	"repose/internal/geo"
)

// hausdorffBounded computes the symmetric Hausdorff distance
// max(h(a→b), h(b→a)) with h(x→y) = max_{p∈x} min_{q∈y} d(p, q),
// abandoning with +Inf once the running maximum provably exceeds
// threshold.
func hausdorffBounded(a, b []geo.Point, threshold float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == len(b) {
			return 0
		}
		return math.Inf(1)
	}
	h := directedHausdorff(a, b, 0, threshold)
	if h > threshold {
		return math.Inf(1)
	}
	h = directedHausdorff(b, a, h, threshold)
	if h > threshold {
		return math.Inf(1)
	}
	return h
}

// directedHausdorff raises run to max(run, h(a→b)). The inner scan
// breaks as soon as a neighbor within run is found (it cannot raise
// the maximum), and the whole computation abandons with +Inf once run
// exceeds threshold — both standard exactness-preserving cutoffs.
func directedHausdorff(a, b []geo.Point, run, threshold float64) float64 {
	for _, p := range a {
		best := math.Inf(1)
		for _, q := range b {
			if d := p.Dist2(q); d < best {
				best = d
				if best <= run*run {
					break
				}
			}
		}
		if best > run*run {
			run = math.Sqrt(best)
			if run > threshold {
				return math.Inf(1)
			}
		}
	}
	return run
}
