package dist

import (
	"math"

	"repose/internal/geo"
)

// Distance computes the exact distance between point sequences a and
// b under measure m. Hausdorff, Frechet, and DTW ignore p; LCSS and
// EDR read p.Epsilon; ERP reads p.Gap.
func Distance(m Measure, a, b []geo.Point, p Params) float64 {
	return DistanceBounded(m, a, b, p, math.Inf(1))
}

// DistanceBounded is Distance with early abandoning. It returns the
// exact distance whenever that distance is ≤ threshold; otherwise it
// may abandon the computation and return +Inf as soon as the partial
// state proves the exact distance strictly exceeds threshold (it may
// also run to completion and return the exact value). Callers
// comparing the result against threshold therefore see exactly the
// same accept/reject decisions they would with Distance.
func DistanceBounded(m Measure, a, b []geo.Point, p Params, threshold float64) float64 {
	return DistanceBoundedScratch(m, a, b, p, threshold, nil)
}

// DistanceBoundedScratch is DistanceBounded computing in the given
// scratch buffers (nil allocates fresh ones). The returned value is
// identical for every scratch; only the allocation behaviour differs.
func DistanceBoundedScratch(m Measure, a, b []geo.Point, p Params, threshold float64, s *Scratch) float64 {
	switch m {
	case Hausdorff:
		return hausdorffBounded(a, b, threshold)
	case Frechet:
		return frechetBounded(a, b, threshold, s)
	case DTW:
		return dtwBounded(a, b, threshold, s)
	case LCSS:
		return lcssBounded(a, b, p.Epsilon, threshold, s)
	case EDR:
		return edrBounded(a, b, p.Epsilon, threshold, s)
	case ERP:
		return erpBounded(a, b, p.Gap, threshold, s)
	}
	panic("dist: unknown measure " + m.String())
}

// HausdorffDist returns the exact symmetric Hausdorff distance.
func HausdorffDist(a, b []geo.Point) float64 {
	return hausdorffBounded(a, b, math.Inf(1))
}

// FrechetDist returns the exact discrete Frechet distance.
func FrechetDist(a, b []geo.Point) float64 {
	return frechetBounded(a, b, math.Inf(1), nil)
}

// DTWDist returns the exact dynamic time warping distance.
func DTWDist(a, b []geo.Point) float64 {
	return dtwBounded(a, b, math.Inf(1), nil)
}

// LCSSDist returns the exact LCSS distance 1 − LCSS_ε/min(|a|,|b|).
func LCSSDist(a, b []geo.Point, epsilon float64) float64 {
	return lcssBounded(a, b, epsilon, math.Inf(1), nil)
}

// EDRDist returns the exact edit distance on real sequences.
func EDRDist(a, b []geo.Point, epsilon float64) float64 {
	return edrBounded(a, b, epsilon, math.Inf(1), nil)
}

// ERPDist returns the exact edit distance with real penalty.
func ERPDist(a, b []geo.Point, gap geo.Point) float64 {
	return erpBounded(a, b, gap, math.Inf(1), nil)
}
