package dist

import (
	"fmt"
	"strings"

	"repose/internal/geo"
)

// Measure identifies one of the six supported similarity measures.
// The zero value is Hausdorff, the paper's default.
type Measure int

// The supported measures, in the order the paper introduces them.
const (
	Hausdorff Measure = iota
	Frechet
	DTW
	LCSS
	EDR
	ERP
	numMeasures // sentinel; keep last
)

// Measures returns all supported measures in declaration order.
func Measures() []Measure {
	out := make([]Measure, numMeasures)
	for i := range out {
		out[i] = Measure(i)
	}
	return out
}

var measureNames = [numMeasures]string{
	Hausdorff: "Hausdorff",
	Frechet:   "Frechet",
	DTW:       "DTW",
	LCSS:      "LCSS",
	EDR:       "EDR",
	ERP:       "ERP",
}

// String implements fmt.Stringer.
func (m Measure) String() string {
	if m >= 0 && m < numMeasures {
		return measureNames[m]
	}
	return fmt.Sprintf("Measure(%d)", int(m))
}

// ParseMeasure resolves a case-insensitive measure name.
func ParseMeasure(s string) (Measure, error) {
	for m, name := range measureNames {
		if strings.EqualFold(s, name) {
			return Measure(m), nil
		}
	}
	return 0, fmt.Errorf("dist: unknown measure %q (want one of %s)",
		s, strings.Join(measureNames[:], ", "))
}

// IsMetric reports whether the measure satisfies the triangle
// inequality, enabling the two-side bound LBt and pivot pruning
// (Section IV-C/IV-D). Hausdorff and discrete Frechet are metrics on
// point sets/sequences; ERP is a metric for a fixed gap point.
func (m Measure) IsMetric() bool {
	return m == Hausdorff || m == Frechet || m == ERP
}

// OrderIndependent reports whether the measure ignores the ordering
// of sample points, making the z-value re-arrangement optimization of
// Section III-C applicable. Only Hausdorff, which treats trajectories
// as point sets, qualifies.
func (m Measure) OrderIndependent() bool { return m == Hausdorff }

// Params carries the per-measure parameters. Measures that do not use
// a field ignore it, so one Params value can serve all six.
type Params struct {
	// Epsilon is the matching tolerance of LCSS and EDR: two points
	// match iff their Euclidean distance is ≤ Epsilon.
	Epsilon float64

	// Gap is ERP's gap point g: the fixed reference against which
	// unmatched points are charged d(·, g).
	Gap geo.Point
}

// DefaultParams derives the paper's default parameters from a dataset
// region: Epsilon is 1% of the region's diameter, and Gap is the
// region's minimum corner.
func DefaultParams(region geo.Rect) Params {
	return Params{
		Epsilon: region.Min.Dist(region.Max) * 0.01,
		Gap:     region.Min,
	}
}
