package dist

import (
	"math"

	"repose/internal/geo"
)

// edrBounded computes the edit distance on real sequences: aligned
// pairs cost 0 when within ε and 1 otherwise, insertions and
// deletions cost 1. The value is a non-negative integer count, so the
// row-minimum cutoff of the other DP kernels applies.
func edrBounded(a, b []geo.Point, epsilon, threshold float64, s *Scratch) float64 {
	if len(a) == 0 || len(b) == 0 {
		return float64(len(a) + len(b))
	}
	m, n := len(a), len(b)
	// EDR ≥ |m − n|: cheap pre-test before the O(mn) table.
	if d := m - n; d > 0 && float64(d) > threshold || d < 0 && float64(-d) > threshold {
		return math.Inf(1)
	}
	prev, cur := s.intRows(n + 1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= m; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= n; j++ {
			sub := prev[j-1]
			if a[i-1].Dist2(b[j-1]) > epsilon*epsilon {
				sub++
			}
			cur[j] = min(sub, prev[j]+1, cur[j-1]+1)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if float64(rowMin) > threshold {
			return math.Inf(1)
		}
		prev, cur = cur, prev
	}
	return float64(prev[n])
}
