package dist

import (
	"math"

	"repose/internal/geo"
)

// frechetBounded computes the discrete Frechet distance by the
// standard O(|a|·|b|) dynamic program with two rolling rows:
//
//	c[i][j] = max(d(a_i, b_j), min(c[i-1][j], c[i][j-1], c[i-1][j-1]))
//
// Every monotone coupling crosses each row, and c never decreases
// along a coupling, so the final value is ≥ the minimum of any row;
// when that minimum exceeds threshold the computation abandons.
func frechetBounded(a, b []geo.Point, threshold float64, s *Scratch) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == len(b) {
			return 0
		}
		return math.Inf(1)
	}
	n := len(b)
	prev, cur := s.floatRows(n)

	// First row: a[0] couples with every prefix of b, so c[0][j] is
	// the running maximum of d(a[0], b[..j]).
	acc := 0.0
	for j, q := range b {
		d := a[0].Dist(q)
		if j == 0 || d > acc {
			acc = d
		}
		prev[j] = acc
	}
	if prev[0] > threshold { // every coupling contains (a[0], b[0])
		return math.Inf(1)
	}

	for i := 1; i < len(a); i++ {
		rowMin := math.Inf(1)
		for j := 0; j < n; j++ {
			reach := prev[j]
			if j > 0 {
				reach = min(reach, prev[j-1], cur[j-1])
			}
			v := max(a[i].Dist(b[j]), reach)
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin > threshold {
			return math.Inf(1)
		}
		prev, cur = cur, prev
	}
	return prev[n-1]
}
