package dist

import (
	"math"

	"repose/internal/geo"
)

// erpBounded computes the edit distance with real penalty against the
// gap point g: aligning a_i with b_j costs d(a_i, b_j); leaving a
// point unaligned costs its distance to g. ERP is a metric for a
// fixed gap. Costs are non-negative, so the row-minimum cutoff
// applies.
func erpBounded(a, b []geo.Point, gap geo.Point, threshold float64, s *Scratch) float64 {
	if len(a) == 0 {
		sum := 0.0
		for _, q := range b {
			sum += q.Dist(gap)
		}
		return sum
	}
	if len(b) == 0 {
		sum := 0.0
		for _, p := range a {
			sum += p.Dist(gap)
		}
		return sum
	}
	m, n := len(a), len(b)
	gb := s.gapRow(n) // d(b_j, gap)
	for j, q := range b {
		gb[j] = q.Dist(gap)
	}
	prev, cur := s.floatRows(n + 1)
	prev[0] = 0 // reused buffers arrive dirty; row 0 starts at cost 0
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + gb[j-1]
	}
	for i := 1; i <= m; i++ {
		ga := a[i-1].Dist(gap)
		cur[0] = prev[0] + ga
		rowMin := cur[0]
		for j := 1; j <= n; j++ {
			v := min(
				prev[j-1]+a[i-1].Dist(b[j-1]), // align
				prev[j]+ga,                    // gap a_i
				cur[j-1]+gb[j-1],              // gap b_j
			)
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin > threshold {
			return math.Inf(1)
		}
		prev, cur = cur, prev
	}
	return prev[n]
}
