package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repose/internal/geo"
	"repose/internal/grid"
)

// bruteSub is the independent reference: the minimum over every
// eligible segment of the whole-trajectory kernel, scanning in the
// same lexicographic (start, end) order with a strict improvement
// test so ties resolve identically.
func bruteSub(m Measure, q, t []geo.Point, p Params, minSeg, maxSeg int) (float64, int, int) {
	n := len(t)
	if maxSeg <= 0 || maxSeg > n {
		maxSeg = n
	}
	if minSeg < 1 {
		minSeg = 1
	}
	best, bs, be := math.Inf(1), 0, 0
	if len(q) == 0 {
		return best, bs, be
	}
	for st := 0; st+minSeg <= n; st++ {
		for e := minSeg; st+e <= n && e <= maxSeg; e++ {
			if d := Distance(m, q, t[st:st+e], p); d < best {
				best, bs, be = d, st, st+e
			}
		}
	}
	return best, bs, be
}

// TestSubDistanceMatchesBruteForce: the segment sweep must be
// bit-identical to the brute-force minimum over whole-kernel calls —
// distance and matched segment — across random inputs, length
// restrictions, scratch reuse, and finite thresholds.
func TestSubDistanceMatchesBruteForce(t *testing.T) {
	sc := &Scratch{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomSeq(rng, 8)
		tr := randomSeq(rng, 14)
		minSeg := rng.Intn(4)      // 0 exercises normalization
		maxSeg := rng.Intn(16) - 1 // -1..14, ≤0 means unbounded
		for _, m := range Measures() {
			wd, ws, we := bruteSub(m, q, tr, testParams, minSeg, maxSeg)
			gd, gs, ge := SubDistance(m, q, tr, testParams, minSeg, maxSeg)
			if gd != wd || (!math.IsInf(wd, 1) && (gs != ws || ge != we)) {
				t.Fatalf("seed %d %v: sub (%v, %d, %d) != brute (%v, %d, %d)",
					seed, m, gd, gs, ge, wd, ws, we)
			}
			// Scratch reuse must not change a single bit.
			sd, ss, se := SubDistanceBoundedScratch(m, q, tr, testParams, minSeg, maxSeg, math.Inf(1), sc)
			if sd != gd || ss != gs || se != ge {
				t.Fatalf("seed %d %v: scratch (%v, %d, %d) != fresh (%v, %d, %d)",
					seed, m, sd, ss, se, gd, gs, ge)
			}
			// A finite threshold must keep the exact answer whenever
			// the answer is within it, and return +Inf only beyond it.
			for _, thr := range []float64{wd * 1.5, wd, wd * 0.5} {
				bd, bstart, bend := SubDistanceBoundedScratch(m, q, tr, testParams, minSeg, maxSeg, thr, sc)
				if wd <= thr {
					if bd != wd || bstart != ws || bend != we {
						t.Fatalf("seed %d %v thr %v: bounded (%v, %d, %d) != exact (%v, %d, %d)",
							seed, m, thr, bd, bstart, bend, wd, ws, we)
					}
				} else if !math.IsInf(bd, 1) && bd != wd {
					t.Fatalf("seed %d %v thr %v: bounded %v is neither +Inf nor exact %v",
						seed, m, thr, bd, wd)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSubDistanceDegenerate pins the empty and over-constrained cases.
func TestSubDistanceDegenerate(t *testing.T) {
	q := pts(1, 1, 2, 2)
	tr := pts(0, 0, 1, 1, 2, 2)
	for _, m := range Measures() {
		if d, _, _ := SubDistance(m, nil, tr, testParams, 1, 0); !math.IsInf(d, 1) {
			t.Errorf("%v: empty query got %v, want +Inf", m, d)
		}
		if d, _, _ := SubDistance(m, q, nil, testParams, 1, 0); !math.IsInf(d, 1) {
			t.Errorf("%v: empty trajectory got %v, want +Inf", m, d)
		}
		if d, _, _ := SubDistance(m, q, tr, testParams, 4, 0); !math.IsInf(d, 1) {
			t.Errorf("%v: minSeg > len(t) got %v, want +Inf", m, d)
		}
		if d, _, _ := SubDistance(m, q, tr, testParams, 3, 2); !math.IsInf(d, 1) {
			t.Errorf("%v: minSeg > maxSeg got %v, want +Inf", m, d)
		}
		// The full-length segment must reproduce the whole-trajectory
		// kernel exactly.
		d, s, e := SubDistance(m, q, tr, testParams, len(tr), len(tr))
		if want := Distance(m, q, tr, testParams); d != want || s != 0 || e != len(tr) {
			t.Errorf("%v: full-length segment (%v, %d, %d), want (%v, 0, %d)", m, d, s, e, want, len(tr))
		}
	}
}

// TestLBoSubAdmissibleQuick walks a bounder down the reference path
// of a random trajectory and checks, at every prefix, that LBoSub
// never exceeds the exact distance to ANY contiguous segment — the
// segment-query half of the admissibility contract.
func TestLBoSubAdmissibleQuick(t *testing.T) {
	f := func(seed int64, bitsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := grid.NewWithBits(boundRegion, int(bitsRaw)%4+2)
		if err != nil {
			t.Fatal(err)
		}
		tr := memberSeq(rng, 10)
		q := randomSeq(rng, 8)
		zs := refPath(g, tr)
		for _, m := range Measures() {
			exact, _, _ := bruteSub(m, q, tr, testParams, 1, 0)
			b := NewQueryBounds(m, q, nil, testParams).Root()
			meta := NodeMeta{MinLen: len(tr), MaxLen: len(tr)}
			for i, z := range zs {
				b.Extend(g.CellByZ(z))
				meta.MaxDepthBelow = len(zs) - 1 - i
				if lb := b.LBoSub(meta); lb > exact+1e-9 {
					t.Fatalf("%v: depth %d/%d LBoSub %v > best-segment %v", m, i+1, len(zs), lb, exact)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestLBoSubNeverExceedsLBo: a whole trajectory is one of its own
// segments, so the segment bound must be at most the whole-trajectory
// bound (it is derived from LBo by dropping terms).
func TestLBoSubNeverExceedsLBo(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := grid.NewWithBits(boundRegion, 3)
		if err != nil {
			t.Fatal(err)
		}
		tr := memberSeq(rng, 10)
		q := randomSeq(rng, 8)
		zs := refPath(g, tr)
		for _, m := range Measures() {
			b := NewQueryBounds(m, q, nil, testParams).Root()
			for _, z := range zs {
				b.Extend(g.CellByZ(z))
			}
			for _, below := range []int{0, 2} {
				meta := NodeMeta{MinLen: len(tr), MaxLen: len(tr), MaxDepthBelow: below}
				if sub, whole := b.LBoSub(meta), b.LBo(meta); sub > whole+1e-12 {
					t.Fatalf("%v (below=%d): LBoSub %v > LBo %v", m, below, sub, whole)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
