package dist

import (
	"math"

	"repose/internal/geo"
)

// lcssBounded computes the LCSS distance 1 − L/min(m, n), where L is
// the length of the longest common subsequence under ε-matching (two
// points match iff their Euclidean distance is ≤ ε). The distance
// lies in [0, 1]. After finishing row i, at most m−1−i further rows
// can each add one match, which upper-bounds the achievable L and
// lower-bounds the final distance — the abandon test.
func lcssBounded(a, b []geo.Point, epsilon, threshold float64, s *Scratch) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == len(b) {
			return 0
		}
		return 1
	}
	m, n := len(a), len(b)
	minmn := float64(min(m, n))
	prev, cur := s.intRows(n + 1)
	// Unlike the other kernels, the recurrence reads the whole first
	// row and column, so reused buffers must be cleared: prev is the
	// all-zero row 0 and column 0 (prev[0]/cur[0]) stays 0 throughout.
	for j := range prev {
		prev[j] = 0
	}
	cur[0] = 0
	for i := 0; i < m; i++ {
		rowMax := 0
		for j := 0; j < n; j++ {
			if a[i].Dist2(b[j]) <= epsilon*epsilon {
				cur[j+1] = prev[j] + 1
			} else {
				cur[j+1] = max(prev[j+1], cur[j])
			}
			if cur[j+1] > rowMax {
				rowMax = cur[j+1]
			}
		}
		if reachable := float64(rowMax + m - 1 - i); reachable < minmn {
			if 1-reachable/minmn > threshold {
				return math.Inf(1)
			}
		}
		prev, cur = cur, prev
	}
	return 1 - float64(prev[n])/minmn
}
