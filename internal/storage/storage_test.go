package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repose/internal/leakcheck"
)

func openTemp(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, dir
}

func TestStoreBootstrapAndReopen(t *testing.T) {
	base := leakcheck.Base()
	s, dir := openTemp(t, Options{})
	if s.HasCheckpoint() {
		t.Fatal("fresh store claims a checkpoint")
	}
	if got := s.NextLSN(); got != 1 {
		t.Fatalf("fresh store NextLSN = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopen: same empty state, no corruption.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s2.HasCheckpoint() {
		t.Fatal("reopened empty store claims a checkpoint")
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	leakcheck.Settle(t, base)
}

func TestCheckpointRoundTrip(t *testing.T) {
	s, dir := openTemp(t, Options{PageSize: 256, PoolFrames: 4})
	defer s.Close()
	// An image spanning many pages, incompressible-ish content.
	image := make([]byte, 10_000)
	rnd := rand.New(rand.NewSource(7))
	rnd.Read(image)
	if err := s.Checkpoint(image, 42); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	got, gen, err := s.LoadCheckpoint()
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if gen != 42 || !bytes.Equal(got, image) {
		t.Fatalf("LoadCheckpoint = gen %d, %d bytes; want gen 42, identical image", gen, len(got))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Recover from disk.
	s2, err := Open(dir, Options{PageSize: 256, PoolFrames: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got, gen, err = s2.LoadCheckpoint()
	if err != nil {
		t.Fatalf("LoadCheckpoint after reopen: %v", err)
	}
	if gen != 42 || !bytes.Equal(got, image) {
		t.Fatalf("recovered checkpoint = gen %d, %d bytes; want gen 42, identical image", gen, len(got))
	}
}

func TestCheckpointReusesPages(t *testing.T) {
	s, _ := openTemp(t, Options{PageSize: 256, PoolFrames: 8})
	defer s.Close()
	image := make([]byte, 4_000)
	for i := 0; i < 12; i++ {
		for j := range image {
			image[j] = byte(i + j)
		}
		if err := s.Checkpoint(image, uint64(i+1)); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}
	// Steady state: each checkpoint frees the previous chain, so the
	// file holds roughly two chains' worth of pages, not twelve.
	chains := uint64(len(s.chain))
	if max := 2 + 3*chains; s.dm.NumPages() > max {
		t.Fatalf("after 12 same-size checkpoints the file has %d pages (chain is %d); COW reuse should cap it near %d",
			s.dm.NumPages(), chains, max)
	}
	got, gen, err := s.LoadCheckpoint()
	if err != nil || gen != 12 {
		t.Fatalf("LoadCheckpoint = gen %d, err %v; want gen 12", gen, err)
	}
	if !bytes.Equal(got, image) {
		t.Fatal("final checkpoint image mismatch")
	}
}

func TestWALAppendSyncReplay(t *testing.T) {
	s, dir := openTemp(t, Options{})
	records := [][]byte{[]byte("alpha"), []byte("beta"), {}, bytes.Repeat([]byte{0xAB}, 5000)}
	var last uint64
	for i, p := range records {
		lsn, err := s.Append(byte(i+1), p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if want := uint64(i + 1); lsn != want {
			t.Fatalf("Append %d returned LSN %d, want %d", i, lsn, want)
		}
		last = lsn
	}
	if err := s.Sync(last); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	var got []WALRecord
	if err := s2.Replay(func(r WALRecord) error {
		got = append(got, WALRecord{r.LSN, r.Type, append([]byte(nil), r.Payload...)})
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(records) {
		t.Fatalf("replayed %d records, want %d", len(got), len(records))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) || r.Type != byte(i+1) || !bytes.Equal(r.Payload, records[i]) {
			t.Fatalf("record %d = %+v, mismatch", i, r)
		}
	}
	if next := s2.NextLSN(); next != uint64(len(records)+1) {
		t.Fatalf("NextLSN after recovery = %d, want %d", next, len(records)+1)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	s, dir := openTemp(t, Options{})
	if _, err := s.Append(1, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append: garbage bytes at the tail.
	walPath := filepath.Join(dir, WALFileName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer s2.Close()
	var n int
	if err := s2.Replay(func(r WALRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want 1 (torn tail dropped)", n)
	}
	// The tail was truncated, so a fresh append lands cleanly.
	if lsn, err := s2.Append(2, []byte("after")); err != nil || lsn != 2 {
		t.Fatalf("Append after torn-tail recovery = LSN %d, err %v; want 2", lsn, err)
	}
}

func TestCheckpointResetsWAL(t *testing.T) {
	s, dir := openTemp(t, Options{})
	for i := 0; i < 5; i++ {
		if _, err := s.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(5); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint([]byte("state at gen 9"), 9); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var n int
	if err := s2.Replay(func(WALRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("replayed %d records after checkpoint, want 0", n)
	}
	if next := s2.NextLSN(); next != 6 {
		t.Fatalf("NextLSN = %d, want 6 (base advanced past obsolete records)", next)
	}
	if gen := s2.CheckpointGen(); gen != 9 {
		t.Fatalf("CheckpointGen = %d, want 9", gen)
	}
}

func TestTornMetaSlotFallsBack(t *testing.T) {
	s, dir := openTemp(t, Options{PageSize: 256})
	img1 := bytes.Repeat([]byte{1}, 300)
	img2 := bytes.Repeat([]byte{2}, 300)
	if err := s.Checkpoint(img1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(img2, 2); err != nil {
		t.Fatal(err)
	}
	newerSlot := s.dm.curSlot
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the newer meta slot: recovery must fall back to the older
	// one, whose chain the COW discipline left intact.
	pf, err := os.OpenFile(filepath.Join(dir, PagesFileName), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, int64(newerSlot)*256); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{PageSize: 256})
	if err != nil {
		t.Fatalf("reopen with torn meta: %v", err)
	}
	defer s2.Close()
	got, gen, err := s2.LoadCheckpoint()
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if gen != 1 || !bytes.Equal(got, img1) {
		t.Fatalf("fallback checkpoint = gen %d; want gen 1 with the older image", gen)
	}
}

func TestBothMetaSlotsTornErrors(t *testing.T) {
	s, dir := openTemp(t, Options{PageSize: 256})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	pf, err := os.OpenFile(filepath.Join(dir, PagesFileName), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0x55}, 64)
	for slot := int64(0); slot < 2; slot++ {
		if _, err := pf.WriteAt(junk, slot*256); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PageSize: 256}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with both metas torn = %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	base := leakcheck.Base()
	s, _ := openTemp(t, Options{})
	defer s.Close()
	const writers, each = 8, 25
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				lsn, err := s.Append(1, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err == nil {
					err = s.Sync(lsn)
				}
				if err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errc; err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	var n int
	seen := make(map[uint64]bool)
	if err := s.Replay(func(r WALRecord) error {
		if seen[r.LSN] {
			return fmt.Errorf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != writers*each {
		t.Fatalf("replayed %d records, want %d", n, writers*each)
	}
	leakcheck.Settle(t, base)
}

// failingVFS wraps OSFS so every WriteAt fails while *arm is set —
// enough to abort a checkpoint partway through its flush.
type failingVFS struct {
	OSFS
	arm *bool
}

func (v failingVFS) OpenFile(name string) (File, error) {
	f, err := v.OSFS.OpenFile(name)
	if err != nil {
		return nil, err
	}
	return failingWriteFile{f, v.arm}, nil
}

type failingWriteFile struct {
	File
	arm *bool
}

func (f failingWriteFile) WriteAt(p []byte, off int64) (int, error) {
	if *f.arm {
		return 0, errors.New("injected write failure")
	}
	return f.File.WriteAt(p, off)
}

// TestCheckpointFailureReleasesPages: a checkpoint that fails before
// its meta commit must return the aborted chain's pages to the
// freelist and drop their half-written frames — otherwise every
// failed attempt leaks the chain's pages until reopen, and stale
// dirty frames could later flush garbage over reused pages.
func TestCheckpointFailureReleasesPages(t *testing.T) {
	arm := false
	s, _ := openTemp(t, Options{VFS: failingVFS{arm: &arm}, PageSize: 256, PoolFrames: 4})
	defer s.Close()
	rnd := rand.New(rand.NewSource(3))
	image := make([]byte, 4000)
	rnd.Read(image)
	if err := s.Checkpoint(image, 1); err != nil {
		t.Fatal(err)
	}
	freeBefore, numBefore := s.dm.FreePages(), s.dm.NumPages()
	arm = true
	if err := s.Checkpoint(image, 2); err == nil {
		t.Fatal("checkpoint with failing writes succeeded")
	}
	grown := s.dm.NumPages() - numBefore
	if got := s.dm.FreePages(); uint64(got) != uint64(freeBefore)+grown {
		t.Fatalf("failed checkpoint leaked pages: free %d -> %d while the file grew by %d pages",
			freeBefore, got, grown)
	}
	// A second failure must not grow the file again: the restored
	// freelist satisfies the retry's allocations.
	numAfterFirst := s.dm.NumPages()
	if err := s.Checkpoint(image, 2); err == nil {
		t.Fatal("checkpoint with failing writes succeeded")
	}
	if got := s.dm.NumPages(); got != numAfterFirst {
		t.Fatalf("second failed checkpoint grew the file %d -> %d pages", numAfterFirst, got)
	}
	arm = false
	// With writes healthy again, a retry lands and round-trips a new
	// image — no stale frame from the aborted attempts survives.
	image2 := make([]byte, 4000)
	rnd.Read(image2)
	if err := s.Checkpoint(image2, 2); err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	got, gen, err := s.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || !bytes.Equal(got, image2) {
		t.Fatalf("recovered gen=%d image mismatch after failed attempts", gen)
	}
}

// TestWALSyncResetNoDeadlock regresses a lock-order inversion: Sync
// acquires syncMu before mu, so Reset must too. The old order (mu
// then syncMu) let a group-commit Sync racing a checkpoint's Reset
// deadlock AB-BA, hanging every writer; the watchdog turns that hang
// into a failure. Appends are serialized against resets by a caller
// lock — matching how Durable drives the WAL — while Syncs run free.
func TestWALSyncResetNoDeadlock(t *testing.T) {
	base := leakcheck.Base()
	dir := t.TempDir()
	f, err := OSFS{}.OpenFile(filepath.Join(dir, WALFileName))
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(f, 1)
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	defer w.Close()
	var callerMu sync.Mutex // the owning index's writer lock
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		const writers, each, resets = 4, 100, 50
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					callerMu.Lock()
					lsn, err := w.Append(1, []byte{byte(g), byte(i)})
					callerMu.Unlock()
					if err == nil {
						err = w.Sync(lsn)
					}
					if err != nil {
						t.Errorf("writer %d: %v", g, err)
						return
					}
				}
			}(g)
		}
		for i := 0; i < resets; i++ {
			callerMu.Lock()
			err := w.Reset(w.NextLSN())
			callerMu.Unlock()
			if err != nil {
				t.Errorf("Reset: %v", err)
				break
			}
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock: WAL.Sync and WAL.Reset stuck on each other's locks")
	}
	leakcheck.Settle(t, base)
}

func TestDecodePageHeaderRejectsCorruption(t *testing.T) {
	buf := make([]byte, 256)
	payload := []byte("hello page")
	if err := EncodePage(buf, PageCheckpoint, 7, payload); err != nil {
		t.Fatal(err)
	}
	if h, got, err := DecodePageHeader(buf); err != nil || h.Next != 7 || !bytes.Equal(got, payload) {
		t.Fatalf("DecodePageHeader on valid page = %+v, %q, %v", h, got, err)
	}
	mutations := map[string]func([]byte){
		"magic":    func(b []byte) { b[0] ^= 0xFF },
		"version":  func(b []byte) { b[4] = 99 },
		"length":   func(b []byte) { b[16] = 0xFF; b[17] = 0xFF },
		"payload":  func(b []byte) { b[PageHeaderSize] ^= 1 },
		"crc":      func(b []byte) { b[20] ^= 1 },
		"truncate": nil,
	}
	for name, mutate := range mutations {
		c := append([]byte(nil), buf...)
		if mutate == nil {
			c = c[:PageHeaderSize-1]
		} else {
			mutate(c)
		}
		if _, _, err := DecodePageHeader(c); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s corruption: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestDecodeWALRecordRejectsCorruption(t *testing.T) {
	rec := appendWALRecord(nil, 5, 2, []byte("record body"))
	if r, n, err := DecodeWALRecord(rec); err != nil || r.LSN != 5 || r.Type != 2 || n != len(rec) {
		t.Fatalf("DecodeWALRecord on valid record = %+v, %d, %v", r, n, err)
	}
	mutations := map[string]func([]byte) []byte{
		"lsn":        func(b []byte) []byte { b[0] ^= 1; return b },
		"type":       func(b []byte) []byte { b[8] ^= 1; return b },
		"length":     func(b []byte) []byte { b[9] = 0xFF; b[10] = 0xFF; b[11] = 0xFF; b[12] = 0x7F; return b },
		"payload":    func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"crc":        func(b []byte) []byte { b[13] ^= 1; return b },
		"short-head": func(b []byte) []byte { return b[:walRecordHeaderSize-3] },
		"short-body": func(b []byte) []byte { return b[:len(b)-2] },
	}
	for name, mutate := range mutations {
		c := mutate(append([]byte(nil), rec...))
		if _, _, err := DecodeWALRecord(c); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s corruption: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestDestroyThenOpenIsFresh(t *testing.T) {
	s, dir := openTemp(t, Options{})
	if err := s.Checkpoint([]byte("old state"), 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Destroy(dir, nil); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.HasCheckpoint() {
		t.Fatal("store survived Destroy")
	}
}
