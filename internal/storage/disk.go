package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Disk manager: fixed-size pages in one file. Pages 0 and 1 are the
// two meta slots (written alternately, newest valid epoch wins — the
// classic double-meta commit); data pages follow. All multi-byte
// fields are little-endian.

const (
	// DefaultPageSize is the page size new stores are created with.
	DefaultPageSize = 4096

	// minPageSize bounds how small a configured page may be; the
	// header plus a meta slot must fit with room for a payload.
	minPageSize = 128

	// FormatVersion is the on-disk format version byte shared by the
	// meta slots, page headers, and the WAL header. Readers reject
	// any other value instead of misdecoding a future layout.
	FormatVersion = 1

	// PageHeaderSize is the length of the fixed data-page header.
	PageHeaderSize = 24

	metaSlotSize = 64
)

// Page types.
const (
	// PageCheckpoint is one link of a checkpoint-image chain.
	PageCheckpoint = byte(1)
)

var (
	pageMagic = [4]byte{'R', 'P', 'P', 'G'}
	metaMagic = [7]byte{'R', 'P', 'S', 'T', 'O', 'R', '1'}
)

// ErrCorrupt reports an on-disk structure that failed validation
// (bad magic, version, bounds, or CRC). Match with errors.Is.
var ErrCorrupt = errors.New("storage: corrupt on-disk structure")

// PageHeader is the decoded fixed header of one data page.
type PageHeader struct {
	Type       byte
	Next       uint64 // next page id in the chain; 0 terminates
	PayloadLen uint32
	CRC        uint32 // over the payload bytes
}

// EncodePage serializes a page into buf (len(buf) = pageSize):
// header followed by payload, zero padding after.
func EncodePage(buf []byte, typ byte, next uint64, payload []byte) error {
	if PageHeaderSize+len(payload) > len(buf) {
		return fmt.Errorf("storage: payload of %d bytes exceeds page capacity %d", len(payload), len(buf)-PageHeaderSize)
	}
	copy(buf[0:4], pageMagic[:])
	buf[4] = FormatVersion
	buf[5] = typ
	buf[6], buf[7] = 0, 0
	binary.LittleEndian.PutUint64(buf[8:16], next)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(payload))
	copy(buf[PageHeaderSize:], payload)
	for i := PageHeaderSize + len(payload); i < len(buf); i++ {
		buf[i] = 0
	}
	return nil
}

// DecodePageHeader parses and validates a data page's header against
// the page buffer, returning the header and the payload slice (a view
// into buf). Corrupt or truncated input errors with ErrCorrupt; it
// never panics, whatever the input (fuzzed by FuzzPageHeaderDecode).
func DecodePageHeader(buf []byte) (PageHeader, []byte, error) {
	var h PageHeader
	if len(buf) < PageHeaderSize {
		return h, nil, fmt.Errorf("%w: page of %d bytes is shorter than its header", ErrCorrupt, len(buf))
	}
	if [4]byte(buf[0:4]) != pageMagic {
		return h, nil, fmt.Errorf("%w: bad page magic %q", ErrCorrupt, buf[0:4])
	}
	if buf[4] != FormatVersion {
		return h, nil, fmt.Errorf("%w: page format version %d, this build reads %d", ErrCorrupt, buf[4], FormatVersion)
	}
	if buf[6] != 0 || buf[7] != 0 {
		return h, nil, fmt.Errorf("%w: nonzero reserved bytes in page header", ErrCorrupt)
	}
	h.Type = buf[5]
	h.Next = binary.LittleEndian.Uint64(buf[8:16])
	h.PayloadLen = binary.LittleEndian.Uint32(buf[16:20])
	h.CRC = binary.LittleEndian.Uint32(buf[20:24])
	if int64(h.PayloadLen) > int64(len(buf)-PageHeaderSize) {
		return h, nil, fmt.Errorf("%w: payload length %d exceeds page capacity %d", ErrCorrupt, h.PayloadLen, len(buf)-PageHeaderSize)
	}
	payload := buf[PageHeaderSize : PageHeaderSize+int(h.PayloadLen)]
	if crc32.ChecksumIEEE(payload) != h.CRC {
		return h, nil, fmt.Errorf("%w: page payload CRC mismatch", ErrCorrupt)
	}
	return h, payload, nil
}

// meta is one decoded meta slot.
type meta struct {
	epoch    uint64
	ckptHead uint64 // first page of the checkpoint chain; 0 = none
	ckptLen  uint64 // total checkpoint payload length
	ckptGen  uint64 // generation the checkpoint image carries
	ckptCRC  uint32 // over the whole reassembled image
	walBase  uint64 // first LSN of the current wal.log
}

// encodeMeta serializes a meta slot (metaSlotSize bytes).
func encodeMeta(m meta) []byte {
	buf := make([]byte, metaSlotSize)
	copy(buf[0:7], metaMagic[:])
	buf[7] = FormatVersion
	binary.LittleEndian.PutUint64(buf[8:16], m.epoch)
	binary.LittleEndian.PutUint64(buf[16:24], m.ckptHead)
	binary.LittleEndian.PutUint64(buf[24:32], m.ckptLen)
	binary.LittleEndian.PutUint64(buf[32:40], m.ckptGen)
	binary.LittleEndian.PutUint32(buf[40:44], m.ckptCRC)
	binary.LittleEndian.PutUint64(buf[44:52], m.walBase)
	binary.LittleEndian.PutUint32(buf[60:64], crc32.ChecksumIEEE(buf[0:60]))
	return buf
}

// decodeMeta parses one meta slot, reporting ok=false (not an error —
// a torn slot is expected after a crash) when it fails validation.
func decodeMeta(buf []byte) (meta, bool) {
	var m meta
	if len(buf) < metaSlotSize {
		return m, false
	}
	if [7]byte(buf[0:7]) != metaMagic || buf[7] != FormatVersion {
		return m, false
	}
	if crc32.ChecksumIEEE(buf[0:60]) != binary.LittleEndian.Uint32(buf[60:64]) {
		return m, false
	}
	m.epoch = binary.LittleEndian.Uint64(buf[8:16])
	m.ckptHead = binary.LittleEndian.Uint64(buf[16:24])
	m.ckptLen = binary.LittleEndian.Uint64(buf[24:32])
	m.ckptGen = binary.LittleEndian.Uint64(buf[32:40])
	m.ckptCRC = binary.LittleEndian.Uint32(buf[40:44])
	m.walBase = binary.LittleEndian.Uint64(buf[44:52])
	return m, true
}

// Freelist tracks the data pages available for allocation. It is
// rebuilt at every open by sweeping the live checkpoint chain out of
// the file's page range (pages referenced by no durable structure are
// free by construction — the copy-on-write discipline never writes a
// live page), so it needs no persistence of its own and cannot be
// corrupted by a crash.
type Freelist struct {
	free []uint64 // LIFO
}

// Pop takes one free page id, ok=false when empty.
func (fl *Freelist) Pop() (uint64, bool) {
	if len(fl.free) == 0 {
		return 0, false
	}
	id := fl.free[len(fl.free)-1]
	fl.free = fl.free[:len(fl.free)-1]
	return id, true
}

// Push returns page ids to the free set.
func (fl *Freelist) Push(ids ...uint64) { fl.free = append(fl.free, ids...) }

// Len returns the number of free pages.
func (fl *Freelist) Len() int { return len(fl.free) }

// DiskManager performs page-granular IO on the store's page file and
// owns the meta slots and the freelist. It is not safe for concurrent
// use; the Store serializes access.
type DiskManager struct {
	f        File
	pageSize int
	numPages uint64 // pages the file logically holds, including metas
	cur      meta
	curSlot  uint64 // page id (0 or 1) holding cur
	free     Freelist
}

// OpenDiskManager opens or bootstraps the page file. A zero-length
// file is initialized with an empty meta in slot 0 (the meta page +
// freelist bootstrap); an existing file has both meta slots read, the
// newest valid one adopted, and the freelist rebuilt by sweeping its
// checkpoint chain out of the page range.
func OpenDiskManager(f File, pageSize int) (*DiskManager, error) {
	if pageSize < minPageSize {
		return nil, fmt.Errorf("storage: page size %d below minimum %d", pageSize, minPageSize)
	}
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	dm := &DiskManager{f: f, pageSize: pageSize, numPages: uint64(size) / uint64(pageSize)}
	if dm.numPages < 2 {
		// Fresh (or hopelessly truncated) file: bootstrap.
		dm.numPages = 2
		dm.cur = meta{epoch: 1, walBase: 1}
		dm.curSlot = 0
		if err := dm.writeMetaSlot(0, dm.cur); err != nil {
			return nil, err
		}
		// Zero slot 1 so the file spans both meta pages; an all-zero
		// slot decodes as invalid, which is what "never committed"
		// should look like.
		if _, err := f.WriteAt(make([]byte, pageSize), int64(pageSize)); err != nil {
			return nil, err
		}
		if err := f.Sync(); err != nil {
			return nil, err
		}
		return dm, nil
	}
	slots := [2]meta{}
	valid := [2]bool{}
	buf := make([]byte, metaSlotSize)
	for slot := uint64(0); slot < 2; slot++ {
		if _, err := f.ReadAt(buf, int64(slot)*int64(pageSize)); err != nil {
			continue // a short meta page is just an invalid slot
		}
		slots[slot], valid[slot] = decodeMeta(buf)
	}
	switch {
	case !valid[0] && !valid[1]:
		return nil, fmt.Errorf("%w: no valid meta slot", ErrCorrupt)
	case valid[0] && (!valid[1] || slots[0].epoch >= slots[1].epoch):
		dm.cur, dm.curSlot = slots[0], 0
	default:
		dm.cur, dm.curSlot = slots[1], 1
	}
	used, err := dm.chainPages(dm.cur.ckptHead)
	if err != nil {
		return nil, fmt.Errorf("storage: live checkpoint chain: %w", err)
	}
	inUse := make(map[uint64]bool, len(used))
	for _, id := range used {
		inUse[id] = true
	}
	for id := dm.numPages; id > 2; id-- {
		if !inUse[id-1] {
			dm.free.Push(id - 1)
		}
	}
	return dm, nil
}

// writeMetaSlot serializes m into the given slot's page.
func (dm *DiskManager) writeMetaSlot(slot uint64, m meta) error {
	buf := make([]byte, dm.pageSize)
	copy(buf, encodeMeta(m))
	_, err := dm.f.WriteAt(buf, int64(slot)*int64(dm.pageSize))
	return err
}

// Meta returns the current committed meta state.
func (dm *DiskManager) Meta() (ckptHead, ckptLen, ckptGen uint64, ckptCRC uint32, walBase uint64) {
	return dm.cur.ckptHead, dm.cur.ckptLen, dm.cur.ckptGen, dm.cur.ckptCRC, dm.cur.walBase
}

// PageSize returns the page size.
func (dm *DiskManager) PageSize() int { return dm.pageSize }

// PayloadSize returns the usable payload bytes per page.
func (dm *DiskManager) PayloadSize() int { return dm.pageSize - PageHeaderSize }

// NumPages returns the logical page count, including the meta slots.
func (dm *DiskManager) NumPages() uint64 { return dm.numPages }

// FreePages returns how many pages are currently free.
func (dm *DiskManager) FreePages() int { return dm.free.Len() }

// Alloc takes a free page, extending the file range when none is
// available. The page's contents are undefined until written.
func (dm *DiskManager) Alloc() uint64 {
	if id, ok := dm.free.Pop(); ok {
		return id
	}
	id := dm.numPages
	dm.numPages++
	return id
}

// Free returns pages to the free set. Callers must only free pages
// that no durable meta slot references anymore.
func (dm *DiskManager) Free(ids ...uint64) { dm.free.Push(ids...) }

// ReadRaw reads one raw page into a fresh buffer.
func (dm *DiskManager) ReadRaw(id uint64) ([]byte, error) {
	if id < 2 || id >= dm.numPages {
		return nil, fmt.Errorf("%w: page %d out of range [2, %d)", ErrCorrupt, id, dm.numPages)
	}
	buf := make([]byte, dm.pageSize)
	if _, err := dm.f.ReadAt(buf, int64(id)*int64(dm.pageSize)); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteRaw writes one raw page buffer (len = pageSize).
func (dm *DiskManager) WriteRaw(id uint64, buf []byte) error {
	if id < 2 {
		return fmt.Errorf("storage: refusing to write data over meta slot %d", id)
	}
	if len(buf) != dm.pageSize {
		return fmt.Errorf("storage: raw page write of %d bytes, page size %d", len(buf), dm.pageSize)
	}
	_, err := dm.f.WriteAt(buf, int64(id)*int64(dm.pageSize))
	return err
}

// Sync fsyncs the page file.
func (dm *DiskManager) Sync() error { return dm.f.Sync() }

// CommitMeta durably installs a new meta state: it writes the stale
// slot with an incremented epoch and fsyncs. The caller must have
// already flushed and fsynced every page the new state references
// (the copy-on-write checkpoint invariant).
func (dm *DiskManager) CommitMeta(ckptHead, ckptLen, ckptGen uint64, ckptCRC uint32, walBase uint64) error {
	next := meta{
		epoch:    dm.cur.epoch + 1,
		ckptHead: ckptHead,
		ckptLen:  ckptLen,
		ckptGen:  ckptGen,
		ckptCRC:  ckptCRC,
		walBase:  walBase,
	}
	slot := 1 - dm.curSlot
	if err := dm.writeMetaSlot(slot, next); err != nil {
		return err
	}
	if err := dm.f.Sync(); err != nil {
		return err
	}
	dm.cur, dm.curSlot = next, slot
	return nil
}

// chainPages walks a checkpoint chain from head, validating each
// page, and returns the page ids in order. A nil result for head 0.
func (dm *DiskManager) chainPages(head uint64) ([]uint64, error) {
	var ids []uint64
	for id := head; id != 0; {
		if uint64(len(ids)) > dm.numPages {
			return nil, fmt.Errorf("%w: checkpoint chain cycles", ErrCorrupt)
		}
		buf, err := dm.ReadRaw(id)
		if err != nil {
			return nil, err
		}
		h, _, err := DecodePageHeader(buf)
		if err != nil {
			return nil, err
		}
		if h.Type != PageCheckpoint {
			return nil, fmt.Errorf("%w: page %d has type %d, want checkpoint", ErrCorrupt, id, h.Type)
		}
		ids = append(ids, id)
		id = h.Next
	}
	return ids, nil
}

// Close closes the page file.
func (dm *DiskManager) Close() error { return dm.f.Close() }
