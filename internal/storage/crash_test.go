package storage_test

import (
	"encoding/binary"
	"errors"
	"os"
	"strconv"
	"testing"

	"repose/internal/storage"
	"repose/internal/storage/failpoint"
)

// crashSeeds resolves the harness's seed list: CRASH_SEED from the
// environment (CI replays a fixed matrix), defaults otherwise.
func crashSeeds(defaults []int64, short bool) []int64 {
	if v := os.Getenv("CRASH_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return []int64{n}
		}
	}
	if short {
		return defaults[:1]
	}
	return defaults
}

// TestStoreCrashAtEveryIO dry-runs a mixed append/sync/checkpoint
// workload to count its IO points, then re-runs it crashing at every
// single one, recovering, and asserting the storage durability
// contract: the recovered counter state is a prefix point of the
// history that is at least the last acknowledged (synced or
// checkpointed) value, with records replayed contiguously and in
// order. Failures print the seed and crash point.
func TestStoreCrashAtEveryIO(t *testing.T) {
	seeds := crashSeeds([]int64{1, 7, 42}, testing.Short())
	for _, seed := range seeds {
		total := runStoreWorkload(t, failpoint.New(seed), 0, 0)
		if total < 20 {
			t.Fatalf("seed %d: workload hit only %d IO points; too few to be interesting", seed, total)
		}
		stride := int64(1)
		if testing.Short() {
			stride = 5
		}
		for n := int64(1); n <= total; n += stride {
			fs := failpoint.New(seed, failpoint.WithCrashAt(n))
			acked := runStoreWorkload(t, fs, n, 0)
			if !fs.Crashed() {
				t.Fatalf("seed %d: crash point %d never fired", seed, n)
			}
			fs.Restart()
			verifyRecovered(t, fs, seed, n, acked)
		}
	}
}

// runStoreWorkload drives the store through value counter 1..30 with
// periodic checkpoints. With crashAt == 0 it returns the total IO op
// count; otherwise it returns the highest acknowledged value (a value
// is acknowledged once its record's Sync or its checkpoint returns
// success) and tolerates the scheduled crash.
func runStoreWorkload(t *testing.T, fs *failpoint.FS, crashAt int64, _ int) int64 {
	t.Helper()
	s, err := storage.Open("part", storage.Options{VFS: fs, PageSize: 256, PoolFrames: 4})
	if err != nil {
		if crashAt != 0 && errors.Is(err, failpoint.ErrCrashed) {
			return 0
		}
		t.Fatalf("seed %d: Open: %v", fs.Seed(), err)
	}
	var acked int64
	buf := make([]byte, 8)
	for v := int64(1); v <= 30; v++ {
		binary.LittleEndian.PutUint64(buf, uint64(v))
		lsn, err := s.Append(1, buf)
		if err == nil {
			err = s.Sync(lsn)
		}
		if err != nil {
			if crashAt != 0 && errors.Is(err, failpoint.ErrCrashed) {
				return acked
			}
			t.Fatalf("seed %d: value %d: %v", fs.Seed(), v, err)
		}
		acked = v
		if v%7 == 0 {
			image := make([]byte, 200) // multi-page at 256B pages
			binary.LittleEndian.PutUint64(image, uint64(v))
			if err := s.Checkpoint(image, uint64(v)); err != nil {
				if crashAt != 0 && errors.Is(err, failpoint.ErrCrashed) {
					return acked
				}
				t.Fatalf("seed %d: checkpoint at %d: %v", fs.Seed(), v, err)
			}
		}
	}
	if err := s.Close(); err != nil && !(crashAt != 0 && errors.Is(err, failpoint.ErrCrashed)) {
		t.Fatalf("seed %d: Close: %v", fs.Seed(), err)
	}
	if crashAt == 0 {
		return fs.Ops()
	}
	return acked
}

// verifyRecovered reopens the crashed store and checks the recovered
// counter against the acknowledged floor.
func verifyRecovered(t *testing.T, fs *failpoint.FS, seed, crashPoint, acked int64) {
	t.Helper()
	s, err := storage.Open("part", storage.Options{VFS: fs, PageSize: 256, PoolFrames: 4})
	if err != nil {
		// The only excusable corruption is a store whose very
		// bootstrap fsync never completed — nothing was ever
		// acknowledged from it.
		if errors.Is(err, storage.ErrCorrupt) && acked == 0 {
			return
		}
		t.Fatalf("seed %d crash@%d: recovery failed with %d values acknowledged: %v", seed, crashPoint, acked, err)
	}
	defer s.Close()
	recovered := int64(0)
	if s.HasCheckpoint() {
		image, gen, err := s.LoadCheckpoint()
		if err != nil {
			t.Fatalf("seed %d crash@%d: checkpoint unreadable: %v", seed, crashPoint, err)
		}
		if gen%7 != 0 || gen == 0 || gen > 30 {
			t.Fatalf("seed %d crash@%d: recovered checkpoint gen %d was never written", seed, crashPoint, gen)
		}
		if got := binary.LittleEndian.Uint64(image[:8]); got != gen {
			t.Fatalf("seed %d crash@%d: checkpoint image value %d does not match its gen %d", seed, crashPoint, got, gen)
		}
		recovered = int64(gen)
	}
	want := recovered + 1
	if err := s.Replay(func(r storage.WALRecord) error {
		v := int64(binary.LittleEndian.Uint64(r.Payload))
		// Records below the checkpoint are legal leftovers only when
		// the WAL predates it; OpenWAL resets such logs, so every
		// replayed value must continue the counter contiguously.
		if v != want {
			t.Fatalf("seed %d crash@%d: replayed value %d, want %d (gap or reorder)", seed, crashPoint, v, want)
		}
		want++
		recovered = v
		return nil
	}); err != nil {
		t.Fatalf("seed %d crash@%d: replay: %v", seed, crashPoint, err)
	}
	if recovered < acked {
		t.Fatalf("seed %d crash@%d: recovered to value %d but %d was acknowledged — acknowledged durability violated",
			seed, crashPoint, recovered, acked)
	}
	if recovered > 30 {
		t.Fatalf("seed %d crash@%d: recovered phantom value %d", seed, crashPoint, recovered)
	}
}
