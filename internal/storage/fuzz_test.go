package storage

import (
	"bytes"
	"testing"
)

// FuzzPageHeaderDecode checks that DecodePageHeader never panics and
// never accepts a page it cannot faithfully re-encode: corrupt or
// truncated input must error, and accepted input must round-trip.
func FuzzPageHeaderDecode(f *testing.F) {
	valid := make([]byte, 256)
	if err := EncodePage(valid, PageCheckpoint, 9, []byte("seed payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, PageHeaderSize))
	f.Add(valid[:PageHeaderSize-1])
	short := append([]byte(nil), valid...)
	short[16] = 0xF0 // length beyond page capacity
	f.Add(short)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := DecodePageHeader(data)
		if err != nil {
			return
		}
		// Accepted: re-encoding into a same-size page must reproduce
		// the header and payload bytes exactly.
		buf := make([]byte, len(data))
		if err := EncodePage(buf, h.Type, h.Next, payload); err != nil {
			t.Fatalf("accepted page failed to re-encode: %v", err)
		}
		if !bytes.Equal(buf[:PageHeaderSize+len(payload)], data[:PageHeaderSize+len(payload)]) {
			t.Fatal("accepted page does not round-trip")
		}
	})
}

// FuzzWALRecordDecode checks that DecodeWALRecord never panics:
// corrupt or truncated input must error, and accepted records must
// round-trip through appendWALRecord.
func FuzzWALRecordDecode(f *testing.F) {
	f.Add(appendWALRecord(nil, 1, 1, []byte("insert batch")))
	f.Add(appendWALRecord(nil, 0, 0, nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, walRecordHeaderSize))
	torn := appendWALRecord(nil, 7, 3, bytes.Repeat([]byte{0xAB}, 100))
	f.Add(torn[:len(torn)-9])
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeWALRecord(data)
		if err != nil {
			return
		}
		if n < walRecordHeaderSize || n > len(data) {
			t.Fatalf("accepted record reports %d consumed bytes of %d", n, len(data))
		}
		if !bytes.Equal(appendWALRecord(nil, r.LSN, r.Type, r.Payload), data[:n]) {
			t.Fatal("accepted record does not round-trip")
		}
	})
}
