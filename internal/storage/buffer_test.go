package storage

import (
	"bytes"
	"flag"
	"math/rand"
	"testing"

	"repose/internal/leakcheck"
)

var bufSeed = flag.Int64("buffer.seed", 0, "override the buffer pool property test seed (0 = derive per run)")

// TestBufferPoolProperty drives a seeded random workload of
// fetch/new/write/unpin/flush against a pool much smaller than the
// page set, checking after every step that (1) page images read
// through the pool match a shadow map, (2) pinned pages are never
// evicted, and (3) flush+reopen round-trips the shadow map through
// the disk layer. Failures print the seed.
func TestBufferPoolProperty(t *testing.T) {
	base := leakcheck.Base()
	seeds := []int64{1, 7, 42, 1234, 99991}
	if *bufSeed != 0 {
		seeds = []int64{*bufSeed}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			runBufferPoolWorkload(t, seed)
		})
	}
	leakcheck.Settle(t, base)
}

func runBufferPoolWorkload(t *testing.T, seed int64) {
	t.Helper()
	const (
		pageSize = 256
		frames   = 4
		numPages = 24
		steps    = 2000
	)
	dir := t.TempDir()
	s, err := Open(dir, Options{PageSize: pageSize, PoolFrames: frames})
	if err != nil {
		t.Fatalf("seed %d: Open: %v", seed, err)
	}
	defer s.Close()
	dm, bp := s.dm, s.bp

	// Materialize the page range up front so fetches of any id are
	// legal, and seed the shadow map with the zero images.
	shadow := make(map[uint64][]byte, numPages)
	zero := make([]byte, pageSize)
	for len(shadow) < numPages {
		id := dm.Alloc()
		if err := dm.WriteRaw(id, zero); err != nil {
			t.Fatalf("seed %d: seeding page %d: %v", seed, id, err)
		}
		shadow[id] = append([]byte(nil), zero...)
	}
	ids := make([]uint64, 0, numPages)
	for id := range shadow {
		ids = append(ids, id)
	}

	rnd := rand.New(rand.NewSource(seed))
	pinned := make(map[uint64]int) // page id -> pins we hold
	unpinOne := func(id uint64, dirty bool) {
		if err := bp.Unpin(id, dirty); err != nil {
			t.Fatalf("seed %d: unpin %d: %v", seed, id, err)
		}
		if pinned[id]--; pinned[id] == 0 {
			delete(pinned, id)
		}
	}

	for step := 0; step < steps; step++ {
		// Keep at least two frames unpinned so fetches always have a
		// victim available (holding every frame pinned is a
		// legitimate error, tested separately).
		for len(pinned) >= frames-1 {
			for held := range pinned {
				unpinOne(held, false)
				break
			}
		}
		id := ids[rnd.Intn(len(ids))]
		switch op := rnd.Intn(10); {
		case op < 4: // fetch, verify against shadow, maybe write, unpin
			data, err := bp.Fetch(id)
			if err != nil {
				t.Fatalf("seed %d step %d: fetch %d: %v", seed, step, id, err)
			}
			pinned[id]++
			if !bytes.Equal(data, shadow[id]) {
				t.Fatalf("seed %d step %d: page %d image diverged from shadow map", seed, step, id)
			}
			if rnd.Intn(2) == 0 { // write a byte, release as dirty
				off := rnd.Intn(pageSize)
				data[off] = byte(rnd.Intn(256))
				shadow[id][off] = data[off]
				unpinOne(id, true)
			} else if rnd.Intn(4) != 0 { // usually release clean pins too
				unpinOne(id, false)
			} // else: hold the (clean) pin across future steps
		case op < 6: // unpin something we hold
			for held := range pinned {
				unpinOne(held, false)
				break
			}
		case op < 7: // flush everything
			if err := bp.FlushAll(); err != nil {
				t.Fatalf("seed %d step %d: flush: %v", seed, step, err)
			}
		default: // verify a random page through a fresh fetch
			data, err := bp.Fetch(id)
			if err != nil {
				t.Fatalf("seed %d step %d: fetch %d: %v", seed, step, id, err)
			}
			if !bytes.Equal(data, shadow[id]) {
				t.Fatalf("seed %d step %d: page %d image diverged from shadow map", seed, step, id)
			}
			if err := bp.Unpin(id, false); err != nil {
				t.Fatalf("seed %d step %d: unpin %d: %v", seed, step, id, err)
			}
		}
		// Invariant: every page we hold a pin on is still resident —
		// eviction must never touch a pinned frame.
		for held := range pinned {
			if !bp.Resident(held) {
				t.Fatalf("seed %d step %d: pinned page %d was evicted", seed, step, held)
			}
		}
	}
	for held, n := range pinned {
		for i := 0; i < n; i++ {
			if err := bp.Unpin(held, false); err != nil {
				t.Fatalf("seed %d: final unpin %d: %v", seed, held, err)
			}
		}
	}
	// Flush and re-read every page raw: the disk must now agree with
	// the shadow map byte for byte.
	if err := bp.FlushAll(); err != nil {
		t.Fatalf("seed %d: final flush: %v", seed, err)
	}
	for _, id := range ids {
		disk, err := dm.ReadRaw(id)
		if err != nil {
			t.Fatalf("seed %d: raw read %d: %v", seed, id, err)
		}
		if !bytes.Equal(disk, shadow[id]) {
			t.Fatalf("seed %d: page %d on disk diverged from shadow map after flush", seed, id)
		}
	}
}

func TestBufferPoolAllPinnedErrors(t *testing.T) {
	s, _ := openTemp(t, Options{PageSize: 256, PoolFrames: 2})
	defer s.Close()
	ids := []uint64{s.dm.Alloc(), s.dm.Alloc(), s.dm.Alloc()}
	zero := make([]byte, 256)
	for _, id := range ids {
		if err := s.dm.WriteRaw(id, zero); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids[:2] {
		if _, err := s.bp.Fetch(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.bp.Fetch(ids[2]); err == nil {
		t.Fatal("fetch with every frame pinned should fail, not evict a pinned page")
	}
	if err := s.bp.Unpin(ids[0], false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.bp.Fetch(ids[2]); err != nil {
		t.Fatalf("fetch after releasing a pin: %v", err)
	}
	if s.bp.Resident(ids[0]) {
		t.Fatal("unpinned page should have been the eviction victim")
	}
	if !s.bp.Resident(ids[1]) {
		t.Fatal("pinned page was evicted")
	}
	if err := s.bp.Unpin(ids[1], false); err != nil {
		t.Fatal(err)
	}
	if err := s.bp.Unpin(ids[2], false); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolLRUKPrefersColdPages(t *testing.T) {
	s, _ := openTemp(t, Options{PageSize: 256, PoolFrames: 3})
	defer s.Close()
	zero := make([]byte, 256)
	var ids []uint64
	for i := 0; i < 4; i++ {
		id := s.dm.Alloc()
		if err := s.dm.WriteRaw(id, zero); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	hot, warm, cold := ids[0], ids[1], ids[2]
	// hot: two accesses (has a K-th access stamp). warm: two accesses,
	// older. cold: one access (no K-th stamp — LRU-K evicts it first
	// even though its single access is the most recent).
	for _, seq := range []uint64{warm, warm, hot, hot, cold} {
		if _, err := s.bp.Fetch(seq); err != nil {
			t.Fatal(err)
		}
		if err := s.bp.Unpin(seq, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.bp.Fetch(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.bp.Unpin(ids[3], false); err != nil {
		t.Fatal(err)
	}
	if s.bp.Resident(cold) {
		t.Fatal("LRU-K should evict the page with no K-th access first")
	}
	if !s.bp.Resident(hot) || !s.bp.Resident(warm) {
		t.Fatal("pages with K accesses were evicted before the scan-once page")
	}
}
