// Package storage is the paged, durable backing store behind a
// partition's RP-Trie: a disk manager over fixed-size pages, a
// buffer-pool manager with pinned frames and LRU-K eviction, and a
// write-ahead log with sequenced CRC-framed records, group commit,
// and a replay iterator. rptrie.OpenDurable layers the trie's
// epoch/generation scheme on top (see rptrie/durable.go); this
// package knows nothing about trajectories — it stores checkpoint
// images and replays opaque log records.
//
// # On-disk layout
//
// A Store owns one directory with two files:
//
//	pages.db — page 0 and page 1 are the two meta slots; data pages
//	           follow. Every data page carries a 24-byte header
//	           (magic, format version, type, next-page link, payload
//	           length, payload CRC); a checkpoint image is chunked
//	           into a singly linked chain of such pages.
//	wal.log  — a CRC'd header followed by append-only records
//	           [LSN | type | length | CRC | payload].
//
// # The WAL-before-acknowledge invariant
//
// A mutation is acknowledged to the caller only after its log record
// is fsynced (Append then Sync; concurrent committers share one
// fsync — group commit). The in-memory index may briefly run ahead
// of the durable log between apply and sync, but the caller has not
// been told the mutation succeeded yet, and a crash in that window
// destroys the memory state anyway — so every *acknowledged*
// mutation is always recoverable, and an unacknowledged one is
// either recovered whole (its record made it to disk) or dropped
// whole (it did not). Records are applied atomically: a torn tail
// record fails its CRC and replay treats it as end-of-log.
//
// # The copy-on-write checkpoint invariant
//
// Checkpoint pages are never written in place. A new checkpoint
// image is chunked onto pages drawn from the free set — pages
// referenced by neither valid meta slot — flushed through the buffer
// pool, and fsynced; only then is the older meta slot overwritten
// (with an incremented epoch, a pointer to the new chain, and a CRC)
// and fsynced. A crash at any point leaves at least one valid meta
// slot whose entire chain is intact: before the meta write the old
// slot still rules, after it the new one does, and a torn meta write
// fails its CRC so recovery falls back to the surviving slot. The
// WAL is truncated only after the meta slot that obsoletes its
// records is durable, so a crash during truncation merely leaves
// records whose generations the checkpoint already covers (replay
// skips them by generation).
//
// # Recovery ≡ generation
//
// Recovery loads the newest valid meta slot's checkpoint image
// (generation G) and replays every well-formed log record whose
// resulting generation exceeds G, in LSN order, stopping at the
// first torn or corrupt record. Because mutations are serialized by
// the owning index's writer lock, record order equals apply order;
// because each record captures one whole mutation batch and replay
// re-applies it through the exact same (deterministic) staging code,
// the recovered index is bit-identical to the pre-crash index at
// whatever generation the durable log prefix reaches — never a
// half-applied state. The crash-point differential harness in
// rptrie/durable_crash_test.go checks exactly this claim against
// internal/oracle for every reachable IO cut point.
package storage
