// Package failpoint is a deterministic fault-injecting storage.VFS
// for crash-recovery testing. It keeps every file in memory twice: a
// durable image (what has survived an fsync) and an ordered list of
// pending writes (what sits in the "page cache"). A seeded schedule
// decides which faults fire:
//
//   - torn/partial writes: at a crash, each pending write survives
//     independently with probability ½, and the last survivor may be
//     torn to a prefix — modelling unordered, sector-granular
//     writeback of an unsynced page cache;
//   - short writes: a WriteAt persists only a prefix and reports
//     ErrShortWrite, like a full disk;
//   - dropped fsyncs: a Sync reports success without promoting
//     anything, like a lying disk — acknowledged durability claims do
//     not hold under this fault, so harnesses enable it only for
//     self-consistency (not durability-floor) assertions;
//   - crash-at-Nth-IO: the Nth mutating operation (write, truncate,
//     sync, remove) fails with ErrCrashed and freezes the filesystem,
//     so a harness can first dry-run a workload to count its IO
//     points (Ops) and then re-run it crashing at every single one.
//
// Everything is driven by one seeded PRNG: the same seed and the same
// operation sequence produce the same faults, so failures reproduce
// by printing the seed. After a crash, Restart collapses each file to
// its durable image (applying the seeded torn-write model to the
// pending writes lost in the crash), invalidates every open handle,
// and lets the store be reopened for recovery.
package failpoint

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"

	"repose/internal/storage"
)

// ErrCrashed is returned by every operation after the simulated
// machine has crashed (and by stale handles after a Restart).
var ErrCrashed = errors.New("failpoint: simulated crash")

// Option configures the fault schedule.
type Option func(*FS)

// WithCrashAt arranges for the nth mutating IO operation (1-based) to
// crash the filesystem. Zero (the default) never crashes.
func WithCrashAt(n int64) Option { return func(fs *FS) { fs.crashAt = n } }

// WithTornWrites sets the probability that the last pending write
// surviving a crash is torn to a prefix. Default 0.5.
func WithTornWrites(p float64) Option { return func(fs *FS) { fs.tornProb = p } }

// WithShortWrites sets the probability that a WriteAt persists only a
// prefix and fails with ErrShortWrite. Default 0.
func WithShortWrites(p float64) Option { return func(fs *FS) { fs.shortProb = p } }

// WithDroppedSyncs sets the probability that a Sync lies: it reports
// success without making anything durable. Default 0.
func WithDroppedSyncs(p float64) Option { return func(fs *FS) { fs.dropSyncProb = p } }

// pendingOp is one unsynced mutation.
type pendingOp struct {
	truncate bool
	size     int64  // truncate target
	off      int64  // write offset
	data     []byte // write payload (owned copy)
}

type file struct {
	durable []byte
	pending []pendingOp
}

// visible materializes the file content a reader observes: the
// durable image with every pending op applied in order.
func (f *file) visible() []byte {
	buf := append([]byte(nil), f.durable...)
	for _, op := range f.pending {
		buf = applyOp(buf, op)
	}
	return buf
}

func applyOp(buf []byte, op pendingOp) []byte {
	if op.truncate {
		if op.size <= int64(len(buf)) {
			return buf[:op.size]
		}
		return append(buf, make([]byte, op.size-int64(len(buf)))...)
	}
	end := op.off + int64(len(op.data))
	if end > int64(len(buf)) {
		buf = append(buf, make([]byte, end-int64(len(buf)))...)
	}
	copy(buf[op.off:end], op.data)
	return buf
}

// FS is the deterministic fault-injecting filesystem. It implements
// storage.VFS. Safe for concurrent use.
type FS struct {
	mu    sync.Mutex
	rnd   *rand.Rand
	seed  int64
	files map[string]*file
	dirs  map[string]bool

	ops     int64
	crashAt int64
	crashed bool
	gen     uint64 // bumped by Restart; stale handles die

	tornProb     float64
	shortProb    float64
	dropSyncProb float64
}

var _ storage.VFS = (*FS)(nil)

// New builds a filesystem whose entire fault schedule derives from
// seed.
func New(seed int64, opts ...Option) *FS {
	fs := &FS{
		rnd:      rand.New(rand.NewSource(seed)),
		seed:     seed,
		files:    make(map[string]*file),
		dirs:     map[string]bool{".": true},
		tornProb: 0.5,
	}
	for _, o := range opts {
		o(fs)
	}
	return fs
}

// Seed returns the seed, for failure messages.
func (fs *FS) Seed() int64 { return fs.seed }

// Ops returns how many mutating IO operations have run, the
// coordinate system WithCrashAt counts in.
func (fs *FS) Ops() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether the simulated machine is down.
func (fs *FS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Crash takes the machine down now, as if the process got kill -9'd:
// pending writes go through the seeded torn-write model and every
// subsequent operation fails with ErrCrashed until Restart.
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashLocked()
}

func (fs *FS) crashLocked() {
	if fs.crashed {
		return
	}
	fs.crashed = true
	// Deterministic iteration order for the PRNG draw.
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fs.files[name]
		// Unordered writeback: each pending op survives the crash
		// independently; the last survivor may be torn to a prefix.
		var kept []pendingOp
		for _, op := range f.pending {
			if fs.rnd.Intn(2) == 0 {
				kept = append(kept, op)
			}
		}
		if len(kept) > 0 && fs.rnd.Float64() < fs.tornProb {
			last := &kept[len(kept)-1]
			if !last.truncate && len(last.data) > 0 {
				last.data = last.data[:fs.rnd.Intn(len(last.data))]
			}
		}
		for _, op := range kept {
			f.durable = applyOp(f.durable, op)
		}
		f.pending = nil
	}
}

// Restart brings the machine back up: files hold exactly their
// durable images, previously open handles are dead, and the fault
// clock keeps running (a one-shot crashAt has already fired).
func (fs *FS) Restart() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.crashed {
		// Crash first so pending writes go through the loss model
		// even on a "clean" kill.
		fs.crashLocked()
	}
	fs.crashed = false
	fs.gen++
}

// step gates one mutating IO operation: it fails if crashed, counts
// the op, and fires a scheduled crash.
func (fs *FS) step() error {
	if fs.crashed {
		return ErrCrashed
	}
	fs.ops++
	if fs.crashAt > 0 && fs.ops >= fs.crashAt {
		fs.crashAt = 0
		fs.crashLocked()
		return ErrCrashed
	}
	return nil
}

// OpenFile implements storage.VFS.
func (fs *FS) OpenFile(name string) (storage.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	name = path.Clean(name)
	f, ok := fs.files[name]
	if !ok {
		f = &file{}
		fs.files[name] = f
		// Creating a file is itself metadata the directory must
		// sync; modelled as instantly durable for simplicity (the
		// stores create their files once, at bootstrap).
	}
	return &handle{fs: fs, f: f, gen: fs.gen, name: name}, nil
}

// Remove implements storage.VFS.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	delete(fs.files, path.Clean(name))
	return nil
}

// MkdirAll implements storage.VFS.
func (fs *FS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	fs.dirs[path.Clean(dir)] = true
	return nil
}

// ReadDir implements storage.VFS.
func (fs *FS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	dir = path.Clean(dir)
	seen := make(map[string]bool)
	for name := range fs.files {
		if path.Dir(name) == dir {
			seen[path.Base(name)] = true
		}
	}
	for name := range fs.dirs {
		if name != "." && name != dir && path.Dir(name) == dir {
			seen[path.Base(name)] = true
		}
	}
	// Subdirectories implied by deeper files.
	for name := range fs.files {
		d := path.Dir(name)
		for d != "." && d != "/" && d != dir {
			if path.Dir(d) == dir {
				seen[path.Base(d)] = true
			}
			d = path.Dir(d)
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// DurableBytes returns a copy of a file's durable image (test hook).
func (fs *FS) DurableBytes(name string) []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[path.Clean(name)]; ok {
		return append([]byte(nil), f.durable...)
	}
	return nil
}

// String identifies the schedule for failure messages.
func (fs *FS) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "failpoint.FS(seed=%d", fs.seed)
	if fs.crashAt > 0 {
		fmt.Fprintf(&b, ", crashAt=%d", fs.crashAt)
	}
	b.WriteString(")")
	return b.String()
}

// handle is one open file descriptor.
type handle struct {
	fs   *FS
	f    *file
	gen  uint64
	name string
}

var _ storage.File = (*handle)(nil)

// stale reports whether the handle predates the last Restart.
func (h *handle) stale() bool { return h.gen != h.fs.gen }

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed || h.stale() {
		return 0, ErrCrashed
	}
	buf := h.f.visible()
	if off >= int64(len(buf)) {
		return 0, io.EOF
	}
	n := copy(p, buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return 0, ErrCrashed
	}
	if err := h.fs.step(); err != nil {
		return 0, err
	}
	data := append([]byte(nil), p...)
	short := false
	if h.fs.shortProb > 0 && h.fs.rnd.Float64() < h.fs.shortProb && len(data) > 0 {
		data = data[:h.fs.rnd.Intn(len(data))]
		short = true
	}
	h.f.pending = append(h.f.pending, pendingOp{off: off, data: data})
	if short {
		return len(data), fmt.Errorf("failpoint: %w (seed %d)", io.ErrShortWrite, h.fs.seed)
	}
	return len(p), nil
}

func (h *handle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return ErrCrashed
	}
	if err := h.fs.step(); err != nil {
		return err
	}
	h.f.pending = append(h.f.pending, pendingOp{truncate: true, size: size})
	return nil
}

func (h *handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return ErrCrashed
	}
	if err := h.fs.step(); err != nil {
		return err
	}
	if h.fs.dropSyncProb > 0 && h.fs.rnd.Float64() < h.fs.dropSyncProb {
		return nil // the lying disk: reports durability it didn't deliver
	}
	for _, op := range h.f.pending {
		h.f.durable = applyOp(h.f.durable, op)
	}
	h.f.pending = nil
	return nil
}

func (h *handle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed || h.stale() {
		return 0, ErrCrashed
	}
	return int64(len(h.f.visible())), nil
}

func (h *handle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return nil // closing a pre-crash handle is how recovery lets go
	}
	return nil
}
