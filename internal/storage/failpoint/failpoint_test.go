package failpoint

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repose/internal/storage"
)

func write(t *testing.T, f storage.File, off int64, data string) {
	t.Helper()
	if _, err := f.WriteAt([]byte(data), off); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
}

func TestSyncedDataSurvivesCrash(t *testing.T) {
	fs := New(1)
	f, err := fs.OpenFile("a/data")
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, 0, "durable bytes")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	write(t, f, 0, "VOLATILE over") // unsynced
	fs.Crash()
	fs.Restart()
	f2, err := fs.OpenFile("a/data")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := f2.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	got := buf[:n]
	// The synced prefix must be intact wherever the unsynced
	// overwrite did not survive; bytes the lost write covered are
	// either the old ones or the new ones per the torn model — but a
	// fully synced image with NO later writes must be bit-exact:
	fs2 := New(2)
	g, _ := fs2.OpenFile("x")
	write(t, g, 0, "only synced")
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2.Crash()
	fs2.Restart()
	g2, _ := fs2.OpenFile("x")
	buf2 := make([]byte, 32)
	n2, err := g2.ReadAt(buf2, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf2[:n2]) != "only synced" {
		t.Fatalf("synced-only file corrupted by crash: %q", buf2[:n2])
	}
	if len(got) != len("durable bytes") {
		t.Fatalf("file length changed across crash: %d", len(got))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []byte {
		fs := New(12345)
		f, _ := fs.OpenFile("f")
		write(t, f, 0, "base image that is long enough to tear interestingly")
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		write(t, f, 5, "AAAAAAAAAA")
		write(t, f, 20, "BBBBBBBBBB")
		write(t, f, 35, "CCCCCCCCCC")
		fs.Crash()
		fs.Restart()
		return fs.DurableBytes("f")
	}
	first := run()
	for i := 0; i < 5; i++ {
		if !bytes.Equal(run(), first) {
			t.Fatal("same seed and op sequence produced different crash images")
		}
	}
	// A different seed should (for this schedule) tear differently.
	fs := New(54321)
	f, _ := fs.OpenFile("f")
	write(t, f, 0, "base image that is long enough to tear interestingly")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	write(t, f, 5, "AAAAAAAAAA")
	write(t, f, 20, "BBBBBBBBBB")
	write(t, f, 35, "CCCCCCCCCC")
	fs.Crash()
	fs.Restart()
	if bytes.Equal(fs.DurableBytes("f"), first) {
		t.Log("note: different seed happened to produce the same image (possible, not a failure)")
	}
}

func TestCrashAtNthIO(t *testing.T) {
	fs := New(3, WithCrashAt(3))
	f, err := fs.OpenFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("one"), 0); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("three"), 0); err == nil { // op 3: crash
		t.Fatal("op 3 should have crashed")
	} else if !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 3 error = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("fs not crashed after scheduled crash point")
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op error = %v, want ErrCrashed", err)
	}
	if _, err := fs.OpenFile("g"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open error = %v, want ErrCrashed", err)
	}
	fs.Restart()
	if fs.Crashed() {
		t.Fatal("still crashed after Restart")
	}
	// The crashed op never became visible even as pending.
	g, err := fs.OpenFile("f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := g.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf[:n]) != "one" {
		t.Fatalf("recovered content %q, want %q", buf[:n], "one")
	}
	// Stale pre-crash handles stay dead.
	if _, err := f.WriteAt([]byte("zombie"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write error = %v, want ErrCrashed", err)
	}
}

func TestOpsCounting(t *testing.T) {
	fs := New(4)
	f, _ := fs.OpenFile("f")
	if fs.Ops() != 0 {
		t.Fatalf("ops after open = %d, want 0 (opens are not IO points)", fs.Ops())
	}
	write(t, f, 0, "x") // 1
	f.Sync()            // 2
	f.Truncate(0)       // 3
	fs.Remove("f")      // 4
	if fs.Ops() != 4 {
		t.Fatalf("ops = %d, want 4", fs.Ops())
	}
}

func TestShortWrites(t *testing.T) {
	// With shortProb 1 every nonempty write is cut short and errors.
	fs := New(5, WithShortWrites(1))
	f, _ := fs.OpenFile("f")
	n, err := f.WriteAt([]byte("full payload"), 0)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write error = %v, want io.ErrShortWrite", err)
	}
	if n >= len("full payload") {
		t.Fatalf("short write persisted %d bytes, want a strict prefix", n)
	}
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(n) {
		t.Fatalf("file size %d after short write of %d bytes", size, n)
	}
}

func TestDroppedSyncLosesDataOnCrash(t *testing.T) {
	fs := New(6, WithDroppedSyncs(1), WithTornWrites(0))
	f, _ := fs.OpenFile("f")
	write(t, f, 0, "acknowledged but not really durable")
	if err := f.Sync(); err != nil {
		t.Fatalf("the lying sync should report success, got %v", err)
	}
	// Visible before the crash...
	buf := make([]byte, 64)
	if n, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	} else if n == 0 {
		t.Fatal("data invisible before crash")
	}
	// ...but the durable image may have lost it (with tornProb 0 the
	// subset model still applies; run a few crashes to see loss).
	lost := false
	for seed := int64(0); seed < 20 && !lost; seed++ {
		fs := New(seed, WithDroppedSyncs(1), WithTornWrites(0))
		f, _ := fs.OpenFile("f")
		write(t, f, 0, "gone")
		f.Sync()
		fs.Crash()
		if len(fs.DurableBytes("f")) == 0 {
			lost = true
		}
	}
	if !lost {
		t.Fatal("dropped fsyncs never lost data across 20 seeds; the fault is not firing")
	}
}

func TestReadDirListsPartitionDirs(t *testing.T) {
	fs := New(7)
	if err := fs.MkdirAll("data/p0"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("data/p1"); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.OpenFile("data/p0/pages.db")
	write(t, f, 0, "x")
	names, err := fs.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"p0", "p1"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("ReadDir = %v, want %v", names, want)
	}
}
