package storage

import (
	"fmt"
	"sync"
)

// lruK is the K in LRU-K: eviction ranks frames by their K-th most
// recent access, which resists sequential-scan pollution better than
// plain LRU (a page touched once has no K-th access and is evicted
// first, in oldest-first order).
const lruK = 2

// DefaultPoolFrames is the default buffer-pool capacity.
const DefaultPoolFrames = 64

// frame is one resident page.
type frame struct {
	id    uint64
	data  []byte // full raw page, len = pageSize
	pins  int
	dirty bool
	// hist[0] is the most recent access stamp, hist[lruK-1] the K-th
	// most recent; 0 means "no such access yet".
	hist [lruK]uint64
}

// BufferPool caches raw pages over a DiskManager with pinned frames
// and LRU-K eviction. A pinned frame (pins > 0) is never evicted; a
// dirty frame is written back before eviction. Safe for concurrent
// use.
type BufferPool struct {
	dm  *DiskManager
	cap int

	mu     sync.Mutex
	frames map[uint64]*frame
	clock  uint64 // logical access counter
}

// NewBufferPool builds a pool of at most capacity frames.
func NewBufferPool(dm *DiskManager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{dm: dm, cap: capacity, frames: make(map[uint64]*frame, capacity)}
}

// touch records an access on f.
func (bp *BufferPool) touch(f *frame) {
	bp.clock++
	copy(f.hist[1:], f.hist[:lruK-1])
	f.hist[0] = bp.clock
}

// evictLocked makes room for one more frame, writing back a dirty
// victim. Fails when every frame is pinned.
func (bp *BufferPool) evictLocked() error {
	if len(bp.frames) < bp.cap {
		return nil
	}
	var victim *frame
	for _, f := range bp.frames {
		if f.pins > 0 {
			continue
		}
		if victim == nil {
			victim = f
			continue
		}
		// Rank by K-th most recent access; a missing K-th access
		// (zero) sorts before any real stamp, ties broken by the
		// most recent access so eviction stays deterministic enough
		// to reason about.
		switch {
		case f.hist[lruK-1] < victim.hist[lruK-1]:
			victim = f
		case f.hist[lruK-1] == victim.hist[lruK-1] && f.hist[0] < victim.hist[0]:
			victim = f
		}
	}
	if victim == nil {
		return fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.cap)
	}
	if victim.dirty {
		if err := bp.dm.WriteRaw(victim.id, victim.data); err != nil {
			return err
		}
	}
	delete(bp.frames, victim.id)
	return nil
}

// Fetch pins the page in a frame, reading it from disk on a miss.
// The returned buffer is the frame's raw page; it stays valid until
// Unpin.
func (bp *BufferPool) Fetch(id uint64) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		f.pins++
		bp.touch(f)
		return f.data, nil
	}
	if err := bp.evictLocked(); err != nil {
		return nil, err
	}
	data, err := bp.dm.ReadRaw(id)
	if err != nil {
		return nil, err
	}
	f := &frame{id: id, data: data, pins: 1}
	bp.touch(f)
	bp.frames[id] = f
	return f.data, nil
}

// NewPage pins a zeroed frame for a freshly allocated page without
// touching disk (the page's on-disk bytes are undefined anyway). The
// frame starts dirty.
func (bp *BufferPool) NewPage(id uint64) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		// Reallocating a cached page id: reset its contents.
		for i := range f.data {
			f.data[i] = 0
		}
		f.pins++
		f.dirty = true
		bp.touch(f)
		return f.data, nil
	}
	if err := bp.evictLocked(); err != nil {
		return nil, err
	}
	f := &frame{id: id, data: make([]byte, bp.dm.PageSize()), pins: 1, dirty: true}
	bp.touch(f)
	bp.frames[id] = f
	return f.data, nil
}

// Unpin releases one pin on the page, marking the frame dirty when
// the caller wrote to it.
func (bp *BufferPool) Unpin(id uint64, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of non-resident page %d", id)
	}
	if f.pins <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	return nil
}

// FlushAll writes every dirty frame back to disk (no fsync — the
// caller syncs the disk manager when it needs durability).
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if !f.dirty {
			continue
		}
		if err := bp.dm.WriteRaw(f.id, f.data); err != nil {
			return err
		}
		f.dirty = false
	}
	return nil
}

// Drop discards the frames for the given pages without writing them
// back, for pages whose disk copies the caller is freeing. Dropping a
// pinned page is an error.
func (bp *BufferPool) Drop(ids ...uint64) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, id := range ids {
		if f, ok := bp.frames[id]; ok {
			if f.pins > 0 {
				return fmt.Errorf("storage: drop of pinned page %d", id)
			}
			delete(bp.frames, id)
		}
	}
	return nil
}

// Resident reports whether the page currently occupies a frame
// (test hook).
func (bp *BufferPool) Resident(id uint64) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	_, ok := bp.frames[id]
	return ok
}

// Pins returns the pin count of the page's frame, 0 when absent
// (test hook).
func (bp *BufferPool) Pins(id uint64) int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		return f.pins
	}
	return 0
}
