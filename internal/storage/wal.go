package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// WAL framing. The file is a 20-byte header followed by append-only
// records. Header: magic "RPWAL1", format version byte, one reserved
// byte, base LSN (8B), CRC over the first 16 bytes. Record: LSN (8B),
// type (1B), payload length (4B), CRC (4B, over the 13 header bytes
// plus the payload), payload.

const (
	walHeaderSize       = 20
	walRecordHeaderSize = 17

	// MaxWALRecord bounds a single record's payload, as a sanity
	// check against decoding garbage lengths from a corrupt file.
	MaxWALRecord = 1 << 28
)

var walMagic = [6]byte{'R', 'P', 'W', 'A', 'L', '1'}

// WALRecord is one decoded log record.
type WALRecord struct {
	LSN     uint64
	Type    byte
	Payload []byte
}

// encodeWALHeader serializes the file header.
func encodeWALHeader(baseLSN uint64) []byte {
	buf := make([]byte, walHeaderSize)
	copy(buf[0:6], walMagic[:])
	buf[6] = FormatVersion
	buf[7] = 0
	binary.LittleEndian.PutUint64(buf[8:16], baseLSN)
	binary.LittleEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(buf[0:16]))
	return buf
}

// decodeWALHeader parses the file header; ok=false means the header
// is torn or foreign and the log holds nothing replayable.
func decodeWALHeader(buf []byte) (baseLSN uint64, ok bool) {
	if len(buf) < walHeaderSize {
		return 0, false
	}
	if [6]byte(buf[0:6]) != walMagic || buf[6] != FormatVersion {
		return 0, false
	}
	if crc32.ChecksumIEEE(buf[0:16]) != binary.LittleEndian.Uint32(buf[16:20]) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(buf[8:16]), true
}

// appendWALRecord serializes a record onto dst.
func appendWALRecord(dst []byte, lsn uint64, typ byte, payload []byte) []byte {
	var hdr [walRecordHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], lsn)
	hdr[8] = typ
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[0:13])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[13:17], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return dst
}

// DecodeWALRecord parses one record from the front of buf, returning
// the record and how many bytes it consumed. Torn or corrupt input
// errors with ErrCorrupt; it never panics, whatever the input
// (fuzzed by FuzzWALRecordDecode). The returned payload aliases buf.
func DecodeWALRecord(buf []byte) (WALRecord, int, error) {
	var r WALRecord
	if len(buf) < walRecordHeaderSize {
		return r, 0, fmt.Errorf("%w: %d bytes is shorter than a record header", ErrCorrupt, len(buf))
	}
	r.LSN = binary.LittleEndian.Uint64(buf[0:8])
	r.Type = buf[8]
	n := binary.LittleEndian.Uint32(buf[9:13])
	if n > MaxWALRecord {
		return r, 0, fmt.Errorf("%w: record payload length %d exceeds limit %d", ErrCorrupt, n, MaxWALRecord)
	}
	end := walRecordHeaderSize + int(n)
	if end > len(buf) {
		return r, 0, fmt.Errorf("%w: record of %d bytes truncated at %d", ErrCorrupt, end, len(buf))
	}
	want := binary.LittleEndian.Uint32(buf[13:17])
	crc := crc32.ChecksumIEEE(buf[0:13])
	crc = crc32.Update(crc, crc32.IEEETable, buf[walRecordHeaderSize:end])
	if crc != want {
		return r, 0, fmt.Errorf("%w: record CRC mismatch", ErrCorrupt)
	}
	r.Payload = buf[walRecordHeaderSize:end]
	return r, end, nil
}

// WAL is the write-ahead log: sequenced records, group commit, and a
// replay iterator. Append and Sync are safe for concurrent use;
// concurrent committers coalesce onto one fsync (group commit).
type WAL struct {
	f File

	mu      sync.Mutex // serializes appends and resets
	size    int64      // current end-of-file offset
	nextLSN uint64
	base    uint64

	// Lock order: syncMu before mu. Sync holds syncMu across the
	// fsync and takes mu only in short sections inside it; Reset needs
	// both and must take syncMu first, or a concurrent Sync deadlocks
	// against it. Never acquire syncMu while holding mu.
	syncMu sync.Mutex // serializes fsyncs
	synced uint64     // highest LSN known durable (atomic under syncMu+mu)
}

// OpenWAL opens or bootstraps the log file. An empty (or torn-header)
// file is reset to baseLSN; otherwise every well-formed record is
// scanned to find the append position, and a torn tail is truncated
// away so future appends never interleave with garbage.
func OpenWAL(f File, baseLSN uint64) (*WAL, error) {
	w := &WAL{f: f}
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, walHeaderSize)
	valid := false
	var base uint64
	if size >= walHeaderSize {
		if _, err := f.ReadAt(hdr, 0); err == nil {
			base, valid = decodeWALHeader(hdr)
		}
	}
	if !valid || base != baseLSN {
		// Fresh file, torn header, or a log the meta slot has already
		// obsoleted (crash between meta commit and WAL reset): start
		// over at the base the caller's durable meta dictates.
		if err := w.reset(baseLSN); err != nil {
			return nil, err
		}
		return w, nil
	}
	w.base = base
	w.nextLSN = base
	w.size = walHeaderSize
	// Scan to the first torn/corrupt record to find the append point.
	body := make([]byte, size-walHeaderSize)
	if _, err := io.ReadFull(io.NewSectionReader(f, walHeaderSize, size-walHeaderSize), body); err != nil {
		return nil, err
	}
	for len(body) > 0 {
		rec, n, err := DecodeWALRecord(body)
		if err != nil || rec.LSN != w.nextLSN {
			break
		}
		w.nextLSN++
		w.size += int64(n)
		body = body[n:]
	}
	if w.size < size {
		if err := f.Truncate(w.size); err != nil {
			return nil, err
		}
	}
	w.synced = w.nextLSN - 1
	if w.nextLSN == base {
		w.synced = 0
	}
	return w, nil
}

// reset truncates the log and writes a fresh header at baseLSN.
// Callers must hold no locks (OpenWAL) or both syncMu and mu (Reset).
func (w *WAL) reset(baseLSN uint64) error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.WriteAt(encodeWALHeader(baseLSN), 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.base = baseLSN
	w.nextLSN = baseLSN
	w.size = walHeaderSize
	w.synced = 0
	return nil
}

// Reset truncates the log to empty with a new base LSN, after a
// checkpoint has made its records obsolete. Safe against concurrent
// Append/Sync: an in-flight group commit either completes before the
// truncation or fsyncs the fresh header afterwards — its records are
// obsolete either way, so acknowledging them stays correct.
func (w *WAL) Reset(baseLSN uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reset(baseLSN)
}

// Base returns the log's base LSN.
func (w *WAL) Base() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base
}

// NextLSN returns the LSN the next append will get.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Append writes one record at the log's tail and returns its LSN. The
// record is NOT durable until a Sync covering the LSN returns.
func (w *WAL) Append(typ byte, payload []byte) (uint64, error) {
	if len(payload) > MaxWALRecord {
		return 0, fmt.Errorf("storage: WAL record payload of %d bytes exceeds limit %d", len(payload), MaxWALRecord)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	lsn := w.nextLSN
	buf := appendWALRecord(nil, lsn, typ, payload)
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		return 0, err
	}
	w.nextLSN++
	w.size += int64(len(buf))
	return lsn, nil
}

// Sync makes every record up to and including lsn durable. Concurrent
// callers share fsyncs: whichever caller enters first syncs the whole
// appended tail, and the rest observe their LSN already covered and
// return without touching the disk — group commit.
func (w *WAL) Sync(lsn uint64) error {
	w.mu.Lock()
	covered := w.synced >= lsn
	high := w.nextLSN - 1
	w.mu.Unlock()
	if covered {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	covered = w.synced >= lsn
	high = w.nextLSN - 1
	w.mu.Unlock()
	if covered {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.mu.Lock()
	if high > w.synced {
		w.synced = high
	}
	w.mu.Unlock()
	return nil
}

// Replay calls fn for every well-formed record in LSN order, reading
// the log from disk. It stops silently at the first torn or corrupt
// record (end-of-log under the crash model); a non-nil error from fn
// aborts and propagates.
func (w *WAL) Replay(fn func(WALRecord) error) error {
	w.mu.Lock()
	size := w.size
	base := w.base
	w.mu.Unlock()
	if size <= walHeaderSize {
		return nil
	}
	body := make([]byte, size-walHeaderSize)
	if _, err := io.ReadFull(io.NewSectionReader(w.f, walHeaderSize, size-walHeaderSize), body); err != nil {
		return err
	}
	want := base
	for len(body) > 0 {
		rec, n, err := DecodeWALRecord(body)
		if err != nil || rec.LSN != want {
			return nil
		}
		if err := fn(rec); err != nil {
			return err
		}
		want++
		body = body[n:]
	}
	return nil
}

// Close closes the log file.
func (w *WAL) Close() error { return w.f.Close() }
