package storage

import (
	"io"
	"os"
	"path/filepath"
)

// VFS is the filesystem surface the storage layer runs on. The
// production implementation is OSFS; the failpoint package provides a
// deterministic in-memory implementation that injects torn writes,
// short writes, dropped fsyncs, and crash-at-Nth-IO cut points.
type VFS interface {
	// OpenFile opens (creating if absent) the named file for random
	// read/write access.
	OpenFile(name string) (File, error)
	// Remove deletes the named file; removing a missing file is not
	// an error.
	Remove(name string) error
	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists the names of the entries in dir, sorted.
	ReadDir(dir string) ([]string, error)
}

// File is one random-access file. Implementations must allow ReadAt,
// WriteAt, and Sync to be called concurrently with each other: the
// WAL overlaps appends with group-commit fsyncs, and replay reads can
// overlap both. Truncate and Close are only called with all other
// operations quiesced, so they need no internal synchronization
// beyond that. OSFS inherits this from *os.File; the failpoint
// implementation serializes everything under one lock.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Size returns the current file length.
	Size() (int64, error)
	// Truncate changes the file length.
	Truncate(size int64) error
	// Sync makes every prior write durable.
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// OpenFile implements VFS.
func (OSFS) OpenFile(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements VFS.
func (OSFS) Remove(name string) error {
	err := os.Remove(name)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// MkdirAll implements VFS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements VFS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, filepath.Base(e.Name()))
	}
	return names, nil
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
