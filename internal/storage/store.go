package storage

import (
	"fmt"
	"hash/crc32"
	"path"
	"sync"
)

// File names inside a Store's directory.
const (
	PagesFileName = "pages.db"
	WALFileName   = "wal.log"
)

// Options configures a Store.
type Options struct {
	// VFS is the filesystem to run on; nil means the real one (OSFS).
	VFS VFS
	// PageSize is the page size for a freshly created store; an
	// existing store keeps the size it was created with. Zero means
	// DefaultPageSize.
	PageSize int
	// PoolFrames caps the buffer pool; zero means DefaultPoolFrames.
	PoolFrames int
}

// Store is one partition's durable backing: a checkpoint image in the
// page file plus a WAL of the mutations applied since. Checkpoint and
// Close must not race Append/Sync (the owning index's writer lock
// already serializes them); Replay is only legal before the first
// mutation.
type Store struct {
	dir string
	vfs VFS

	mu sync.Mutex // serializes Checkpoint/Close against each other
	dm *DiskManager
	bp *BufferPool
	w  *WAL

	chain []uint64 // pages of the live checkpoint chain, in order
}

// Open opens or creates the store rooted at dir, recovering whatever
// prior state the crash discipline preserved. After Open, the caller
// loads the checkpoint (if HasCheckpoint), replays the WAL, and only
// then starts appending.
func Open(dir string, opts Options) (*Store, error) {
	vfs := opts.VFS
	if vfs == nil {
		vfs = OSFS{}
	}
	pageSize := opts.PageSize
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	frames := opts.PoolFrames
	if frames == 0 {
		frames = DefaultPoolFrames
	}
	if err := vfs.MkdirAll(dir); err != nil {
		return nil, err
	}
	pf, err := vfs.OpenFile(path.Join(dir, PagesFileName))
	if err != nil {
		return nil, err
	}
	dm, err := OpenDiskManager(pf, pageSize)
	if err != nil {
		pf.Close()
		return nil, err
	}
	head, _, _, _, walBase := dm.Meta()
	wf, err := vfs.OpenFile(path.Join(dir, WALFileName))
	if err != nil {
		dm.Close()
		return nil, err
	}
	w, err := OpenWAL(wf, walBase)
	if err != nil {
		dm.Close()
		wf.Close()
		return nil, err
	}
	s := &Store{dir: dir, vfs: vfs, dm: dm, bp: NewBufferPool(dm, frames), w: w}
	if head != 0 {
		chain, err := dm.chainPages(head)
		if err != nil {
			s.closeFiles()
			return nil, err
		}
		s.chain = chain
	}
	return s, nil
}

// Destroy removes the store's files from dir. The store must not be
// open.
func Destroy(dir string, vfs VFS) error {
	if vfs == nil {
		vfs = OSFS{}
	}
	if err := vfs.Remove(path.Join(dir, PagesFileName)); err != nil {
		return err
	}
	return vfs.Remove(path.Join(dir, WALFileName))
}

// HasCheckpoint reports whether a checkpoint image exists.
func (s *Store) HasCheckpoint() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	head, _, _, _, _ := s.dm.Meta()
	return head != 0
}

// CheckpointGen returns the generation the live checkpoint carries
// (zero when none exists).
func (s *Store) CheckpointGen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _, gen, _, _ := s.dm.Meta()
	return gen
}

// Pool returns the store's buffer pool (test hook).
func (s *Store) Pool() *BufferPool { return s.bp }

// LoadCheckpoint reassembles the live checkpoint image by walking its
// page chain through the buffer pool, verifying the whole-image CRC.
func (s *Store) LoadCheckpoint() ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	head, total, gen, wantCRC, _ := s.dm.Meta()
	if head == 0 {
		return nil, 0, fmt.Errorf("storage: no checkpoint in %s", s.dir)
	}
	image := make([]byte, 0, total)
	for id := head; id != 0; {
		buf, err := s.bp.Fetch(id)
		if err != nil {
			return nil, 0, err
		}
		h, payload, err := DecodePageHeader(buf)
		if err != nil {
			s.bp.Unpin(id, false)
			return nil, 0, err
		}
		image = append(image, payload...)
		if err := s.bp.Unpin(id, false); err != nil {
			return nil, 0, err
		}
		if uint64(len(image)) > total {
			return nil, 0, fmt.Errorf("%w: checkpoint chain longer than its meta length %d", ErrCorrupt, total)
		}
		id = h.Next
	}
	if uint64(len(image)) != total {
		return nil, 0, fmt.Errorf("%w: checkpoint image is %d bytes, meta says %d", ErrCorrupt, len(image), total)
	}
	if crc32.ChecksumIEEE(image) != wantCRC {
		return nil, 0, fmt.Errorf("%w: checkpoint image CRC mismatch", ErrCorrupt)
	}
	return image, gen, nil
}

// Checkpoint durably installs image as the new checkpoint at gen and
// resets the WAL. The copy-on-write protocol: chunk the image onto
// free pages (never touching the live chain), flush and fsync them,
// commit the meta slot pointing at the new chain (with the WAL base
// advanced past every record the checkpoint obsoletes), and only then
// free the old chain and truncate the WAL. A crash at any point
// leaves one meta slot whose chain is intact.
func (s *Store) Checkpoint(image []byte, gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	chunk := s.dm.PayloadSize()
	var ids []uint64
	for off := 0; ; off += chunk {
		ids = append(ids, s.dm.Alloc())
		if off+chunk >= len(image) {
			break
		}
	}
	// Until CommitMeta lands, the new chain is garbage on failure:
	// drop whatever frames it occupies (so half-encoded dirty pages
	// never get flushed later) and return its ids to the freelist.
	// Drop is best-effort — it only refuses pinned frames, which the
	// error paths below have already unpinned.
	fail := func(err error) error {
		s.bp.Drop(ids...)
		s.dm.Free(ids...)
		return err
	}
	// Write the chain through the pool, back to front so each page
	// knows its successor.
	for i := len(ids) - 1; i >= 0; i-- {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(image) {
			hi = len(image)
		}
		var next uint64
		if i+1 < len(ids) {
			next = ids[i+1]
		}
		buf, err := s.bp.NewPage(ids[i])
		if err != nil {
			return fail(err)
		}
		if err := EncodePage(buf, PageCheckpoint, next, image[lo:hi]); err != nil {
			s.bp.Unpin(ids[i], false)
			return fail(err)
		}
		if err := s.bp.Unpin(ids[i], true); err != nil {
			return fail(err)
		}
	}
	if err := s.bp.FlushAll(); err != nil {
		return fail(err)
	}
	if err := s.dm.Sync(); err != nil {
		return fail(err)
	}
	newBase := s.w.NextLSN()
	if err := s.dm.CommitMeta(ids[0], uint64(len(image)), gen, crc32.ChecksumIEEE(image), newBase); err != nil {
		return fail(err)
	}
	// The new meta is durable: the old chain is garbage and the WAL's
	// records are obsolete. Neither cleanup affects recoverability.
	old := s.chain
	s.chain = ids
	if err := s.bp.Drop(old...); err != nil {
		return err
	}
	s.dm.Free(old...)
	return s.w.Reset(newBase)
}

// Append writes one WAL record, returning its LSN. Not durable until
// Sync covers the LSN.
func (s *Store) Append(typ byte, payload []byte) (uint64, error) {
	return s.w.Append(typ, payload)
}

// Sync makes every record up to lsn durable (group commit).
func (s *Store) Sync(lsn uint64) error { return s.w.Sync(lsn) }

// NextLSN returns the LSN the next Append will get.
func (s *Store) NextLSN() uint64 { return s.w.NextLSN() }

// Replay iterates the WAL's well-formed records in LSN order.
func (s *Store) Replay(fn func(WALRecord) error) error { return s.w.Replay(fn) }

// closeFiles closes both files, keeping the first error.
func (s *Store) closeFiles() error {
	err := s.dm.Close()
	if werr := s.w.Close(); err == nil {
		err = werr
	}
	return err
}

// Close flushes the buffer pool and closes the store's files. It does
// NOT fsync: durability comes from the WAL, and a close without a
// prior Checkpoint simply means the next Open replays the log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bp.FlushAll(); err != nil {
		s.closeFiles()
		return err
	}
	return s.closeFiles()
}
