package ls

import (
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/oracle"
)

func randomDataset(rng *rand.Rand, n int) []*geo.Trajectory {
	ds := make([]*geo.Trajectory, n)
	for i := range ds {
		pts := make([]geo.Point, 1+rng.Intn(10))
		for j := range pts {
			pts[j] = geo.Point{X: rng.Float64() * 8, Y: rng.Float64() * 8}
		}
		ds[i] = &geo.Trajectory{ID: i, Points: pts}
	}
	return ds
}

func TestScanAllMeasures(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randomDataset(rng, 60)
	q := randomDataset(rng, 1)[0]
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	for _, m := range dist.Measures() {
		x := Build(m, p, ds)
		got := x.Search(q.Points, 7)
		w := oracle.TopK(m, p, ds, q.Points, 7)
		if len(got) != len(w) {
			t.Fatalf("%v: len %d want %d", m, len(got), len(w))
		}
		for i := range got {
			if got[i].Dist != w[i].Dist {
				t.Fatalf("%v: rank %d dist %v want %v", m, i, got[i].Dist, w[i].Dist)
			}
		}
	}
}

func TestEdgeCases(t *testing.T) {
	x := Build(dist.Hausdorff, dist.Params{}, nil)
	if got := x.Search([]geo.Point{{X: 1, Y: 1}}, 3); got != nil {
		t.Errorf("empty partition = %v", got)
	}
	if x.Len() != 0 || x.SizeBytes() != 0 {
		t.Error("empty index stats wrong")
	}
	ds := randomDataset(rand.New(rand.NewSource(2)), 3)
	x = Build(dist.Frechet, dist.Params{}, ds)
	if got := x.Search(nil, 3); got != nil {
		t.Errorf("empty query = %v", got)
	}
	if got := x.Search([]geo.Point{{X: 1, Y: 1}}, 0); got != nil {
		t.Errorf("k=0 = %v", got)
	}
	if got := x.Search([]geo.Point{{X: 1, Y: 1}}, 10); len(got) != 3 {
		t.Errorf("k>N returned %d", len(got))
	}
}
