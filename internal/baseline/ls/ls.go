// Package ls implements the brute-force linear-scan baseline (LS in
// the paper's experiments): the distance between the query and every
// trajectory in the partition is computed and the best k retained.
package ls

import (
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/topk"
)

// Index is a partition of trajectories scanned exhaustively.
type Index struct {
	measure dist.Measure
	params  dist.Params
	trajs   []*geo.Trajectory
}

// Build retains the partition's trajectories. Every measure is
// supported.
func Build(m dist.Measure, p dist.Params, part []*geo.Trajectory) *Index {
	return &Index{measure: m, params: p, trajs: part}
}

// Search scans the partition, cutting off each distance computation
// at the running top-k threshold where the measure supports early
// abandoning.
func (x *Index) Search(q []geo.Point, k int) []topk.Item {
	if k <= 0 || len(q) == 0 || len(x.trajs) == 0 {
		return nil
	}
	h := topk.New(k)
	for _, tr := range x.trajs {
		h.Push(tr.ID, dist.DistanceBounded(x.measure, q, tr.Points, x.params, h.Threshold()))
	}
	return h.Results()
}

// Len returns the number of trajectories in the partition.
func (x *Index) Len() int { return len(x.trajs) }

// SizeBytes is 0: LS keeps no index structure beyond the data.
func (x *Index) SizeBytes() int { return 0 }
