package dft

import (
	"math"
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/oracle"
)

func randomDataset(rng *rand.Rand, n int) []*geo.Trajectory {
	ds := make([]*geo.Trajectory, n)
	for i := range ds {
		cx := float64(rng.Intn(4)) * 2
		pts := make([]geo.Point, 1+rng.Intn(10))
		for j := range pts {
			pts[j] = geo.Point{X: cx + rng.Float64(), Y: rng.Float64() * 8}
		}
		ds[i] = &geo.Trajectory{ID: i, Points: pts}
	}
	return ds
}

func TestSupported(t *testing.T) {
	want := map[dist.Measure]bool{dist.Hausdorff: true, dist.Frechet: true, dist.DTW: true}
	for _, m := range dist.Measures() {
		if Supported(m) != want[m] {
			t.Errorf("Supported(%v) = %v", m, Supported(m))
		}
	}
	if _, err := Build(Config{Measure: dist.LCSS}, nil); err == nil {
		t.Error("LCSS build should fail")
	}
	if _, err := Build(Config{Measure: dist.ERP}, nil); err == nil {
		t.Error("ERP build should fail")
	}
}

// TestSearchMatchesBruteForce: DFT must return a correct top-k (same
// distance profile as brute force) for all supported measures.
func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := dist.Params{}
	for trial := 0; trial < 10; trial++ {
		ds := randomDataset(rng, 120)
		q := randomDataset(rng, 1)[0]
		for _, m := range []dist.Measure{dist.Hausdorff, dist.Frechet, dist.DTW} {
			x, err := Build(Config{Measure: m, Params: p, C: 5, Seed: int64(trial)}, ds)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 5, 12} {
				got := x.Search(q.Points, k)
				want := oracle.TopK(m, p, ds, q.Points, k)
				if len(got) != len(want) {
					t.Fatalf("%v k=%d: len %d want %d", m, k, len(got), len(want))
				}
				for i := range got {
					if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("%v k=%d trial %d rank %d: dist %v want %v",
							m, k, trial, i, got[i].Dist, want[i].Dist)
					}
				}
			}
		}
	}
}

func TestSmallPartitionDegeneratesToScan(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := randomDataset(rng, 8)
	q := randomDataset(rng, 1)[0]
	x, err := Build(Config{Measure: dist.Hausdorff, C: 5}, ds)
	if err != nil {
		t.Fatal(err)
	}
	got := x.Search(q.Points, 3) // C*k = 15 > 8 → scan
	want := oracle.TopK(dist.Hausdorff, dist.Params{}, ds, q.Points, 3)
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	x, err := Build(Config{Measure: dist.Frechet}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Search([]geo.Point{{X: 1, Y: 1}}, 3); got != nil {
		t.Errorf("empty partition = %v", got)
	}
	ds := randomDataset(rand.New(rand.NewSource(7)), 5)
	x, _ = Build(Config{Measure: dist.Frechet}, ds)
	if got := x.Search(nil, 3); got != nil {
		t.Errorf("empty query = %v", got)
	}
	if got := x.Search([]geo.Point{{X: 1, Y: 1}}, 0); got != nil {
		t.Errorf("k=0 = %v", got)
	}
	// Single-point trajectories index as degenerate segments.
	single := []*geo.Trajectory{{ID: 0, Points: []geo.Point{{X: 1, Y: 1}}}}
	x, _ = Build(Config{Measure: dist.Hausdorff}, single)
	if got := x.Search([]geo.Point{{X: 1, Y: 1}}, 1); len(got) != 1 || got[0].Dist != 0 {
		t.Errorf("single point = %v", got)
	}
}

// TestDualIndexSpaceOverhead: DFT's index must be substantially
// larger than zero and dominated by segment duplication — the Table
// IV observation that motivates REPOSE's smaller footprint.
func TestDualIndexSpaceOverhead(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := randomDataset(rng, 200)
	x, _ := Build(Config{Measure: dist.Hausdorff}, ds)
	if x.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
	nsegs := 0
	for _, tr := range ds {
		nsegs += len(tr.Points) - 1
		if len(tr.Points) == 1 {
			nsegs++
		}
	}
	if x.SizeBytes() < nsegs*36 {
		t.Errorf("size %d smaller than raw segment storage %d", x.SizeBytes(), nsegs*36)
	}
	if x.Len() != 200 {
		t.Errorf("Len = %d", x.Len())
	}
}
