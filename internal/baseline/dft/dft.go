// Package dft reimplements the DFT baseline (Xie, Li, Phillips:
// "Distributed Trajectory Similarity Search", PVLDB'17) from its
// published algorithm, at the fidelity the REPOSE paper compares
// against (the DFT-RB+DI variant: R-tree over segments plus a dual
// index).
//
// Within a partition, DFT decomposes trajectories into line segments,
// bulk-loads an R-tree over the segment MBRs, and keeps a dual index
// from trajectory id back to its segments (this duplication is why
// DFT's index is roughly 4× larger than REPOSE's — Table IV). A top-k
// query samples C·k random trajectories to estimate a pruning
// threshold (the k-th smallest sampled distance — an upper bound on
// the true dk, but often a loose one, which is why DFT's query time
// is unstable in Fig. 6), generates candidates through the R-tree,
// lower-bounds each candidate with point-to-segment distances, and
// refines the survivors.
package dft

import (
	"fmt"
	"math"
	"math/rand"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/rtree"
	"repose/internal/topk"
)

// Config carries DFT's knobs.
type Config struct {
	Measure dist.Measure // Hausdorff, Frechet, or DTW
	Params  dist.Params
	C       int // threshold sampling factor (paper: 5)
	Fanout  int // R-tree fanout
	Seed    int64
}

// Supported reports whether DFT handles the measure; it does not
// support LCSS, EDR, or ERP (Section I of the REPOSE paper).
func Supported(m dist.Measure) bool {
	switch m {
	case dist.Hausdorff, dist.Frechet, dist.DTW:
		return true
	}
	return false
}

// segEntry is one indexed segment and its owning trajectory.
type segEntry struct {
	seg geo.Segment
	tid int32
}

// Index is one partition's DFT index.
type Index struct {
	cfg   Config
	trajs []*geo.Trajectory
	byID  map[int32]*geo.Trajectory
	segs  []segEntry
	tree  *rtree.Tree
	dual  map[int32][]int32 // tid → indices into segs (the dual index)
	rng   *rand.Rand
}

// Build constructs the per-partition index.
func Build(cfg Config, part []*geo.Trajectory) (*Index, error) {
	if !Supported(cfg.Measure) {
		return nil, fmt.Errorf("dft: measure %v not supported", cfg.Measure)
	}
	if cfg.C <= 0 {
		cfg.C = 5
	}
	x := &Index{
		cfg:   cfg,
		trajs: part,
		byID:  make(map[int32]*geo.Trajectory, len(part)),
		dual:  make(map[int32][]int32, len(part)),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	var items []rtree.Item
	for _, tr := range part {
		tid := int32(tr.ID)
		x.byID[tid] = tr
		segs := tr.Segments()
		if len(segs) == 0 && len(tr.Points) > 0 {
			// Single-point trajectory: a degenerate segment.
			segs = []geo.Segment{{A: tr.Points[0], B: tr.Points[0]}}
		}
		for _, s := range segs {
			idx := int32(len(x.segs))
			x.segs = append(x.segs, segEntry{seg: s, tid: tid})
			x.dual[tid] = append(x.dual[tid], idx)
			items = append(items, rtree.Item{Rect: s.Bounds(), ID: idx})
		}
	}
	x.tree = rtree.BulkLoad(items, cfg.Fanout)
	return x, nil
}

// Search answers a local top-k query.
func (x *Index) Search(q []geo.Point, k int) []topk.Item {
	if k <= 0 || len(q) == 0 || len(x.trajs) == 0 {
		return nil
	}
	h := topk.New(k)

	// Step 1: random-sample threshold (DFT samples C·k trajectories
	// and uses the k-th smallest distance).
	sampleN := x.cfg.C * k
	if sampleN >= len(x.trajs) {
		// Degenerates to a scan.
		for _, tr := range x.trajs {
			h.Push(tr.ID, x.exact(q, tr, h.Threshold()))
		}
		return h.Results()
	}
	sampled := make(map[int32]bool, sampleN)
	for _, i := range x.rng.Perm(len(x.trajs))[:sampleN] {
		tr := x.trajs[i]
		sampled[int32(tr.ID)] = true
		h.Push(tr.ID, x.exact(q, tr, h.Threshold()))
	}
	dk := h.Threshold()
	if math.IsInf(dk, 1) {
		// Fewer than k distinct sampled results; fall back to scan.
		for _, tr := range x.trajs {
			if !sampled[int32(tr.ID)] {
				h.Push(tr.ID, x.exact(q, tr, h.Threshold()))
			}
		}
		return h.Results()
	}

	// Step 2: candidate generation. Any trajectory within dk of the
	// query must have a segment within dk of the first query point
	// (all three supported measures upper-bound that point's nearest
	// segment distance).
	cands := make(map[int32]bool)
	x.tree.SearchWithin(q[0], dk, func(it rtree.Item) bool {
		cands[x.segs[it.ID].tid] = true
		return true
	})

	// Step 3: lower-bound with the dual index, refine survivors.
	for tid := range cands {
		if sampled[tid] {
			continue
		}
		thr := h.Threshold()
		if x.lowerBound(q, tid, thr) > thr {
			continue
		}
		h.Push(int(tid), x.exact(q, x.byID[tid], h.Threshold()))
	}
	return h.Results()
}

// lowerBound computes max_i min_{seg ∈ T} d(q_i, seg) via the dual
// index — the segment-based lower bound all three measures share. It
// abandons once the bound exceeds thr.
func (x *Index) lowerBound(q []geo.Point, tid int32, thr float64) float64 {
	segIdx := x.dual[tid]
	lb := 0.0
	for _, qp := range q {
		best := math.Inf(1)
		for _, si := range segIdx {
			if d := x.segs[si].seg.DistPoint(qp); d < best {
				best = d
				if best == 0 {
					break
				}
			}
		}
		if best > lb {
			lb = best
			if lb > thr {
				return lb
			}
		}
	}
	return lb
}

func (x *Index) exact(q []geo.Point, tr *geo.Trajectory, bound float64) float64 {
	return dist.DistanceBounded(x.cfg.Measure, q, tr.Points, x.cfg.Params, bound)
}

// Len returns the number of trajectories in the partition.
func (x *Index) Len() int { return len(x.trajs) }

// SizeBytes reports the index footprint: R-tree, segment copies, and
// the dual index (but not the raw trajectories).
func (x *Index) SizeBytes() int {
	sz := x.tree.SizeBytes()
	sz += len(x.segs) * (32 + 4) // segment copy + tid
	for _, v := range x.dual {
		sz += 16 + len(v)*4
	}
	return sz
}
