// Package dita reimplements the DITA baseline (Shang, Li, Bao:
// "DITA: Distributed In-Memory Trajectory Analytics", SIGMOD'18) from
// its published algorithm, at the fidelity the REPOSE paper compares
// against.
//
// DITA represents each trajectory by a pivot-point sequence — first
// point, last point, then the points with the largest neighbor
// distance (the "neighbor distance strategy") — and indexes the
// sequences in a trie whose nodes group spatially close pivot points
// under an MBR. Range queries descend the trie pruning nodes whose
// MBR is provably farther than the threshold. Top-k queries estimate
// a threshold and halve it until fewer than C·k candidates remain
// (which is why DITA's query time grows with k — Fig. 6), then refine.
package dita

import (
	"fmt"
	"math"
	"sort"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/partition"
	"repose/internal/topk"
)

// Config carries DITA's knobs.
type Config struct {
	Measure   dist.Measure // Frechet, DTW, LCSS, or EDR
	Params    dist.Params
	NL        int // max children per trie node (paper: 32)
	PivotSize int // pivot points per trajectory beyond first/last (paper: 4)
	C         int // candidate factor for threshold halving
}

// Supported reports whether DITA handles the measure; it does not
// support Hausdorff or ERP (Section I of the REPOSE paper).
func Supported(m dist.Measure) bool {
	switch m {
	case dist.Frechet, dist.DTW, dist.LCSS, dist.EDR:
		return true
	}
	return false
}

// prunable reports whether the trie MBR pruning is sound for the
// measure: Frechet and DTW bound every aligned pair's distance by the
// total, so a data pivot farther than τ from every query point rules
// the trajectory out. LCSS and EDR can delete points, so candidates
// degenerate to the whole partition (DITA's inefficiency "for some
// distance metrics" noted in Section VIII).
func prunable(m dist.Measure) bool {
	return m == dist.Frechet || m == dist.DTW
}

// tnode is a trie node: level l clusters the l-th pivot point of the
// trajectories below it.
type tnode struct {
	mbr      geo.Rect
	children []*tnode
	tids     []int32 // trajectories whose pivot sequence ends here
	level    int
}

// Index is one partition's DITA index.
type Index struct {
	cfg   Config
	trajs []*geo.Trajectory
	byID  map[int32]*geo.Trajectory
	root  *tnode
	nodes int
	diam  float64 // partition MBR diagonal: initial threshold
}

// Build constructs the per-partition index.
func Build(cfg Config, part []*geo.Trajectory) (*Index, error) {
	if !Supported(cfg.Measure) {
		return nil, fmt.Errorf("dita: measure %v not supported", cfg.Measure)
	}
	if cfg.NL <= 1 {
		cfg.NL = 32
	}
	if cfg.PivotSize < 0 {
		cfg.PivotSize = 4
	}
	if cfg.C <= 0 {
		cfg.C = 5
	}
	x := &Index{
		cfg:   cfg,
		trajs: part,
		byID:  make(map[int32]*geo.Trajectory, len(part)),
		root:  &tnode{mbr: geo.EmptyRect()},
	}
	type seqEntry struct {
		tid int32
		seq []geo.Point
	}
	entries := make([]seqEntry, 0, len(part))
	bounds := geo.EmptyRect()
	for _, tr := range part {
		x.byID[int32(tr.ID)] = tr
		entries = append(entries, seqEntry{tid: int32(tr.ID), seq: pivotSequence(tr, cfg.PivotSize)})
		for _, p := range tr.Points {
			bounds = bounds.ExtendPoint(p)
		}
	}
	if !bounds.IsEmpty() {
		x.diam = bounds.Min.Dist(bounds.Max)
	}
	if x.diam == 0 {
		x.diam = 1
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].tid < entries[j].tid })
	tids := make([]int32, len(entries))
	seqs := make([][]geo.Point, len(entries))
	for i, e := range entries {
		tids[i] = e.tid
		seqs[i] = e.seq
	}
	x.buildNode(x.root, tids, seqs, 0)
	return x, nil
}

// pivotSequence returns [first, last, top-m neighbor-distance points]
// for the trajectory. The neighbor distance of an interior point is
// its distance to the segment joining its neighbors — a curvature
// proxy; the selected pivots keep their trajectory order.
func pivotSequence(tr *geo.Trajectory, m int) []geo.Point {
	pts := tr.Points
	n := len(pts)
	if n == 1 {
		return []geo.Point{pts[0], pts[0]}
	}
	seq := []geo.Point{pts[0], pts[n-1]}
	if m <= 0 || n <= 2 {
		return seq
	}
	type cand struct {
		idx int
		nd  float64
	}
	cands := make([]cand, 0, n-2)
	for i := 1; i < n-1; i++ {
		nd := geo.Segment{A: pts[i-1], B: pts[i+1]}.DistPoint(pts[i])
		cands = append(cands, cand{idx: i, nd: nd})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].nd != cands[b].nd {
			return cands[a].nd > cands[b].nd
		}
		return cands[a].idx < cands[b].idx
	})
	if m > len(cands) {
		m = len(cands)
	}
	top := cands[:m]
	sort.Slice(top, func(a, b int) bool { return top[a].idx < top[b].idx })
	for _, c := range top {
		seq = append(seq, pts[c.idx])
	}
	return seq
}

// buildNode clusters the level-th pivot point of each entry into at
// most NL groups (STR on the points) and recurses.
func (x *Index) buildNode(n *tnode, tids []int32, seqs [][]geo.Point, level int) {
	n.level = level
	// Entries whose sequence ends here terminate at this node.
	var contTids []int32
	var contSeqs [][]geo.Point
	pts := make([]geo.Point, 0, len(tids))
	for i, s := range seqs {
		if level >= len(s) {
			n.tids = append(n.tids, tids[i])
			continue
		}
		contTids = append(contTids, tids[i])
		contSeqs = append(contSeqs, s)
		pts = append(pts, s[level])
	}
	if len(contTids) == 0 {
		return
	}
	if len(contTids) <= x.cfg.NL {
		// Small enough: one child per entry would be wasteful; stop
		// splitting and store the rest here as a leaf bucket.
		n.tids = append(n.tids, contTids...)
		n.mbr = extendAll(n.mbr, pts)
		return
	}
	assign := partition.STRAssign(pts, x.cfg.NL)
	groupsT := make([][]int32, x.cfg.NL)
	groupsS := make([][][]geo.Point, x.cfg.NL)
	groupsP := make([][]geo.Point, x.cfg.NL)
	for i, g := range assign {
		groupsT[g] = append(groupsT[g], contTids[i])
		groupsS[g] = append(groupsS[g], contSeqs[i])
		groupsP[g] = append(groupsP[g], pts[i])
	}
	for g := range groupsT {
		if len(groupsT[g]) == 0 {
			continue
		}
		child := &tnode{mbr: extendAll(geo.EmptyRect(), groupsP[g])}
		n.children = append(n.children, child)
		x.nodes++
		x.buildNode(child, groupsT[g], groupsS[g], level+1)
	}
}

func extendAll(r geo.Rect, pts []geo.Point) geo.Rect {
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// candidates runs the range query of DITA: all trajectories not
// provably farther than tau. Level 0 nodes cluster data first points
// (pruned against the query's first point), level 1 last points
// (against the query's last point), deeper levels arbitrary pivots
// (against all query points).
func (x *Index) candidates(q []geo.Point, tau float64) []int32 {
	if !prunable(x.cfg.Measure) {
		out := make([]int32, 0, len(x.trajs))
		for _, tr := range x.trajs {
			out = append(out, int32(tr.ID))
		}
		return out
	}
	var out []int32
	var walk func(n *tnode)
	walk = func(n *tnode) {
		out = append(out, n.tids...)
		for _, c := range n.children {
			if x.pruneNode(c, q, tau) {
				continue
			}
			walk(c)
		}
	}
	walk(x.root)
	return out
}

// pruneNode reports whether every trajectory under c is provably
// farther than tau from q.
func (x *Index) pruneNode(c *tnode, q []geo.Point, tau float64) bool {
	if c.mbr.IsEmpty() {
		return false
	}
	switch c.level {
	case 0:
		return c.mbr.DistPoint(q[0]) > tau
	case 1:
		return c.mbr.DistPoint(q[len(q)-1]) > tau
	default:
		best := math.Inf(1)
		for _, qp := range q {
			if d := c.mbr.DistPoint(qp); d < best {
				best = d
			}
		}
		return best > tau
	}
}

// Search answers a local top-k query with DITA's threshold-halving
// procedure.
func (x *Index) Search(q []geo.Point, k int) []topk.Item {
	if k <= 0 || len(q) == 0 || len(x.trajs) == 0 {
		return nil
	}
	target := x.cfg.C * k
	if target < k {
		target = k
	}
	tau := x.diam
	cands := x.candidates(q, tau)
	if prunable(x.cfg.Measure) {
		// Halve while the halved candidate set is still large
		// enough. Trajectories whose node MBR contains a query point
		// survive any radius, so cap the halvings to avoid spinning
		// when ≥ C·k such trajectories exist.
		for i := 0; i < 60; i++ {
			next := x.candidates(q, tau/2)
			if len(next) < target {
				break
			}
			tau /= 2
			if len(next) == len(cands) && tau < x.diam*1e-9 {
				cands = next
				break
			}
			cands = next
		}
	}

	cache := make(map[int32]float64, len(cands))
	h := topk.New(k)
	refine := func(set []int32) {
		for _, tid := range set {
			if _, done := cache[tid]; done {
				continue
			}
			d := dist.Distance(x.cfg.Measure, q, x.byID[tid].Points, x.cfg.Params)
			cache[tid] = d
			h.Push(int(tid), d)
		}
	}
	refine(cands)

	// Grow the radius until the answer is provably complete: the
	// top-k must all lie within tau, or the candidate set must cover
	// the whole partition.
	for (h.Len() < min(k, len(x.trajs)) || h.Threshold() > tau) && len(cands) < len(x.trajs) {
		tau *= 2
		cands = x.candidates(q, tau)
		refine(cands)
	}
	return h.Results()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Len returns the number of trajectories in the partition.
func (x *Index) Len() int { return len(x.trajs) }

// NumNodes returns the trie node count (excluding the root).
func (x *Index) NumNodes() int { return x.nodes }

// SizeBytes reports the index footprint excluding raw trajectories.
func (x *Index) SizeBytes() int {
	var walk func(n *tnode) int
	walk = func(n *tnode) int {
		sz := 32 + 24 + 24 + 8
		sz += len(n.children) * 8
		sz += len(n.tids) * 4
		for _, c := range n.children {
			sz += walk(c)
		}
		return sz
	}
	return walk(x.root)
}
