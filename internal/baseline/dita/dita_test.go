package dita

import (
	"math"
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/oracle"
)

func randomDataset(rng *rand.Rand, n int) []*geo.Trajectory {
	ds := make([]*geo.Trajectory, n)
	for i := range ds {
		cx := float64(rng.Intn(4)) * 2
		m := 1 + rng.Intn(12)
		pts := make([]geo.Point, m)
		for j := range pts {
			pts[j] = geo.Point{X: cx + rng.Float64(), Y: rng.Float64() * 8}
		}
		ds[i] = &geo.Trajectory{ID: i, Points: pts}
	}
	return ds
}

func TestSupported(t *testing.T) {
	want := map[dist.Measure]bool{dist.Frechet: true, dist.DTW: true, dist.LCSS: true, dist.EDR: true}
	for _, m := range dist.Measures() {
		if Supported(m) != want[m] {
			t.Errorf("Supported(%v) = %v", m, Supported(m))
		}
	}
	if _, err := Build(Config{Measure: dist.Hausdorff}, nil); err == nil {
		t.Error("Hausdorff build should fail (Table IV '/')")
	}
	if _, err := Build(Config{Measure: dist.ERP}, nil); err == nil {
		t.Error("ERP build should fail")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := dist.Params{Epsilon: 0.5}
	for trial := 0; trial < 8; trial++ {
		ds := randomDataset(rng, 130)
		q := randomDataset(rng, 1)[0]
		for _, m := range []dist.Measure{dist.Frechet, dist.DTW, dist.LCSS, dist.EDR} {
			x, err := Build(Config{Measure: m, Params: p, NL: 8, PivotSize: 3, C: 4}, ds)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 6, 15} {
				got := x.Search(q.Points, k)
				want := oracle.TopK(m, p, ds, q.Points, k)
				if len(got) != len(want) {
					t.Fatalf("%v k=%d: len %d want %d", m, k, len(got), len(want))
				}
				for i := range got {
					if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("%v k=%d trial %d rank %d: dist %v want %v",
							m, k, trial, i, got[i].Dist, want[i].Dist)
					}
				}
			}
		}
	}
}

func TestPivotSequence(t *testing.T) {
	// A sharp corner should be selected as a pivot.
	tr := &geo.Trajectory{Points: []geo.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 5}, {X: 2, Y: 6},
	}}
	seq := pivotSequence(tr, 1)
	if len(seq) != 3 {
		t.Fatalf("seq len = %d", len(seq))
	}
	if seq[0] != (geo.Point{X: 0, Y: 0}) || seq[1] != (geo.Point{X: 2, Y: 6}) {
		t.Errorf("first/last wrong: %v", seq[:2])
	}
	if seq[2] != (geo.Point{X: 2, Y: 0}) {
		t.Errorf("corner pivot = %v, want (2,0)", seq[2])
	}
	// Single point duplicates into first/last.
	one := &geo.Trajectory{Points: []geo.Point{{X: 3, Y: 3}}}
	seq = pivotSequence(one, 4)
	if len(seq) != 2 || seq[0] != seq[1] {
		t.Errorf("single-point seq = %v", seq)
	}
	// Two points: no interior pivots.
	two := &geo.Trajectory{Points: []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}}
	if got := pivotSequence(two, 4); len(got) != 2 {
		t.Errorf("two-point seq = %v", got)
	}
}

func TestEdgeCases(t *testing.T) {
	x, err := Build(Config{Measure: dist.Frechet}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Search([]geo.Point{{X: 1, Y: 1}}, 3); got != nil {
		t.Errorf("empty partition = %v", got)
	}
	ds := randomDataset(rand.New(rand.NewSource(10)), 5)
	x, _ = Build(Config{Measure: dist.DTW}, ds)
	if got := x.Search(nil, 3); got != nil {
		t.Errorf("empty query = %v", got)
	}
	if got := x.Search([]geo.Point{{X: 1, Y: 1}}, 0); got != nil {
		t.Errorf("k=0 = %v", got)
	}
	if got := x.Search([]geo.Point{{X: 1, Y: 1}}, 99); len(got) != 5 {
		t.Errorf("k>N returned %d", len(got))
	}
}

func TestTrieStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := randomDataset(rng, 500)
	x, err := Build(Config{Measure: dist.Frechet, NL: 8, PivotSize: 2}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if x.NumNodes() == 0 {
		t.Error("expected trie nodes")
	}
	if x.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	if x.Len() != 500 {
		t.Errorf("Len = %d", x.Len())
	}
}

// TestPruningReducesCandidates: for Frechet, the range query at a
// small radius should return far fewer candidates than the partition.
func TestPruningReducesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds := randomDataset(rng, 400)
	x, _ := Build(Config{Measure: dist.Frechet, NL: 8, PivotSize: 2}, ds)
	q := []geo.Point{{X: 0.5, Y: 0.5}, {X: 0.6, Y: 1.0}}
	small := x.candidates(q, 0.5)
	all := x.candidates(q, 1e9)
	if len(all) != 400 {
		t.Fatalf("full radius returned %d", len(all))
	}
	if len(small) >= len(all) {
		t.Errorf("no pruning: %d of %d", len(small), len(all))
	}
	// Soundness: every trajectory within 0.5 must be a candidate.
	in := map[int32]bool{}
	for _, tid := range small {
		in[tid] = true
	}
	for _, tr := range ds {
		if dist.FrechetDist(q, tr.Points) <= 0.5 && !in[int32(tr.ID)] {
			t.Errorf("trajectory %d within radius but pruned", tr.ID)
		}
	}
}
