package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBasicTopK(t *testing.T) {
	h := New(3)
	if got := h.Threshold(); !math.IsInf(got, 1) {
		t.Errorf("empty threshold = %v", got)
	}
	for id, d := range []float64{5, 1, 3, 2, 4} {
		h.Push(id, d)
	}
	res := h.Results()
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
	wantDists := []float64{1, 2, 3}
	wantIDs := []int{1, 3, 2}
	for i := range res {
		if res[i].Dist != wantDists[i] || res[i].ID != wantIDs[i] {
			t.Errorf("res[%d] = %+v", i, res[i])
		}
	}
	if got := h.Threshold(); got != 3 {
		t.Errorf("threshold = %v, want 3", got)
	}
}

func TestPushReportsRetention(t *testing.T) {
	h := New(2)
	if !h.Push(1, 10) || !h.Push(2, 20) {
		t.Fatal("initial pushes should retain")
	}
	if h.Push(3, 30) {
		t.Error("worse item should not retain")
	}
	if !h.Push(4, 5) {
		t.Error("better item should retain")
	}
	res := h.Results()
	if res[0].ID != 4 || res[1].ID != 1 {
		t.Errorf("results = %+v", res)
	}
}

func TestTieBreakByID(t *testing.T) {
	h := New(2)
	h.Push(5, 1.0)
	h.Push(3, 1.0)
	h.Push(4, 1.0) // same dist, id between: should replace id 5
	res := h.Results()
	if res[0].ID != 3 || res[1].ID != 4 {
		t.Errorf("results = %+v", res)
	}
	// Pushing an equal (dist,id) duplicate of the worst is rejected.
	if h.Push(4, 1.0) {
		t.Error("equal item should not retain")
	}
}

func TestNaNRejected(t *testing.T) {
	h := New(2)
	if h.Push(1, math.NaN()) {
		t.Error("NaN should be rejected")
	}
	if h.Len() != 0 {
		t.Error("heap should stay empty")
	}
}

func TestInfAccepted(t *testing.T) {
	h := New(2)
	h.Push(1, math.Inf(1))
	h.Push(2, 1)
	res := h.Results()
	if len(res) != 2 || res[0].ID != 2 {
		t.Errorf("results = %+v", res)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}

func TestAgainstSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		type pair struct {
			id int
			d  float64
		}
		var all []pair
		h := New(k)
		for id := 0; id < n; id++ {
			d := math.Floor(rng.Float64()*20) / 2 // force ties
			all = append(all, pair{id, d})
			h.Push(id, d)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].d != all[j].d {
				return all[i].d < all[j].d
			}
			return all[i].id < all[j].id
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := h.Results()
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].id || got[i].Dist != want[i].d {
				t.Fatalf("trial %d: got[%d] = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMerge(t *testing.T) {
	a := []Item{{ID: 1, Dist: 1}, {ID: 2, Dist: 4}}
	b := []Item{{ID: 3, Dist: 2}, {ID: 4, Dist: 5}}
	c := []Item{{ID: 5, Dist: 3}}
	got := Merge(3, a, b, c)
	wantIDs := []int{1, 3, 5}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i].ID != wantIDs[i] {
			t.Errorf("got[%d] = %+v", i, got[i])
		}
	}
	if m := Merge(2); len(m) != 0 {
		t.Errorf("empty merge = %+v", m)
	}
}

func TestMergeEqualsGlobalTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		global := New(k)
		var lists [][]Item
		id := 0
		for p := 0; p < 4; p++ {
			local := New(k)
			for i := 0; i < rng.Intn(50); i++ {
				d := rng.Float64() * 100
				local.Push(id, d)
				global.Push(id, d)
				id++
			}
			lists = append(lists, local.Results())
		}
		got := Merge(k, lists...)
		want := global.Results()
		if len(got) != len(want) {
			t.Fatalf("len %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("merge mismatch at %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	}
}

func TestResultsDoesNotMutate(t *testing.T) {
	h := New(3)
	h.Push(1, 3)
	h.Push(2, 1)
	r1 := h.Results()
	r1[0].Dist = 999
	r2 := h.Results()
	if r2[0].Dist == 999 {
		t.Error("Results leaked internal state")
	}
	if h.Threshold() != math.Inf(1) {
		t.Error("threshold should still be +Inf with 2 of 3 items")
	}
}
