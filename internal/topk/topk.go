package topk

import (
	"container/heap"
	"math"
	"sort"
)

// Item is one candidate result.
type Item struct {
	ID   int
	Dist float64
}

// less orders items by (Dist, ID); the heap keeps the *worst* item at
// the top, so the heap comparator is the reverse of this.
func less(a, b Item) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// Heap is a bounded max-heap of the current k best items. The zero
// value is not usable; call New.
type Heap struct {
	k     int
	items maxItems
}

// New returns a Heap retaining the k best items. k must be positive.
func New(k int) *Heap {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Heap{k: k}
}

// K returns the heap's capacity.
func (h *Heap) K() int { return h.k }

// Len returns the number of items currently held.
func (h *Heap) Len() int { return len(h.items) }

// Threshold returns dk: the distance of the k-th best item so far, or
// +Inf while fewer than k items are held. A candidate with a lower
// bound ≥ Threshold can be pruned.
func (h *Heap) Threshold() float64 {
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

// Push offers an item and reports whether it was retained. NaN
// distances are rejected.
func (h *Heap) Push(id int, dist float64) bool {
	if math.IsNaN(dist) {
		return false
	}
	it := Item{ID: id, Dist: dist}
	if len(h.items) < h.k {
		heap.Push(&h.items, it)
		return true
	}
	if !less(it, h.items[0]) {
		return false
	}
	h.items[0] = it
	heap.Fix(&h.items, 0)
	return true
}

// Results returns the retained items sorted ascending by
// (distance, id). The heap remains usable afterwards.
func (h *Heap) Results() []Item {
	out := make([]Item, len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// SortItems orders items ascending by (distance, id) in place — the
// result order every search path promises. Range queries and
// cross-partition radius merges share it.
func SortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool { return less(items[i], items[j]) })
}

// Merge combines any number of (not necessarily sorted) result lists
// into the global top-k, as the master does with per-partition local
// results (Section V-C).
func Merge(k int, lists ...[]Item) []Item {
	h := New(k)
	for _, l := range lists {
		for _, it := range l {
			h.Push(it.ID, it.Dist)
		}
	}
	return h.Results()
}

// maxItems implements heap.Interface as a max-heap by (Dist, ID).
type maxItems []Item

func (m maxItems) Len() int            { return len(m) }
func (m maxItems) Less(i, j int) bool  { return less(m[j], m[i]) }
func (m maxItems) Swap(i, j int)       { m[i], m[j] = m[j], m[i] }
func (m *maxItems) Push(x interface{}) { *m = append(*m, x.(Item)) }
func (m *maxItems) Pop() interface{} {
	old := *m
	n := len(old)
	it := old[n-1]
	*m = old[:n-1]
	return it
}
