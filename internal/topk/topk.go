package topk

import (
	"math"
	"slices"
)

// Item is one candidate result. Start and End are meaningful only for
// refined query modes (subtrajectory and time-windowed search): they
// name the matched half-open sample range [Start, End) of the
// trajectory. Whole-trajectory searches leave them zero.
type Item struct {
	ID         int
	Dist       float64
	Start, End int
}

// less orders items by (Dist, ID); the heap keeps the *worst* item at
// the top, so the heap comparator is the reverse of this.
func less(a, b Item) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// Heap is a bounded max-heap of the current k best items. The zero
// value is not usable; call New or Reset. The implementation is a
// hand-rolled sift heap rather than container/heap: the standard
// library's interface boxes every pushed Item, which would put an
// allocation on the per-candidate hot path.
type Heap struct {
	k     int
	items []Item
}

// New returns a Heap retaining the k best items. k must be positive.
func New(k int) *Heap {
	h := &Heap{}
	h.Reset(k)
	return h
}

// Reset empties the heap and re-targets it at the k best items,
// retaining the backing array. k must be positive.
func (h *Heap) Reset(k int) {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	h.k = k
	h.items = h.items[:0]
}

// K returns the heap's capacity.
func (h *Heap) K() int { return h.k }

// Len returns the number of items currently held.
func (h *Heap) Len() int { return len(h.items) }

// Threshold returns dk: the distance of the k-th best item so far, or
// +Inf while fewer than k items are held. A candidate with a lower
// bound ≥ Threshold can be pruned.
func (h *Heap) Threshold() float64 {
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

// Push offers an item and reports whether it was retained. NaN
// distances are rejected.
func (h *Heap) Push(id int, dist float64) bool {
	if math.IsNaN(dist) {
		return false
	}
	it := Item{ID: id, Dist: dist}
	if len(h.items) < h.k {
		h.items = append(h.items, it)
		h.up(len(h.items) - 1)
		return true
	}
	if !less(it, h.items[0]) {
		return false
	}
	h.items[0] = it
	h.down(0)
	return true
}

// PushItem offers a fully-populated item — retaining its matched
// segment — and reports whether it was retained. NaN distances are
// rejected, and so are +Inf ones: the refined query modes return +Inf
// for candidates with no eligible segment or no window overlap, which
// must not surface as results even while the heap is not yet full.
func (h *Heap) PushItem(it Item) bool {
	if math.IsNaN(it.Dist) || math.IsInf(it.Dist, 1) {
		return false
	}
	if len(h.items) < h.k {
		h.items = append(h.items, it)
		h.up(len(h.items) - 1)
		return true
	}
	if !less(it, h.items[0]) {
		return false
	}
	h.items[0] = it
	h.down(0)
	return true
}

// up restores the max-heap property from leaf i toward the root.
func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h.items[parent], h.items[i]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// down restores the max-heap property from node i toward the leaves.
func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		worst := i
		if l := 2*i + 1; l < n && less(h.items[worst], h.items[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && less(h.items[worst], h.items[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}

// Results returns the retained items sorted ascending by
// (distance, id), as a non-nil slice. The heap remains usable
// afterwards.
func (h *Heap) Results() []Item {
	return h.AppendResults(make([]Item, 0, len(h.items)))
}

// AppendResults appends the retained items to dst sorted ascending by
// (distance, id) and returns the extended slice; with a dst of
// sufficient capacity it does not allocate. The heap remains usable
// afterwards.
func (h *Heap) AppendResults(dst []Item) []Item {
	start := len(dst)
	dst = append(dst, h.items...)
	SortItems(dst[start:])
	return dst
}

// SortItems orders items ascending by (distance, id) in place — the
// result order every search path promises. Range queries and
// cross-partition radius merges share it.
func SortItems(items []Item) {
	slices.SortFunc(items, func(a, b Item) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return 0
	})
}

// Merge combines any number of (not necessarily sorted) result lists
// into the global top-k, as the master does with per-partition local
// results (Section V-C).
func Merge(k int, lists ...[]Item) []Item {
	h := New(k)
	for _, l := range lists {
		for _, it := range l {
			h.PushItem(it)
		}
	}
	return h.Results()
}
