// Package topk provides the bounded result heap used throughout
// REPOSE query processing: a max-heap holding the k best (smallest
// distance) trajectories found so far, whose maximum is the pruning
// threshold dk of Algorithm 2. Results order deterministically by
// (distance, id).
package topk
