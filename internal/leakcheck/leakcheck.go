// Package leakcheck asserts that tests do not leak goroutines,
// replacing the fixed `for { time.Sleep(20ms) }` polling loops that
// used to be copy-pasted across the test suites. Those loops carried
// hard-coded 2–3 second budgets, which flake under -race on loaded CI
// machines; this helper paces itself on timer channels and derives
// its budget from the test's own deadline, so a slow machine gets the
// slack the -timeout flag already grants it.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Slack is how many goroutines above the baseline Settle tolerates:
// runtime helpers (timer scavenger, GC workers) come and go outside
// the test's control.
const Slack = 2

// defaultBudget bounds the wait when the test has no deadline (go
// test -timeout=0).
const defaultBudget = 30 * time.Second

// deadliner is the subset of *testing.T that reports the test
// binary's deadline; testing.B does not implement it.
type deadliner interface {
	Deadline() (time.Time, bool)
}

// budget resolves how long Settle may wait: up to the test deadline
// minus a safety margin (so the failure is ours, with a diagnostic,
// rather than the framework's panic), capped at defaultBudget.
func budget(t testing.TB) time.Duration {
	b := defaultBudget
	if d, ok := t.(deadliner); ok {
		if dl, has := d.Deadline(); has {
			if rem := time.Until(dl) - 2*time.Second; rem < b {
				b = rem
			}
		}
	}
	if b < time.Second {
		b = time.Second
	}
	return b
}

// Base snapshots the current goroutine count. Call it after the
// test's long-lived infrastructure (servers, pools, engines) is up
// and warmed, so only the goroutines the test itself may leak are
// measured against it.
func Base() int { return runtime.NumGoroutine() }

// Settle waits for the goroutine count to return to within Slack of
// base and fails t if it never does before the budget runs out. The
// wait is channel-paced (no bare time.Sleep) and backs off from
// microseconds to milliseconds, so the common already-settled case
// costs almost nothing.
func Settle(t testing.TB, base int) {
	t.Helper()
	deadline := time.Now().Add(budget(t))
	wait := 50 * time.Microsecond
	for {
		runtime.Gosched()
		n := runtime.NumGoroutine()
		if n <= base+Slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d now vs %d baseline (+%d slack)\n%s", n, base, Slack, buf)
		}
		timer := time.NewTimer(wait)
		<-timer.C
		if wait < 10*time.Millisecond {
			wait *= 2
		}
	}
}
