package rtree

import (
	"math"
	"math/rand"
	"testing"

	"repose/internal/geo"
)

func randomItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		items[i] = Item{
			ID: int32(i),
			Rect: geo.Rect{
				Min: geo.Point{X: x, Y: y},
				Max: geo.Point{X: x + rng.Float64()*2, Y: y + rng.Float64()*2},
			},
		}
	}
	return items
}

func TestEmptyTree(t *testing.T) {
	tr := BulkLoad(nil, 0)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if !tr.Bounds().IsEmpty() {
		t.Error("bounds should be empty")
	}
	if !math.IsInf(tr.MinDist(geo.Point{X: 1, Y: 1}), 1) {
		t.Error("MinDist on empty should be +Inf")
	}
	found := false
	tr.Search(geo.Rect{Min: geo.Point{}, Max: geo.Point{X: 200, Y: 200}}, func(Item) bool {
		found = true
		return true
	})
	if found {
		t.Error("empty tree returned items")
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 500)
	tr := BulkLoad(items, 8)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 50; trial++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		q := geo.Rect{
			Min: geo.Point{X: x, Y: y},
			Max: geo.Point{X: x + rng.Float64()*20, Y: y + rng.Float64()*20},
		}
		want := map[int32]bool{}
		for _, it := range items {
			if it.Rect.Intersects(q) {
				want[it.ID] = true
			}
		}
		got := map[int32]bool{}
		tr.Search(q, func(it Item) bool {
			got[it.ID] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing %d", trial, id)
			}
		}
	}
}

func TestSearchWithinMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randomItems(rng, 400)
	tr := BulkLoad(items, 10)
	for trial := 0; trial < 50; trial++ {
		p := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		radius := rng.Float64() * 15
		want := map[int32]bool{}
		for _, it := range items {
			if it.Rect.DistPoint(p) <= radius {
				want[it.ID] = true
			}
		}
		got := map[int32]bool{}
		tr.SearchWithin(p, radius, func(it Item) bool {
			got[it.ID] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
	}
}

func TestMinDistMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randomItems(rng, 300)
	tr := BulkLoad(items, 6)
	for trial := 0; trial < 100; trial++ {
		p := geo.Point{X: rng.Float64()*140 - 20, Y: rng.Float64()*140 - 20}
		want := math.Inf(1)
		for _, it := range items {
			if d := it.Rect.DistPoint(p); d < want {
				want = d
			}
		}
		got := tr.MinDist(p)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("MinDist(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestEarlyTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randomItems(rng, 200)
	tr := BulkLoad(items, 8)
	seen := 0
	completed := tr.Search(geo.Rect{Min: geo.Point{X: -10, Y: -10}, Max: geo.Point{X: 200, Y: 200}}, func(Item) bool {
		seen++
		return seen < 5
	})
	if completed {
		t.Error("early-stopped traversal should report false")
	}
	if seen != 5 {
		t.Errorf("visited %d items", seen)
	}
	seen = 0
	completed = tr.SearchWithin(geo.Point{X: 50, Y: 50}, 100, func(Item) bool {
		seen++
		return false
	})
	if completed || seen != 1 {
		t.Errorf("SearchWithin early stop: completed=%v seen=%d", completed, seen)
	}
}

func TestSingleItem(t *testing.T) {
	it := Item{ID: 7, Rect: geo.Rect{Min: geo.Point{X: 1, Y: 1}, Max: geo.Point{X: 2, Y: 2}}}
	tr := BulkLoad([]Item{it}, 4)
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Errorf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if got := tr.MinDist(geo.Point{X: 5, Y: 2}); math.Abs(got-3) > 1e-9 {
		t.Errorf("MinDist = %v", got)
	}
}

func TestHeightGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small := BulkLoad(randomItems(rng, 10), 4)
	big := BulkLoad(randomItems(rng, 1000), 4)
	if small.Height() >= big.Height() {
		t.Errorf("heights: small %d, big %d", small.Height(), big.Height())
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Error("size should grow with items")
	}
}

func TestBoundsCoverAllItems(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randomItems(rng, 100)
	tr := BulkLoad(items, 8)
	b := tr.Bounds()
	for _, it := range items {
		if !b.Contains(it.Rect.Min) || !b.Contains(it.Rect.Max) {
			t.Fatalf("bounds %v do not cover %v", b, it.Rect)
		}
	}
}

func TestInputSliceNotMutated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randomItems(rng, 50)
	first := items[0]
	BulkLoad(items, 4)
	if items[0] != first {
		t.Error("BulkLoad reordered the caller's slice")
	}
}
