// Package rtree provides an immutable STR-bulk-loaded R-tree over
// rectangles. It is the indexing substrate of the DFT baseline, which
// indexes trajectory segment MBRs (Xie, Li, Phillips, PVLDB'17).
package rtree

import (
	"math"
	"sort"

	"repose/internal/geo"
)

// Item is an indexed rectangle with an opaque identifier (for DFT, a
// segment index).
type Item struct {
	Rect geo.Rect
	ID   int32
}

// DefaultFanout is the default maximum number of entries per node.
const DefaultFanout = 16

// Tree is an immutable R-tree. Build one with BulkLoad.
type Tree struct {
	root   *node
	count  int
	fanout int
}

type node struct {
	rect     geo.Rect
	children []*node // nil for leaves
	items    []Item  // nil for internal nodes
}

// BulkLoad builds a tree from items using Sort-Tile-Recursive
// packing. fanout ≤ 0 selects DefaultFanout. The input slice is not
// retained.
func BulkLoad(items []Item, fanout int) *Tree {
	if fanout <= 1 {
		fanout = DefaultFanout
	}
	t := &Tree{count: len(items), fanout: fanout}
	if len(items) == 0 {
		t.root = &node{rect: geo.EmptyRect()}
		return t
	}
	leaves := packLeaves(append([]Item(nil), items...), fanout)
	level := leaves
	for len(level) > 1 {
		level = packNodes(level, fanout)
	}
	t.root = level[0]
	return t
}

// packLeaves tiles items into leaf nodes of up to fanout entries.
func packLeaves(items []Item, fanout int) []*node {
	n := len(items)
	nLeaves := (n + fanout - 1) / fanout
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	perSlice := nSlices * fanout

	sort.Slice(items, func(i, j int) bool {
		ci, cj := items[i].Rect.Center(), items[j].Rect.Center()
		if ci.X != cj.X {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
	var leaves []*node
	for s := 0; s < n; s += perSlice {
		hi := s + perSlice
		if hi > n {
			hi = n
		}
		sl := items[s:hi]
		sort.Slice(sl, func(i, j int) bool {
			ci, cj := sl[i].Rect.Center(), sl[j].Rect.Center()
			if ci.Y != cj.Y {
				return ci.Y < cj.Y
			}
			return ci.X < cj.X
		})
		for o := 0; o < len(sl); o += fanout {
			e := o + fanout
			if e > len(sl) {
				e = len(sl)
			}
			leaf := &node{items: sl[o:e:e], rect: geo.EmptyRect()}
			for _, it := range leaf.items {
				leaf.rect = leaf.rect.Union(it.Rect)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes groups a level of nodes into parents with the same STR
// discipline.
func packNodes(level []*node, fanout int) []*node {
	n := len(level)
	nParents := (n + fanout - 1) / fanout
	nSlices := int(math.Ceil(math.Sqrt(float64(nParents))))
	perSlice := nSlices * fanout

	sort.Slice(level, func(i, j int) bool {
		ci, cj := level[i].rect.Center(), level[j].rect.Center()
		if ci.X != cj.X {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
	var parents []*node
	for s := 0; s < n; s += perSlice {
		hi := s + perSlice
		if hi > n {
			hi = n
		}
		sl := level[s:hi]
		sort.Slice(sl, func(i, j int) bool {
			ci, cj := sl[i].rect.Center(), sl[j].rect.Center()
			if ci.Y != cj.Y {
				return ci.Y < cj.Y
			}
			return ci.X < cj.X
		})
		for o := 0; o < len(sl); o += fanout {
			e := o + fanout
			if e > len(sl) {
				e = len(sl)
			}
			p := &node{children: sl[o:e:e], rect: geo.EmptyRect()}
			for _, c := range p.children {
				p.rect = p.rect.Union(c.rect)
			}
			parents = append(parents, p)
		}
	}
	return parents
}

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.count }

// Bounds returns the MBR of all items.
func (t *Tree) Bounds() geo.Rect { return t.root.rect }

// Search visits every item whose rectangle intersects r. The visit
// function returns false to stop early; Search reports whether the
// traversal ran to completion.
func (t *Tree) Search(r geo.Rect, visit func(Item) bool) bool {
	return searchNode(t.root, r, visit)
}

func searchNode(n *node, r geo.Rect, visit func(Item) bool) bool {
	if !n.rect.Intersects(r) {
		return true
	}
	if n.children == nil {
		for _, it := range n.items {
			if it.Rect.Intersects(r) {
				if !visit(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchNode(c, r, visit) {
			return false
		}
	}
	return true
}

// SearchWithin visits every item whose rectangle lies within dist of
// point p (rectangle min-distance).
func (t *Tree) SearchWithin(p geo.Point, dist float64, visit func(Item) bool) bool {
	return searchWithin(t.root, p, dist, visit)
}

func searchWithin(n *node, p geo.Point, dist float64, visit func(Item) bool) bool {
	if n.rect.IsEmpty() || n.rect.DistPoint(p) > dist {
		return true
	}
	if n.children == nil {
		for _, it := range n.items {
			if it.Rect.DistPoint(p) <= dist {
				if !visit(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchWithin(c, p, dist, visit) {
			return false
		}
	}
	return true
}

// MinDist returns the smallest rectangle min-distance from p to any
// item, or +Inf for an empty tree. It is a best-first nearest-MBR
// search.
func (t *Tree) MinDist(p geo.Point) float64 {
	best := math.Inf(1)
	minDistNode(t.root, p, &best)
	return best
}

func minDistNode(n *node, p geo.Point, best *float64) {
	if n.rect.IsEmpty() || n.rect.DistPoint(p) >= *best {
		return
	}
	if n.children == nil {
		for _, it := range n.items {
			if d := it.Rect.DistPoint(p); d < *best {
				*best = d
			}
		}
		return
	}
	// Visit nearer children first for tighter pruning.
	type cd struct {
		c *node
		d float64
	}
	order := make([]cd, 0, len(n.children))
	for _, c := range n.children {
		order = append(order, cd{c, c.rect.DistPoint(p)})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].d < order[j].d })
	for _, o := range order {
		minDistNode(o.c, p, best)
	}
}

// Height returns the number of levels (1 for a leaf-only tree).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; n.children != nil; n = n.children[0] {
		h++
	}
	return h
}

// SizeBytes estimates the in-memory footprint.
func (t *Tree) SizeBytes() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		sz := 32 + 24 + 24 // rect + two slice headers
		sz += len(n.items) * 40
		sz += len(n.children) * 8
		for _, c := range n.children {
			sz += walk(c)
		}
		return sz
	}
	return walk(t.root)
}
