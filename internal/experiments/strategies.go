package experiments

import (
	"repose/internal/cluster"
	"repose/internal/dist"
	"repose/internal/partition"
)

// Table7 reproduces the partitioning-strategy study: REPOSE's RP-Trie
// local index under heterogeneous, homogeneous, and random global
// partitioning.
func Table7(cfg Config, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if datasets == nil {
		datasets = sweepDatasets
	}
	e := newEnv(cfg)
	t := &Table{
		Title:  "Table VII: effect of partitioning strategy (ms)",
		Header: append([]string{"Distance", "Partitioning"}, datasets...),
	}
	strategies := []partition.Strategy{
		partition.Heterogeneous, partition.Homogeneous, partition.Random,
	}
	for _, m := range sweepMeasures {
		for _, s := range strategies {
			row := []string{m.String(), s.String()}
			for _, name := range datasets {
				ds, spec, err := e.dataset(name)
				if err != nil {
					return nil, err
				}
				queries, err := e.queriesFor(name)
				if err != nil {
					return nil, err
				}
				cfg.logf("table7: %s %v %v", name, m, s)
				br, err := e.buildEngine(cluster.REPOSE, m, name, ds, spec, buildOpts{strategy: s})
				if err != nil {
					return nil, err
				}
				qt, err := avgQueryTime(br.eng, queries, cfg.K)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDur(qt))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// heterRow describes one algorithm/partitioning pairing of Tables
// VIII and IX.
type heterRow struct {
	label    string
	algo     cluster.Algorithm
	strategy partition.Strategy
}

// heterStudy runs the shared shape of Tables VIII and IX: REPOSE vs a
// baseline with its native partitioning vs the same baseline with
// REPOSE's heterogeneous partitioning bolted on.
func heterStudy(cfg Config, title string, rows []heterRow, measures []dist.Measure, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if datasets == nil {
		datasets = sweepDatasets
	}
	e := newEnv(cfg)
	t := &Table{
		Title:  title,
		Header: append([]string{"Distance", "Algorithm"}, datasets...),
	}
	for _, m := range measures {
		for _, r := range rows {
			row := []string{m.String(), r.label}
			for _, name := range datasets {
				ds, spec, err := e.dataset(name)
				if err != nil {
					return nil, err
				}
				queries, err := e.queriesFor(name)
				if err != nil {
					return nil, err
				}
				cfg.logf("%s: %s %v %s", title[:9], name, m, r.label)
				br, err := e.buildEngine(r.algo, m, name, ds, spec, buildOpts{strategy: r.strategy})
				if err != nil {
					return nil, err
				}
				qt, err := avgQueryTime(br.eng, queries, cfg.K)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDur(qt))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Table8 compares REPOSE against DITA and Heter-DITA (DITA with the
// heterogeneous partitioning) on DTW and Frechet.
func Table8(cfg Config, datasets []string) (*Table, error) {
	rows := []heterRow{
		{label: "REPOSE", algo: cluster.REPOSE, strategy: partition.Heterogeneous},
		{label: "Heter-DITA", algo: cluster.DITA, strategy: partition.Heterogeneous},
		{label: "DITA", algo: cluster.DITA, strategy: partition.Homogeneous},
	}
	return heterStudy(cfg, "Table VIII: DITA with heterogeneous partitioning (ms)",
		rows, []dist.Measure{dist.DTW, dist.Frechet}, datasets)
}

// Table9 compares REPOSE against DFT and Heter-DFT (DFT with the
// heterogeneous partitioning) on Hausdorff and Frechet.
func Table9(cfg Config, datasets []string) (*Table, error) {
	rows := []heterRow{
		{label: "REPOSE", algo: cluster.REPOSE, strategy: partition.Heterogeneous},
		{label: "Heter-DFT", algo: cluster.DFT, strategy: partition.Heterogeneous},
		{label: "DFT", algo: cluster.DFT, strategy: partition.Homogeneous},
	}
	return heterStudy(cfg, "Table IX: DFT with heterogeneous partitioning (ms)",
		rows, []dist.Measure{dist.Hausdorff, dist.Frechet}, datasets)
}

// Runners maps experiment ids to their entry points for the bench
// CLI. Fig8/Fig9 default to OSM (the paper's choice) and use only the
// first entry of any dataset restriction.
var Runners = map[string]func(Config, []string) (*Table, error){
	"table4":   Table4,
	"table5":   Table5,
	"table6":   Table6,
	"table7":   Table7,
	"table8":   Table8,
	"table9":   Table9,
	"fig6":     Fig6,
	"fig7":     Fig7,
	"fig8":     Fig8,
	"fig9":     Fig9,
	"batch":    BatchStudy,
	"coverage": MeasureCoverage,
}

// ExperimentIDs lists the runnable experiment ids in report order.
// "batch" and "coverage" are extensions beyond the paper's
// evaluation; see EXPERIMENTS.md.
var ExperimentIDs = []string{
	"table4", "fig6", "table5", "table6", "fig7", "fig8", "fig9",
	"table7", "table8", "table9", "batch", "coverage",
}
