package experiments

import (
	"fmt"

	"repose/internal/cluster"
	"repose/internal/dist"
)

// sweepDatasets are the datasets the parameter studies report
// (Tables V and VI, Figs. 6-7).
var sweepDatasets = []string{"T-drive", "Xian", "OSM"}

// sweepMeasures are the measures the parameter studies report.
var sweepMeasures = []dist.Measure{dist.Hausdorff, dist.Frechet}

// table5Deltas mirrors the δ columns of Table V per dataset.
var table5Deltas = map[string][]float64{
	"T-drive": {0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30},
	"Xian":    {0.005, 0.010, 0.015, 0.020, 0.025, 0.030, 0.035},
	"OSM":     {0.1, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0},
}

// Table5 reproduces the δ sensitivity study: REPOSE query time as the
// grid cell side varies, for Hausdorff and Frechet.
func Table5(cfg Config, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if datasets == nil {
		datasets = sweepDatasets
	}
	e := newEnv(cfg)
	t := &Table{
		Title:  "Table V: query time (ms) when varying δ",
		Header: []string{"Dataset", "delta", "QT-Hausdorff", "QT-Frechet"},
	}
	for _, name := range datasets {
		ds, spec, err := e.dataset(name)
		if err != nil {
			return nil, err
		}
		queries, err := e.queriesFor(name)
		if err != nil {
			return nil, err
		}
		for _, delta := range table5Deltas[name] {
			row := []string{name, fmt.Sprintf("%g", delta)}
			for _, m := range sweepMeasures {
				cfg.logf("table5: %s δ=%g %v", name, delta, m)
				br, err := e.buildEngine(cluster.REPOSE, m, name, ds, spec, buildOpts{
					strategy: nativeStrategy(cluster.REPOSE),
					delta:    delta,
				})
				if err != nil {
					return nil, err
				}
				qt, err := avgQueryTime(br.eng, queries, cfg.K)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDur(qt))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// table6Nps mirrors the Np column of Table VI.
var table6Nps = []int{1, 3, 5, 7, 9, 11}

// Table6 reproduces the pivot-count sensitivity study: REPOSE query
// time as Np varies.
func Table6(cfg Config, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if datasets == nil {
		datasets = sweepDatasets
	}
	e := newEnv(cfg)
	t := &Table{
		Title:  "Table VI: query time (ms) when varying Np",
		Header: []string{"Dataset", "Np", "QT-Hausdorff", "QT-Frechet"},
	}
	for _, name := range datasets {
		ds, spec, err := e.dataset(name)
		if err != nil {
			return nil, err
		}
		queries, err := e.queriesFor(name)
		if err != nil {
			return nil, err
		}
		for _, np := range table6Nps {
			row := []string{name, fmt.Sprintf("%d", np)}
			for _, m := range sweepMeasures {
				cfg.logf("table6: %s Np=%d %v", name, np, m)
				br, err := e.buildEngine(cluster.REPOSE, m, name, ds, spec, buildOpts{
					strategy: nativeStrategy(cluster.REPOSE),
					np:       np,
				})
				if err != nil {
					return nil, err
				}
				qt, err := avgQueryTime(br.eng, queries, cfg.K)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDur(qt))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
