package experiments

import (
	"context"
	"repose/internal/cluster"
	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/partition"
)

// The runners in this file go beyond the paper's evaluation: a batch
// (concurrent) workload study grounded in the Section V-A discussion,
// and a measure-coverage table for LCSS/EDR/ERP, which the paper
// supports but never benchmarks (its Section IX future work).

// BatchStudy measures batch makespan under the three partitioning
// strategies, for a uniform batch and a skewed batch (all queries
// from one hot region — the ride-hailing example of Section V-A).
// Homogeneous partitioning leaves most partitions idle on the skewed
// batch; heterogeneous keeps every worker busy.
func BatchStudy(cfg Config, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if datasets == nil {
		datasets = []string{"Xian"}
	}
	e := newEnv(cfg)
	t := &Table{
		Title:  "Extension: batch workload makespan (ms) by partitioning strategy",
		Header: []string{"Dataset", "Batch", "Heterogeneous", "Homogeneous", "Random"},
	}
	strategies := []partition.Strategy{
		partition.Heterogeneous, partition.Homogeneous, partition.Random,
	}
	for _, name := range datasets {
		ds, spec, err := e.dataset(name)
		if err != nil {
			return nil, err
		}
		// Uniform batch: random queries. Skewed batch: the queries
		// most similar to one seed trajectory (a hot region).
		uniform := dataset.Queries(ds, 2*cfg.Queries, 999)
		seed := ds[0]
		skewed := nearestTo(ds, seed, 2*cfg.Queries)
		for _, batch := range []struct {
			label   string
			queries []*geo.Trajectory
		}{{"uniform", uniform}, {"skewed", skewed}} {
			row := []string{name, batch.label}
			qpts := make([][]geo.Point, len(batch.queries))
			for i, q := range batch.queries {
				qpts[i] = q.Points
			}
			for _, s := range strategies {
				cfg.logf("batch: %s %v %s", name, s, batch.label)
				br, err := e.buildEngine(cluster.REPOSE, dist.Hausdorff, name, ds, spec, buildOpts{strategy: s})
				if err != nil {
					return nil, err
				}
				_, rep, err := br.eng.SearchBatch(context.Background(), qpts, cfg.K, cluster.QueryOptions{})
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDur(rep.Makespan))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// nearestTo returns the n trajectories with the smallest Hausdorff
// distance to seed (a cheap stand-in for "queries in a hot region").
func nearestTo(ds []*geo.Trajectory, seed *geo.Trajectory, n int) []*geo.Trajectory {
	type cand struct {
		tr *geo.Trajectory
		d  float64
	}
	cands := make([]cand, 0, len(ds))
	for _, tr := range ds {
		// Centroid distance is enough to pick a hot region.
		cands = append(cands, cand{tr, tr.Centroid().Dist(seed.Centroid())})
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]*geo.Trajectory, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].tr.Clone()
	}
	return out
}

// MeasureCoverage benchmarks REPOSE against LS on the three measures
// the paper's evaluation never times (LCSS, EDR, ERP) — DFT and DITA
// cannot run them at all.
func MeasureCoverage(cfg Config, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if datasets == nil {
		datasets = []string{"T-drive", "Xian"}
	}
	e := newEnv(cfg)
	t := &Table{
		Title:  "Extension: QT (ms) for the measures the paper leaves unbenchmarked",
		Header: []string{"Distance", "Algorithm"},
	}
	t.Header = append(t.Header, datasets...)
	for _, m := range []dist.Measure{dist.LCSS, dist.EDR, dist.ERP} {
		for _, algo := range []cluster.Algorithm{cluster.REPOSE, cluster.LS} {
			row := []string{m.String(), algo.String()}
			for _, name := range datasets {
				ds, spec, err := e.dataset(name)
				if err != nil {
					return nil, err
				}
				queries, err := e.queriesFor(name)
				if err != nil {
					return nil, err
				}
				cfg.logf("coverage: %s %v %v", name, m, algo)
				br, err := e.buildEngine(algo, m, name, ds, spec, buildOpts{strategy: nativeStrategy(algo)})
				if err != nil {
					return nil, err
				}
				qt, err := avgQueryTime(br.eng, queries, cfg.K)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtDur(qt))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
