package experiments

import "testing"

func TestBatchStudyTiny(t *testing.T) {
	tab, err := BatchStudy(tinyConfig(), []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // uniform + skewed
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 5 {
			t.Fatalf("row = %v", row)
		}
	}
}

func TestMeasureCoverageTiny(t *testing.T) {
	tab, err := MeasureCoverage(tinyConfig(), []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 3 measures × 2 algorithms
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	seen := map[string]bool{}
	for _, row := range tab.Rows {
		seen[row[0]] = true
	}
	for _, m := range []string{"LCSS", "EDR", "ERP"} {
		if !seen[m] {
			t.Errorf("missing measure %s", m)
		}
	}
}
