// Package experiments regenerates every table and figure of the
// REPOSE paper's evaluation (Section VII) on synthetic stand-ins for
// the seven datasets. Each runner returns a Table whose rows mirror
// what the paper reports; EXPERIMENTS.md records paper-vs-measured
// shapes.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"repose/internal/cluster"
	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/partition"
	"repose/internal/pivot"
)

// Config scales and parameterizes an experiment run.
type Config struct {
	// Scale multiplies the paper's dataset cardinalities (default
	// 1/512 — small enough for a laptop, large enough to show the
	// relative behaviours; the cmd can raise it).
	Scale float64

	// Partitions is the global partition count (paper default: 64).
	// Defaults to 8 at reduced scale.
	Partitions int

	// Workers caps parallelism (default GOMAXPROCS).
	Workers int

	// K is the result size (paper default: 100; defaults to 10 at
	// reduced scale so selectivity stays comparable).
	K int

	// Queries is the number of random query trajectories averaged
	// per measurement (paper: 100 queries × 20 repetitions;
	// default 5).
	Queries int

	// Verbose streams progress lines to Out.
	Verbose bool
	Out     io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0 / 512
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Queries <= 0 {
		c.Queries = 5
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Verbose {
		fmt.Fprintf(c.Out, format+"\n", args...)
	}
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// env caches generated datasets and query workloads across an
// experiment run.
type env struct {
	cfg     Config
	data    map[string][]*geo.Trajectory
	queries map[string][]*geo.Trajectory
}

func newEnv(cfg Config) *env {
	return &env{
		cfg:     cfg,
		data:    make(map[string][]*geo.Trajectory),
		queries: make(map[string][]*geo.Trajectory),
	}
}

func (e *env) dataset(name string) ([]*geo.Trajectory, dataset.Spec, error) {
	spec, err := dataset.ByName(name, e.cfg.Scale)
	if err != nil {
		return nil, spec, err
	}
	if ds, ok := e.data[name]; ok {
		return ds, spec, nil
	}
	e.cfg.logf("generating %s (%d trajectories)", name, spec.Cardinality)
	ds := dataset.Generate(spec)
	e.data[name] = ds
	return ds, spec, nil
}

func (e *env) queriesFor(name string) ([]*geo.Trajectory, error) {
	if q, ok := e.queries[name]; ok {
		return q, nil
	}
	ds, _, err := e.dataset(name)
	if err != nil {
		return nil, err
	}
	q := dataset.Queries(ds, e.cfg.Queries, 999)
	e.queries[name] = q
	return q, nil
}

// paperDelta returns the δ value Section VII-A assigns to each
// dataset (Hausdorff column; Frechet/DTW use the second value where
// the paper distinguishes them).
func paperDelta(name string, m dist.Measure) float64 {
	switch name {
	case "SF", "Porto", "Rome":
		return 0.05
	case "T-drive":
		return 0.15
	case "OSM":
		return 1.0
	case "Chengdu":
		if m == dist.Hausdorff {
			return 0.01
		}
		return 0.02
	case "Xian":
		if m == dist.Hausdorff {
			return 0.01
		}
		return 0.03
	default:
		return 0.05
	}
}

// buildResult captures one built engine plus its build metrics.
type buildResult struct {
	eng       *cluster.Local
	buildTime time.Duration
	sizeBytes int
}

// buildOpts parameterizes buildEngine beyond the algorithm/measure.
type buildOpts struct {
	strategy   partition.Strategy
	delta      float64 // 0 → paperDelta
	np         int     // pivots; 0 → 5, negative → none
	optimize   *bool   // nil → auto (order-independent measures)
	partitions int     // 0 → cfg.Partitions
	disableLBt bool
	disableLBp bool
}

// buildEngine partitions ds and builds the distributed index for one
// (algorithm, measure, dataset) cell. Index construction time
// includes discretization, clustering, pivot selection, and trie
// building — matching the paper's IT metric.
func (e *env) buildEngine(algo cluster.Algorithm, m dist.Measure, name string, ds []*geo.Trajectory, spec dataset.Spec, o buildOpts) (*buildResult, error) {
	cfg := e.cfg
	region := spec.Region()
	delta := o.delta
	if delta <= 0 {
		delta = paperDelta(name, m)
	}
	nparts := o.partitions
	if nparts <= 0 {
		nparts = cfg.Partitions
	}
	params := dist.Params{Epsilon: dist.DefaultParams(region).Epsilon, Gap: region.Min}

	start := time.Now()
	g, err := grid.New(region, delta)
	if err != nil {
		return nil, err
	}
	strategy := o.strategy
	// DFT and DITA natively use homogeneous (STR-style) partitioning;
	// Tables VIII/IX bolt the heterogeneous strategy onto them.
	assign, err := partition.Assign(strategy, ds, g, nparts, 7)
	if err != nil {
		return nil, err
	}
	parts := partition.Split(ds, assign, nparts)

	np := o.np
	if np == 0 {
		np = 5
	}
	var pivots []*geo.Trajectory
	if algo == cluster.REPOSE && np > 0 && m.IsMetric() {
		pivots = pivot.Select(ds, np, pivot.DefaultGroups, m, params, 13)
	}
	optimize := m.OrderIndependent()
	if o.optimize != nil {
		optimize = *o.optimize
	}
	ispec := cluster.IndexSpec{
		Algorithm:  algo,
		Measure:    m,
		Params:     params,
		Region:     region,
		Delta:      delta,
		Pivots:     pivots,
		Optimize:   optimize,
		DisableLBt: o.disableLBt,
		DisableLBp: o.disableLBp,
		DFTC:       5,
		DITANL:     32,
		DITAPivot:  4,
		DITAC:      5,
		Seed:       17,
	}
	eng, err := cluster.BuildLocal(ispec, parts, cfg.Workers)
	if err != nil {
		return nil, err
	}
	return &buildResult{
		eng:       eng,
		buildTime: time.Since(start),
		sizeBytes: eng.IndexSizeBytes(),
	}, nil
}

// nativeStrategy returns the global partitioning each algorithm uses
// by default: REPOSE heterogeneous, the others homogeneous grouping
// (DFT: close centroids; DITA: close first/last points — both are
// similarity-grouping schemes).
func nativeStrategy(algo cluster.Algorithm) partition.Strategy {
	if algo == cluster.REPOSE {
		return partition.Heterogeneous
	}
	if algo == cluster.LS {
		return partition.Random
	}
	return partition.Homogeneous
}

// avgQueryTime runs the query workload and returns the mean
// distributed query wall time.
func avgQueryTime(eng *cluster.Local, queries []*geo.Trajectory, k int) (time.Duration, error) {
	if len(queries) == 0 {
		return 0, fmt.Errorf("experiments: no queries")
	}
	var total time.Duration
	for _, q := range queries {
		start := time.Now()
		if _, _, err := eng.Search(context.Background(), q.Points, k, cluster.QueryOptions{}); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(len(queries)), nil
}

// fmtDur renders a duration in milliseconds with 3 significant
// decimals, the resolution the scaled-down tables need.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

// fmtBytes renders a byte count in MB.
func fmtBytes(b int) string {
	return fmt.Sprintf("%.3f", float64(b)/(1024*1024))
}
