package experiments

import (
	"repose/internal/baseline/dft"
	"repose/internal/baseline/dita"
	"repose/internal/cluster"
	"repose/internal/dist"
)

// table4Datasets are the seven datasets of Table III/IV in paper
// order.
var table4Datasets = []string{"SF", "Porto", "Rome", "T-drive", "Xian", "Chengdu", "OSM"}

// table4Measures are the measures Table IV reports.
var table4Measures = []dist.Measure{dist.Hausdorff, dist.Frechet, dist.DTW}

// table4Algorithms in paper row order.
var table4Algorithms = []cluster.Algorithm{cluster.REPOSE, cluster.DITA, cluster.DFT, cluster.LS}

// supports mirrors Table IV's "/" cells: which algorithm supports
// which measure.
func supports(algo cluster.Algorithm, m dist.Measure) bool {
	switch algo {
	case cluster.DFT:
		return dft.Supported(m)
	case cluster.DITA:
		return dita.Supported(m)
	default:
		return true
	}
}

// Table4 reproduces the performance overview: query time (QT, ms),
// index size (IS, MB), and index construction time (IT, ms) for every
// algorithm × measure × dataset. Datasets may be restricted to keep
// runs tractable; nil means all seven.
func Table4(cfg Config, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if datasets == nil {
		datasets = table4Datasets
	}
	e := newEnv(cfg)
	t := &Table{
		Title:  "Table IV: performance overview (QT ms / IS MB / IT ms)",
		Header: append([]string{"Metric", "Distance", "Algorithm"}, datasets...),
	}

	type cell struct{ qt, is, it string }
	results := make(map[string]cell)

	for _, name := range datasets {
		ds, spec, err := e.dataset(name)
		if err != nil {
			return nil, err
		}
		queries, err := e.queriesFor(name)
		if err != nil {
			return nil, err
		}
		for _, m := range table4Measures {
			for _, algo := range table4Algorithms {
				key := name + "/" + m.String() + "/" + algo.String()
				if !supports(algo, m) {
					results[key] = cell{"/", "/", "/"}
					continue
				}
				cfg.logf("table4: %s %v %v", name, m, algo)
				br, err := e.buildEngine(algo, m, name, ds, spec, buildOpts{strategy: nativeStrategy(algo)})
				if err != nil {
					return nil, err
				}
				qt, err := avgQueryTime(br.eng, queries, cfg.K)
				if err != nil {
					return nil, err
				}
				is := "/"
				it := "/"
				if algo != cluster.LS {
					is = fmtBytes(br.sizeBytes)
					it = fmtDur(br.buildTime)
				}
				results[key] = cell{qt: fmtDur(qt), is: is, it: it}
			}
		}
	}

	for _, metric := range []string{"QT (ms)", "IS (MB)", "IT (ms)"} {
		for _, m := range table4Measures {
			for _, algo := range table4Algorithms {
				row := []string{metric, m.String(), algo.String()}
				for _, name := range datasets {
					c := results[name+"/"+m.String()+"/"+algo.String()]
					switch metric {
					case "QT (ms)":
						row = append(row, c.qt)
					case "IS (MB)":
						row = append(row, c.is)
					default:
						row = append(row, c.it)
					}
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	return t, nil
}
