package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	return Config{Scale: 1.0 / 4096, Partitions: 4, K: 3, Queries: 2}
}

func TestTable4Tiny(t *testing.T) {
	tab, err := Table4(tinyConfig(), []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	// 3 metrics × 3 measures × 4 algorithms rows.
	if len(tab.Rows) != 36 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// DITA under Hausdorff must be "/" (Table IV).
	found := false
	for _, row := range tab.Rows {
		if row[1] == "Hausdorff" && row[2] == "DITA" {
			found = true
			if row[3] != "/" {
				t.Errorf("DITA Hausdorff cell = %q, want /", row[3])
			}
		}
		if row[1] == "LCSS" {
			t.Error("unexpected measure row")
		}
	}
	if !found {
		t.Error("missing DITA Hausdorff row")
	}
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REPOSE") {
		t.Error("printed table lacks REPOSE")
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Metric,Distance,Algorithm") {
		t.Error("CSV header missing")
	}
}

func TestTable5Tiny(t *testing.T) {
	tab, err := Table5(tinyConfig(), []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(table5Deltas["T-drive"]) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTable6Tiny(t *testing.T) {
	tab, err := Table6(tinyConfig(), []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(table6Nps) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTable7Tiny(t *testing.T) {
	tab, err := Table7(tinyConfig(), []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 2 measures × 3 strategies
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTable8And9Tiny(t *testing.T) {
	tab8, err := Table8(tinyConfig(), []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab8.Rows) != 6 {
		t.Fatalf("table8 rows = %d", len(tab8.Rows))
	}
	tab9, err := Table9(tinyConfig(), []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab9.Rows) != 6 {
		t.Fatalf("table9 rows = %d", len(tab9.Rows))
	}
}

func TestFig6Tiny(t *testing.T) {
	cfg := tinyConfig()
	tab, err := Fig6(cfg, []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	// Hausdorff: REPOSE, DFT, LS; Frechet: +DITA → 7 series, but k
	// values beyond the dataset size are dropped; at least the k=1
	// points must exist for each series.
	series := map[string]bool{}
	for _, row := range tab.Rows {
		series[row[1]+"/"+row[2]] = true
	}
	if len(series) != 7 {
		t.Fatalf("series = %v", series)
	}
}

func TestFig7Tiny(t *testing.T) {
	tab, err := Fig7(tinyConfig(), []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The optimized trie must not have more nodes than the
	// unoptimized one.
	var optNodes, basicNodes string
	for _, row := range tab.Rows {
		if row[1] == "Optimized" {
			optNodes = row[2]
		} else {
			basicNodes = row[2]
		}
	}
	if optNodes == "" || basicNodes == "" {
		t.Fatal("missing rows")
	}
	if len(optNodes) > len(basicNodes) {
		t.Errorf("optimized nodes %s > basic %s", optNodes, basicNodes)
	}
}

func TestFig8Tiny(t *testing.T) {
	tab, err := Fig8(tinyConfig(), []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	// 7 series × 5 scales.
	if len(tab.Rows) != 35 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig9Tiny(t *testing.T) {
	tab, err := Fig9(tinyConfig(), []string{"T-drive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 28 { // 7 series × 4 partition counts
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestRunnersRegistry(t *testing.T) {
	if len(Runners) != len(ExperimentIDs) {
		t.Fatalf("registry size %d vs %d ids", len(Runners), len(ExperimentIDs))
	}
	for _, id := range ExperimentIDs {
		if Runners[id] == nil {
			t.Errorf("missing runner %q", id)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale <= 0 || c.Partitions <= 0 || c.K <= 0 || c.Queries <= 0 || c.Out == nil {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := Table5(tinyConfig(), []string{"Atlantis"}); err == nil {
		t.Error("unknown dataset should fail")
	}
}
