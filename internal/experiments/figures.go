package experiments

import (
	"context"
	"fmt"
	"time"

	"repose/internal/cluster"
	"repose/internal/dataset"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/partition"
	"repose/internal/rptrie"
)

// fig6Ks is the k sweep of Fig. 6.
var fig6Ks = []int{1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// Fig6 reproduces the k sensitivity curves: query time for all four
// algorithms as k grows, on T-drive/Xi'an/OSM under Hausdorff and
// Frechet.
func Fig6(cfg Config, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if datasets == nil {
		datasets = sweepDatasets
	}
	e := newEnv(cfg)
	t := &Table{
		Title:  "Fig. 6: query time (ms) when varying k",
		Header: []string{"Dataset", "Distance", "Algorithm", "k", "QT"},
	}
	for _, name := range datasets {
		ds, spec, err := e.dataset(name)
		if err != nil {
			return nil, err
		}
		queries, err := e.queriesFor(name)
		if err != nil {
			return nil, err
		}
		for _, m := range sweepMeasures {
			for _, algo := range table4Algorithms {
				if !supports(algo, m) {
					continue
				}
				cfg.logf("fig6: %s %v %v", name, m, algo)
				br, err := e.buildEngine(algo, m, name, ds, spec, buildOpts{strategy: nativeStrategy(algo)})
				if err != nil {
					return nil, err
				}
				for _, k := range fig6Ks {
					if k > len(ds) {
						break
					}
					qt, err := avgQueryTime(br.eng, queries, k)
					if err != nil {
						return nil, err
					}
					t.Rows = append(t.Rows, []string{
						name, m.String(), algo.String(), fmt.Sprintf("%d", k), fmtDur(qt),
					})
				}
			}
		}
	}
	return t, nil
}

// Fig7 reproduces the optimized-trie study: trie node count and query
// time with and without z-value re-arrangement, on T-drive and OSM
// (Hausdorff — the order-independent measure).
func Fig7(cfg Config, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if datasets == nil {
		datasets = []string{"T-drive", "OSM"}
	}
	e := newEnv(cfg)
	t := &Table{
		Title:  "Fig. 7: improvement by optimized trie (Hausdorff)",
		Header: []string{"Dataset", "Trie", "Nodes", "QT (ms)"},
	}
	for _, name := range datasets {
		ds, spec, err := e.dataset(name)
		if err != nil {
			return nil, err
		}
		queries, err := e.queriesFor(name)
		if err != nil {
			return nil, err
		}
		for _, optimized := range []bool{true, false} {
			opt := optimized
			cfg.logf("fig7: %s optimized=%v", name, opt)
			br, err := e.buildEngine(cluster.REPOSE, dist.Hausdorff, name, ds, spec, buildOpts{
				strategy: partition.Heterogeneous,
				optimize: &opt,
			})
			if err != nil {
				return nil, err
			}
			qt, err := avgQueryTime(br.eng, queries, cfg.K)
			if err != nil {
				return nil, err
			}
			nodes, err := countTrieNodes(name, spec, ds, dist.Hausdorff, opt)
			if err != nil {
				return nil, err
			}
			label := "Unoptimized"
			if opt {
				label = "Optimized"
			}
			t.Rows = append(t.Rows, []string{name, label, fmt.Sprintf("%d", nodes), fmtDur(qt)})
		}
	}
	return t, nil
}

// countTrieNodes builds a single whole-dataset trie to report the
// node-count reduction the way Fig. 7 does.
func countTrieNodes(name string, spec dataset.Spec, ds []*geo.Trajectory, m dist.Measure, optimize bool) (int, error) {
	g, err := grid.New(spec.Region(), paperDelta(name, m))
	if err != nil {
		return 0, err
	}
	trie, err := rptrie.Build(rptrie.Config{Measure: m, Grid: g, Optimize: optimize}, ds)
	if err != nil {
		return 0, err
	}
	return trie.NumNodes(), nil
}

// fig8Scales is the cardinality sweep of Fig. 8.
var fig8Scales = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// Fig8 reproduces the cardinality scaling study on OSM (the paper's
// choice; datasets may override it for cheap smoke runs): query time
// of all algorithms as the dataset grows.
func Fig8(cfg Config, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	name := "OSM"
	if len(datasets) > 0 {
		name = datasets[0]
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 8: effect of dataset cardinality (%s)", name),
		Header: []string{"Distance", "Algorithm", "Scale", "QT (ms)"},
	}
	fullSpec, err := dataset.ByName(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	full := dataset.Generate(fullSpec)
	queries := dataset.Queries(full, cfg.Queries, 999)
	e := newEnv(cfg)
	for _, m := range sweepMeasures {
		for _, algo := range table4Algorithms {
			if !supports(algo, m) {
				continue
			}
			for _, sc := range fig8Scales {
				n := int(float64(len(full)) * sc)
				if n < 1 {
					n = 1
				}
				sub := full[:n]
				cfg.logf("fig8: %v %v scale=%.1f (%d trajectories)", m, algo, sc, n)
				br, err := e.buildEngine(algo, m, name, sub, fullSpec, buildOpts{strategy: nativeStrategy(algo)})
				if err != nil {
					return nil, err
				}
				qt, err := avgQueryTime(br.eng, queries, cfg.K)
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{
					m.String(), algo.String(), fmt.Sprintf("%.1f", sc), fmtDur(qt),
				})
			}
		}
	}
	return t, nil
}

// fig9Partitions is the partition sweep of Fig. 9.
var fig9Partitions = []int{16, 32, 48, 64}

// Fig9 reproduces the partition-count study on OSM (overridable for
// cheap smoke runs), reporting both the distributed wall time and the
// summed per-partition compute.
func Fig9(cfg Config, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	name := "OSM"
	if len(datasets) > 0 {
		name = datasets[0]
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 9: effect of the number of partitions (%s)", name),
		Header: []string{"Distance", "Algorithm", "Partitions", "QT (ms)", "SumPartitionTime (ms)"},
	}
	e := newEnv(cfg)
	ds, spec, err := e.dataset(name)
	if err != nil {
		return nil, err
	}
	queries, err := e.queriesFor(name)
	if err != nil {
		return nil, err
	}
	for _, m := range sweepMeasures {
		for _, algo := range table4Algorithms {
			if !supports(algo, m) {
				continue
			}
			for _, np := range fig9Partitions {
				cfg.logf("fig9: %v %v partitions=%d", m, algo, np)
				br, err := e.buildEngine(algo, m, name, ds, spec, buildOpts{
					strategy:   nativeStrategy(algo),
					partitions: np,
				})
				if err != nil {
					return nil, err
				}
				var wall, sum time.Duration
				for _, q := range queries {
					_, rep, err := br.eng.Search(context.Background(), q.Points, cfg.K, cluster.QueryOptions{})
					if err != nil {
						return nil, err
					}
					wall += rep.Wall
					sum += rep.SumPartition
				}
				nq := time.Duration(len(queries))
				t.Rows = append(t.Rows, []string{
					m.String(), algo.String(), fmt.Sprintf("%d", np),
					fmtDur(wall / nq), fmtDur(sum / nq),
				})
			}
		}
	}
	return t, nil
}
