package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func TestPaperSpecsScale(t *testing.T) {
	full := PaperSpecs(1)
	if len(full) != 7 {
		t.Fatalf("expected 7 datasets, got %d", len(full))
	}
	if full[0].Name != "T-drive" || full[0].Cardinality != 356228 {
		t.Errorf("T-drive spec = %+v", full[0])
	}
	scaled := PaperSpecs(1.0 / 64)
	for i := range scaled {
		if scaled[i].Cardinality >= full[i].Cardinality && full[i].Cardinality > 50*64 {
			t.Errorf("%s did not scale: %d", scaled[i].Name, scaled[i].Cardinality)
		}
		if scaled[i].Cardinality < 50 {
			t.Errorf("%s below floor: %d", scaled[i].Name, scaled[i].Cardinality)
		}
	}
	// scale <= 0 means full size.
	if PaperSpecs(0)[0].Cardinality != 356228 {
		t.Error("scale 0 should mean full size")
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Xian", 0.01)
	if err != nil || s.Name != "Xian" {
		t.Errorf("ByName = %+v, %v", s, err)
	}
	if _, err := ByName("Atlantis", 1); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestGenerateProperties(t *testing.T) {
	spec := Spec{Name: "test", Cardinality: 300, AvgLen: 40, SpanX: 2, SpanY: 1, Hotspots: 8, Seed: 9}
	ds := Generate(spec)
	if len(ds) != 300 {
		t.Fatalf("cardinality = %d", len(ds))
	}
	region := spec.Region()
	totalLen := 0
	ids := map[int]bool{}
	for _, tr := range ds {
		if len(tr.Points) < MinLen || len(tr.Points) > MaxLen {
			t.Fatalf("trajectory %d has %d points", tr.ID, len(tr.Points))
		}
		totalLen += len(tr.Points)
		if ids[tr.ID] {
			t.Fatalf("duplicate id %d", tr.ID)
		}
		ids[tr.ID] = true
		for _, p := range tr.Points {
			if !region.Contains(p) {
				t.Fatalf("point %v outside region %v", p, region)
			}
		}
	}
	avg := float64(totalLen) / float64(len(ds))
	if math.Abs(avg-40) > 10 {
		t.Errorf("avg length = %v, want ≈40", avg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Cardinality: 50, AvgLen: 20, SpanX: 1, SpanY: 1, Hotspots: 4, Seed: 5}
	a := Generate(spec)
	b := Generate(spec)
	for i := range a {
		if len(a[i].Points) != len(b[i].Points) {
			t.Fatalf("run mismatch at %d", i)
		}
		for j := range a[i].Points {
			if a[i].Points[j] != b[i].Points[j] {
				t.Fatalf("point mismatch at %d,%d", i, j)
			}
		}
	}
	spec.Seed = 6
	c := Generate(spec)
	same := true
	for i := range a {
		for j := range a[i].Points {
			if j < len(c[i].Points) && a[i].Points[j] != c[i].Points[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

// TestGenerateHotspotSkew: density near the top hotspot should exceed
// the uniform expectation.
func TestGenerateHotspotSkew(t *testing.T) {
	spec := Spec{Cardinality: 400, AvgLen: 20, SpanX: 10, SpanY: 10, Hotspots: 10, Seed: 77}
	ds := Generate(spec)
	// Compare the start-point count in the densest 3x3-unit cell
	// against the uniform expectation.
	best := 0
	counts := map[[2]int]int{}
	for _, tr := range ds {
		p := tr.Points[0]
		key := [2]int{int(p.X / 3), int(p.Y / 3)}
		counts[key]++
		if counts[key] > best {
			best = counts[key]
		}
	}
	uniform := float64(len(ds)) / (16.0 / 1.44) // ~#cells
	if float64(best) < 2*uniform {
		t.Errorf("densest cell %d, uniform expectation %.1f — no skew", best, uniform)
	}
}

func TestQueries(t *testing.T) {
	spec := Spec{Cardinality: 100, AvgLen: 15, SpanX: 1, SpanY: 1, Hotspots: 3, Seed: 1}
	ds := Generate(spec)
	qs := Queries(ds, 10, 42)
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	seen := map[int]bool{}
	for _, q := range qs {
		if seen[q.ID] {
			t.Errorf("duplicate query %d", q.ID)
		}
		seen[q.ID] = true
	}
	// Clones: mutating a query must not affect the dataset.
	qs[0].Points[0].X = -999
	for _, tr := range ds {
		if tr.ID == qs[0].ID && tr.Points[0].X == -999 {
			t.Error("Queries did not clone")
		}
	}
	// n > len clamps.
	if got := Queries(ds, 1000, 1); len(got) != 100 {
		t.Errorf("clamped queries = %d", len(got))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	spec := Spec{Cardinality: 30, AvgLen: 12, SpanX: 1, SpanY: 1, Hotspots: 3, Seed: 2}
	ds := Generate(spec)
	var buf bytes.Buffer
	if err := Write(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ds) {
		t.Fatalf("round trip len %d want %d", len(back), len(ds))
	}
	for i := range ds {
		if back[i].ID != ds[i].ID || len(back[i].Points) != len(ds[i].Points) {
			t.Fatalf("trajectory %d mismatch", i)
		}
		for j := range ds[i].Points {
			if math.Abs(back[i].Points[j].X-ds[i].Points[j].X) > 1e-12 {
				t.Fatalf("point %d,%d mismatch", i, j)
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("1,2.0\n")); err == nil {
		t.Error("odd coordinate count should fail")
	}
	if _, err := Read(bytes.NewBufferString("x,1,2\n")); err == nil {
		t.Error("bad id should fail")
	}
	if _, err := Read(bytes.NewBufferString("1,a,2\n")); err == nil {
		t.Error("bad x should fail")
	}
	if _, err := Read(bytes.NewBufferString("1,2,b\n")); err == nil {
		t.Error("bad y should fail")
	}
	// Blank lines are skipped.
	ds, err := Read(bytes.NewBufferString("\n1,2,3\n\n"))
	if err != nil || len(ds) != 1 {
		t.Errorf("blank lines: %v, %v", ds, err)
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.csv")
	spec := Spec{Cardinality: 20, AvgLen: 12, SpanX: 1, SpanY: 1, Hotspots: 3, Seed: 3}
	ds := Generate(spec)
	if err := Save(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 20 {
		t.Fatalf("loaded %d", len(back))
	}
	if _, err := Load(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}
