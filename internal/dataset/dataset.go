// Package dataset provides seeded synthetic trajectory generators
// matched to the published statistics of the seven datasets in the
// paper's Table III, plus CSV round-tripping and query-set sampling.
//
// The real datasets sit behind registration walls (Didi GAIA) or are
// tens of GB (OSM); the generators reproduce the properties the
// experiments exercise — cardinality, length distribution, spatial
// span, and hot-spot skew — as documented in DESIGN.md.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repose/internal/geo"
)

// Spec describes a synthetic dataset.
type Spec struct {
	Name        string
	Cardinality int
	AvgLen      int     // mean points per trajectory
	SpanX       float64 // spatial span, degrees
	SpanY       float64
	Hotspots    int // number of hot-spot attractors (density skew)
	Seed        int64
}

// Paper preprocessing limits (Section VII-A): trajectories shorter
// than MinLen are removed and longer than MaxLen are split.
const (
	MinLen = 10
	MaxLen = 1000
)

// PaperSpecs returns the seven datasets of Table III with
// cardinalities multiplied by scale (the paper's run on 16 machines;
// scale ≈ 1/64 makes single-machine runs tractable while preserving
// relative dataset sizes). Scale does not alter lengths or spans.
func PaperSpecs(scale float64) []Spec {
	if scale <= 0 {
		scale = 1
	}
	card := func(n int) int {
		c := int(float64(n) * scale)
		if c < 50 {
			c = 50
		}
		return c
	}
	return []Spec{
		{Name: "T-drive", Cardinality: card(356228), AvgLen: 23, SpanX: 1.89, SpanY: 1.17, Hotspots: 40, Seed: 101},
		{Name: "SF", Cardinality: card(343696), AvgLen: 28, SpanX: 0.54, SpanY: 0.76, Hotspots: 30, Seed: 102},
		{Name: "Rome", Cardinality: card(99473), AvgLen: 152, SpanX: 1.21, SpanY: 0.86, Hotspots: 25, Seed: 103},
		{Name: "Porto", Cardinality: card(1613284), AvgLen: 49, SpanX: 11.7, SpanY: 14.2, Hotspots: 60, Seed: 104},
		{Name: "Xian", Cardinality: card(6645727), AvgLen: 230, SpanX: 0.09, SpanY: 0.08, Hotspots: 20, Seed: 105},
		{Name: "Chengdu", Cardinality: card(11327466), AvgLen: 189, SpanX: 0.09, SpanY: 0.07, Hotspots: 20, Seed: 106},
		{Name: "OSM", Cardinality: card(4464399), AvgLen: 596, SpanX: 360, SpanY: 180, Hotspots: 120, Seed: 107},
	}
}

// ByName finds a paper spec by (case-sensitive) name.
func ByName(name string, scale float64) (Spec, error) {
	for _, s := range PaperSpecs(scale) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Region returns the dataset's spatial extent (anchored at the
// origin; absolute geographic offsets do not affect distances).
func (s Spec) Region() geo.Rect {
	return geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: s.SpanX, Y: s.SpanY}}
}

// DefaultDelta returns the grid cell side δ the benchmark suite uses
// for the named dataset. bench_test.go and repose-bench -benchjson
// share this single definition so their numbers stay comparable.
func DefaultDelta(name string) float64 {
	switch name {
	case "T-drive":
		return 0.15
	case "Xian":
		return 0.01
	case "OSM":
		return 1.0
	default:
		return 0.05
	}
}

// Generate produces the dataset deterministically from its seed.
// Trajectories are hot-spot-to-hot-spot walks with heading momentum:
// a start attractor and destination attractor are drawn with skewed
// popularity, and the walk advances toward the destination with
// per-step noise, yielding road-like shapes with dense cores.
func Generate(spec Spec) []*geo.Trajectory {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.Hotspots < 2 {
		spec.Hotspots = 2
	}
	if spec.AvgLen < MinLen {
		spec.AvgLen = MinLen
	}
	hx := make([]geo.Point, spec.Hotspots)
	for i := range hx {
		hx[i] = geo.Point{X: rng.Float64() * spec.SpanX, Y: rng.Float64() * spec.SpanY}
	}
	// Zipf-ish hotspot popularity.
	weights := make([]float64, spec.Hotspots)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	pick := func() geo.Point {
		r := rng.Float64() * total
		for i, w := range weights {
			r -= w
			if r <= 0 {
				return hx[i]
			}
		}
		return hx[len(hx)-1]
	}

	ds := make([]*geo.Trajectory, 0, spec.Cardinality)
	for id := 0; len(ds) < spec.Cardinality; id++ {
		n := int(float64(spec.AvgLen) + rng.NormFloat64()*float64(spec.AvgLen)/3)
		if n < MinLen {
			n = MinLen
		}
		if n > MaxLen {
			n = MaxLen
		}
		start := jitter(rng, pick(), spec.SpanX*0.02, spec.SpanY*0.02)
		dest := jitter(rng, pick(), spec.SpanX*0.02, spec.SpanY*0.02)
		tr := walk(rng, len(ds), start, dest, n, spec)
		ds = append(ds, tr)
	}
	return ds
}

func jitter(rng *rand.Rand, p geo.Point, sx, sy float64) geo.Point {
	return geo.Point{X: p.X + rng.NormFloat64()*sx, Y: p.Y + rng.NormFloat64()*sy}
}

// walk generates one trajectory of exactly n points from start
// toward dest with heading momentum and noise, clamped to the region.
func walk(rng *rand.Rand, id int, start, dest geo.Point, n int, spec Spec) *geo.Trajectory {
	pts := make([]geo.Point, 0, n)
	cur := clampPoint(start, spec)
	// Step length so the walk roughly spans start→dest in n steps.
	span := start.Dist(dest)
	if span == 0 {
		span = (spec.SpanX + spec.SpanY) / 200
	}
	step := span / float64(n)
	hdgX, hdgY := dest.X-start.X, dest.Y-start.Y
	norm := math.Hypot(hdgX, hdgY)
	if norm == 0 {
		hdgX, hdgY = 1, 0
	} else {
		hdgX, hdgY = hdgX/norm, hdgY/norm
	}
	for i := 0; i < n; i++ {
		pts = append(pts, cur)
		// Blend current heading with the direction to the
		// destination, plus turn noise.
		dx, dy := dest.X-cur.X, dest.Y-cur.Y
		dn := math.Hypot(dx, dy)
		if dn > 0 {
			dx, dy = dx/dn, dy/dn
		}
		hdgX = 0.8*hdgX + 0.2*dx + rng.NormFloat64()*0.3
		hdgY = 0.8*hdgY + 0.2*dy + rng.NormFloat64()*0.3
		hn := math.Hypot(hdgX, hdgY)
		if hn > 0 {
			hdgX, hdgY = hdgX/hn, hdgY/hn
		}
		cur = clampPoint(geo.Point{X: cur.X + hdgX*step, Y: cur.Y + hdgY*step}, spec)
	}
	return &geo.Trajectory{ID: id, Points: pts}
}

func clampPoint(p geo.Point, spec Spec) geo.Point {
	return geo.Point{
		X: math.Min(math.Max(p.X, 0), spec.SpanX),
		Y: math.Min(math.Max(p.Y, 0), spec.SpanY),
	}
}

// Queries samples n distinct trajectories from ds uniformly at random
// (the paper's query workload: 100 random trajectories), returning
// copies so callers may mutate them.
func Queries(ds []*geo.Trajectory, n int, seed int64) []*geo.Trajectory {
	if n > len(ds) {
		n = len(ds)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*geo.Trajectory, 0, n)
	for _, i := range rng.Perm(len(ds))[:n] {
		out = append(out, ds[i].Clone())
	}
	return out
}
