package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repose/internal/geo"
)

// Write streams trajectories as CSV, one line per trajectory:
//
//	id,x1,y1,x2,y2,...
func Write(w io.Writer, ds []*geo.Trajectory) error {
	bw := bufio.NewWriter(w)
	for _, tr := range ds {
		if _, err := fmt.Fprintf(bw, "%d", tr.ID); err != nil {
			return err
		}
		for _, p := range tr.Points {
			if _, err := fmt.Fprintf(bw, ",%g,%g", p.X, p.Y); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the CSV format produced by Write.
func Read(r io.Reader) ([]*geo.Trajectory, error) {
	var ds []*geo.Trajectory
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields)%2 != 1 {
			return nil, fmt.Errorf("dataset: line %d: even field count %d", line, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad id: %v", line, err)
		}
		tr := &geo.Trajectory{ID: id}
		for i := 1; i < len(fields); i += 2 {
			x, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad x: %v", line, err)
			}
			y, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad y: %v", line, err)
			}
			tr.Points = append(tr.Points, geo.Point{X: x, Y: y})
		}
		ds = append(ds, tr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}

// Save writes ds to a CSV file.
func Save(path string, ds []*geo.Trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, ds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a CSV file produced by Save.
func Load(path string) ([]*geo.Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
