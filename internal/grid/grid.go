// Package grid implements the regular l×l grid that REPOSE lays over
// the enclosing square region A (Section III-A). Each cell has a
// unique z-value and a reference point (the cell center). The grid
// converts trajectories into reference trajectories: the sequences of
// z-values their points traverse.
package grid

import (
	"errors"
	"fmt"
	"math"

	"repose/internal/geo"
	"repose/internal/zorder"
)

// Cell is one grid cell: its z-value, its reference point (center),
// and its extent.
type Cell struct {
	Z      uint64
	Center geo.Point
	Rect   geo.Rect
}

// Grid partitions a square region with side U into 2^Bits × 2^Bits
// cells of side Delta = U / 2^Bits.
type Grid struct {
	Origin geo.Point // min corner of the enclosing square A
	U      float64   // side length of A
	Delta  float64   // effective cell side length δ
	Bits   int       // cells per axis = 1<<Bits
}

// New builds a grid over region (which is squared up if necessary)
// with the requested cell side length delta. Following the paper,
// the number of cells per axis l = U/δ must be a power of two, so the
// effective Delta is U / 2^⌈log2(U/δ)⌉ ≤ delta.
func New(region geo.Rect, delta float64) (*Grid, error) {
	if region.IsEmpty() {
		return nil, errors.New("grid: empty region")
	}
	if delta <= 0 {
		return nil, errors.New("grid: delta must be positive")
	}
	u := math.Max(region.Max.X-region.Min.X, region.Max.Y-region.Min.Y)
	if u <= 0 {
		return nil, errors.New("grid: region has no extent")
	}
	bits := 1
	for float64(int64(1)<<uint(bits))*delta < u && bits < zorder.MaxBits {
		bits++
	}
	l := float64(int64(1) << uint(bits))
	return &Grid{
		Origin: region.Min,
		U:      u,
		Delta:  u / l,
		Bits:   bits,
	}, nil
}

// NewWithBits builds a grid with an explicit resolution of bits bits
// per axis (2^bits cells per axis).
func NewWithBits(region geo.Rect, bits int) (*Grid, error) {
	if region.IsEmpty() {
		return nil, errors.New("grid: empty region")
	}
	if bits < 1 || bits > zorder.MaxBits {
		return nil, fmt.Errorf("grid: bits %d out of range [1, %d]", bits, zorder.MaxBits)
	}
	u := math.Max(region.Max.X-region.Min.X, region.Max.Y-region.Min.Y)
	if u <= 0 {
		return nil, errors.New("grid: region has no extent")
	}
	l := float64(int64(1) << uint(bits))
	return &Grid{Origin: region.Min, U: u, Delta: u / l, Bits: bits}, nil
}

// Side returns the number of cells per axis.
func (g *Grid) Side() int { return 1 << uint(g.Bits) }

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return 1 << uint(2*g.Bits) }

// coords returns the cell coordinates of p, clamped into the grid.
// Clamping matters for query trajectories that stray outside A.
func (g *Grid) coords(p geo.Point) (uint32, uint32) {
	max := int64(g.Side() - 1)
	cx := int64(math.Floor((p.X - g.Origin.X) / g.Delta))
	cy := int64(math.Floor((p.Y - g.Origin.Y) / g.Delta))
	cx = min64(max64(cx, 0), max)
	cy = min64(max64(cy, 0), max)
	return uint32(cx), uint32(cy)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ZOf returns the z-value of the cell containing p.
func (g *Grid) ZOf(p geo.Point) uint64 {
	cx, cy := g.coords(p)
	return zorder.Encode(cx, cy, g.Bits)
}

// CellOf returns the cell containing p.
func (g *Grid) CellOf(p geo.Point) Cell { return g.CellByZ(g.ZOf(p)) }

// CellByZ reconstructs the cell with the given z-value.
func (g *Grid) CellByZ(z uint64) Cell {
	cx, cy := zorder.Decode(z, g.Bits)
	minp := geo.Point{
		X: g.Origin.X + float64(cx)*g.Delta,
		Y: g.Origin.Y + float64(cy)*g.Delta,
	}
	maxp := geo.Point{X: minp.X + g.Delta, Y: minp.Y + g.Delta}
	return Cell{
		Z:      z,
		Center: geo.Point{X: minp.X + g.Delta/2, Y: minp.Y + g.Delta/2},
		Rect:   geo.Rect{Min: minp, Max: maxp},
	}
}

// Reference converts a trajectory into its reference trajectory: the
// sequence of z-values of the cells its points traverse, with runs of
// consecutive identical z-values collapsed to one. (Collapsing is why
// reference trajectories grow longer as δ shrinks — cf. the Table V
// discussion in the paper.)
func (g *Grid) Reference(t *geo.Trajectory) []uint64 {
	if len(t.Points) == 0 {
		return nil
	}
	zs := make([]uint64, 0, len(t.Points))
	var last uint64
	for i, p := range t.Points {
		z := g.ZOf(p)
		if i == 0 || z != last {
			zs = append(zs, z)
			last = z
		}
	}
	return zs
}

// ReferencePoints maps a z-value sequence to the corresponding
// reference points (cell centers).
func (g *Grid) ReferencePoints(zs []uint64) []geo.Point {
	pts := make([]geo.Point, len(zs))
	for i, z := range zs {
		pts[i] = g.CellByZ(z).Center
	}
	return pts
}

// ReferenceTrajectory returns the reference trajectory of t as a
// trajectory over reference points, preserving t's ID (Definition 4).
func (g *Grid) ReferenceTrajectory(t *geo.Trajectory) *geo.Trajectory {
	return &geo.Trajectory{ID: t.ID, Points: g.ReferencePoints(g.Reference(t))}
}

// HalfDiagonal returns √2·δ/2, the maximum distance between a point
// and the reference point of its cell. It appears in every bound of
// Section IV.
func (g *Grid) HalfDiagonal() float64 { return math.Sqrt2 * g.Delta / 2 }

// CoarseKey encodes a trajectory at a coarser resolution (res bits
// per axis, res ≤ Bits) as the collapsed sequence of coarse z-values.
// The heterogeneous partitioner uses this as the geohash signature of
// Section V-B: two trajectories cluster together iff their coarse
// signatures are identical.
func (g *Grid) CoarseKey(t *geo.Trajectory, res int) string {
	if res < 1 {
		res = 1
	}
	if res > g.Bits {
		res = g.Bits
	}
	buf := make([]byte, 0, len(t.Points)*8)
	var last uint64
	first := true
	for _, p := range t.Points {
		z := zorder.AtResolution(g.ZOf(p), g.Bits, res)
		if first || z != last {
			// Append the 8-byte big-endian encoding of z.
			for s := 56; s >= 0; s -= 8 {
				buf = append(buf, byte(z>>uint(s)))
			}
			last = z
			first = false
		}
	}
	return string(buf)
}
