package grid

import (
	"math"
	"testing"
	"testing/quick"

	"repose/internal/geo"
)

func unitRegion() geo.Rect {
	return geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
}

func TestNewRoundsToPowerOfTwo(t *testing.T) {
	g, err := New(unitRegion(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Side() != 8 {
		t.Errorf("Side = %d, want 8", g.Side())
	}
	if g.Delta != 1.0 {
		t.Errorf("Delta = %v, want 1", g.Delta)
	}
	// delta=0.9 forces 16 cells per axis, effective delta = 0.5.
	g2, err := New(unitRegion(), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Side() != 16 || g2.Delta != 0.5 {
		t.Errorf("Side = %d Delta = %v, want 16, 0.5", g2.Side(), g2.Delta)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(geo.EmptyRect(), 1); err == nil {
		t.Error("expected error for empty region")
	}
	if _, err := New(unitRegion(), 0); err == nil {
		t.Error("expected error for zero delta")
	}
	if _, err := New(unitRegion(), -2); err == nil {
		t.Error("expected error for negative delta")
	}
	if _, err := NewWithBits(unitRegion(), 0); err == nil {
		t.Error("expected error for zero bits")
	}
	if _, err := NewWithBits(unitRegion(), 99); err == nil {
		t.Error("expected error for excessive bits")
	}
}

// TestPaperRunningExample reproduces Fig. 1: an 8×8 grid over [0,8)².
// τq's points (0.5,6.5), (2.5,6.5), (4.5,6.5) sit in cells with
// coordinates (0,6), (2,6), (4,6).
func TestPaperRunningExample(t *testing.T) {
	g, err := NewWithBits(unitRegion(), 3)
	if err != nil {
		t.Fatal(err)
	}
	q := &geo.Trajectory{Points: []geo.Point{{X: 0.5, Y: 6.5}, {X: 2.5, Y: 6.5}, {X: 4.5, Y: 6.5}}}
	zs := g.Reference(q)
	if len(zs) != 3 {
		t.Fatalf("reference length = %d, want 3", len(zs))
	}
	// Centers must equal the sample points themselves (they were
	// chosen at cell centers).
	for i, p := range g.ReferencePoints(zs) {
		if p != q.Points[i] {
			t.Errorf("reference point %d = %v, want %v", i, p, q.Points[i])
		}
	}
}

func TestCellOfCenterRoundTrip(t *testing.T) {
	g, _ := NewWithBits(unitRegion(), 3)
	f := func(px, py float64) bool {
		p := geo.Point{X: math.Mod(math.Abs(px), 8), Y: math.Mod(math.Abs(py), 8)}
		c := g.CellOf(p)
		if !c.Rect.Contains(p) {
			return false
		}
		// Center is within half-diagonal of any point in the cell.
		return p.Dist(c.Center) <= g.HalfDiagonal()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClampOutside(t *testing.T) {
	g, _ := NewWithBits(unitRegion(), 3)
	// Points outside the region clamp to edge cells rather than panic.
	c := g.CellOf(geo.Point{X: -5, Y: 100})
	if c.Rect.Min.X != 0 {
		t.Errorf("x clamp: %v", c)
	}
	if c.Rect.Max.Y != 8 {
		t.Errorf("y clamp: %v", c)
	}
	c2 := g.CellOf(geo.Point{X: 8.0, Y: 8.0}) // exactly max corner
	if c2.Rect.Max.X != 8 || c2.Rect.Max.Y != 8 {
		t.Errorf("max corner clamp: %v", c2)
	}
}

func TestReferenceCollapsesDuplicates(t *testing.T) {
	g, _ := NewWithBits(unitRegion(), 3)
	tr := &geo.Trajectory{Points: []geo.Point{
		{X: 0.5, Y: 0.5}, {X: 0.6, Y: 0.6}, {X: 0.7, Y: 0.2}, // same cell (0,0)
		{X: 1.5, Y: 0.5}, // cell (1,0)
		{X: 0.5, Y: 0.5}, // back to (0,0): kept, only consecutive collapse
	}}
	zs := g.Reference(tr)
	if len(zs) != 3 {
		t.Fatalf("reference length = %d, want 3 (%v)", len(zs), zs)
	}
	if zs[0] != zs[2] {
		t.Error("revisited cell should reappear")
	}
	if zs[0] == zs[1] {
		t.Error("distinct cells must differ")
	}
}

func TestReferenceEmpty(t *testing.T) {
	g, _ := NewWithBits(unitRegion(), 3)
	if got := g.Reference(&geo.Trajectory{}); got != nil {
		t.Errorf("empty reference = %v", got)
	}
}

func TestReferenceTrajectoryKeepsID(t *testing.T) {
	g, _ := NewWithBits(unitRegion(), 3)
	tr := &geo.Trajectory{ID: 42, Points: []geo.Point{{X: 1, Y: 1}, {X: 5, Y: 5}}}
	ref := g.ReferenceTrajectory(tr)
	if ref.ID != 42 {
		t.Errorf("ID = %d", ref.ID)
	}
	if len(ref.Points) != 2 {
		t.Errorf("len = %d", len(ref.Points))
	}
}

func TestHalfDiagonal(t *testing.T) {
	g, _ := NewWithBits(unitRegion(), 3)
	want := math.Sqrt2 * 1.0 / 2
	if math.Abs(g.HalfDiagonal()-want) > 1e-12 {
		t.Errorf("HalfDiagonal = %v, want %v", g.HalfDiagonal(), want)
	}
}

// TestHalfDiagonalBoundsReferenceError checks the key inequality
// behind every bound in the paper: d(p, reference(p)) ≤ √2δ/2.
func TestHalfDiagonalBoundsReferenceError(t *testing.T) {
	g, _ := NewWithBits(unitRegion(), 4)
	f := func(px, py float64) bool {
		p := geo.Point{X: math.Mod(math.Abs(px), 8), Y: math.Mod(math.Abs(py), 8)}
		return p.Dist(g.CellOf(p).Center) <= g.HalfDiagonal()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCoarseKey(t *testing.T) {
	g, _ := NewWithBits(unitRegion(), 3)
	a := &geo.Trajectory{Points: []geo.Point{{X: 0.5, Y: 0.5}, {X: 1.5, Y: 1.5}}}
	b := &geo.Trajectory{Points: []geo.Point{{X: 0.9, Y: 0.9}, {X: 2.5, Y: 2.5}}}
	// At the coarsest resolution both live in the same 4x4-quadrant
	// sequence, so keys collide.
	if g.CoarseKey(a, 1) != g.CoarseKey(b, 1) {
		t.Error("coarse keys should match at res 1")
	}
	// At full resolution they differ (different cell sequences).
	if g.CoarseKey(a, 3) == g.CoarseKey(b, 3) {
		t.Error("keys should differ at res 3")
	}
	// res is clamped.
	if g.CoarseKey(a, 0) != g.CoarseKey(a, 1) {
		t.Error("res clamps to 1")
	}
	if g.CoarseKey(a, 99) != g.CoarseKey(a, 3) {
		t.Error("res clamps to Bits")
	}
}

func TestCoarseKeyDistinguishesDirection(t *testing.T) {
	g, _ := NewWithBits(unitRegion(), 3)
	ab := &geo.Trajectory{Points: []geo.Point{{X: 0.5, Y: 0.5}, {X: 7.5, Y: 7.5}}}
	ba := &geo.Trajectory{Points: []geo.Point{{X: 7.5, Y: 7.5}, {X: 0.5, Y: 0.5}}}
	if g.CoarseKey(ab, 3) == g.CoarseKey(ba, 3) {
		t.Error("reversed trajectories should have different keys")
	}
}

func TestNumCells(t *testing.T) {
	g, _ := NewWithBits(unitRegion(), 3)
	if g.NumCells() != 64 {
		t.Errorf("NumCells = %d, want 64", g.NumCells())
	}
}

func TestCellByZCoversGridExactly(t *testing.T) {
	g, _ := NewWithBits(unitRegion(), 2)
	var area float64
	for z := uint64(0); z < uint64(g.NumCells()); z++ {
		c := g.CellByZ(z)
		area += c.Rect.Area()
		if c.Z != z {
			t.Errorf("CellByZ(%d).Z = %d", z, c.Z)
		}
	}
	if math.Abs(area-64) > 1e-9 {
		t.Errorf("total cell area = %v, want 64", area)
	}
}
