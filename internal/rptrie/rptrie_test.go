package rptrie

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/oracle"
	"repose/internal/pivot"
	"repose/internal/topk"
)

func mkTraj(id int, xy ...float64) *geo.Trajectory {
	t := &geo.Trajectory{ID: id}
	for i := 0; i < len(xy); i += 2 {
		t.Points = append(t.Points, geo.Point{X: xy[i], Y: xy[i+1]})
	}
	return t
}

// paperDataset returns the running example of Table II / Fig. 1.
func paperDataset() ([]*geo.Trajectory, *geo.Trajectory, *grid.Grid) {
	ds := []*geo.Trajectory{
		mkTraj(1, 0.5, 7.5, 2.5, 7.5, 6.5, 7.5, 6.5, 4.5),
		mkTraj(2, 1.5, 0.5, 2.5, 0.5, 2.5, 4.5, 4.5, 4.5),
		mkTraj(3, 4.5, 0.5, 7.5, 0.5, 7.5, 2.5, 4.5, 2.5, 4.5, 1.5),
		mkTraj(4, 0.5, 7.5, 2.5, 7.5, 5.5, 7.5, 5.5, 3.5),
		mkTraj(5, 1.5, 0.5, 2.5, 0.5, 2.5, 5.5, 0.5, 5.5, 0.5, 2.5),
	}
	q := mkTraj(0, 0.5, 6.5, 2.5, 6.5, 4.5, 6.5)
	g, err := grid.NewWithBits(geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}, 3)
	if err != nil {
		panic(err)
	}
	return ds, q, g
}

// TestPaperExample1TopK pins Example 1: the top-2 Hausdorff result
// for τq is {τ1, τ4}.
func TestPaperExample1TopK(t *testing.T) {
	ds, q, g := paperDataset()
	for _, optimize := range []bool{false, true} {
		tr, err := Build(Config{Measure: dist.Hausdorff, Grid: g, Optimize: optimize}, ds)
		if err != nil {
			t.Fatal(err)
		}
		res := tr.Search(q.Points, 2)
		if len(res) != 2 {
			t.Fatalf("optimize=%v: got %d results", optimize, len(res))
		}
		ids := []int{res[0].ID, res[1].ID}
		if ids[0] != 1 || ids[1] != 4 {
			t.Errorf("optimize=%v: top-2 = %v, want [1 4]", optimize, ids)
		}
	}
}

// randomDataset builds trajectories with mild spatial clustering so
// pruning has something to do.
func randomDataset(rng *rand.Rand, n int) []*geo.Trajectory {
	ds := make([]*geo.Trajectory, n)
	for i := range ds {
		// Cluster centers make some trajectories near-duplicates.
		cx := float64(rng.Intn(4))*2 + 0.5
		cy := float64(rng.Intn(4))*2 + 0.5
		m := 1 + rng.Intn(10)
		pts := make([]geo.Point, m)
		x, y := cx, cy
		for j := range pts {
			pts[j] = geo.Point{X: clampF(x, 0, 8), Y: clampF(y, 0, 8)}
			x += rng.NormFloat64() * 0.4
			y += rng.NormFloat64() * 0.4
		}
		ds[i] = &geo.Trajectory{ID: i, Points: pts}
	}
	return ds
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func sameResults(a, b []topk.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// assertTopK checks that got is a valid top-k answer: the distance
// profile matches brute force exactly, and each reported distance is
// the true distance of the reported trajectory. Result sets may
// legitimately differ from brute force inside groups of tied
// distances (Definition 3 assumes distinct distances).
func assertTopK(t *testing.T, ctx string, m dist.Measure, p dist.Params, ds []*geo.Trajectory, q []geo.Point, k int, got []topk.Item) {
	t.Helper()
	want := oracle.TopK(m, p, ds, q, k)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", ctx, len(got), len(want))
	}
	byID := make(map[int]*geo.Trajectory, len(ds))
	for _, tr := range ds {
		byID[tr.ID] = tr
	}
	seen := make(map[int]bool)
	for i := range got {
		if d := got[i].Dist - want[i].Dist; d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s: rank %d distance = %v, want %v\ngot  %v\nwant %v",
				ctx, i, got[i].Dist, want[i].Dist, got, want)
		}
		if seen[got[i].ID] {
			t.Fatalf("%s: duplicate id %d in results", ctx, got[i].ID)
		}
		seen[got[i].ID] = true
		tr, ok := byID[got[i].ID]
		if !ok {
			t.Fatalf("%s: unknown id %d", ctx, got[i].ID)
		}
		exact := dist.Distance(m, q, tr.Points, p)
		if d := got[i].Dist - exact; d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s: id %d reported %v, true distance %v", ctx, got[i].ID, got[i].Dist, exact)
		}
	}
}

// TestSearchMatchesBruteForce is the index's end-to-end correctness
// test: for every measure and every optimization combination, the
// trie's top-k equals the brute-force top-k.
func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{X: 0, Y: 0}}

	for trial := 0; trial < 12; trial++ {
		ds := randomDataset(rng, 80)
		q := randomDataset(rng, 1)[0]
		for _, m := range dist.Measures() {
			pivots := pivot.Select(ds, 3, 5, m, p, 7)
			configs := []Config{
				{Measure: m, Params: p, Grid: g},
				{Measure: m, Params: p, Grid: g, Pivots: pivots},
				{Measure: m, Params: p, Grid: g, Pivots: pivots, DisableLBt: true},
				{Measure: m, Params: p, Grid: g, Pivots: pivots, DisableLBp: true},
			}
			if m.OrderIndependent() {
				configs = append(configs,
					Config{Measure: m, Params: p, Grid: g, Optimize: true},
					Config{Measure: m, Params: p, Grid: g, Optimize: true, Pivots: pivots},
				)
			}
			for ci, cfg := range configs {
				trie, err := Build(cfg, ds)
				if err != nil {
					t.Fatalf("%v cfg %d: %v", m, ci, err)
				}
				for _, k := range []int{1, 5, 17} {
					got := trie.Search(q.Points, k)
					ctx := fmt.Sprintf("%v cfg %d k=%d trial %d", m, ci, k, trial)
					assertTopK(t, ctx, m, p, ds, q.Points, k, got)
				}
			}
		}
	}
}

// TestSearchPrefixReference covers reference trajectories that are
// prefixes of others (the '$' terminator case of Section III-B).
func TestSearchPrefixReference(t *testing.T) {
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, _ := grid.NewWithBits(region, 3)
	ds := []*geo.Trajectory{
		mkTraj(1, 0.5, 0.5, 1.5, 0.5),                     // cells A,B
		mkTraj(2, 0.5, 0.5, 1.5, 0.5, 2.5, 0.5),           // cells A,B,C
		mkTraj(3, 0.5, 0.5, 1.5, 0.5, 2.5, 0.5, 3.5, 0.5), // cells A,B,C,D
	}
	trie, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	q := []geo.Point{{X: 0.5, Y: 0.5}, {X: 1.5, Y: 0.5}}
	got := trie.Search(q, 3)
	want := oracle.TopK(dist.Hausdorff, dist.Params{}, ds, q, 3)
	if !sameResults(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if got[0].ID != 1 || got[0].Dist != 0 {
		t.Errorf("exact match should rank first: %v", got)
	}
}

// TestSearchDuplicateReferences: many trajectories sharing one leaf.
func TestSearchDuplicateReferences(t *testing.T) {
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, _ := grid.NewWithBits(region, 2) // coarse: cells of side 2
	rng := rand.New(rand.NewSource(3))
	var ds []*geo.Trajectory
	for i := 0; i < 30; i++ {
		// All in the same two cells, different actual points.
		ds = append(ds, mkTraj(i,
			0.3+rng.Float64(), 0.3+rng.Float64(),
			2.3+rng.Float64(), 0.3+rng.Float64()))
	}
	trie, err := Build(Config{Measure: dist.Frechet, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if trie.NumLeaves() != 1 {
		t.Fatalf("expected a single shared leaf, got %d", trie.NumLeaves())
	}
	q := []geo.Point{{X: 1, Y: 1}, {X: 3, Y: 1}}
	got := trie.Search(q, 5)
	want := oracle.TopK(dist.Frechet, dist.Params{}, ds, q, 5)
	if !sameResults(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestBuildErrors(t *testing.T) {
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, _ := grid.NewWithBits(region, 3)
	if _, err := Build(Config{Measure: dist.Hausdorff}, nil); err == nil {
		t.Error("nil grid should fail")
	}
	if _, err := Build(Config{Measure: dist.Frechet, Grid: g, Optimize: true}, nil); err == nil {
		t.Error("optimize with order-dependent measure should fail")
	}
	if _, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, []*geo.Trajectory{{ID: 1}}); err == nil {
		t.Error("empty trajectory should fail")
	}
	dup := []*geo.Trajectory{mkTraj(1, 1, 1), mkTraj(1, 2, 2)}
	if _, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, dup); err == nil {
		t.Error("duplicate ids should fail")
	}
}

func TestSearchEdgeCases(t *testing.T) {
	ds, q, g := paperDataset()
	trie, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res := trie.Search(q.Points, 0); res != nil {
		t.Errorf("k=0 → %v", res)
	}
	if res := trie.Search(nil, 3); res != nil {
		t.Errorf("empty query → %v", res)
	}
	// k beyond dataset size returns everything.
	res := trie.Search(q.Points, 100)
	if len(res) != 5 {
		t.Errorf("k>N returned %d results", len(res))
	}
	// Empty index.
	empty, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := empty.Search(q.Points, 3); res != nil {
		t.Errorf("empty index → %v", res)
	}
}

// TestOptimizedTrieSmaller reproduces the Fig. 7 phenomenon: on data
// with shared cells in different orders, re-arrangement reduces the
// node count and never changes results.
func TestOptimizedTrieSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, _ := grid.NewWithBits(region, 3)
	// Trajectories visiting the same few cells in shuffled orders.
	cells := []geo.Point{{X: 0.5, Y: 0.5}, {X: 2.5, Y: 0.5}, {X: 4.5, Y: 0.5}, {X: 6.5, Y: 0.5}, {X: 0.5, Y: 2.5}}
	var ds []*geo.Trajectory
	for i := 0; i < 40; i++ {
		perm := rng.Perm(len(cells))
		n := 2 + rng.Intn(len(cells)-1)
		tr := &geo.Trajectory{ID: i}
		for _, j := range perm[:n] {
			tr.Points = append(tr.Points, cells[j])
		}
		ds = append(ds, tr)
	}
	basic, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Build(Config{Measure: dist.Hausdorff, Grid: g, Optimize: true}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumNodes() >= basic.NumNodes() {
		t.Errorf("optimized trie has %d nodes, basic %d", opt.NumNodes(), basic.NumNodes())
	}
	q := []geo.Point{{X: 1, Y: 1}, {X: 3, Y: 1}}
	assertTopK(t, "optimized", dist.Hausdorff, dist.Params{}, ds, q, 7, opt.Search(q, 7))
	assertTopK(t, "basic", dist.Hausdorff, dist.Params{}, ds, q, 7, basic.Search(q, 7))
}

// TestGreedyHittingSetExample3 pins Appendix B's Example 3: for the
// Table X collection, the first-level children are 0011, 0100, 0101
// (greedy most-frequent order).
func TestGreedyHittingSetExample3(t *testing.T) {
	// Six cells: 0001, 0010, 0011, 0100, 0101, 0110 (z-values on a
	// 4x4 grid). Build the reference sets of Table X directly.
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 4, Y: 4}}
	g, _ := grid.NewWithBits(region, 2) // 16 cells, z-values 0..15
	// Cell center for a z-value on this grid.
	center := func(z uint64) geo.Point { return g.CellByZ(z).Center }
	sets := [][]uint64{
		{0b0001, 0b0011},
		{0b0001, 0b0011, 0b0101},
		{0b0010, 0b0011},
		{0b0010, 0b0011, 0b0101},
		{0b0011, 0b0101},
		{0b0001, 0b0100},
		{0b0010, 0b0100},
		{0b0101, 0b0110},
	}
	var ds []*geo.Trajectory
	for i, zs := range sets {
		tr := &geo.Trajectory{ID: i + 1}
		for _, z := range zs {
			tr.Points = append(tr.Points, center(z))
		}
		ds = append(ds, tr)
	}
	trie, err := Build(Config{Measure: dist.Hausdorff, Grid: g, Optimize: true}, ds)
	if err != nil {
		t.Fatal(err)
	}
	var rootKids []uint64
	for _, c := range trie.state().root.children {
		rootKids = append(rootKids, c.z)
	}
	sort.Slice(rootKids, func(i, j int) bool { return rootKids[i] < rootKids[j] })
	want := []uint64{0b0011, 0b0100, 0b0101}
	if len(rootKids) != len(want) {
		t.Fatalf("root children = %v, want %v", rootKids, want)
	}
	for i := range want {
		if rootKids[i] != want[i] {
			t.Fatalf("root children = %v, want %v", rootKids, want)
		}
	}
	// The greedy construction yields 11 nodes: 3 at level 1, then 5
	// under 0011 (0101 with children 0001 and 0010, plus 0001 and
	// 0010 for Z1/Z3), 2 under 0100, and 1 under 0101.
	if trie.NumNodes() != 11 {
		t.Errorf("NumNodes = %d, want 11", trie.NumNodes())
	}
}

// TestPruningDoesWork verifies the bounds actually save distance
// computations relative to scanning everything.
func TestPruningDoesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, _ := grid.NewWithBits(region, 5)
	ds := randomDataset(rng, 400)
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	pivots := pivot.Select(ds, 5, 10, dist.Hausdorff, p, 3)
	trie, err := Build(Config{Measure: dist.Hausdorff, Params: p, Grid: g, Pivots: pivots}, ds)
	if err != nil {
		t.Fatal(err)
	}
	q := []geo.Point{{X: 1, Y: 1}, {X: 1.5, Y: 1.2}, {X: 2, Y: 1.4}}
	_, stats := trie.SearchWithStats(q, 5)
	if stats.ExactComputations >= len(ds) {
		t.Errorf("no pruning: %d exact computations for %d trajectories",
			stats.ExactComputations, len(ds))
	}
	if stats.ExactComputations == 0 {
		t.Error("search refined nothing")
	}
}

// TestStatsConsistency: stats fields are self-consistent.
func TestStatsConsistency(t *testing.T) {
	ds, q, g := paperDataset()
	trie, _ := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	res, stats := trie.SearchWithStats(q.Points, 2)
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	if stats.LeavesRefined == 0 || stats.ExactComputations == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.EntriesPushed < stats.NodesExpanded+stats.LeavesRefined {
		t.Errorf("pushed %d < popped %d", stats.EntriesPushed,
			stats.NodesExpanded+stats.LeavesRefined)
	}
}

func TestAccessors(t *testing.T) {
	ds, _, g := paperDataset()
	trie, _ := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if trie.Len() != 5 {
		t.Errorf("Len = %d", trie.Len())
	}
	if trie.Trajectory(3) == nil || trie.Trajectory(3).ID != 3 {
		t.Error("Trajectory(3) lookup failed")
	}
	if trie.Trajectory(99) != nil {
		t.Error("missing id should be nil")
	}
	if trie.NumNodes() <= 0 || trie.MaxDepth() <= 0 {
		t.Errorf("NumNodes=%d MaxDepth=%d", trie.NumNodes(), trie.MaxDepth())
	}
	if trie.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	if trie.Config().Measure != dist.Hausdorff {
		t.Error("Config round-trip failed")
	}
}
