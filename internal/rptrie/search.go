package rptrie

import (
	"container/heap"
	"context"
	"math"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// SearchOptions modulates one query without rebuilding the trie.
type SearchOptions struct {
	// NoPivots skips the pivot lower bound (LBp) for this query,
	// including the up-front query-to-pivot distance computations.
	NoPivots bool
}

// ctxCheckMask throttles context polling: deadlines are checked every
// ctxCheckMask+1 units of search work (heap pops and exact distance
// computations), keeping the checkpoint overhead unmeasurable while
// still stopping a partition scan mid-flight.
const ctxCheckMask = 63

// ctxPoller is the shared throttled cancellation check of the top-k
// search and the range walk.
type ctxPoller struct {
	ctx context.Context // nil: cancellation disabled
	ops int             // work units so far, for throttling
}

// cancelled reports whether the query should abort, polling the
// context only every ctxCheckMask+1 calls.
func (p *ctxPoller) cancelled() bool {
	if p.ctx == nil {
		return false
	}
	p.ops++
	if p.ops&ctxCheckMask != 0 {
		return false
	}
	return p.ctx.Err() != nil
}

// err returns the context's error, nil when cancellation is disabled.
func (p *ctxPoller) err() error {
	if p.ctx == nil {
		return nil
	}
	return p.ctx.Err()
}

// SearchStats summarizes the work one query performed.
type SearchStats struct {
	NodesExpanded     int // internal nodes popped and expanded
	LeavesRefined     int // leaf entries popped and refined
	ExactComputations int // full distance computations on trajectories
	EntriesPushed     int // queue insertions
}

// searchNode abstracts trie navigation so the pointer layout and the
// succinct layout share one best-first search implementation.
type searchNode interface {
	// visitChildren calls fn for each child in ascending z order.
	visitChildren(fn func(z uint64, c searchNode))
	// leafView returns the node's terminal payload, if any.
	leafView() (lv leafView, ok bool)
	// meta returns the subtree metadata for LBo.
	meta() dist.NodeMeta
	// hr returns the pivot distance ranges, or nil.
	hr() []pivot.Range
}

// leafView exposes a terminal payload without committing to a layout.
type leafView struct {
	tids           []int32
	dmax           float64
	minLen, maxLen int
}

// ptrNode adapts *node to searchNode.
type ptrNode struct{ n *node }

func (p ptrNode) visitChildren(fn func(z uint64, c searchNode)) {
	for _, c := range p.n.children {
		fn(c.z, ptrNode{c})
	}
}

func (p ptrNode) leafView() (leafView, bool) {
	if p.n.leaf == nil {
		return leafView{}, false
	}
	l := p.n.leaf
	return leafView{tids: l.tids, dmax: l.dmax, minLen: l.minLen, maxLen: l.maxLen}, true
}

func (p ptrNode) meta() dist.NodeMeta {
	return dist.NodeMeta{MinLen: p.n.minLen, MaxLen: p.n.maxLen, MaxDepthBelow: p.n.maxDepthBelow}
}

func (p ptrNode) hr() []pivot.Range { return p.n.hr }

// Search returns the top-k most similar trajectories to the query
// point sequence q (Algorithm 2). Results order ascending by
// (distance, id); fewer than k results are returned only when the
// index holds fewer than k trajectories. Under tied distances any
// valid top-k set may be returned.
func (t *Trie) Search(q []geo.Point, k int) []topk.Item {
	res, _ := t.SearchWithStats(q, k)
	return res
}

// SearchWithStats is Search, also reporting traversal statistics.
func (t *Trie) SearchWithStats(q []geo.Point, k int) ([]topk.Item, SearchStats) {
	s := searcher{cfg: t.cfg, trajs: t.trajs}
	res, stats, _ := s.run(ptrNode{t.root}, q, k)
	return res, stats
}

// SearchContext is Search honoring per-query options and a context:
// the best-first loop polls ctx periodically and aborts with ctx's
// error once it is cancelled or past its deadline, so a straggler
// partition can be stopped mid-scan (Section V-B's concern).
func (t *Trie) SearchContext(ctx context.Context, q []geo.Point, k int, opt SearchOptions) ([]topk.Item, error) {
	s := searcher{cfg: t.cfg, trajs: t.trajs, ctxPoller: ctxPoller{ctx: ctx}, noPivots: opt.NoPivots}
	res, _, err := s.run(ptrNode{t.root}, q, k)
	return res, err
}

// searcher is the layout-independent best-first top-k search.
type searcher struct {
	ctxPoller
	cfg      Config
	trajs    map[int32]*geo.Trajectory
	noPivots bool
}

func (s *searcher) run(root searchNode, q []geo.Point, k int) ([]topk.Item, SearchStats, error) {
	var stats SearchStats
	if k <= 0 || len(q) == 0 || len(s.trajs) == 0 {
		return nil, stats, nil
	}
	if err := s.err(); err != nil {
		return nil, stats, err
	}
	results := topk.New(k)

	var dqp []float64
	if s.cfg.Pivots != nil && !s.cfg.DisableLBp && !s.noPivots {
		dqp = pivot.Distances(q, s.cfg.Pivots, s.cfg.Measure, s.cfg.Params)
	}

	pq := &entryQueue{}
	rootBounder := dist.NewBounder(s.cfg.Measure, q, s.cfg.Grid.HalfDiagonal(), s.cfg.Params)
	s.expand(root, rootBounder, pq, results, dqp, &stats)

	for pq.Len() > 0 {
		if s.cancelled() {
			return nil, stats, s.err()
		}
		e := heap.Pop(pq).(entry)
		dk := results.Threshold()
		if e.lb >= dk {
			// Every queued entry has lb ≥ e.lb ≥ dk, and lb
			// lower-bounds the distance of every trajectory beneath
			// it, so nothing better remains (Step 2 of Section IV-A).
			break
		}
		if e.isLeaf {
			stats.LeavesRefined++
			if err := s.refine(e.lv, q, results, &stats); err != nil {
				return nil, stats, err
			}
			continue
		}
		stats.NodesExpanded++
		s.expand(e.n, e.b, pq, results, dqp, &stats)
	}
	return results.Results(), stats, nil
}

// expand pushes n's leaf entry (if any) and child entries whose
// bounds do not already exceed the current threshold.
func (s *searcher) expand(n searchNode, b dist.Bounder, pq *entryQueue, results *topk.Heap, dqp []float64, stats *SearchStats) {
	dk := results.Threshold()

	nhr := n.hr()
	lbp := 0.0
	if dqp != nil && nhr != nil {
		lbp = pivot.LowerBound(dqp, nhr)
	}

	if lv, ok := n.leafView(); ok {
		lb := lbp
		if !s.cfg.DisableLBt {
			meta := dist.LeafMeta{
				NodeMeta: dist.NodeMeta{MinLen: lv.minLen, MaxLen: lv.maxLen},
				Dmax:     lv.dmax,
			}
			lb = math.Max(lb, b.LBt(meta))
		} else {
			lb = math.Max(lb, b.LBo(n.meta()))
		}
		if lb < dk {
			heap.Push(pq, entry{lb: lb, lv: lv, isLeaf: true})
			stats.EntriesPushed++
		}
	}

	// Count children first so the last child can take ownership of
	// the bound state instead of cloning it.
	nchild := 0
	n.visitChildren(func(uint64, searchNode) { nchild++ })
	i := 0
	n.visitChildren(func(z uint64, c searchNode) {
		i++
		var cb dist.Bounder
		if i == nchild {
			cb = b
		} else {
			cb = b.Clone()
		}
		cb.Extend(s.cfg.Grid.CellByZ(z))

		clbp := lbp
		if chr := c.hr(); dqp != nil && chr != nil {
			clbp = pivot.LowerBound(dqp, chr)
		}
		lb := math.Max(cb.LBo(c.meta()), clbp)
		if lb < results.Threshold() {
			heap.Push(pq, entry{lb: lb, n: c, b: cb})
			stats.EntriesPushed++
		}
	})
}

// refine computes exact distances for a leaf's members, with
// early-abandoning kernels (Hausdorff, Frechet, DTW) cut off at the
// current threshold. While the result heap is not yet full the
// threshold is +Inf, so no abandoned (+Inf) value can ever be
// retained.
func (s *searcher) refine(lv leafView, q []geo.Point, results *topk.Heap, stats *SearchStats) error {
	for _, tid := range lv.tids {
		if s.cancelled() {
			return s.err()
		}
		tr := s.trajs[tid]
		stats.ExactComputations++
		d := dist.DistanceBounded(s.cfg.Measure, q, tr.Points, s.cfg.Params, results.Threshold())
		results.Push(int(tid), d)
	}
	return nil
}

// entry is one element of the best-first priority queue: either an
// internal node with its bound state, or a leaf awaiting refinement.
type entry struct {
	lb     float64
	n      searchNode
	b      dist.Bounder // nil for leaf entries
	lv     leafView
	isLeaf bool
	seq    int // FIFO tie-break for determinism
}

type entryQueue struct {
	items []entry
	seq   int
}

func (q *entryQueue) Len() int { return len(q.items) }

func (q *entryQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.lb != b.lb {
		return a.lb < b.lb
	}
	return a.seq < b.seq
}

func (q *entryQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *entryQueue) Push(x interface{}) {
	e := x.(entry)
	e.seq = q.seq
	q.seq++
	q.items = append(q.items, e)
}

func (q *entryQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	e := old[n-1]
	q.items = old[:n-1]
	return e
}
