package rptrie

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// SearchOptions modulates one query without rebuilding the trie.
type SearchOptions struct {
	// NoPivots skips the pivot lower bound (LBp) for this query,
	// including the up-front query-to-pivot distance computations.
	NoPivots bool

	// RefineWorkers parallelizes exact-distance refinement of fat
	// leaves across this many goroutines (values < 2 refine
	// sequentially). Results are identical to the sequential path;
	// see doc.go for the admissibility argument behind the shared
	// atomic threshold.
	RefineWorkers int

	// MinGen pins the query to index generation MinGen or newer: the
	// query fails with ErrStale instead of answering from an older
	// snapshot. 0 (the default) accepts any snapshot. Mutations are
	// applied synchronously, so a pin taken from a completed mutation
	// never fails on the index it mutated; the pin guards replicas
	// and read-your-writes plumbing (see internal/cluster).
	MinGen uint64

	// Stats, when non-nil, receives the query's traversal statistics —
	// the per-call form of SearchWithStats that the context entry
	// points support, so scatter layers can account refinement work
	// per partition without a second search.
	Stats *SearchStats

	// Refiner replaces the default whole-trajectory exact-distance
	// leaf refinement (nil keeps it). A subsequence refiner switches
	// the traversal to the segment bounds; see Refiner.
	Refiner Refiner
}

// ctxCheckMask throttles context polling: deadlines are checked every
// ctxCheckMask+1 units of search work (heap pops and exact distance
// computations), keeping the checkpoint overhead unmeasurable while
// still stopping a partition scan mid-flight.
const ctxCheckMask = 63

// minParallelLeaf is the smallest leaf (member count) worth spawning
// refinement workers for; smaller leaves refine sequentially even
// when RefineWorkers is set.
const minParallelLeaf = 4

// ctxPoller is the throttled cancellation check of the top-k search
// and the range walk. It is single-goroutine state: concurrent
// refinement workers each get their own poller (sharing one would
// race on ops).
type ctxPoller struct {
	ctx context.Context // nil: cancellation disabled
	ops int             // work units so far, for throttling
}

// cancelled reports whether the query should abort, polling the
// context only every ctxCheckMask+1 calls.
func (p *ctxPoller) cancelled() bool {
	if p.ctx == nil {
		return false
	}
	p.ops++
	if p.ops&ctxCheckMask != 0 {
		return false
	}
	return p.ctx.Err() != nil
}

// err returns the context's error, nil when cancellation is disabled.
func (p *ctxPoller) err() error {
	if p.ctx == nil {
		return nil
	}
	return p.ctx.Err()
}

// SearchStats summarizes the work one query performed.
type SearchStats struct {
	NodesExpanded     int // internal nodes popped and expanded
	LeavesRefined     int // leaf entries popped and refined
	ExactComputations int // full distance computations on trajectories
	EntriesPushed     int // queue insertions
}

// searchNode abstracts trie navigation so the pointer layout and the
// succinct layout share one best-first search implementation. The
// methods are append/value shaped (no callbacks) so the hot loop
// builds no closures.
type searchNode interface {
	// appendChildren appends the node's children in ascending z
	// order and returns the extended slice.
	appendChildren(dst []childEdge) []childEdge
	// leafView returns the node's terminal payload, if any.
	leafView() (lv leafView, ok bool)
	// meta returns the subtree metadata for LBo.
	meta() dist.NodeMeta
	// pivotLB returns the pivot lower bound LBp against the
	// query-to-pivot distances dqp, or 0 when either side has no
	// pivot data.
	pivotLB(dqp []float64) float64
}

// childEdge is one labeled edge out of a searchNode.
type childEdge struct {
	z uint64
	n searchNode
}

// leafView exposes a terminal payload without committing to a layout.
type leafView struct {
	tids           []int32
	dmax           float64
	minLen, maxLen int
}

// ptrNode adapts *node to searchNode.
type ptrNode struct{ n *node }

func (p ptrNode) appendChildren(dst []childEdge) []childEdge {
	for _, c := range p.n.children {
		dst = append(dst, childEdge{z: c.z, n: ptrNode{c}})
	}
	return dst
}

func (p ptrNode) leafView() (leafView, bool) {
	if p.n.leaf == nil {
		return leafView{}, false
	}
	l := p.n.leaf
	return leafView{tids: l.tids, dmax: l.dmax, minLen: l.minLen, maxLen: l.maxLen}, true
}

func (p ptrNode) meta() dist.NodeMeta {
	return dist.NodeMeta{MinLen: p.n.minLen, MaxLen: p.n.maxLen, MaxDepthBelow: p.n.maxDepthBelow}
}

func (p ptrNode) pivotLB(dqp []float64) float64 {
	if dqp == nil || p.n.hr == nil {
		return 0
	}
	return pivot.LowerBound(dqp, p.n.hr)
}

// searchScratch is the recycled per-query working set: the memoized
// bound state, DP rows, priority queue, result heap, and every
// auxiliary slice the best-first loop touches. One scratch serves one
// query at a time; the per-index pool (see scratchPool) hands them
// out, so in steady state a query performs no heap allocations.
type searchScratch struct {
	qb       *dist.QueryBounds
	ds       dist.Scratch
	res      topk.Heap
	pq       entryQueue
	children []childEdge
	dqp      []float64
	items    []topk.Item     // range-walk accumulator
	wds      []*dist.Scratch // per-worker DP rows for parallel refinement

	// cmpRefs is the compressed layout's node-ref arena: refs are
	// interface-boxed into entries, and boxing a pointer into the
	// arena is allocation-free where boxing a multi-word value is
	// not. Reset per query; at its high-water mark appends stop
	// allocating. Growth may relocate the backing array — previously
	// handed-out pointers stay valid (refs are immutable).
	cmpRefs []cmpRef
}

// scratchPool recycles searchScratch values. One pool per index (not
// a global) keeps buffer sizes stable: every scratch in a pool has
// grown to that index's query working-set high-water mark, so a Get
// is a handful of slice re-slices rather than fresh allocations.
type scratchPool struct{ p sync.Pool }

func (sp *scratchPool) get() *searchScratch {
	if v := sp.p.Get(); v != nil {
		return v.(*searchScratch)
	}
	return &searchScratch{qb: &dist.QueryBounds{}}
}

func (sp *scratchPool) put(sc *searchScratch) { sp.p.Put(sc) }

// Search returns the top-k most similar trajectories to the query
// point sequence q (Algorithm 2). Results order ascending by
// (distance, id); fewer than k results are returned only when the
// index holds fewer than k trajectories. Under tied distances any
// valid top-k set may be returned.
func (t *Trie) Search(q []geo.Point, k int) []topk.Item {
	res, _ := t.SearchWithStats(q, k)
	return res
}

// SearchAppend is Search appending the results to dst (which may be
// nil) and returning the extended slice. With a dst of sufficient
// capacity the whole query is allocation-free in steady state — the
// form the benchmark suite and other tight callers use.
func (t *Trie) SearchAppend(dst []topk.Item, q []geo.Point, k int) []topk.Item {
	st := t.state()
	sc := t.pool.get()
	defer t.pool.put(sc)
	s := searcher{cfg: t.cfg, trajs: st.trajs, sc: sc}
	s.setDelta(st.delta)
	out, _, _ := s.run(ptrNode{st.root}, q, k, dst)
	return out
}

// SearchAppendContext is SearchAppend honoring per-query options and
// a context — the allocation-measured form of SearchContext. With a
// dst of sufficient capacity and the default (nil or whole-trajectory)
// refiner the delta-empty query is allocation-free in steady state,
// which CI asserts alongside the option-less path.
func (t *Trie) SearchAppendContext(ctx context.Context, dst []topk.Item, q []geo.Point, k int, opt SearchOptions) ([]topk.Item, error) {
	st := t.state()
	if opt.MinGen > st.gen {
		return dst, ErrStale
	}
	sc := t.pool.get()
	defer t.pool.put(sc)
	s := searcher{
		cfg: t.cfg, trajs: st.trajs, sc: sc,
		ctxPoller:     ctxPoller{ctx: ctx},
		noPivots:      opt.NoPivots,
		refineWorkers: opt.RefineWorkers,
	}
	s.setDelta(st.delta)
	s.setRefiner(opt.Refiner)
	out, stats, err := s.run(ptrNode{st.root}, q, k, dst)
	if opt.Stats != nil {
		*opt.Stats = stats
	}
	return out, err
}

// SearchWithStats is Search, also reporting traversal statistics.
func (t *Trie) SearchWithStats(q []geo.Point, k int) ([]topk.Item, SearchStats) {
	st := t.state()
	sc := t.pool.get()
	defer t.pool.put(sc)
	s := searcher{cfg: t.cfg, trajs: st.trajs, sc: sc}
	s.setDelta(st.delta)
	res, stats, _ := s.run(ptrNode{st.root}, q, k, nil)
	return res, stats
}

// SearchContext is Search honoring per-query options and a context:
// the best-first loop polls ctx periodically and aborts with ctx's
// error once it is cancelled or past its deadline, so a straggler
// partition can be stopped mid-scan (Section V-B's concern).
func (t *Trie) SearchContext(ctx context.Context, q []geo.Point, k int, opt SearchOptions) ([]topk.Item, error) {
	st := t.state()
	if opt.MinGen > st.gen {
		return nil, ErrStale
	}
	sc := t.pool.get()
	defer t.pool.put(sc)
	s := searcher{
		cfg: t.cfg, trajs: st.trajs, sc: sc,
		ctxPoller:     ctxPoller{ctx: ctx},
		noPivots:      opt.NoPivots,
		refineWorkers: opt.RefineWorkers,
	}
	s.setDelta(st.delta)
	s.setRefiner(opt.Refiner)
	res, stats, err := s.run(ptrNode{st.root}, q, k, nil)
	if opt.Stats != nil {
		*opt.Stats = stats
	}
	return res, err
}

// boundBudget caps the number of internal-node expansions a bound walk
// performs before settling for the queue's current minimum. The walk
// is a pruning aid, not an answer: a few dozen expansions already
// separate a far partition from a contending one.
const boundBudget = 64

// BoundContext returns an admissible lower bound on the distance from
// q to every trajectory held by the index: no indexed trajectory is
// closer to q than the returned value. +Inf means the index is empty.
// The bound is cheap — a best-first descent capped at boundBudget node
// expansions, no exact distance computations — and deliberately loose;
// its only promise is admissibility, which the driver's probe-budget
// pruning relies on (a partition whose bound already exceeds the
// current k-th distance cannot contribute to the final top-k).
// Pending inserts sit outside the trie and admit no bound, so any
// un-compacted delta collapses the bound to 0.
func (t *Trie) BoundContext(ctx context.Context, q []geo.Point, opt SearchOptions) (float64, error) {
	st := t.state()
	if opt.MinGen > st.gen {
		return 0, ErrStale
	}
	sc := t.pool.get()
	defer t.pool.put(sc)
	s := searcher{
		cfg: t.cfg, trajs: st.trajs, sc: sc,
		ctxPoller: ctxPoller{ctx: ctx},
		noPivots:  opt.NoPivots,
	}
	s.setDelta(st.delta)
	s.setRefiner(opt.Refiner)
	return s.bound(ptrNode{st.root}, q)
}

// LiveIDs returns the ids of every live trajectory, unordered; see
// Durable.LiveIDs.
func (t *Trie) LiveIDs() []int {
	st := t.state()
	return liveIDsOf(st.trajs, st.delta)
}

// bound runs the capped best-first descent behind BoundContext. With
// an empty result heap the threshold is +Inf, so expand prunes
// nothing: every subtree is represented in the queue by an entry whose
// lb lower-bounds all trajectories beneath it. The queue minimum is
// therefore an admissible bound for the whole index at every step —
// popping internal entries only tightens it, and the walk may stop at
// any point (first leaf popped, or budget exhausted) and return the
// current minimum. Tombstoned members can only make the bound looser,
// never tighter, so deletions preserve admissibility.
func (s *searcher) bound(root searchNode, q []geo.Point) (float64, error) {
	if len(q) == 0 {
		return 0, nil
	}
	if len(s.trajs) == 0 && len(s.adds) == 0 {
		return math.Inf(1), nil
	}
	if len(s.adds) > 0 {
		return 0, nil
	}
	if err := s.err(); err != nil {
		return 0, err
	}
	var stats SearchStats
	sc := s.sc
	sc.res.Reset(1)
	var dqp []float64
	if s.cfg.Pivots != nil && !s.cfg.DisableLBp && !s.noPivots && !s.subseq {
		sc.dqp = pivot.AppendDistances(sc.dqp[:0], q, s.cfg.Pivots, s.cfg.Measure, s.cfg.Params, &sc.ds)
		dqp = sc.dqp
	}
	pq := &sc.pq
	pq.reset()
	sc.qb.Reset(s.cfg.Measure, q, s.cfg.Grid, s.cfg.Params)
	s.expand(root, sc.qb.Root(), pq, &sc.res, dqp, &stats)
	for pq.len() > 0 {
		if s.cancelled() {
			return 0, s.err()
		}
		e := pq.pop()
		if e.isLeaf || stats.NodesExpanded >= boundBudget {
			// e.lb is the queue minimum: admissible for everything
			// still queued, and a leaf's lb lower-bounds its members.
			return e.lb, nil
		}
		stats.NodesExpanded++
		s.expand(e.n, e.b, pq, &sc.res, dqp, &stats)
	}
	// Queue drained without reaching a leaf: nothing is indexed.
	return math.Inf(1), nil
}

// searcher is the layout-independent best-first top-k search.
type searcher struct {
	ctxPoller
	cfg           Config
	trajs         map[int32]*geo.Trajectory
	adds          []*geo.Trajectory  // pending inserts, scanned exactly
	dels          map[int32]struct{} // tombstones filtered at refinement
	noPivots      bool
	refineWorkers int
	refiner       Refiner // nil: default whole-trajectory refinement
	subseq        bool    // refiner scores segments: use LBoSub, no LBt/LBp
	sc            *searchScratch
}

// setRefiner attaches a query's refiner. A nil refiner keeps the
// built-in whole-trajectory refinement on the allocation-free inline
// path; a subsequence refiner additionally switches every traversal
// bound to the segment bound.
func (s *searcher) setRefiner(r Refiner) {
	s.refiner = r
	s.subseq = r != nil && r.Subsequence()
}

// setDelta attaches a snapshot's overlay. Empty components stay nil so
// the hot loop's emptiness checks cost one pointer comparison.
func (s *searcher) setDelta(d *delta) {
	if d == nil {
		return
	}
	if len(d.adds) > 0 {
		s.adds = d.adds
	}
	if len(d.dels) > 0 {
		s.dels = d.dels
	}
}

// run executes the best-first loop, appending the final results to
// dst (nil allocates a fresh result slice — the only steady-state
// allocation of the non-append entry points).
func (s *searcher) run(root searchNode, q []geo.Point, k int, dst []topk.Item) ([]topk.Item, SearchStats, error) {
	var stats SearchStats
	if k <= 0 || len(q) == 0 || (len(s.trajs) == 0 && len(s.adds) == 0) {
		return dst, stats, nil
	}
	if err := s.err(); err != nil {
		return dst, stats, err
	}
	sc := s.sc
	sc.res.Reset(k)
	results := &sc.res

	// Pending inserts are not covered by any trie bound: answer them
	// with an exact linear scan first, so the threshold they establish
	// also prunes the trie walk below.
	if len(s.adds) > 0 {
		if err := s.scanDelta(q, results, &stats); err != nil {
			return dst, stats, err
		}
	}

	var dqp []float64
	if s.cfg.Pivots != nil && !s.cfg.DisableLBp && !s.noPivots && !s.subseq {
		sc.dqp = pivot.AppendDistances(sc.dqp[:0], q, s.cfg.Pivots, s.cfg.Measure, s.cfg.Params, &sc.ds)
		dqp = sc.dqp
	}

	pq := &sc.pq
	pq.reset()
	sc.qb.Reset(s.cfg.Measure, q, s.cfg.Grid, s.cfg.Params)
	s.expand(root, sc.qb.Root(), pq, results, dqp, &stats)

	for pq.len() > 0 {
		if s.cancelled() {
			return dst, stats, s.err()
		}
		e := pq.pop()
		dk := results.Threshold()
		if e.lb >= dk {
			// Every queued entry has lb ≥ e.lb ≥ dk, and lb
			// lower-bounds the distance of every trajectory beneath
			// it, so nothing better remains (Step 2 of Section IV-A).
			break
		}
		if e.isLeaf {
			stats.LeavesRefined++
			if err := s.refine(e.lv, q, results, &stats); err != nil {
				return dst, stats, err
			}
			continue
		}
		stats.NodesExpanded++
		s.expand(e.n, e.b, pq, results, dqp, &stats)
	}
	return results.AppendResults(dst), stats, nil
}

// expand pushes n's leaf entry (if any) and child entries whose
// bounds do not already exceed the current threshold. It consumes the
// bound state b: either a child entry takes ownership of it or it is
// released back to the arena.
func (s *searcher) expand(n searchNode, b *dist.PathBounder, pq *entryQueue, results *topk.Heap, dqp []float64, stats *SearchStats) {
	sc := s.sc
	dk := results.Threshold()
	lbp := n.pivotLB(dqp)

	if lv, ok := n.leafView(); ok {
		lb := lbp
		if s.subseq {
			// Segment scoring: only the segment bound is admissible
			// (the leaf path is complete by construction).
			lb = b.LBoSub(dist.NodeMeta{MinLen: lv.minLen, MaxLen: lv.maxLen})
		} else if !s.cfg.DisableLBt {
			meta := dist.LeafMeta{
				NodeMeta: dist.NodeMeta{MinLen: lv.minLen, MaxLen: lv.maxLen},
				Dmax:     lv.dmax,
			}
			lb = math.Max(lb, b.LBtBounded(meta, dk, &sc.ds))
		} else {
			lb = math.Max(lb, b.LBo(n.meta()))
		}
		if lb < dk {
			pq.push(entry{lb: lb, lv: lv, isLeaf: true})
			stats.EntriesPushed++
		}
	}

	children := n.appendChildren(sc.children[:0])
	sc.children = children
	owned := false // whether a pushed child entry took ownership of b
	for i, ce := range children {
		var cb *dist.PathBounder
		last := i == len(children)-1
		if last {
			// The last child takes the parent's bound state instead
			// of forking it.
			cb = b
		} else {
			cb = b.Fork()
		}
		cb.ExtendZ(ce.z)

		var lb float64
		if s.subseq {
			lb = cb.LBoSub(ce.n.meta())
		} else {
			clbp := ce.n.pivotLB(dqp)
			if clbp < lbp {
				clbp = lbp
			}
			lb = math.Max(cb.LBo(ce.n.meta()), clbp)
		}
		if lb < results.Threshold() {
			pq.push(entry{lb: lb, n: ce.n, b: cb})
			stats.EntriesPushed++
			owned = owned || last
		} else if !last {
			cb.Release()
		}
	}
	if !owned {
		b.Release()
	}
}

// scanDelta refines every pending insert exactly, threshold-cut like
// any leaf member. The append buffer is unordered; the heap's final
// (distance, id) sort keeps results deterministic.
func (s *searcher) scanDelta(q []geo.Point, results *topk.Heap, stats *SearchStats) error {
	for _, tr := range s.adds {
		if s.cancelled() {
			return s.err()
		}
		stats.ExactComputations++
		if s.refiner != nil {
			d, start, end := s.refiner.Refine(q, tr, results.Threshold(), &s.sc.ds)
			results.PushItem(topk.Item{ID: tr.ID, Dist: d, Start: start, End: end})
			continue
		}
		d := dist.DistanceBoundedScratch(s.cfg.Measure, q, tr.Points, s.cfg.Params, results.Threshold(), &s.sc.ds)
		results.Push(tr.ID, d)
	}
	return nil
}

// refine computes exact distances for a leaf's members, with
// early-abandoning kernels cut off at the current threshold. While
// the result heap is not yet full the threshold is +Inf, so no
// abandoned (+Inf) value can ever be retained.
func (s *searcher) refine(lv leafView, q []geo.Point, results *topk.Heap, stats *SearchStats) error {
	if s.refineWorkers > 1 && len(lv.tids) >= minParallelLeaf {
		return s.refineParallel(lv, q, results, stats)
	}
	for _, tid := range lv.tids {
		if s.dels != nil {
			if _, dead := s.dels[tid]; dead {
				continue
			}
		}
		if s.cancelled() {
			return s.err()
		}
		tr := s.trajs[tid]
		stats.ExactComputations++
		if s.refiner != nil {
			d, start, end := s.refiner.Refine(q, tr, results.Threshold(), &s.sc.ds)
			results.PushItem(topk.Item{ID: int(tid), Dist: d, Start: start, End: end})
			continue
		}
		d := dist.DistanceBoundedScratch(s.cfg.Measure, q, tr.Points, s.cfg.Params, results.Threshold(), &s.sc.ds)
		results.Push(int(tid), d)
	}
	return nil
}

// refineParallel fans one leaf's exact-distance computations over a
// worker group. The call is a plain function handoff (not a method
// closure over the searcher) so the sequential path's searcher never
// escapes to the heap.
func (s *searcher) refineParallel(lv leafView, q []geo.Point, results *topk.Heap, stats *SearchStats) error {
	sc := s.sc
	nw := clampWorkers(s.refineWorkers, len(lv.tids))
	for len(sc.wds) < nw {
		sc.wds = append(sc.wds, new(dist.Scratch))
	}
	computed, err := refineLeafParallel(parallelRefine{
		ctx:     s.ctx,
		measure: s.cfg.Measure,
		params:  s.cfg.Params,
		refiner: s.refiner,
		trajs:   s.trajs,
		dels:    s.dels,
		tids:    lv.tids,
		q:       q,
		results: results,
		wds:     sc.wds[:nw],
	})
	stats.ExactComputations += computed
	return err
}

// parallelRefine carries one leaf's parallel refinement inputs.
type parallelRefine struct {
	ctx     context.Context
	measure dist.Measure
	params  dist.Params
	refiner Refiner // nil: default whole-trajectory refinement
	trajs   map[int32]*geo.Trajectory
	dels    map[int32]struct{} // tombstoned members to skip
	tids    []int32
	q       []geo.Point
	results *topk.Heap
	wds     []*dist.Scratch
}

// refineLeafParallel refines one leaf over parallelFor workers.
// Workers read the shared pruning threshold from an atomic float64
// (stale reads are only ever too large, which keeps the early-abandon
// admissible — see doc.go) and serialize heap pushes behind a mutex.
// It returns the number of exact computations performed and the
// context error, if any.
func refineLeafParallel(pr parallelRefine) (int, error) {
	var (
		computed atomic.Int64
		thr      atomicFloat64
		mu       sync.Mutex
	)
	thr.Store(pr.results.Threshold())
	err := parallelFor(pr.ctx, pr.wds, len(pr.tids), func(i int, ws *dist.Scratch) {
		tid := pr.tids[i]
		if pr.dels != nil {
			if _, dead := pr.dels[tid]; dead {
				return
			}
		}
		tr := pr.trajs[tid]
		var it topk.Item
		if pr.refiner != nil {
			d, start, end := pr.refiner.Refine(pr.q, tr, thr.Load(), ws)
			it = topk.Item{ID: int(tid), Dist: d, Start: start, End: end}
		} else {
			d := dist.DistanceBoundedScratch(pr.measure, pr.q, tr.Points, pr.params, thr.Load(), ws)
			it = topk.Item{ID: int(tid), Dist: d}
		}
		computed.Add(1)
		mu.Lock()
		if pr.refiner != nil {
			pr.results.PushItem(it)
		} else {
			pr.results.Push(it.ID, it.Dist)
		}
		thr.Store(pr.results.Threshold())
		mu.Unlock()
	})
	return int(computed.Load()), err
}

// parallelFor runs fn(i, ws) for every i in [0, n), one worker
// goroutine per scratch in wds. Workers claim indices through an
// atomic cursor and stop early once the context is cancelled (each
// worker polls through its own ctxPoller — sharing one would race on
// its ops counter). All workers are joined before returning, so no
// goroutine outlives the call; the return is ctx's error when the
// loop aborted early. Both the top-k and the range refinement build
// on this scaffolding.
func parallelFor(ctx context.Context, wds []*dist.Scratch, n int, fn func(i int, ws *dist.Scratch)) error {
	var (
		cursor atomic.Int64
		stop   atomic.Bool
		wg     sync.WaitGroup
	)
	for _, ws := range wds {
		wg.Add(1)
		go func(ws *dist.Scratch) {
			defer wg.Done()
			poller := ctxPoller{ctx: ctx}
			for !stop.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if poller.cancelled() {
					stop.Store(true)
					return
				}
				fn(i, ws)
			}
		}(ws)
	}
	wg.Wait()
	if stop.Load() {
		return ctx.Err()
	}
	return nil
}

// clampWorkers bounds a requested refinement worker count by the
// leaf's member count and the machine's cores. The request may arrive
// unvalidated over the RPC protocol, so the clamp is a safety bound,
// not just a heuristic.
func clampWorkers(n, members int) int {
	if max := runtime.GOMAXPROCS(0); n > max {
		n = max
	}
	if n > members {
		n = members
	}
	return n
}

// atomicFloat64 is a float64 stored as atomic bits — the shared
// pruning threshold of the refinement workers.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (a *atomicFloat64) Store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat64) Load() float64   { return math.Float64frombits(a.bits.Load()) }

// entry is one element of the best-first priority queue: either an
// internal node with its bound state, or a leaf awaiting refinement.
type entry struct {
	lb     float64
	n      searchNode
	b      *dist.PathBounder // nil for leaf entries
	lv     leafView
	isLeaf bool
	seq    int32 // FIFO tie-break for determinism
}

// entryQueue is a hand-rolled min-heap over entries ordered by
// (lb, seq). container/heap would box every entry through its
// interface{} surface — an allocation per push on the hot path.
type entryQueue struct {
	items []entry
	seq   int32
}

func (q *entryQueue) reset() {
	q.items = q.items[:0]
	q.seq = 0
}

func (q *entryQueue) len() int { return len(q.items) }

func (q *entryQueue) before(a, b entry) bool {
	if a.lb != b.lb {
		return a.lb < b.lb
	}
	return a.seq < b.seq
}

func (q *entryQueue) push(e entry) {
	e.seq = q.seq
	q.seq++
	q.items = append(q.items, e)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(q.items[i], q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *entryQueue) pop() entry {
	top := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	q.items[n] = entry{} // release references held by the vacated slot
	q.items = q.items[:n]
	i := 0
	for {
		best := i
		if l := 2*i + 1; l < n && q.before(q.items[l], q.items[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && q.before(q.items[r], q.items[best]) {
			best = r
		}
		if best == i {
			break
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
	return top
}
