package rptrie

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/oracle"
	"repose/internal/topk"
)

// dynIndex is the mutation + query surface shared by both layouts,
// letting the dynamic tests run the same script against each.
type dynIndex interface {
	Insert(trs ...*geo.Trajectory) error
	Delete(ids ...int) int
	Upsert(trs ...*geo.Trajectory) error
	Compact() error
	Generation() uint64
	DeltaLen() int
	Len() int
	Trajectory(id int) *geo.Trajectory
	Search(q []geo.Point, k int) []topk.Item
}

// buildDyn builds one index of the requested layout over ds.
func buildDyn(t *testing.T, layout string, cfg Config, ds []*geo.Trajectory) dynIndex {
	t.Helper()
	tr, err := Build(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	switch layout {
	case "pointer":
		return tr
	case "compressed":
		c, err := CompressTST(tr)
		if err != nil {
			t.Fatal(err)
		}
		return c
	default:
		s, err := Compress(tr)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

var dynLayouts = []string{"pointer", "succinct", "compressed"}

func TestInsertVisibleDeleteInvisible(t *testing.T) {
	ds, q, g := paperDataset()
	for _, layout := range dynLayouts {
		t.Run(layout, func(t *testing.T) {
			idx := buildDyn(t, layout, Config{Measure: dist.Hausdorff, Grid: g}, ds)
			if idx.Len() != 5 || idx.Generation() != 0 {
				t.Fatalf("fresh index: Len=%d gen=%d", idx.Len(), idx.Generation())
			}

			// Insert a near-copy of the query: it must win the next top-1.
			fresh := &geo.Trajectory{ID: 100, Points: append([]geo.Point(nil), q.Points...)}
			if err := idx.Insert(fresh); err != nil {
				t.Fatal(err)
			}
			if idx.Len() != 6 || idx.DeltaLen() != 1 || idx.Generation() != 1 {
				t.Fatalf("after insert: Len=%d delta=%d gen=%d", idx.Len(), idx.DeltaLen(), idx.Generation())
			}
			res := idx.Search(q.Points, 1)
			if len(res) != 1 || res[0].ID != 100 || res[0].Dist != 0 {
				t.Fatalf("inserted exact match not returned: %v", res)
			}
			if got := idx.Trajectory(100); got == nil || got.ID != 100 {
				t.Fatal("Trajectory(100) lookup failed")
			}

			// Delete it again: the very next query must not see it.
			if n := idx.Delete(100); n != 1 {
				t.Fatalf("delete removed %d", n)
			}
			for _, r := range idx.Search(q.Points, 10) {
				if r.ID == 100 {
					t.Fatal("deleted trajectory returned")
				}
			}
			if idx.Trajectory(100) != nil {
				t.Fatal("deleted trajectory still resolvable")
			}

			// Delete a core member (tombstone path).
			if n := idx.Delete(1); n != 1 {
				t.Fatalf("core delete removed %d", n)
			}
			for _, r := range idx.Search(q.Points, 10) {
				if r.ID == 1 {
					t.Fatal("tombstoned core trajectory returned")
				}
			}
			if idx.Len() != 4 {
				t.Fatalf("Len after core delete = %d", idx.Len())
			}
			// Unknown ids are skipped.
			if n := idx.Delete(1, 999); n != 0 {
				t.Fatalf("re-delete removed %d", n)
			}

			// Compact folds everything in and keeps answers identical.
			before := idx.Search(q.Points, 10)
			if err := idx.Compact(); err != nil {
				t.Fatal(err)
			}
			if idx.DeltaLen() != 0 {
				t.Fatalf("delta after compact = %d", idx.DeltaLen())
			}
			after := idx.Search(q.Points, 10)
			if len(before) != len(after) {
				t.Fatalf("compact changed result count: %d vs %d", len(before), len(after))
			}
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("compact changed rank %d: %v vs %v", i, before[i], after[i])
				}
			}
		})
	}
}

func TestInsertErrors(t *testing.T) {
	ds, _, g := paperDataset()
	for _, layout := range dynLayouts {
		t.Run(layout, func(t *testing.T) {
			idx := buildDyn(t, layout, Config{Measure: dist.Hausdorff, Grid: g}, ds)
			if err := idx.Insert(&geo.Trajectory{ID: 50}); err == nil {
				t.Error("empty trajectory insert should fail")
			}
			if err := idx.Insert(mkTraj(1, 1, 1)); err == nil {
				t.Error("duplicate core id insert should fail")
			}
			if err := idx.Insert(mkTraj(50, 1, 1)); err != nil {
				t.Fatal(err)
			}
			if err := idx.Insert(mkTraj(50, 2, 2)); err == nil {
				t.Error("duplicate pending id insert should fail")
			}
			// A failed batch applies nothing.
			gen := idx.Generation()
			if err := idx.Insert(mkTraj(60, 1, 1), mkTraj(50, 2, 2)); err == nil {
				t.Error("batch with duplicate should fail")
			}
			if idx.Generation() != gen || idx.Trajectory(60) != nil {
				t.Error("failed batch must not apply partially")
			}
		})
	}
}

func TestUpsertReplaces(t *testing.T) {
	ds, q, g := paperDataset()
	for _, layout := range dynLayouts {
		t.Run(layout, func(t *testing.T) {
			idx := buildDyn(t, layout, Config{Measure: dist.Hausdorff, Grid: g}, ds)
			// Replace core member 2 with an exact query match.
			repl := &geo.Trajectory{ID: 2, Points: append([]geo.Point(nil), q.Points...)}
			if err := idx.Upsert(repl); err != nil {
				t.Fatal(err)
			}
			if idx.Len() != 5 {
				t.Fatalf("Len after upsert = %d", idx.Len())
			}
			res := idx.Search(q.Points, 1)
			if len(res) != 1 || res[0].ID != 2 || res[0].Dist != 0 {
				t.Fatalf("upserted version not returned: %v", res)
			}
			// Upsert of a fresh id behaves like insert.
			if err := idx.Upsert(mkTraj(70, 3, 3)); err != nil {
				t.Fatal(err)
			}
			if idx.Len() != 6 {
				t.Fatalf("Len after fresh upsert = %d", idx.Len())
			}
			// In-batch duplicates fail atomically.
			if err := idx.Upsert(mkTraj(80, 1, 1), mkTraj(80, 2, 2)); err == nil {
				t.Error("upsert with in-batch duplicate should fail")
			}
			// Re-insert after delete of a core id serves the new version.
			idx.Delete(3)
			if err := idx.Insert(mkTraj(3, 0.5, 6.5)); err != nil {
				t.Fatal(err)
			}
			got := idx.Trajectory(3)
			if got == nil || len(got.Points) != 1 {
				t.Fatalf("re-inserted version not served: %+v", got)
			}
		})
	}
}

// TestSnapshotIsolation pins the core guarantee at the trie level: a
// state captured before a mutation keeps answering from the old
// world, even across a compaction.
func TestSnapshotIsolation(t *testing.T) {
	ds, q, g := paperDataset()
	tr, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	old := tr.state()
	if err := tr.Insert(&geo.Trajectory{ID: 100, Points: q.Points}); err != nil {
		t.Fatal(err)
	}
	tr.Delete(1)
	if err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	// The old snapshot still holds the pre-mutation world.
	if old.live() != 5 || old.trajectory(100) != nil || old.trajectory(1) == nil {
		t.Fatalf("old snapshot mutated: live=%d", old.live())
	}
	// And the current one holds the new world.
	cur := tr.state()
	if cur.live() != 5 || cur.trajectory(100) == nil || cur.trajectory(1) != nil {
		t.Fatalf("current snapshot wrong: live=%d", cur.live())
	}
}

func TestStaleGenerationPin(t *testing.T) {
	ds, q, g := paperDataset()
	tr, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.SearchContext(nil, q.Points, 2, SearchOptions{MinGen: 1}); !errors.Is(err, ErrStale) {
		t.Fatalf("future pin on top-k: err = %v", err)
	}
	if _, err := tr.SearchRadiusContext(nil, q.Points, 1, SearchOptions{MinGen: 1}); !errors.Is(err, ErrStale) {
		t.Fatalf("future pin on radius: err = %v", err)
	}
	if err := tr.Insert(mkTraj(100, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.SearchContext(nil, q.Points, 2, SearchOptions{MinGen: tr.Generation()}); err != nil {
		t.Fatalf("satisfied pin failed: %v", err)
	}
	s, err := Compress(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SearchContext(nil, q.Points, 2, SearchOptions{MinGen: s.Generation() + 1}); !errors.Is(err, ErrStale) {
		t.Fatalf("future pin on succinct: err = %v", err)
	}
}

// TestRadiusUnderMutation pins the range path's delta handling.
func TestRadiusUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	ds := randomDataset(rng, 60)
	tr, err := Build(Config{Measure: dist.Hausdorff, Params: p, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	mirror := oracle.NewSet(ds)

	apply := func(adds []*geo.Trajectory, dels []int) {
		if err := tr.Insert(adds...); err != nil {
			t.Fatal(err)
		}
		mirror.Insert(adds...)
		tr.Delete(dels...)
		mirror.Delete(dels...)
	}
	apply(randomFresh(rng, 1000, 10), []int{3, 7, 21})
	q := randomDataset(rng, 1)[0]
	for _, radius := range []float64{0.3, 1.5, 4} {
		got := tr.SearchRadius(q.Points, radius)
		want := mirror.Radius(dist.Hausdorff, p, q.Points, radius)
		if len(got) != len(want) {
			t.Fatalf("radius %g: %d hits, want %d", radius, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || !close9(got[i].Dist, want[i].Dist) {
				t.Fatalf("radius %g rank %d: %+v want %+v", radius, i, got[i], want[i])
			}
		}
	}
}

// randomFresh makes n random trajectories with ids starting at base.
func randomFresh(rng *rand.Rand, base, n int) []*geo.Trajectory {
	out := randomDataset(rng, n)
	for i, tr := range out {
		tr.ID = base + i
	}
	return out
}

func close9(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestCompactPreservesOptimization: compaction of an optimized trie
// re-runs the hitting-set construction over the merged set.
func TestCompactPreservesOptimization(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, _ := grid.NewWithBits(region, 3)
	ds := randomDataset(rng, 50)
	tr, err := Build(Config{Measure: dist.Hausdorff, Grid: g, Optimize: true}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(randomFresh(rng, 500, 20)...); err != nil {
		t.Fatal(err)
	}
	if err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	// A from-scratch optimized build over the same live set must have
	// the same shape.
	fresh, err := Build(Config{Measure: dist.Hausdorff, Grid: g, Optimize: true}, tr.state().delta.merged(tr.state().trajs))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != fresh.NumNodes() || tr.NumLeaves() != fresh.NumLeaves() {
		t.Fatalf("compacted shape (%d nodes, %d leaves) != fresh build (%d, %d)",
			tr.NumNodes(), tr.NumLeaves(), fresh.NumNodes(), fresh.NumLeaves())
	}
}

// TestPersistFoldsDelta: Save with a pending delta writes the live
// set; the restored trie answers identically and starts compacted.
func TestPersistFoldsDelta(t *testing.T) {
	ds, q, g := paperDataset()
	tr, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(&geo.Trajectory{ID: 100, Points: q.Points}); err != nil {
		t.Fatal(err)
	}
	tr.Delete(2)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrie(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.DeltaLen() != 0 {
		t.Fatalf("restored Len=%d delta=%d, want Len=%d delta=0", got.Len(), got.DeltaLen(), tr.Len())
	}
	want := tr.Search(q.Points, 4)
	res := got.Search(q.Points, 4)
	if len(res) != len(want) {
		t.Fatalf("restored results %v, want %v", res, want)
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("restored rank %d: %v want %v", i, res[i], want[i])
		}
	}
}
