package rptrie

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/pivot"
)

// Config configures index construction. The zero value of the toggle
// fields enables every optimization except re-arrangement, which is
// only valid for order-independent measures and must be requested.
type Config struct {
	Measure dist.Measure
	Params  dist.Params
	Grid    *grid.Grid

	// Pivots are the global pivot trajectories (Section III-B).
	// Ignored for non-metric measures. Nil disables pivot pruning.
	Pivots []*geo.Trajectory

	// Optimize enables z-value re-arrangement (Section III-C).
	// Build fails if set for an order-dependent measure.
	Optimize bool

	// DisableLBt and DisableLBp switch off the two-side and pivot
	// bounds; used by the ablation benchmarks.
	DisableLBt bool
	DisableLBp bool
}

// node is a pointer-layout trie node. The root has no label. A node
// may simultaneously have children and terminal (leaf) data — the
// latter models the paper's '$' terminator for reference trajectories
// that are prefixes of others.
type node struct {
	z        uint64
	children []*node // sorted by z

	// Subtree metadata for the bounds (see dist.NodeMeta).
	minLen, maxLen int
	maxDepthBelow  int

	// hr[i] is the range of distances from pivot i to the actual
	// trajectories in this subtree; nil when pivots are unused.
	hr []pivot.Range

	leaf *leafData
}

// leafData is the payload of a terminal node.
type leafData struct {
	tids   []int32
	dmax   float64 // max distance from reference trajectory to members
	minLen int     // member length range (original points)
	maxLen int
}

// trieState is one immutable generation of the index: the compacted
// core (trie structure plus the trajectories it covers) and the delta
// overlay of mutations applied since the last compaction. Queries load
// exactly one state through an atomic pointer and never observe a
// half-applied mutation; writers build a fresh state and swap it in
// (see dynamic.go).
type trieState struct {
	gen      uint64
	root     *node
	trajs    map[int32]*geo.Trajectory
	numNodes int // excluding the root
	numLeafs int
	maxDepth int
	delta    *delta // pending mutations; nil once compacted
}

// live returns the number of live trajectories: core members minus
// tombstones plus pending inserts.
func (st *trieState) live() int {
	n := len(st.trajs)
	if st.delta != nil {
		n += len(st.delta.adds) - len(st.delta.dels)
	}
	return n
}

// trajectory resolves id against the state: pending inserts shadow the
// core, tombstones hide it.
func (st *trieState) trajectory(tid int32) *geo.Trajectory {
	if tr, hit := st.delta.get(tid); hit {
		return tr
	}
	return st.trajs[tid]
}

// Trie is the built index together with the trajectories it covers
// (the paper's RpTraj pairing of data and index). It is a stable
// handle over an atomically swapped immutable state, so concurrent
// readers are always snapshot-isolated from Insert/Delete/Compact.
type Trie struct {
	cfg  Config
	mu   sync.Mutex // serializes writers (Insert/Delete/Upsert/Compact)
	cur  atomic.Pointer[trieState]
	pool scratchPool // recycled per-query search state
}

// state returns the current immutable snapshot.
func (t *Trie) state() *trieState { return t.cur.Load() }

// Build constructs an RP-Trie over ds. Trajectories must be non-empty
// and have unique ids.
func Build(cfg Config, ds []*geo.Trajectory) (*Trie, error) {
	if cfg.Grid == nil {
		return nil, errors.New("rptrie: nil grid")
	}
	if cfg.Optimize && !cfg.Measure.OrderIndependent() {
		return nil, fmt.Errorf("rptrie: re-arrangement requires an order-independent measure, %v is not", cfg.Measure)
	}
	if !cfg.Measure.IsMetric() {
		cfg.Pivots = nil
	}
	st, err := buildState(cfg, ds)
	if err != nil {
		return nil, err
	}
	t := &Trie{cfg: cfg}
	t.cur.Store(st)
	return t, nil
}

// buildState constructs one compacted generation from scratch — the
// shared core of Build and Compact. cfg must already be normalized
// (non-nil grid, pivots cleared for non-metric measures), which Build
// guarantees before the trie's first state and Config immutability
// guarantees for every later compaction.
func buildState(cfg Config, ds []*geo.Trajectory) (*trieState, error) {
	b := &stateBuilder{
		cfg: cfg,
		st: &trieState{
			root:  &node{},
			trajs: make(map[int32]*geo.Trajectory, len(ds)),
		},
	}
	type refEntry struct {
		tid int32
		zs  []uint64
	}
	entries := make([]refEntry, 0, len(ds))
	for _, tr := range ds {
		if len(tr.Points) == 0 {
			return nil, fmt.Errorf("rptrie: trajectory %d is empty", tr.ID)
		}
		if !tr.ValidTimes() {
			return nil, fmt.Errorf("rptrie: trajectory %d has invalid timestamps", tr.ID)
		}
		tid := int32(tr.ID)
		if _, dup := b.st.trajs[tid]; dup {
			return nil, fmt.Errorf("rptrie: duplicate trajectory id %d", tr.ID)
		}
		b.st.trajs[tid] = tr
		zs := cfg.Grid.Reference(tr)
		if cfg.Optimize {
			zs = dedupZ(zs)
		}
		entries = append(entries, refEntry{tid: tid, zs: zs})
	}
	if cfg.Optimize {
		items := make([]hsItem, len(entries))
		for i, e := range entries {
			items[i] = hsItem{tid: e.tid, zs: e.zs}
		}
		b.buildOptimized(b.st.root, items)
	} else {
		// Insert in id order for determinism.
		sort.Slice(entries, func(i, j int) bool { return entries[i].tid < entries[j].tid })
		for _, e := range entries {
			b.insert(e.tid, e.zs)
		}
	}
	b.finalize(b.st.root, nil, 0)
	return b.st, nil
}

// stateBuilder accumulates one trieState during construction.
type stateBuilder struct {
	cfg Config
	st  *trieState
}

// dedupZ removes duplicate z-values (not just consecutive runs) while
// keeping first-occurrence order; step (1) of Section III-C.
func dedupZ(zs []uint64) []uint64 {
	seen := make(map[uint64]struct{}, len(zs))
	out := zs[:0:0]
	for _, z := range zs {
		if _, ok := seen[z]; ok {
			continue
		}
		seen[z] = struct{}{}
		out = append(out, z)
	}
	return out
}

// insert adds one reference trajectory to the basic trie.
func (b *stateBuilder) insert(tid int32, zs []uint64) {
	cur := b.st.root
	for _, z := range zs {
		next := cur.child(z)
		if next == nil {
			next = &node{z: z}
			cur.children = append(cur.children, next)
			b.st.numNodes++
		}
		cur = next
	}
	if cur.leaf == nil {
		cur.leaf = &leafData{}
		b.st.numLeafs++
	}
	cur.leaf.tids = append(cur.leaf.tids, tid)
}

// child returns the child labeled z, or nil. Children are unsorted
// during construction, sorted by finalize.
func (n *node) child(z uint64) *node {
	for _, c := range n.children {
		if c.z == z {
			return c
		}
	}
	return nil
}

// hsItem is one trajectory in the greedy hitting-set construction:
// its id and the residual set of z-values not yet consumed by the
// path. zs is sorted ascending.
type hsItem struct {
	tid int32
	zs  []uint64
}

// buildOptimized implements the greedy hitting-set algorithm of
// Theorem 1 / Appendix B: at each level, repeatedly make the most
// frequent remaining z-value a child and move every trajectory
// containing it into that child's subtree.
func (b *stateBuilder) buildOptimized(parent *node, items []hsItem) {
	for i := range items {
		sort.Slice(items[i].zs, func(a, c int) bool { return items[i].zs[a] < items[i].zs[c] })
	}
	b.buildOptimizedSorted(parent, items)
}

func (b *stateBuilder) buildOptimizedSorted(parent *node, items []hsItem) {
	// Trajectories with no residual z-values terminate at parent.
	rest := items[:0:0]
	for _, it := range items {
		if len(it.zs) == 0 {
			if parent.leaf == nil {
				parent.leaf = &leafData{}
				b.st.numLeafs++
			}
			parent.leaf.tids = append(parent.leaf.tids, it.tid)
		} else {
			rest = append(rest, it)
		}
	}
	items = rest
	freq := make(map[uint64]int)
	for _, it := range items {
		for _, z := range it.zs {
			freq[z]++
		}
	}
	for len(items) > 0 {
		// Most frequent z; ties break to the smallest z for
		// determinism.
		var best uint64
		bestN := -1
		for z, n := range freq {
			if n > bestN || (n == bestN && z < best) {
				best, bestN = z, n
			}
		}
		child := &node{z: best}
		parent.children = append(parent.children, child)
		b.st.numNodes++

		taken := items[:0:0]
		remain := items[:0:0]
		for _, it := range items {
			if containsZ(it.zs, best) {
				// Maintain the frequency table incrementally, as in
				// Appendix B: C(Z) − C(Z_z1).
				for _, z := range it.zs {
					freq[z]--
				}
				it.zs = removeZ(it.zs, best)
				taken = append(taken, it)
			} else {
				remain = append(remain, it)
			}
		}
		b.buildOptimizedSorted(child, taken)
		items = remain
	}
}

func containsZ(zs []uint64, z uint64) bool {
	i := sort.Search(len(zs), func(i int) bool { return zs[i] >= z })
	return i < len(zs) && zs[i] == z
}

func removeZ(zs []uint64, z uint64) []uint64 {
	out := make([]uint64, 0, len(zs)-1)
	for _, v := range zs {
		if v != z {
			out = append(out, v)
		}
	}
	return out
}

// finalize sorts children, computes leaf Dmax values, and aggregates
// the subtree metadata (length ranges, depth, HR) bottom-up. path is
// the z-value sequence from the root to n.
func (b *stateBuilder) finalize(n *node, path []uint64, depth int) {
	if depth > b.st.maxDepth {
		b.st.maxDepth = depth
	}
	sort.Slice(n.children, func(i, j int) bool { return n.children[i].z < n.children[j].z })

	n.minLen = int(^uint(0) >> 1) // MaxInt
	n.maxLen = 0
	n.maxDepthBelow = 0
	if b.cfg.Pivots != nil {
		n.hr = make([]pivot.Range, len(b.cfg.Pivots))
		for i := range n.hr {
			n.hr[i] = pivot.EmptyRange()
		}
	}

	if n.leaf != nil {
		refPts := b.cfg.Grid.ReferencePoints(path)
		n.leaf.minLen = int(^uint(0) >> 1)
		for _, tid := range n.leaf.tids {
			tr := b.st.trajs[tid]
			l := len(tr.Points)
			if l < n.leaf.minLen {
				n.leaf.minLen = l
			}
			if l > n.leaf.maxLen {
				n.leaf.maxLen = l
			}
			if b.cfg.Measure.IsMetric() {
				d := dist.Distance(b.cfg.Measure, tr.Points, refPts, b.cfg.Params)
				if d > n.leaf.dmax {
					n.leaf.dmax = d
				}
			}
			if b.cfg.Pivots != nil {
				for i, pv := range b.cfg.Pivots {
					d := dist.Distance(b.cfg.Measure, pv.Points, tr.Points, b.cfg.Params)
					n.hr[i] = n.hr[i].Extend(d)
				}
			}
		}
		if n.leaf.minLen < n.minLen {
			n.minLen = n.leaf.minLen
		}
		if n.leaf.maxLen > n.maxLen {
			n.maxLen = n.leaf.maxLen
		}
	}

	for _, c := range n.children {
		childPath := make([]uint64, len(path)+1)
		copy(childPath, path)
		childPath[len(path)] = c.z
		b.finalize(c, childPath, depth+1)
		if c.minLen < n.minLen {
			n.minLen = c.minLen
		}
		if c.maxLen > n.maxLen {
			n.maxLen = c.maxLen
		}
		if d := c.maxDepthBelow + 1; d > n.maxDepthBelow {
			n.maxDepthBelow = d
		}
		for i := range n.hr {
			n.hr[i] = n.hr[i].Union(c.hr[i])
		}
	}
}

// NumNodes returns the number of trie nodes, excluding the root (the
// count Fig. 7 reports). Pending inserts are not counted until the
// next compaction folds them in.
func (t *Trie) NumNodes() int { return t.state().numNodes }

// NumLeaves returns the number of terminal nodes.
func (t *Trie) NumLeaves() int { return t.state().numLeafs }

// MaxDepth returns the deepest node's depth.
func (t *Trie) MaxDepth() int { return t.state().maxDepth }

// Len returns the number of live indexed trajectories, including
// pending inserts and excluding pending deletes.
func (t *Trie) Len() int { return t.state().live() }

// Trajectory returns the live indexed trajectory with the given id, or
// nil when the id is unknown or tombstoned.
func (t *Trie) Trajectory(id int) *geo.Trajectory { return t.state().trajectory(int32(id)) }

// Config returns the configuration the trie was built with.
func (t *Trie) Config() Config { return t.cfg }

// SizeBytes estimates the in-memory footprint of the index structure
// (nodes, metadata, leaf payloads, pending delta), excluding the raw
// trajectories.
func (t *Trie) SizeBytes() int {
	st := t.state()
	var walk func(n *node) int
	walk = func(n *node) int {
		// label + slice headers + meta ints.
		sz := 8 + 24 + 24 + 3*8 + 8
		sz += len(n.children) * 8 // child pointers
		sz += len(n.hr) * 16
		if n.leaf != nil {
			sz += 8 + 8 + 16 + len(n.leaf.tids)*4
		}
		for _, c := range n.children {
			sz += walk(c)
		}
		return sz
	}
	return walk(st.root) + st.delta.sizeBytes()
}
