package rptrie

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/topk"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden persist fixtures under testdata/golden")

// goldenIndex builds the fixture state: the paper's running example
// (hand-written, so the fixture does not depend on any PRNG stream)
// with pivots, one insert, and one delete — exercising config, pivot
// ranges, generation, and tombstone folding in the saved image.
func goldenIndex(t *testing.T) (*Trie, *geo.Trajectory) {
	t.Helper()
	ds, q, g := paperDataset()
	cfg := Config{Measure: dist.Hausdorff, Grid: g, Pivots: []*geo.Trajectory{ds[0], ds[2]}, Optimize: true}
	tr, err := Build(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(mkTraj(100, 3.5, 3.5, 4.5, 3.5, 4.5, 5.5)); err != nil {
		t.Fatal(err)
	}
	if tr.Delete(2) != 1 {
		t.Fatal("fixture delete missed")
	}
	return tr, q
}

// checkGolden loads the committed fixture image (regenerating it
// under -update) and pins its leading format-version byte. The
// fixture's gob bytes are not compared against a fresh Save — gob
// embeds process-global type IDs, so identical state does not imply
// identical bytes across runs; what must hold is that an image
// written by an OLD build keeps decoding to the exact same answers.
// When the wire structs change incompatibly, decoding the fixture
// fails (or the semantic assertions below do): bump wireVersion in
// persist.go and regenerate with -update.
func checkGolden(t *testing.T, name string, fresh []byte) []byte {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, fresh, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with go test -run Golden -update): %v", err)
	}
	if len(raw) == 0 || raw[0] != wireVersion {
		t.Fatalf("%s: fixture carries format version %d, this build writes %d: regenerate with -update", name, raw[0], wireVersion)
	}
	return raw
}

func TestGoldenTrieImage(t *testing.T) {
	tr, q := goldenIndex(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := checkGolden(t, "trie.img", buf.Bytes())

	back, err := ReadTrie(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decoding committed fixture: %v", err)
	}
	if back.Generation() != 2 || back.Len() != 5 {
		t.Fatalf("fixture decoded to gen=%d len=%d, want gen=2 len=5", back.Generation(), back.Len())
	}
	validate(t, back)
	res := back.Search(q.Points, 2)
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 4 {
		t.Fatalf("fixture top-2 = %v, want [1 4]", res)
	}
	// The old image must answer exactly like today's build of the same
	// state — identical results AND identical traversal work. Save
	// folds the staged delta, so fold the live index's too before
	// comparing traversal counts (an overlay skews them).
	if err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, probe := range goldenProbes(q) {
		got, gotStats := back.SearchWithStats(probe, 3)
		want, wantStats := tr.SearchWithStats(probe, 3)
		if len(got) != len(want) {
			t.Fatalf("fixture result size %d, fresh %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("fixture result %d = %+v, fresh %+v", i, got[i], want[i])
			}
		}
		if gotStats != wantStats {
			t.Fatalf("fixture traversal %+v, fresh %+v", gotStats, wantStats)
		}
	}
}

// goldenProbes returns fixed query point sets covering the paper
// query, a fixture-inserted region, and an empty corner.
func goldenProbes(q *geo.Trajectory) [][]geo.Point {
	return [][]geo.Point{
		q.Points,
		{{X: 3.5, Y: 3.5}, {X: 4.5, Y: 4.5}},
		{{X: 7.9, Y: 7.9}},
	}
}

func TestGoldenSuccinctImage(t *testing.T) {
	tr, q := goldenIndex(t)
	suc, err := Compress(tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := suc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := checkGolden(t, "succinct.img", buf.Bytes())

	back, err := ReadSuccinct(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decoding committed fixture: %v", err)
	}
	if back.Generation() != 2 || back.Len() != 5 {
		t.Fatalf("fixture decoded to gen=%d len=%d, want gen=2 len=5", back.Generation(), back.Len())
	}
	res := back.Search(q.Points, 2)
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 4 {
		t.Fatalf("fixture top-2 = %v, want [1 4]", res)
	}
	if err := suc.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, probe := range goldenProbes(q) {
		got, gotStats := back.SearchWithStats(probe, 3)
		want, wantStats := suc.SearchWithStats(probe, 3)
		if len(got) != len(want) {
			t.Fatalf("fixture result size %d, fresh %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("fixture result %d = %+v, fresh %+v", i, got[i], want[i])
			}
		}
		if gotStats != wantStats {
			t.Fatalf("fixture traversal %+v, fresh %+v", gotStats, wantStats)
		}
	}
}

func TestGoldenCompressedImage(t *testing.T) {
	tr, q := goldenIndex(t)
	cmp, err := CompressTST(tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cmp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := checkGolden(t, "tstat.img", buf.Bytes())

	back, err := ReadCompressed(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decoding committed fixture: %v", err)
	}
	if back.Generation() != 2 || back.Len() != 5 {
		t.Fatalf("fixture decoded to gen=%d len=%d, want gen=2 len=5", back.Generation(), back.Len())
	}
	res := back.Search(q.Points, 2)
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 4 {
		t.Fatalf("fixture top-2 = %v, want [1 4]", res)
	}
	if err := cmp.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, probe := range goldenProbes(q) {
		got, gotStats := back.SearchWithStats(probe, 3)
		want, wantStats := cmp.SearchWithStats(probe, 3)
		if len(got) != len(want) {
			t.Fatalf("fixture result size %d, fresh %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("fixture result %d = %+v, fresh %+v", i, got[i], want[i])
			}
		}
		if gotStats != wantStats {
			t.Fatalf("fixture traversal %+v, fresh %+v", gotStats, wantStats)
		}
	}
	// Range queries decode from the same fixture (Succinct cannot).
	gotR, err := back.SearchRadiusContext(nil, q.Points, 2.5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantR := tr.SearchRadius(q.Points, 2.5)
	if len(gotR) != len(wantR) {
		t.Fatalf("fixture radius answer %v, fresh pointer answer %v", gotR, wantR)
	}
	for i := range gotR {
		if gotR[i] != wantR[i] {
			t.Fatalf("fixture radius answer %v, fresh pointer answer %v", gotR, wantR)
		}
	}
}

// TestGoldenLegacyV1Images: version-1 images (written before
// trajectories could carry timestamps) must keep decoding and answer
// exactly like the current build of the same state. The *_v1.img
// fixtures are frozen copies of the last version-1 goldens and are
// never regenerated.
func TestGoldenLegacyV1Images(t *testing.T) {
	tr, q := goldenIndex(t)
	if err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	load := func(name string) []byte {
		raw, err := os.ReadFile(filepath.Join("testdata", "golden", name))
		if err != nil {
			t.Fatalf("missing frozen v1 fixture: %v", err)
		}
		if len(raw) == 0 || raw[0] != 1 {
			t.Fatalf("%s: expected a version-1 image, got version byte %d", name, raw[0])
		}
		return raw
	}
	check := func(name string, res []topk.Item, err error) {
		if err != nil {
			t.Fatalf("%s: decoding frozen v1 fixture: %v", name, err)
		}
		want := tr.Search(q.Points, 2)
		if len(res) != len(want) {
			t.Fatalf("%s: v1 image answered %v, fresh build %v", name, res, want)
		}
		for i := range res {
			if res[i] != want[i] {
				t.Fatalf("%s: v1 image answered %v, fresh build %v", name, res, want)
			}
		}
	}
	back, err := ReadTrie(bytes.NewReader(load("trie_v1.img")))
	if err != nil {
		t.Fatalf("trie_v1.img: %v", err)
	}
	check("trie_v1.img", back.Search(q.Points, 2), nil)
	sback, err := ReadSuccinct(bytes.NewReader(load("succinct_v1.img")))
	if err != nil {
		t.Fatalf("succinct_v1.img: %v", err)
	}
	check("succinct_v1.img", sback.Search(q.Points, 2), nil)
	cback, err := ReadCompressed(bytes.NewReader(load("tstat_v1.img")))
	if err != nil {
		t.Fatalf("tstat_v1.img: %v", err)
	}
	check("tstat_v1.img", cback.Search(q.Points, 2), nil)
}

// TestWireVersionRejected: images from a different format version must
// fail with a version diagnostic, not a gob misdecode.
func TestWireVersionRejected(t *testing.T) {
	tr, _ := goldenIndex(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] ^= 0x80
	if _, err := ReadTrie(bytes.NewReader(raw)); err == nil {
		t.Fatal("future-version image decoded")
	} else if !bytes.Contains([]byte(err.Error()), []byte("format version")) {
		t.Fatalf("want a version diagnostic, got: %v", err)
	}
	raw[0] ^= 0x80

	suc, err := Compress(tr)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := suc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sraw := buf.Bytes()
	sraw[0] ^= 0x80
	if _, err := ReadSuccinct(bytes.NewReader(sraw)); err == nil {
		t.Fatal("future-version succinct image decoded")
	} else if !bytes.Contains([]byte(err.Error()), []byte("format version")) {
		t.Fatalf("want a version diagnostic, got: %v", err)
	}

	cmp, err := CompressTST(tr)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := cmp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	craw := buf.Bytes()
	craw[0] ^= 0x80
	if _, err := ReadCompressed(bytes.NewReader(craw)); err == nil {
		t.Fatal("future-version compressed image decoded")
	} else if !bytes.Contains([]byte(err.Error()), []byte("format version")) {
		t.Fatalf("want a version diagnostic, got: %v", err)
	}
}
