package rptrie

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/pivot"
)

// Persistence: a built trie round-trips through gob, preserving the
// expensive build artifacts (pivot distance ranges, Dmax values) so a
// restarted worker does not pay the O(N·L²·Np) construction cost
// again. The format is a preorder node stream plus the indexed
// trajectories.

// wireHeader identifies the format.
const wireMagic = "RPTRIE1"

// wireVersion is the single format-version byte every saved image
// starts with, before the gob stream. Bump it on any change to the
// wire structs or their encoding so an old decoder rejects a new
// image with a version diagnostic instead of a gob misdecode. The
// golden fixtures under testdata/golden pin the current encoding byte
// for byte.
//
// Version history:
//
//	1 — original format.
//	2 — trajectories may carry per-sample timestamps. The pointer and
//	    succinct images inherit geo.Trajectory.Times through gob's
//	    field additivity; the compressed image adds explicit
//	    HasTimes/TimePlanes fields. Version-1 images keep decoding
//	    (their trajectories simply have no timestamps), which is why
//	    readWireVersion accepts a range rather than one byte.
const (
	wireVersion    byte = 2
	wireVersionMin byte = 1 // oldest image this build still reads
)

// writeWireVersion prefixes a saved image with the format version.
func writeWireVersion(w io.Writer) error {
	_, err := w.Write([]byte{wireVersion})
	return err
}

// readWireVersion checks the leading format-version byte.
func readWireVersion(r io.Reader) error {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("rptrie: reading format version: %w", err)
	}
	if b[0] < wireVersionMin || b[0] > wireVersion {
		return fmt.Errorf("rptrie: unsupported snapshot format version %d (this build reads %d through %d)", b[0], wireVersionMin, wireVersion)
	}
	return nil
}

type wireConfig struct {
	Measure    dist.Measure
	Params     dist.Params
	GridOrigin geo.Point
	GridU      float64
	GridBits   int
	Pivots     []*geo.Trajectory
	Optimize   bool
	DisableLBt bool
	DisableLBp bool
}

// wireConfigOf captures everything needed to reconstruct a Config.
func wireConfigOf(cfg Config) wireConfig {
	return wireConfig{
		Measure:    cfg.Measure,
		Params:     cfg.Params,
		GridOrigin: cfg.Grid.Origin,
		GridU:      cfg.Grid.U,
		GridBits:   cfg.Grid.Bits,
		Pivots:     cfg.Pivots,
		Optimize:   cfg.Optimize,
		DisableLBt: cfg.DisableLBt,
		DisableLBp: cfg.DisableLBp,
	}
}

// configFromWire rebuilds a Config (including the grid) from its wire
// form.
func configFromWire(wc wireConfig) (Config, error) {
	g, err := grid.NewWithBits(geo.Rect{
		Min: wc.GridOrigin,
		Max: geo.Point{X: wc.GridOrigin.X + wc.GridU, Y: wc.GridOrigin.Y + wc.GridU},
	}, wc.GridBits)
	if err != nil {
		return Config{}, fmt.Errorf("rptrie: grid: %w", err)
	}
	return Config{
		Measure:    wc.Measure,
		Params:     wc.Params,
		Grid:       g,
		Pivots:     wc.Pivots,
		Optimize:   wc.Optimize,
		DisableLBt: wc.DisableLBt,
		DisableLBp: wc.DisableLBp,
	}, nil
}

type wireNode struct {
	Z          uint64
	Children   int32
	MinLen     int32
	MaxLen     int32
	MaxDepth   int32
	HR         []pivot.Range
	HasLeaf    bool
	Tids       []int32
	Dmax       float64
	LeafMinLen int32
	LeafMaxLen int32
}

type wireTrie struct {
	Magic    string
	Config   wireConfig
	Gen      uint64
	Nodes    []wireNode // preorder, root first
	Trajs    []*geo.Trajectory
	NumNodes int
	NumLeafs int
	MaxDepth int
}

// Save serializes the trie to w in the gob wire format readable by
// ReadTrie. (Not named WriteTo: io.WriterTo's byte-count contract is
// meaningless through gob.) A pending delta is folded into the saved
// image, so the restored trie always starts fully compacted — at the
// source's generation, so replicas restored from a peer's snapshot
// stay generation-aligned with it (cluster failover relies on this).
func (t *Trie) Save(w io.Writer) error {
	st := t.state()
	if !st.delta.empty() {
		var err error
		if st, err = compactedState(t.cfg, st); err != nil {
			return err
		}
	}
	wt := wireTrie{
		Magic:    wireMagic,
		Gen:      st.gen,
		Config:   wireConfigOf(t.cfg),
		NumNodes: st.numNodes,
		NumLeafs: st.numLeafs,
		MaxDepth: st.maxDepth,
	}
	var flatten func(n *node)
	flatten = func(n *node) {
		wn := wireNode{
			Z:        n.z,
			Children: int32(len(n.children)),
			MinLen:   int32(n.minLen),
			MaxLen:   int32(n.maxLen),
			MaxDepth: int32(n.maxDepthBelow),
			HR:       n.hr,
		}
		if n.leaf != nil {
			wn.HasLeaf = true
			wn.Tids = n.leaf.tids
			wn.Dmax = n.leaf.dmax
			wn.LeafMinLen = int32(n.leaf.minLen)
			wn.LeafMaxLen = int32(n.leaf.maxLen)
		}
		wt.Nodes = append(wt.Nodes, wn)
		for _, c := range n.children {
			flatten(c)
		}
	}
	flatten(st.root)
	wt.Trajs = make([]*geo.Trajectory, 0, len(st.trajs))
	for _, tr := range st.trajs {
		wt.Trajs = append(wt.Trajs, tr)
	}
	// Sorted so the image is a deterministic function of the indexed
	// state (map iteration order is not): replicas saving the same
	// state emit identical bytes, and the golden fixtures can pin the
	// encoding exactly.
	sort.Slice(wt.Trajs, func(i, j int) bool { return wt.Trajs[i].ID < wt.Trajs[j].ID })
	if err := writeWireVersion(w); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(&wt)
}

// ReadTrie deserializes a trie written by Save.
func ReadTrie(r io.Reader) (*Trie, error) {
	if err := readWireVersion(r); err != nil {
		return nil, err
	}
	var wt wireTrie
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("rptrie: decode: %w", err)
	}
	if wt.Magic != wireMagic {
		return nil, fmt.Errorf("rptrie: bad magic %q", wt.Magic)
	}
	if len(wt.Nodes) == 0 {
		return nil, errors.New("rptrie: empty node stream")
	}
	cfg, err := configFromWire(wt.Config)
	if err != nil {
		return nil, err
	}
	st := &trieState{
		gen:      wt.Gen,
		trajs:    make(map[int32]*geo.Trajectory, len(wt.Trajs)),
		numNodes: wt.NumNodes,
		numLeafs: wt.NumLeafs,
		maxDepth: wt.MaxDepth,
	}
	t := &Trie{cfg: cfg}
	for _, tr := range wt.Trajs {
		if tr != nil && !tr.ValidTimes() {
			return nil, fmt.Errorf("rptrie: trajectory %d has invalid timestamps", tr.ID)
		}
		st.trajs[int32(tr.ID)] = tr
	}
	pos := 0
	var rebuild func() (*node, error)
	rebuild = func() (*node, error) {
		if pos >= len(wt.Nodes) {
			return nil, errors.New("rptrie: truncated node stream")
		}
		wn := wt.Nodes[pos]
		pos++
		n := &node{
			z:             wn.Z,
			minLen:        int(wn.MinLen),
			maxLen:        int(wn.MaxLen),
			maxDepthBelow: int(wn.MaxDepth),
			hr:            wn.HR,
		}
		if wn.HasLeaf {
			n.leaf = &leafData{
				tids:   wn.Tids,
				dmax:   wn.Dmax,
				minLen: int(wn.LeafMinLen),
				maxLen: int(wn.LeafMaxLen),
			}
			for _, tid := range wn.Tids {
				if _, ok := st.trajs[tid]; !ok {
					return nil, fmt.Errorf("rptrie: leaf references unknown trajectory %d", tid)
				}
			}
		}
		for i := int32(0); i < wn.Children; i++ {
			c, err := rebuild()
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, c)
		}
		return n, nil
	}
	root, err := rebuild()
	if err != nil {
		return nil, err
	}
	if pos != len(wt.Nodes) {
		return nil, fmt.Errorf("rptrie: %d trailing nodes", len(wt.Nodes)-pos)
	}
	st.root = root
	t.cur.Store(st)
	return t, nil
}
