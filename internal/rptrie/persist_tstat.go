package rptrie

import (
	"compress/flate"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repose/internal/geo"
)

// Compressed persistence: the image is the format-version byte
// followed by one DEFLATE stream wrapping a gob of the generation,
// the build configuration, and a delta-coded trajectory payload. The
// trit-array core itself is never written: it is a pure function of
// (config, trajectories) — the same derivation Compact runs — so
// ReadCompressed rebuilds it at load and only cross-checks the node
// and leaf counts recorded at save time. Shipping the inputs instead
// of the structure keeps failover transfers near the entropy of the
// data (a rebuilt core also cannot be structurally corrupt, which is
// why the loader validates payload shape rather than trie shape).
//
// The trajectory points — the bulk of the image — are raw float64
// pairs whose consecutive samples share sign, exponent, and high
// mantissa bits. XOR-ing each coordinate with its predecessor and
// then shuffling the stream into byte planes (all 8th bytes, then all
// 7th, ...) turns that redundancy into long zero runs the DEFLATE
// layer removes, which together with the elided core is what makes
// compressed Snapshot/Restore transfers several times smaller than
// the succinct layout's gob images.

// wireTSTMagic identifies the trit-array wire format.
const wireTSTMagic = "RPTST1"

type wireCompressed struct {
	Magic  string
	Config wireConfig
	Gen    uint64

	// Shape of the core the saver held; the loader rebuilds the core
	// from the trajectories and must arrive at the same counts.
	NumNodes int
	NumLeafs int

	// Trajectories: ids ascending, per-trajectory point counts, and
	// the XOR-delta byte-plane-shuffled coordinate payloads.
	TrajIDs  []int64
	TrajLens []int32
	XPlanes  []byte
	YPlanes  []byte

	// Timestamps (format version 2): HasTimes flags which trajectories
	// carry per-sample times, and TimePlanes is the XOR-delta
	// byte-plane payload of their uint64-reinterpreted timestamps, in
	// trajectory order over the timed subset only. Both nil when no
	// trajectory is timestamped — version-1 images decode with the
	// fields absent, which gob leaves nil, so old images read cleanly.
	HasTimes   []bool
	TimePlanes []byte
}

// encodeTimes XOR-deltas the timestamps of every timed trajectory
// (resetting at each trajectory start) and byte-plane-shuffles the
// word stream exactly like encodeCoords; timestamps of consecutive
// samples share high bytes, so the same transform exposes the
// redundancy to DEFLATE. Returns (nil, nil) when nothing is timed.
func encodeTimes(trajs []*geo.Trajectory) (has []bool, planes []byte) {
	total := 0
	for _, tr := range trajs {
		total += len(tr.Times)
	}
	if total == 0 {
		return nil, nil
	}
	has = make([]bool, len(trajs))
	words := make([]uint64, 0, total)
	for i, tr := range trajs {
		if len(tr.Times) == 0 {
			continue
		}
		has[i] = true
		var prev uint64
		for _, ts := range tr.Times {
			b := uint64(ts)
			words = append(words, b^prev)
			prev = b
		}
	}
	planes = make([]byte, 8*total)
	for i, v := range words {
		for p := 0; p < 8; p++ {
			planes[(7-p)*total+i] = byte(v >> (8 * uint(p)))
		}
	}
	return has, planes
}

// decodeTimes inverts encodeTimes onto the trajectories flagged in
// has, whose point slices must already be sized by TrajLens (each
// timed trajectory carries one timestamp per point).
func decodeTimes(has []bool, planes []byte, trajs []*geo.Trajectory) error {
	if len(has) == 0 {
		if len(planes) != 0 {
			return errors.New("rptrie: timestamp payload without presence flags")
		}
		return nil
	}
	if len(has) != len(trajs) {
		return fmt.Errorf("rptrie: %d timestamp flags for %d trajectories", len(has), len(trajs))
	}
	total := 0
	for i, tr := range trajs {
		if has[i] {
			total += len(tr.Points)
		}
	}
	if len(planes) != 8*total {
		return fmt.Errorf("rptrie: timestamp payload %d bytes for %d timed points", len(planes), total)
	}
	i := 0
	for ti, tr := range trajs {
		if !has[ti] {
			continue
		}
		tr.Times = make([]int64, len(tr.Points))
		var prev uint64
		for j := range tr.Times {
			var v uint64
			for p := 0; p < 8; p++ {
				v |= uint64(planes[(7-p)*total+i]) << (8 * uint(p))
			}
			prev ^= v
			tr.Times[j] = int64(prev)
			i++
		}
	}
	return nil
}

// encodeCoords XOR-deltas one coordinate of every trajectory (resetting
// at each trajectory start) and returns the byte-plane shuffle of the
// resulting word stream: plane 7 (sign+exponent) first, plane 0 last.
func encodeCoords(trajs []*geo.Trajectory, pick func(geo.Point) float64) []byte {
	total := 0
	for _, tr := range trajs {
		total += len(tr.Points)
	}
	words := make([]uint64, 0, total)
	for _, tr := range trajs {
		var prev uint64
		for _, pt := range tr.Points {
			b := math.Float64bits(pick(pt))
			words = append(words, b^prev)
			prev = b
		}
	}
	out := make([]byte, 8*total)
	for i, v := range words {
		for p := 0; p < 8; p++ {
			out[(7-p)*total+i] = byte(v >> (8 * uint(p)))
		}
	}
	return out
}

// decodeCoords inverts encodeCoords into the trajectories' coordinate,
// whose point slices must already be sized by TrajLens.
func decodeCoords(planes []byte, trajs []*geo.Trajectory, set func(*geo.Point, float64)) error {
	total := 0
	for _, tr := range trajs {
		total += len(tr.Points)
	}
	if len(planes) != 8*total {
		return fmt.Errorf("rptrie: coordinate payload %d bytes for %d points", len(planes), total)
	}
	i := 0
	for _, tr := range trajs {
		var prev uint64
		for j := range tr.Points {
			var v uint64
			for p := 0; p < 8; p++ {
				v |= uint64(planes[(7-p)*total+i]) << (8 * uint(p))
			}
			prev ^= v
			set(&tr.Points[j], math.Float64frombits(prev))
			i++
		}
	}
	return nil
}

// Save serializes the compressed index to w; see Trie.Save for the
// shared conventions (delta folded first, deterministic bytes for
// identical state, format-version byte up front). ReadCompressed is
// the inverse.
func (x *Compressed) Save(w io.Writer) error {
	st := x.state()
	core := st.core
	trajs := st.trajs
	if !st.delta.empty() {
		ts, err := buildState(x.cfg, st.delta.merged(st.trajs))
		if err != nil {
			return err
		}
		if core, err = compressTSTCore(x.cfg, ts); err != nil {
			return err
		}
		trajs = ts.trajs
	}
	wc := wireCompressed{
		Magic:    wireTSTMagic,
		Config:   wireConfigOf(x.cfg),
		Gen:      st.gen,
		NumNodes: core.numNodes,
		NumLeafs: core.numLeafs,
	}
	ordered := make([]*geo.Trajectory, 0, len(trajs))
	for _, tr := range trajs {
		ordered = append(ordered, tr)
	}
	// Deterministic image bytes for identical state (see persist.go).
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	wc.TrajIDs = make([]int64, len(ordered))
	wc.TrajLens = make([]int32, len(ordered))
	for i, tr := range ordered {
		wc.TrajIDs[i] = int64(tr.ID)
		wc.TrajLens[i] = int32(len(tr.Points))
	}
	wc.XPlanes = encodeCoords(ordered, func(p geo.Point) float64 { return p.X })
	wc.YPlanes = encodeCoords(ordered, func(p geo.Point) float64 { return p.Y })
	wc.HasTimes, wc.TimePlanes = encodeTimes(ordered)

	if err := writeWireVersion(w); err != nil {
		return err
	}
	zw, err := flate.NewWriter(w, flate.DefaultCompression)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(zw).Encode(&wc); err != nil {
		return err
	}
	return zw.Close()
}

// ReadCompressed deserializes a compressed index written by Save. The
// trit-array core is rebuilt from the decoded trajectories (it is not
// on the wire) and its shape is checked against the counts the saver
// recorded, so a corrupted stream fails the read instead of a later
// query.
func ReadCompressed(r io.Reader) (*Compressed, error) {
	if err := readWireVersion(r); err != nil {
		return nil, err
	}
	zr := flate.NewReader(r)
	defer zr.Close()
	var wc wireCompressed
	if err := gob.NewDecoder(zr).Decode(&wc); err != nil {
		return nil, fmt.Errorf("rptrie: decode: %w", err)
	}
	if wc.Magic != wireTSTMagic {
		return nil, fmt.Errorf("rptrie: bad magic %q", wc.Magic)
	}
	cfg, err := configFromWire(wc.Config)
	if err != nil {
		return nil, err
	}
	if len(wc.TrajIDs) != len(wc.TrajLens) {
		return nil, errors.New("rptrie: trajectory id/length arrays disagree")
	}
	trajs := make(map[int32]*geo.Trajectory, len(wc.TrajIDs))
	ordered := make([]*geo.Trajectory, len(wc.TrajIDs))
	for i, id := range wc.TrajIDs {
		if wc.TrajLens[i] <= 0 {
			return nil, errors.New("rptrie: empty trajectory in stream")
		}
		tr := &geo.Trajectory{ID: int(id), Points: make([]geo.Point, wc.TrajLens[i])}
		if _, dup := trajs[int32(tr.ID)]; dup {
			return nil, fmt.Errorf("rptrie: duplicate trajectory %d", tr.ID)
		}
		trajs[int32(tr.ID)] = tr
		ordered[i] = tr
	}
	if err := decodeCoords(wc.XPlanes, ordered, func(p *geo.Point, v float64) { p.X = v }); err != nil {
		return nil, err
	}
	if err := decodeCoords(wc.YPlanes, ordered, func(p *geo.Point, v float64) { p.Y = v }); err != nil {
		return nil, err
	}
	if err := decodeTimes(wc.HasTimes, wc.TimePlanes, ordered); err != nil {
		return nil, err
	}
	for _, tr := range ordered {
		if !tr.ValidTimes() {
			return nil, fmt.Errorf("rptrie: trajectory %d has invalid timestamps", tr.ID)
		}
	}
	ts, err := buildState(cfg, ordered)
	if err != nil {
		return nil, fmt.Errorf("rptrie: rebuilding core: %w", err)
	}
	core, err := compressTSTCore(cfg, ts)
	if err != nil {
		return nil, fmt.Errorf("rptrie: re-encoding core: %w", err)
	}
	if core.numNodes != wc.NumNodes || core.numLeafs != wc.NumLeafs {
		return nil, fmt.Errorf("rptrie: rebuilt core has %d nodes, %d leaves; image recorded %d, %d",
			core.numNodes, core.numLeafs, wc.NumNodes, wc.NumLeafs)
	}
	x := &Compressed{cfg: cfg}
	x.cur.Store(&cmpState{gen: wc.Gen, core: core, trajs: ts.trajs})
	return x, nil
}
