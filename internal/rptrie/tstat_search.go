package rptrie

import (
	"context"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// The compressed layout shares the layout-independent best-first
// searcher (search.go) through cmpRef, a pointer-shaped searchNode
// whose instances live in the query scratch's arena: interface-boxing
// a pointer is allocation-free, so the delta-empty search path stays
// at 0 allocs/op like the pointer layout's.

// cmpRef is one node of a Compressed core during a search.
type cmpRef struct {
	c  *cmpCore
	sc *searchScratch // arena owner for child refs
	v  int32          // BFS node id
}

// newCmpRef allocates a ref from the scratch's arena.
func (sc *searchScratch) newCmpRef(c *cmpCore, v int32) *cmpRef {
	sc.cmpRefs = append(sc.cmpRefs, cmpRef{c: c, sc: sc, v: v})
	return &sc.cmpRefs[len(sc.cmpRefs)-1]
}

// rootRef resets the arena and returns the root's searchNode.
func (c *cmpCore) rootRef(sc *searchScratch) searchNode {
	sc.cmpRefs = sc.cmpRefs[:0]
	return sc.newCmpRef(c, 0)
}

func (r *cmpRef) appendChildren(dst []childEdge) []childEdge {
	c := r.c
	first, count := c.childrenRange(int(r.v))
	for i := 0; i < count; i++ {
		u := first + i
		z := c.alphabet.get(int(c.labels.get(u - 1)))
		dst = append(dst, childEdge{z: z, n: r.sc.newCmpRef(c, int32(u))})
	}
	return dst
}

func (r *cmpRef) leafView() (leafView, bool) {
	c := r.c
	li := c.terminalIndex(int(r.v))
	if li < 0 {
		return leafView{}, false
	}
	return leafView{
		tids:   c.leafTids[c.leafOff[li]:c.leafOff[li+1]],
		dmax:   float64(c.leafDmax[li]),
		minLen: int(c.leafMinLen.get(li)),
		maxLen: int(c.leafMaxLen.get(li)),
	}, true
}

func (r *cmpRef) meta() dist.NodeMeta {
	c, v := r.c, int(r.v)
	return dist.NodeMeta{
		MinLen:        int(c.minLen.get(v)),
		MaxLen:        int(c.maxLen.get(v)),
		MaxDepthBelow: int(c.maxDepth.get(v)),
	}
}

// pivotLB evaluates LBp over the quantized ranges via the per-pivot
// decode LUTs. The decoded interval contains the exact one, so the
// bound is admissible (never tighter than the pointer layout's).
func (r *cmpRef) pivotLB(dqp []float64) float64 {
	c := r.c
	if c.np == 0 || dqp == nil {
		return 0
	}
	return c.pivotLBAt(int(r.v), dqp)
}

func (c *cmpCore) pivotLBAt(v int, dqp []float64) float64 {
	base := v * c.np
	lb := 0.0
	for j := 0; j < c.np && j < len(dqp); j++ {
		lut := c.hrLUT[j*hrBuckets:]
		q := c.hrq[base+j]
		lo := lut[q&0x0f]
		hi := lut[q>>4]
		if b := pivot.RangeBound(dqp[j], lo, hi); b > lb {
			lb = b
		}
	}
	return lb
}

// Search answers a top-k query on the compressed layout; results are
// identical to the source trie's.
func (x *Compressed) Search(q []geo.Point, k int) []topk.Item {
	res, _ := x.SearchWithStats(q, k)
	return res
}

// SearchWithStats is Search with traversal statistics.
func (x *Compressed) SearchWithStats(q []geo.Point, k int) ([]topk.Item, SearchStats) {
	st := x.state()
	sc := x.pool.get()
	defer x.pool.put(sc)
	sr := searcher{cfg: x.cfg, trajs: st.trajs, sc: sc}
	sr.setDelta(st.delta)
	res, stats, _ := sr.run(st.core.rootRef(sc), q, k, nil)
	return res, stats
}

// SearchAppend is Search appending the results to dst; see
// Trie.SearchAppend.
func (x *Compressed) SearchAppend(dst []topk.Item, q []geo.Point, k int) []topk.Item {
	st := x.state()
	sc := x.pool.get()
	defer x.pool.put(sc)
	sr := searcher{cfg: x.cfg, trajs: st.trajs, sc: sc}
	sr.setDelta(st.delta)
	out, _, _ := sr.run(st.core.rootRef(sc), q, k, dst)
	return out
}

// SearchContext is Search honoring per-query options and a context;
// see Trie.SearchContext. All three layouts share the same
// cancellable best-first loop.
func (x *Compressed) SearchContext(ctx context.Context, q []geo.Point, k int, opt SearchOptions) ([]topk.Item, error) {
	st := x.state()
	if opt.MinGen > st.gen {
		return nil, ErrStale
	}
	sc := x.pool.get()
	defer x.pool.put(sc)
	sr := searcher{
		cfg: x.cfg, trajs: st.trajs, sc: sc,
		ctxPoller:     ctxPoller{ctx: ctx},
		noPivots:      opt.NoPivots,
		refineWorkers: opt.RefineWorkers,
	}
	sr.setDelta(st.delta)
	sr.setRefiner(opt.Refiner)
	res, stats, err := sr.run(st.core.rootRef(sc), q, k, nil)
	if opt.Stats != nil {
		*opt.Stats = stats
	}
	return res, err
}

// BoundContext returns an admissible lower bound on the distance from
// q to every trajectory held by the index; see Trie.BoundContext.
func (x *Compressed) BoundContext(ctx context.Context, q []geo.Point, opt SearchOptions) (float64, error) {
	st := x.state()
	if opt.MinGen > st.gen {
		return 0, ErrStale
	}
	sc := x.pool.get()
	defer x.pool.put(sc)
	sr := searcher{
		cfg: x.cfg, trajs: st.trajs, sc: sc,
		ctxPoller: ctxPoller{ctx: ctx},
		noPivots:  opt.NoPivots,
	}
	sr.setDelta(st.delta)
	sr.setRefiner(opt.Refiner)
	return sr.bound(st.core.rootRef(sc), q)
}

// LiveIDs returns the ids of every live trajectory, unordered; see
// Durable.LiveIDs.
func (x *Compressed) LiveIDs() []int {
	st := x.state()
	return liveIDsOf(st.trajs, st.delta)
}

// SearchRadius returns every indexed trajectory within distance
// radius of q, ascending by (distance, id); see Trie.SearchRadius.
// Unlike Succinct, the compressed layout supports range queries: the
// walk navigates node ids directly.
func (x *Compressed) SearchRadius(q []geo.Point, radius float64) []topk.Item {
	out, _ := x.SearchRadiusContext(nil, q, radius, SearchOptions{})
	return out
}

// SearchRadiusContext is SearchRadius honoring per-query options and
// cancellation; see Trie.SearchRadiusContext.
func (x *Compressed) SearchRadiusContext(ctx context.Context, q []geo.Point, radius float64, opt SearchOptions) ([]topk.Item, error) {
	st := x.state()
	if opt.MinGen > st.gen {
		return nil, ErrStale
	}
	if len(q) == 0 || st.live() == 0 || radius < 0 {
		return nil, nil
	}
	sc := x.pool.get()
	defer x.pool.put(sc)
	rq := rangeQuery{
		cfg: x.cfg, trajs: st.trajs,
		ctxPoller: ctxPoller{ctx: ctx}, sc: sc, q: q, radius: radius,
		workers: opt.RefineWorkers,
	}
	if d := st.delta; d != nil && len(d.dels) > 0 {
		rq.dels = d.dels
	}
	rq.setRefiner(opt.Refiner)
	if err := rq.err(); err != nil {
		return nil, err
	}
	if x.cfg.Pivots != nil && !x.cfg.DisableLBp && !opt.NoPivots && !rq.subseq {
		sc.dqp = pivot.AppendDistances(sc.dqp[:0], q, x.cfg.Pivots, x.cfg.Measure, x.cfg.Params, &sc.ds)
		rq.dqp = sc.dqp
	}
	sc.qb.Reset(x.cfg.Measure, q, x.cfg.Grid, x.cfg.Params)
	sc.items = sc.items[:0]
	// Pending inserts sit outside the trie: scan them exactly.
	if d := st.delta; d != nil {
		for _, tr := range d.adds {
			if rq.cancelled() {
				return nil, rq.err()
			}
			if it, ok := rq.refineOne(tr, &sc.ds); ok {
				sc.items = append(sc.items, it)
			}
		}
	}
	if err := rq.walkCompressed(st.core, 0, sc.qb.Root()); err != nil {
		return nil, err
	}
	topk.SortItems(sc.items)
	if len(sc.items) == 0 {
		return nil, nil
	}
	// The accumulator is pooled; hand the caller its own copy.
	return append([]topk.Item(nil), sc.items...), nil
}

// walkCompressed is rangeQuery.walk over a compressed core: the same
// fixed-threshold DFS with identical pruning, navigating BFS node ids
// instead of pointers. It consumes b like walk does.
func (rq *rangeQuery) walkCompressed(c *cmpCore, v int, b *dist.PathBounder) error {
	if rq.cancelled() {
		return rq.err()
	}
	if rq.dqp != nil && c.np > 0 && c.pivotLBAt(v, rq.dqp) > rq.radius {
		return nil
	}
	if li := c.terminalIndex(v); li >= 0 {
		lb := 0.0
		if rq.subseq {
			lb = b.LBoSub(dist.NodeMeta{
				MinLen: int(c.leafMinLen.get(li)),
				MaxLen: int(c.leafMaxLen.get(li)),
			})
		} else if !rq.cfg.DisableLBt {
			lb = b.LBtBounded(dist.LeafMeta{
				NodeMeta: dist.NodeMeta{
					MinLen: int(c.leafMinLen.get(li)),
					MaxLen: int(c.leafMaxLen.get(li)),
				},
				Dmax: float64(c.leafDmax[li]),
			}, rq.radius, &rq.sc.ds)
		}
		if lb <= rq.radius {
			if err := rq.refineLeaf(c.leafTids[c.leafOff[li]:c.leafOff[li+1]]); err != nil {
				return err
			}
		}
	}
	first, count := c.childrenRange(v)
	for i := 0; i < count; i++ {
		u := first + i
		var cb *dist.PathBounder
		last := i == count-1
		if last {
			cb = b
		} else {
			cb = b.Fork()
		}
		cb.ExtendZ(c.alphabet.get(int(c.labels.get(u - 1))))
		meta := dist.NodeMeta{
			MinLen:        int(c.minLen.get(u)),
			MaxLen:        int(c.maxLen.get(u)),
			MaxDepthBelow: int(c.maxDepth.get(u)),
		}
		if rq.childLB(cb, meta) > rq.radius {
			if !last {
				cb.Release()
			}
			continue
		}
		err := rq.walkCompressed(c, u, cb)
		if !last {
			cb.Release()
		}
		if err != nil {
			return err
		}
	}
	return nil
}
