package rptrie

import (
	"math"

	"repose/internal/dist"
	"repose/internal/geo"
)

// Refiner is the pluggable leaf-refinement strategy: it scores one
// candidate trajectory against the query. The best-first traversal,
// delta scans, and range walk all refine through this interface; the
// default (whole-trajectory exact distance) is WholeRefiner, and the
// segment/window modes come from NewRefiner.
//
// Contract, mirroring dist.DistanceBounded: Refine returns the exact
// refined distance whenever it is ≤ threshold, and otherwise may
// return +Inf. +Inf also marks an ineligible candidate (no window
// overlap, no segment satisfying the length bounds); such candidates
// are excluded from results. start/end name the matched half-open
// sample range [start, end) of tr and are meaningful only for finite
// distances from subsequence refiners; whole-trajectory refinement
// reports (0, 0) so results stay byte-identical to the pre-refiner
// search. A Refiner must be safe for concurrent Refine calls with
// distinct scratches (the parallel leaf refinement shares one).
type Refiner interface {
	Refine(q []geo.Point, tr *geo.Trajectory, threshold float64, s *dist.Scratch) (d float64, start, end int)

	// Subsequence reports whether refined distances may fall below
	// the whole-trajectory distance (segment-restricted scoring).
	// When true, the traversal swaps every bound for the segment
	// bound LBoSub and drops the leaf (LBt) and pivot (LBp) bounds,
	// which are admissible only against whole trajectories; see
	// doc.go's segment-admissibility section.
	Subsequence() bool
}

// RefineSpec selects a refined query mode. The zero value means
// whole-trajectory scoring (NewRefiner returns nil for it).
type RefineSpec struct {
	// Sub scores the best-matching contiguous segment of each
	// candidate. MinSeg/MaxSeg bound the segment length in sample
	// points; MinSeg < 1 means 1, MaxSeg ≤ 0 means unbounded.
	Sub            bool
	MinSeg, MaxSeg int

	// Window restricts candidates to trajectories with at least one
	// sample timestamped inside the closed window [From, To] and
	// scores only the in-window run (composed with Sub, the segment
	// sweep runs inside that run). Untimestamped trajectories never
	// match a windowed query.
	Window   bool
	From, To int64
}

// IsZero reports whether the spec selects plain whole-trajectory
// scoring.
func (sp RefineSpec) IsZero() bool { return !sp.Sub && !sp.Window }

// NewRefiner returns the Refiner implementing spec under the given
// measure, or nil for the zero spec — callers treat a nil Refiner as
// the built-in whole-trajectory default.
func NewRefiner(m dist.Measure, p dist.Params, spec RefineSpec) Refiner {
	if spec.IsZero() {
		return nil
	}
	return &segmentRefiner{m: m, p: p, spec: spec}
}

// WholeRefiner returns the default refiner: exact whole-trajectory
// distance, identical in results and allocation behaviour to passing
// no refiner at all.
func WholeRefiner(m dist.Measure, p dist.Params) Refiner {
	return &wholeRefiner{m: m, p: p}
}

// wholeRefiner is the default implementation: the pre-refactor inline
// refinement expressed through the interface.
type wholeRefiner struct {
	m dist.Measure
	p dist.Params
}

func (r *wholeRefiner) Subsequence() bool { return false }

func (r *wholeRefiner) Refine(q []geo.Point, tr *geo.Trajectory, threshold float64, s *dist.Scratch) (float64, int, int) {
	return dist.DistanceBoundedScratch(r.m, q, tr.Points, r.p, threshold, s), 0, 0
}

// segmentRefiner implements the Sub and Window modes (and their
// composition). Both score a contiguous segment of the candidate, so
// Subsequence is true for either.
type segmentRefiner struct {
	m    dist.Measure
	p    dist.Params
	spec RefineSpec
}

func (r *segmentRefiner) Subsequence() bool { return true }

func (r *segmentRefiner) Refine(q []geo.Point, tr *geo.Trajectory, threshold float64, s *dist.Scratch) (float64, int, int) {
	pts := tr.Points
	off := 0
	if r.spec.Window {
		lo, hi := tr.TimeWindow(r.spec.From, r.spec.To)
		if lo == hi {
			return math.Inf(1), 0, 0
		}
		pts = pts[lo:hi]
		off = lo
	}
	if !r.spec.Sub {
		return dist.DistanceBoundedScratch(r.m, q, pts, r.p, threshold, s), off, off + len(pts)
	}
	d, st, en := dist.SubDistanceBoundedScratch(r.m, q, pts, r.p, r.spec.MinSeg, r.spec.MaxSeg, threshold, s)
	if math.IsInf(d, 1) {
		return d, 0, 0
	}
	return d, off + st, off + en
}
