package rptrie

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/leakcheck"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// bitIdentical reports whether two result lists agree exactly: same
// ids in the same order and bit-for-bit equal float64 distances.
func bitIdentical(a, b []topk.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			return false
		}
	}
	return true
}

// scratchConfig builds a trie config for m over the [0,8]² region,
// with pivots when the measure is metric.
func scratchConfig(t *testing.T, m dist.Measure, ds []*geo.Trajectory) Config {
	t.Helper()
	g, err := grid.NewWithBits(geo.Rect{Min: geo.Point{}, Max: geo.Point{X: 8, Y: 8}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := dist.Params{Epsilon: 0.7, Gap: geo.Point{X: 0, Y: 0}}
	cfg := Config{Measure: m, Params: params, Grid: g}
	if m.IsMetric() {
		cfg.Pivots = pivot.Select(ds, 3, pivot.DefaultGroups, m, params, 5)
	}
	return cfg
}

// TestScratchReuseBitIdentical interleaves queries of deliberately
// mismatched lengths and kinds (top-k with varying k, range) on one
// pooled index and asserts every answer is bit-identical to the same
// query on a freshly built index whose scratch pool has never been
// used — the property the recycled arenas must preserve.
func TestScratchReuseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ds := randomDataset(rng, 60)
	for _, m := range dist.Measures() {
		cfg := scratchConfig(t, m, ds)
		pooled, err := Build(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			// Lengths jump wildly between queries so every reused
			// buffer is exercised at a different size than last time.
			qlen := 1 + rng.Intn(40)
			q := make([]geo.Point, qlen)
			for i := range q {
				q[i] = geo.Point{X: rng.Float64()*10 - 1, Y: rng.Float64()*10 - 1}
			}
			fresh, err := Build(cfg, ds)
			if err != nil {
				t.Fatal(err)
			}
			if trial%3 == 2 {
				radius := rng.Float64() * 6
				got, err := pooled.SearchRadiusContext(nil, q, radius, SearchOptions{})
				if err != nil {
					t.Fatal(err)
				}
				want := fresh.SearchRadius(q, radius)
				if !bitIdentical(got, want) {
					t.Fatalf("%v trial %d radius %g: pooled %v != fresh %v", m, trial, radius, got, want)
				}
				continue
			}
			k := 1 + rng.Intn(12)
			got := pooled.Search(q, k)
			want := fresh.Search(q, k)
			if !bitIdentical(got, want) {
				t.Fatalf("%v trial %d k=%d qlen=%d: pooled %v != fresh %v", m, trial, k, qlen, got, want)
			}
		}
	}
}

// TestScratchReuseConcurrent hammers one pooled index from many
// goroutines (forcing scratch handoff through the sync.Pool under
// contention) and checks each answer against a per-query fresh run
// computed up front. Run with -race this also proves scratches never
// leak between concurrent queries.
func TestScratchReuseConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := randomDataset(rng, 50)
	cfg := scratchConfig(t, dist.Hausdorff, ds)
	pooled, err := Build(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	const nq = 24
	queries := make([][]geo.Point, nq)
	want := make([][]topk.Item, nq)
	for i := range queries {
		q := make([]geo.Point, 1+rng.Intn(30))
		for j := range q {
			q[j] = geo.Point{X: rng.Float64() * 8, Y: rng.Float64() * 8}
		}
		queries[i] = q
		fresh, err := Build(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fresh.Search(q, 8)
	}
	var wg sync.WaitGroup
	errs := make(chan string, nq*4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range queries {
				qi := (i + w*7) % nq
				if got := pooled.Search(queries[qi], 8); !bitIdentical(got, want[qi]) {
					errs <- "concurrent pooled result diverged"
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// fatLeafDataset builds trajectories concentrated on a handful of
// cell-center paths so many trajectories share a reference trajectory
// — leaves grow fat enough to trip the parallel refinement cutoff.
func fatLeafDataset(rng *rand.Rand, n int) []*geo.Trajectory {
	paths := [][]geo.Point{
		{{X: 0.5, Y: 0.5}, {X: 1.5, Y: 0.5}, {X: 2.5, Y: 1.5}},
		{{X: 6.5, Y: 6.5}, {X: 5.5, Y: 6.5}},
		{{X: 3.5, Y: 3.5}, {X: 3.5, Y: 4.5}, {X: 4.5, Y: 4.5}, {X: 5.5, Y: 4.5}},
	}
	ds := make([]*geo.Trajectory, n)
	for i := range ds {
		base := paths[i%len(paths)]
		pts := make([]geo.Point, 0, len(base)*2)
		for _, c := range base {
			// Jitter keeps every point inside its cell, so all
			// trajectories of a path share one reference trajectory.
			for r := 1 + rng.Intn(2); r > 0; r-- {
				pts = append(pts, geo.Point{
					X: c.X + (rng.Float64()-0.5)*0.8,
					Y: c.Y + (rng.Float64()-0.5)*0.8,
				})
			}
		}
		ds[i] = &geo.Trajectory{ID: i, Points: pts}
	}
	return ds
}

// TestParallelRefineParity: with RefineWorkers set, fat leaves refine
// concurrently under the shared atomic threshold — and must still
// return results bit-identical to the sequential path, on both
// layouts and for range search.
func TestParallelRefineParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := fatLeafDataset(rng, 80)
	for _, m := range []dist.Measure{dist.Hausdorff, dist.DTW, dist.EDR} {
		cfg := scratchConfig(t, m, ds)
		trie, err := Build(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		suc, err := Compress(trie)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			q := make([]geo.Point, 1+rng.Intn(12))
			for i := range q {
				q[i] = geo.Point{X: rng.Float64() * 8, Y: rng.Float64() * 8}
			}
			k := 1 + rng.Intn(20)
			seq, err := trie.SearchContext(context.Background(), q, k, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := trie.SearchContext(context.Background(), q, k, SearchOptions{RefineWorkers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !bitIdentical(seq, par) {
				t.Fatalf("%v trial %d k=%d: parallel %v != sequential %v", m, trial, k, par, seq)
			}
			sucPar, err := suc.SearchContext(context.Background(), q, k, SearchOptions{RefineWorkers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !bitIdentical(seq, sucPar) {
				t.Fatalf("%v trial %d k=%d: succinct parallel %v != sequential %v", m, trial, k, sucPar, seq)
			}
			radius := rng.Float64() * 8
			seqR, err := trie.SearchRadiusContext(nil, q, radius, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			parR, err := trie.SearchRadiusContext(nil, q, radius, SearchOptions{RefineWorkers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !bitIdentical(seqR, parR) {
				t.Fatalf("%v trial %d radius %g: parallel %v != sequential %v", m, trial, radius, parR, seqR)
			}
		}
	}
}

// TestParallelRefineNoGoroutineLeak: every refinement worker joins
// before the query returns, so the goroutine count settles back to
// its pre-query level.
func TestParallelRefineNoGoroutineLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := fatLeafDataset(rng, 120)
	trie, err := Build(scratchConfig(t, dist.Hausdorff, ds), ds)
	if err != nil {
		t.Fatal(err)
	}
	before := leakcheck.Base()
	q := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	for i := 0; i < 50; i++ {
		if _, err := trie.SearchContext(context.Background(), q, 10, SearchOptions{RefineWorkers: 8}); err != nil {
			t.Fatal(err)
		}
	}
	// Refinement workers join before SearchContext returns; the settle
	// (deadline-aware, no fixed sleeps) only absorbs runtime jitter.
	leakcheck.Settle(t, before)
}

// TestParallelRefineCancelled: a cancelled context aborts a parallel
// refinement with the context's error, exactly like the sequential
// path.
func TestParallelRefineCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := fatLeafDataset(rng, 200)
	trie, err := Build(scratchConfig(t, dist.Hausdorff, ds), ds)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := []geo.Point{{X: 1, Y: 1}, {X: 5, Y: 5}}
	if _, err := trie.SearchContext(ctx, q, 10, SearchOptions{RefineWorkers: 4}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
