package rptrie

import (
	"bytes"
	"compress/flate"
	"encoding/gob"
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/pivot"
)

// TestCompressedPersistRoundTrip: the trit-array layout round-trips
// through Save/ReadCompressed and answers queries identically, with
// identical traversal work, including with a pending delta (folded
// into the saved image). The delta-coded coordinate payload must
// restore every point bit for bit.
func TestCompressedPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	ds := randomDataset(rng, 140)
	pivots := pivot.Select(ds, 3, 5, dist.Hausdorff, p, 7)
	for _, cfg := range []Config{
		{Measure: dist.Hausdorff, Params: p, Grid: g, Pivots: pivots, Optimize: true},
		{Measure: dist.DTW, Params: p, Grid: g},
		{Measure: dist.ERP, Params: p, Grid: g},
	} {
		trie, err := Build(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := CompressTST(trie)
		if err != nil {
			t.Fatal(err)
		}
		// Stage a pending delta on the original: Save must fold it.
		if err := orig.Insert(shiftIDs(randomDataset(rng, 6), 10_000)...); err != nil {
			t.Fatal(err)
		}
		orig.Delete(ds[3].ID, ds[7].ID)

		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCompressed(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.DeltaLen() != 0 {
			t.Fatalf("%v: restored delta %d, want folded", cfg.Measure, back.DeltaLen())
		}
		// The image restores at the source's generation as of Save (the
		// cluster's generation-alignment contract); the live handle's
		// Compact below bumps its own.
		if back.Generation() != orig.Generation() {
			t.Fatalf("%v: restored gen=%d, want %d", cfg.Measure, back.Generation(), orig.Generation())
		}
		if err := orig.Compact(); err != nil {
			t.Fatal(err)
		}
		if back.Len() != orig.Len() {
			t.Fatalf("%v: restored len=%d, want %d", cfg.Measure, back.Len(), orig.Len())
		}
		// Coordinates survive the XOR-delta byte-plane codec exactly.
		for _, tid := range []int{ds[0].ID, ds[11].ID, 10_002} {
			got, want := back.Trajectory(tid), orig.Trajectory(tid)
			if got == nil || want == nil {
				t.Fatalf("%v: trajectory %d missing after round trip", cfg.Measure, tid)
			}
			if len(got.Points) != len(want.Points) {
				t.Fatalf("%v: trajectory %d restored with %d points, want %d",
					cfg.Measure, tid, len(got.Points), len(want.Points))
			}
			for i := range got.Points {
				if got.Points[i] != want.Points[i] {
					t.Fatalf("%v: trajectory %d point %d = %v, want %v",
						cfg.Measure, tid, i, got.Points[i], want.Points[i])
				}
			}
		}
		for trial := 0; trial < 6; trial++ {
			q := randomDataset(rng, 1)[0]
			got, gotStats := back.SearchWithStats(q.Points, 9)
			want, wantStats := orig.SearchWithStats(q.Points, 9)
			if len(got) != len(want) {
				t.Fatalf("%v: result sizes differ (%d vs %d)", cfg.Measure, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v: result %d differs: %+v vs %+v", cfg.Measure, i, got[i], want[i])
				}
			}
			if gotStats != wantStats {
				t.Fatalf("%v: stats differ: %+v vs %+v", cfg.Measure, gotStats, wantStats)
			}
		}
		// The restored index stays live: mutations and compaction work.
		if err := back.Insert(shiftIDs(randomDataset(rng, 3), 20_000)...); err != nil {
			t.Fatal(err)
		}
		if err := back.Compact(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompressedImageDeterministic: identical state saves to identical
// bytes (the cluster dedupes transfers by image digest).
func TestCompressedImageDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	trie, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, randomDataset(rng, 60))
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompressTST(trie)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := c.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same state differ")
	}
}

// corruptCompressed encodes a valid compressed image, hands the
// decoded wire struct to mutate, and re-encodes it.
func corruptCompressed(t *testing.T, mutate func(*wireCompressed)) *bytes.Buffer {
	t.Helper()
	rng := rand.New(rand.NewSource(32))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	trie, err := Build(Config{Measure: dist.Hausdorff, Params: dist.Params{Epsilon: 0.5}, Grid: g}, randomDataset(rng, 80))
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompressTST(trie)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := readWireVersion(&buf); err != nil {
		t.Fatal(err)
	}
	zr := flate.NewReader(&buf)
	var wc wireCompressed
	if err := gob.NewDecoder(zr).Decode(&wc); err != nil {
		t.Fatal(err)
	}
	zr.Close()
	mutate(&wc)
	var out bytes.Buffer
	if err := writeWireVersion(&out); err != nil {
		t.Fatal(err)
	}
	zw, err := flate.NewWriter(&out, flate.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(zw).Encode(&wc); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestReadCompressedErrors: corrupted inputs fail the read with a
// diagnostic instead of producing an index that breaks at query time.
func TestReadCompressedErrors(t *testing.T) {
	if _, err := ReadCompressed(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := ReadCompressed(bytes.NewReader([]byte{wireVersion, 'g', 'a', 'r', 'b'})); err == nil {
		t.Error("garbage should fail")
	}
	cases := []struct {
		name   string
		mutate func(*wireCompressed)
	}{
		{"bad magic", func(wc *wireCompressed) { wc.Magic = "XPTST1" }},
		{"node count mismatch", func(wc *wireCompressed) { wc.NumNodes++ }},
		{"leaf count mismatch", func(wc *wireCompressed) { wc.NumLeafs-- }},
		{"duplicate trajectory", func(wc *wireCompressed) { wc.TrajIDs[1] = wc.TrajIDs[0] }},
		{"empty trajectory", func(wc *wireCompressed) { wc.TrajLens[0] = 0 }},
		{"coordinate payload truncated", func(wc *wireCompressed) { wc.XPlanes = wc.XPlanes[:len(wc.XPlanes)-8] }},
		{"id/length arrays disagree", func(wc *wireCompressed) { wc.TrajLens = wc.TrajLens[:len(wc.TrajLens)-1] }},
		{"bad grid", func(wc *wireCompressed) { wc.Config.GridBits = -3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCompressed(corruptCompressed(t, tc.mutate)); err == nil {
				t.Fatalf("%s: corrupted stream decoded successfully", tc.name)
			} else {
				t.Logf("%s: %v", tc.name, err)
			}
		})
	}
}
