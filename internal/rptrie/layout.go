package rptrie

import "fmt"

// Layout identifies one of the per-partition index layouts: the
// pointer trie (Build), the two-tier succinct layout (Compress), or
// the trit-array tSTAT layout (CompressTST). The zero value is the
// pointer layout, so layout fields default to it.
type Layout uint8

const (
	LayoutPointer Layout = iota
	LayoutSuccinct
	LayoutCompressed
)

func (l Layout) String() string {
	switch l {
	case LayoutPointer:
		return "pointer"
	case LayoutSuccinct:
		return "succinct"
	case LayoutCompressed:
		return "compressed"
	}
	return fmt.Sprintf("Layout(%d)", uint8(l))
}

// Valid reports whether l names a known layout.
func (l Layout) Valid() bool { return l <= LayoutCompressed }

// ParseLayout maps a configuration string (e.g. a -layout flag value)
// to a Layout. The empty string is the pointer layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "pointer", "trie":
		return LayoutPointer, nil
	case "succinct":
		return LayoutSuccinct, nil
	case "compressed", "tstat":
		return LayoutCompressed, nil
	}
	return 0, fmt.Errorf("rptrie: unknown layout %q (want pointer, succinct, or compressed)", s)
}
