package rptrie

import (
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/pivot"
)

// TestSearchRadiusMatchesBruteForce: range results must be exactly
// the trajectories within the radius, for every measure.
func TestSearchRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	for trial := 0; trial < 10; trial++ {
		ds := randomDataset(rng, 80)
		q := randomDataset(rng, 1)[0]
		for _, m := range dist.Measures() {
			pivots := pivot.Select(ds, 3, 5, m, p, 3)
			trie, err := Build(Config{Measure: m, Params: p, Grid: g, Pivots: pivots}, ds)
			if err != nil {
				t.Fatal(err)
			}
			for _, radius := range []float64{0.5, 2.0, 100.0} {
				got := trie.SearchRadius(q.Points, radius)
				want := map[int]float64{}
				for _, tr := range ds {
					if d := dist.Distance(m, q.Points, tr.Points, p); d <= radius {
						want[tr.ID] = d
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%v radius %v trial %d: got %d results, want %d",
						m, radius, trial, len(got), len(want))
				}
				for i, r := range got {
					w, ok := want[r.ID]
					if !ok {
						t.Fatalf("%v: unexpected id %d", m, r.ID)
					}
					if d := r.Dist - w; d > 1e-9 || d < -1e-9 {
						t.Fatalf("%v: id %d dist %v want %v", m, r.ID, r.Dist, w)
					}
					if i > 0 && got[i-1].Dist > r.Dist {
						t.Fatalf("%v: results unsorted", m)
					}
				}
			}
		}
	}
}

func TestSearchRadiusEdgeCases(t *testing.T) {
	ds, q, g := paperDataset()
	trie, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if got := trie.SearchRadius(nil, 5); got != nil {
		t.Errorf("empty query = %v", got)
	}
	if got := trie.SearchRadius(q.Points, -1); got != nil {
		t.Errorf("negative radius = %v", got)
	}
	// Radius 0 with an exact duplicate finds it.
	dup := trie.SearchRadius(ds[0].Points, 0)
	if len(dup) != 1 || dup[0].ID != ds[0].ID {
		t.Errorf("radius 0 = %v", dup)
	}
	// Example 1 distances: radius 3.0 captures τ1 (2.83) only.
	got := trie.SearchRadius(q.Points, 3.0)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("radius 3 = %v, want only τ1", got)
	}
	// Radius 6.5 captures τ1, τ4, τ2, τ5 (2.83, 3.16, 6.08, 6.08).
	got = trie.SearchRadius(q.Points, 6.5)
	if len(got) != 4 {
		t.Errorf("radius 6.5 = %v, want 4 results", got)
	}
}
