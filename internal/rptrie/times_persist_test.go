package rptrie

import (
	"bytes"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
)

// timedDataset is the paper dataset with timestamps on a subset of
// the trajectories — the persistence tests must prove a mixed
// timed/untimed population round-trips exactly in every layout.
func timedDataset() []*geo.Trajectory {
	ds, _, _ := paperDataset()
	ds[0].Times = []int64{100, 200, 300, 400}
	ds[2].Times = []int64{-50, -50, 0, 7, 1 << 40}
	return ds
}

func sameTimes(a, b *geo.Trajectory) bool {
	if len(a.Times) != len(b.Times) {
		return false
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			return false
		}
	}
	return true
}

// TestTimestampedImageRoundTrip: Times survive Save/Read bit-exactly
// in all three layouts, including which trajectories have none.
func TestTimestampedImageRoundTrip(t *testing.T) {
	ds := timedDataset()
	_, _, g := paperDataset()
	cfg := Config{Measure: dist.Hausdorff, Grid: g}
	tr, err := Build(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	check := func(layout string, got map[int32]*geo.Trajectory) {
		t.Helper()
		for _, want := range ds {
			back, ok := got[int32(want.ID)]
			if !ok {
				t.Fatalf("%s: trajectory %d missing after round-trip", layout, want.ID)
			}
			if !sameTimes(want, back) {
				t.Fatalf("%s: trajectory %d times %v round-tripped to %v", layout, want.ID, want.Times, back.Times)
			}
		}
	}

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	pt, err := ReadTrie(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	check("pointer", pt.state().trajs)

	suc, err := Compress(tr)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := suc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sb, err := ReadSuccinct(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	check("succinct", sb.state().trajs)

	cmp, err := CompressTST(tr)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := cmp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cb, err := ReadCompressed(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	check("compressed", cb.state().trajs)
}

// TestTimestampValidationRejected: indexes refuse trajectories whose
// Times disagree with Points or go backwards, at build and at staging.
func TestTimestampValidationRejected(t *testing.T) {
	_, _, g := paperDataset()
	cfg := Config{Measure: dist.Hausdorff, Grid: g}
	bad := mkTraj(9, 1.5, 1.5, 2.5, 2.5)
	bad.Times = []int64{10} // length mismatch
	if _, err := Build(cfg, []*geo.Trajectory{bad}); err == nil {
		t.Fatal("Build accepted a trajectory with mismatched timestamps")
	}
	ds, _, _ := paperDataset()
	tr, err := Build(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(bad); err == nil {
		t.Fatal("Insert accepted a trajectory with mismatched timestamps")
	}
	bad.Times = []int64{30, 10} // non-monotonic
	if err := tr.Upsert(bad); err == nil {
		t.Fatal("Upsert accepted a trajectory with non-monotonic timestamps")
	}
	ok := mkTraj(9, 1.5, 1.5, 2.5, 2.5)
	ok.Times = []int64{10, 30}
	if err := tr.Insert(ok); err != nil {
		t.Fatalf("Insert rejected valid timestamps: %v", err)
	}
}

// FuzzTimestampedImageDecode hammers the three image decoders with
// mutated bytes seeded from valid timestamped images: whatever the
// corruption, decoding must fail cleanly or produce a valid index —
// never panic, and never accept timestamps that violate ValidTimes.
func FuzzTimestampedImageDecode(f *testing.F) {
	ds := timedDataset()
	_, _, g := paperDataset()
	cfg := Config{Measure: dist.Hausdorff, Grid: g}
	tr, err := Build(cfg, ds)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(byte(0), buf.Bytes())
	suc, _ := Compress(tr)
	buf.Reset()
	if err := suc.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(byte(1), buf.Bytes())
	cmp, _ := CompressTST(tr)
	buf.Reset()
	if err := cmp.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(byte(2), buf.Bytes())

	f.Fuzz(func(t *testing.T, which byte, img []byte) {
		switch which % 3 {
		case 0:
			if back, err := ReadTrie(bytes.NewReader(img)); err == nil {
				for _, tr := range back.state().trajs {
					if !tr.ValidTimes() {
						t.Fatal("decoder accepted invalid timestamps")
					}
				}
			}
		case 1:
			if back, err := ReadSuccinct(bytes.NewReader(img)); err == nil {
				for _, tr := range back.state().trajs {
					if !tr.ValidTimes() {
						t.Fatal("decoder accepted invalid timestamps")
					}
				}
			}
		case 2:
			if back, err := ReadCompressed(bytes.NewReader(img)); err == nil {
				for _, tr := range back.state().trajs {
					if !tr.ValidTimes() {
						t.Fatal("decoder accepted invalid timestamps")
					}
				}
			}
		}
	})
}
