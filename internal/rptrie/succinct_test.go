package rptrie

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/pivot"
)

// TestSuccinctMatchesPointerTrie: the succinct layout must answer
// every query identically to the trie it was compressed from.
func TestSuccinctMatchesPointerTrie(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{X: 0, Y: 0}}
	for trial := 0; trial < 6; trial++ {
		ds := randomDataset(rng, 100)
		queries := randomDataset(rng, 5)
		for _, m := range dist.Measures() {
			pivots := pivot.Select(ds, 3, 5, m, p, 11)
			cfgs := []Config{
				{Measure: m, Params: p, Grid: g},
				{Measure: m, Params: p, Grid: g, Pivots: pivots},
			}
			if m.OrderIndependent() {
				cfgs = append(cfgs, Config{Measure: m, Params: p, Grid: g, Optimize: true, Pivots: pivots})
			}
			for ci, cfg := range cfgs {
				trie, err := Build(cfg, ds)
				if err != nil {
					t.Fatal(err)
				}
				suc, err := Compress(trie)
				if err != nil {
					t.Fatal(err)
				}
				for qi, q := range queries {
					for _, k := range []int{1, 7} {
						got := suc.Search(q.Points, k)
						ctx := fmt.Sprintf("%v cfg %d q %d k %d", m, ci, qi, k)
						assertTopK(t, ctx, m, p, ds, q.Points, k, got)
					}
				}
			}
		}
	}
}

// TestSuccinctSmallerThanPointer: compression should reduce the
// footprint on a realistic dataset.
func TestSuccinctSmallerThanPointer(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, _ := grid.NewWithBits(region, 5)
	ds := randomDataset(rng, 500)
	trie, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	suc, err := Compress(trie)
	if err != nil {
		t.Fatal(err)
	}
	if suc.SizeBytes() >= trie.SizeBytes() {
		t.Errorf("succinct %d bytes >= pointer %d bytes", suc.SizeBytes(), trie.SizeBytes())
	}
	if suc.NumNodes() != trie.NumNodes() || suc.NumLeaves() != trie.NumLeaves() {
		t.Error("node counts should carry over")
	}
	if suc.Len() != trie.Len() {
		t.Error("Len should carry over")
	}
	if suc.DenseLevels() == 0 {
		t.Error("expected at least one dense level")
	}
}

func TestSuccinctEmptyTrie(t *testing.T) {
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, _ := grid.NewWithBits(region, 3)
	trie, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, nil)
	if err != nil {
		t.Fatal(err)
	}
	suc, err := Compress(trie)
	if err != nil {
		t.Fatal(err)
	}
	if res := suc.Search([]geo.Point{{X: 1, Y: 1}}, 3); res != nil {
		t.Errorf("empty succinct search = %v", res)
	}
}

func TestCompressNil(t *testing.T) {
	if _, err := Compress(nil); err == nil {
		t.Error("expected error for nil trie")
	}
}

// TestSuccinctPaperExample: the running example answers correctly
// through the succinct layout too.
func TestSuccinctPaperExample(t *testing.T) {
	ds, q, g := paperDataset()
	trie, err := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	if err != nil {
		t.Fatal(err)
	}
	suc, err := Compress(trie)
	if err != nil {
		t.Fatal(err)
	}
	res := suc.Search(q.Points, 2)
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 4 {
		t.Errorf("top-2 = %v, want ids [1 4]", res)
	}
}

func TestDirectedRounding(t *testing.T) {
	vals := []float64{0, 1, math.Pi, 1e-40, 1e30, -math.Pi, 0.1, 1.0000000001}
	for _, v := range vals {
		if float64(f32Down(v)) > v {
			t.Errorf("f32Down(%v) = %v rounded up", v, f32Down(v))
		}
		if float64(f32Up(v)) < v {
			t.Errorf("f32Up(%v) = %v rounded down", v, f32Up(v))
		}
	}
	if !math.IsInf(float64(f32Down(math.Inf(1))), 1) {
		t.Error("f32Down(+Inf) should stay +Inf")
	}
	if !math.IsInf(float64(f32Up(math.Inf(-1))), -1) {
		t.Error("f32Up(-Inf) should stay -Inf")
	}
}

// TestSuccinctStatsComparable: traversal statistics should be in the
// same ballpark as the pointer trie (identical pruning decisions
// except for float32 HR rounding, which can only weaken LBp
// slightly).
func TestSuccinctStatsComparable(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, _ := grid.NewWithBits(region, 4)
	ds := randomDataset(rng, 300)
	trie, _ := Build(Config{Measure: dist.Hausdorff, Grid: g}, ds)
	suc, _ := Compress(trie)
	q := []geo.Point{{X: 1, Y: 1}, {X: 2, Y: 1.5}}
	_, st1 := trie.SearchWithStats(q, 10)
	_, st2 := suc.SearchWithStats(q, 10)
	if st1.ExactComputations != st2.ExactComputations {
		t.Errorf("exact computations differ: %d vs %d (no pivots in play)",
			st1.ExactComputations, st2.ExactComputations)
	}
}
