package rptrie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/grid"
	"repose/internal/pivot"
)

// validate walks a built trie and checks its structural invariants:
//
//  1. every indexed trajectory id appears in exactly one leaf;
//  2. children are sorted by z-value and unique;
//  3. node [minLen, maxLen] covers every member below;
//  4. maxDepthBelow is exact;
//  5. HR ranges of a parent cover those of its children and, at
//     leaves, the exact pivot distances of members;
//  6. leaf Dmax bounds the distance from every member to the leaf's
//     reference trajectory.
func validate(t *testing.T, tr *Trie) {
	t.Helper()
	seen := map[int32]int{}
	var walk func(n *node, path []uint64) (minLen, maxLen, depth int)
	walk = func(n *node, path []uint64) (int, int, int) {
		minLen, maxLen := int(^uint(0)>>1), 0
		if n.leaf != nil {
			refPts := tr.cfg.Grid.ReferencePoints(path)
			for _, tid := range n.leaf.tids {
				seen[tid]++
				traj := tr.state().trajs[tid]
				if traj == nil {
					t.Fatalf("leaf holds unknown tid %d", tid)
				}
				l := len(traj.Points)
				if l < n.leaf.minLen || l > n.leaf.maxLen {
					t.Fatalf("leaf len range [%d,%d] misses member %d (len %d)",
						n.leaf.minLen, n.leaf.maxLen, tid, l)
				}
				if tr.cfg.Measure.IsMetric() {
					d := dist.Distance(tr.cfg.Measure, traj.Points, refPts, tr.cfg.Params)
					if d > n.leaf.dmax+1e-9 {
						t.Fatalf("leaf Dmax %v < member %d distance %v", n.leaf.dmax, tid, d)
					}
				}
				if tr.cfg.Pivots != nil {
					for i, pv := range tr.cfg.Pivots {
						d := dist.Distance(tr.cfg.Measure, pv.Points, traj.Points, tr.cfg.Params)
						if d < n.hr[i].Min-1e-9 || d > n.hr[i].Max+1e-9 {
							t.Fatalf("HR[%d]=%+v misses member %d distance %v", i, n.hr[i], tid, d)
						}
					}
				}
			}
			if n.leaf.minLen < minLen {
				minLen = n.leaf.minLen
			}
			if n.leaf.maxLen > maxLen {
				maxLen = n.leaf.maxLen
			}
		}
		depth := 0
		var lastZ uint64
		for ci, c := range n.children {
			if ci > 0 && c.z <= lastZ {
				t.Fatalf("children unsorted: %d after %d", c.z, lastZ)
			}
			lastZ = c.z
			cmin, cmax, cdepth := walk(c, append(path, c.z))
			if cmin != c.minLen || cmax != c.maxLen {
				t.Fatalf("node len range [%d,%d] vs computed [%d,%d]", c.minLen, c.maxLen, cmin, cmax)
			}
			if cdepth != c.maxDepthBelow {
				t.Fatalf("maxDepthBelow %d vs computed %d", c.maxDepthBelow, cdepth)
			}
			if cmin < minLen {
				minLen = cmin
			}
			if cmax > maxLen {
				maxLen = cmax
			}
			if cdepth+1 > depth {
				depth = cdepth + 1
			}
			if tr.cfg.Pivots != nil {
				for i := range n.hr {
					if !c.hr[i].IsEmpty() &&
						(c.hr[i].Min < n.hr[i].Min-1e-9 || c.hr[i].Max > n.hr[i].Max+1e-9) {
						t.Fatalf("parent HR %+v does not cover child %+v", n.hr[i], c.hr[i])
					}
				}
			}
		}
		return minLen, maxLen, depth
	}
	walk(tr.state().root, nil)
	if len(seen) != len(tr.state().trajs) {
		t.Fatalf("leaves hold %d distinct tids, index has %d", len(seen), len(tr.state().trajs))
	}
	for tid, count := range seen {
		if count != 1 {
			t.Fatalf("tid %d appears in %d leaves", tid, count)
		}
	}
}

// TestTrieInvariantsQuick builds tries from random datasets under
// random configurations and validates every structural invariant.
func TestTrieInvariantsQuick(t *testing.T) {
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	f := func(seed int64, bitsRaw uint8, measureRaw uint8, optimizeRaw, pivotsRaw bool) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := int(bitsRaw)%5 + 1
		m := dist.Measure(int(measureRaw) % 6)
		optimize := optimizeRaw && m.OrderIndependent()
		g, err := grid.NewWithBits(region, bits)
		if err != nil {
			t.Fatal(err)
		}
		ds := randomDataset(rng, 10+rng.Intn(60))
		var pivots []*geo.Trajectory
		if pivotsRaw {
			pivots = pivot.Select(ds, 2, 3, m, p, seed)
		}
		tr, err := Build(Config{
			Measure: m, Params: p, Grid: g, Optimize: optimize, Pivots: pivots,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		validate(t, tr)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSearchIsSubsetInvariantQuick: results are always ≤ k, sorted,
// deduplicated, and reported distances are exact. (The full
// brute-force equivalence is covered in rptrie_test.go; this is the
// cheap always-on property.)
func TestSearchIsSubsetInvariantQuick(t *testing.T) {
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 8, Y: 8}}
	g, err := grid.NewWithBits(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := dist.Params{Epsilon: 0.5, Gap: geo.Point{}}
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw)%20 + 1
		ds := randomDataset(rng, 10+rng.Intn(50))
		m := dist.Measure(rng.Intn(6))
		tr, err := Build(Config{Measure: m, Params: p, Grid: g}, ds)
		if err != nil {
			t.Fatal(err)
		}
		q := randomDataset(rng, 1)[0]
		got := tr.Search(q.Points, k)
		want := k
		if len(ds) < k {
			want = len(ds)
		}
		if len(got) != want {
			return false
		}
		seen := map[int]bool{}
		for i, r := range got {
			if seen[r.ID] {
				return false
			}
			seen[r.ID] = true
			if i > 0 && got[i-1].Dist > r.Dist {
				return false
			}
			exact := dist.Distance(m, q.Points, tr.Trajectory(r.ID).Points, p)
			if d := exact - r.Dist; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
