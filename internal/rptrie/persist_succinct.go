package rptrie

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"

	"repose/internal/bits"
	"repose/internal/geo"
)

// Succinct persistence mirrors the pointer layout's (persist.go): one
// gob stream carrying the compressed core verbatim — bitmaps, packed
// HR floats, the sparse blob — plus the indexed trajectories, so a
// restored index is byte-identical in structure to the saved one and
// answers queries with identical work. Worker.Restore streams these
// images when a recovering worker rejoins the cluster.

// wireSuccMagic identifies the succinct wire format.
const wireSuccMagic = "RPSUCC1"

// wireDenseLevel is one bitmap-encoded level. Meta is flattened as
// (minLen, maxLen, maxDepthBelow) triples; the bitsets serialize via
// bits.Set's BinaryMarshaler and arrive sealed.
type wireDenseLevel struct {
	N        int
	Bc       *bits.Set
	Bt       *bits.Set
	LeafBase int
	Meta     []int32
	HR       []float32
}

// wireSuccLeaf is one terminal payload.
type wireSuccLeaf struct {
	Tids           []int32
	Dmax           float64
	MinLen, MaxLen int32
}

type wireSuccinct struct {
	Magic    string
	Config   wireConfig
	Gen      uint64
	Alphabet []uint64
	Levels   []wireDenseLevel
	Sparse   []int
	Blob     []byte
	Leaves   []wireSuccLeaf
	Np       int
	NumNodes int
	NumLeafs int
	Trajs    []*geo.Trajectory
}

// Save serializes the succinct index to w in the gob wire format
// readable by ReadSuccinct. A pending delta is folded into the saved
// image (rebuild + recompress, exactly like Compact), so the restored
// index always starts fully compacted — at the source's generation,
// keeping restored replicas generation-aligned with their donor.
func (s *Succinct) Save(w io.Writer) error {
	st := s.state()
	core := st.core
	trajs := st.trajs
	if !st.delta.empty() {
		ts, err := buildState(s.cfg, st.delta.merged(st.trajs))
		if err != nil {
			return err
		}
		if core, err = compressCore(s.cfg, ts); err != nil {
			return err
		}
		trajs = ts.trajs
	}
	ws := wireSuccinct{
		Magic:    wireSuccMagic,
		Config:   wireConfigOf(s.cfg),
		Gen:      st.gen,
		Alphabet: core.alphabet,
		Sparse:   core.sparse,
		Blob:     core.blob,
		Np:       core.np,
		NumNodes: core.numNodes,
		NumLeafs: core.numLeafs,
	}
	for _, dl := range core.levels {
		meta := make([]int32, 0, len(dl.meta)*3)
		for _, m := range dl.meta {
			meta = append(meta, m.minLen, m.maxLen, m.maxDepth)
		}
		ws.Levels = append(ws.Levels, wireDenseLevel{
			N: dl.n, Bc: dl.bc, Bt: dl.bt, LeafBase: dl.leafBase, Meta: meta, HR: dl.hr,
		})
	}
	for _, l := range core.leaves {
		ws.Leaves = append(ws.Leaves, wireSuccLeaf{Tids: l.tids, Dmax: l.dmax, MinLen: l.minLen, MaxLen: l.maxLen})
	}
	ws.Trajs = make([]*geo.Trajectory, 0, len(trajs))
	for _, tr := range trajs {
		ws.Trajs = append(ws.Trajs, tr)
	}
	// Deterministic image bytes for identical state (see persist.go).
	sort.Slice(ws.Trajs, func(i, j int) bool { return ws.Trajs[i].ID < ws.Trajs[j].ID })
	if err := writeWireVersion(w); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(&ws)
}

// ReadSuccinct deserializes a succinct index written by Save,
// validating the structural invariants the searcher relies on so a
// corrupted stream fails the read instead of a later query.
func ReadSuccinct(r io.Reader) (*Succinct, error) {
	if err := readWireVersion(r); err != nil {
		return nil, err
	}
	var ws wireSuccinct
	if err := gob.NewDecoder(r).Decode(&ws); err != nil {
		return nil, fmt.Errorf("rptrie: decode: %w", err)
	}
	if ws.Magic != wireSuccMagic {
		return nil, fmt.Errorf("rptrie: bad magic %q", ws.Magic)
	}
	cfg, err := configFromWire(ws.Config)
	if err != nil {
		return nil, err
	}
	if ws.Np < 0 || ws.Np > len(ws.Config.Pivots) {
		return nil, fmt.Errorf("rptrie: pivot count %d out of range", ws.Np)
	}
	core := &succCore{
		alphabet: ws.Alphabet,
		sparse:   ws.Sparse,
		blob:     ws.Blob,
		np:       ws.Np,
		numNodes: ws.NumNodes,
		numLeafs: ws.NumLeafs,
	}
	trajs := make(map[int32]*geo.Trajectory, len(ws.Trajs))
	for _, tr := range ws.Trajs {
		if tr == nil || len(tr.Points) == 0 {
			return nil, errors.New("rptrie: empty trajectory in stream")
		}
		if !tr.ValidTimes() {
			return nil, fmt.Errorf("rptrie: trajectory %d has invalid timestamps", tr.ID)
		}
		trajs[int32(tr.ID)] = tr
	}
	for i, l := range ws.Leaves {
		for _, tid := range l.Tids {
			if _, ok := trajs[tid]; !ok {
				return nil, fmt.Errorf("rptrie: leaf %d references unknown trajectory %d", i, tid)
			}
		}
		core.leaves = append(core.leaves, sLeaf{tids: l.Tids, dmax: l.Dmax, minLen: l.MinLen, maxLen: l.MaxLen})
	}
	a := len(core.alphabet)
	for i := 1; i < a; i++ {
		if core.alphabet[i] <= core.alphabet[i-1] {
			return nil, errors.New("rptrie: alphabet not strictly ascending")
		}
	}
	for li, wl := range ws.Levels {
		if wl.Bc == nil || wl.Bt == nil {
			return nil, fmt.Errorf("rptrie: level %d missing bitmaps", li)
		}
		if wl.N <= 0 || len(wl.Meta) != wl.N*3 {
			return nil, fmt.Errorf("rptrie: level %d meta length %d for %d nodes", li, len(wl.Meta), wl.N)
		}
		if wl.Bc.Len() != wl.N*a || wl.Bt.Len() != wl.N {
			return nil, fmt.Errorf("rptrie: level %d bitmap sizes (%d, %d) inconsistent with %d nodes", li, wl.Bc.Len(), wl.Bt.Len(), wl.N)
		}
		if len(wl.HR) != 0 && len(wl.HR) != wl.N*core.np*2 {
			return nil, fmt.Errorf("rptrie: level %d HR length %d", li, len(wl.HR))
		}
		if wl.LeafBase < 0 || wl.LeafBase+wl.Bt.Ones() > len(core.leaves) {
			return nil, fmt.Errorf("rptrie: level %d terminal payloads out of range", li)
		}
		dl := &denseLevel{n: wl.N, bc: wl.Bc, bt: wl.Bt, leafBase: wl.LeafBase, hr: wl.HR}
		dl.meta = make([]denseMeta, wl.N)
		for i := range dl.meta {
			dl.meta[i] = denseMeta{minLen: wl.Meta[i*3], maxLen: wl.Meta[i*3+1], maxDepth: wl.Meta[i*3+2]}
		}
		core.levels = append(core.levels, dl)
	}
	// The sparse offsets address the blob; each must point at a valid
	// record start, in ascending order.
	prev := -1
	for i, off := range core.sparse {
		if off < 0 || off >= len(core.blob) && !(off == 0 && len(core.blob) == 0) {
			return nil, fmt.Errorf("rptrie: sparse offset %d (entry %d) outside blob of %d bytes", off, i, len(core.blob))
		}
		if off <= prev {
			return nil, errors.New("rptrie: sparse offsets not ascending")
		}
		prev = off
	}
	if len(core.levels) > 0 {
		last := core.levels[len(core.levels)-1]
		if edges := last.bc.Ones(); len(core.sparse) != 0 && edges != len(core.sparse) {
			return nil, fmt.Errorf("rptrie: %d sparse roots for %d dense leaf edges", len(core.sparse), edges)
		}
	} else if len(core.sparse) != 1 {
		return nil, errors.New("rptrie: level-less index must have exactly one sparse root")
	}
	s := &Succinct{cfg: cfg}
	s.cur.Store(&succState{gen: ws.Gen, core: core, trajs: trajs})
	return s, nil
}
