// Package rptrie implements the Reference Point Trie (RP-Trie), the
// core index of REPOSE (Sections III and IV of the paper).
//
// Trajectories are discretized into reference trajectories (z-value
// sequences) on a grid; the trie indexes those sequences. Leaves
// record the ids of all trajectories sharing a reference trajectory,
// the maximum distance Dmax from the reference trajectory to those
// trajectories, and per-pivot distance ranges HR. Top-k queries
// traverse the trie best-first (Algorithm 2), pruning with the
// one-side bound LBo (Section IV-B), the two-side bound LBt
// (Section IV-C), and the pivot bound LBp (Section IV-D); the bound
// computations themselves live in repose/internal/dist (LBo/LBt) and
// repose/internal/pivot (LBp).
//
// Two structural optimizations are provided: z-value re-arrangement
// for order-independent measures via the greedy hitting-set
// construction (Section III-C, Appendix B) and a succinct two-tier
// layout — rank-addressable bitmaps for the dense upper levels,
// lazily decoded byte sequences for the sparse lower levels
// (Section III-B). Tries persist via Save/ReadTrie so a restarted
// worker skips the construction cost; range search (SearchRadius) is
// provided as an extension beyond the paper.
//
// # The compressed trit-array layout (tSTAT)
//
// CompressTST produces a third, maximally compact layout after the
// succinct trie of Kanda & Fujii, "Practical trie-based string
// dictionaries" (arXiv 2005.10917), adapted to the RP-Trie. Nodes are
// BFS-numbered; structure is two bitvector planes (a trit per node
// classifying it pure leaf / terminal-with-children / plain internal)
// plus a degree-unary LOUDS vector, all answered by O(1) rank/select
// over repose/internal/bits. Edge z-values are coded
// as bit-packed indices into a sorted alphabet of the distinct
// z-values actually present, and per-leaf metadata lives in shared
// flat arrays. Per-node pivot distance ranges are quantized to 16
// buckets per pivot (one nibble per bound): the min rounds down and
// the max rounds up to bucket boundaries, so the stored interval only
// ever widens, LBp remains admissible, and top-k/radius results stay
// bit-identical to the pointer layout — the quantization trades a
// little pruning power, never correctness. The layout supports the
// full surface (top-k, radius, delta-overlay mutations, Compact) and
// keeps the delta-empty hot path allocation-free.
//
// Its Save image deliberately omits the encoded core: the core is a
// pure, deterministic function of (config, trajectories) — the same
// derivation Compact runs — so ReadCompressed rebuilds it from the
// trajectory payload and cross-checks the recorded node/leaf counts.
// Snapshot transfers therefore ship little more than delta-coded
// coordinates, which is what makes failover heals of compressed
// partitions cheap (see BENCH_memory.json at the repo root).
//
// # Query hot path
//
// Every query draws a recycled working set (the scratch) from a
// per-index sync.Pool: the memoized query→cell distance table and
// bound-state arena (dist.QueryBounds), the DP rows of the exact
// kernels (dist.Scratch), the best-first priority queue, and the
// top-k heap. In steady state — once the pool has warmed to the
// workload's high-water sizes — a top-k query on the pointer layout
// performs no heap allocations (BenchmarkSearch/trie reports
// 0 allocs/op).
//
// # Parallel leaf refinement and the atomic threshold
//
// SearchOptions.RefineWorkers fans a fat leaf's exact-distance
// computations over a worker group. Workers share the current
// pruning threshold dk through an atomic float64 and serialize
// result-heap pushes behind a mutex, so a worker may read a *stale*
// threshold — one that a concurrent push has since tightened. That is
// admissible: the threshold only ever decreases, so a stale value is
// only ever too large, and DistanceBounded with a larger cutoff
// abandons less eagerly — it returns the exact distance for every
// candidate the fresh threshold would have kept, and for candidates
// it need not have computed the push simply rejects them. The final
// top-k set is determined by the exact (distance, id) order alone,
// which is why the parallel path returns bit-identical results to the
// sequential one (TestParallelRefineParity). The sequential
// best-first loop tolerates the same staleness between partitions, so
// nothing about the argument is new — only the float64-bits atomic
// that carries it.
//
// # Online updates: generations, deltas, and compaction
//
// Both layouts support Insert, Delete, and Upsert through an
// epoch/generation scheme (dynamic.go). The structural core built at
// construction time is immutable; mutations accumulate in a small
// immutable delta overlay — an append buffer of pending inserts plus
// a tombstone set — and every mutation publishes a whole new state
// (shallow core copy, cloned delta, generation+1) through one atomic
// pointer swap. A query loads the pointer exactly once, so it is
// snapshot-isolated: it observes all of a mutation or none of it,
// with no read-side locking, and the delta-empty read path is
// byte-identical to the static one (BenchmarkSearch/trie stays
// 0 allocs/op). Compact rebuilds the core over the live set — core
// minus tombstones plus pending inserts — re-running the ordinary
// build (including z-value re-arrangement), and swaps the compacted
// state in as the next generation; SearchOptions.MinGen lets a caller
// pin a query to a generation floor (ErrStale below it), which the
// cluster layer uses for read-your-writes.
//
// # Refined query modes and segment admissibility
//
// SearchOptions.Refiner swaps the leaf-refinement strategy while the
// traversal machinery stays put. A nil Refiner is the built-in exact
// whole-trajectory distance (the allocation-free default, pinned by
// BenchmarkSearch/refiner); NewRefiner builds the two refined modes:
// subtrajectory search (RefineSpec.Sub — score each candidate's
// best-matching contiguous segment, dist.SubDistance) and
// time-windowed search (RefineSpec.Window — candidates must have a
// sample timestamped inside [From, To], and only the in-window run is
// scored; both compose). Matched segments come back as [Start, End)
// on topk.Item.
//
// A segment-scoring refiner invalidates two of the three stored
// bounds. LBt folds the leaf's Dmax — the distance from the reference
// trajectory to the whole candidate — into a triangle-style bound,
// and LBp compares whole-trajectory pivot distances; a segment of the
// candidate satisfies neither inequality, so both are dropped
// (Refiner.Subsequence reports this and the searcher also skips
// computing query–pivot distances entirely). What remains admissible
// is the query-side half of LBo, exposed as dist.PathBounder.LBoSub:
// terms aggregating min-distances from query points to the
// trajectory's grid cells survive segment restriction for measures
// whose definition quantifies over every query point —
//
//   - Hausdorff, Frechet: max over query points of the cell min
//     distance (every query point must still be matched by any
//     segment) — complete reference paths only;
//   - DTW: the sum of those minima (every query point appears in any
//     warping path);
//   - LCSS: 1 when no query point can match within Epsilon (then no
//     segment can either); otherwise 0;
//   - EDR: m − MaxLen when positive (alignment needs at least
//     m − |segment| ≥ m − |trajectory| edits — valid even on
//     incomplete paths), plus the count of query points matchable by
//     no cell;
//   - ERP: the sum over query points of min(cell min distance, gap
//     distance) — each query point is either matched or gapped.
//
// Candidate-side terms (cells the *trajectory* must visit) are all
// dropped: a segment may omit any prefix or suffix of the reference
// path. For measures/nodes where every surviving term degenerates to
// zero (e.g. LCSS with any matchable query point, or any incomplete
// reference path under Hausdorff/Frechet/DTW/ERP), LBoSub returns 0
// and the traversal decays to bound-free leaf enumeration — every
// leaf is refined exactly, so answers remain oracle-exact, just
// without pruning. The admissibility of LBoSub is property-tested
// against the brute-force best segment in internal/dist, and the
// refined modes are differential-tested against internal/oracle for
// all measures, all three layouts, and mid-mutation interleavings
// (refine_differential_test.go). The time-window clip is itself a
// contiguous segment, so the same argument covers windowed scoring,
// and trajectories without timestamps never match a windowed query.
//
// The bounds stay admissible under mutation without being touched:
// deleting a member only loosens a leaf's precomputed Dmax/HR/length
// bounds (they still lower-bound every remaining member, tombstones
// are simply skipped at refinement), and pending inserts are never
// covered by any stored bound — they are answered by an exact linear
// scan of the append buffer, run before the best-first loop so the
// threshold it establishes tightens trie pruning rather than
// weakening it. Correctness across random mutation interleavings is
// pinned to the brute-force oracle for all six measures and both
// layouts in differential_test.go.
package rptrie
