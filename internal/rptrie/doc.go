// Package rptrie implements the Reference Point Trie (RP-Trie), the
// core index of REPOSE (Sections III and IV of the paper).
//
// Trajectories are discretized into reference trajectories (z-value
// sequences) on a grid; the trie indexes those sequences. Leaves
// record the ids of all trajectories sharing a reference trajectory,
// the maximum distance Dmax from the reference trajectory to those
// trajectories, and per-pivot distance ranges HR. Top-k queries
// traverse the trie best-first (Algorithm 2), pruning with the
// one-side bound LBo (Section IV-B), the two-side bound LBt
// (Section IV-C), and the pivot bound LBp (Section IV-D); the bound
// computations themselves live in repose/internal/dist (LBo/LBt) and
// repose/internal/pivot (LBp).
//
// Two structural optimizations are provided: z-value re-arrangement
// for order-independent measures via the greedy hitting-set
// construction (Section III-C, Appendix B) and a succinct two-tier
// layout — rank-addressable bitmaps for the dense upper levels,
// lazily decoded byte sequences for the sparse lower levels
// (Section III-B). Tries persist via Save/ReadTrie so a restarted
// worker skips the construction cost; range search (SearchRadius) is
// provided as an extension beyond the paper.
package rptrie
