package rptrie

import (
	"context"
	"math"
	"sync"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// SearchRadius returns every indexed trajectory within distance
// radius of q, ascending by (distance, id). It reuses the top-k
// machinery with a fixed threshold instead of a shrinking dk — the
// range-query primitive DITA builds its top-k on, provided here as an
// extension (the paper's Section IX mentions range search only via
// DITA).
func (t *Trie) SearchRadius(q []geo.Point, radius float64) []topk.Item {
	out, _ := t.SearchRadiusContext(nil, q, radius, SearchOptions{})
	return out
}

// SearchRadiusContext is SearchRadius honoring per-query options and
// cancellation: the walk polls ctx periodically and aborts with its
// error once it is cancelled or past its deadline. A nil ctx disables
// cancellation.
func (t *Trie) SearchRadiusContext(ctx context.Context, q []geo.Point, radius float64, opt SearchOptions) ([]topk.Item, error) {
	st := t.state()
	if opt.MinGen > st.gen {
		return nil, ErrStale
	}
	if len(q) == 0 || st.live() == 0 || radius < 0 {
		return nil, nil
	}
	sc := t.pool.get()
	defer t.pool.put(sc)
	rq := rangeQuery{
		cfg: t.cfg, trajs: st.trajs,
		ctxPoller: ctxPoller{ctx: ctx}, sc: sc, q: q, radius: radius,
		workers: opt.RefineWorkers,
	}
	if d := st.delta; d != nil && len(d.dels) > 0 {
		rq.dels = d.dels
	}
	rq.setRefiner(opt.Refiner)
	if err := rq.err(); err != nil {
		return nil, err
	}
	if t.cfg.Pivots != nil && !t.cfg.DisableLBp && !opt.NoPivots && !rq.subseq {
		sc.dqp = pivot.AppendDistances(sc.dqp[:0], q, t.cfg.Pivots, t.cfg.Measure, t.cfg.Params, &sc.ds)
		rq.dqp = sc.dqp
	}
	sc.qb.Reset(t.cfg.Measure, q, t.cfg.Grid, t.cfg.Params)
	sc.items = sc.items[:0]
	// Pending inserts sit outside the trie: scan them exactly.
	if d := st.delta; d != nil {
		for _, tr := range d.adds {
			if rq.cancelled() {
				return nil, rq.err()
			}
			if it, ok := rq.refineOne(tr, &sc.ds); ok {
				sc.items = append(sc.items, it)
			}
		}
	}
	if err := rq.walk(st.root, sc.qb.Root()); err != nil {
		return nil, err
	}
	topk.SortItems(sc.items)
	if len(sc.items) == 0 {
		return nil, nil
	}
	// The accumulator is pooled; hand the caller its own copy.
	return append([]topk.Item(nil), sc.items...), nil
}

// rangeQuery carries one range query's state through the recursive
// walk; hits accumulate in the pooled sc.items.
type rangeQuery struct {
	ctxPoller
	cfg     Config
	trajs   map[int32]*geo.Trajectory
	dels    map[int32]struct{} // tombstones filtered at refinement
	sc      *searchScratch
	q       []geo.Point
	radius  float64
	dqp     []float64
	workers int
	refiner Refiner // nil: default whole-trajectory refinement
	subseq  bool    // refiner scores segments: use LBoSub, no LBt/LBp
}

// setRefiner attaches the query's refiner; see searcher.setRefiner.
func (rq *rangeQuery) setRefiner(r Refiner) {
	rq.refiner = r
	rq.subseq = r != nil && r.Subsequence()
}

// refineOne scores one candidate against the fixed radius and reports
// whether it is a hit. The returned item is fully populated (matched
// segment included when a subsequence refiner is active).
func (rq *rangeQuery) refineOne(tr *geo.Trajectory, s *dist.Scratch) (topk.Item, bool) {
	if rq.refiner != nil {
		d, start, end := rq.refiner.Refine(rq.q, tr, rq.radius, s)
		if d <= rq.radius && !math.IsInf(d, 1) {
			return topk.Item{ID: tr.ID, Dist: d, Start: start, End: end}, true
		}
		return topk.Item{}, false
	}
	d := dist.DistanceBoundedScratch(rq.cfg.Measure, rq.q, tr.Points, rq.cfg.Params, rq.radius, s)
	if d <= rq.radius && !math.IsInf(d, 1) {
		return topk.Item{ID: tr.ID, Dist: d}, true
	}
	return topk.Item{}, false
}

// walk prunes subtrees whose bound exceeds radius and refines
// surviving leaves. Depth-first: unlike top-k, range search gains
// nothing from best-first ordering because the threshold is fixed.
// walk consumes b: the last child takes ownership of it, so the
// caller must not reuse (only Release) it afterwards.
func (rq *rangeQuery) walk(n *node, b *dist.PathBounder) error {
	if rq.cancelled() {
		return rq.err()
	}
	if rq.dqp != nil && n.hr != nil && pivot.LowerBound(rq.dqp, n.hr) > rq.radius {
		return nil
	}
	if n.leaf != nil {
		lb := 0.0
		if rq.subseq {
			lb = b.LBoSub(dist.NodeMeta{MinLen: n.leaf.minLen, MaxLen: n.leaf.maxLen})
		} else if !rq.cfg.DisableLBt {
			lb = b.LBtBounded(dist.LeafMeta{
				NodeMeta: dist.NodeMeta{MinLen: n.leaf.minLen, MaxLen: n.leaf.maxLen},
				Dmax:     n.leaf.dmax,
			}, rq.radius, &rq.sc.ds)
		}
		if lb <= rq.radius {
			if err := rq.refineLeaf(n.leaf.tids); err != nil {
				return err
			}
		}
	}
	for i, c := range n.children {
		var cb *dist.PathBounder
		last := i == len(n.children)-1
		if last {
			cb = b
		} else {
			cb = b.Fork()
		}
		cb.ExtendZ(c.z)
		if rq.childLB(cb, nodeMeta(c)) > rq.radius {
			if !last {
				cb.Release()
			}
			continue
		}
		err := rq.walk(c, cb)
		if !last {
			cb.Release()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func nodeMeta(n *node) dist.NodeMeta {
	return dist.NodeMeta{MinLen: n.minLen, MaxLen: n.maxLen, MaxDepthBelow: n.maxDepthBelow}
}

// childLB is the subtree pruning bound of the walk: the segment bound
// under a subsequence refiner, LBo otherwise.
func (rq *rangeQuery) childLB(b *dist.PathBounder, meta dist.NodeMeta) float64 {
	if rq.subseq {
		return b.LBoSub(meta)
	}
	return b.LBo(meta)
}

// refineLeaf refines one surviving leaf's members, parallel when
// configured and the leaf is fat enough.
func (rq *rangeQuery) refineLeaf(tids []int32) error {
	if rq.workers > 1 && len(tids) >= minParallelLeaf {
		return rq.refineParallel(tids)
	}
	for _, tid := range tids {
		if rq.dels != nil {
			if _, dead := rq.dels[tid]; dead {
				continue
			}
		}
		if rq.cancelled() {
			return rq.err()
		}
		if it, ok := rq.refineOne(rq.trajs[tid], &rq.sc.ds); ok {
			rq.sc.items = append(rq.sc.items, it)
		}
	}
	return nil
}

// refineParallel fans one fat leaf's exact computations over
// parallelFor workers, the range-search counterpart of the top-k
// path's refineLeafParallel. The threshold is the fixed radius, so
// workers need no shared threshold at all: each appends its in-range
// hits behind a mutex, and the final (distance, id) sort makes the
// result order independent of worker interleaving — output stays
// bit-identical to the sequential walk.
func (rq *rangeQuery) refineParallel(tids []int32) error {
	sc := rq.sc
	nw := clampWorkers(rq.workers, len(tids))
	for len(sc.wds) < nw {
		sc.wds = append(sc.wds, new(dist.Scratch))
	}
	var mu sync.Mutex
	return parallelFor(rq.ctx, sc.wds[:nw], len(tids), func(i int, ws *dist.Scratch) {
		tid := tids[i]
		if rq.dels != nil {
			if _, dead := rq.dels[tid]; dead {
				return
			}
		}
		if it, ok := rq.refineOne(rq.trajs[tid], ws); ok {
			mu.Lock()
			sc.items = append(sc.items, it)
			mu.Unlock()
		}
	})
}
