package rptrie

import (
	"context"
	"math"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// SearchRadius returns every indexed trajectory within distance
// radius of q, ascending by (distance, id). It reuses the top-k
// machinery with a fixed threshold instead of a shrinking dk — the
// range-query primitive DITA builds its top-k on, provided here as an
// extension (the paper's Section IX mentions range search only via
// DITA).
func (t *Trie) SearchRadius(q []geo.Point, radius float64) []topk.Item {
	out, _ := t.SearchRadiusContext(nil, q, radius, SearchOptions{})
	return out
}

// SearchRadiusContext is SearchRadius honoring per-query options and
// cancellation: the walk polls ctx periodically and aborts with its
// error once it is cancelled or past its deadline. A nil ctx disables
// cancellation.
func (t *Trie) SearchRadiusContext(ctx context.Context, q []geo.Point, radius float64, opt SearchOptions) ([]topk.Item, error) {
	if len(q) == 0 || len(t.trajs) == 0 || radius < 0 {
		return nil, nil
	}
	rq := rangeQuery{t: t, ctxPoller: ctxPoller{ctx: ctx}, q: q, radius: radius}
	if err := rq.err(); err != nil {
		return nil, err
	}
	if t.cfg.Pivots != nil && !t.cfg.DisableLBp && !opt.NoPivots {
		rq.dqp = pivot.Distances(q, t.cfg.Pivots, t.cfg.Measure, t.cfg.Params)
	}
	b := dist.NewBounder(t.cfg.Measure, q, t.cfg.Grid.HalfDiagonal(), t.cfg.Params)
	if err := rq.walk(t.root, b); err != nil {
		return nil, err
	}
	topk.SortItems(rq.out)
	return rq.out, nil
}

// rangeQuery carries one range query's state through the recursive
// walk.
type rangeQuery struct {
	ctxPoller
	t      *Trie
	q      []geo.Point
	radius float64
	dqp    []float64
	out    []topk.Item
}

// walk prunes subtrees whose bound exceeds radius and refines
// surviving leaves. Depth-first: unlike top-k, range search gains
// nothing from best-first ordering because the threshold is fixed.
func (rq *rangeQuery) walk(n *node, b dist.Bounder) error {
	t := rq.t
	if rq.cancelled() {
		return rq.err()
	}
	if rq.dqp != nil && n.hr != nil && pivot.LowerBound(rq.dqp, n.hr) > rq.radius {
		return nil
	}
	if n.leaf != nil {
		lb := 0.0
		if !t.cfg.DisableLBt {
			lb = b.LBt(dist.LeafMeta{
				NodeMeta: dist.NodeMeta{MinLen: n.leaf.minLen, MaxLen: n.leaf.maxLen},
				Dmax:     n.leaf.dmax,
			})
		}
		if lb <= rq.radius {
			for _, tid := range n.leaf.tids {
				if rq.cancelled() {
					return rq.err()
				}
				tr := t.trajs[tid]
				d := dist.DistanceBounded(t.cfg.Measure, rq.q, tr.Points, t.cfg.Params, rq.radius)
				if d <= rq.radius && !math.IsInf(d, 1) {
					rq.out = append(rq.out, topk.Item{ID: int(tid), Dist: d})
				}
			}
		}
	}
	for i, c := range n.children {
		var cb dist.Bounder
		if i == len(n.children)-1 {
			cb = b
		} else {
			cb = b.Clone()
		}
		cb.Extend(t.cfg.Grid.CellByZ(c.z))
		if cb.LBo(t.nodeMeta(c)) > rq.radius {
			continue
		}
		if err := rq.walk(c, cb); err != nil {
			return err
		}
	}
	return nil
}

func (t *Trie) nodeMeta(n *node) dist.NodeMeta {
	return dist.NodeMeta{MinLen: n.minLen, MaxLen: n.maxLen, MaxDepthBelow: n.maxDepthBelow}
}
