package rptrie

import (
	"context"
	"math"
	"sync"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// SearchRadius returns every indexed trajectory within distance
// radius of q, ascending by (distance, id). It reuses the top-k
// machinery with a fixed threshold instead of a shrinking dk — the
// range-query primitive DITA builds its top-k on, provided here as an
// extension (the paper's Section IX mentions range search only via
// DITA).
func (t *Trie) SearchRadius(q []geo.Point, radius float64) []topk.Item {
	out, _ := t.SearchRadiusContext(nil, q, radius, SearchOptions{})
	return out
}

// SearchRadiusContext is SearchRadius honoring per-query options and
// cancellation: the walk polls ctx periodically and aborts with its
// error once it is cancelled or past its deadline. A nil ctx disables
// cancellation.
func (t *Trie) SearchRadiusContext(ctx context.Context, q []geo.Point, radius float64, opt SearchOptions) ([]topk.Item, error) {
	st := t.state()
	if opt.MinGen > st.gen {
		return nil, ErrStale
	}
	if len(q) == 0 || st.live() == 0 || radius < 0 {
		return nil, nil
	}
	sc := t.pool.get()
	defer t.pool.put(sc)
	rq := rangeQuery{
		cfg: t.cfg, trajs: st.trajs,
		ctxPoller: ctxPoller{ctx: ctx}, sc: sc, q: q, radius: radius,
		workers: opt.RefineWorkers,
	}
	if d := st.delta; d != nil && len(d.dels) > 0 {
		rq.dels = d.dels
	}
	if err := rq.err(); err != nil {
		return nil, err
	}
	if t.cfg.Pivots != nil && !t.cfg.DisableLBp && !opt.NoPivots {
		sc.dqp = pivot.AppendDistances(sc.dqp[:0], q, t.cfg.Pivots, t.cfg.Measure, t.cfg.Params, &sc.ds)
		rq.dqp = sc.dqp
	}
	sc.qb.Reset(t.cfg.Measure, q, t.cfg.Grid, t.cfg.Params)
	sc.items = sc.items[:0]
	// Pending inserts sit outside the trie: scan them exactly.
	if d := st.delta; d != nil {
		for _, tr := range d.adds {
			if rq.cancelled() {
				return nil, rq.err()
			}
			dd := dist.DistanceBoundedScratch(t.cfg.Measure, q, tr.Points, t.cfg.Params, radius, &sc.ds)
			if dd <= radius && !math.IsInf(dd, 1) {
				sc.items = append(sc.items, topk.Item{ID: tr.ID, Dist: dd})
			}
		}
	}
	if err := rq.walk(st.root, sc.qb.Root()); err != nil {
		return nil, err
	}
	topk.SortItems(sc.items)
	if len(sc.items) == 0 {
		return nil, nil
	}
	// The accumulator is pooled; hand the caller its own copy.
	return append([]topk.Item(nil), sc.items...), nil
}

// rangeQuery carries one range query's state through the recursive
// walk; hits accumulate in the pooled sc.items.
type rangeQuery struct {
	ctxPoller
	cfg     Config
	trajs   map[int32]*geo.Trajectory
	dels    map[int32]struct{} // tombstones filtered at refinement
	sc      *searchScratch
	q       []geo.Point
	radius  float64
	dqp     []float64
	workers int
}

// walk prunes subtrees whose bound exceeds radius and refines
// surviving leaves. Depth-first: unlike top-k, range search gains
// nothing from best-first ordering because the threshold is fixed.
// walk consumes b: the last child takes ownership of it, so the
// caller must not reuse (only Release) it afterwards.
func (rq *rangeQuery) walk(n *node, b *dist.PathBounder) error {
	if rq.cancelled() {
		return rq.err()
	}
	if rq.dqp != nil && n.hr != nil && pivot.LowerBound(rq.dqp, n.hr) > rq.radius {
		return nil
	}
	if n.leaf != nil {
		lb := 0.0
		if !rq.cfg.DisableLBt {
			lb = b.LBtBounded(dist.LeafMeta{
				NodeMeta: dist.NodeMeta{MinLen: n.leaf.minLen, MaxLen: n.leaf.maxLen},
				Dmax:     n.leaf.dmax,
			}, rq.radius, &rq.sc.ds)
		}
		if lb <= rq.radius {
			if rq.workers > 1 && len(n.leaf.tids) >= minParallelLeaf {
				if err := rq.refineParallel(n.leaf.tids); err != nil {
					return err
				}
			} else {
				for _, tid := range n.leaf.tids {
					if rq.dels != nil {
						if _, dead := rq.dels[tid]; dead {
							continue
						}
					}
					if rq.cancelled() {
						return rq.err()
					}
					tr := rq.trajs[tid]
					d := dist.DistanceBoundedScratch(rq.cfg.Measure, rq.q, tr.Points, rq.cfg.Params, rq.radius, &rq.sc.ds)
					if d <= rq.radius && !math.IsInf(d, 1) {
						rq.sc.items = append(rq.sc.items, topk.Item{ID: int(tid), Dist: d})
					}
				}
			}
		}
	}
	for i, c := range n.children {
		var cb *dist.PathBounder
		last := i == len(n.children)-1
		if last {
			cb = b
		} else {
			cb = b.Fork()
		}
		cb.ExtendZ(c.z)
		if cb.LBo(nodeMeta(c)) > rq.radius {
			if !last {
				cb.Release()
			}
			continue
		}
		err := rq.walk(c, cb)
		if !last {
			cb.Release()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func nodeMeta(n *node) dist.NodeMeta {
	return dist.NodeMeta{MinLen: n.minLen, MaxLen: n.maxLen, MaxDepthBelow: n.maxDepthBelow}
}

// refineParallel fans one fat leaf's exact computations over
// parallelFor workers, the range-search counterpart of the top-k
// path's refineLeafParallel. The threshold is the fixed radius, so
// workers need no shared threshold at all: each appends its in-range
// hits behind a mutex, and the final (distance, id) sort makes the
// result order independent of worker interleaving — output stays
// bit-identical to the sequential walk.
func (rq *rangeQuery) refineParallel(tids []int32) error {
	sc := rq.sc
	nw := clampWorkers(rq.workers, len(tids))
	for len(sc.wds) < nw {
		sc.wds = append(sc.wds, new(dist.Scratch))
	}
	var mu sync.Mutex
	return parallelFor(rq.ctx, sc.wds[:nw], len(tids), func(i int, ws *dist.Scratch) {
		tid := tids[i]
		if rq.dels != nil {
			if _, dead := rq.dels[tid]; dead {
				return
			}
		}
		tr := rq.trajs[tid]
		d := dist.DistanceBoundedScratch(rq.cfg.Measure, rq.q, tr.Points, rq.cfg.Params, rq.radius, ws)
		if d <= rq.radius && !math.IsInf(d, 1) {
			mu.Lock()
			sc.items = append(sc.items, topk.Item{ID: int(tid), Dist: d})
			mu.Unlock()
		}
	})
}
