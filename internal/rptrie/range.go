package rptrie

import (
	"math"
	"sort"

	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// SearchRadius returns every indexed trajectory within distance
// radius of q, ascending by (distance, id). It reuses the top-k
// machinery with a fixed threshold instead of a shrinking dk — the
// range-query primitive DITA builds its top-k on, provided here as an
// extension (the paper's Section IX mentions range search only via
// DITA).
func (t *Trie) SearchRadius(q []geo.Point, radius float64) []topk.Item {
	if len(q) == 0 || len(t.trajs) == 0 || radius < 0 {
		return nil
	}
	var out []topk.Item

	var dqp []float64
	if t.cfg.Pivots != nil && !t.cfg.DisableLBp {
		dqp = pivot.Distances(q, t.cfg.Pivots, t.cfg.Measure, t.cfg.Params)
	}
	b := dist.NewBounder(t.cfg.Measure, q, t.cfg.Grid.HalfDiagonal(), t.cfg.Params)
	t.rangeWalk(t.root, b, q, radius, dqp, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// rangeWalk prunes subtrees whose bound exceeds radius and refines
// surviving leaves. Depth-first: unlike top-k, range search gains
// nothing from best-first ordering because the threshold is fixed.
func (t *Trie) rangeWalk(n *node, b dist.Bounder, q []geo.Point, radius float64, dqp []float64, out *[]topk.Item) {
	if dqp != nil && n.hr != nil && pivot.LowerBound(dqp, n.hr) > radius {
		return
	}
	if n.leaf != nil {
		lb := 0.0
		if !t.cfg.DisableLBt {
			lb = b.LBt(dist.LeafMeta{
				NodeMeta: dist.NodeMeta{MinLen: n.leaf.minLen, MaxLen: n.leaf.maxLen},
				Dmax:     n.leaf.dmax,
			})
		}
		if lb <= radius {
			for _, tid := range n.leaf.tids {
				tr := t.trajs[tid]
				d := dist.DistanceBounded(t.cfg.Measure, q, tr.Points, t.cfg.Params, radius)
				if d <= radius && !math.IsInf(d, 1) {
					*out = append(*out, topk.Item{ID: int(tid), Dist: d})
				}
			}
		}
	}
	for i, c := range n.children {
		var cb dist.Bounder
		if i == len(n.children)-1 {
			cb = b
		} else {
			cb = b.Clone()
		}
		cb.Extend(t.cfg.Grid.CellByZ(c.z))
		if cb.LBo(t.nodeMeta(c)) > radius {
			continue
		}
		t.rangeWalk(c, cb, q, radius, dqp, out)
	}
}

func (t *Trie) nodeMeta(n *node) dist.NodeMeta {
	return dist.NodeMeta{MinLen: n.minLen, MaxLen: n.maxLen, MaxDepthBelow: n.maxDepthBelow}
}
