package rptrie

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repose/internal/bits"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// Succinct is the compressed two-tier layout of Section III-B: the
// frequently accessed upper levels are encoded with rank-addressable
// bitmaps (Bc marks which cells are children, Bt marks terminal
// nodes — the paper's Bl state bitmap), concatenated in breadth-first
// order; the sparse lower levels are serialized as byte sequences and
// decoded lazily during traversal.
//
// Two pragmatic deviations from the paper's sketch, both documented
// in DESIGN.md: the bitmap alphabet is the set of distinct z-values
// that occur in the dense levels rather than all grid cells (the
// grids in the experiments have up to 2^18 cells, which would dwarf
// the trie itself), and HR ranges are stored as directed-rounded
// float32 pairs (min down, max up) to halve their footprint without
// compromising bound soundness.
//
// Like Trie, a Succinct is a stable handle over an atomically swapped
// immutable state, so Insert/Delete/Upsert/Compact are snapshot-
// isolated from concurrent queries; mutations ride the same delta
// overlay, and Compact rebuilds and recompresses the core.
type Succinct struct {
	cfg  Config
	mu   sync.Mutex // serializes writers
	cur  atomic.Pointer[succState]
	pool scratchPool
}

// succState is one immutable generation of the succinct index.
type succState struct {
	gen   uint64
	core  *succCore
	trajs map[int32]*geo.Trajectory
	delta *delta // pending mutations; nil once compacted
}

// live mirrors trieState.live for the succinct layout.
func (st *succState) live() int {
	n := len(st.trajs)
	if st.delta != nil {
		n += len(st.delta.adds) - len(st.delta.dels)
	}
	return n
}

// succCore is the compressed structural core shared by every
// generation until a compaction replaces it.
type succCore struct {
	alphabet []uint64 // sorted distinct z-values of dense-level edges
	levels   []*denseLevel
	sparse   []int  // blob offsets of the sparse subtree roots
	blob     []byte // serialized lower levels
	leaves   []sLeaf
	np       int // number of pivots

	numNodes int
	numLeafs int
}

type denseLevel struct {
	n        int       // number of nodes in this level
	bc       *bits.Set // n*A bits: child present at alphabet symbol
	bt       *bits.Set // n bits: node has a terminal payload
	leafBase int       // first terminal payload index for this level
	meta     []denseMeta
	hr       []float32 // n*np*2 floats, nil when np == 0
}

type denseMeta struct {
	minLen, maxLen, maxDepth int32
}

type sLeaf struct {
	tids           []int32
	dmax           float64
	minLen, maxLen int32
}

// denseBudgetBits caps the memory the dense tier may use; levels that
// would exceed it spill into the sparse tier.
const denseBudgetBits = 1 << 22

// Compress converts a built pointer trie into the succinct layout.
// The result answers queries identically to the source trie; a
// pending delta is folded in first, so the compressed core always
// starts fully compacted.
func Compress(t *Trie) (*Succinct, error) {
	if t == nil {
		return nil, errors.New("rptrie: nil trie")
	}
	st := t.state()
	if !st.delta.empty() {
		var err error
		if st, err = compactedState(t.cfg, st); err != nil {
			return nil, err
		}
	}
	core, err := compressCore(t.cfg, st)
	if err != nil {
		return nil, err
	}
	s := &Succinct{cfg: t.cfg}
	s.cur.Store(&succState{gen: st.gen, core: core, trajs: st.trajs})
	return s, nil
}

// compressCore encodes one compacted trieState as a succinct core.
func compressCore(cfg Config, st *trieState) (*succCore, error) {
	if st == nil || st.root == nil {
		return nil, errors.New("rptrie: nil trie")
	}
	core := &succCore{
		np:       len(cfg.Pivots),
		numNodes: st.numNodes,
		numLeafs: st.numLeafs,
	}
	if !cfg.Measure.IsMetric() {
		core.np = 0
	}

	// BFS the trie, collecting nodes per level (level 0 = root).
	levels := [][]*node{{st.root}}
	for {
		last := levels[len(levels)-1]
		var next []*node
		for _, n := range last {
			next = append(next, n.children...)
		}
		if len(next) == 0 {
			break
		}
		levels = append(levels, next)
	}

	// Choose F: the deepest prefix of levels whose dense encoding is
	// no larger than the sparse encoding of the same nodes (the
	// paper's premise is that the upper levels "consist of few
	// nodes" — once a level fans out, bitmaps stop paying off) and
	// fits an absolute budget. The alphabet covers the edges into
	// levels 1..F, so it grows with F.
	f := 0
	alpha := map[uint64]struct{}{}
	for cand := 1; cand <= len(levels); cand++ {
		// Adding dense level cand-1 means encoding the nodes at
		// depth cand-1 and admitting their child labels.
		edges := 0
		for _, n := range levels[cand-1] {
			for _, c := range n.children {
				alpha[c.z] = struct{}{}
			}
			edges += len(n.children)
		}
		a := len(alpha)
		denseBits, sparseBytes := 0, 0
		for l := 0; l < cand; l++ {
			nl := len(levels[l])
			denseBits += nl*a + nl
			sparseBytes += nl * (5 + core.np*8)
			for _, n := range levels[l] {
				sparseBytes += len(n.children) * 5
			}
		}
		if denseBits > denseBudgetBits || denseBits/8 > sparseBytes {
			break
		}
		f = cand
	}

	// Rebuild the alphabet for the chosen F.
	alpha = map[uint64]struct{}{}
	for l := 0; l < f; l++ {
		for _, n := range levels[l] {
			for _, c := range n.children {
				alpha[c.z] = struct{}{}
			}
		}
	}
	core.alphabet = make([]uint64, 0, len(alpha))
	for z := range alpha {
		core.alphabet = append(core.alphabet, z)
	}
	sort.Slice(core.alphabet, func(i, j int) bool { return core.alphabet[i] < core.alphabet[j] })
	a := len(core.alphabet)

	// Encode dense levels 0..F-1.
	for l := 0; l < f; l++ {
		nodes := levels[l]
		dl := &denseLevel{
			n:        len(nodes),
			bc:       bits.NewSet(len(nodes) * a),
			bt:       bits.NewSet(len(nodes)),
			leafBase: len(core.leaves),
			meta:     make([]denseMeta, len(nodes)),
		}
		if core.np > 0 {
			dl.hr = make([]float32, 0, len(nodes)*core.np*2)
		}
		for i, n := range nodes {
			base := dl.bc.Len()
			dl.bc.PushN(false, a)
			for _, c := range n.children {
				sym := core.symbol(c.z)
				dl.bc.SetBit(base + sym)
			}
			dl.bt.PushBit(n.leaf != nil)
			if n.leaf != nil {
				core.addLeaf(n.leaf)
			}
			dl.meta[i] = denseMeta{
				minLen:   int32(n.minLen),
				maxLen:   int32(n.maxLen),
				maxDepth: int32(n.maxDepthBelow),
			}
			for j := 0; j < core.np; j++ {
				dl.hr = append(dl.hr, f32Down(n.hr[j].Min), f32Up(n.hr[j].Max))
			}
		}
		dl.bc.Seal()
		dl.bt.Seal()
		core.levels = append(core.levels, dl)
	}

	// Serialize the sparse tier: subtrees rooted at depth F, in BFS
	// order of their roots (matching the rank addressing of the last
	// dense level).
	if f == 0 {
		core.sparse = []int{0}
		core.blob = core.encodeSparse(nil, st.root)
	} else if f < len(levels) {
		for _, root := range levels[f] {
			core.sparse = append(core.sparse, len(core.blob))
			core.blob = core.encodeSparse(core.blob, root)
		}
	}
	return core, nil
}

func (c *succCore) symbol(z uint64) int {
	i := sort.Search(len(c.alphabet), func(i int) bool { return c.alphabet[i] >= z })
	return i
}

func (c *succCore) addLeaf(l *leafData) int {
	c.leaves = append(c.leaves, sLeaf{
		tids:   l.tids,
		dmax:   l.dmax,
		minLen: int32(l.minLen),
		maxLen: int32(l.maxLen),
	})
	return len(c.leaves) - 1
}

// encodeSparse appends n's DFS record to buf:
//
//	flags byte (bit0: hasLeaf)
//	uvarint minLen, maxLen, maxDepthBelow
//	np × (float32 min, float32 max)   — directed-rounded HR
//	[hasLeaf] uvarint leaf payload index
//	uvarint childCount
//	childCount × (uvarint z, uvarint recLen, record)
func (c *succCore) encodeSparse(buf []byte, n *node) []byte {
	var flags byte
	if n.leaf != nil {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(n.minLen))
	buf = binary.AppendUvarint(buf, uint64(n.maxLen))
	buf = binary.AppendUvarint(buf, uint64(n.maxDepthBelow))
	for j := 0; j < c.np; j++ {
		buf = appendF32(buf, f32Down(n.hr[j].Min))
		buf = appendF32(buf, f32Up(n.hr[j].Max))
	}
	if n.leaf != nil {
		buf = binary.AppendUvarint(buf, uint64(c.addLeaf(n.leaf)))
	}
	buf = binary.AppendUvarint(buf, uint64(len(n.children)))
	for _, ch := range n.children {
		child := c.encodeSparse(nil, ch)
		buf = binary.AppendUvarint(buf, ch.z)
		buf = binary.AppendUvarint(buf, uint64(len(child)))
		buf = append(buf, child...)
	}
	return buf
}

func appendF32(buf []byte, v float32) []byte {
	return binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
}

// f32Down converts to float32 rounding toward −Inf so interval
// minima never increase.
func f32Down(v float64) float32 {
	f := float32(v)
	if float64(f) > v {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

// f32Up converts to float32 rounding toward +Inf so interval maxima
// never decrease.
func f32Up(v float64) float32 {
	f := float32(v)
	if float64(f) < v {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// state returns the current immutable snapshot.
func (s *Succinct) state() *succState { return s.cur.Load() }

// Search answers a top-k query on the succinct layout; results are
// identical to the source trie's.
func (s *Succinct) Search(q []geo.Point, k int) []topk.Item {
	res, _ := s.SearchWithStats(q, k)
	return res
}

// SearchWithStats is Search with traversal statistics.
func (s *Succinct) SearchWithStats(q []geo.Point, k int) ([]topk.Item, SearchStats) {
	st := s.state()
	sc := s.pool.get()
	defer s.pool.put(sc)
	sr := searcher{cfg: s.cfg, trajs: st.trajs, sc: sc}
	sr.setDelta(st.delta)
	res, stats, _ := sr.run(st.core.rootRef(), q, k, nil)
	return res, stats
}

// SearchAppend is Search appending the results to dst; see
// Trie.SearchAppend.
func (s *Succinct) SearchAppend(dst []topk.Item, q []geo.Point, k int) []topk.Item {
	st := s.state()
	sc := s.pool.get()
	defer s.pool.put(sc)
	sr := searcher{cfg: s.cfg, trajs: st.trajs, sc: sc}
	sr.setDelta(st.delta)
	out, _, _ := sr.run(st.core.rootRef(), q, k, dst)
	return out
}

// SearchContext is Search honoring per-query options and a context;
// see Trie.SearchContext. Both layouts share the same cancellable
// best-first loop.
func (s *Succinct) SearchContext(ctx context.Context, q []geo.Point, k int, opt SearchOptions) ([]topk.Item, error) {
	st := s.state()
	if opt.MinGen > st.gen {
		return nil, ErrStale
	}
	sc := s.pool.get()
	defer s.pool.put(sc)
	sr := searcher{
		cfg: s.cfg, trajs: st.trajs, sc: sc,
		ctxPoller:     ctxPoller{ctx: ctx},
		noPivots:      opt.NoPivots,
		refineWorkers: opt.RefineWorkers,
	}
	sr.setDelta(st.delta)
	sr.setRefiner(opt.Refiner)
	res, stats, err := sr.run(st.core.rootRef(), q, k, nil)
	if opt.Stats != nil {
		*opt.Stats = stats
	}
	return res, err
}

// BoundContext returns an admissible lower bound on the distance from
// q to every trajectory held by the index; see Trie.BoundContext.
func (s *Succinct) BoundContext(ctx context.Context, q []geo.Point, opt SearchOptions) (float64, error) {
	st := s.state()
	if opt.MinGen > st.gen {
		return 0, ErrStale
	}
	sc := s.pool.get()
	defer s.pool.put(sc)
	sr := searcher{
		cfg: s.cfg, trajs: st.trajs, sc: sc,
		ctxPoller: ctxPoller{ctx: ctx},
		noPivots:  opt.NoPivots,
	}
	sr.setDelta(st.delta)
	sr.setRefiner(opt.Refiner)
	return sr.bound(st.core.rootRef(), q)
}

// LiveIDs returns the ids of every live trajectory, unordered; see
// Durable.LiveIDs.
func (s *Succinct) LiveIDs() []int {
	st := s.state()
	return liveIDsOf(st.trajs, st.delta)
}

func (c *succCore) rootRef() searchNode {
	if len(c.levels) > 0 {
		return denseRef{c: c, level: 0, idx: 0}
	}
	return sparseRef{c: c, off: 0}
}

// Generation returns the snapshot's generation counter; see
// Trie.Generation.
func (s *Succinct) Generation() uint64 { return s.state().gen }

// DeltaLen returns the number of pending (uncompacted) mutations.
func (s *Succinct) DeltaLen() int { return s.state().delta.size() }

// Insert adds trajectories as pending inserts; see Trie.Insert. The
// staging logic is shared with the pointer layout (dynamic.go); these
// shells only swap the layout's own state pointer.
func (s *Succinct) Insert(trs ...*geo.Trajectory) error {
	if len(trs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cur.Load()
	nd, err := stageInsert(st.delta, st.trajs, trs)
	if err != nil {
		return err
	}
	s.cur.Store(st.withDelta(nd))
	return nil
}

// Delete removes the given ids, returning how many were live; see
// Trie.Delete.
func (s *Succinct) Delete(ids ...int) int {
	if len(ids) == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cur.Load()
	nd, n := stageDelete(st.delta, st.trajs, ids)
	if n == 0 {
		return 0
	}
	s.cur.Store(st.withDelta(nd))
	return n
}

// Upsert inserts trajectories, replacing live ids; see Trie.Upsert.
func (s *Succinct) Upsert(trs ...*geo.Trajectory) error {
	if len(trs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cur.Load()
	nd, err := stageUpsert(st.delta, st.trajs, trs)
	if err != nil {
		return err
	}
	s.cur.Store(st.withDelta(nd))
	return nil
}

// Compact folds the pending delta into a rebuilt, recompressed core;
// see Trie.Compact. The rebuild goes through the pointer layout, so
// nothing about the succinct encoding limits which mutations are
// supported.
func (s *Succinct) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cur.Load()
	if st.delta.empty() {
		return nil
	}
	ts, err := buildState(s.cfg, st.delta.merged(st.trajs))
	if err != nil {
		return err
	}
	core, err := compressCore(s.cfg, ts)
	if err != nil {
		return err
	}
	s.cur.Store(&succState{gen: st.gen + 1, core: core, trajs: ts.trajs})
	return nil
}

// succState.withDelta derives the next generation with nd as overlay.
func (st *succState) withDelta(nd *delta) *succState {
	ns := *st
	ns.delta = nd
	ns.gen = st.gen + 1
	return &ns
}

// NumNodes returns the node count inherited from the source trie.
func (s *Succinct) NumNodes() int { return s.state().core.numNodes }

// NumLeaves returns the leaf count inherited from the source trie.
func (s *Succinct) NumLeaves() int { return s.state().core.numLeafs }

// Len returns the number of live indexed trajectories.
func (s *Succinct) Len() int { return s.state().live() }

// Config returns the build configuration inherited from the source
// trie.
func (s *Succinct) Config() Config { return s.cfg }

// Trajectory returns the live indexed trajectory with the given id, or
// nil when the id is unknown or tombstoned.
func (s *Succinct) Trajectory(id int) *geo.Trajectory {
	st := s.state()
	if tr, hit := st.delta.get(int32(id)); hit {
		return tr
	}
	return st.trajs[int32(id)]
}

// DenseLevels returns the number of bitmap-encoded upper levels.
func (s *Succinct) DenseLevels() int { return len(s.state().core.levels) }

// SizeBytes reports the in-memory footprint of the index structure,
// excluding the raw trajectories.
func (s *Succinct) SizeBytes() int {
	st := s.state()
	c := st.core
	sz := len(c.blob) + len(c.alphabet)*8 + len(c.sparse)*8
	for _, dl := range c.levels {
		sz += dl.bc.SizeBytes() + dl.bt.SizeBytes()
		sz += len(dl.meta)*12 + len(dl.hr)*4
	}
	for _, l := range c.leaves {
		sz += 24 + len(l.tids)*4
	}
	return sz + st.delta.sizeBytes()
}

// denseRef navigates the bitmap tier.
type denseRef struct {
	c     *succCore
	level int32
	idx   int32
}

func (r denseRef) appendChildren(dst []childEdge) []childEdge {
	c := r.c
	dl := c.levels[r.level]
	a := len(c.alphabet)
	base := int(r.idx) * a
	r0 := dl.bc.Rank1(base)
	r1 := dl.bc.Rank1(base + a)
	for rank := r0; rank < r1; rank++ {
		pos := dl.bc.Select1(rank)
		z := c.alphabet[pos-base]
		if int(r.level)+1 < len(c.levels) {
			dst = append(dst, childEdge{z: z, n: denseRef{c: c, level: r.level + 1, idx: int32(rank)}})
		} else {
			dst = append(dst, childEdge{z: z, n: sparseRef{c: c, off: c.sparse[rank]}})
		}
	}
	return dst
}

func (r denseRef) leafView() (leafView, bool) {
	dl := r.c.levels[r.level]
	if !dl.bt.Get(int(r.idx)) {
		return leafView{}, false
	}
	l := r.c.leaves[dl.leafBase+dl.bt.Rank1(int(r.idx))]
	return leafView{tids: l.tids, dmax: l.dmax, minLen: int(l.minLen), maxLen: int(l.maxLen)}, true
}

func (r denseRef) meta() dist.NodeMeta {
	m := r.c.levels[r.level].meta[r.idx]
	return dist.NodeMeta{MinLen: int(m.minLen), MaxLen: int(m.maxLen), MaxDepthBelow: int(m.maxDepth)}
}

// pivotLB evaluates LBp directly over the packed float32 ranges —
// materializing a []pivot.Range per visited node would put an
// allocation on the traversal hot path.
func (r denseRef) pivotLB(dqp []float64) float64 {
	c := r.c
	if c.np == 0 || dqp == nil {
		return 0
	}
	dl := c.levels[r.level]
	base := int(r.idx) * c.np * 2
	lb := 0.0
	for j := 0; j < c.np && j < len(dqp); j++ {
		lo := float64(dl.hr[base+2*j])
		hi := float64(dl.hr[base+2*j+1])
		if v := pivot.RangeBound(dqp[j], lo, hi); v > lb {
			lb = v
		}
	}
	return lb
}

// sparseRef navigates the byte-serialized tier; off is the record's
// offset in c.blob.
type sparseRef struct {
	c   *succCore
	off int
}

// decodeHeader parses the fixed part of a record and returns the
// parsed fields along with the offset of the child list.
func (r sparseRef) decodeHeader() (flags byte, meta dist.NodeMeta, hrOff int, leafIdx int, childrenOff int) {
	b := r.c.blob
	p := r.off
	flags = b[p]
	p++
	v, n := binary.Uvarint(b[p:])
	meta.MinLen = int(v)
	p += n
	v, n = binary.Uvarint(b[p:])
	meta.MaxLen = int(v)
	p += n
	v, n = binary.Uvarint(b[p:])
	meta.MaxDepthBelow = int(v)
	p += n
	hrOff = p
	p += r.c.np * 8
	leafIdx = -1
	if flags&1 != 0 {
		v, n = binary.Uvarint(b[p:])
		leafIdx = int(v)
		p += n
	}
	return flags, meta, hrOff, leafIdx, p
}

func (r sparseRef) appendChildren(dst []childEdge) []childEdge {
	b := r.c.blob
	_, _, _, _, p := r.decodeHeader()
	count, n := binary.Uvarint(b[p:])
	p += n
	for i := uint64(0); i < count; i++ {
		z, n := binary.Uvarint(b[p:])
		p += n
		recLen, n := binary.Uvarint(b[p:])
		p += n
		dst = append(dst, childEdge{z: z, n: sparseRef{c: r.c, off: p}})
		p += int(recLen)
	}
	return dst
}

func (r sparseRef) leafView() (leafView, bool) {
	_, _, _, leafIdx, _ := r.decodeHeader()
	if leafIdx < 0 {
		return leafView{}, false
	}
	l := r.c.leaves[leafIdx]
	return leafView{tids: l.tids, dmax: l.dmax, minLen: int(l.minLen), maxLen: int(l.maxLen)}, true
}

func (r sparseRef) meta() dist.NodeMeta {
	_, meta, _, _, _ := r.decodeHeader()
	return meta
}

// pivotLB evaluates LBp by decoding the record's float32 ranges in
// place; see denseRef.pivotLB.
func (r sparseRef) pivotLB(dqp []float64) float64 {
	if r.c.np == 0 || dqp == nil {
		return 0
	}
	b := r.c.blob
	_, _, hrOff, _, _ := r.decodeHeader()
	lb := 0.0
	for j := 0; j < r.c.np && j < len(dqp); j++ {
		lo := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[hrOff+8*j:])))
		hi := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[hrOff+8*j+4:])))
		if v := pivot.RangeBound(dqp[j], lo, hi); v > lb {
			lb = v
		}
	}
	return lb
}
