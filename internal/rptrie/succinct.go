package rptrie

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"sort"

	"repose/internal/bits"
	"repose/internal/dist"
	"repose/internal/geo"
	"repose/internal/pivot"
	"repose/internal/topk"
)

// Succinct is the compressed two-tier layout of Section III-B: the
// frequently accessed upper levels are encoded with rank-addressable
// bitmaps (Bc marks which cells are children, Bt marks terminal
// nodes — the paper's Bl state bitmap), concatenated in breadth-first
// order; the sparse lower levels are serialized as byte sequences and
// decoded lazily during traversal.
//
// Two pragmatic deviations from the paper's sketch, both documented
// in DESIGN.md: the bitmap alphabet is the set of distinct z-values
// that occur in the dense levels rather than all grid cells (the
// grids in the experiments have up to 2^18 cells, which would dwarf
// the trie itself), and HR ranges are stored as directed-rounded
// float32 pairs (min down, max up) to halve their footprint without
// compromising bound soundness.
type Succinct struct {
	cfg   Config
	trajs map[int32]*geo.Trajectory
	pool  scratchPool

	alphabet []uint64 // sorted distinct z-values of dense-level edges
	levels   []*denseLevel
	sparse   []int  // blob offsets of the sparse subtree roots
	blob     []byte // serialized lower levels
	leaves   []sLeaf
	np       int // number of pivots

	numNodes int
	numLeafs int
}

type denseLevel struct {
	n        int       // number of nodes in this level
	bc       *bits.Set // n*A bits: child present at alphabet symbol
	bt       *bits.Set // n bits: node has a terminal payload
	leafBase int       // first terminal payload index for this level
	meta     []denseMeta
	hr       []float32 // n*np*2 floats, nil when np == 0
}

type denseMeta struct {
	minLen, maxLen, maxDepth int32
}

type sLeaf struct {
	tids           []int32
	dmax           float64
	minLen, maxLen int32
}

// denseBudgetBits caps the memory the dense tier may use; levels that
// would exceed it spill into the sparse tier.
const denseBudgetBits = 1 << 22

// Compress converts a built pointer trie into the succinct layout.
// The result answers queries identically to the source trie.
func Compress(t *Trie) (*Succinct, error) {
	if t == nil || t.root == nil {
		return nil, errors.New("rptrie: nil trie")
	}
	s := &Succinct{
		cfg:      t.cfg,
		trajs:    t.trajs,
		np:       len(t.cfg.Pivots),
		numNodes: t.numNodes,
		numLeafs: t.numLeafs,
	}
	if !t.cfg.Measure.IsMetric() {
		s.np = 0
	}

	// BFS the trie, collecting nodes per level (level 0 = root).
	levels := [][]*node{{t.root}}
	for {
		last := levels[len(levels)-1]
		var next []*node
		for _, n := range last {
			next = append(next, n.children...)
		}
		if len(next) == 0 {
			break
		}
		levels = append(levels, next)
	}

	// Choose F: the deepest prefix of levels whose dense encoding is
	// no larger than the sparse encoding of the same nodes (the
	// paper's premise is that the upper levels "consist of few
	// nodes" — once a level fans out, bitmaps stop paying off) and
	// fits an absolute budget. The alphabet covers the edges into
	// levels 1..F, so it grows with F.
	f := 0
	alpha := map[uint64]struct{}{}
	for cand := 1; cand <= len(levels); cand++ {
		// Adding dense level cand-1 means encoding the nodes at
		// depth cand-1 and admitting their child labels.
		edges := 0
		for _, n := range levels[cand-1] {
			for _, c := range n.children {
				alpha[c.z] = struct{}{}
			}
			edges += len(n.children)
		}
		a := len(alpha)
		denseBits, sparseBytes := 0, 0
		for l := 0; l < cand; l++ {
			nl := len(levels[l])
			denseBits += nl*a + nl
			sparseBytes += nl * (5 + nPivots(t)*8)
			for _, n := range levels[l] {
				sparseBytes += len(n.children) * 5
			}
		}
		if denseBits > denseBudgetBits || denseBits/8 > sparseBytes {
			break
		}
		f = cand
	}

	// Rebuild the alphabet for the chosen F.
	alpha = map[uint64]struct{}{}
	for l := 0; l < f; l++ {
		for _, n := range levels[l] {
			for _, c := range n.children {
				alpha[c.z] = struct{}{}
			}
		}
	}
	s.alphabet = make([]uint64, 0, len(alpha))
	for z := range alpha {
		s.alphabet = append(s.alphabet, z)
	}
	sort.Slice(s.alphabet, func(i, j int) bool { return s.alphabet[i] < s.alphabet[j] })
	a := len(s.alphabet)

	// Encode dense levels 0..F-1.
	for l := 0; l < f; l++ {
		nodes := levels[l]
		dl := &denseLevel{
			n:        len(nodes),
			bc:       bits.NewSet(len(nodes) * a),
			bt:       bits.NewSet(len(nodes)),
			leafBase: len(s.leaves),
			meta:     make([]denseMeta, len(nodes)),
		}
		if s.np > 0 {
			dl.hr = make([]float32, 0, len(nodes)*s.np*2)
		}
		for i, n := range nodes {
			base := dl.bc.Len()
			dl.bc.PushN(false, a)
			for _, c := range n.children {
				sym := s.symbol(c.z)
				dl.bc.SetBit(base + sym)
			}
			dl.bt.PushBit(n.leaf != nil)
			if n.leaf != nil {
				s.addLeaf(n.leaf)
			}
			dl.meta[i] = denseMeta{
				minLen:   int32(n.minLen),
				maxLen:   int32(n.maxLen),
				maxDepth: int32(n.maxDepthBelow),
			}
			for j := 0; j < s.np; j++ {
				dl.hr = append(dl.hr, f32Down(n.hr[j].Min), f32Up(n.hr[j].Max))
			}
		}
		dl.bc.Seal()
		dl.bt.Seal()
		s.levels = append(s.levels, dl)
	}

	// Serialize the sparse tier: subtrees rooted at depth F, in BFS
	// order of their roots (matching the rank addressing of the last
	// dense level).
	if f == 0 {
		s.sparse = []int{0}
		s.blob = s.encodeSparse(nil, t.root)
	} else if f < len(levels) {
		for _, root := range levels[f] {
			s.sparse = append(s.sparse, len(s.blob))
			s.blob = s.encodeSparse(s.blob, root)
		}
	}
	return s, nil
}

// nPivots returns the effective pivot count of a trie's config.
func nPivots(t *Trie) int {
	if !t.cfg.Measure.IsMetric() {
		return 0
	}
	return len(t.cfg.Pivots)
}

func (s *Succinct) symbol(z uint64) int {
	i := sort.Search(len(s.alphabet), func(i int) bool { return s.alphabet[i] >= z })
	return i
}

func (s *Succinct) addLeaf(l *leafData) int {
	s.leaves = append(s.leaves, sLeaf{
		tids:   l.tids,
		dmax:   l.dmax,
		minLen: int32(l.minLen),
		maxLen: int32(l.maxLen),
	})
	return len(s.leaves) - 1
}

// encodeSparse appends n's DFS record to buf:
//
//	flags byte (bit0: hasLeaf)
//	uvarint minLen, maxLen, maxDepthBelow
//	np × (float32 min, float32 max)   — directed-rounded HR
//	[hasLeaf] uvarint leaf payload index
//	uvarint childCount
//	childCount × (uvarint z, uvarint recLen, record)
func (s *Succinct) encodeSparse(buf []byte, n *node) []byte {
	var flags byte
	if n.leaf != nil {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(n.minLen))
	buf = binary.AppendUvarint(buf, uint64(n.maxLen))
	buf = binary.AppendUvarint(buf, uint64(n.maxDepthBelow))
	for j := 0; j < s.np; j++ {
		buf = appendF32(buf, f32Down(n.hr[j].Min))
		buf = appendF32(buf, f32Up(n.hr[j].Max))
	}
	if n.leaf != nil {
		buf = binary.AppendUvarint(buf, uint64(s.addLeaf(n.leaf)))
	}
	buf = binary.AppendUvarint(buf, uint64(len(n.children)))
	for _, c := range n.children {
		child := s.encodeSparse(nil, c)
		buf = binary.AppendUvarint(buf, c.z)
		buf = binary.AppendUvarint(buf, uint64(len(child)))
		buf = append(buf, child...)
	}
	return buf
}

func appendF32(buf []byte, v float32) []byte {
	return binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
}

// f32Down converts to float32 rounding toward −Inf so interval
// minima never increase.
func f32Down(v float64) float32 {
	f := float32(v)
	if float64(f) > v {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

// f32Up converts to float32 rounding toward +Inf so interval maxima
// never decrease.
func f32Up(v float64) float32 {
	f := float32(v)
	if float64(f) < v {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// Search answers a top-k query on the succinct layout; results are
// identical to the source trie's.
func (s *Succinct) Search(q []geo.Point, k int) []topk.Item {
	res, _ := s.SearchWithStats(q, k)
	return res
}

// SearchWithStats is Search with traversal statistics.
func (s *Succinct) SearchWithStats(q []geo.Point, k int) ([]topk.Item, SearchStats) {
	sc := s.pool.get()
	defer s.pool.put(sc)
	sr := searcher{cfg: s.cfg, trajs: s.trajs, sc: sc}
	res, stats, _ := sr.run(s.rootRef(), q, k, nil)
	return res, stats
}

// SearchAppend is Search appending the results to dst; see
// Trie.SearchAppend.
func (s *Succinct) SearchAppend(dst []topk.Item, q []geo.Point, k int) []topk.Item {
	sc := s.pool.get()
	defer s.pool.put(sc)
	sr := searcher{cfg: s.cfg, trajs: s.trajs, sc: sc}
	out, _, _ := sr.run(s.rootRef(), q, k, dst)
	return out
}

// SearchContext is Search honoring per-query options and a context;
// see Trie.SearchContext. Both layouts share the same cancellable
// best-first loop.
func (s *Succinct) SearchContext(ctx context.Context, q []geo.Point, k int, opt SearchOptions) ([]topk.Item, error) {
	sc := s.pool.get()
	defer s.pool.put(sc)
	sr := searcher{
		cfg: s.cfg, trajs: s.trajs, sc: sc,
		ctxPoller:     ctxPoller{ctx: ctx},
		noPivots:      opt.NoPivots,
		refineWorkers: opt.RefineWorkers,
	}
	res, _, err := sr.run(s.rootRef(), q, k, nil)
	return res, err
}

func (s *Succinct) rootRef() searchNode {
	if len(s.levels) > 0 {
		return denseRef{s: s, level: 0, idx: 0}
	}
	return sparseRef{s: s, off: 0}
}

// NumNodes returns the node count inherited from the source trie.
func (s *Succinct) NumNodes() int { return s.numNodes }

// NumLeaves returns the leaf count inherited from the source trie.
func (s *Succinct) NumLeaves() int { return s.numLeafs }

// Len returns the number of indexed trajectories.
func (s *Succinct) Len() int { return len(s.trajs) }

// DenseLevels returns the number of bitmap-encoded upper levels.
func (s *Succinct) DenseLevels() int { return len(s.levels) }

// SizeBytes reports the in-memory footprint of the index structure,
// excluding the raw trajectories.
func (s *Succinct) SizeBytes() int {
	sz := len(s.blob) + len(s.alphabet)*8 + len(s.sparse)*8
	for _, dl := range s.levels {
		sz += dl.bc.SizeBytes() + dl.bt.SizeBytes()
		sz += len(dl.meta)*12 + len(dl.hr)*4
	}
	for _, l := range s.leaves {
		sz += 24 + len(l.tids)*4
	}
	return sz
}

// denseRef navigates the bitmap tier.
type denseRef struct {
	s     *Succinct
	level int32
	idx   int32
}

func (r denseRef) appendChildren(dst []childEdge) []childEdge {
	s := r.s
	dl := s.levels[r.level]
	a := len(s.alphabet)
	base := int(r.idx) * a
	r0 := dl.bc.Rank1(base)
	r1 := dl.bc.Rank1(base + a)
	for rank := r0; rank < r1; rank++ {
		pos := dl.bc.Select1(rank)
		z := s.alphabet[pos-base]
		if int(r.level)+1 < len(s.levels) {
			dst = append(dst, childEdge{z: z, n: denseRef{s: s, level: r.level + 1, idx: int32(rank)}})
		} else {
			dst = append(dst, childEdge{z: z, n: sparseRef{s: s, off: s.sparse[rank]}})
		}
	}
	return dst
}

func (r denseRef) leafView() (leafView, bool) {
	dl := r.s.levels[r.level]
	if !dl.bt.Get(int(r.idx)) {
		return leafView{}, false
	}
	l := r.s.leaves[dl.leafBase+dl.bt.Rank1(int(r.idx))]
	return leafView{tids: l.tids, dmax: l.dmax, minLen: int(l.minLen), maxLen: int(l.maxLen)}, true
}

func (r denseRef) meta() dist.NodeMeta {
	m := r.s.levels[r.level].meta[r.idx]
	return dist.NodeMeta{MinLen: int(m.minLen), MaxLen: int(m.maxLen), MaxDepthBelow: int(m.maxDepth)}
}

// pivotLB evaluates LBp directly over the packed float32 ranges —
// materializing a []pivot.Range per visited node would put an
// allocation on the traversal hot path.
func (r denseRef) pivotLB(dqp []float64) float64 {
	s := r.s
	if s.np == 0 || dqp == nil {
		return 0
	}
	dl := s.levels[r.level]
	base := int(r.idx) * s.np * 2
	lb := 0.0
	for j := 0; j < s.np && j < len(dqp); j++ {
		lo := float64(dl.hr[base+2*j])
		hi := float64(dl.hr[base+2*j+1])
		if v := pivot.RangeBound(dqp[j], lo, hi); v > lb {
			lb = v
		}
	}
	return lb
}

// sparseRef navigates the byte-serialized tier; off is the record's
// offset in s.blob.
type sparseRef struct {
	s   *Succinct
	off int
}

// decodeHeader parses the fixed part of a record and returns the
// parsed fields along with the offset of the child list.
func (r sparseRef) decodeHeader() (flags byte, meta dist.NodeMeta, hrOff int, leafIdx int, childrenOff int) {
	b := r.s.blob
	p := r.off
	flags = b[p]
	p++
	v, n := binary.Uvarint(b[p:])
	meta.MinLen = int(v)
	p += n
	v, n = binary.Uvarint(b[p:])
	meta.MaxLen = int(v)
	p += n
	v, n = binary.Uvarint(b[p:])
	meta.MaxDepthBelow = int(v)
	p += n
	hrOff = p
	p += r.s.np * 8
	leafIdx = -1
	if flags&1 != 0 {
		v, n = binary.Uvarint(b[p:])
		leafIdx = int(v)
		p += n
	}
	return flags, meta, hrOff, leafIdx, p
}

func (r sparseRef) appendChildren(dst []childEdge) []childEdge {
	b := r.s.blob
	_, _, _, _, p := r.decodeHeader()
	count, n := binary.Uvarint(b[p:])
	p += n
	for i := uint64(0); i < count; i++ {
		z, n := binary.Uvarint(b[p:])
		p += n
		recLen, n := binary.Uvarint(b[p:])
		p += n
		dst = append(dst, childEdge{z: z, n: sparseRef{s: r.s, off: p}})
		p += int(recLen)
	}
	return dst
}

func (r sparseRef) leafView() (leafView, bool) {
	_, _, _, leafIdx, _ := r.decodeHeader()
	if leafIdx < 0 {
		return leafView{}, false
	}
	l := r.s.leaves[leafIdx]
	return leafView{tids: l.tids, dmax: l.dmax, minLen: int(l.minLen), maxLen: int(l.maxLen)}, true
}

func (r sparseRef) meta() dist.NodeMeta {
	_, meta, _, _, _ := r.decodeHeader()
	return meta
}

// pivotLB evaluates LBp by decoding the record's float32 ranges in
// place; see denseRef.pivotLB.
func (r sparseRef) pivotLB(dqp []float64) float64 {
	if r.s.np == 0 || dqp == nil {
		return 0
	}
	b := r.s.blob
	_, _, hrOff, _, _ := r.decodeHeader()
	lb := 0.0
	for j := 0; j < r.s.np && j < len(dqp); j++ {
		lo := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[hrOff+8*j:])))
		hi := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[hrOff+8*j+4:])))
		if v := pivot.RangeBound(dqp[j], lo, hi); v > lb {
			lb = v
		}
	}
	return lb
}
